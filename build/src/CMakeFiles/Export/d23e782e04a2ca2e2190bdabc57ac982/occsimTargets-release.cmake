#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "occsim::occsim" for configuration "Release"
set_property(TARGET occsim::occsim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(occsim::occsim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/liboccsim.a"
  )

list(APPEND _cmake_import_check_targets occsim::occsim )
list(APPEND _cmake_import_check_files_for_occsim::occsim "${_IMPORT_PREFIX}/lib/liboccsim.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
