# Empty dependencies file for occsim.
# This may be replaced when dependencies are built.
