file(REMOVE_RECURSE
  "liboccsim.a"
)
