
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache.cc" "src/CMakeFiles/occsim.dir/cache/cache.cc.o" "gcc" "src/CMakeFiles/occsim.dir/cache/cache.cc.o.d"
  "/root/repo/src/cache/cache_config.cc" "src/CMakeFiles/occsim.dir/cache/cache_config.cc.o" "gcc" "src/CMakeFiles/occsim.dir/cache/cache_config.cc.o.d"
  "/root/repo/src/cache/cache_geometry.cc" "src/CMakeFiles/occsim.dir/cache/cache_geometry.cc.o" "gcc" "src/CMakeFiles/occsim.dir/cache/cache_geometry.cc.o.d"
  "/root/repo/src/cache/cache_stats.cc" "src/CMakeFiles/occsim.dir/cache/cache_stats.cc.o" "gcc" "src/CMakeFiles/occsim.dir/cache/cache_stats.cc.o.d"
  "/root/repo/src/cache/instr_buffer.cc" "src/CMakeFiles/occsim.dir/cache/instr_buffer.cc.o" "gcc" "src/CMakeFiles/occsim.dir/cache/instr_buffer.cc.o.d"
  "/root/repo/src/cache/remote_pc.cc" "src/CMakeFiles/occsim.dir/cache/remote_pc.cc.o" "gcc" "src/CMakeFiles/occsim.dir/cache/remote_pc.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/CMakeFiles/occsim.dir/cache/replacement.cc.o" "gcc" "src/CMakeFiles/occsim.dir/cache/replacement.cc.o.d"
  "/root/repo/src/cache/sector_cache.cc" "src/CMakeFiles/occsim.dir/cache/sector_cache.cc.o" "gcc" "src/CMakeFiles/occsim.dir/cache/sector_cache.cc.o.d"
  "/root/repo/src/cache/split_cache.cc" "src/CMakeFiles/occsim.dir/cache/split_cache.cc.o" "gcc" "src/CMakeFiles/occsim.dir/cache/split_cache.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/occsim.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/occsim.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/figures.cc" "src/CMakeFiles/occsim.dir/harness/figures.cc.o" "gcc" "src/CMakeFiles/occsim.dir/harness/figures.cc.o.d"
  "/root/repo/src/harness/paper_tables.cc" "src/CMakeFiles/occsim.dir/harness/paper_tables.cc.o" "gcc" "src/CMakeFiles/occsim.dir/harness/paper_tables.cc.o.d"
  "/root/repo/src/mem/access_time.cc" "src/CMakeFiles/occsim.dir/mem/access_time.cc.o" "gcc" "src/CMakeFiles/occsim.dir/mem/access_time.cc.o.d"
  "/root/repo/src/mem/bus_model.cc" "src/CMakeFiles/occsim.dir/mem/bus_model.cc.o" "gcc" "src/CMakeFiles/occsim.dir/mem/bus_model.cc.o.d"
  "/root/repo/src/multi/miss_classifier.cc" "src/CMakeFiles/occsim.dir/multi/miss_classifier.cc.o" "gcc" "src/CMakeFiles/occsim.dir/multi/miss_classifier.cc.o.d"
  "/root/repo/src/multi/stack_analyzer.cc" "src/CMakeFiles/occsim.dir/multi/stack_analyzer.cc.o" "gcc" "src/CMakeFiles/occsim.dir/multi/stack_analyzer.cc.o.d"
  "/root/repo/src/multi/sweep_runner.cc" "src/CMakeFiles/occsim.dir/multi/sweep_runner.cc.o" "gcc" "src/CMakeFiles/occsim.dir/multi/sweep_runner.cc.o.d"
  "/root/repo/src/multi/working_set.cc" "src/CMakeFiles/occsim.dir/multi/working_set.cc.o" "gcc" "src/CMakeFiles/occsim.dir/multi/working_set.cc.o.d"
  "/root/repo/src/stats/distribution.cc" "src/CMakeFiles/occsim.dir/stats/distribution.cc.o" "gcc" "src/CMakeFiles/occsim.dir/stats/distribution.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/occsim.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/occsim.dir/stats/stats.cc.o.d"
  "/root/repo/src/trace/filters.cc" "src/CMakeFiles/occsim.dir/trace/filters.cc.o" "gcc" "src/CMakeFiles/occsim.dir/trace/filters.cc.o.d"
  "/root/repo/src/trace/interleave.cc" "src/CMakeFiles/occsim.dir/trace/interleave.cc.o" "gcc" "src/CMakeFiles/occsim.dir/trace/interleave.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/occsim.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/occsim.dir/trace/trace.cc.o.d"
  "/root/repo/src/trace/trace_file.cc" "src/CMakeFiles/occsim.dir/trace/trace_file.cc.o" "gcc" "src/CMakeFiles/occsim.dir/trace/trace_file.cc.o.d"
  "/root/repo/src/trace/trace_stats.cc" "src/CMakeFiles/occsim.dir/trace/trace_stats.cc.o" "gcc" "src/CMakeFiles/occsim.dir/trace/trace_stats.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/occsim.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/occsim.dir/util/logging.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/occsim.dir/util/random.cc.o" "gcc" "src/CMakeFiles/occsim.dir/util/random.cc.o.d"
  "/root/repo/src/util/str.cc" "src/CMakeFiles/occsim.dir/util/str.cc.o" "gcc" "src/CMakeFiles/occsim.dir/util/str.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/occsim.dir/util/table.cc.o" "gcc" "src/CMakeFiles/occsim.dir/util/table.cc.o.d"
  "/root/repo/src/vm/assembler.cc" "src/CMakeFiles/occsim.dir/vm/assembler.cc.o" "gcc" "src/CMakeFiles/occsim.dir/vm/assembler.cc.o.d"
  "/root/repo/src/vm/disasm.cc" "src/CMakeFiles/occsim.dir/vm/disasm.cc.o" "gcc" "src/CMakeFiles/occsim.dir/vm/disasm.cc.o.d"
  "/root/repo/src/vm/isa.cc" "src/CMakeFiles/occsim.dir/vm/isa.cc.o" "gcc" "src/CMakeFiles/occsim.dir/vm/isa.cc.o.d"
  "/root/repo/src/vm/machine.cc" "src/CMakeFiles/occsim.dir/vm/machine.cc.o" "gcc" "src/CMakeFiles/occsim.dir/vm/machine.cc.o.d"
  "/root/repo/src/vm/program_library.cc" "src/CMakeFiles/occsim.dir/vm/program_library.cc.o" "gcc" "src/CMakeFiles/occsim.dir/vm/program_library.cc.o.d"
  "/root/repo/src/workload/profiles.cc" "src/CMakeFiles/occsim.dir/workload/profiles.cc.o" "gcc" "src/CMakeFiles/occsim.dir/workload/profiles.cc.o.d"
  "/root/repo/src/workload/suites.cc" "src/CMakeFiles/occsim.dir/workload/suites.cc.o" "gcc" "src/CMakeFiles/occsim.dir/workload/suites.cc.o.d"
  "/root/repo/src/workload/synthetic.cc" "src/CMakeFiles/occsim.dir/workload/synthetic.cc.o" "gcc" "src/CMakeFiles/occsim.dir/workload/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
