# Empty dependencies file for cachesim.
# This may be replaced when dependencies are built.
