# Empty dependencies file for sector_cache_360_85.
# This may be replaced when dependencies are built.
