file(REMOVE_RECURSE
  "CMakeFiles/sector_cache_360_85.dir/sector_cache_360_85.cpp.o"
  "CMakeFiles/sector_cache_360_85.dir/sector_cache_360_85.cpp.o.d"
  "sector_cache_360_85"
  "sector_cache_360_85.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sector_cache_360_85.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
