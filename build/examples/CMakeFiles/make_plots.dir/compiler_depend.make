# Empty compiler generated dependencies file for make_plots.
# This may be replaced when dependencies are built.
