file(REMOVE_RECURSE
  "CMakeFiles/make_plots.dir/make_plots.cpp.o"
  "CMakeFiles/make_plots.dir/make_plots.cpp.o.d"
  "make_plots"
  "make_plots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_plots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
