file(REMOVE_RECURSE
  "CMakeFiles/asmview.dir/asmview.cpp.o"
  "CMakeFiles/asmview.dir/asmview.cpp.o.d"
  "asmview"
  "asmview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asmview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
