# Empty compiler generated dependencies file for asmview.
# This may be replaced when dependencies are built.
