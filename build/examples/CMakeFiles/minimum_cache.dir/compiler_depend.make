# Empty compiler generated dependencies file for minimum_cache.
# This may be replaced when dependencies are built.
