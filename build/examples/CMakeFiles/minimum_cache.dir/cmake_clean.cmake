file(REMOVE_RECURSE
  "CMakeFiles/minimum_cache.dir/minimum_cache.cpp.o"
  "CMakeFiles/minimum_cache.dir/minimum_cache.cpp.o.d"
  "minimum_cache"
  "minimum_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minimum_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
