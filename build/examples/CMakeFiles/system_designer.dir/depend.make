# Empty dependencies file for system_designer.
# This may be replaced when dependencies are built.
