file(REMOVE_RECURSE
  "CMakeFiles/system_designer.dir/system_designer.cpp.o"
  "CMakeFiles/system_designer.dir/system_designer.cpp.o.d"
  "system_designer"
  "system_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
