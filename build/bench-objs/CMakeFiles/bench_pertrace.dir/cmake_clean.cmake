file(REMOVE_RECURSE
  "../bench/bench_pertrace"
  "../bench/bench_pertrace.pdb"
  "CMakeFiles/bench_pertrace.dir/bench_pertrace.cpp.o"
  "CMakeFiles/bench_pertrace.dir/bench_pertrace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pertrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
