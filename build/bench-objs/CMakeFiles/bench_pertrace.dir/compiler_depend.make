# Empty compiler generated dependencies file for bench_pertrace.
# This may be replaced when dependencies are built.
