file(REMOVE_RECURSE
  "../bench/bench_riscii"
  "../bench/bench_riscii.pdb"
  "CMakeFiles/bench_riscii.dir/bench_riscii.cpp.o"
  "CMakeFiles/bench_riscii.dir/bench_riscii.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_riscii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
