# Empty compiler generated dependencies file for bench_riscii.
# This may be replaced when dependencies are built.
