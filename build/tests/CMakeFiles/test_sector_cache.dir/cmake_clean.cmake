file(REMOVE_RECURSE
  "CMakeFiles/test_sector_cache.dir/test_sector_cache.cpp.o"
  "CMakeFiles/test_sector_cache.dir/test_sector_cache.cpp.o.d"
  "test_sector_cache"
  "test_sector_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sector_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
