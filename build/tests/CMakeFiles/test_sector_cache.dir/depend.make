# Empty dependencies file for test_sector_cache.
# This may be replaced when dependencies are built.
