file(REMOVE_RECURSE
  "CMakeFiles/test_working_set.dir/test_working_set.cpp.o"
  "CMakeFiles/test_working_set.dir/test_working_set.cpp.o.d"
  "test_working_set"
  "test_working_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_working_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
