file(REMOVE_RECURSE
  "CMakeFiles/test_vm_fuzz.dir/test_vm_fuzz.cpp.o"
  "CMakeFiles/test_vm_fuzz.dir/test_vm_fuzz.cpp.o.d"
  "test_vm_fuzz"
  "test_vm_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vm_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
