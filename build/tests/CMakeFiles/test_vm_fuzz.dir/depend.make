# Empty dependencies file for test_vm_fuzz.
# This may be replaced when dependencies are built.
