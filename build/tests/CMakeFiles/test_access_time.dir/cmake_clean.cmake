file(REMOVE_RECURSE
  "CMakeFiles/test_access_time.dir/test_access_time.cpp.o"
  "CMakeFiles/test_access_time.dir/test_access_time.cpp.o.d"
  "test_access_time"
  "test_access_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_access_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
