# Empty dependencies file for test_access_time.
# This may be replaced when dependencies are built.
