file(REMOVE_RECURSE
  "CMakeFiles/test_load_forward.dir/test_load_forward.cpp.o"
  "CMakeFiles/test_load_forward.dir/test_load_forward.cpp.o.d"
  "test_load_forward"
  "test_load_forward.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_forward.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
