# Empty compiler generated dependencies file for test_load_forward.
# This may be replaced when dependencies are built.
