file(REMOVE_RECURSE
  "CMakeFiles/test_stack_analyzer.dir/test_stack_analyzer.cpp.o"
  "CMakeFiles/test_stack_analyzer.dir/test_stack_analyzer.cpp.o.d"
  "test_stack_analyzer"
  "test_stack_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stack_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
