# Empty compiler generated dependencies file for test_stack_analyzer.
# This may be replaced when dependencies are built.
