# Empty dependencies file for test_bus_model.
# This may be replaced when dependencies are built.
