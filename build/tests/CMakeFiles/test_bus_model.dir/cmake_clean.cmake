file(REMOVE_RECURSE
  "CMakeFiles/test_bus_model.dir/test_bus_model.cpp.o"
  "CMakeFiles/test_bus_model.dir/test_bus_model.cpp.o.d"
  "test_bus_model"
  "test_bus_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bus_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
