file(REMOVE_RECURSE
  "CMakeFiles/test_prefetch.dir/test_prefetch.cpp.o"
  "CMakeFiles/test_prefetch.dir/test_prefetch.cpp.o.d"
  "test_prefetch"
  "test_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
