# Empty compiler generated dependencies file for test_remote_pc.
# This may be replaced when dependencies are built.
