file(REMOVE_RECURSE
  "CMakeFiles/test_remote_pc.dir/test_remote_pc.cpp.o"
  "CMakeFiles/test_remote_pc.dir/test_remote_pc.cpp.o.d"
  "test_remote_pc"
  "test_remote_pc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_remote_pc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
