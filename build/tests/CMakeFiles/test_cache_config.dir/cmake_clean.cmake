file(REMOVE_RECURSE
  "CMakeFiles/test_cache_config.dir/test_cache_config.cpp.o"
  "CMakeFiles/test_cache_config.dir/test_cache_config.cpp.o.d"
  "test_cache_config"
  "test_cache_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
