# Empty compiler generated dependencies file for test_instr_buffer.
# This may be replaced when dependencies are built.
