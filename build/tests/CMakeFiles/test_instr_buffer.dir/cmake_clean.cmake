file(REMOVE_RECURSE
  "CMakeFiles/test_instr_buffer.dir/test_instr_buffer.cpp.o"
  "CMakeFiles/test_instr_buffer.dir/test_instr_buffer.cpp.o.d"
  "test_instr_buffer"
  "test_instr_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instr_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
