file(REMOVE_RECURSE
  "CMakeFiles/test_cache_geometry.dir/test_cache_geometry.cpp.o"
  "CMakeFiles/test_cache_geometry.dir/test_cache_geometry.cpp.o.d"
  "test_cache_geometry"
  "test_cache_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
