# Empty dependencies file for test_cache_geometry.
# This may be replaced when dependencies are built.
