file(REMOVE_RECURSE
  "CMakeFiles/test_write_policy.dir/test_write_policy.cpp.o"
  "CMakeFiles/test_write_policy.dir/test_write_policy.cpp.o.d"
  "test_write_policy"
  "test_write_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_write_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
