# Empty compiler generated dependencies file for test_split_cache.
# This may be replaced when dependencies are built.
