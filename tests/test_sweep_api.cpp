/**
 * @file
 * The unified sweep API contract (multi/sweep_api.hh): runSweep must
 * be bit-identical to the raw engine entry points it wraps — direct
 * per-config Cache simulation and ParallelSweepRunner::run — for
 * every engine policy and thread count; the request knobs (maxRefs,
 * wantAverage, probe, explicit telemetry sink) must each do what they
 * say; and the attached manifest must serialize to valid
 * occsim.run_manifest/1 JSON.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "multi/sweep_api.hh"
#include "multi/sweep_runner.hh"
#include "obs/json.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

constexpr std::uint64_t kRefs = 30000;

/** Bit-identical comparison of two SweepResults (exact doubles). */
void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.grossBytes, b.grossBytes);
    EXPECT_EQ(a.missRatio, b.missRatio);
    EXPECT_EQ(a.warmMissRatio, b.warmMissRatio);
    EXPECT_EQ(a.trafficRatio, b.trafficRatio);
    EXPECT_EQ(a.warmTrafficRatio, b.warmTrafficRatio);
    EXPECT_EQ(a.nibbleTrafficRatio, b.nibbleTrafficRatio);
    EXPECT_EQ(a.warmNibbleTrafficRatio, b.warmNibbleTrafficRatio);
}

void
expectIdenticalGrid(const std::vector<std::vector<SweepResult>> &a,
                    const std::vector<std::vector<SweepResult>> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t t = 0; t < a.size(); ++t) {
        ASSERT_EQ(a[t].size(), b[t].size());
        for (std::size_t c = 0; c < a[t].size(); ++c)
            expectIdentical(a[t][c], b[t][c]);
    }
}

/** Reference engine: one direct runSingle per config, sequentially. */
std::vector<SweepResult>
sequentialSweep(const std::vector<CacheConfig> &configs,
                const VectorTrace &trace, std::uint64_t max_refs = 0)
{
    std::vector<SweepResult> out;
    out.reserve(configs.size());
    for (const CacheConfig &config : configs) {
        VectorTrace copy = trace;
        out.push_back(runSingle(config, copy, max_refs));
    }
    return out;
}

/** Two traces + a mixed grid (single-pass eligible and not) so every
 *  engine route is exercised. */
struct Fixture
{
    Fixture()
    {
        const Suite suite = pdp11Suite();
        traces.push_back(buildTraceShared(suite.traces[0], kRefs));
        traces.push_back(buildTraceShared(suite.traces[1], kRefs));
        configs = paperGrid(1024, suite.profile.wordSize);
        // Add a sector point (sub < block): never single-pass
        // eligible, so Auto routes it to the batched engine.
        CacheConfig sector =
            makeConfig(1024, 32, 8, suite.profile.wordSize);
        sector.fetch = FetchPolicy::LoadForward;
        configs.push_back(sector);
    }

    std::vector<std::shared_ptr<const VectorTrace>> traces;
    std::vector<CacheConfig> configs;
};

} // namespace

TEST(SweepApi, BitIdenticalToRawEngineAllEnginesAndThreads)
{
    const Fixture fx;
    for (const SweepEngine engine :
         {SweepEngine::Auto, SweepEngine::DirectOnly,
          SweepEngine::CrossCheck}) {
        for (const unsigned threads : {1u, 4u}) {
            // Reference: the raw engine layer, one runner per trace.
            ThreadPool pool(threads);
            std::vector<std::vector<SweepResult>> legacy;
            for (const auto &trace : fx.traces) {
                ParallelSweepRunner runner(fx.configs, &pool, engine);
                runner.run(trace);
                legacy.push_back(runner.results());
            }

            ThreadPool pool2(threads);
            SweepRequest request;
            request.traces = fx.traces;
            request.configs = fx.configs;
            request.engine = engine;
            request.pool = &pool2;
            request.label = "test";
            const SweepReport report = runSweep(request);

            expectIdenticalGrid(report.perTrace, legacy);
            ASSERT_EQ(report.average.size(), fx.configs.size());
            const auto averaged = averageResults(legacy);
            for (std::size_t c = 0; c < averaged.size(); ++c)
                expectIdentical(report.average[c], averaged[c]);
        }
    }
}

TEST(SweepApi, BitIdenticalToSequentialDirectSimulation)
{
    const Fixture fx;
    SweepRequest request;
    request.traces = fx.traces;
    request.configs = fx.configs;
    const SweepReport report = runSweep(request);

    for (std::size_t t = 0; t < fx.traces.size(); ++t) {
        const auto expected = sequentialSweep(fx.configs, *fx.traces[t]);
        ASSERT_EQ(report.perTrace[t].size(), expected.size());
        for (std::size_t c = 0; c < expected.size(); ++c)
            expectIdentical(report.perTrace[t][c], expected[c]);
    }
}

TEST(SweepApi, MaxRefsCapsEveryEngineIdentically)
{
    const Fixture fx;
    constexpr std::uint64_t kCap = 9000;

    SweepRequest request;
    request.traces = fx.traces;
    request.configs = fx.configs;
    request.maxRefs = kCap;
    const SweepReport report = runSweep(request);
    EXPECT_EQ(report.refs, kCap * fx.traces.size());

    // Same cap through the sequential reference engine.
    for (std::size_t t = 0; t < fx.traces.size(); ++t) {
        const auto expected =
            sequentialSweep(fx.configs, *fx.traces[t], kCap);
        for (std::size_t c = 0; c < expected.size(); ++c)
            expectIdentical(report.perTrace[t][c], expected[c]);
    }

    // And the cap must bind the cross-check path too.
    SweepRequest checked = request;
    checked.engine = SweepEngine::CrossCheck;
    const SweepReport checked_report = runSweep(checked);
    expectIdenticalGrid(checked_report.perTrace, report.perTrace);
}

TEST(SweepApi, ProbeForcesPerTraceRunnersWithoutChangingResults)
{
    const Fixture fx;
    SweepRequest plain;
    plain.traces = fx.traces;
    plain.configs = fx.configs;
    plain.engine = SweepEngine::DirectOnly;
    const SweepReport expected = runSweep(plain);

    std::vector<std::size_t> probed;
    std::vector<double> never_ref;
    SweepRequest request = plain;
    request.probe = [&](std::size_t t,
                        const ParallelSweepRunner &runner) {
        probed.push_back(t);
        // DirectOnly keeps a Cache for every config, so probes can
        // read residency statistics SweepResult does not carry.
        never_ref.push_back(
            runner.cache(0).stats().neverReferencedFraction());
    };
    const SweepReport report = runSweep(request);

    expectIdenticalGrid(report.perTrace, expected.perTrace);
    ASSERT_EQ(probed.size(), fx.traces.size());
    for (std::size_t t = 0; t < probed.size(); ++t)
        EXPECT_EQ(probed[t], t);
    for (const double fraction : never_ref) {
        EXPECT_GE(fraction, 0.0);
        EXPECT_LE(fraction, 1.0);
    }
}

TEST(SweepApi, WantAverageFalseSkipsAveraging)
{
    const Fixture fx;
    SweepRequest request;
    request.traces = fx.traces;
    request.configs = fx.configs;
    request.wantAverage = false;
    const SweepReport report = runSweep(request);
    EXPECT_TRUE(report.average.empty());
    EXPECT_EQ(report.perTrace.size(), fx.traces.size());
}

TEST(SweepApi, ExplicitTelemetrySinkRecordsUnconditionally)
{
    const Fixture fx;
    obs::Telemetry sink;
    SweepRequest request;
    request.traces = fx.traces;
    request.configs = fx.configs;
    request.telemetry = &sink;
    request.label = "sink-test";
    (void)runSweep(request);

    // The sweep-level span and counter must land in the private sink
    // even though the global registry may be disabled.
    const auto stages = sink.stages();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].name, "sweep");
    EXPECT_EQ(stages[0].calls, 1u);
    const auto counters = sink.counters();
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters[0].name, "sweep.refs");
    EXPECT_EQ(counters[0].value,
              kRefs * fx.traces.size() * fx.configs.size());
}

TEST(SweepApi, ReportManifestIsValidSchemaJson)
{
    const Fixture fx;
    SweepRequest request;
    request.traces = fx.traces;
    request.configs = fx.configs;
    request.label = "manifest-test";
    const SweepReport report = runSweep(request);

    const std::string json = report.manifest.toJson();
    obs::JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json, doc, &error)) << error;
    ASSERT_TRUE(doc.isObject());

    const obs::JsonValue *schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->text, "occsim.run_manifest/1");
    for (const char *key : {"binary", "git", "build", "threads",
                            "traces", "sweeps", "stages", "engines",
                            "counters"}) {
        EXPECT_NE(doc.find(key), nullptr) << key;
    }

    // Our sweep must be recorded with one route per config.
    const obs::JsonValue *sweeps = doc.find("sweeps");
    ASSERT_NE(sweeps, nullptr);
    ASSERT_TRUE(sweeps->isArray());
    const obs::JsonValue *ours = nullptr;
    for (const obs::JsonValue &sweep : sweeps->items) {
        const obs::JsonValue *label = sweep.find("label");
        if (label != nullptr && label->text == "manifest-test")
            ours = &sweep;
    }
    ASSERT_NE(ours, nullptr);
    const obs::JsonValue *routes = ours->find("configs");
    ASSERT_NE(routes, nullptr);
    EXPECT_EQ(routes->items.size(), fx.configs.size());
    for (const obs::JsonValue &route : routes->items) {
        const obs::JsonValue *engine = route.find("engine");
        ASSERT_NE(engine, nullptr);
        EXPECT_TRUE(engine->text == "direct" ||
                    engine->text == "single_pass" ||
                    engine->text == "batch" ||
                    engine->text == "shard" ||
                    engine->text == "fused")
            << engine->text;
    }

    // Both fixture traces appear in the trace identity list.
    const obs::JsonValue *traces = doc.find("traces");
    ASSERT_NE(traces, nullptr);
    EXPECT_GE(traces->items.size(), 2u);
}

TEST(SweepApi, EngineNamesAreStable)
{
    EXPECT_STREQ(sweepEngineName(SweepEngine::Auto), "auto");
    EXPECT_STREQ(sweepEngineName(SweepEngine::DirectOnly),
                 "direct_only");
    EXPECT_STREQ(sweepEngineName(SweepEngine::CrossCheck),
                 "cross_check");
}
