/**
 * @file
 * Exactness tests for the single-pass multi-configuration sweep
 * engine: for every (net size, associativity) point of the paper
 * grid at a fixed block size, the engine's counts (misses, cold
 * misses, traffic words) and its SweepResult doubles must equal
 * direct Cache simulation bit-for-bit — on real library programs, on
 * a synthetic adversarial trace, and through the runSweep /
 * ParallelSweepRunner fast-path integration with mixed (eligible and
 * ineligible) config lists.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/cache.hh"
#include "harness/experiment.hh"
#include "multi/parallel_sweep.hh"
#include "multi/sweep_api.hh"
#include "multi/single_pass.hh"
#include "util/random.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

using namespace occsim;

namespace {

/** Suite sweep through the unified API; returns the per-trace grid. */
std::vector<std::vector<occsim::SweepResult>>
sweepGrid(const std::vector<std::shared_ptr<const occsim::VectorTrace>>
              &traces,
          const std::vector<occsim::CacheConfig> &configs,
          occsim::ThreadPool *pool,
          occsim::SweepEngine engine = occsim::SweepEngine::Auto)
{
    occsim::SweepRequest request;
    request.traces = traces;
    request.configs = configs;
    request.pool = pool;
    request.engine = engine;
    request.wantAverage = false;
    return occsim::runSweep(request).perTrace;
}

constexpr std::uint64_t kRefs = 30000;

/** Bit-identical comparison of two SweepResults (exact doubles). */
void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.grossBytes, b.grossBytes);
    EXPECT_EQ(a.missRatio, b.missRatio);
    EXPECT_EQ(a.warmMissRatio, b.warmMissRatio);
    EXPECT_EQ(a.trafficRatio, b.trafficRatio);
    EXPECT_EQ(a.warmTrafficRatio, b.warmTrafficRatio);
    EXPECT_EQ(a.nibbleTrafficRatio, b.nibbleTrafficRatio);
    EXPECT_EQ(a.warmNibbleTrafficRatio, b.warmNibbleTrafficRatio);
}

/**
 * The paper grid restricted to single-pass form: every power-of-two
 * net size in [min_net, max_net] crossed with associativities
 * 1..16 at one block (== sub-block) size.
 */
std::vector<CacheConfig>
sizeAssocGrid(std::uint32_t block, std::uint32_t min_net,
              std::uint32_t max_net, std::uint32_t word_size)
{
    std::vector<CacheConfig> configs;
    for (std::uint32_t net = min_net; net <= max_net; net *= 2) {
        for (std::uint32_t assoc : {1u, 2u, 4u, 8u, 16u}) {
            CacheConfig config = makeConfig(net, block, block,
                                            word_size);
            config.assoc = assoc;
            configs.push_back(config);
        }
    }
    return configs;
}

/**
 * Assert the engine's per-config counts and summaries equal a direct
 * Cache simulation of every config over the same trace.
 */
void
expectMatchesDirect(const std::vector<CacheConfig> &configs,
                    const VectorTrace &trace)
{
    SinglePassEngine engine(configs);
    engine.processTrace(trace);
    const auto results = engine.results();
    ASSERT_EQ(results.size(), configs.size());

    for (std::size_t i = 0; i < configs.size(); ++i) {
        Cache cache(configs[i]);
        for (const MemRef &ref : trace.refs())
            cache.access(ref);
        cache.finalizeResidencies();

        const CacheStats &direct = cache.stats();
        const auto counts = engine.countsFor(i);
        const std::string label = configs[i].fullName();

        EXPECT_EQ(counts.accesses, direct.accesses()) << label;
        EXPECT_EQ(counts.misses, direct.misses()) << label;
        EXPECT_EQ(counts.coldMisses, direct.coldMisses()) << label;
        EXPECT_EQ(counts.ifetchAccesses, direct.ifetchAccesses())
            << label;
        EXPECT_EQ(counts.ifetchMisses, direct.ifetchMisses()) << label;
        EXPECT_EQ(counts.writeAccesses, direct.writeAccesses())
            << label;
        EXPECT_EQ(counts.writeMisses, direct.writeMisses()) << label;

        // Traffic totals in words: read fetches, cold share, write
        // fetches, write-through stores.
        const std::uint32_t words =
            cache.geometry().wordsPerSubBlock();
        EXPECT_EQ(counts.misses * words, direct.wordsFetched())
            << label;
        EXPECT_EQ(counts.coldMisses * words,
                  direct.coldWordsFetched())
            << label;
        EXPECT_EQ(counts.writeMisses * words,
                  direct.writeWordsFetched())
            << label;
        EXPECT_EQ(counts.writeAccesses, direct.storeWords()) << label;

        expectIdentical(results[i], summarizeCache(cache));
    }
}

/**
 * A trace built to stress the order-statistics structure: cyclic
 * sweeps over a large footprint (anti-LRU, every distance deep, lots
 * of dead entries → compaction), tight MRU loops (fast path), a
 * ping-pong pair, and interleaved writes and instruction fetches.
 */
VectorTrace
adversarialTrace()
{
    VectorTrace trace("adversarial");
    const std::uint32_t block = 16;
    auto push = [&](Addr block_index, RefKind kind) {
        trace.append(block_index * block, kind, 2);
    };

    // Phase 1: three cyclic sweeps over 600 blocks. Under LRU every
    // reuse distance is 600 — misses at every small capacity, and the
    // per-set time arrays accumulate dead entries.
    for (int pass = 0; pass < 3; ++pass) {
        for (Addr b = 0; b < 600; ++b)
            push(b, pass == 1 ? RefKind::DataWrite : RefKind::DataRead);
    }
    // Phase 2: tight loop over 4 blocks (MRU fast path, distances
    // 1..4), with instruction fetches.
    for (int i = 0; i < 2000; ++i)
        push(static_cast<Addr>(i % 4), RefKind::Ifetch);
    // Phase 3: ping-pong between two far-apart blocks that map to the
    // same set at every power-of-two set count.
    for (int i = 0; i < 500; ++i) {
        push(i % 2 == 0 ? 1024 : 2048, RefKind::DataRead);
        push(3072, RefKind::DataWrite);
    }
    // Phase 4: revisit phase-1 blocks in reverse (deep distances
    // straight after compaction).
    for (Addr b = 600; b-- > 0;)
        push(b, RefKind::DataRead);
    return trace;
}

} // namespace

TEST(TouchTimeSet, MatchesLinearStackOracle)
{
    // SetLruTracker distances vs a brute-force per-set linear LRU
    // stack, over a stream with enough churn to trigger compaction.
    constexpr std::uint32_t kSets = 4;
    SetLruTracker tracker(kSets);
    std::vector<std::vector<Addr>> stacks(kSets);  // MRU at back

    std::uint64_t state = 12345;
    auto next_block = [&]() -> Addr {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        // Mix tight reuse (16 blocks) with a long tail (4096 blocks).
        return (state >> 33) % 2 == 0
                   ? static_cast<Addr>((state >> 40) % 16)
                   : static_cast<Addr>((state >> 40) % 4096);
    };

    for (int i = 0; i < 60000; ++i) {
        const Addr block = next_block();
        auto &stack = stacks[block % kSets];
        std::uint64_t expected = SetLruTracker::kFirstTouch;
        for (std::size_t j = stack.size(); j-- > 0;) {
            if (stack[j] == block) {
                expected = stack.size() - j;
                stack.erase(stack.begin() +
                            static_cast<std::ptrdiff_t>(j));
                break;
            }
        }
        stack.push_back(block);
        ASSERT_EQ(tracker.touch(block), expected) << "ref " << i;
    }
}

TEST(SinglePassEngine, MatchesDirectOnLibraryPrograms)
{
    // The full size x associativity grid at the paper's standard
    // block sizes, on three library programs (PDP-11 suite).
    const Suite suite = pdp11Suite();
    ASSERT_GE(suite.traces.size(), 3u);
    for (std::size_t p = 0; p < 3; ++p) {
        const auto trace = buildTraceShared(suite.traces[p], kRefs);
        for (const std::uint32_t block : {4u, 16u}) {
            expectMatchesDirect(
                sizeAssocGrid(block, 64, 4096,
                              suite.profile.wordSize),
                *trace);
        }
    }
}

TEST(SinglePassEngine, MatchesDirectOnAdversarialTrace)
{
    const VectorTrace trace = adversarialTrace();
    expectMatchesDirect(sizeAssocGrid(16, 64, 16384, 2), trace);
}

TEST(SinglePassEngine, MatchesDirectOnSyntheticWrites)
{
    // Synthetic workload with its natural read/write/ifetch mix.
    SyntheticParams params;
    params.seed = 77;
    const VectorTrace trace = makeSyntheticTrace(params, 40000);
    expectMatchesDirect(sizeAssocGrid(8, 32, 2048, 2), trace);
}

TEST(SinglePassEngine, LevelsAreIndependentTasks)
{
    // Running levels out of order (as the parallel integration does)
    // changes nothing.
    const VectorTrace trace = adversarialTrace();
    const auto configs = sizeAssocGrid(16, 64, 4096, 2);

    SinglePassEngine sequential(configs);
    sequential.processTrace(trace);

    SinglePassEngine shuffled(configs);
    for (std::size_t l = shuffled.numLevels(); l-- > 0;)
        shuffled.runLevel(l, trace);

    const auto a = sequential.results();
    const auto b = shuffled.results();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectIdentical(a[i], b[i]);
}

TEST(SinglePassEngine, RunnerFastPathMatchesSequentialDirect)
{
    // ParallelSweepRunner in Auto mode vs sequential direct Cache
    // simulation on a mixed list: paperGrid contains both eligible
    // (sub == block) and ineligible (sub < block) configs.
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    const auto configs = paperGrid(1024, suite.profile.wordSize);

    std::vector<SweepResult> expected;
    for (const CacheConfig &config : configs) {
        VectorTrace copy = *trace;
        expected.push_back(runSingle(config, copy));
    }

    ThreadPool pool(4);
    ParallelSweepRunner runner(configs, &pool);
    EXPECT_EQ(runner.run(trace), trace->size());
    const auto actual = runner.results();

    // The grid really exercises both paths.
    EXPECT_GT(runner.fastPathCount(), 0u);
    EXPECT_LT(runner.fastPathCount(), configs.size());

    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        expectIdentical(actual[i], expected[i]);
        EXPECT_EQ(runner.fastPathed(i),
                  singlePassEligible(configs[i]));
        if (!runner.fastPathed(i) && !runner.fused(i) &&
            !runner.sharded(i)) {
            // Batched configs keep their probe-able Cache (fused and
            // sharded ones have no single Cache; probe callers pass
            // allow_sharding = false to keep one everywhere).
            EXPECT_EQ(runner.cache(i).config(), configs[i]);
        }
    }
}

TEST(SinglePassEngine, RunSweepAutoMatchesDirectOnly)
{
    const Suite suite = z8000Suite();
    const auto configs = paperGrid(512, suite.profile.wordSize);

    std::vector<std::shared_ptr<const VectorTrace>> traces;
    for (std::size_t t = 0; t < 2; ++t)
        traces.push_back(buildTraceShared(suite.traces[t], kRefs));

    ThreadPool pool(4);
    const auto direct =
        sweepGrid(traces, configs, &pool, SweepEngine::DirectOnly);
    const auto fast = sweepGrid(traces, configs, &pool);

    ASSERT_EQ(fast.size(), direct.size());
    for (std::size_t t = 0; t < direct.size(); ++t) {
        ASSERT_EQ(fast[t].size(), direct[t].size());
        for (std::size_t c = 0; c < direct[t].size(); ++c)
            expectIdentical(fast[t][c], direct[t][c]);
    }
}

TEST(SinglePassEngine, DistanceHistogramPoolsAtCap)
{
    // Histogram sanity: counted refs = first touches + histogram
    // mass, and hits for associativity A = sum of hist[1..A].
    const VectorTrace trace = adversarialTrace();
    const auto configs = sizeAssocGrid(16, 1024, 1024, 2);
    SinglePassEngine engine(configs);
    engine.processTrace(trace);

    for (std::size_t i = 0; i < configs.size(); ++i) {
        const CacheGeometry geom(configs[i]);
        const auto &hist = engine.distanceHistogram(geom.numSets());
        const auto counts = engine.countsFor(i);
        std::uint64_t hits = 0;
        for (std::uint32_t d = 1;
             d <= geom.assoc() && d < hist.size(); ++d)
            hits += hist[d];
        EXPECT_EQ(counts.accesses - counts.misses, hits)
            << configs[i].fullName();
    }
}

// ---------------------------------------------------------------- //
// TouchTimeSet compaction-boundary edge cases (PR 3). The structure
// lazily drops superseded entries once the backing array reaches 64
// entries AND more than half of it is dead; these tests pin the
// behavior exactly at and around that boundary against a naive
// linear model.
// ---------------------------------------------------------------- //

namespace {

/** Transparent reference model: a plain list of live times. */
class NaiveTouchSet
{
  public:
    void insertNew(std::uint64_t t) { live_.push_back(t); }

    std::uint64_t touch(std::uint64_t prev, std::uint64_t t)
    {
        std::uint64_t deeper = 0;
        for (std::uint64_t &v : live_) {
            if (v > prev)
                ++deeper;
        }
        live_.erase(std::find(live_.begin(), live_.end(), prev));
        live_.push_back(t);
        return deeper;
    }

    std::uint64_t live() const { return live_.size(); }

  private:
    std::vector<std::uint64_t> live_;
};

} // namespace

TEST(TouchTimeSet, AgreesWithNaiveModelAcrossCompaction)
{
    // A round-robin re-touch pattern over few blocks keeps the live
    // count small while the array grows one dead entry per touch —
    // the densest compaction workload possible. Sized to cross the
    // 64-entry threshold (and subsequent ones) many times.
    for (const std::size_t blocks : {1u, 2u, 3u, 31u, 32u, 33u}) {
        TouchTimeSet fast;
        NaiveTouchSet naive;
        std::vector<std::uint64_t> last(blocks);
        std::uint64_t clock = 0;
        for (std::size_t b = 0; b < blocks; ++b) {
            last[b] = ++clock;
            fast.insertNew(clock);
            naive.insertNew(clock);
        }
        for (int round = 0; round < 600; ++round) {
            const std::size_t b = round % blocks;
            ++clock;
            const std::uint64_t got = fast.touch(last[b], clock);
            const std::uint64_t want = naive.touch(last[b], clock);
            ASSERT_EQ(got, want)
                << blocks << " blocks, round " << round;
            ASSERT_EQ(fast.live(), naive.live());
            last[b] = clock;
        }
    }
}

TEST(TouchTimeSet, RandomizedAgreesWithNaiveModel)
{
    // Interleaved inserts and random re-touches: live set drifts up
    // and down across the size-64 boundary instead of pinning it.
    Rng rng(0x70c4ull);
    TouchTimeSet fast;
    NaiveTouchSet naive;
    std::vector<std::uint64_t> last;
    std::uint64_t clock = 0;
    for (int op = 0; op < 4000; ++op) {
        if (last.empty() || rng.chance(0.125)) {
            last.push_back(++clock);
            fast.insertNew(clock);
            naive.insertNew(clock);
        } else {
            const std::size_t i = rng.below(last.size());
            ++clock;
            ASSERT_EQ(fast.touch(last[i], clock),
                      naive.touch(last[i], clock))
                << "op " << op;
            last[i] = clock;
        }
        ASSERT_EQ(fast.live(), naive.live());
    }
}

TEST(TouchTimeSet, ExactBoundaryStepAroundSixtyFour)
{
    // Walk the array size one step at a time through 63, 64, 65
    // entries with exactly half of them dead, checking the reported
    // depth at every step: compaction must never perturb ranks.
    TouchTimeSet fast;
    NaiveTouchSet naive;
    std::vector<std::uint64_t> last;
    std::uint64_t clock = 0;
    // 20 live entries, then re-touch the oldest one 60 times: array
    // length passes through every size in [21, 80] while live stays
    // 20, crossing the (>= 64 entries, > 2x live) compaction gate
    // exactly at 64 and again after each compaction.
    for (int i = 0; i < 20; ++i) {
        last.push_back(++clock);
        fast.insertNew(clock);
        naive.insertNew(clock);
    }
    for (int step = 0; step < 60; ++step) {
        // Oldest live entry: depth must always be live - 1.
        const auto oldest =
            std::min_element(last.begin(), last.end());
        ++clock;
        const std::uint64_t got = fast.touch(*oldest, clock);
        ASSERT_EQ(got, naive.touch(*oldest, clock)) << "step " << step;
        ASSERT_EQ(got, fast.live() - 1);
        *oldest = clock;
    }
}
