/**
 * @file
 * Unit tests for the sweep summarization layer: runSingle vs a
 * hand-driven Cache, result summaries, and the paper's unweighted
 * multi-trace averaging.
 */

#include <gtest/gtest.h>

#include "multi/sweep_runner.hh"
#include "workload/synthetic.hh"

using namespace occsim;

namespace {

std::vector<CacheConfig>
someConfigs()
{
    return {makeConfig(64, 16, 8, 2), makeConfig(256, 16, 8, 2),
            makeConfig(1024, 16, 8, 2), makeConfig(1024, 32, 4, 2)};
}

/** runSingle every config over a private copy of @p trace. */
std::vector<SweepResult>
sweepAll(const std::vector<CacheConfig> &configs,
         const VectorTrace &trace, std::uint64_t max_refs = 0)
{
    std::vector<SweepResult> out;
    out.reserve(configs.size());
    for (const CacheConfig &config : configs) {
        VectorTrace copy = trace;
        out.push_back(runSingle(config, copy, max_refs));
    }
    return out;
}

} // namespace

TEST(RunSingle, MatchesHandDrivenCache)
{
    SyntheticParams params;
    params.seed = 11;
    const VectorTrace trace = makeSyntheticTrace(params, 30000);

    for (const CacheConfig &config : someConfigs()) {
        Cache cache(config);
        VectorTrace direct_copy = trace;
        cache.run(direct_copy);
        cache.finalizeResidencies();
        const SweepResult direct = summarizeCache(cache);

        VectorTrace single_copy = trace;
        const SweepResult alone = runSingle(config, single_copy);
        EXPECT_DOUBLE_EQ(direct.missRatio, alone.missRatio);
        EXPECT_DOUBLE_EQ(direct.trafficRatio, alone.trafficRatio);
        EXPECT_DOUBLE_EQ(direct.nibbleTrafficRatio,
                         alone.nibbleTrafficRatio);
        EXPECT_EQ(direct.grossBytes, alone.grossBytes);
    }
}

TEST(RunSingle, ResultsCarryConfigs)
{
    SyntheticParams params;
    const VectorTrace trace = makeSyntheticTrace(params, 2000);
    const auto configs = someConfigs();
    const auto results = sweepAll(configs, trace);
    for (std::size_t i = 0; i < configs.size(); ++i)
        EXPECT_EQ(results[i].config, configs[i]);
}

TEST(RunSingle, NibbleScalingConsistent)
{
    // For demand fetch every burst is one sub-block, so the scaled
    // ratio must equal traffic * (1/w)(1 + (w-1)/3) exactly.
    SyntheticParams params;
    params.seed = 47;
    SyntheticSource source(params);
    const SweepResult result =
        runSingle(makeConfig(256, 16, 8, 2), source, 20000);
    const double words = 8.0 / 2.0;
    const double factor = (1.0 + (words - 1.0) / 3.0) / words;
    EXPECT_NEAR(result.nibbleTrafficRatio,
                result.trafficRatio * factor, 1e-12);
}

TEST(AverageResults, UnweightedMean)
{
    SyntheticParams params_a;
    params_a.seed = 1;
    SyntheticParams params_b;
    params_b.seed = 2;
    params_b.dataSize = 64 * 1024;  // worse locality

    const auto configs = someConfigs();
    std::vector<std::vector<SweepResult>> runs;
    for (const SyntheticParams &params : {params_a, params_b}) {
        const VectorTrace trace = makeSyntheticTrace(params, 20000);
        runs.push_back(sweepAll(configs, trace));
    }

    const auto averaged = averageResults(runs);
    ASSERT_EQ(averaged.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_NEAR(averaged[i].missRatio,
                    (runs[0][i].missRatio + runs[1][i].missRatio) / 2,
                    1e-12);
        EXPECT_NEAR(averaged[i].trafficRatio,
                    (runs[0][i].trafficRatio +
                     runs[1][i].trafficRatio) / 2,
                    1e-12);
    }
}

TEST(AverageResults, SingleRunIsIdentity)
{
    SyntheticParams params;
    const VectorTrace trace = makeSyntheticTrace(params, 10000);
    const auto results = sweepAll(someConfigs(), trace);
    const auto averaged = averageResults({results});
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_DOUBLE_EQ(averaged[i].missRatio, results[i].missRatio);
        EXPECT_DOUBLE_EQ(averaged[i].warmMissRatio,
                         results[i].warmMissRatio);
    }
}
