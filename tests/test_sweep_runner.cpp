// This TU intentionally exercises the legacy sweep entry points.
#define OCCSIM_ALLOW_DEPRECATED 1

/**
 * @file
 * Unit tests for the single-pass sweep runner: equivalence with
 * individual simulations, result summaries, and the paper's
 * unweighted multi-trace averaging.
 */

#include <gtest/gtest.h>

#include "multi/sweep_runner.hh"
#include "workload/synthetic.hh"

using namespace occsim;

namespace {

std::vector<CacheConfig>
someConfigs()
{
    return {makeConfig(64, 16, 8, 2), makeConfig(256, 16, 8, 2),
            makeConfig(1024, 16, 8, 2), makeConfig(1024, 32, 4, 2)};
}

} // namespace

TEST(SweepRunner, MatchesIndividualRuns)
{
    SyntheticParams params;
    params.seed = 11;
    const VectorTrace trace = makeSyntheticTrace(params, 30000);

    const auto configs = someConfigs();
    SweepRunner runner(configs);
    VectorTrace copy = trace;
    EXPECT_EQ(runner.run(copy), trace.size());

    const auto swept = runner.results();
    ASSERT_EQ(swept.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        VectorTrace single_copy = trace;
        const SweepResult alone = runSingle(configs[i], single_copy);
        EXPECT_DOUBLE_EQ(swept[i].missRatio, alone.missRatio);
        EXPECT_DOUBLE_EQ(swept[i].trafficRatio, alone.trafficRatio);
        EXPECT_DOUBLE_EQ(swept[i].nibbleTrafficRatio,
                         alone.nibbleTrafficRatio);
        EXPECT_EQ(swept[i].grossBytes, alone.grossBytes);
    }
}

TEST(SweepRunner, ResultsCarryConfigs)
{
    const auto configs = someConfigs();
    SweepRunner runner(configs);
    const auto results = runner.results();
    for (std::size_t i = 0; i < configs.size(); ++i)
        EXPECT_EQ(results[i].config, configs[i]);
}

TEST(SweepRunner, NibbleScalingConsistent)
{
    // For demand fetch every burst is one sub-block, so the scaled
    // ratio must equal traffic * (1/w)(1 + (w-1)/3) exactly.
    SyntheticParams params;
    params.seed = 47;
    SyntheticSource source(params);
    SweepRunner runner({makeConfig(256, 16, 8, 2)});
    runner.run(source, 20000);
    const SweepResult result = runner.results()[0];
    const double words = 8.0 / 2.0;
    const double factor = (1.0 + (words - 1.0) / 3.0) / words;
    EXPECT_NEAR(result.nibbleTrafficRatio,
                result.trafficRatio * factor, 1e-12);
}

TEST(SweepRunner, RespectsMaxRefs)
{
    SyntheticParams params;
    SyntheticSource source(params);
    SweepRunner runner(someConfigs());
    EXPECT_EQ(runner.run(source, 500), 500u);
}

TEST(AverageResults, UnweightedMean)
{
    SyntheticParams params_a;
    params_a.seed = 1;
    SyntheticParams params_b;
    params_b.seed = 2;
    params_b.dataSize = 64 * 1024;  // worse locality

    const auto configs = someConfigs();
    std::vector<std::vector<SweepResult>> runs;
    for (const SyntheticParams &params : {params_a, params_b}) {
        SyntheticSource source(params);
        SweepRunner runner(configs);
        runner.run(source, 20000);
        runs.push_back(runner.results());
    }

    const auto averaged = averageResults(runs);
    ASSERT_EQ(averaged.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        EXPECT_NEAR(averaged[i].missRatio,
                    (runs[0][i].missRatio + runs[1][i].missRatio) / 2,
                    1e-12);
        EXPECT_NEAR(averaged[i].trafficRatio,
                    (runs[0][i].trafficRatio +
                     runs[1][i].trafficRatio) / 2,
                    1e-12);
    }
}

TEST(AverageResults, SingleRunIsIdentity)
{
    SyntheticParams params;
    SyntheticSource source(params);
    SweepRunner runner(someConfigs());
    runner.run(source, 10000);
    const auto results = runner.results();
    const auto averaged = averageResults({results});
    for (std::size_t i = 0; i < results.size(); ++i) {
        EXPECT_DOUBLE_EQ(averaged[i].missRatio, results[i].missRatio);
        EXPECT_DOUBLE_EQ(averaged[i].warmMissRatio,
                         results[i].warmMissRatio);
    }
}
