/**
 * @file
 * Unit tests for the main-memory update policies (write-through vs
 * copy-back), an extension the paper explicitly deferred ("write
 * through vs copy back factors" in its further-studies list).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "workload/synthetic.hh"

using namespace occsim;

namespace {

MemRef
read(Addr addr)
{
    return MemRef{addr, RefKind::DataRead, 2};
}

MemRef
write(Addr addr)
{
    return MemRef{addr, RefKind::DataWrite, 2};
}

CacheConfig
wpConfig(WritePolicy policy)
{
    CacheConfig config = makeConfig(64, 16, 4, 2);
    config.write = policy;
    return config;
}

} // namespace

TEST(WriteThrough, EveryStoreGoesToMemory)
{
    Cache cache(wpConfig(WritePolicy::WriteThrough));
    cache.access(write(0x100));  // miss: allocate + fetch + store
    cache.access(write(0x100));  // hit: store
    cache.access(write(0x100));  // hit: store
    EXPECT_EQ(cache.stats().storeWords(), 3u);
    EXPECT_EQ(cache.stats().writebackWords(), 0u);
}

TEST(CopyBack, RewritesCostNothingUntilEviction)
{
    Cache cache(wpConfig(WritePolicy::CopyBack));
    for (int i = 0; i < 10; ++i)
        cache.access(write(0x100));
    EXPECT_EQ(cache.stats().storeWords(), 0u);
    EXPECT_EQ(cache.stats().writebackWords(), 0u)
        << "dirty data stays in the cache";

    // Evict block 0x100 by filling the (fully associative) set.
    for (Addr block = 1; block <= 4; ++block)
        cache.access(read(0x100 + block * 16));
    EXPECT_FALSE(cache.isBlockResident(0x100));
    // One dirty 4-byte sub-block = 2 words written back.
    EXPECT_EQ(cache.stats().writebackWords(), 2u);
}

TEST(CopyBack, FinalizeFlushesDirtyBlocks)
{
    Cache cache(wpConfig(WritePolicy::CopyBack));
    cache.access(write(0x100));
    cache.access(write(0x104));  // second sub-block of same block
    cache.finalizeResidencies();
    EXPECT_EQ(cache.stats().writebackWords(), 4u);
    // Finalizing again adds nothing (dirty cleared).
    cache.finalizeResidencies();
    EXPECT_EQ(cache.stats().writebackWords(), 4u);
}

TEST(CopyBack, CleanEvictionWritesNothing)
{
    Cache cache(wpConfig(WritePolicy::CopyBack));
    cache.access(read(0x100));
    for (Addr block = 1; block <= 4; ++block)
        cache.access(read(0x100 + block * 16));
    EXPECT_EQ(cache.stats().writebackWords(), 0u);
}

TEST(WritePolicy, NoAllocateStoreGoesStraightToMemory)
{
    CacheConfig config = wpConfig(WritePolicy::CopyBack);
    config.writeAllocate = false;
    Cache cache(config);
    cache.access(write(0x100));
    EXPECT_EQ(cache.stats().storeWords(), 1u);
    EXPECT_EQ(cache.stats().writebackWords(), 0u);
    EXPECT_FALSE(cache.isBlockResident(0x100));
}

TEST(WritePolicy, HeadlineMetricsUnaffected)
{
    // The paper's read-only miss/traffic ratios must be identical
    // under either policy (only the write-side counters differ).
    SyntheticParams params;
    params.seed = 77;
    const VectorTrace trace = makeSyntheticTrace(params, 40000);

    Cache wt(wpConfig(WritePolicy::WriteThrough));
    Cache cb(wpConfig(WritePolicy::CopyBack));
    VectorTrace copy = trace;
    wt.run(copy);
    copy = trace;
    cb.run(copy);

    EXPECT_EQ(wt.stats().misses(), cb.stats().misses());
    EXPECT_EQ(wt.stats().wordsFetched(), cb.stats().wordsFetched());
    EXPECT_DOUBLE_EQ(wt.stats().missRatio(), cb.stats().missRatio());
}

TEST(WritePolicy, CopyBackWinsOnRewriteHeavyStreams)
{
    // Repeatedly rewriting a small hot set: copy-back coalesces the
    // stores, write-through pays per store.
    Cache wt(wpConfig(WritePolicy::WriteThrough));
    Cache cb(wpConfig(WritePolicy::CopyBack));
    for (int round = 0; round < 1000; ++round) {
        for (Addr addr = 0x100; addr < 0x110; addr += 2) {
            wt.access(write(addr));
            cb.access(write(addr));
        }
    }
    wt.finalizeResidencies();
    cb.finalizeResidencies();
    const std::uint64_t wt_traffic =
        wt.stats().storeWords() + wt.stats().writebackWords();
    const std::uint64_t cb_traffic =
        cb.stats().storeWords() + cb.stats().writebackWords();
    EXPECT_GT(wt_traffic, 20 * cb_traffic);
}

TEST(WritePolicy, WriteThroughCanWinOnWriteOnceStreams)
{
    // One store per sub-block, never rewritten: write-through moves
    // one word per store; copy-back writes back the whole sub-block.
    CacheConfig wt_config = makeConfig(64, 16, 8, 2);  // 4-word subs
    CacheConfig cb_config = wt_config;
    cb_config.write = WritePolicy::CopyBack;
    Cache wt(wt_config);
    Cache cb(cb_config);
    for (Addr addr = 0; addr < 4096; addr += 8) {
        wt.access(write(addr));
        cb.access(write(addr));
    }
    wt.finalizeResidencies();
    cb.finalizeResidencies();
    const std::uint64_t wt_traffic =
        wt.stats().storeWords() + wt.stats().writebackWords();
    const std::uint64_t cb_traffic =
        cb.stats().storeWords() + cb.stats().writebackWords();
    EXPECT_LT(wt_traffic, cb_traffic);
}

TEST(WritePolicy, TotalTrafficRatioIncludesAllComponents)
{
    Cache cache(wpConfig(WritePolicy::WriteThrough));
    cache.access(read(0x100));   // 2-word fetch
    cache.access(write(0x200));  // 2-word fetch + 1-word store
    cache.finalizeResidencies();
    // (2 + 2 + 1) words over 2 references.
    EXPECT_DOUBLE_EQ(cache.stats().totalTrafficRatio(), 2.5);
}
