/**
 * @file
 * Disassembler tests, centered on the strongest property available:
 * for every program in the library, on both machine widths,
 * assemble -> disassemble -> re-assemble must produce bit-identical
 * instructions, addresses, and data images.
 */

#include <gtest/gtest.h>

#include "vm/disasm.hh"
#include "vm/machine.hh"
#include "vm/program_library.hh"

using namespace occsim;

TEST(Disasm, SingleInstructions)
{
    Instruction movi;
    movi.op = Opcode::MOVI;
    movi.rd = 3;
    movi.imm = -42;
    EXPECT_EQ(disassembleInstruction(movi), "movi r3, -42");

    Instruction add;
    add.op = Opcode::ADD;
    add.rd = 1;
    add.rs = 2;
    add.rt = 3;
    EXPECT_EQ(disassembleInstruction(add), "add  r1, r2, r3");

    Instruction st;
    st.op = Opcode::ST;
    st.rs = 4;
    st.rt = 5;
    st.imm = 16;
    EXPECT_EQ(disassembleInstruction(st), "st   r4, r5, 16");

    Instruction ret;
    ret.op = Opcode::RET;
    EXPECT_EQ(disassembleInstruction(ret), "ret");
}

TEST(Disasm, ListingContainsAddresses)
{
    const MachineConfig config = MachineConfig::word16();
    const Program program = assemble("    movi r1, 7\n    halt\n"
                                     ".data\nv: .word 9\n",
                                     config);
    const std::string listing = disassemble(program);
    EXPECT_NE(listing.find("@0x0100"), std::string::npos);
    EXPECT_NE(listing.find("movi r1, 7"), std::string::npos);
    EXPECT_NE(listing.find(".word 9"), std::string::npos);
}

namespace {

void
expectRoundTrip(const std::string &source, const MachineConfig &config)
{
    const Program original = assemble(source, config);
    const std::string listing = disassemble(original);
    const Program again = assemble(listing, config);

    ASSERT_EQ(again.instrs.size(), original.instrs.size());
    for (std::size_t i = 0; i < original.instrs.size(); ++i) {
        EXPECT_EQ(again.instrs[i].op, original.instrs[i].op) << i;
        EXPECT_EQ(again.instrs[i].rd, original.instrs[i].rd) << i;
        EXPECT_EQ(again.instrs[i].rs, original.instrs[i].rs) << i;
        EXPECT_EQ(again.instrs[i].rt, original.instrs[i].rt) << i;
        EXPECT_EQ(again.instrs[i].imm, original.instrs[i].imm) << i;
        EXPECT_EQ(again.instrAddr[i], original.instrAddr[i]) << i;
    }
    EXPECT_EQ(again.data, original.data);
    EXPECT_EQ(again.pcMap, original.pcMap);
}

class DisasmRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::uint32_t>>
{
};

} // namespace

TEST_P(DisasmRoundTrip, ReassemblesIdentically)
{
    const auto &[name, word] = GetParam();
    const MachineConfig config = word == 2 ? MachineConfig::word16()
                                           : MachineConfig::word32();
    expectRoundTrip(programByName(name), config);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, DisasmRoundTrip,
    ::testing::Combine(::testing::ValuesIn(programNames()),
                       ::testing::Values(2u, 4u)),
    [](const auto &param_info) {
        return std::get<0>(param_info.param) +
               (std::get<1>(param_info.param) == 2 ? "_w16" : "_w32");
    });

TEST(Disasm, RoundTrippedProgramStillComputes)
{
    // Not just structural identity: the re-assembled program must
    // still run and produce the right answer.
    const MachineConfig config = MachineConfig::word16();
    const Program original = assemble(progSieve(500), config);
    const Program again = assemble(disassemble(original), config);
    Machine machine(again);
    VectorTrace sink;
    machine.run(sink);
    ASSERT_TRUE(machine.halted());
    // The listing has no symbolic labels; take the address from the
    // original program. pi(499) = 95.
    EXPECT_EQ(machine.peekWord(original.symbol("nprimes")), 95);
}
