/**
 * @file
 * Unit tests for the Section 2.2 instruction-buffer models: the
 * sequential (VAX-style) buffer's hit/flush/traffic semantics and its
 * relationship to the CRAY-style (branch-target-recognizing) buffer
 * and the paper's minimum cache.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/instr_buffer.hh"
#include "trace/filters.hh"
#include "vm/machine.hh"
#include "vm/program_library.hh"

using namespace occsim;

TEST(SequentialBuffer, StraightLineHitsAfterFirstFetch)
{
    SequentialInstrBuffer buffer(8, 2);
    EXPECT_FALSE(buffer.fetch(0x100));  // first fetch: flush/refill
    EXPECT_TRUE(buffer.fetch(0x102));
    EXPECT_TRUE(buffer.fetch(0x104));
    EXPECT_TRUE(buffer.fetch(0x106));
    // Sequential beyond the initial window keeps hitting (the buffer
    // prefetches ahead).
    EXPECT_TRUE(buffer.fetch(0x108));
    EXPECT_EQ(buffer.flushes(), 1u);
    EXPECT_DOUBLE_EQ(buffer.hitRatio(), 4.0 / 5.0);
}

TEST(SequentialBuffer, AnyBranchFlushes)
{
    SequentialInstrBuffer buffer(8, 2);
    buffer.fetch(0x100);
    buffer.fetch(0x102);
    // Backward branch to an address that *was* just fetched: a plain
    // buffer cannot recognize it (the paper's key limitation).
    EXPECT_FALSE(buffer.fetch(0x100));
    EXPECT_EQ(buffer.flushes(), 2u);
}

TEST(SequentialBuffer, TrafficNeverBelowOne)
{
    // A tight loop: a cache would capture it; the plain buffer
    // re-fetches every iteration and wastes its prefetch tail.
    SequentialInstrBuffer buffer(8, 2);
    for (int i = 0; i < 100; ++i) {
        buffer.fetch(0x100);
        buffer.fetch(0x102);
    }
    EXPECT_GE(buffer.trafficRatio(), 1.0);
    // 100 flushes x 4 words each over 200 fetches = 2.0.
    EXPECT_DOUBLE_EQ(buffer.trafficRatio(), 2.0);
}

TEST(CrayStyleBuffer, ConfigIsFullyAssociativeCache)
{
    const CacheConfig config = makeCrayStyleBuffer(4, 128, 2);
    EXPECT_EQ(config.netSize, 512u);
    EXPECT_EQ(config.blockSize, 128u);
    EXPECT_EQ(config.subBlockSize, 128u);
    EXPECT_EQ(config.assoc, 4u);
    const CacheGeometry geom(config);
    EXPECT_EQ(geom.numSets(), 1u);
}

TEST(CrayStyleBuffer, HoldsLoopsThePlainBufferCannot)
{
    // A loop larger than the plain buffer but smaller than one CRAY
    // buffer: the cache-style buffer hits after the first iteration,
    // the sequential buffer flushes on every backward branch.
    Program program = assemble(progSieve(512),
                               MachineConfig::word16());
    VmTraceSource source(std::move(program), "loop", true);
    VectorTrace trace = collect(source, 60000);

    SequentialInstrBuffer plain(8, 2);
    trace.reset();
    plain.run(trace);

    Cache cray(makeCrayStyleBuffer(4, 128, 2));
    trace.reset();
    KindFilter istream(trace, KindFilter::Select::InstructionsOnly);
    cray.run(istream);

    const double plain_miss = 1.0 - plain.hitRatio();
    EXPECT_LT(cray.stats().missRatio(), plain_miss);
}

TEST(MinimumCacheVsBuffers, CutsTrafficWherePlainBufferCannot)
{
    // Section 2.2's argument quantified: on an instruction stream the
    // 64-byte minimum cache reduces bus words below 1 per fetch,
    // which no sequential buffer can do.
    Program program = assemble(progLexer(1024, 4, 8),
                               MachineConfig::word16());
    VmTraceSource source(std::move(program), "istream", true);
    VectorTrace trace = collect(source, 80000);

    SequentialInstrBuffer plain(8, 2);
    trace.reset();
    plain.run(trace);

    Cache minimum(makeConfig(64, 4, 2, 2));
    trace.reset();
    KindFilter istream(trace, KindFilter::Select::InstructionsOnly);
    minimum.run(istream);

    EXPECT_GE(plain.trafficRatio(), 1.0);
    EXPECT_LT(minimum.stats().trafficRatio(), 1.0);
}
