/**
 * @file
 * Unit tests for the bus cost models (Section 4.3): linear,
 * nibble-mode (1 + (w-1)/3) and transactional (a + b*w), plus the
 * traffic accounting.
 */

#include <gtest/gtest.h>

#include "mem/bus_model.hh"

using namespace occsim;

TEST(LinearBus, CostIsWordCount)
{
    LinearBus bus;
    EXPECT_DOUBLE_EQ(bus.burstCost(1), 1.0);
    EXPECT_DOUBLE_EQ(bus.burstCost(4), 4.0);
    EXPECT_DOUBLE_EQ(bus.perWordCost(4), 1.0);
    EXPECT_DOUBLE_EQ(bus.scaleFactor(8), 1.0);
}

TEST(NibbleModeBus, PaperFormula)
{
    // The paper: cost of w sequential words = 1 + (w-1)/3.
    NibbleModeBus bus;
    EXPECT_DOUBLE_EQ(bus.burstCost(1), 1.0);
    EXPECT_DOUBLE_EQ(bus.burstCost(4), 2.0);
    // Scale factor for a 4-word sub-block: (1/4)(1 + 1) = 0.5, the
    // factor that turns PDP-11 16,8 traffic 1.596 into 0.798.
    EXPECT_DOUBLE_EQ(bus.scaleFactor(4), 0.5);
    // 2-word bursts (e.g. 8-byte sub-blocks on a 32-bit machine):
    // (1/2)(1 + 1/3) = 2/3, turning VAX 0.8498 into 0.5665.
    EXPECT_NEAR(bus.scaleFactor(2), 2.0 / 3.0, 1e-12);
}

TEST(NibbleModeBus, SingleWordNeverCheaper)
{
    NibbleModeBus bus;
    EXPECT_DOUBLE_EQ(bus.scaleFactor(1), 1.0);
    // Per-word cost decreases monotonically with burst size.
    double prev = bus.perWordCost(1);
    for (std::uint64_t w = 2; w <= 32; ++w) {
        const double cost = bus.perWordCost(w);
        EXPECT_LT(cost, prev);
        prev = cost;
    }
    // ...but never below the asymptote 1/ratio.
    EXPECT_GT(bus.perWordCost(1024), 1.0 / 3.0);
}

TEST(NibbleModeBus, CustomRatio)
{
    NibbleModeBus bus(2.0);
    EXPECT_DOUBLE_EQ(bus.burstCost(3), 2.0);
    EXPECT_NE(bus.name().find("2.0"), std::string::npos);
}

TEST(TransactionalBus, AffineCost)
{
    TransactionalBus bus(3.0, 0.5);
    EXPECT_DOUBLE_EQ(bus.burstCost(1), 3.5);
    EXPECT_DOUBLE_EQ(bus.burstCost(10), 8.0);
    EXPECT_DOUBLE_EQ(bus.overhead(), 3.0);
    EXPECT_DOUBLE_EQ(bus.perWord(), 0.5);
}

TEST(TrafficAccount, AccumulatesWordsAndCost)
{
    NibbleModeBus bus;
    TrafficAccount account(bus);
    account.addBurst(4);
    account.addBurst(1);
    EXPECT_EQ(account.words(), 5u);
    EXPECT_EQ(account.bursts(), 2u);
    EXPECT_DOUBLE_EQ(account.cost(), 3.0);
    account.reset();
    EXPECT_EQ(account.words(), 0u);
    EXPECT_DOUBLE_EQ(account.cost(), 0.0);
}

TEST(BusModels, EquivalenceAtOneWord)
{
    // Every model must price a single-word burst consistently with
    // its formula so scaled ratios are comparable.
    LinearBus linear;
    NibbleModeBus nibble;
    TransactionalBus trans(0.0, 1.0);
    EXPECT_DOUBLE_EQ(linear.burstCost(1), 1.0);
    EXPECT_DOUBLE_EQ(nibble.burstCost(1), 1.0);
    EXPECT_DOUBLE_EQ(trans.burstCost(1), 1.0);
}
