/**
 * @file
 * Tests of the differential oracle & fuzz subsystem itself: the
 * naive ReferenceCache must match the real engines across the paper
 * grid and generated adversarial cases, generators must be pure
 * functions of their seed, the CrossCheck runtime mode must verify
 * (and match) the fast path, and — crucially — an injected
 * off-by-one must be caught and shrunk to a tiny replayable repro.
 * A fuzzer that cannot detect a planted bug is worthless evidence.
 */

#include <gtest/gtest.h>

#include <set>

#include "check/fuzz.hh"
#include "check/generators.hh"
#include "harness/experiment.hh"
#include "multi/parallel_sweep.hh"
#include "multi/sweep_api.hh"

using namespace occsim;

namespace {

/** Suite sweep through the unified API; returns the per-trace grid. */
std::vector<std::vector<occsim::SweepResult>>
sweepGrid(const std::vector<std::shared_ptr<const occsim::VectorTrace>>
              &traces,
          const std::vector<occsim::CacheConfig> &configs,
          occsim::ThreadPool *pool,
          occsim::SweepEngine engine = occsim::SweepEngine::Auto)
{
    occsim::SweepRequest request;
    request.traces = traces;
    request.configs = configs;
    request.pool = pool;
    request.engine = engine;
    request.wantAverage = false;
    return occsim::runSweep(request).perTrace;
}

constexpr std::uint64_t kSeed = 0x5eedull;

/** Expect no differential mismatch, reporting every diff line. */
void
expectClean(const CacheConfig &config, const std::vector<MemRef> &refs)
{
    const CaseReport report = runDifferentialCase(config, refs);
    for (const std::string &line : report.diffs)
        ADD_FAILURE() << config.fullName() << ": " << line;
    EXPECT_FALSE(report.mismatch());
}

} // namespace

TEST(Generators, ConfigGenIsDeterministic)
{
    ConfigGen a(kSeed), b(kSeed), other(kSeed + 1);
    bool any_difference = false;
    for (int i = 0; i < 64; ++i) {
        const CacheConfig from_a = a.next();
        EXPECT_EQ(from_a, b.next());
        any_difference = any_difference || !(from_a == other.next());
    }
    EXPECT_TRUE(any_difference);
}

TEST(Generators, TraceGenIsDeterministic)
{
    TraceGen a(kSeed), b(kSeed);
    const auto ta = a.make(2000, 2);
    const auto tb = b.make(2000, 2);
    ASSERT_EQ(ta->size(), tb->size());
    for (std::size_t i = 0; i < ta->size(); ++i) {
        EXPECT_EQ((*ta)[i].addr, (*tb)[i].addr);
        EXPECT_EQ((*ta)[i].kind, (*tb)[i].kind);
    }
}

TEST(Generators, ConfigGenCoversTheDesignSpace)
{
    ConfigGen gen(kSeed);
    std::set<ReplacementPolicy> replacements;
    std::set<FetchPolicy> fetches;
    std::set<WritePolicy> writes;
    std::size_t eligible = 0;
    for (int i = 0; i < 400; ++i) {
        const CacheConfig config = gen.next();
        // Every generated point must be a valid geometry
        // (construction aborts on an invalid one).
        const CacheGeometry geom(config);
        EXPECT_GE(geom.numBlocks(), 1u);
        replacements.insert(config.replacement);
        fetches.insert(config.fetch);
        writes.insert(config.write);
        if (singlePassEligible(config))
            ++eligible;
    }
    EXPECT_EQ(replacements.size(), 3u);
    EXPECT_EQ(fetches.size(), 4u);
    EXPECT_EQ(writes.size(), 2u);
    // The single-pass fast path must be exercised by a healthy
    // fraction of cases.
    EXPECT_GE(eligible, 40u);
}

TEST(Generators, TracesAreWordAlignedAndMixed)
{
    TraceGen gen(kSeed);
    const auto trace = gen.make(5000, 4);
    ASSERT_EQ(trace->size(), 5000u);
    std::set<RefKind> kinds;
    for (const MemRef &ref : trace->refs()) {
        EXPECT_EQ(ref.addr % 4, 0u);
        kinds.insert(ref.kind);
    }
    EXPECT_EQ(kinds.size(), 3u);
}

TEST(Differential, OracleMatchesEnginesOnThePaperGrid)
{
    // The paper's own design points, driven by one adversarial trace
    // per word size: every engine must agree on every point.
    TraceGen gen(kSeed);
    const auto trace = gen.make(20000, 2);
    for (const std::uint32_t net : {64u, 256u, 1024u}) {
        for (const CacheConfig &config : paperGrid(net, 2))
            expectClean(config, trace->refs());
    }
}

TEST(Differential, OracleMatchesEnginesOnRandomCases)
{
    for (std::uint64_t case_seed = 1; case_seed <= 24; ++case_seed) {
        const FuzzCase fuzz_case = makeFuzzCase(case_seed, 600);
        expectClean(fuzz_case.config, fuzz_case.trace->refs());
    }
}

TEST(Fuzz, FixedSeedRunIsCleanAndReplayable)
{
    FuzzOptions options;
    options.cases = 40;
    options.refsPerCase = 400;
    const FuzzSummary summary = runFuzz(options);
    EXPECT_TRUE(summary.passed());
    EXPECT_EQ(summary.casesRun, 40u);

    // Replaying any individual case (here: the generator's first) is
    // independent of loop position and equally clean.
    Rng master(options.seed);
    const FuzzSummary replay =
        replayFuzzCase(master.next(), options);
    EXPECT_TRUE(replay.passed());
}

TEST(Fuzz, InjectedOffByOneIsCaughtAndShrunk)
{
    // The acceptance gate for the whole subsystem: perturb the
    // oracle's miss count post-hoc and require the harness to flag
    // the mismatch and shrink it to a minimal repro.
    FuzzOptions options;
    options.cases = 4;
    options.refsPerCase = 768;
    options.diff.perturbReference = [](ReferenceStats &stats) {
        if (stats.misses > 0)
            --stats.misses;
        else
            ++stats.misses;
    };
    const FuzzSummary summary = runFuzz(options);
    ASSERT_EQ(summary.mismatches, 1u);
    EXPECT_FALSE(summary.diffs.empty());

    // Shrunk repro: tiny, still failing under the fault, and clean
    // without it (so it reproduces the *injected* divergence, not an
    // artifact of shrinking).
    EXPECT_LE(summary.shrunk.refs.size(), 32u);
    EXPECT_GE(summary.shrunk.refs.size(), 1u);
    EXPECT_TRUE(runDifferentialCase(summary.shrunk.config,
                                    summary.shrunk.refs, options.diff)
                    .mismatch());
    EXPECT_FALSE(runDifferentialCase(summary.shrunk.config,
                                     summary.shrunk.refs)
                     .mismatch());

    // The repro is a paste-ready test body naming the replay seed's
    // ingredients.
    EXPECT_NE(summary.repro.find("CacheConfig config;"),
              std::string::npos);
    EXPECT_NE(summary.repro.find("runDifferentialCase"),
              std::string::npos);
    EXPECT_EQ(summary.failingCaseSeed,
              Rng(options.seed).next());  // first case failed

    // And the case seed replays to the same shrunk repro.
    const FuzzSummary replay =
        replayFuzzCase(summary.failingCaseSeed, options);
    EXPECT_EQ(replay.mismatches, 1u);
    EXPECT_EQ(replay.shrunk.refs.size(), summary.shrunk.refs.size());
    EXPECT_EQ(replay.repro, summary.repro);
}

TEST(CrossCheck, ShadowVerifiesTheFastPath)
{
    // A mixed grid: eligible configs (fast-pathed) alongside
    // ineligible ones (batched); shadows sample across both.
    std::vector<CacheConfig> configs;
    for (const std::uint32_t net : {256u, 1024u}) {
        for (const CacheConfig &config : paperGrid(net, 2))
            configs.push_back(config);
    }
    TraceGen gen(kSeed);
    const std::shared_ptr<const VectorTrace> trace =
        gen.make(20000, 2);

    ParallelSweepRunner checked(configs, nullptr,
                                SweepEngine::CrossCheck);
    EXPECT_GE(checked.crossCheckCount(), 1u);
    EXPECT_LE(checked.crossCheckCount(), checked.size());
    EXPECT_EQ(checked.fastPathCount() + checked.batchedCount() +
                  checked.fusedCount(),
              checked.size())
        << "under CrossCheck every config is on an optimized engine";
    EXPECT_GE(checked.fusedCount(), 2u)
        << "the paper grid's sector configs should fuse";
    checked.run(trace);  // fatal on any divergence

    // CrossCheck is Auto plus verification: identical results.
    ParallelSweepRunner plain(configs, nullptr, SweepEngine::Auto);
    plain.run(trace);
    const auto want = plain.results();
    const auto got = checked.results();
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].missRatio, want[i].missRatio);
        EXPECT_EQ(got[i].trafficRatio, want[i].trafficRatio);
        EXPECT_EQ(got[i].warmNibbleTrafficRatio,
                  want[i].warmNibbleTrafficRatio);
    }
}

TEST(CrossCheck, RunSweepDelegatesPerTrace)
{
    std::vector<CacheConfig> configs;
    for (const CacheConfig &config : paperGrid(256, 2))
        configs.push_back(config);
    TraceGen gen(kSeed);
    const std::vector<std::shared_ptr<const VectorTrace>> traces{
        gen.make(8000, 2), gen.make(8000, 2)};

    const auto checked =
        sweepGrid(traces, configs, nullptr, SweepEngine::CrossCheck);
    const auto plain = sweepGrid(traces, configs, nullptr);
    ASSERT_EQ(checked.size(), plain.size());
    for (std::size_t t = 0; t < checked.size(); ++t) {
        for (std::size_t c = 0; c < checked[t].size(); ++c) {
            EXPECT_EQ(checked[t][c].missRatio, plain[t][c].missRatio);
            EXPECT_EQ(checked[t][c].nibbleTrafficRatio,
                      plain[t][c].nibbleTrafficRatio);
        }
    }
}
