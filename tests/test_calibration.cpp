/**
 * @file
 * Calibration guard tests: the suite-level properties that make the
 * reproduction honest, pinned so a future edit to a program or suite
 * parameter that silently breaks the paper's shape fails CI. All run
 * at a reduced trace length for speed; the bands are wide enough to
 * be robust to that.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "trace/trace_stats.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

constexpr std::uint64_t kRefs = 200000;

TraceProfile
suiteProfile(const Suite &suite, std::size_t index)
{
    const VectorTrace trace = buildTrace(suite.traces[index], kRefs);
    return profileTrace(trace);
}

double
meanFootprint(const Suite &suite)
{
    double total = 0.0;
    for (std::size_t i = 0; i < suite.traces.size(); ++i) {
        total += static_cast<double>(
            suiteProfile(suite, i).footprintBytes());
    }
    return total / static_cast<double>(suite.traces.size());
}

} // namespace

TEST(Calibration, FootprintsScaleAcrossArchitectures)
{
    // The working-set hierarchy the paper describes: compact Z8000
    // utilities, small PDP-11 programs, larger VAX jobs, and
    // System/370 jobs "using hundreds of kilobytes".
    const double z8000 = meanFootprint(z8000Suite());
    const double pdp11 = meanFootprint(pdp11Suite());
    const double s370 = meanFootprint(s370Suite());

    // Thresholds reflect the reduced 200k-reference prefix: the
    // S/370 structures keep growing well past it (≈66 KB mean at the
    // full 1M references).
    EXPECT_LT(z8000, 32.0 * 1024);
    EXPECT_LT(pdp11, 48.0 * 1024);
    EXPECT_GT(s370, 32.0 * 1024);
    EXPECT_GT(s370, 2.0 * pdp11);
}

TEST(Calibration, ReferenceMixIsProgramLike)
{
    // Every suite trace should look like an executing program:
    // instruction-fetch majority, a real write share, and high
    // instruction sequentiality broken by branches.
    for (const Arch arch : kAllArchs) {
        const Suite suite = suiteFor(arch);
        for (std::size_t i = 0; i < suite.traces.size(); ++i) {
            const TraceProfile profile = suiteProfile(suite, i);
            EXPECT_GT(profile.ifetchFraction(), 0.5)
                << suite.profile.name << "/" << suite.traces[i].name;
            EXPECT_LT(profile.ifetchFraction(), 0.97)
                << suite.profile.name << "/" << suite.traces[i].name;
            EXPECT_GT(profile.writeFraction(), 0.001)
                << suite.profile.name << "/" << suite.traces[i].name;
            EXPECT_GT(profile.ifetchSequentiality, 0.5)
                << suite.profile.name << "/" << suite.traces[i].name;
            EXPECT_LT(profile.ifetchSequentiality, 0.99)
                << suite.profile.name << "/" << suite.traces[i].name;
        }
    }
}

TEST(Calibration, SmallCachesHurtEverySuite)
{
    // A 64-byte cache must miss substantially on every architecture
    // (the paper's smallest points run 0.24-0.55 at 8,8); if a suite
    // edit makes tiny caches look great, the shape is broken.
    for (const Arch arch : kAllArchs) {
        const Suite suite = suiteFor(arch);
        double miss = 0.0;
        for (const WorkloadSpec &spec : suite.traces) {
            VectorTrace trace = buildTrace(spec, kRefs);
            Cache cache(
                makeConfig(64, 8, 8, suite.profile.wordSize));
            cache.run(trace);
            miss += cache.stats().missRatio();
        }
        miss /= static_cast<double>(suite.traces.size());
        EXPECT_GT(miss, 0.12) << suite.profile.name;
        EXPECT_LT(miss, 0.85) << suite.profile.name;
    }
}

TEST(Calibration, KilobyteCacheHelpsEverySuiteButS370Least)
{
    double worst_16bit = 0.0;
    double s370_miss = 0.0;
    for (const Arch arch : kAllArchs) {
        const Suite suite = suiteFor(arch);
        double miss = 0.0;
        for (const WorkloadSpec &spec : suite.traces) {
            VectorTrace trace = buildTrace(spec, kRefs);
            Cache cache(
                makeConfig(1024, 16, 8, suite.profile.wordSize));
            cache.run(trace);
            miss += cache.stats().missRatio();
        }
        miss /= static_cast<double>(suite.traces.size());
        if (arch == Arch::S370)
            s370_miss = miss;
        else if (suite.profile.wordSize == 2)
            worst_16bit = std::max(worst_16bit, miss);
    }
    EXPECT_LT(worst_16bit, 0.08)
        << "16-bit suites must do well at 1 KB (paper: 0.02-0.05)";
    EXPECT_GT(s370_miss, 0.08)
        << "System/370 must stay hard at 1 KB (paper: 0.26)";
}
