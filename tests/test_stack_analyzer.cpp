/**
 * @file
 * Unit tests for the Mattson stack-distance analyzers, including the
 * key cross-validation property: for fully-associative LRU caches
 * with sub-block == block, the analyzer's one-pass predictions must
 * match direct Cache simulation exactly, for every capacity — and
 * likewise per-set for every associativity. This gives the simulator
 * an independent correctness oracle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cache/cache.hh"
#include "multi/stack_analyzer.hh"
#include "workload/synthetic.hh"

using namespace occsim;

TEST(StackAnalyzer, HandComputedDistances)
{
    StackAnalyzer analyzer(/*block_size=*/16);
    // Blocks: A B A C B A  (addresses x 16)
    for (const Addr block : {0u, 1u, 0u, 2u, 1u, 0u})
        analyzer.process(block * 16);
    EXPECT_EQ(analyzer.refs(), 6u);
    EXPECT_EQ(analyzer.distinctBlocks(), 3u);
    const auto &hist = analyzer.distanceHistogram();
    // Distances: A(inf) B(inf) A(2) C(inf) B(3) A(3)
    EXPECT_EQ(hist[1], 0u);
    EXPECT_EQ(hist[2], 1u);
    EXPECT_EQ(hist[3], 2u);
}

TEST(StackAnalyzer, MissRatioFromHistogram)
{
    StackAnalyzer analyzer(16);
    for (const Addr block : {0u, 1u, 0u, 2u, 1u, 0u})
        analyzer.process(block * 16);
    // Capacity 1: everything misses except consecutive repeats (none).
    EXPECT_DOUBLE_EQ(analyzer.missRatioForCapacity(1), 1.0);
    // Capacity 2: the distance-2 reference hits.
    EXPECT_DOUBLE_EQ(analyzer.missRatioForCapacity(2), 5.0 / 6.0);
    // Capacity 3+: all three reuses hit.
    EXPECT_DOUBLE_EQ(analyzer.missRatioForCapacity(3), 3.0 / 6.0);
    EXPECT_DOUBLE_EQ(analyzer.missRatioForCapacity(100), 3.0 / 6.0);
}

TEST(StackAnalyzer, InclusionProperty)
{
    // Miss ratio is monotone non-increasing in capacity (the LRU
    // stack inclusion property).
    SyntheticParams params;
    params.seed = 9;
    StackAnalyzer analyzer(16);
    SyntheticSource source(params);
    MemRef ref;
    for (int i = 0; i < 50000; ++i) {
        source.next(ref);
        analyzer.process(ref.addr);
    }
    double prev = 1.1;
    for (std::uint32_t capacity = 1; capacity <= 512; capacity *= 2) {
        const double miss = analyzer.missRatioForCapacity(capacity);
        EXPECT_LE(miss, prev + 1e-12);
        prev = miss;
    }
}

TEST(StackAnalyzer, MatchesDirectSimulationFullyAssociative)
{
    // One analyzer pass == many direct simulations, exactly.
    SyntheticParams params;
    params.seed = 21;
    const VectorTrace trace = makeSyntheticTrace(params, 40000);

    StackAnalyzer analyzer(16);
    analyzer.processTrace(trace);

    for (const std::uint32_t capacity : {2u, 4u, 8u, 16u, 64u}) {
        CacheConfig config =
            makeConfig(capacity * 16, 16, 16, 2);
        config.assoc = capacity;  // fully associative
        Cache cache(config);
        for (const MemRef &ref : trace.refs()) {
            // The analyzer has no write special-casing; feed reads.
            MemRef as_read = ref;
            as_read.kind = RefKind::DataRead;
            cache.access(as_read);
        }
        EXPECT_NEAR(cache.stats().missRatio(),
                    analyzer.missRatioForCapacity(capacity), 1e-12)
            << "capacity " << capacity;
    }
}

TEST(SetStackAnalyzer, MatchesDirectSimulationSetAssociative)
{
    SyntheticParams params;
    params.seed = 33;
    const VectorTrace trace = makeSyntheticTrace(params, 40000);

    constexpr std::uint32_t kSets = 8;
    SetStackAnalyzer analyzer(16, kSets);
    analyzer.processTrace(trace);

    for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        CacheConfig config =
            makeConfig(kSets * assoc * 16, 16, 16, 2);
        config.assoc = assoc;
        Cache cache(config);
        for (const MemRef &ref : trace.refs()) {
            MemRef as_read = ref;
            as_read.kind = RefKind::DataRead;
            cache.access(as_read);
        }
        EXPECT_NEAR(cache.stats().missRatio(),
                    analyzer.missRatioForAssoc(assoc), 1e-12)
            << "assoc " << assoc;
    }
}

TEST(SetStackAnalyzer, AssociativityGainsFlatten)
{
    // Strecker's observation reproduced as a weak property: going
    // 1 -> 4 way helps much more than 4 -> 8 way.
    SyntheticParams params;
    params.seed = 61;
    SetStackAnalyzer analyzer(16, 8);
    SyntheticSource source(params);
    MemRef ref;
    for (int i = 0; i < 80000; ++i) {
        source.next(ref);
        analyzer.process(ref.addr);
    }
    const double m1 = analyzer.missRatioForAssoc(1);
    const double m4 = analyzer.missRatioForAssoc(4);
    const double m8 = analyzer.missRatioForAssoc(8);
    EXPECT_GE(m1 - m4, m4 - m8);
}

TEST(StackAnalyzer, OverflowBeyondMaxDepth)
{
    StackAnalyzer analyzer(16, /*max_depth=*/4);
    // Cycle through 6 blocks twice: every reuse distance is 6,
    // beyond the retained depth, so nothing can be answered as a hit.
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr block = 0; block < 6; ++block)
            analyzer.process(block * 16);
    }
    EXPECT_DOUBLE_EQ(analyzer.missRatioForCapacity(4), 1.0);
    // The exact tracker distinguishes true first touches (6) from
    // reuses whose distance merely exceeded the depth cap (6); the
    // latter are reported via overflowRefs() and, for compatibility
    // with the historical bounded-stack accounting, also counted in
    // distinctBlocks().
    EXPECT_EQ(analyzer.overflowRefs(), 6u);
    EXPECT_EQ(analyzer.distinctBlocks(), 12u);
}

TEST(SetStackAnalyzer, HistogramMatchesLinearStackOracle)
{
    // Cross-check the Fenwick-backed order-statistic tracker against
    // a brute-force per-set linear LRU stack on an address mix that
    // forces deep reuse, MRU repeats, and set aliasing.
    constexpr std::uint32_t kBlockSize = 16;
    constexpr std::uint32_t kSets = 4;
    constexpr std::uint32_t kDepth = 64;
    SetStackAnalyzer analyzer(kBlockSize, kSets, kDepth);

    std::vector<std::vector<Addr>> stacks(kSets);  // front == MRU
    std::vector<std::uint64_t> hist(kDepth + 1, 0);
    std::uint64_t beyond = 0;

    std::uint64_t state = 0x2545f4914f6cdd1dULL;
    auto next = [&state] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };

    for (int i = 0; i < 60000; ++i) {
        // Mostly a tight 24-block loop (shallow distances, frequent
        // MRU re-touches), occasionally a 3000-block tail that pushes
        // reuses past the retained depth.
        const std::uint64_t r = next();
        const Addr block = (r % 10 != 0) ? (i % 24)
                                         : Addr(r >> 32) % 3000;
        analyzer.process(block * kBlockSize);

        auto &stack = stacks[block % kSets];
        const auto it = std::find(stack.begin(), stack.end(), block);
        if (it == stack.end()) {
            ++beyond;
        } else {
            const std::size_t d = (it - stack.begin()) + 1;
            if (d <= kDepth)
                ++hist[d];
            else
                ++beyond;
            stack.erase(it);
        }
        stack.insert(stack.begin(), block);
    }

    ASSERT_EQ(analyzer.refs(), 60000u);
    for (std::uint32_t d = 1; d <= kDepth; ++d)
        EXPECT_EQ(analyzer.distanceHistogram()[d], hist[d])
            << "distance " << d;
    for (std::uint32_t assoc = 1; assoc <= kDepth; assoc *= 2) {
        std::uint64_t hits = 0;
        for (std::uint32_t d = 1; d <= assoc; ++d)
            hits += hist[d];
        EXPECT_DOUBLE_EQ(analyzer.missRatioForAssoc(assoc),
                         1.0 - double(hits) / 60000.0)
            << "assoc " << assoc;
    }
}
