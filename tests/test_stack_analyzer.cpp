/**
 * @file
 * Unit tests for the Mattson stack-distance analyzers, including the
 * key cross-validation property: for fully-associative LRU caches
 * with sub-block == block, the analyzer's one-pass predictions must
 * match direct Cache simulation exactly, for every capacity — and
 * likewise per-set for every associativity. This gives the simulator
 * an independent correctness oracle.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "multi/stack_analyzer.hh"
#include "workload/synthetic.hh"

using namespace occsim;

TEST(StackAnalyzer, HandComputedDistances)
{
    StackAnalyzer analyzer(/*block_size=*/16);
    // Blocks: A B A C B A  (addresses x 16)
    for (const Addr block : {0u, 1u, 0u, 2u, 1u, 0u})
        analyzer.process(block * 16);
    EXPECT_EQ(analyzer.refs(), 6u);
    EXPECT_EQ(analyzer.distinctBlocks(), 3u);
    const auto &hist = analyzer.distanceHistogram();
    // Distances: A(inf) B(inf) A(2) C(inf) B(3) A(3)
    EXPECT_EQ(hist[1], 0u);
    EXPECT_EQ(hist[2], 1u);
    EXPECT_EQ(hist[3], 2u);
}

TEST(StackAnalyzer, MissRatioFromHistogram)
{
    StackAnalyzer analyzer(16);
    for (const Addr block : {0u, 1u, 0u, 2u, 1u, 0u})
        analyzer.process(block * 16);
    // Capacity 1: everything misses except consecutive repeats (none).
    EXPECT_DOUBLE_EQ(analyzer.missRatioForCapacity(1), 1.0);
    // Capacity 2: the distance-2 reference hits.
    EXPECT_DOUBLE_EQ(analyzer.missRatioForCapacity(2), 5.0 / 6.0);
    // Capacity 3+: all three reuses hit.
    EXPECT_DOUBLE_EQ(analyzer.missRatioForCapacity(3), 3.0 / 6.0);
    EXPECT_DOUBLE_EQ(analyzer.missRatioForCapacity(100), 3.0 / 6.0);
}

TEST(StackAnalyzer, InclusionProperty)
{
    // Miss ratio is monotone non-increasing in capacity (the LRU
    // stack inclusion property).
    SyntheticParams params;
    params.seed = 9;
    StackAnalyzer analyzer(16);
    SyntheticSource source(params);
    MemRef ref;
    for (int i = 0; i < 50000; ++i) {
        source.next(ref);
        analyzer.process(ref.addr);
    }
    double prev = 1.1;
    for (std::uint32_t capacity = 1; capacity <= 512; capacity *= 2) {
        const double miss = analyzer.missRatioForCapacity(capacity);
        EXPECT_LE(miss, prev + 1e-12);
        prev = miss;
    }
}

TEST(StackAnalyzer, MatchesDirectSimulationFullyAssociative)
{
    // One analyzer pass == many direct simulations, exactly.
    SyntheticParams params;
    params.seed = 21;
    const VectorTrace trace = makeSyntheticTrace(params, 40000);

    StackAnalyzer analyzer(16);
    analyzer.processTrace(trace);

    for (const std::uint32_t capacity : {2u, 4u, 8u, 16u, 64u}) {
        CacheConfig config =
            makeConfig(capacity * 16, 16, 16, 2);
        config.assoc = capacity;  // fully associative
        Cache cache(config);
        for (const MemRef &ref : trace.refs()) {
            // The analyzer has no write special-casing; feed reads.
            MemRef as_read = ref;
            as_read.kind = RefKind::DataRead;
            cache.access(as_read);
        }
        EXPECT_NEAR(cache.stats().missRatio(),
                    analyzer.missRatioForCapacity(capacity), 1e-12)
            << "capacity " << capacity;
    }
}

TEST(SetStackAnalyzer, MatchesDirectSimulationSetAssociative)
{
    SyntheticParams params;
    params.seed = 33;
    const VectorTrace trace = makeSyntheticTrace(params, 40000);

    constexpr std::uint32_t kSets = 8;
    SetStackAnalyzer analyzer(16, kSets);
    analyzer.processTrace(trace);

    for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        CacheConfig config =
            makeConfig(kSets * assoc * 16, 16, 16, 2);
        config.assoc = assoc;
        Cache cache(config);
        for (const MemRef &ref : trace.refs()) {
            MemRef as_read = ref;
            as_read.kind = RefKind::DataRead;
            cache.access(as_read);
        }
        EXPECT_NEAR(cache.stats().missRatio(),
                    analyzer.missRatioForAssoc(assoc), 1e-12)
            << "assoc " << assoc;
    }
}

TEST(SetStackAnalyzer, AssociativityGainsFlatten)
{
    // Strecker's observation reproduced as a weak property: going
    // 1 -> 4 way helps much more than 4 -> 8 way.
    SyntheticParams params;
    params.seed = 61;
    SetStackAnalyzer analyzer(16, 8);
    SyntheticSource source(params);
    MemRef ref;
    for (int i = 0; i < 80000; ++i) {
        source.next(ref);
        analyzer.process(ref.addr);
    }
    const double m1 = analyzer.missRatioForAssoc(1);
    const double m4 = analyzer.missRatioForAssoc(4);
    const double m8 = analyzer.missRatioForAssoc(8);
    EXPECT_GE(m1 - m4, m4 - m8);
}

TEST(StackAnalyzer, OverflowBeyondMaxDepth)
{
    StackAnalyzer analyzer(16, /*max_depth=*/4);
    // Cycle through 6 blocks twice: every reuse distance is 6,
    // beyond the retained depth, so nothing can be answered as a hit.
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr block = 0; block < 6; ++block)
            analyzer.process(block * 16);
    }
    EXPECT_DOUBLE_EQ(analyzer.missRatioForCapacity(4), 1.0);
}
