/**
 * @file
 * Unit tests for load-forward (Section 4.4): fetch extent, redundant
 * load accounting, the optimized variant, and the paper's claimed
 * ordering between demand, load-forward, and whole-block fetching.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "workload/synthetic.hh"

using namespace occsim;

namespace {

MemRef
read(Addr addr)
{
    return MemRef{addr, RefKind::DataRead, 2};
}

CacheConfig
lfConfig(FetchPolicy fetch)
{
    CacheConfig config = makeConfig(64, 16, 4, 2);
    config.fetch = fetch;
    return config;
}

} // namespace

TEST(LoadForward, FetchesTargetAndSubsequentSubBlocks)
{
    Cache cache(lfConfig(FetchPolicy::LoadForward));
    // Miss on sub-block 1 of a 4-sub-block block: sub-blocks 1,2,3
    // load; sub-block 0 stays invalid.
    cache.access(read(0x104));
    EXPECT_EQ(cache.validMask(0x100), 0b1110u);
    EXPECT_FALSE(cache.isResident(0x100));
    EXPECT_TRUE(cache.isResident(0x104));
    EXPECT_TRUE(cache.isResident(0x108));
    EXPECT_TRUE(cache.isResident(0x10C));
    // 3 sub-blocks x 2 words each in one burst.
    EXPECT_EQ(cache.stats().wordsFetched(), 6u);
    EXPECT_EQ(cache.stats().bursts(), 1u);
}

TEST(LoadForward, MissOnLastSubBlockFetchesOnlyIt)
{
    Cache cache(lfConfig(FetchPolicy::LoadForward));
    cache.access(read(0x10C));
    EXPECT_EQ(cache.validMask(0x100), 0b1000u);
    EXPECT_EQ(cache.stats().wordsFetched(), 2u);
}

TEST(LoadForward, BackwardReferenceCausesRedundantLoads)
{
    Cache cache(lfConfig(FetchPolicy::LoadForward));
    cache.access(read(0x108));  // loads sub-blocks 2,3
    EXPECT_EQ(cache.stats().redundantWordsFetched(), 0u);
    cache.access(read(0x100));  // loads 0..3: 2,3 redundant
    EXPECT_EQ(cache.validMask(0x100), 0b1111u);
    EXPECT_EQ(cache.stats().wordsFetched(), 4u + 8u);
    EXPECT_EQ(cache.stats().redundantWordsFetched(), 4u);
}

TEST(LoadForwardOptimized, SkipsResidentSubBlocks)
{
    Cache cache(lfConfig(FetchPolicy::LoadForwardOptimized));
    cache.access(read(0x108));  // loads 2,3
    cache.access(read(0x100));  // loads only 0,1 (2,3 resident)
    EXPECT_EQ(cache.validMask(0x100), 0b1111u);
    EXPECT_EQ(cache.stats().wordsFetched(), 4u + 4u);
    EXPECT_EQ(cache.stats().redundantWordsFetched(), 0u);
}

TEST(LoadForwardOptimized, SplitsBurstsAroundResidentRuns)
{
    // Block with 8 sub-blocks of one word each.
    CacheConfig config = makeConfig(64, 16, 2, 2);
    config.fetch = FetchPolicy::LoadForwardOptimized;
    Cache cache(config);
    cache.access(read(0x108));  // loads sub-blocks 4..7, one burst
    EXPECT_EQ(cache.stats().bursts(), 1u);
    cache.access(read(0x104));  // sub 2; 4..7 resident -> one burst 2..3
    EXPECT_EQ(cache.stats().bursts(), 2u);
    EXPECT_EQ(cache.stats().wordsFetched(), 4u + 2u);
    EXPECT_EQ(cache.validMask(0x100), 0b11111100u);
}

TEST(LoadForward, SameMissesAsDemandWhenSubEqualsBlock)
{
    // With a single sub-block per block all three policies coincide.
    SyntheticParams params;
    params.seed = 17;
    const VectorTrace trace = makeSyntheticTrace(params, 30000);

    std::uint64_t misses[3];
    double traffic[3];
    int index = 0;
    for (const FetchPolicy fetch :
         {FetchPolicy::Demand, FetchPolicy::LoadForward,
          FetchPolicy::LoadForwardOptimized}) {
        CacheConfig config = makeConfig(256, 8, 8, 2);
        config.fetch = fetch;
        Cache cache(config);
        VectorTrace copy = trace;
        cache.run(copy);
        misses[index] = cache.stats().misses();
        traffic[index] = cache.stats().trafficRatio();
        ++index;
    }
    EXPECT_EQ(misses[0], misses[1]);
    EXPECT_EQ(misses[0], misses[2]);
    EXPECT_DOUBLE_EQ(traffic[0], traffic[1]);
    EXPECT_DOUBLE_EQ(traffic[0], traffic[2]);
}

TEST(LoadForward, OrderingOnRealisticTrace)
{
    // The paper's qualitative claims, as exact invariants:
    //  - LF never misses more than demand with the same geometry
    //    (it loads a superset of sub-blocks at the same instants);
    //  - LF never moves more traffic than fetching sub == block;
    //  - optimized LF moves no more traffic than redundant LF and
    //    has identical misses.
    SyntheticParams params;
    params.seed = 41;
    const VectorTrace trace = makeSyntheticTrace(params, 50000);

    auto run = [&](std::uint32_t sub, FetchPolicy fetch) {
        CacheConfig config = makeConfig(256, 16, sub, 2);
        config.fetch = fetch;
        Cache cache(config);
        VectorTrace copy = trace;
        cache.run(copy);
        return cache;
    };

    const Cache demand = run(2, FetchPolicy::Demand);
    const Cache lf = run(2, FetchPolicy::LoadForward);
    const Cache lfo = run(2, FetchPolicy::LoadForwardOptimized);
    const Cache whole = run(16, FetchPolicy::Demand);

    EXPECT_LE(lf.stats().misses(), demand.stats().misses());
    EXPECT_EQ(lf.stats().misses(), lfo.stats().misses());
    EXPECT_LE(lfo.stats().wordsFetched(), lf.stats().wordsFetched());
    EXPECT_LE(lf.stats().missRatio(), demand.stats().missRatio());
    EXPECT_GE(lf.stats().missRatio(), whole.stats().missRatio());
    EXPECT_GE(lf.stats().trafficRatio(), demand.stats().trafficRatio());
}

TEST(LoadForward, RedundantFractionSmallOnForwardBiasedStream)
{
    // The paper kept the redundant scheme because backward
    // references within a block are rare; on a forward-biased
    // stream redundant loads must be a small fraction of traffic.
    SyntheticParams params;
    params.seed = 53;
    params.dataScanProb = 0.7;  // strongly forward data
    SyntheticSource source(params);
    CacheConfig config = makeConfig(256, 16, 2, 2);
    config.fetch = FetchPolicy::LoadForward;
    Cache cache(config);
    cache.run(source, 100000);
    EXPECT_LT(cache.stats().redundantLoadFraction(), 0.25);
}
