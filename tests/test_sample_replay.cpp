/**
 * @file
 * Differential tests for the statistical sampling engine: measuring
 * the whole trace as one unit must reproduce the exact replay
 * bitwise, the live-point checkpoint path must be bit-identical to
 * warming every config directly, SweepEngine::Sampled must surface
 * estimates and spec knobs through the sweep API and manifest, and a
 * pool-driven run must match the serial drive (the TSan preset runs
 * this TU under `-L sample`).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "multi/sample_replay.hh"
#include "multi/sweep_api.hh"
#include "trace/packed_trace.hh"
#include "util/thread_pool.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

constexpr std::uint64_t kRefs = 30000;

/** Exact replay of @p config over the packed trace. */
SweepResult
exactResult(const CacheConfig &config, const PackedTrace &packed)
{
    Cache cache(config);
    cache.replayPacked(packed.data(), packed.size());
    return summarizeCache(cache);
}

/** Serial drive of the sampling engine over one trace. */
std::vector<SweepResult>
sampledResults(const std::vector<CacheConfig> &configs,
               const SampleSpec &spec, const PackedTrace &packed)
{
    SampleReplay replay(configs, spec);
    replay.prepare(packed, 0);
    for (std::size_t f = 0; f < replay.numWarmTasks(); ++f)
        replay.runWarmTask(f, packed);
    for (std::size_t c = 0; c < replay.numMeasureTasks(); ++c)
        replay.runMeasureTask(c, packed);
    return replay.results();
}

/** Size x assoc grid sharing one block size: every point LRU +
 *  demand + write-allocate, so all are checkpoint-eligible and the
 *  set counts {8, 16, 32} exercise three warm groups. */
std::vector<CacheConfig>
lruGrid(std::uint32_t word_size)
{
    std::vector<CacheConfig> configs;
    for (const std::uint32_t sets : {8u, 16u, 32u}) {
        for (const std::uint32_t assoc : {1u, 2u, 4u}) {
            CacheConfig config =
                makeConfig(sets * 16 * assoc, 16, 16, word_size);
            config.assoc = assoc;
            configs.push_back(config);
        }
    }
    return configs;
}

void
expectSameEstimate(const MetricEstimate &a, const MetricEstimate &b)
{
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stdErr, b.stdErr);
    EXPECT_EQ(a.ci95, b.ci95);
}

void
expectSameEstimates(const SampleEstimates &a, const SampleEstimates &b)
{
    EXPECT_EQ(a.active, b.active);
    EXPECT_EQ(a.units, b.units);
    EXPECT_EQ(a.measuredRefs, b.measuredRefs);
    expectSameEstimate(a.missRatio, b.missRatio);
    expectSameEstimate(a.warmMissRatio, b.warmMissRatio);
    expectSameEstimate(a.trafficRatio, b.trafficRatio);
    expectSameEstimate(a.warmTrafficRatio, b.warmTrafficRatio);
    expectSameEstimate(a.nibbleTrafficRatio, b.nibbleTrafficRatio);
    expectSameEstimate(a.warmNibbleTrafficRatio,
                       b.warmNibbleTrafficRatio);
}

/** One unit spanning the whole trace: the sampled mean IS the exact
 *  metric, bitwise, and the spread is zero. */
TEST(SampleReplay, WholeTraceUnitMatchesExactBitwise)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces[0], kRefs);
    const auto packed = packedTraceShared(trace);

    SampleSpec spec;
    spec.unitRefs = kRefs;
    spec.intervalUnits = 1;
    spec.stratified = false;

    const auto configs = lruGrid(suite.profile.wordSize);
    const auto sampled = sampledResults(configs, spec, *packed);
    ASSERT_EQ(sampled.size(), configs.size());

    for (std::size_t c = 0; c < configs.size(); ++c) {
        const SweepResult exact = exactResult(configs[c], *packed);
        const SampleEstimates &est = sampled[c].sampled;
        EXPECT_TRUE(est.active);
        EXPECT_EQ(est.units, 1u);
        EXPECT_EQ(est.measuredRefs, kRefs);
        EXPECT_EQ(est.missRatio.mean, exact.missRatio);
        EXPECT_EQ(est.warmMissRatio.mean, exact.warmMissRatio);
        EXPECT_EQ(est.trafficRatio.mean, exact.trafficRatio);
        EXPECT_EQ(est.warmTrafficRatio.mean, exact.warmTrafficRatio);
        EXPECT_EQ(est.nibbleTrafficRatio.mean,
                  exact.nibbleTrafficRatio);
        EXPECT_EQ(est.warmNibbleTrafficRatio.mean,
                  exact.warmNibbleTrafficRatio);
        EXPECT_EQ(est.missRatio.stdErr, 0.0);
        EXPECT_EQ(est.missRatio.ci95, 0.0);
        EXPECT_EQ(sampled[c].missRatio, exact.missRatio);
    }
    clearTraceCache();
}

/** The checkpoint path (shared warming pass + live-point seeds) must
 *  be bit-identical to warming every config directly through the
 *  Record=false kernels, for every metric of every estimate — across
 *  traces, so the LRU-stack inclusion argument is tested against
 *  real reference streams, not one lucky one. */
TEST(SampleReplay, CheckpointPathMatchesDirectWarming)
{
    const Suite suite = pdp11Suite();
    const auto configs = lruGrid(suite.profile.wordSize);

    SampleSpec spec;
    spec.unitRefs = 512;
    spec.intervalUnits = 4;
    spec.seed = 42;

    SampleSpec direct = spec;
    direct.forceDirect = true;

    for (std::size_t t = 0; t < 3; ++t) {
        const auto trace = buildTraceShared(suite.traces[t], kRefs);
        const auto packed = packedTraceShared(trace);
        const auto checkpointed =
            sampledResults(configs, spec, *packed);
        const auto direct_warmed =
            sampledResults(configs, direct, *packed);
        ASSERT_EQ(checkpointed.size(), direct_warmed.size());
        for (std::size_t c = 0; c < configs.size(); ++c) {
            SCOPED_TRACE(configs[c].fullName());
            expectSameEstimates(checkpointed[c].sampled,
                                direct_warmed[c].sampled);
            EXPECT_EQ(checkpointed[c].missRatio,
                      direct_warmed[c].missRatio);
            EXPECT_EQ(checkpointed[c].grossBytes,
                      direct_warmed[c].grossBytes);
        }
    }
    clearTraceCache();
}

/** Checkpoint-ineligible configs (non-LRU) must route to direct
 *  warming inside the same run and still produce active estimates. */
TEST(SampleReplay, MixedEligibilityGrid)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces[0], kRefs);
    const auto packed = packedTraceShared(trace);

    std::vector<CacheConfig> configs =
        {makeConfig(512, 16, 16, suite.profile.wordSize),
         makeConfig(512, 16, 16, suite.profile.wordSize)};
    configs[0].assoc = 4;
    configs[1].assoc = 4;
    configs[1].replacement = ReplacementPolicy::FIFO;
    ASSERT_TRUE(checkpointEligible(configs[0]));
    ASSERT_FALSE(checkpointEligible(configs[1]));

    SampleSpec spec;
    spec.unitRefs = 512;
    spec.intervalUnits = 4;

    const auto sampled = sampledResults(configs, spec, *packed);
    for (const SweepResult &result : sampled) {
        EXPECT_TRUE(result.sampled.active);
        EXPECT_GT(result.sampled.units, 0u);
    }

    // The FIFO config must agree with its own forceDirect run (it
    // never touches the checkpoint machinery either way).
    SampleSpec direct = spec;
    direct.forceDirect = true;
    const auto direct_warmed =
        sampledResults(configs, direct, *packed);
    expectSameEstimates(sampled[1].sampled, direct_warmed[1].sampled);
    clearTraceCache();
}

/** SweepEngine::Sampled end to end: estimates on every result, spec
 *  knobs and per-config estimate/stderr in the manifest, and the
 *  sampled route name. Also drives the pool path the production
 *  callers use (and the TSan preset checks). */
TEST(SampleReplay, SweepApiSampledEngine)
{
    const Suite suite = pdp11Suite();
    ThreadPool pool(4);

    SweepRequest request;
    request.traces = {buildTraceShared(suite.traces[0], kRefs),
                      buildTraceShared(suite.traces[1], kRefs)};
    request.configs = lruGrid(suite.profile.wordSize);
    request.engine = SweepEngine::Sampled;
    request.pool = &pool;
    request.label = "test:sampled";
    request.sample.unitRefs = 512;
    request.sample.intervalUnits = 4;

    const SweepReport report = runSweep(request);
    ASSERT_EQ(report.perTrace.size(), 2u);
    for (const auto &per_config : report.perTrace)
        for (const SweepResult &result : per_config) {
            EXPECT_TRUE(result.sampled.active);
            EXPECT_GT(result.sampled.units, 1u);
            EXPECT_GE(result.sampled.missRatio.ci95,
                      result.sampled.missRatio.stdErr);
        }

    // Cross-trace average keeps the estimates live (stderr combined
    // across runs, mean of means).
    ASSERT_EQ(report.average.size(), request.configs.size());
    for (const SweepResult &avg : report.average) {
        EXPECT_TRUE(avg.sampled.active);
        EXPECT_EQ(avg.missRatio, avg.sampled.missRatio.mean);
    }

    // Manifest: the sweep record carries the sampling activity and
    // every route is a sampled one with its estimate attached.
    ASSERT_FALSE(report.manifest.sweeps.empty());
    const obs::SweepRecord &record = report.manifest.sweeps.back();
    EXPECT_EQ(record.engineMode, "sampled");
    EXPECT_EQ(record.sampledRuns,
              request.configs.size() * request.traces.size());
    EXPECT_EQ(record.sampleUnitRefs, request.sample.unitRefs);
    EXPECT_EQ(record.sampleIntervalUnits,
              request.sample.intervalUnits);
    EXPECT_GT(record.sampleUnits, 0u);
    EXPECT_GT(record.sampleMeasuredRefs, 0u);
    ASSERT_EQ(record.routes.size(), request.configs.size());
    for (std::size_t c = 0; c < record.routes.size(); ++c) {
        EXPECT_EQ(record.routes[c].engine, "sample");
        EXPECT_TRUE(record.routes[c].sampled);
        EXPECT_EQ(record.routes[c].missRatioMean,
                  report.average[c].sampled.missRatio.mean);
        EXPECT_EQ(record.routes[c].missRatioStdErr,
                  report.average[c].sampled.missRatio.stdErr);
    }
    clearTraceCache();
}

/** Pool-driven warm/measure phases must match the serial drive
 *  bitwise (tasks are independent within a phase; the barrier
 *  between phases is the only ordering that matters). */
TEST(SampleReplay, PoolDriveMatchesSerialDrive)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces[0], kRefs);
    const auto packed = packedTraceShared(trace);
    const auto configs = lruGrid(suite.profile.wordSize);

    SampleSpec spec;
    spec.unitRefs = 512;
    spec.intervalUnits = 4;

    const auto serial = sampledResults(configs, spec, *packed);

    ThreadPool pool(4);
    SampleReplay replay(configs, spec);
    replay.prepare(*packed, 0);
    pool.parallelFor(replay.numWarmTasks(), [&](std::size_t f) {
        replay.runWarmTask(f, *packed);
    });
    pool.parallelFor(replay.numMeasureTasks(), [&](std::size_t c) {
        replay.runMeasureTask(c, *packed);
    });
    const auto pooled = replay.results();

    ASSERT_EQ(pooled.size(), serial.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        expectSameEstimates(pooled[c].sampled, serial[c].sampled);
        EXPECT_EQ(pooled[c].missRatio, serial[c].missRatio);
    }
    clearTraceCache();
}

/** Exact engines must leave SampleEstimates inert: a direct sweep
 *  reports active == false and zeroed estimates. */
TEST(SampleReplay, ExactEnginesLeaveEstimatesInert)
{
    const Suite suite = pdp11Suite();
    SweepRequest request;
    request.traces = {buildTraceShared(suite.traces[0], kRefs)};
    request.configs = {makeConfig(512, 16, 16,
                                  suite.profile.wordSize)};
    request.engine = SweepEngine::DirectOnly;
    const SweepReport report = runSweep(request);
    const SweepResult &result = report.perTrace[0][0];
    EXPECT_FALSE(result.sampled.active);
    EXPECT_EQ(result.sampled.units, 0u);
    EXPECT_EQ(result.sampled.missRatio.mean, 0.0);
    clearTraceCache();
}

} // namespace
