// This TU intentionally exercises the legacy sweep entry points.

/**
 * @file
 * Determinism tests for the set-sharded replay engine: the partition
 * must preserve per-shard reference order, ShardReplay's merged
 * statistics must be bit-identical to an unsharded run for every
 * eligible policy combination and shard count, and BOTH directions of
 * the routing predicate must hold — eligible configs merge exactly,
 * and force-sharding either ineligible policy (Random replacement,
 * next-block prefetch) demonstrably diverges from the full run.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/cache_geometry.hh"
#include "harness/experiment.hh"
#include "multi/parallel_sweep.hh"
#include "multi/shard_replay.hh"
#include "multi/sweep_api.hh"
#include "trace/packed_trace.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

constexpr std::uint64_t kRefs = 30000;

/** Bit-identical comparison of two SweepResults (exact doubles). */
void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    EXPECT_EQ(a.grossBytes, b.grossBytes);
    EXPECT_EQ(a.missRatio, b.missRatio);
    EXPECT_EQ(a.warmMissRatio, b.warmMissRatio);
    EXPECT_EQ(a.trafficRatio, b.trafficRatio);
    EXPECT_EQ(a.warmTrafficRatio, b.warmTrafficRatio);
    EXPECT_EQ(a.nibbleTrafficRatio, b.nibbleTrafficRatio);
    EXPECT_EQ(a.warmNibbleTrafficRatio, b.warmNibbleTrafficRatio);
}

bool
sameResult(const SweepResult &a, const SweepResult &b)
{
    return a.grossBytes == b.grossBytes &&
           a.missRatio == b.missRatio &&
           a.warmMissRatio == b.warmMissRatio &&
           a.trafficRatio == b.trafficRatio &&
           a.warmTrafficRatio == b.warmTrafficRatio &&
           a.nibbleTrafficRatio == b.nibbleTrafficRatio &&
           a.warmNibbleTrafficRatio == b.warmNibbleTrafficRatio;
}

/** Direct Cache::access simulation of @p config over @p trace. */
SweepResult
directResult(const CacheConfig &config, const VectorTrace &trace)
{
    Cache cache(config);
    for (const MemRef &ref : trace.refs())
        cache.access(ref);
    cache.finalizeResidencies();
    return summarizeCache(cache);
}

/** Sharded run of @p config at @p num_shards, sequential drive. */
SweepResult
shardedResult(const CacheConfig &config, const PackedTrace &packed,
              std::uint32_t num_shards)
{
    ShardReplay engine(config, num_shards);
    const ShardedPackedTrace strace(packed, engine.blockBits(),
                                    engine.shardBits(), 0);
    for (std::uint32_t s = 0; s < num_shards; ++s)
        engine.runShard(s, strace);
    return engine.result();
}

/**
 * Manual set-sharded run of ANY config (no eligibility assert):
 * partition by set-congruence, replay each shard on a private Cache,
 * merge the raw statistics. For eligible configs this is exactly what
 * ShardReplay computes; for ineligible ones it exhibits why sharding
 * is wrong.
 */
SweepResult
forcedShardMerge(const CacheConfig &config, const PackedTrace &packed,
                 std::uint32_t num_shards)
{
    const CacheGeometry geom(config);
    const std::uint32_t shard_bits = floorLog2(num_shards);
    const ShardedPackedTrace strace(packed, geom.blockBits(),
                                    shard_bits, 0);
    CacheStats merged(geom.subBlocksPerBlock(),
                      geom.subBlocksPerBlock() *
                          geom.wordsPerSubBlock());
    for (std::uint32_t s = 0; s < num_shards; ++s) {
        Cache cache(config);
        cache.replayPacked(strace.shardData(s), strace.shardSize(s));
        cache.finalizeResidencies();
        merged.mergeFrom(cache.stats());
    }
    return summarizeStats(config, geom.grossBytes(), merged);
}

/** RAII environment-variable override (restores the prior value). */
class EnvGuard
{
  public:
    EnvGuard(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old != nullptr) {
            hadOld_ = true;
            old_ = old;
        }
        if (value != nullptr)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ~EnvGuard()
    {
        if (hadOld_)
            setenv(name_, old_.c_str(), 1);
        else
            unsetenv(name_);
    }

  private:
    const char *name_;
    bool hadOld_ = false;
    std::string old_;
};

} // namespace

TEST(ShardedPackedTrace, PartitionPreservesPerShardOrder)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), 5000);
    const PackedTrace packed(*trace);

    const std::uint32_t block_bits = 4;  // 16-byte blocks
    for (const std::uint32_t shard_bits : {1u, 2u, 4u}) {
        const ShardedPackedTrace strace(packed, block_bits, shard_bits,
                                        0);
        const std::uint32_t shards = strace.numShards();
        EXPECT_EQ(shards, 1u << shard_bits);
        EXPECT_EQ(strace.totalRecords(), packed.size());

        // Every record is in the shard its set-congruence demands,
        // and walking the shards in parallel with one cursor each
        // reproduces the original stream order record by record.
        std::vector<std::size_t> cursor(shards, 0);
        for (std::size_t i = 0; i < packed.size(); ++i) {
            const std::uint32_t s =
                (packed[i].addr() >> block_bits) & (shards - 1);
            ASSERT_LT(cursor[s], strace.shardSize(s));
            EXPECT_EQ(strace.shardData(s)[cursor[s]].bits,
                      packed[i].bits);
            ++cursor[s];
        }
        std::size_t total = 0;
        for (std::uint32_t s = 0; s < shards; ++s) {
            EXPECT_EQ(cursor[s], strace.shardSize(s));
            total += strace.shardSize(s);
        }
        EXPECT_EQ(total, packed.size());
    }
}

TEST(ShardedPackedTrace, RespectsLimitAndMemoizes)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), 5000);
    const auto packed = packedTraceShared(trace);

    const ShardedPackedTrace limited(*packed, 4, 2, 1000);
    EXPECT_EQ(limited.totalRecords(), 1000u);

    const auto first = shardedTraceShared(packed, 4, 2, 0);
    const auto second = shardedTraceShared(packed, 4, 2, 0);
    EXPECT_EQ(first.get(), second.get())
        << "one partition per (trace, blockBits, shardBits) while a "
           "handle is alive";
    // A limit covering the whole trace is the same key as 0 = all.
    const auto full = shardedTraceShared(packed, 4, 2, packed->size());
    EXPECT_EQ(full.get(), first.get());
    EXPECT_NE(shardedTraceShared(packed, 4, 3, 0).get(), first.get());
}

TEST(ShardReplay, BitIdenticalToDirectAcrossPoliciesAndShardCounts)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    const PackedTrace packed(*trace);
    const std::uint32_t word = suite.profile.wordSize;

    std::vector<CacheConfig> configs;
    // LRU demand (the plain case), 128 sets.
    configs.push_back(makeConfig(8192, 16, 16, word));
    // Sector organisation (sub-block < block).
    configs.push_back(makeConfig(8192, 32, 8, word));
    // Load-forward fetch.
    {
        CacheConfig c = makeConfig(8192, 16, 8, word);
        c.fetch = FetchPolicy::LoadForward;
        configs.push_back(c);
    }
    // Copy-back writes (write-back traffic at evictions).
    {
        CacheConfig c = makeConfig(8192, 16, 16, word);
        c.write = WritePolicy::CopyBack;
        configs.push_back(c);
    }
    // No-allocate writes.
    {
        CacheConfig c = makeConfig(8192, 16, 8, word);
        c.writeAllocate = false;
        configs.push_back(c);
    }
    // FIFO replacement.
    {
        CacheConfig c = makeConfig(8192, 16, 16, word);
        c.replacement = ReplacementPolicy::FIFO;
        configs.push_back(c);
    }
    // Associativity 16: the runtime-assoc fallback kernel.
    {
        CacheConfig c = makeConfig(8192, 16, 16, word);
        c.assoc = 16;
        configs.push_back(c);
    }

    for (const CacheConfig &config : configs) {
        ASSERT_TRUE(shardEligible(config)) << config.fullName();
        const SweepResult expected = directResult(config, *trace);
        for (const std::uint32_t shards : {2u, 4u, 8u, 32u}) {
            if (shards > CacheGeometry(config).numSets())
                continue;
            expectIdentical(shardedResult(config, packed, shards),
                            expected);
        }
    }
}

TEST(ShardReplay, ZeroRefShardsMergeCleanly)
{
    // A trace that touches one single set: with 4 shards, three
    // sub-traces are empty and the merge must still be exact.
    auto trace = std::make_shared<VectorTrace>("one-set");
    for (int i = 0; i < 2000; ++i) {
        const Addr addr =
            static_cast<Addr>(0x1000 + (i % 8) * (128 * 16));
        trace->append(addr, i % 5 == 0 ? RefKind::DataWrite
                                       : RefKind::DataRead,
                      2);
    }
    const CacheConfig config = makeConfig(8192, 16, 16, 2);  // 128 sets
    const PackedTrace packed(*trace);

    ShardReplay engine(config, 4);
    const ShardedPackedTrace strace(packed, engine.blockBits(),
                                    engine.shardBits(), 0);
    for (std::uint32_t s = 0; s < 4; ++s)
        engine.runShard(s, strace);

    // All references land in shard 0 (set index multiples of 128 are
    // congruent to 0 mod 4).
    EXPECT_EQ(engine.shardRefs(0), trace->size());
    EXPECT_EQ(engine.shardRefs(1), 0u);
    EXPECT_EQ(engine.shardRefs(2), 0u);
    EXPECT_EQ(engine.shardRefs(3), 0u);
    expectIdentical(engine.result(), directResult(config, *trace));

    // The imbalance telemetry reports the skew.
    ShardTelemetry telem;
    telem.accumulate(engine);
    EXPECT_EQ(telem.shardedRuns, 1u);
    EXPECT_EQ(telem.maxShards, 4u);
    EXPECT_EQ(telem.maxShardRefs, trace->size());
    EXPECT_EQ(telem.minShardRefs, 0u);
}

TEST(ShardReplay, PlanShardCountRespectsGeometryAndEligibility)
{
    const CacheConfig plain = makeConfig(8192, 16, 16, 2);  // 128 sets
    EXPECT_EQ(planShardCount(plain, 1), 1u) << "one worker, no split";
    EXPECT_EQ(planShardCount(plain, 2), 2u);
    EXPECT_EQ(planShardCount(plain, 8), 8u);
    EXPECT_EQ(planShardCount(plain, 5), 8u)
        << "smallest power of two covering the pool";
    EXPECT_EQ(planShardCount(plain, 1000), kMaxShards)
        << "clamped to the shard cap";

    // Fully associative: one set, nothing to split.
    CacheConfig full = makeConfig(256, 16, 16, 2);
    full.assoc = 16;  // 16 blocks, assoc 16 -> 1 set
    ASSERT_EQ(CacheGeometry(full).numSets(), 1u);
    EXPECT_EQ(planShardCount(full, 8), 1u);

    // Few sets: clamped to the set count.
    CacheConfig small = makeConfig(128, 16, 16, 2);  // 8 blocks
    ASSERT_EQ(CacheGeometry(small).numSets(), 2u);
    EXPECT_EQ(planShardCount(small, 8), 2u);

    // Ineligible policies never shard.
    CacheConfig random = plain;
    random.replacement = ReplacementPolicy::Random;
    EXPECT_FALSE(shardEligible(random));
    EXPECT_EQ(planShardCount(random, 8), 1u);
    CacheConfig prefetch = plain;
    prefetch.fetch = FetchPolicy::PrefetchNextOnMiss;
    EXPECT_FALSE(shardEligible(prefetch));
    EXPECT_EQ(planShardCount(prefetch, 8), 1u);

    // The heuristic needs a meaty trace and an idle pool.
    EXPECT_FALSE(shouldShard(ShardMode::Heuristic, plain, 8, 1000, 1));
    EXPECT_TRUE(shouldShard(ShardMode::Heuristic, plain, 8,
                            kShardMinRefs, 1));
    EXPECT_FALSE(shouldShard(ShardMode::Heuristic, plain, 8,
                             kShardMinRefs, 64))
        << "a saturated task grid wins over sharding";
    EXPECT_FALSE(shouldShard(ShardMode::Off, plain, 8, kShardMinRefs,
                             1));
    EXPECT_TRUE(shouldShard(ShardMode::Force, plain, 8, 10, 64));
    EXPECT_FALSE(shouldShard(ShardMode::Force, plain, 1, 10, 0))
        << "force cannot split below two shards";
}

TEST(ShardReplay, RoutingPredicateIsNecessaryForRandomReplacement)
{
    // Random replacement shares one Rng across all sets, so the
    // victim sequence depends on the global interleaving of misses
    // across sets — a sharded run consumes the stream per shard and
    // must diverge.
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    const PackedTrace packed(*trace);

    CacheConfig config = makeConfig(512, 16, 16, 2);  // small: evicts
    config.replacement = ReplacementPolicy::Random;
    ASSERT_FALSE(shardEligible(config));

    const SweepResult full = directResult(config, *trace);
    const SweepResult merged = forcedShardMerge(config, packed, 4);
    EXPECT_FALSE(sameResult(merged, full))
        << "sharding a Random-replacement run should diverge; if it "
           "ever merges exactly, the predicate proof needs revisiting";
}

TEST(ShardReplay, RoutingPredicateIsNecessaryForNextBlockPrefetch)
{
    // A miss on the LAST sub-block of a block prefetches the first
    // sub-block of the sequentially-next block — the next set, across
    // the shard boundary. Alternate (last sub of block 2k, first sub
    // of block 2k+1): the full run hits every second access off the
    // prefetch, the sharded run cannot (the prefetch landed in
    // another shard's cache), so the miss ratios differ by
    // construction.
    auto trace = std::make_shared<VectorTrace>("cross-block");
    for (Addr base = 0; base < 64 * 1024; base += 32) {
        trace->append(base + 8, RefKind::DataRead, 2);   // last sub
        trace->append(base + 16, RefKind::DataRead, 2);  // next block
    }
    const PackedTrace packed(*trace);

    CacheConfig config = makeConfig(4096, 16, 8, 2);
    config.fetch = FetchPolicy::PrefetchNextOnMiss;
    ASSERT_FALSE(shardEligible(config));

    const SweepResult full = directResult(config, *trace);
    const SweepResult merged = forcedShardMerge(config, packed, 4);
    EXPECT_FALSE(sameResult(merged, full))
        << "sharding a next-block-prefetch run should diverge";
}

TEST(ShardReplay, MergeFromEqualsUnsplitStats)
{
    // CacheStats::mergeFrom over a set-partition reproduces the
    // unsplit statistics exactly (every field is an integer sum).
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), 10000);
    const PackedTrace packed(*trace);
    CacheConfig config = makeConfig(4096, 32, 8, 2);
    config.write = WritePolicy::CopyBack;
    ASSERT_TRUE(shardEligible(config));
    expectIdentical(forcedShardMerge(config, packed, 2),
                    directResult(config, *trace));
}

TEST(ShardReplay, SingleThreadDegenerationNeverShards)
{
    // With one worker there is nothing to overlap: even a forced
    // OCCSIM_SHARD=1 run stays unsharded (planShardCount < 2) and the
    // results are the plain batched ones.
    const EnvGuard guard("OCCSIM_SHARD", "1");
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), 10000);
    const std::vector<CacheConfig> configs{
        makeConfig(4096, 32, 8, suite.profile.wordSize)};

    ThreadPool pool(1);
    ParallelSweepRunner runner(configs, &pool, SweepEngine::Auto);
    runner.run(trace);
    EXPECT_EQ(runner.shardedCount(), 0u);
    expectIdentical(runner.results()[0], directResult(configs[0],
                                                      *trace));
}

TEST(ShardReplay, ForcedShardingThroughTheRunnerIsBitIdentical)
{
    const EnvGuard guard("OCCSIM_SHARD", "1");
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    // Mix of single-pass, batched-ineligible-for-sharding, and
    // shardable configs.
    std::vector<CacheConfig> configs =
        {makeConfig(8192, 16, 16, suite.profile.wordSize),   // 1-pass
         makeConfig(8192, 32, 8, suite.profile.wordSize)};   // sector
    {
        CacheConfig c = makeConfig(8192, 16, 8,
                                   suite.profile.wordSize);
        c.replacement = ReplacementPolicy::Random;  // ineligible
        configs.push_back(c);
    }

    ThreadPool pool(4);
    ParallelSweepRunner reference(configs, &pool,
                                  SweepEngine::DirectOnly);
    reference.run(trace);
    const auto expected = reference.results();

    ParallelSweepRunner routed(configs, &pool, SweepEngine::Auto);
    routed.run(trace);
    EXPECT_EQ(routed.shardedCount(), 1u)
        << "exactly the sector config shards (single-pass config is "
           "fast-pathed, Random is ineligible)";
    EXPECT_TRUE(routed.sharded(1));
    EXPECT_FALSE(routed.sharded(0));
    EXPECT_FALSE(routed.sharded(2));

    const auto actual = routed.results();
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        expectIdentical(actual[i], expected[i]);

    const ShardTelemetry telem = routed.shardTelemetry();
    EXPECT_EQ(telem.shardedRuns, 1u);
    EXPECT_GE(telem.maxShards, 2u);
}

TEST(ShardReplay, ForcedShardingUnderCrossCheckIsClean)
{
    // CrossCheck shadows sharded configs on the direct engine and
    // fatals on any divergence — a clean run IS the assertion.
    const EnvGuard guard("OCCSIM_SHARD", "1");
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), 10000);
    const std::vector<CacheConfig> configs{
        makeConfig(4096, 32, 8, suite.profile.wordSize),
        makeConfig(4096, 16, 4, suite.profile.wordSize)};

    ThreadPool pool(4);
    ParallelSweepRunner runner(configs, &pool, SweepEngine::CrossCheck);
    runner.run(trace);
    EXPECT_GT(runner.crossCheckCount(), 0u);
    EXPECT_GT(runner.shardedCount(), 0u);
}

TEST(ShardReplay, RunSweepRecordsShardRoutesInTheManifest)
{
    const EnvGuard guard("OCCSIM_SHARD", "1");
    const Suite suite = pdp11Suite();

    SweepRequest request;
    request.traces = {buildTraceShared(suite.traces.front(), 10000)};
    request.configs = {makeConfig(4096, 32, 8,
                                  suite.profile.wordSize)};
    ThreadPool pool(4);
    request.pool = &pool;
    request.label = "shard-manifest-test";
    const SweepReport report = runSweep(request);

    const obs::SweepRecord *ours = nullptr;
    for (const obs::SweepRecord &sweep : report.manifest.sweeps) {
        if (sweep.label == "shard-manifest-test")
            ours = &sweep;
    }
    ASSERT_NE(ours, nullptr);
    EXPECT_EQ(ours->shardedRuns, 1u);
    EXPECT_GE(ours->shardMaxShards, 2u);
    EXPECT_GT(ours->shardMaxRefs, 0u);
    ASSERT_EQ(ours->routes.size(), 1u);
    EXPECT_EQ(ours->routes[0].engine, "shard");

    // And the numbers are the unsharded ones.
    ParallelSweepRunner reference(request.configs, &pool,
                                  SweepEngine::DirectOnly);
    reference.run(request.traces[0]);
    expectIdentical(report.perTrace[0][0], reference.results()[0]);
}

TEST(SinglePassFifo, MatchesDirectAcrossTheGrid)
{
    // FIFO one-pass satellite: FIFO + demand + sub == block +
    // write-allocate configs ride the single-pass engine and must be
    // bit-identical to direct simulation across (sets, assoc) points
    // sharing the pass with LRU points.
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);

    std::vector<CacheConfig> configs;
    for (const std::uint32_t net : {1024u, 4096u}) {
        for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
            for (const ReplacementPolicy repl :
                 {ReplacementPolicy::LRU, ReplacementPolicy::FIFO}) {
                CacheConfig c =
                    makeConfig(net, 16, 16, suite.profile.wordSize);
                c.assoc = assoc;
                c.replacement = repl;
                ASSERT_TRUE(singlePassEligible(c));
                configs.push_back(c);
            }
        }
        // Copy-back FIFO: write policy must stay free.
        CacheConfig c = makeConfig(net, 16, 16,
                                   suite.profile.wordSize);
        c.replacement = ReplacementPolicy::FIFO;
        c.write = WritePolicy::CopyBack;
        configs.push_back(c);
    }

    SinglePassEngine engine(configs);
    engine.processTrace(*trace);
    const auto actual = engine.results();
    ASSERT_EQ(actual.size(), configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        expectIdentical(actual[i], directResult(configs[i], *trace));
    }
}

TEST(SinglePassFifo, AutoRoutesFifoConfigsToTheFastPath)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), 10000);
    CacheConfig fifo = makeConfig(1024, 16, 16,
                                  suite.profile.wordSize);
    fifo.replacement = ReplacementPolicy::FIFO;
    const std::vector<CacheConfig> configs{fifo};

    ThreadPool pool(2);
    ParallelSweepRunner routed(configs, &pool, SweepEngine::Auto);
    EXPECT_TRUE(routed.fastPathed(0));
    routed.run(trace);
    expectIdentical(routed.results()[0], directResult(fifo, *trace));
}
