/**
 * @file
 * Unit tests for the multiprogramming interleave source: round-robin
 * order, quantum boundaries, exhaustion handling, and the
 * task-switching effect on cache performance the paper calls out in
 * Section 3.3.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "trace/interleave.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

VectorTrace
tagTrace(Addr base, std::size_t count)
{
    VectorTrace trace;
    for (std::size_t i = 0; i < count; ++i) {
        trace.append(base + static_cast<Addr>(i) * 2,
                     RefKind::DataRead, 2);
    }
    return trace;
}

} // namespace

TEST(Interleave, RoundRobinWithQuantum)
{
    VectorTrace a = tagTrace(0x1000, 4);
    VectorTrace b = tagTrace(0x2000, 4);
    InterleaveSource mix({&a, &b}, 2);

    std::vector<Addr> order;
    MemRef ref;
    while (mix.next(ref))
        order.push_back(ref.addr & 0xF000);

    ASSERT_EQ(order.size(), 8u);
    const std::vector<Addr> expected = {0x1000, 0x1000, 0x2000, 0x2000,
                                        0x1000, 0x1000, 0x2000, 0x2000};
    EXPECT_EQ(order, expected);
    EXPECT_GE(mix.switches(), 3u);
}

TEST(Interleave, UnevenLengthsDrainCompletely)
{
    VectorTrace a = tagTrace(0x1000, 1);
    VectorTrace b = tagTrace(0x2000, 5);
    InterleaveSource mix({&a, &b}, 2);
    MemRef ref;
    int total = 0;
    while (mix.next(ref))
        ++total;
    EXPECT_EQ(total, 6);
}

TEST(Interleave, SingleSourcePassesThrough)
{
    VectorTrace a = tagTrace(0x1000, 7);
    InterleaveSource mix({&a}, 3);
    MemRef ref;
    int total = 0;
    while (mix.next(ref))
        ++total;
    EXPECT_EQ(total, 7);
}

TEST(Interleave, ResetReproduces)
{
    VectorTrace a = tagTrace(0x1000, 6);
    VectorTrace b = tagTrace(0x2000, 6);
    InterleaveSource mix({&a, &b}, 4);
    const VectorTrace first = collect(mix);
    mix.reset();
    const VectorTrace second = collect(mix);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i], second[i]);
}

TEST(Interleave, TaskSwitchingRaisesMissRatio)
{
    // The paper: "the omission of task switching effects will bias
    // our estimated performance upward, although the small sizes of
    // the caches studied make this effect minor." Check both halves:
    // interleaving hurts, but only mildly for a small cache.
    const Suite suite = pdp11Suite();
    VectorTrace a = buildTrace(suite.traces[0], 150000);
    VectorTrace b = buildTrace(suite.traces[3], 150000);

    // Baseline: the two programs run alone, averaged (both traces
    // contribute the same reference count to the mix).
    Cache alone_a(makeConfig(1024, 16, 8, 2));
    alone_a.run(a);
    Cache alone_b(makeConfig(1024, 16, 8, 2));
    alone_b.run(b);
    const double solo_miss = (alone_a.stats().missRatio() +
                              alone_b.stats().missRatio()) /
                             2.0;

    a.reset();
    b.reset();
    InterleaveSource mix({&a, &b}, 10000);
    Cache shared(makeConfig(1024, 16, 8, 2));
    shared.run(mix);
    const double mixed_miss = shared.stats().missRatio();

    EXPECT_GT(mixed_miss, solo_miss - 1e-6)
        << "multiprogramming should not look better than solo runs";
    EXPECT_LT(mixed_miss, solo_miss + 0.15)
        << "for small caches the effect is minor";
}

TEST(Interleave, SmallerQuantumHurtsMore)
{
    const Suite suite = z8000Suite();
    VectorTrace a = buildTrace(suite.traces[1], 100000);
    VectorTrace b = buildTrace(suite.traces[2], 100000);

    auto miss_at_quantum = [&](std::uint64_t quantum) {
        a.reset();
        b.reset();
        InterleaveSource mix({&a, &b}, quantum);
        Cache cache(makeConfig(1024, 16, 8, 2));
        cache.run(mix);
        return cache.stats().missRatio();
    };

    const double fine = miss_at_quantum(500);
    const double coarse = miss_at_quantum(50000);
    EXPECT_GE(fine, coarse - 1e-6)
        << "more frequent switching cannot help the cache";
}
