/**
 * @file
 * Edge-case tests for CacheStats, focused on the bulk-load path
 * (loadDemandRun) the single-pass engine depends on: zero-reference
 * runs must yield clean zeros (no NaN from 0/0), huge counts must
 * not corrupt the derived doubles, the bit-identity contract with
 * the per-reference recording path must hold, and loading into a
 * non-empty object must die loudly.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cache/cache.hh"
#include "check/generators.hh"
#include "mem/bus_model.hh"

using namespace occsim;

namespace {

constexpr std::uint32_t kWordsPerBlock = 4;

CacheStats
freshStats()
{
    return CacheStats(1, kWordsPerBlock);
}

} // namespace

TEST(CacheStatsLoad, ZeroReferenceRunYieldsZeroRatiosNotNaN)
{
    CacheStats stats = freshStats();
    stats.loadDemandRun(0, 0, 0, 0, 0, 0, 0, true, kWordsPerBlock);

    EXPECT_EQ(stats.accesses(), 0u);
    EXPECT_EQ(stats.missRatio(), 0.0);
    EXPECT_EQ(stats.warmMissRatio(), 0.0);
    EXPECT_EQ(stats.trafficRatio(), 0.0);
    EXPECT_EQ(stats.warmTrafficRatio(), 0.0);
    EXPECT_EQ(stats.ifetchMissRatio(), 0.0);
    EXPECT_EQ(stats.totalTrafficRatio(), 0.0);
    const NibbleModeBus nibble;
    EXPECT_EQ(stats.scaledTrafficRatio(nibble), 0.0);
    EXPECT_EQ(stats.warmScaledTrafficRatio(nibble), 0.0);
    EXPECT_FALSE(std::isnan(stats.meanSubBlocksTouched()));
    EXPECT_FALSE(std::isnan(stats.neverReferencedFraction()));
}

TEST(CacheStatsLoad, AllColdRunDiscountsToZeroWarm)
{
    // Every miss cold: warm-start metrics must collapse to zero
    // misses and zero traffic, exactly.
    CacheStats stats = freshStats();
    stats.loadDemandRun(100, 40, 7, 3, 7, 10, 2, true,
                        kWordsPerBlock);
    EXPECT_GT(stats.missRatio(), 0.0);
    EXPECT_EQ(stats.warmMissRatio(), 0.0);
    EXPECT_EQ(stats.warmTrafficRatio(), 0.0);
    const NibbleModeBus nibble;
    EXPECT_EQ(stats.warmScaledTrafficRatio(nibble), 0.0);
}

TEST(CacheStatsLoad, HugeCountsStayFiniteAndOrdered)
{
    // Counts near the top of the 64-bit range: the derived doubles
    // must stay finite and correctly ordered (no intermediate
    // integer overflow feeding the ratios).
    const std::uint64_t big = 1ull << 60;
    CacheStats stats = freshStats();
    stats.loadDemandRun(big, big / 2, big / 4, big / 8, big / 16,
                        big / 2, big / 8, true, kWordsPerBlock);

    EXPECT_TRUE(std::isfinite(stats.missRatio()));
    EXPECT_TRUE(std::isfinite(stats.trafficRatio()));
    EXPECT_DOUBLE_EQ(stats.missRatio(), 0.25);
    EXPECT_DOUBLE_EQ(stats.trafficRatio(), 0.25 * kWordsPerBlock);
    EXPECT_LE(stats.warmMissRatio(), stats.missRatio());
    EXPECT_LE(stats.warmTrafficRatio(), stats.trafficRatio());
    const NibbleModeBus nibble;
    EXPECT_LE(stats.scaledTrafficRatio(nibble),
              stats.trafficRatio() + 1e-12);
}

TEST(CacheStatsLoad, MatchesPerReferenceRecordingBitForBit)
{
    // The contract the single-pass engine rests on: bulk-loading a
    // demand run's totals must reproduce the per-reference recording
    // path's derived doubles exactly.
    CacheConfig config;
    config.netSize = 256;
    config.blockSize = 8;
    config.subBlockSize = 8;
    config.assoc = 2;
    config.wordSize = 2;

    Cache cache(config);
    const auto trace = TraceGen(0x10adull).make(20000, 2);
    for (const MemRef &ref : trace->refs())
        cache.access(ref);
    cache.finalizeResidencies();
    const CacheStats &want = cache.stats();

    CacheStats loaded(1, config.blockSize / config.wordSize);
    loaded.loadDemandRun(want.accesses(), want.ifetchAccesses(),
                         want.misses(), want.ifetchMisses(),
                         want.coldMisses(), want.writeAccesses(),
                         want.writeMisses(), true,
                         config.blockSize / config.wordSize);

    EXPECT_EQ(loaded.missRatio(), want.missRatio());
    EXPECT_EQ(loaded.warmMissRatio(), want.warmMissRatio());
    EXPECT_EQ(loaded.trafficRatio(), want.trafficRatio());
    EXPECT_EQ(loaded.warmTrafficRatio(), want.warmTrafficRatio());
    const NibbleModeBus nibble;
    EXPECT_EQ(loaded.scaledTrafficRatio(nibble),
              want.scaledTrafficRatio(nibble));
    EXPECT_EQ(loaded.warmScaledTrafficRatio(nibble),
              want.warmScaledTrafficRatio(nibble));
}

TEST(CacheStatsLoadDeathTest, DiesOnNonEmptyStats)
{
    // Bulk-loading over live counters would silently merge two runs;
    // it must abort instead.
    CacheStats stats = freshStats();
    stats.recordHit(false);
    EXPECT_DEATH(stats.loadDemandRun(1, 0, 0, 0, 0, 0, 0, true,
                                     kWordsPerBlock),
                 "non-empty");

    CacheStats loaded = freshStats();
    loaded.loadDemandRun(2, 1, 1, 0, 1, 0, 0, true, kWordsPerBlock);
    EXPECT_DEATH(loaded.loadDemandRun(2, 1, 1, 0, 1, 0, 0, true,
                                      kWordsPerBlock),
                 "non-empty");

    // Writes alone also make the object non-empty.
    CacheStats written = freshStats();
    written.recordWrite(true);
    EXPECT_DEATH(written.loadDemandRun(0, 0, 0, 0, 0, 0, 0, true,
                                       kWordsPerBlock),
                 "non-empty");
}
