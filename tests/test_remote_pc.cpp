/**
 * @file
 * Unit tests for the RISC II remote-program-counter model (Section
 * 2.3): sequential prediction, branch-target learning, accuracy
 * accounting, and the access-time reduction formula.
 */

#include <gtest/gtest.h>

#include "cache/remote_pc.hh"
#include "vm/machine.hh"
#include "vm/program_library.hh"

using namespace occsim;

TEST(RemotePc, PerfectOnStraightLine)
{
    RemotePc predictor(64, 2);
    for (Addr addr = 0x100; addr < 0x200; addr += 2)
        predictor.fetch(addr);
    // Every prediction after the first fetch is sequential: all hit.
    EXPECT_EQ(predictor.predictions(), 127u);
    EXPECT_DOUBLE_EQ(predictor.accuracy(), 1.0);
}

TEST(RemotePc, LearnsLoopBackEdge)
{
    RemotePc predictor(64, 2);
    // Loop body 0x100,0x102,0x104 then back to 0x100, repeatedly.
    for (int iteration = 0; iteration < 50; ++iteration) {
        predictor.fetch(0x100);
        predictor.fetch(0x102);
        predictor.fetch(0x104);
    }
    // First iteration mispredicts the back edge once; afterwards the
    // table predicts it. Total predictions: 149, wrong: 1.
    EXPECT_EQ(predictor.correct(), predictor.predictions() - 1);
    EXPECT_GT(predictor.accuracy(), 0.99);
}

TEST(RemotePc, SequentialOnlyPredictorMissesEveryBranch)
{
    RemotePc predictor(0, 2);  // no target table
    for (int iteration = 0; iteration < 50; ++iteration) {
        predictor.fetch(0x100);
        predictor.fetch(0x102);
        predictor.fetch(0x104);
    }
    // The back edge mispredicts every iteration: 49 wrong of 149.
    EXPECT_EQ(predictor.predictions() - predictor.correct(), 49u);
}

TEST(RemotePc, TableBeatsSequentialOnRealProgram)
{
    Program program = assemble(progQuickSort(512),
                               MachineConfig::word16());
    VmTraceSource source(std::move(program), "qs", true);
    VectorTrace trace = collect(source, 100000);

    RemotePc with_table(256, 2);
    trace.reset();
    with_table.run(trace);

    RemotePc sequential_only(0, 2);
    trace.reset();
    sequential_only.run(trace);

    EXPECT_GT(with_table.accuracy(), sequential_only.accuracy());
    // The RISC II achieved ~0.9 with hints; our dynamic table should
    // be in the same regime on a loop-heavy program.
    EXPECT_GT(with_table.accuracy(), 0.75);
}

TEST(RemotePc, AccessTimeReductionFormula)
{
    RemotePc predictor(64, 2);
    for (Addr addr = 0x100; addr < 0x180; addr += 2)
        predictor.fetch(addr);  // accuracy 1.0
    // Perfect prediction: relative time = overlapped fraction.
    EXPECT_DOUBLE_EQ(predictor.relativeAccessTime(0.35), 0.35);

    RemotePc never(0, 2);
    never.fetch(0x100);
    never.fetch(0x500);   // wrong
    never.fetch(0x9000);  // wrong
    EXPECT_DOUBLE_EQ(never.relativeAccessTime(0.35), 1.0);
}

TEST(RemotePc, PaperRegimeReduction)
{
    // The RISC II: 89.9% accuracy cut the access time seen by the
    // processor by 42.2%. With the default unhidden fraction the
    // model reproduces that pairing.
    RemotePc predictor(64, 2);
    // Synthesize ~90% accuracy: 9 sequential fetches then one jump to
    // a fresh address (never learnable: always new).
    Addr base = 0x1000;
    for (int chunk = 0; chunk < 200; ++chunk) {
        for (int i = 0; i < 9; ++i)
            predictor.fetch(base + static_cast<Addr>(i) * 2);
        base += 0x400;  // unpredictable far jump
    }
    EXPECT_NEAR(predictor.accuracy(), 0.9, 0.015);
    // relative time = acc*0.53 + (1-acc): ~0.578 at acc ~0.9.
    EXPECT_NEAR(predictor.relativeAccessTime(), 0.578, 0.01);
}
