/**
 * @file
 * Unit tests for the synthetic workload generator: determinism,
 * structural properties of the stream (regions, alignment, mix), and
 * the responsiveness of its locality knobs.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "trace/trace_stats.hh"
#include "workload/synthetic.hh"

using namespace occsim;

TEST(Synthetic, DeterministicForSeed)
{
    SyntheticParams params;
    params.seed = 1234;
    const VectorTrace a = makeSyntheticTrace(params, 5000);
    const VectorTrace b = makeSyntheticTrace(params, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(Synthetic, ResetReproducesStream)
{
    SyntheticParams params;
    SyntheticSource source(params);
    MemRef first;
    source.next(first);
    for (int i = 0; i < 100; ++i) {
        MemRef scratch;
        source.next(scratch);
    }
    source.reset();
    MemRef again;
    source.next(again);
    EXPECT_EQ(first, again);
}

TEST(Synthetic, WordAlignment)
{
    for (const std::uint32_t word : {2u, 4u}) {
        SyntheticParams params;
        params.wordSize = word;
        SyntheticSource source(params);
        MemRef ref;
        for (int i = 0; i < 2000; ++i) {
            source.next(ref);
            EXPECT_EQ(ref.addr % word, 0u);
            EXPECT_EQ(ref.size, word);
        }
    }
}

TEST(Synthetic, RegionsRespected)
{
    SyntheticParams params;
    SyntheticSource source(params);
    MemRef ref;
    for (int i = 0; i < 5000; ++i) {
        source.next(ref);
        if (ref.isInstruction()) {
            EXPECT_GE(ref.addr, params.codeBase);
            EXPECT_LT(ref.addr, params.codeBase + params.codeSize);
        } else {
            const bool in_data =
                ref.addr >= params.dataBase &&
                ref.addr < params.dataBase + params.dataSize;
            const bool in_stack =
                ref.addr <= params.stackBase &&
                ref.addr >= params.stackBase - params.stackWindow;
            EXPECT_TRUE(in_data || in_stack)
                << std::hex << ref.addr;
        }
    }
}

TEST(Synthetic, MixMatchesParameters)
{
    SyntheticParams params;
    params.ifetchFraction = 0.7;
    params.writeFraction = 0.25;
    const VectorTrace trace = makeSyntheticTrace(params, 60000);
    const TraceProfile profile = profileTrace(trace);
    EXPECT_NEAR(profile.ifetchFraction(), 0.7, 0.02);
    // writeFraction applies to data refs only.
    const double writes_of_data =
        static_cast<double>(profile.dataWrites) /
        static_cast<double>(profile.dataReads + profile.dataWrites);
    EXPECT_NEAR(writes_of_data, 0.25, 0.02);
}

TEST(Synthetic, InstructionStreamIsRunAndBranch)
{
    SyntheticParams params;
    params.branchProb = 0.1;
    const VectorTrace trace = makeSyntheticTrace(params, 60000);
    const TraceProfile profile = profileTrace(trace);
    // Sequentiality should be close to 1 - branchProb.
    EXPECT_NEAR(profile.ifetchSequentiality, 0.9, 0.05);
}

TEST(Synthetic, LargerWorkingSetRaisesMissRatio)
{
    // The knob the suites rely on: growing the data working set must
    // monotonically worsen a small cache.
    double prev = -1.0;
    for (const std::uint32_t data_size :
         {2u * 1024u, 16u * 1024u, 128u * 1024u}) {
        SyntheticParams params;
        params.seed = 5;
        params.dataSize = data_size;
        params.ifetchFraction = 0.3;
        SyntheticSource source(params);
        Cache cache(makeConfig(1024, 16, 8, 2));
        cache.run(source, 100000);
        EXPECT_GT(cache.stats().missRatio(), prev);
        prev = cache.stats().missRatio();
    }
}

TEST(Synthetic, TightLoopsLowerIfetchMisses)
{
    auto ifetch_miss = [](double local_prob, std::uint32_t span) {
        SyntheticParams params;
        params.seed = 8;
        params.branchLocalProb = local_prob;
        params.loopSpan = span;
        SyntheticSource source(params);
        Cache cache(makeConfig(1024, 16, 8, 2));
        cache.run(source, 100000);
        return cache.stats().ifetchMissRatio();
    };
    EXPECT_LT(ifetch_miss(0.95, 64), ifetch_miss(0.3, 64));
}
