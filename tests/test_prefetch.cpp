/**
 * @file
 * Unit tests for the sequential prefetch extension
 * (FetchPolicy::PrefetchNextOnMiss): fetch extent, cross-block
 * allocation, usefulness accounting, and the latency/traffic/
 * pollution tradeoffs the paper describes qualitatively in Section
 * 2.2 ("effective prefetching reduces latency at a cost of increased
 * memory traffic and at a risk of memory pollution").
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "workload/synthetic.hh"

using namespace occsim;

namespace {

MemRef
read(Addr addr)
{
    return MemRef{addr, RefKind::DataRead, 2};
}

CacheConfig
pfConfig()
{
    CacheConfig config = makeConfig(64, 16, 4, 2);
    config.fetch = FetchPolicy::PrefetchNextOnMiss;
    return config;
}

} // namespace

TEST(Prefetch, MissFetchesTargetAndNextSubBlock)
{
    Cache cache(pfConfig());
    cache.access(read(0x100));  // miss sub 0 -> prefetch sub 1
    EXPECT_TRUE(cache.isResident(0x100));
    EXPECT_TRUE(cache.isResident(0x104));
    EXPECT_FALSE(cache.isResident(0x108));
    EXPECT_EQ(cache.stats().wordsFetched(), 4u);  // 2 + 2 words
    EXPECT_EQ(cache.stats().prefetches(), 1u);
    EXPECT_EQ(cache.stats().misses(), 1u);
}

TEST(Prefetch, CrossesBlockBoundary)
{
    Cache cache(pfConfig());
    cache.access(read(0x10C));  // last sub-block of block 0x100
    EXPECT_TRUE(cache.isResident(0x10C));
    EXPECT_TRUE(cache.isBlockResident(0x110))
        << "prefetch allocated the next block";
    EXPECT_TRUE(cache.isResident(0x110));
}

TEST(Prefetch, SequentialScanHitsPrefetchedData)
{
    Cache cache(pfConfig());
    for (Addr addr = 0; addr < 1024; addr += 2)
        cache.access(read(addr));
    // Every other sub-block arrives by prefetch: roughly half the
    // demand-fetch misses.
    Cache demand(makeConfig(64, 16, 4, 2));
    for (Addr addr = 0; addr < 1024; addr += 2)
        demand.access(read(addr));
    EXPECT_LT(cache.stats().misses(), demand.stats().misses());
    EXPECT_GT(cache.stats().usefulPrefetches(), 0u);
    EXPECT_GT(cache.stats().prefetchAccuracy(), 0.9)
        << "sequential scan: nearly every prefetch is used";
}

TEST(Prefetch, AlreadyResidentTargetMovesNothing)
{
    Cache cache(pfConfig());
    cache.access(read(0x104));  // miss sub 1 -> prefetch sub 2
    const std::uint64_t words = cache.stats().wordsFetched();
    cache.access(read(0x100));  // miss sub 0 -> prefetch sub 1 (resident)
    EXPECT_EQ(cache.stats().wordsFetched(), words + 2)
        << "only the demand sub-block moved";
}

TEST(Prefetch, UsefulCountedOncePerPrefetch)
{
    Cache cache(pfConfig());
    cache.access(read(0x100));  // prefetches 0x104
    cache.access(read(0x104));  // useful
    cache.access(read(0x104));  // plain hit, not counted again
    EXPECT_EQ(cache.stats().usefulPrefetches(), 1u);
}

TEST(Prefetch, ReducesMissesOnRealisticStream)
{
    SyntheticParams params;
    params.seed = 91;
    const VectorTrace trace = makeSyntheticTrace(params, 60000);

    CacheConfig demand_config = makeConfig(256, 16, 4, 2);
    CacheConfig prefetch_config = demand_config;
    prefetch_config.fetch = FetchPolicy::PrefetchNextOnMiss;

    Cache demand(demand_config);
    Cache prefetch(prefetch_config);
    VectorTrace copy = trace;
    demand.run(copy);
    copy = trace;
    prefetch.run(copy);

    // The paper's qualitative claim: latency down, traffic up.
    EXPECT_LT(prefetch.stats().missRatio(), demand.stats().missRatio());
    EXPECT_GT(prefetch.stats().trafficRatio(),
              demand.stats().trafficRatio());
}

TEST(Prefetch, TopOfAddressSpaceSuppressesPrefetch)
{
    // A miss on the last sub-block of the 32-bit address space has no
    // sequential successor: the prefetch target would wrap to address
    // 0. The defined behavior is to suppress the prefetch entirely —
    // no prefetch traffic, no bogus block-0 allocation.
    Cache cache(pfConfig());
    const Addr top = 0xFFFFFFFCu;  // last 4-byte sub-block
    cache.access(read(top));
    EXPECT_TRUE(cache.isResident(top));
    EXPECT_EQ(cache.stats().prefetches(), 0u)
        << "wrapped prefetch target must be suppressed";
    EXPECT_FALSE(cache.isBlockResident(0x0))
        << "the prefetch must not wrap around to address 0";
    EXPECT_EQ(cache.stats().misses(), 1u);
    EXPECT_EQ(cache.stats().wordsFetched(), 2u)
        << "only the demand sub-block moved";
}

TEST(Prefetch, BelowTopOfAddressSpaceStillPrefetches)
{
    // One sub-block below the top the successor exists: the ordinary
    // prefetch behavior is unchanged right up to the edge.
    Cache cache(pfConfig());
    cache.access(read(0xFFFFFFF8u));  // second-to-last sub-block
    EXPECT_EQ(cache.stats().prefetches(), 1u);
    EXPECT_TRUE(cache.isResident(0xFFFFFFFCu))
        << "the top sub-block arrived by prefetch";
}

TEST(Prefetch, PollutionVisibleOnRandomStream)
{
    // On a uniform random stream prefetches are rarely used (low
    // accuracy), demonstrating the pollution risk.
    SyntheticParams params;
    params.seed = 17;
    params.ifetchFraction = 0.0;
    params.dataStackProb = 0.0;
    params.dataScanProb = 0.0;  // pure uniform data references
    params.dataSize = 32 * 1024;
    SyntheticSource source(params);
    Cache cache(pfConfig());
    cache.run(source, 50000);
    EXPECT_LT(cache.stats().prefetchAccuracy(), 0.3);
}
