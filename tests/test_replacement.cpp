/**
 * @file
 * Unit tests for the replacement policies: LRU recency maintenance,
 * FIFO insertion order, Random determinism under a fixed seed.
 */

#include <gtest/gtest.h>

#include "cache/replacement.hh"

using namespace occsim;

TEST(LRU, VictimIsLeastRecentlyUsed)
{
    ReplacementState repl(ReplacementPolicy::LRU, 1, 4);
    // Fill ways 0..3 in order, then touch 0: victim must be 1.
    for (std::uint32_t way = 0; way < 4; ++way)
        repl.onFill(0, way);
    repl.onAccess(0, 0);
    EXPECT_EQ(repl.victim(0), 1u);
    repl.onAccess(0, 1);
    EXPECT_EQ(repl.victim(0), 2u);
}

TEST(LRU, AccessPromotesToMostRecent)
{
    ReplacementState repl(ReplacementPolicy::LRU, 1, 3);
    repl.onFill(0, 0);
    repl.onFill(0, 1);
    repl.onFill(0, 2);
    repl.onAccess(0, 0);
    const auto order = repl.evictionOrder(0);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 1u);  // next victim
    EXPECT_EQ(order[1], 2u);
    EXPECT_EQ(order[2], 0u);  // most protected
}

TEST(LRU, SetsAreIndependent)
{
    ReplacementState repl(ReplacementPolicy::LRU, 2, 2);
    repl.onFill(0, 0);
    repl.onFill(0, 1);
    repl.onFill(1, 1);
    repl.onFill(1, 0);
    repl.onAccess(0, 0);
    EXPECT_EQ(repl.victim(0), 1u);
    EXPECT_EQ(repl.victim(1), 1u);
}

TEST(FIFO, AccessDoesNotPromote)
{
    ReplacementState repl(ReplacementPolicy::FIFO, 1, 3);
    repl.onFill(0, 0);
    repl.onFill(0, 1);
    repl.onFill(0, 2);
    // Touch way 0 repeatedly: in FIFO it must still be evicted first.
    repl.onAccess(0, 0);
    repl.onAccess(0, 0);
    EXPECT_EQ(repl.victim(0), 0u);
    // Refill (new block) does re-order.
    repl.onFill(0, 0);
    EXPECT_EQ(repl.victim(0), 1u);
}

TEST(Random, DeterministicUnderSeed)
{
    ReplacementState a(ReplacementPolicy::Random, 1, 4, 777);
    ReplacementState b(ReplacementPolicy::Random, 1, 4, 777);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.victim(0), b.victim(0));
}

TEST(Random, CoversAllWays)
{
    ReplacementState repl(ReplacementPolicy::Random, 1, 4, 1);
    bool seen[4] = {};
    for (int i = 0; i < 200; ++i) {
        const std::uint32_t way = repl.victim(0);
        ASSERT_LT(way, 4u);
        seen[way] = true;
    }
    for (bool hit : seen)
        EXPECT_TRUE(hit);
}
