/**
 * @file
 * Tests for the experiment harness: the Table 1 design grids, suite
 * execution/averaging, and basic structure of the table/figure
 * drivers' output (run at a reduced trace length via the suites'
 * buildTrace refs parameter where applicable).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/experiment.hh"

using namespace occsim;

TEST(PaperGrid, ContainsExpectedCombinations)
{
    const auto grid = paperGrid(1024, 2);
    // blocks 2..64; for each block, subs 2..min(block,32):
    // 1+2+3+4+5+5 = 20 combinations.
    EXPECT_EQ(grid.size(), 20u);
    for (const CacheConfig &config : grid) {
        EXPECT_EQ(config.netSize, 1024u);
        EXPECT_LE(config.subBlockSize, config.blockSize);
        EXPECT_GE(config.subBlockSize, 2u);
        EXPECT_LE(config.subBlockSize, 32u);
        EXPECT_EQ(config.assoc, 4u);
        EXPECT_EQ(config.replacement, ReplacementPolicy::LRU);
        EXPECT_EQ(config.fetch, FetchPolicy::Demand);
    }
}

TEST(PaperGrid, RespectsWordSize)
{
    // On 32-bit architectures sub-blocks start at 4 bytes.
    const auto grid = paperGrid(1024, 4);
    for (const CacheConfig &config : grid)
        EXPECT_GE(config.subBlockSize, 4u);
}

TEST(PaperGrid, SmallCacheLimitsBlocks)
{
    const auto grid = paperGrid(32, 2);
    for (const CacheConfig &config : grid)
        EXPECT_LE(config.blockSize, 32u);
    // blocks 2,4,8,16,32 with subs: 1+2+3+4+5 = 15.
    EXPECT_EQ(grid.size(), 15u);
}

TEST(Table7Grid, DropsLargeSubBlocksOf64ByteBlocks)
{
    const auto grid = table7Grid(1024, 2);
    for (const CacheConfig &config : grid) {
        if (config.blockSize == 64) {
            EXPECT_LE(config.subBlockSize, 16u);
        }
    }
    // Table 7 prints 19 rows per 1024-byte net on 16-bit machines.
    EXPECT_EQ(grid.size(), 19u);
}

TEST(RunSuite, ShapesAndAveraging)
{
    const Suite suite = z8000CompilerSuite();
    const auto configs = paperGrid(64, suite.profile.wordSize);
    const SuiteRun run = runSuite(suite, configs, 30000);

    EXPECT_EQ(run.traceNames.size(), suite.traces.size());
    EXPECT_EQ(run.perTrace.size(), suite.traces.size());
    ASSERT_EQ(run.average.size(), configs.size());

    // The average is the unweighted mean of the per-trace results.
    for (std::size_t c = 0; c < configs.size(); ++c) {
        double mean = 0.0;
        for (const auto &trace_result : run.perTrace)
            mean += trace_result[c].missRatio;
        mean /= static_cast<double>(run.perTrace.size());
        EXPECT_NEAR(run.average[c].missRatio, mean, 1e-12);
    }
}

TEST(RunSuite, TrafficIdentityAcrossGrid)
{
    // On every grid point, demand fetch keeps the exact identity
    // traffic = miss * sub / word — per trace and in the average.
    const Suite suite = z8000CompilerSuite();
    const auto configs = paperGrid(256, suite.profile.wordSize);
    const SuiteRun run = runSuite(suite, configs, 30000);
    for (const SweepResult &result : run.average) {
        const double factor =
            static_cast<double>(result.config.subBlockSize) /
            static_cast<double>(result.config.wordSize);
        EXPECT_NEAR(result.trafficRatio, result.missRatio * factor,
                    1e-9)
            << result.config.shortName();
    }
}

TEST(FmtRatio, FourDecimals)
{
    EXPECT_EQ(fmtRatio(0.5), "0.5000");
    EXPECT_EQ(fmtRatio(0.12345), "0.1235");
}

TEST(Banner, MentionsTraceLength)
{
    std::ostringstream os;
    printBanner(os, "Test");
    EXPECT_NE(os.str().find("Test"), std::string::npos);
    EXPECT_NE(os.str().find("OCCSIM_TRACE_LEN"), std::string::npos);
}
