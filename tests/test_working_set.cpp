/**
 * @file
 * Unit tests for the working-set analyzer, including hand-computable
 * streams and the suite-scale ordering it exists to verify.
 */

#include <gtest/gtest.h>

#include "multi/working_set.hh"
#include "workload/suites.hh"

using namespace occsim;

TEST(WorkingSet, HandComputedLoop)
{
    // A loop touching the same 4 blocks forever: W(T) = 4 for any
    // window >= 4 references.
    VectorTrace trace;
    for (int round = 0; round < 100; ++round) {
        for (Addr block = 0; block < 4; ++block)
            trace.append(block * 16, RefKind::DataRead, 2);
    }
    WorkingSetAnalyzer analyzer(16);
    const auto points = analyzer.profile(trace, {4, 40, 400});
    ASSERT_EQ(points.size(), 3u);
    for (const WorkingSetPoint &point : points) {
        EXPECT_DOUBLE_EQ(point.meanBlocks, 4.0) << point.window;
        EXPECT_EQ(point.maxBlocks, 4u);
        EXPECT_DOUBLE_EQ(point.meanBytes, 64.0);
    }
}

TEST(WorkingSet, StreamingGrowsLinearly)
{
    // A pure sequential sweep touches window/8 distinct 16-byte
    // blocks per window of 2-byte references.
    VectorTrace trace;
    for (Addr addr = 0; addr < 16000; addr += 2)
        trace.append(addr, RefKind::DataRead, 2);
    WorkingSetAnalyzer analyzer(16);
    const auto points = analyzer.profile(trace, {80, 800});
    EXPECT_DOUBLE_EQ(points[0].meanBlocks, 10.0);
    EXPECT_DOUBLE_EQ(points[1].meanBlocks, 100.0);
}

TEST(WorkingSet, KindSelection)
{
    VectorTrace trace;
    for (int i = 0; i < 100; ++i) {
        trace.append(0x100, RefKind::Ifetch, 2);
        trace.append(0x4000 + static_cast<Addr>(i) * 16,
                     RefKind::DataRead, 2);
    }
    WorkingSetAnalyzer icode(16,
                             WorkingSetAnalyzer::Select::InstructionsOnly);
    WorkingSetAnalyzer data(16, WorkingSetAnalyzer::Select::DataOnly);
    // 100 ifetch refs hit one block; 100 data refs hit 100 blocks.
    EXPECT_DOUBLE_EQ(icode.profile(trace, {100})[0].meanBlocks, 1.0);
    EXPECT_DOUBLE_EQ(data.profile(trace, {100})[0].meanBlocks, 100.0);
}

TEST(WorkingSet, PartialWindowIgnored)
{
    VectorTrace trace;
    for (Addr block = 0; block < 10; ++block)
        trace.append(block * 16, RefKind::DataRead, 2);
    WorkingSetAnalyzer analyzer(16);
    // Window 7: one full window (7 blocks); the 3-ref tail ignored.
    const auto points = analyzer.profile(trace, {7});
    EXPECT_DOUBLE_EQ(points[0].meanBlocks, 7.0);
    // Window larger than the trace: no complete window, zeros.
    const auto none = analyzer.profile(trace, {100});
    EXPECT_DOUBLE_EQ(none[0].meanBlocks, 0.0);
}

TEST(WorkingSet, SuggestedCacheCoversTheLoop)
{
    VectorTrace trace;
    for (int round = 0; round < 50; ++round) {
        for (Addr block = 0; block < 20; ++block)
            trace.append(block * 16, RefKind::DataRead, 2);
    }
    WorkingSetAnalyzer analyzer(16);
    // 20 blocks = 320 bytes -> next power of two is 512.
    EXPECT_EQ(analyzer.suggestedCacheBytes(trace, 1000), 512u);
}

TEST(WorkingSet, SuiteOrderingVisible)
{
    // The calibration story in one number: the System/370 suite's
    // working set at 100k references dwarfs the Z8000 one's.
    const Suite z8000 = z8000Suite();
    const Suite s370 = s370Suite();
    WorkingSetAnalyzer analyzer(16);

    VectorTrace z_trace = buildTrace(z8000.traces[0], 100000);
    VectorTrace s_trace = buildTrace(s370.traces[2], 100000);  // PGO1
    const double z_bytes =
        analyzer.profile(z_trace, {100000})[0].meanBytes;
    const double s_bytes =
        analyzer.profile(s_trace, {100000})[0].meanBytes;
    EXPECT_GT(s_bytes, 4.0 * z_bytes);
}
