/**
 * @file
 * Failure-injection tests: corrupted trace files, malformed machine
 * programs, and API misuse must produce clean diagnostics (fatal for
 * user errors, panic for internal traps), never silent corruption.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/trace_file.hh"
#include "vm/machine.hh"

using namespace occsim;

namespace {

std::string
writeFile(const char *name, const std::string &bytes)
{
    const std::string path = std::string(::testing::TempDir()) + name;
    std::FILE *file = std::fopen(path.c_str(), "wb");
    EXPECT_NE(file, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), file);
    std::fclose(file);
    return path;
}

} // namespace

TEST(TraceFileFailure, MissingFile)
{
    EXPECT_EXIT(readTrace("/nonexistent/path/t.otb"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceFileFailure, TruncatedBinaryHeader)
{
    const std::string path = writeFile("trunc_header.otb", "OCTB\x01");
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "truncated binary trace header");
    std::remove(path.c_str());
}

TEST(TraceFileFailure, UnsupportedVersion)
{
    std::string bytes = "OCTB";
    bytes += '\x7f';  // bogus version
    bytes += std::string(11, '\0');
    const std::string path = writeFile("bad_version.otb", bytes);
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "unsupported trace version");
    std::remove(path.c_str());
}

TEST(TraceFileFailure, TruncatedBinaryBody)
{
    // Header promising 5 records, body holding half of one.
    std::string bytes = "OCTB";
    bytes += '\x01';           // version
    bytes += '\x02';           // word size
    bytes += std::string(2, '\0');
    bytes += '\x05';           // count = 5 (little endian)
    bytes += std::string(7, '\0');
    bytes += "abc";            // not even one 6-byte record
    const std::string path = writeFile("trunc_body.otb", bytes);
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "truncated binary trace body");
    std::remove(path.c_str());
}

TEST(TraceFileFailure, TruncatedCompressedBody)
{
    std::string bytes = "OCTD";
    bytes += '\x01';           // version
    bytes += '\x02';           // word size
    bytes += std::string(2, '\0');
    bytes += '\x05';           // count = 5
    bytes += std::string(7, '\0');
    bytes += '\x00';           // one flag byte, then nothing
    const std::string path = writeFile("trunc.otd", bytes);
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "truncated compressed trace body");
    std::remove(path.c_str());
}

TEST(TraceFileFailure, BadTextLabel)
{
    const std::string path = writeFile("bad_label.din", "9 100 2\n");
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "bad label");
    std::remove(path.c_str());
}

TEST(TraceFileFailure, BadTextAddress)
{
    const std::string path = writeFile("bad_addr.din", "2 zzz 2\n");
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "bad address");
    std::remove(path.c_str());
}

TEST(TraceFileFailure, MalformedTextLine)
{
    const std::string path = writeFile("short_line.din", "2\n");
    EXPECT_EXIT(readTrace(path), ::testing::ExitedWithCode(1),
                "malformed trace line");
    std::remove(path.c_str());
}

TEST(MachineFailure, JumpToDataSectionTraps)
{
    Program program = assemble("    movi r1, buf\n"
                               "    jmp  buf\n"
                               "    halt\n"
                               ".data\n"
                               "buf: .word 0\n",
                               MachineConfig::word16());
    Machine machine(std::move(program));
    VectorTrace sink;
    EXPECT_DEATH(machine.run(sink), "non-instruction address");
}

TEST(MachineFailure, JumpIntoOperandWordTraps)
{
    // codeBase + 2 is the immediate word of the first movi.
    const MachineConfig config = MachineConfig::word16();
    Program program = assemble("    movi r1, 258\n"  // 0x102
                               "    jmp  258\n"
                               "    halt\n",
                               config);
    Machine machine(std::move(program));
    VectorTrace sink;
    EXPECT_DEATH(machine.run(sink), "non-instruction address");
}

TEST(MachineFailure, StoreOutsideMemoryTraps)
{
    // 32-bit config with a 24-bit address mask but memory smaller
    // than the address space: an out-of-range store must trap, not
    // scribble.
    MachineConfig config = MachineConfig::word32(1u << 20);
    config.stackTop = 1u << 20;
    Program program = assemble("    movi r1, 2097152\n"  // 2 MB
                               "    st   r1, r1, 0\n"
                               "    halt\n",
                               config);
    Machine machine(std::move(program));
    VectorTrace sink;
    EXPECT_DEATH(machine.run(sink), "outside memory");
}

TEST(MachineFailure, CodeOverrunRejectedAtAssembly)
{
    // Enough instructions to overrun dataBase.
    MachineConfig config = MachineConfig::word16();
    config.codeBase = 0x100;
    config.dataBase = 0x110;  // room for 8 words only
    std::string source;
    for (int i = 0; i < 16; ++i)
        source += "    nop\n";
    EXPECT_EXIT(assemble(source, config),
                ::testing::ExitedWithCode(1), "overruns data base");
}

TEST(MachineFailure, DataOverrunRejectedAtAssembly)
{
    MachineConfig config = MachineConfig::word16();
    EXPECT_EXIT(assemble(".data\nbig: .space 100000\n", config),
                ::testing::ExitedWithCode(1), "overruns memory");
}
