/**
 * @file
 * Unit tests for CacheGeometry: dimension derivation, associativity
 * clamping, address decomposition, and — crucially — the gross-size
 * model, validated against the exact gross sizes printed in the
 * paper's Table 7 and the Section 2.2 minimum-cache examples.
 */

#include <gtest/gtest.h>

#include "cache/cache_geometry.hh"

using namespace occsim;

TEST(Geometry, BasicDerivation)
{
    const CacheGeometry geom(makeConfig(1024, 16, 8, 2));
    EXPECT_EQ(geom.numBlocks(), 64u);
    EXPECT_EQ(geom.assoc(), 4u);
    EXPECT_EQ(geom.numSets(), 16u);
    EXPECT_EQ(geom.subBlocksPerBlock(), 2u);
    EXPECT_EQ(geom.wordsPerSubBlock(), 4u);
}

TEST(Geometry, AssocClampsForTinyCaches)
{
    // A 32-byte cache with 16-byte blocks holds 2 blocks: it cannot
    // be 4-way, it degenerates to 2-way with one set (as in the
    // paper's Figure 1 32-byte points).
    const CacheGeometry geom(makeConfig(32, 16, 8, 2));
    EXPECT_EQ(geom.numBlocks(), 2u);
    EXPECT_EQ(geom.assoc(), 2u);
    EXPECT_EQ(geom.numSets(), 1u);
}

TEST(Geometry, AddressDecomposition)
{
    const CacheGeometry geom(makeConfig(1024, 16, 4, 2));
    const Addr addr = 0xABCD;
    EXPECT_EQ(geom.blockAddr(addr), addr >> 4);
    EXPECT_EQ(geom.setIndex(addr), (addr >> 4) & 15u);
    EXPECT_EQ(geom.subBlockIndex(addr), (addr & 15u) >> 2);
    // Sub-block indices cover [0, 4).
    EXPECT_EQ(geom.subBlockIndex(0x0), 0u);
    EXPECT_EQ(geom.subBlockIndex(0x4), 1u);
    EXPECT_EQ(geom.subBlockIndex(0xF), 3u);
}

// Gross sizes from the paper's Table 7 (all with 32-bit tags).
struct GrossCase
{
    std::uint32_t net, block, sub;
    std::uint64_t grossBytes;
};

class GrossSizeTable7 : public ::testing::TestWithParam<GrossCase>
{
};

TEST_P(GrossSizeTable7, MatchesPaper)
{
    const GrossCase param = GetParam();
    const CacheGeometry geom(
        makeConfig(param.net, param.block, param.sub, 2));
    EXPECT_EQ(geom.grossBytes(), param.grossBytes)
        << param.net << "B " << param.block << "," << param.sub;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable7, GrossSizeTable7,
    ::testing::Values(
        // 64-byte caches
        GrossCase{64, 16, 8, 79}, GrossCase{64, 16, 4, 80},
        GrossCase{64, 16, 2, 82}, GrossCase{64, 8, 8, 94},
        GrossCase{64, 8, 4, 95}, GrossCase{64, 8, 2, 97},
        GrossCase{64, 4, 4, 126}, GrossCase{64, 4, 2, 128},
        GrossCase{64, 2, 2, 192},
        // 256-byte caches
        GrossCase{256, 32, 32, 284}, GrossCase{256, 32, 16, 285},
        GrossCase{256, 32, 8, 287}, GrossCase{256, 32, 4, 291},
        GrossCase{256, 32, 2, 299}, GrossCase{256, 16, 16, 314},
        GrossCase{256, 16, 8, 316}, GrossCase{256, 16, 4, 320},
        GrossCase{256, 16, 2, 328}, GrossCase{256, 8, 8, 376},
        GrossCase{256, 8, 4, 380}, GrossCase{256, 8, 2, 388},
        GrossCase{256, 4, 4, 504}, GrossCase{256, 4, 2, 512},
        GrossCase{256, 2, 2, 768},
        // 1024-byte caches
        GrossCase{1024, 64, 16, 1084}, GrossCase{1024, 64, 8, 1092},
        GrossCase{1024, 64, 4, 1108}, GrossCase{1024, 64, 2, 1140},
        GrossCase{1024, 32, 32, 1136}, GrossCase{1024, 32, 16, 1140},
        GrossCase{1024, 32, 8, 1148}, GrossCase{1024, 32, 4, 1164},
        GrossCase{1024, 32, 2, 1196}, GrossCase{1024, 16, 16, 1256},
        GrossCase{1024, 16, 8, 1264}, GrossCase{1024, 16, 4, 1280},
        GrossCase{1024, 16, 2, 1312}, GrossCase{1024, 8, 8, 1504},
        GrossCase{1024, 8, 4, 1520}, GrossCase{1024, 8, 2, 1552},
        GrossCase{1024, 4, 4, 2016}, GrossCase{1024, 4, 2, 2048},
        GrossCase{1024, 2, 2, 3072}));

TEST(Geometry, MinimumCacheRamCost)
{
    // Section 2.2: 16 blocks x [29 tag bits + 2 valid bits + 64 data
    // bits] / 8 = 190 bytes for the 32-word minimum cache.
    CacheConfig config = makeConfig(128, 8, 4, 4);
    config.assoc = 2;
    const CacheGeometry geom(config);
    EXPECT_EQ(geom.numBlocks(), 16u);
    EXPECT_EQ(geom.tagBitsPerBlock(), 29u);
    EXPECT_EQ(geom.validBitsPerBlock(), 2u);
    EXPECT_EQ(geom.grossBytes(), 190u);
}

TEST(Geometry, VaxMinimumCache95Bytes)
{
    // Conclusions: "On the 32-bit VAX-11, this cache requires only 95
    // bytes of RAM" — 64-byte cache, 8-byte blocks, 4-byte
    // sub-blocks.
    const CacheGeometry geom(makeConfig(64, 8, 4, 4));
    EXPECT_EQ(geom.grossBytes(), 95u);
}

TEST(Geometry, TrueTagSmallerThanPaperTag)
{
    const CacheGeometry geom(makeConfig(1024, 16, 8, 2));
    // 16 sets removes 4 bits relative to the paper's accounting.
    EXPECT_EQ(geom.trueTagBitsPerBlock(),
              geom.tagBitsPerBlock() - 4);
}

TEST(Geometry, Sector360Model85)
{
    const CacheGeometry geom(make360Model85Config());
    EXPECT_EQ(geom.numBlocks(), 16u);
    EXPECT_EQ(geom.assoc(), 16u);     // fully associative
    EXPECT_EQ(geom.numSets(), 1u);
    EXPECT_EQ(geom.subBlocksPerBlock(), 16u);
}

using GeometryDeath = ::testing::Test;

TEST(GeometryDeath, RejectsNonPowerOfTwo)
{
    EXPECT_EXIT(CacheGeometry(makeConfig(1000, 16, 8, 2)),
                ::testing::ExitedWithCode(1), "powers of two");
}

TEST(GeometryDeath, RejectsSubBlockLargerThanBlock)
{
    EXPECT_EXIT(CacheGeometry(makeConfig(1024, 8, 16, 2)),
                ::testing::ExitedWithCode(1), "exceeds block size");
}

TEST(GeometryDeath, RejectsWordLargerThanSubBlock)
{
    EXPECT_EXIT(CacheGeometry(makeConfig(1024, 8, 2, 4)),
                ::testing::ExitedWithCode(1), "exceeds sub-block");
}

TEST(GeometryDeath, RejectsBlockLargerThanCache)
{
    EXPECT_EXIT(CacheGeometry(makeConfig(32, 64, 8, 2)),
                ::testing::ExitedWithCode(1), "exceeds net cache");
}
