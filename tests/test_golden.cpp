/**
 * @file
 * Golden-file regression tests for the paper-table/figure text
 * output: Table 6 (the 360/85 sector-cache comparison) and Figure 1
 * (PDP-11 miss vs traffic). The harness output is a deliverable —
 * the repo's claim to reproduce the paper — so its exact text is
 * pinned, not just spot-checked numbers.
 *
 * Determinism: the environment is pinned (OCCSIM_TRACE_LEN=20000,
 * OCCSIM_THREADS=1) before any simulation starts, and the engines
 * guarantee bit-identical numbers, so the rendered text is exactly
 * reproducible.
 *
 * To regenerate after an intended output change:
 *   OCCSIM_REGOLD=1 ./build/tests/test_golden
 * then review the tests/golden/ diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/figures.hh"
#include "harness/paper_tables.hh"

using namespace occsim;

namespace {

// Pin the simulation environment before main() — and therefore
// before the trace-length cache or the global thread pool can latch
// ambient values.
const bool kEnvPinned = [] {
    setenv("OCCSIM_TRACE_LEN", "20000", 1);
    setenv("OCCSIM_THREADS", "1", 1);
    return true;
}();

std::string
goldenPath(const std::string &name)
{
    return std::string(OCCSIM_GOLDEN_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream contents;
    contents << in.rdbuf();
    return contents.str();
}

/** Compare @p actual against the golden file (or rewrite it under
 *  OCCSIM_REGOLD=1). */
void
expectGolden(const std::string &name, const std::string &actual)
{
    ASSERT_TRUE(kEnvPinned);
    const std::string path = goldenPath(name);
    if (std::getenv("OCCSIM_REGOLD") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << actual;
        GTEST_SKIP() << "regenerated " << path;
    }
    const std::string want = readFile(path);
    ASSERT_FALSE(want.empty())
        << "missing golden file " << path
        << " (regenerate with OCCSIM_REGOLD=1)";
    EXPECT_EQ(actual, want)
        << "output of " << name
        << " changed; if intended, regenerate with OCCSIM_REGOLD=1 "
           "and review the diff";
}

} // namespace

TEST(Golden, Table6SectorCacheComparison)
{
    std::ostringstream os;
    runTable6(os);
    expectGolden("table6.txt", os.str());
}

TEST(Golden, Figure1MissVsTraffic)
{
    std::ostringstream os;
    runFigure1(os);
    expectGolden("figure1.txt", os.str());
}
