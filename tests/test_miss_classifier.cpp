/**
 * @file
 * Unit tests for the compulsory/capacity/conflict miss classifier,
 * including hand-constructed conflict and capacity scenarios and the
 * cross-check that the three components always sum to the miss count.
 */

#include <gtest/gtest.h>

#include "multi/miss_classifier.hh"
#include "workload/synthetic.hh"

using namespace occsim;

TEST(MissClassifier, ColdStreamIsAllCompulsory)
{
    MissClassifier classifier(makeConfig(256, 16, 16, 2));
    for (Addr addr = 0; addr < 256; addr += 16)
        classifier.process(addr);
    const MissBreakdown &b = classifier.breakdown();
    EXPECT_EQ(b.misses, 16u);
    EXPECT_EQ(b.compulsory, 16u);
    EXPECT_EQ(b.capacity, 0u);
    EXPECT_EQ(b.conflict, 0u);
}

TEST(MissClassifier, PureConflictScenario)
{
    // Direct-mapped 4-block cache (64B, 16B blocks): two blocks that
    // map to the same set ping-pong, while a fully-associative cache
    // of 4 blocks would hold both.
    CacheConfig config = makeConfig(64, 16, 16, 2);
    config.assoc = 1;
    MissClassifier classifier(config);
    for (int round = 0; round < 50; ++round) {
        classifier.process(0x000);  // set 0
        classifier.process(0x040);  // also set 0 (4 sets of 16B)
    }
    const MissBreakdown &b = classifier.breakdown();
    EXPECT_EQ(b.compulsory, 2u);
    EXPECT_EQ(b.capacity, 0u);
    EXPECT_EQ(b.conflict, b.misses - 2u);
    EXPECT_GT(b.conflict, 90u);
}

TEST(MissClassifier, PureCapacityScenario)
{
    // Cycling through 8 blocks in a fully-associative 4-block cache:
    // every non-first miss is capacity (fully-assoc also misses).
    CacheConfig config = makeConfig(64, 16, 16, 2);
    config.assoc = 4;
    MissClassifier classifier(config);
    for (int round = 0; round < 20; ++round) {
        for (Addr block = 0; block < 8; ++block)
            classifier.process(block * 16);
    }
    const MissBreakdown &b = classifier.breakdown();
    EXPECT_EQ(b.compulsory, 8u);
    EXPECT_EQ(b.conflict, 0u) << "the cache IS fully associative";
    EXPECT_EQ(b.capacity, b.misses - 8u);
}

TEST(MissClassifier, ComponentsAlwaysSum)
{
    SyntheticParams params;
    params.seed = 101;
    const VectorTrace trace = makeSyntheticTrace(params, 40000);
    for (const std::uint32_t assoc : {1u, 2u, 4u}) {
        CacheConfig config = makeConfig(512, 16, 16, 2);
        config.assoc = assoc;
        MissClassifier classifier(config);
        classifier.processTrace(trace);
        const MissBreakdown &b = classifier.breakdown();
        EXPECT_EQ(b.compulsory + b.capacity + b.conflict, b.misses);
        EXPECT_EQ(b.refs, trace.size());
    }
}

TEST(MissClassifier, ConflictShareFallsWithAssociativity)
{
    // Smith's result, via the paper: 4-way is close to fully
    // associative, i.e. its conflict share is small.
    SyntheticParams params;
    params.seed = 55;
    const VectorTrace trace = makeSyntheticTrace(params, 60000);

    auto conflicts_at = [&](std::uint32_t assoc) {
        CacheConfig config = makeConfig(1024, 16, 16, 2);
        config.assoc = assoc;
        MissClassifier classifier(config);
        classifier.processTrace(trace);
        return classifier.breakdown();
    };
    const MissBreakdown direct = conflicts_at(1);
    const MissBreakdown four_way = conflicts_at(4);
    EXPECT_LT(four_way.conflict, direct.conflict)
        << "associativity exists to remove conflict misses";
    EXPECT_LT(four_way.conflictShare(), 0.25)
        << "4-way should be close to fully associative";
}

using MissClassifierDeath = ::testing::Test;

TEST(MissClassifierDeath, RejectsSubBlockConfigs)
{
    EXPECT_DEATH(MissClassifier(makeConfig(256, 16, 8, 2)),
                 "sub-block == block");
}
