/**
 * @file
 * Unit tests for the OC-1 two-pass assembler: parsing, label and
 * expression resolution, sections and directives, word-size
 * parameterization, and error diagnostics.
 */

#include <gtest/gtest.h>

#include "vm/assembler.hh"

using namespace occsim;

TEST(Assembler, SimpleProgram)
{
    const Program program = assemble("main:\n"
                                     "    movi r1, 42\n"
                                     "    mov  r2, r1\n"
                                     "    halt\n",
                                     MachineConfig::word16());
    ASSERT_EQ(program.instrs.size(), 3u);
    EXPECT_EQ(program.instrs[0].op, Opcode::MOVI);
    EXPECT_EQ(program.instrs[0].rd, 1);
    EXPECT_EQ(program.instrs[0].imm, 42);
    EXPECT_EQ(program.instrs[1].op, Opcode::MOV);
    EXPECT_EQ(program.instrs[2].op, Opcode::HALT);
    // movi is 2 words, mov 1, halt 1.
    EXPECT_EQ(program.codeBytes(), 4u * 2u);
}

TEST(Assembler, InstructionAddressesAccountForLengths)
{
    const MachineConfig config = MachineConfig::word16();
    const Program program = assemble("    movi r1, 1\n"  // 2 words
                                     "    nop\n"         // 1 word
                                     "    movi r2, 2\n", // 2 words
                                     config);
    EXPECT_EQ(program.instrAddr[0], config.codeBase);
    EXPECT_EQ(program.instrAddr[1], config.codeBase + 4);
    EXPECT_EQ(program.instrAddr[2], config.codeBase + 6);
    // pcMap marks operand words as interior (-1).
    EXPECT_EQ(program.pcMap[0], 0);
    EXPECT_EQ(program.pcMap[1], -1);
    EXPECT_EQ(program.pcMap[2], 1);
    EXPECT_EQ(program.pcMap[3], 2);
    EXPECT_EQ(program.pcMap[4], -1);
}

TEST(Assembler, LabelsResolveAcrossSections)
{
    const MachineConfig config = MachineConfig::word16();
    const Program program = assemble("    movi r1, buf\n"
                                     "    jmp  end\n"
                                     "end:\n"
                                     "    halt\n"
                                     ".data\n"
                                     "buf: .spacew 4\n"
                                     "val: .word 7\n",
                                     config);
    EXPECT_EQ(program.symbol("buf"), config.dataBase);
    EXPECT_EQ(program.symbol("val"), config.dataBase + 8);
    EXPECT_EQ(program.instrs[0].imm,
              static_cast<std::int32_t>(config.dataBase));
    // 'end' is the address of halt: movi(2) + jmp(2) words in.
    EXPECT_EQ(program.symbol("end"), config.codeBase + 8);
    EXPECT_EQ(program.instrs[1].imm,
              static_cast<std::int32_t>(config.codeBase + 8));
}

TEST(Assembler, EquAndExpressions)
{
    const Program program = assemble(".equ N, 10\n"
                                     ".equ M, N+5\n"
                                     "    movi r1, N-1\n"
                                     "    movi r2, M\n"
                                     "    movi r3, -1\n"
                                     "    movi r4, N+M-2\n",
                                     MachineConfig::word16());
    EXPECT_EQ(program.instrs[0].imm, 9);
    EXPECT_EQ(program.instrs[1].imm, 15);
    EXPECT_EQ(program.instrs[2].imm, -1);
    EXPECT_EQ(program.instrs[3].imm, 23);
}

TEST(Assembler, WsizePredefined)
{
    const Program p16 = assemble("    movi r1, WSIZE\n"
                                 "    movi r2, WSHIFT\n",
                                 MachineConfig::word16());
    EXPECT_EQ(p16.instrs[0].imm, 2);
    EXPECT_EQ(p16.instrs[1].imm, 1);

    const Program p32 = assemble("    movi r1, WSIZE\n"
                                 "    movi r2, WSHIFT\n",
                                 MachineConfig::word32());
    EXPECT_EQ(p32.instrs[0].imm, 4);
    EXPECT_EQ(p32.instrs[1].imm, 2);
}

TEST(Assembler, DataImageLittleEndian)
{
    const Program program = assemble(".data\n"
                                     "x: .word 0x1234, 1\n",
                                     MachineConfig::word16());
    ASSERT_EQ(program.data.size(), 4u);
    EXPECT_EQ(program.data[0], 0x34);
    EXPECT_EQ(program.data[1], 0x12);
    EXPECT_EQ(program.data[2], 1);
    EXPECT_EQ(program.data[3], 0);
}

TEST(Assembler, SpaceAndSpacewSizes)
{
    const Program p16 = assemble(".data\n"
                                 "a: .space 10\n"
                                 "b: .spacew 10\n"
                                 "c: .word 0\n",
                                 MachineConfig::word16());
    EXPECT_EQ(p16.symbol("b") - p16.symbol("a"), 10u);
    EXPECT_EQ(p16.symbol("c") - p16.symbol("b"), 20u);

    const Program p32 = assemble(".data\n"
                                 "a: .spacew 10\n"
                                 "b: .word 0\n",
                                 MachineConfig::word32());
    EXPECT_EQ(p32.symbol("b") - p32.symbol("a"), 40u);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program program = assemble("; full line comment\n"
                                     "\n"
                                     "    nop ; trailing comment\n"
                                     "  \t \n"
                                     "    halt\n",
                                     MachineConfig::word16());
    EXPECT_EQ(program.instrs.size(), 2u);
}

TEST(Assembler, SpAlias)
{
    const Program program = assemble("    mov sp, r1\n"
                                     "    push sp\n",
                                     MachineConfig::word16());
    EXPECT_EQ(program.instrs[0].rd, 15);
    EXPECT_EQ(program.instrs[1].rs, 15);
}

TEST(Assembler, AllOpcodesRoundTrip)
{
    // Every opcode name must parse back to itself.
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
        const Opcode op = static_cast<Opcode>(i);
        EXPECT_EQ(opcodeFromName(opcodeName(op)), op) << opcodeName(op);
        const unsigned len = opcodeLengthWords(op);
        EXPECT_TRUE(len == 1 || len == 2);
    }
    EXPECT_EQ(opcodeFromName("bogus"), Opcode::NumOpcodes);
}

using AssemblerDeath = ::testing::Test;

TEST(AssemblerDeath, UnknownMnemonic)
{
    EXPECT_EXIT(assemble("    frobnicate r1\n",
                         MachineConfig::word16()),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
}

TEST(AssemblerDeath, UndefinedSymbol)
{
    EXPECT_EXIT(assemble("    movi r1, nowhere\n",
                         MachineConfig::word16()),
                ::testing::ExitedWithCode(1), "undefined symbol");
}

TEST(AssemblerDeath, DuplicateLabel)
{
    EXPECT_EXIT(assemble("a:\n    nop\na:\n    nop\n",
                         MachineConfig::word16()),
                ::testing::ExitedWithCode(1), "duplicate label");
}

TEST(AssemblerDeath, WrongOperandCount)
{
    EXPECT_EXIT(assemble("    add r1, r2\n", MachineConfig::word16()),
                ::testing::ExitedWithCode(1), "operands");
}

TEST(AssemblerDeath, BadRegister)
{
    EXPECT_EXIT(assemble("    mov r16, r1\n", MachineConfig::word16()),
                ::testing::ExitedWithCode(1), "expected register");
}

TEST(AssemblerDeath, InstructionInDataSection)
{
    EXPECT_EXIT(assemble(".data\n    nop\n", MachineConfig::word16()),
                ::testing::ExitedWithCode(1), "instruction inside");
}

TEST(AssemblerDeath, WordOutsideData)
{
    EXPECT_EXIT(assemble(".word 1\n", MachineConfig::word16()),
                ::testing::ExitedWithCode(1), "outside .data");
}
