/**
 * @file
 * Property tests swept over the paper's whole design grid
 * (parameterized gtest): invariants that must hold at *every* design
 * point, on a real program trace — the exact traffic identity,
 * sub-block/block monotonicity, warm-vs-cold ordering, bus-model
 * scaling bounds, and load-forward orderings.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "harness/experiment.hh"
#include "mem/bus_model.hh"
#include "vm/machine.hh"
#include "vm/program_library.hh"

using namespace occsim;

namespace {

/** Shared trace: one real program, cached across all test cases. */
const VectorTrace &
sharedTrace()
{
    static const VectorTrace trace = [] {
        Program program = assemble(progLexer(2048, 4, 16),
                                   MachineConfig::word16());
        VmTraceSource source(std::move(program), "prop", true);
        return collect(source, 150000);
    }();
    return trace;
}

CacheStats
runConfig(const CacheConfig &config)
{
    Cache cache(config);
    VectorTrace copy = sharedTrace();
    cache.run(copy);
    return cache.stats();
}

std::vector<CacheConfig>
fullGrid()
{
    std::vector<CacheConfig> configs;
    for (const std::uint32_t net : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        const auto grid = paperGrid(net, 2);
        configs.insert(configs.end(), grid.begin(), grid.end());
    }
    return configs;
}

class GridProperty : public ::testing::TestWithParam<CacheConfig>
{
};

} // namespace

TEST_P(GridProperty, TrafficIdentityAndBusScaling)
{
    const CacheConfig config = GetParam();
    const CacheStats stats = runConfig(config);

    // Demand fetch: traffic == miss * sub/word, to the last bit.
    const double factor = static_cast<double>(config.subBlockSize) /
                          static_cast<double>(config.wordSize);
    EXPECT_NEAR(stats.trafficRatio(), stats.missRatio() * factor,
                1e-12);

    // Nibble-mode pricing never exceeds linear pricing and never
    // beats the 1/ratio asymptote.
    const NibbleModeBus nibble;
    const double scaled = stats.scaledTrafficRatio(nibble);
    EXPECT_LE(scaled, stats.trafficRatio() + 1e-12);
    EXPECT_GE(scaled, stats.trafficRatio() / 3.0 - 1e-12);

    // Warm-start accounting can only help.
    EXPECT_LE(stats.warmMissRatio(), stats.missRatio() + 1e-12);
    EXPECT_LE(stats.warmTrafficRatio(), stats.trafficRatio() + 1e-12);

    // Cold misses are bounded by the number of sub-block frames.
    const CacheGeometry geom(config);
    EXPECT_LE(stats.coldMisses(),
              static_cast<std::uint64_t>(geom.numBlocks()) *
                  geom.subBlocksPerBlock());

    // Counting identities.
    EXPECT_EQ(stats.misses(),
              stats.blockMisses() + stats.subBlockMisses());
    EXPECT_LE(stats.ifetchMisses(), stats.ifetchAccesses());
    EXPECT_LE(stats.misses(), stats.accesses());
}

TEST_P(GridProperty, HalvingSubBlockRaisesMissLowersTraffic)
{
    const CacheConfig config = GetParam();
    if (config.subBlockSize <= config.wordSize)
        return;  // no smaller sub-block exists

    CacheConfig halved = config;
    halved.subBlockSize = config.subBlockSize / 2;

    const CacheStats coarse = runConfig(config);
    const CacheStats fine = runConfig(halved);
    EXPECT_GE(fine.missRatio(), coarse.missRatio() - 1e-12)
        << config.shortName();
    EXPECT_LE(fine.trafficRatio(), coarse.trafficRatio() + 1e-12)
        << config.shortName();
}

TEST_P(GridProperty, LoadForwardOrderings)
{
    const CacheConfig config = GetParam();
    if (config.subBlockSize >= config.blockSize)
        return;  // load-forward is a no-op

    CacheConfig lf = config;
    lf.fetch = FetchPolicy::LoadForward;
    CacheConfig lfo = config;
    lfo.fetch = FetchPolicy::LoadForwardOptimized;

    const CacheStats demand = runConfig(config);
    const CacheStats fwd = runConfig(lf);
    const CacheStats fwd_opt = runConfig(lfo);

    // LF loads a superset of sub-blocks at the same instants.
    EXPECT_LE(fwd.misses(), demand.misses()) << config.shortName();
    // The optimized variant has identical residency, fewer words.
    EXPECT_EQ(fwd.misses(), fwd_opt.misses()) << config.shortName();
    EXPECT_LE(fwd_opt.wordsFetched(), fwd.wordsFetched())
        << config.shortName();
    // Redundant words are part of the traffic, never more than it.
    EXPECT_LE(fwd.redundantWordsFetched(), fwd.wordsFetched());
}

TEST_P(GridProperty, GrossSizeConsistency)
{
    const CacheConfig config = GetParam();
    const CacheGeometry geom(config);
    EXPECT_GT(geom.grossBytes(), config.netSize);
    // Tag overhead halves (per byte) when blocks double: a cache
    // with twice the block size and same net size has strictly
    // smaller gross size (fewer tags), if such a block fits.
    if (config.blockSize * 2 <= config.netSize &&
        config.blockSize * 2 <= 64) {
        CacheConfig bigger = config;
        bigger.blockSize = config.blockSize * 2;
        EXPECT_LT(CacheGeometry(bigger).grossBytes(),
                  geom.grossBytes());
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperDesignGrid, GridProperty, ::testing::ValuesIn(fullGrid()),
    [](const ::testing::TestParamInfo<CacheConfig> &param_info) {
        const CacheConfig &config = param_info.param;
        return "net" + std::to_string(config.netSize) + "_b" +
               std::to_string(config.blockSize) + "_s" +
               std::to_string(config.subBlockSize);
    });

TEST(GridGlobal, MissRatioWeaklyImprovesWithCacheSizeOnAverage)
{
    // Across the grid, average miss ratio at each net size must fall
    // monotonically (the per-config relation can have set-indexing
    // anomalies; the aggregate must not).
    double prev = 1e9;
    for (const std::uint32_t net : {64u, 128u, 256u, 512u, 1024u}) {
        double sum = 0.0;
        int count = 0;
        for (const CacheConfig &config : paperGrid(net, 2)) {
            sum += runConfig(config).missRatio();
            ++count;
        }
        const double mean = sum / count;
        EXPECT_LT(mean, prev) << "net " << net;
        prev = mean;
    }
}
