/**
 * @file
 * Unit tests for the CacheConfig API: naming, builders, enum names,
 * and equality.
 */

#include <gtest/gtest.h>

#include "cache/cache_config.hh"

using namespace occsim;

TEST(CacheConfig, ShortNamesMatchPaperStyle)
{
    EXPECT_EQ(makeConfig(1024, 16, 8, 2).shortName(), "16,8");
    EXPECT_EQ(makeConfig(64, 4, 2, 2).shortName(), "4,2");

    CacheConfig lf = makeConfig(256, 16, 2, 2);
    lf.fetch = FetchPolicy::LoadForward;
    EXPECT_EQ(lf.shortName(), "16,2,LF");
    lf.fetch = FetchPolicy::LoadForwardOptimized;
    EXPECT_EQ(lf.shortName(), "16,2,LFO");
}

TEST(CacheConfig, FullNameMentionsEverything)
{
    CacheConfig config = makeConfig(512, 8, 4, 2);
    config.replacement = ReplacementPolicy::FIFO;
    const std::string name = config.fullName();
    EXPECT_NE(name.find("512B"), std::string::npos);
    EXPECT_NE(name.find("8,4"), std::string::npos);
    EXPECT_NE(name.find("4-way"), std::string::npos);
    EXPECT_NE(name.find("FIFO"), std::string::npos);
    EXPECT_NE(name.find("demand"), std::string::npos);
}

TEST(CacheConfig, MakeConfigDefaults)
{
    const CacheConfig config = makeConfig(256, 16, 4, 2);
    EXPECT_EQ(config.netSize, 256u);
    EXPECT_EQ(config.blockSize, 16u);
    EXPECT_EQ(config.subBlockSize, 4u);
    EXPECT_EQ(config.wordSize, 2u);
    EXPECT_EQ(config.assoc, 4u);
    EXPECT_EQ(config.addressBits, 32u);
    EXPECT_EQ(config.replacement, ReplacementPolicy::LRU);
    EXPECT_EQ(config.fetch, FetchPolicy::Demand);
    EXPECT_TRUE(config.writeAllocate);
}

TEST(CacheConfig, Model85Builder)
{
    const CacheConfig config = make360Model85Config();
    EXPECT_EQ(config.netSize, 16384u);
    EXPECT_EQ(config.blockSize, 1024u);
    EXPECT_EQ(config.subBlockSize, 64u);
    EXPECT_EQ(config.assoc, 16u);
    EXPECT_EQ(config.wordSize, 4u);
}

TEST(CacheConfig, EnumNames)
{
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::LRU), "LRU");
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::FIFO),
                 "FIFO");
    EXPECT_STREQ(replacementPolicyName(ReplacementPolicy::Random),
                 "Random");
    EXPECT_STREQ(fetchPolicyName(FetchPolicy::Demand), "demand");
    EXPECT_STREQ(fetchPolicyName(FetchPolicy::LoadForward),
                 "load-forward");
    EXPECT_STREQ(fetchPolicyName(FetchPolicy::LoadForwardOptimized),
                 "load-forward-opt");
}

TEST(CacheConfig, Equality)
{
    const CacheConfig a = makeConfig(256, 16, 4, 2);
    CacheConfig b = a;
    EXPECT_EQ(a, b);
    b.subBlockSize = 8;
    EXPECT_NE(a, b);
    b = a;
    b.fetch = FetchPolicy::LoadForward;
    EXPECT_NE(a, b);
}
