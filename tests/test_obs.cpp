/**
 * @file
 * Unit tests for the observability layer (src/obs/): the Telemetry
 * registry (counters, stage spans, merge-across-threads, reset), the
 * StageTimer RAII span, the JSON writer/parser pair (round-trip,
 * escaping, malformed-input rejection), and RunManifest
 * serialization.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/telemetry.hh"

using namespace occsim;
using obs::JsonValue;

TEST(Telemetry, CountersAccumulateAndSort)
{
    obs::Telemetry telem;
    telem.counterAdd("zeta", 1);
    telem.counterAdd("alpha", 2);
    telem.counterAdd("zeta", 3);

    const auto counters = telem.counters();
    ASSERT_EQ(counters.size(), 2u);
    EXPECT_EQ(counters[0].name, "alpha");
    EXPECT_EQ(counters[0].value, 2u);
    EXPECT_EQ(counters[1].name, "zeta");
    EXPECT_EQ(counters[1].value, 4u);
}

TEST(Telemetry, StagesCountCallsAndAccumulateTime)
{
    obs::Telemetry telem;
    telem.stageAdd("build", 1'000'000);  // 1 ms
    telem.stageAdd("build", 500'000);
    telem.stageAdd("run", 2'000'000);

    const auto stages = telem.stages();
    ASSERT_EQ(stages.size(), 2u);
    EXPECT_EQ(stages[0].name, "build");
    EXPECT_EQ(stages[0].calls, 2u);
    EXPECT_DOUBLE_EQ(stages[0].wallMs, 1.5);
    EXPECT_EQ(stages[1].name, "run");
    EXPECT_EQ(stages[1].calls, 1u);
}

TEST(Telemetry, MergesAcrossThreads)
{
    obs::Telemetry telem;
    constexpr int kThreads = 8;
    constexpr int kAdds = 1000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        workers.emplace_back([&telem] {
            for (int add = 0; add < kAdds; ++add) {
                telem.counterAdd("shared", 1);
                telem.stageAdd("span", 10);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();

    const auto counters = telem.counters();
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters[0].value,
              static_cast<std::uint64_t>(kThreads) * kAdds);
    const auto stages = telem.stages();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].calls,
              static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Telemetry, ResetZeroesEverything)
{
    obs::Telemetry telem;
    telem.counterAdd("c", 7);
    telem.stageAdd("s", 7);
    telem.reset();
    EXPECT_TRUE(telem.counters().empty());
    EXPECT_TRUE(telem.stages().empty());
}

TEST(Telemetry, StageTimerRecordsIntoExplicitSink)
{
    obs::Telemetry telem;
    {
        obs::StageTimer timer("scoped", &telem);
    }
    const auto stages = telem.stages();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].name, "scoped");
    EXPECT_EQ(stages[0].calls, 1u);
    EXPECT_GE(stages[0].wallMs, 0.0);
}

TEST(Telemetry, StageTimerStopIsIdempotent)
{
    obs::Telemetry telem;
    obs::StageTimer timer("once", &telem);
    timer.stop();
    timer.stop();  // second stop and destructor must both be no-ops
    const auto stages = telem.stages();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages[0].calls, 1u);
}

TEST(Telemetry, GlobalRegistryDisabledMeansNoRecording)
{
    // The global registry starts disabled; a StageTimer against it
    // must not arm, and counterAdd must not record.
    const bool was_enabled = obs::telemetryEnabled();
    obs::setTelemetryEnabled(false);
    obs::telemetry().reset();
    {
        obs::StageTimer timer("ghost");
        obs::counterAdd("ghost.count", 1);
    }
    EXPECT_TRUE(obs::telemetry().stages().empty());
    EXPECT_TRUE(obs::telemetry().counters().empty());
    obs::setTelemetryEnabled(was_enabled);
}

TEST(Json, WriterProducesExpectedDocument)
{
    obs::JsonWriter json;
    json.beginObject()
        .kv("name", "occsim")
        .kv("count", std::uint64_t{42})
        .kv("ok", true)
        .key("list")
        .beginArray()
        .value(1)
        .value(2.5)
        .null()
        .endArray()
        .endObject();
    EXPECT_EQ(json.str(),
              "{\"name\":\"occsim\",\"count\":42,\"ok\":true,"
              "\"list\":[1,2.5,null]}");
}

TEST(Json, EscapingRoundTrips)
{
    const std::string nasty = "a\"b\\c\nd\te\rf\x01g";
    obs::JsonWriter json;
    json.beginObject().kv("s", nasty).endObject();

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(json.str(), doc, &error)) << error;
    const JsonValue *s = doc.find("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->text, nasty);
}

TEST(Json, NumbersRoundTripExactly)
{
    for (const double value :
         {0.0, -1.5, 3.14159265358979, 1e-9, 1.7e308, 20000.0}) {
        obs::JsonWriter json;
        json.beginObject().kv("x", value).endObject();
        JsonValue doc;
        ASSERT_TRUE(parseJson(json.str(), doc));
        const JsonValue *x = doc.find("x");
        ASSERT_NE(x, nullptr);
        EXPECT_EQ(x->number, value) << json.str();
    }
}

TEST(Json, ParsesNestedStructures)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(
        R"({"a":[1,{"b":"two","c":[true,false,null]}],"d":-2e3})", doc,
        &error))
        << error;
    const JsonValue *a = doc.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_TRUE(a->isArray());
    ASSERT_EQ(a->items.size(), 2u);
    EXPECT_EQ(a->items[0].asU64(), 1u);
    const JsonValue *c = a->items[1].find("c");
    ASSERT_NE(c, nullptr);
    ASSERT_EQ(c->items.size(), 3u);
    EXPECT_TRUE(c->items[0].boolean);
    EXPECT_TRUE(c->items[2].isNull());
    const JsonValue *d = doc.find("d");
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->number, -2000.0);
}

TEST(Json, RejectsMalformedInput)
{
    JsonValue doc;
    std::string error;
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\":}", "{\"a\" 1}", "tru",
          "{\"a\":1} x", "\"unterminated", "{\"a\":01e}"}) {
        EXPECT_FALSE(parseJson(bad, doc, &error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
}

TEST(Json, UnicodeEscapesDecodeToUtf8)
{
    JsonValue doc;
    ASSERT_TRUE(parseJson("{\"s\":\"A\\u00e9\\u20ac\"}", doc));
    const JsonValue *s = doc.find("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->text, "A\xc3\xa9\xe2\x82\xac");
}

TEST(Manifest, CurrentManifestSerializesToSchemaJson)
{
    obs::setManifestBinary("test_obs");
    const obs::RunManifest manifest = obs::currentManifest();
    EXPECT_EQ(manifest.schema, "occsim.run_manifest/1");
    EXPECT_EQ(manifest.binary, "test_obs");
    EXPECT_GE(manifest.threads, 1u);

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(manifest.toJson(), doc, &error)) << error;
    ASSERT_TRUE(doc.isObject());
    for (const char *key : {"schema", "binary", "git", "build",
                            "threads", "traces", "sweeps", "stages",
                            "engines", "counters"}) {
        EXPECT_NE(doc.find(key), nullptr) << key;
    }
    const JsonValue *build = doc.find("build");
    ASSERT_NE(build, nullptr);
    EXPECT_NE(build->find("type"), nullptr);
    EXPECT_NE(build->find("flags"), nullptr);
}

TEST(Manifest, EngineUsageDerivedFromTelemetry)
{
    const bool was_enabled = obs::telemetryEnabled();
    obs::setTelemetryEnabled(true);
    obs::telemetry().counterAdd("engine.batch.refs", 1000);
    obs::telemetry().counterAdd("engine.batch.bytes", 8000);
    obs::telemetry().stageAdd("engine.batch", 2'000'000);  // 2 ms

    const obs::RunManifest manifest = obs::currentManifest();
    const obs::EngineUsage *batch = nullptr;
    for (const obs::EngineUsage &engine : manifest.engines) {
        if (engine.name == "batch")
            batch = &engine;
    }
    ASSERT_NE(batch, nullptr);
    EXPECT_GE(batch->refs, 1000u);
    EXPECT_GE(batch->bytes, 8000u);
    EXPECT_GT(batch->wallMs, 0.0);
    EXPECT_GT(batch->mrefsPerSec, 0.0);

    obs::setTelemetryEnabled(was_enabled);
}

TEST(Manifest, WriteManifestProducesReadableFile)
{
    const std::string path = "test_obs_manifest.json";
    ASSERT_TRUE(obs::writeManifest(path));
    bool ok = false;
    const std::string content = obs::readTextFile(path, &ok);
    ASSERT_TRUE(ok);
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJson(content, doc, &error)) << error;
    std::remove(path.c_str());
}
