/**
 * @file
 * The sweep-server contract (serve/server.hh): repeated identical
 * requests must be byte-identical on the wire with the repeat served
 * from the result cache (visible in stats, telemetry and the
 * manifest); any identity-field difference must miss; served results
 * must be bit-identical to a direct runSweep of the same cells; N
 * concurrent clients must each see exactly their own bit-identical
 * stream; and the socket layer must stream the same frames end to
 * end.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "harness/experiment.hh"
#include "multi/sweep_api.hh"
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "workload/suites.hh"

using namespace occsim;
using namespace occsim::serve;

namespace {

constexpr std::uint64_t kRefs = 30000;

/** One collected response stream. */
struct Responses
{
    std::vector<std::string> frames;

    bool collect(const std::string &payload)
    {
        frames.push_back(payload);
        return true;
    }

    /** Payloads of "result" frames, in emission order. */
    std::vector<std::string> results() const
    {
        std::vector<std::string> out;
        for (const std::string &frame : frames) {
            if (frame.find("\"type\":\"result\"") == 0 ||
                frame.find("{\"type\":\"result\"") == 0)
                out.push_back(frame);
        }
        return out;
    }

    /** The terminal frame ("done" or "error"). */
    const std::string &terminal() const { return frames.back(); }
};

/** The serialized SweepResult portion of a result frame — the bytes
 *  whose identity the cache must preserve (the frame also carries the
 *  per-emission "cached" flag, which legitimately differs). */
std::string
resultBytes(const std::string &frame)
{
    const std::size_t pos = frame.find("\"result\":");
    EXPECT_NE(pos, std::string::npos) << frame;
    return frame.substr(pos);
}

bool
frameCached(const std::string &frame)
{
    return frame.find("\"cached\":true") != std::string::npos;
}

/** Parse the SweepResult object out of a result frame. */
SweepResult
parseFrameResult(const std::string &frame)
{
    obs::JsonValue value;
    std::string error;
    EXPECT_TRUE(obs::parseJson(frame, value, &error)) << error;
    const obs::JsonValue *result = value.find("result");
    EXPECT_NE(result, nullptr);
    SweepResult out;
    EXPECT_TRUE(parseResultJson(*result, out, &error)) << error;
    return out;
}

void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    EXPECT_EQ(a.grossBytes, b.grossBytes);
    EXPECT_EQ(a.missRatio, b.missRatio);
    EXPECT_EQ(a.warmMissRatio, b.warmMissRatio);
    EXPECT_EQ(a.trafficRatio, b.trafficRatio);
    EXPECT_EQ(a.warmTrafficRatio, b.warmTrafficRatio);
    EXPECT_EQ(a.nibbleTrafficRatio, b.nibbleTrafficRatio);
    EXPECT_EQ(a.warmNibbleTrafficRatio, b.warmNibbleTrafficRatio);
}

std::uint64_t
counterValue(obs::Telemetry &telemetry, const std::string &name)
{
    for (const obs::CounterSnapshot &counter : telemetry.counters()) {
        if (counter.name == name)
            return counter.value;
    }
    return 0;
}

/** A live server over a fresh throwaway corpus with the first two
 *  PDP-11 suite traces ingested. */
class ServeTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        char pattern[] = "/tmp/occsim_serve_XXXXXX";
        ASSERT_NE(::mkdtemp(pattern), nullptr);
        dir_ = pattern;

        ServeOptions options;
        options.corpusDir = dir_;
        options.dispatchers = 2;
        options.streamTile = 4;  // small tiles: exercise scheduling
        options.telemetry = &telemetry_;
        server_ = std::make_unique<SweepServer>(options);

        const Suite suite = pdp11Suite();
        trace0_ = buildTraceShared(suite.traces[0], kRefs);
        trace1_ = buildTraceShared(suite.traces[1], kRefs);
        hash0_ = server_->corpus().ingest(*trace0_);
        hash1_ = server_->corpus().ingest(*trace1_);
        ASSERT_FALSE(hash0_.empty());
        ASSERT_FALSE(hash1_.empty());
    }

    void TearDown() override
    {
        server_.reset();
        const std::string cmd = "rm -rf " + dir_;
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }

    WireRequest sweepRequest() const
    {
        WireRequest request;
        request.op = "sweep";
        request.traces = {hash0_};
        request.configs = paperGrid(1024, 2);
        request.maxRefs = kRefs / 2;
        request.label = "test_serve";
        return request;
    }

    std::string dir_;
    obs::Telemetry telemetry_;
    std::unique_ptr<SweepServer> server_;
    std::shared_ptr<const VectorTrace> trace0_, trace1_;
    std::string hash0_, hash1_;
};

} // namespace

TEST_F(ServeTest, RepeatedRequestIsByteIdenticalAndCacheHits)
{
    const WireRequest request = sweepRequest();

    Responses first;
    ASSERT_TRUE(server_->execute(
        request,
        [&](const std::string &p) { return first.collect(p); }));
    Responses second;
    ASSERT_TRUE(server_->execute(
        request,
        [&](const std::string &p) { return second.collect(p); }));

    const auto a = first.results();
    const auto b = second.results();
    ASSERT_EQ(a.size(), request.configs.size());
    ASSERT_EQ(b.size(), a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        // The serialized result bytes replay EXACTLY; only the
        // per-emission cached flag differs.
        EXPECT_EQ(resultBytes(a[i]), resultBytes(b[i]));
        EXPECT_FALSE(frameCached(a[i]));
        EXPECT_TRUE(frameCached(b[i]));
    }

    const ServeStats stats = server_->stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.cacheMisses, request.configs.size());
    EXPECT_EQ(stats.cacheHits, request.configs.size());

    // The same split is visible in telemetry...
    EXPECT_EQ(counterValue(telemetry_, "serve.cache_hit"),
              request.configs.size());
    EXPECT_EQ(counterValue(telemetry_, "serve.cache_miss"),
              request.configs.size());

    // ...and in the run manifest's per-request records.
    const obs::RunManifest manifest = obs::currentManifest();
    std::size_t hits = 0, misses = 0, seen = 0;
    for (const obs::ServeRecord &record : manifest.serves) {
        if (record.label != "test_serve")
            continue;
        ++seen;
        hits += record.cacheHits;
        misses += record.cacheMisses;
    }
    EXPECT_GE(seen, 2u);
    EXPECT_GE(hits, request.configs.size());
    EXPECT_GE(misses, request.configs.size());
}

TEST_F(ServeTest, AnyIdentityFieldDifferenceMisses)
{
    const WireRequest base = sweepRequest();
    Responses warm;
    ASSERT_TRUE(server_->execute(
        base, [&](const std::string &p) { return warm.collect(p); }));
    const std::uint64_t misses_after_warm = server_->stats().cacheMisses;

    // Different replacement seed: same geometry, different identity —
    // every cell must be recomputed.
    WireRequest seeded = base;
    for (CacheConfig &config : seeded.configs) {
        config.replacement = ReplacementPolicy::Random;
        config.randomSeed = 99;
    }
    Responses a;
    ASSERT_TRUE(server_->execute(
        seeded, [&](const std::string &p) { return a.collect(p); }));
    EXPECT_EQ(server_->stats().cacheMisses,
              misses_after_warm + seeded.configs.size());

    // Different maxRefs: same configs, different identity.
    WireRequest shorter = base;
    shorter.maxRefs = base.maxRefs / 2;
    Responses b;
    ASSERT_TRUE(server_->execute(
        shorter, [&](const std::string &p) { return b.collect(p); }));
    EXPECT_EQ(server_->stats().cacheMisses,
              misses_after_warm + seeded.configs.size() +
                  shorter.configs.size());
}

TEST_F(ServeTest, ServedResultsAreBitIdenticalToDirectRunSweep)
{
    WireRequest request = sweepRequest();
    request.traces = {hash0_, hash1_};

    SweepRequest direct;
    direct.traces = {trace0_, trace1_};
    direct.configs = request.configs;
    direct.maxRefs = request.maxRefs;
    direct.wantAverage = false;
    const SweepReport expected = runSweep(direct);

    Responses responses;
    ASSERT_TRUE(server_->execute(request, [&](const std::string &p) {
        return responses.collect(p);
    }));
    const auto frames = responses.results();
    ASSERT_EQ(frames.size(),
              request.traces.size() * request.configs.size());

    for (const std::string &frame : frames) {
        obs::JsonValue value;
        ASSERT_TRUE(obs::parseJson(frame, value));
        const std::size_t t = value.find("trace_index")->asU64();
        const std::size_t c = value.find("config_index")->asU64();
        ASSERT_LT(t, expected.perTrace.size());
        ASSERT_LT(c, expected.perTrace[t].size());
        expectIdentical(parseFrameResult(frame),
                        expected.perTrace[t][c]);
    }
}

TEST_F(ServeTest, ResultsStreamInRequestOrder)
{
    WireRequest request = sweepRequest();
    request.traces = {hash0_, hash1_};

    Responses responses;
    ASSERT_TRUE(server_->execute(request, [&](const std::string &p) {
        return responses.collect(p);
    }));
    const auto frames = responses.results();
    ASSERT_EQ(frames.size(),
              request.traces.size() * request.configs.size());
    for (std::size_t i = 0; i < frames.size(); ++i) {
        obs::JsonValue value;
        ASSERT_TRUE(obs::parseJson(frames[i], value));
        EXPECT_EQ(value.find("trace_index")->asU64(),
                  i / request.configs.size());
        EXPECT_EQ(value.find("config_index")->asU64(),
                  i % request.configs.size());
    }
    obs::JsonValue done;
    ASSERT_TRUE(obs::parseJson(responses.terminal(), done));
    EXPECT_EQ(done.find("type")->text, "done");
    EXPECT_EQ(done.find("cells")->asU64(), frames.size());
}

TEST_F(ServeTest, InvalidRequestsAreRejectedWithErrorFrames)
{
    const auto reject = [&](WireRequest request) {
        Responses responses;
        EXPECT_FALSE(server_->execute(
            request,
            [&](const std::string &p) { return responses.collect(p); }));
        ASSERT_EQ(responses.frames.size(), 1u);
        EXPECT_NE(responses.terminal().find("\"type\":\"error\""),
                  std::string::npos);
    };

    WireRequest unknown_op = sweepRequest();
    unknown_op.op = "frobnicate";
    reject(unknown_op);

    WireRequest unknown_trace = sweepRequest();
    unknown_trace.traces = {"no-such-trace"};
    reject(unknown_trace);

    WireRequest no_configs = sweepRequest();
    no_configs.configs.clear();
    reject(no_configs);

    WireRequest bad_geometry = sweepRequest();
    bad_geometry.configs[0].netSize = 1000;  // not a power of two
    reject(bad_geometry);

    EXPECT_GE(server_->stats().rejected, 4u);
}

TEST_F(ServeTest, ConcurrentClientsEachSeeBitIdenticalStreams)
{
    constexpr std::size_t kClients = 8;

    // Two distinct request shapes so the cache cannot serve everyone
    // from one client's work.
    std::vector<WireRequest> shapes(2, sweepRequest());
    shapes[0].traces = {hash0_};
    shapes[1].traces = {hash1_};
    shapes[1].priority = 3;

    std::vector<SweepReport> expected;
    for (const WireRequest &shape : shapes) {
        SweepRequest direct;
        direct.traces = {shape.traces[0] == hash0_ ? trace0_ : trace1_};
        direct.configs = shape.configs;
        direct.maxRefs = shape.maxRefs;
        direct.wantAverage = false;
        expected.push_back(runSweep(direct));
    }

    std::vector<Responses> streams(kClients);
    // Not vector<bool>: the clients write their slots concurrently,
    // and bit-packed slots would share words.
    std::vector<std::uint8_t> ok(kClients, 0);
    {
        std::vector<std::thread> clients;
        for (std::size_t i = 0; i < kClients; ++i) {
            clients.emplace_back([&, i] {
                const WireRequest &shape = shapes[i % shapes.size()];
                ok[i] = server_->execute(
                    shape, [&streams, i](const std::string &p) {
                        return streams[i].collect(p);
                    });
            });
        }
        for (std::thread &client : clients)
            client.join();
    }

    for (std::size_t i = 0; i < kClients; ++i) {
        ASSERT_TRUE(ok[i]) << "client " << i;
        const SweepReport &want = expected[i % shapes.size()];
        const auto frames = streams[i].results();
        ASSERT_EQ(frames.size(), shapes[0].configs.size());
        for (const std::string &frame : frames) {
            obs::JsonValue value;
            ASSERT_TRUE(obs::parseJson(frame, value));
            const std::size_t c = value.find("config_index")->asU64();
            expectIdentical(parseFrameResult(frame),
                            want.perTrace[0][c]);
        }
    }

    const ServeStats stats = server_->stats();
    EXPECT_EQ(stats.cacheHits + stats.cacheMisses,
              kClients * shapes[0].configs.size());
}

TEST_F(ServeTest, SocketRoundTripStreamsTheSameFrames)
{
    const std::string socket_path = dir_ + "/serve.sock";
    ASSERT_TRUE(server_->startUnix(socket_path));

    const int fd = connectUnix(socket_path);
    ASSERT_GE(fd, 0);

    const WireRequest request = sweepRequest();
    ASSERT_TRUE(writeFrame(fd, wireRequestJson(request)));

    std::size_t results = 0;
    bool done = false;
    while (!done) {
        std::string payload, error;
        const FrameStatus status = readFrame(fd, payload, &error);
        ASSERT_EQ(status, FrameStatus::Ok) << error;
        obs::JsonValue value;
        ASSERT_TRUE(obs::parseJson(payload, value));
        const std::string kind = value.find("type")->text;
        ASSERT_NE(kind, "error") << payload;
        if (kind == "result")
            ++results;
        else if (kind == "done")
            done = true;
    }
    EXPECT_EQ(results, request.configs.size());

    // Liveness after the sweep: a second request on the same
    // connection still answers.
    WireRequest ping;
    ping.op = "ping";
    ASSERT_TRUE(writeFrame(fd, wireRequestJson(ping)));
    std::string payload;
    ASSERT_EQ(readFrame(fd, payload), FrameStatus::Ok);
    EXPECT_NE(payload.find("pong"), std::string::npos);

    ::close(fd);
    server_->stop();
    EXPECT_EQ(server_->activeConnections(), 0u);
}

TEST(ServeConfigValidation, MirrorsGeometryRulesNonFatally)
{
    CacheConfig good = makeConfig(1024, 16, 8, 2);
    EXPECT_EQ(validateServeConfig(good), "");

    CacheConfig bad = good;
    bad.netSize = 1000;
    EXPECT_NE(validateServeConfig(bad), "");

    bad = good;
    bad.subBlockSize = 32;  // sub > block
    EXPECT_NE(validateServeConfig(bad), "");

    bad = good;
    bad.addressBits = 40;
    EXPECT_NE(validateServeConfig(bad), "");
}
