/**
 * @file
 * Correctness tests for the OC-1 program library: every program is
 * executed to completion and its *computed result* is checked (sorted
 * arrays, match counts, matrix products, prime counts, ...), on both
 * the 16-bit and 32-bit machine configurations where meaningful.
 * Traces drawn from verified programs are what make the substitute
 * workloads trustworthy.
 */

#include <gtest/gtest.h>

#include <vector>

#include "vm/machine.hh"
#include "vm/program_library.hh"

using namespace occsim;

namespace {

/** Reference implementation of the programs' shared LCG. */
std::int32_t
lcgNext(std::int32_t seed)
{
    return (seed * 25173 + 13849) & 16383;
}

Machine
runProgram(const std::string &source, const MachineConfig &config,
           std::uint64_t max_refs = 0)
{
    Machine machine(assemble(source, config));
    VectorTrace sink;
    machine.run(sink, max_refs);
    return machine;
}

std::vector<std::int32_t>
readArray(const Machine &machine, const std::string &label,
          unsigned count)
{
    const Addr base = machine.program().symbol(label);
    const std::uint32_t word = machine.config().wordSize;
    std::vector<std::int32_t> values;
    values.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        values.push_back(machine.peekWord(base + i * word));
    return values;
}

class ProgramsOnBothWidths
    : public ::testing::TestWithParam<std::uint32_t>
{
  protected:
    MachineConfig config() const
    {
        return GetParam() == 2 ? MachineConfig::word16()
                               : MachineConfig::word32();
    }
};

} // namespace

TEST_P(ProgramsOnBothWidths, BubbleSortSorts)
{
    Machine machine = runProgram(progBubbleSort(64), config());
    ASSERT_TRUE(machine.halted());
    const auto arr = readArray(machine, "arr", 64);
    for (std::size_t i = 1; i < arr.size(); ++i)
        EXPECT_LE(arr[i - 1], arr[i]) << "position " << i;
}

TEST_P(ProgramsOnBothWidths, QuickSortSorts)
{
    Machine machine = runProgram(progQuickSort(256), config());
    ASSERT_TRUE(machine.halted());
    const auto arr = readArray(machine, "arr", 256);
    for (std::size_t i = 1; i < arr.size(); ++i)
        EXPECT_LE(arr[i - 1], arr[i]) << "position " << i;
    // The multiset must be the LCG sequence: verify the sum.
    std::int64_t expected_sum = 0;
    std::int32_t seed = 12345;
    for (int i = 0; i < 256; ++i) {
        seed = lcgNext(seed);
        expected_sum += seed;
    }
    std::int64_t actual_sum = 0;
    for (const std::int32_t v : arr)
        actual_sum += v;
    EXPECT_EQ(actual_sum, expected_sum);
}

TEST_P(ProgramsOnBothWidths, StringSearchFindsPattern)
{
    Machine machine =
        runProgram(progStringSearch(512, 5, 2), config());
    ASSERT_TRUE(machine.halted());
    const std::int32_t matches =
        machine.peekWord(machine.program().symbol("nmatch"));
    EXPECT_GE(matches, 1) << "planted pattern must be found";
    // Reference count: replicate text and naive search.
    std::vector<std::int32_t> text(512);
    std::int32_t seed = 777;
    for (auto &ch : text) {
        seed = lcgNext(seed);
        ch = seed % 26;
    }
    int expected = 0;
    for (std::size_t i = 0; i + 5 <= text.size(); ++i) {
        bool hit = true;
        for (std::size_t j = 0; j < 5; ++j) {
            if (text[i + j] != text[256 + j])
                hit = false;
        }
        expected += hit;
    }
    EXPECT_EQ(matches, expected);
}

TEST_P(ProgramsOnBothWidths, WordCountMatchesReference)
{
    Machine machine = runProgram(progWordCount(600, 2), config());
    ASSERT_TRUE(machine.halted());
    std::int32_t seed = 4242;
    int expected = 0;
    bool in_word = false;
    for (int i = 0; i < 600; ++i) {
        seed = lcgNext(seed);
        const bool sep = (seed % 8) == 0;
        if (!sep && !in_word)
            ++expected;
        in_word = !sep;
    }
    EXPECT_EQ(machine.peekWord(machine.program().symbol("wcount")),
              expected);
}

TEST_P(ProgramsOnBothWidths, MatMulComputesProduct)
{
    constexpr unsigned kDim = 8;
    Machine machine = runProgram(progMatMul(kDim), config());
    ASSERT_TRUE(machine.halted());
    const auto a = readArray(machine, "ma", kDim * kDim);
    const auto b = readArray(machine, "mb", kDim * kDim);
    const auto c = readArray(machine, "mc", kDim * kDim);
    for (unsigned i = 0; i < kDim; ++i) {
        for (unsigned j = 0; j < kDim; ++j) {
            std::int32_t acc = 0;
            for (unsigned k = 0; k < kDim; ++k)
                acc += a[i * kDim + k] * b[k * kDim + j];
            EXPECT_EQ(c[i * kDim + j], acc) << i << "," << j;
        }
    }
}

TEST_P(ProgramsOnBothWidths, LinkedListSumMatches)
{
    constexpr unsigned kNodes = 128;
    constexpr unsigned kTrav = 3;
    Machine machine =
        runProgram(progLinkedList(kNodes, kTrav), config());
    ASSERT_TRUE(machine.halted());
    std::int64_t expected = 0;
    for (unsigned i = 0; i < kNodes; ++i)
        expected += static_cast<std::int64_t>(i & 1023);
    expected *= kTrav;
    const std::int32_t stored =
        machine.peekWord(machine.program().symbol("sum"));
    if (config().wordSize == 2) {
        EXPECT_EQ(stored,
                  static_cast<std::int16_t>(expected & 0xffff));
    } else {
        EXPECT_EQ(stored, static_cast<std::int32_t>(expected));
    }
}

TEST_P(ProgramsOnBothWidths, PointerChaseCompletes)
{
    Machine machine =
        runProgram(progPointerChase(256, 4096), config());
    EXPECT_TRUE(machine.halted());
    EXPECT_GT(machine.instructionsExecuted(), 4096u);
}

TEST_P(ProgramsOnBothWidths, HashTableAllLookupsHit)
{
    // Same LCG stream for inserts and lookups, lookups == items:
    // every lookup must find its key.
    Machine machine =
        runProgram(progHashTable(5, 200, 200), config());
    ASSERT_TRUE(machine.halted());
    EXPECT_EQ(machine.peekWord(machine.program().symbol("found")),
              200);
}

TEST_P(ProgramsOnBothWidths, LexerTokenizes)
{
    Machine machine = runProgram(progLexer(512, 2), config());
    ASSERT_TRUE(machine.halted());
    const std::int32_t ntok =
        machine.peekWord(machine.program().symbol("ntok"));
    EXPECT_GT(ntok, 0);
    EXPECT_LE(ntok, 512 * 2);
    // Token codes are 1 (identifier), 2 (number) or 3 (punctuation).
    // Tokens per pass = ntok is cumulative across passes; inspect the
    // buffer for the final pass's prefix.
    const auto toks = readArray(machine, "toks", 16);
    for (int i = 0; i < 16 && i < ntok; ++i) {
        EXPECT_GE(toks[i], 1);
        EXPECT_LE(toks[i], 3);
    }
}

TEST_P(ProgramsOnBothWidths, TextFormatMatchesReference)
{
    constexpr unsigned kWords = 300;
    constexpr unsigned kWidth = 40;
    Machine machine =
        runProgram(progTextFormat(kWords, kWidth, 1), config());
    ASSERT_TRUE(machine.halted());
    // Reference reflow.
    std::int32_t seed = 1357;
    int col = 0;
    int lines = 0;
    for (unsigned i = 0; i < kWords; ++i) {
        seed = lcgNext(seed);
        const int len = seed % 12 + 1;
        if (col + len >= static_cast<int>(kWidth)) {
            ++lines;
            col = 0;
        }
        col += len + 1;
    }
    EXPECT_EQ(machine.peekWord(machine.program().symbol("nlines")),
              lines);
}

TEST_P(ProgramsOnBothWidths, BstAllLookupsHit)
{
    Machine machine = runProgram(progBst(150, 150), config());
    ASSERT_TRUE(machine.halted());
    EXPECT_EQ(machine.peekWord(machine.program().symbol("found")),
              150);
}

TEST_P(ProgramsOnBothWidths, SievePrimeCount)
{
    Machine machine = runProgram(progSieve(1000), config());
    ASSERT_TRUE(machine.halted());
    // pi(999) = 168.
    EXPECT_EQ(machine.peekWord(machine.program().symbol("nprimes")),
              168);
}

TEST_P(ProgramsOnBothWidths, QueueSimProcessesAllEvents)
{
    Machine machine = runProgram(progQueueSim(500, 64), config());
    ASSERT_TRUE(machine.halted());
    EXPECT_EQ(machine.peekWord(machine.program().symbol("donecnt")),
              500);
}

TEST_P(ProgramsOnBothWidths, EditorMaintainsGapInvariants)
{
    constexpr unsigned kBuf = 256;
    Machine machine = runProgram(progEditor(kBuf, 400), config());
    ASSERT_TRUE(machine.halted());
    const std::int32_t gs =
        machine.peekWord(machine.program().symbol("gsv"));
    const std::int32_t ge =
        machine.peekWord(machine.program().symbol("gev"));
    EXPECT_GE(gs, 0);
    EXPECT_LE(gs, ge);
    EXPECT_LE(ge, static_cast<std::int32_t>(kBuf));
}

TEST_P(ProgramsOnBothWidths, MergeSortSorts)
{
    constexpr unsigned kN = 200;
    Machine machine = runProgram(progMergeSort(kN), config());
    ASSERT_TRUE(machine.halted());
    // srcv holds the base of the sorted buffer (sign-extended on
    // 16-bit machines; mask back to an address).
    const Addr mask = config().wordSize == 2 ? 0xffffu : 0xffffffffu;
    const Addr base = static_cast<Addr>(
                          machine.peekWord(
                              machine.program().symbol("srcv"))) &
                      mask;
    EXPECT_TRUE(base == machine.program().symbol("bufa") ||
                base == machine.program().symbol("bufb"));
    const std::uint32_t word = config().wordSize;
    std::int64_t sum = 0;
    std::int32_t prev = machine.peekWord(base);
    sum += prev;
    for (unsigned i = 1; i < kN; ++i) {
        const std::int32_t value =
            machine.peekWord(base + i * word);
        EXPECT_LE(prev, value) << "position " << i;
        prev = value;
        sum += value;
    }
    // Same multiset as the generator's LCG stream.
    std::int64_t expected = 0;
    std::int32_t seed = 60221;
    for (unsigned i = 0; i < kN; ++i) {
        seed = lcgNext(seed);
        expected += seed;
    }
    EXPECT_EQ(sum, expected);
}

TEST_P(ProgramsOnBothWidths, TowersMakesAllMoves)
{
    constexpr unsigned kDisks = 7;
    Machine machine = runProgram(progTowers(kDisks), config());
    ASSERT_TRUE(machine.halted());
    const std::int32_t moves =
        machine.peekWord(machine.program().symbol("nmoves"));
    EXPECT_EQ(moves, (1 << kDisks) - 1);
    // Every logged move is between valid pegs and the first/last
    // moves are the classic ones: smallest disk 1 -> 3, final 1 -> 3.
    const Addr log = machine.program().symbol("movelog");
    const std::uint32_t word = machine.config().wordSize;
    for (int m = 0; m < moves; ++m) {
        const std::int32_t from =
            machine.peekWord(log + 2 * m * word);
        const std::int32_t to =
            machine.peekWord(log + (2 * m + 1) * word);
        EXPECT_GE(from, 1);
        EXPECT_LE(from, 3);
        EXPECT_GE(to, 1);
        EXPECT_LE(to, 3);
        EXPECT_NE(from, to);
    }
    EXPECT_EQ(machine.peekWord(log), 1);
    EXPECT_EQ(machine.peekWord(log + word), 3);
}

TEST_P(ProgramsOnBothWidths, StringSortOrdersRecords)
{
    constexpr unsigned kRecords = 24;
    constexpr unsigned kRecWords = 4;
    Machine machine =
        runProgram(progStringSort(kRecords, kRecWords), config());
    ASSERT_TRUE(machine.halted());
    const Addr idx = machine.program().symbol("idx");
    const std::uint32_t word = machine.config().wordSize;

    auto record_at = [&](unsigned i) {
        const Addr ptr = static_cast<Addr>(
            machine.peekWord(idx + i * word));
        std::vector<std::int32_t> rec;
        for (unsigned k = 0; k < kRecWords; ++k)
            rec.push_back(machine.peekWord(ptr + k * word));
        return rec;
    };
    for (unsigned i = 1; i < kRecords; ++i) {
        EXPECT_LE(record_at(i - 1), record_at(i))
            << "records out of order at " << i;
    }
}

TEST_P(ProgramsOnBothWidths, FibComputesCorrectly)
{
    Machine machine = runProgram(progFib(15), config());
    ASSERT_TRUE(machine.halted());
    EXPECT_EQ(machine.peekWord(machine.program().symbol("result")),
              610);
}

INSTANTIATE_TEST_SUITE_P(WordSizes, ProgramsOnBothWidths,
                         ::testing::Values(2u, 4u),
                         [](const auto &param_info) {
                             return param_info.param == 2 ? "w16"
                                                          : "w32";
                         });

TEST(ProgramLibrary, AllNamedProgramsAssembleAndRun)
{
    for (const std::string &name : programNames()) {
        const std::string source = programByName(name);
        Program program = assemble(source, MachineConfig::word16());
        VmTraceSource trace_source(std::move(program), name, true);
        MemRef ref;
        for (int i = 0; i < 5000; ++i)
            ASSERT_TRUE(trace_source.next(ref)) << name;
    }
}

TEST(ProgramLibrary, TracesMixInstructionAndDataRefs)
{
    Program program =
        assemble(progQuickSort(128), MachineConfig::word16());
    Machine machine(std::move(program));
    VectorTrace trace;
    machine.run(trace);
    bool saw_ifetch = false;
    bool saw_read = false;
    bool saw_write = false;
    for (const MemRef &ref : trace.refs()) {
        saw_ifetch |= ref.kind == RefKind::Ifetch;
        saw_read |= ref.kind == RefKind::DataRead;
        saw_write |= ref.kind == RefKind::DataWrite;
    }
    EXPECT_TRUE(saw_ifetch);
    EXPECT_TRUE(saw_read);
    EXPECT_TRUE(saw_write);
}
