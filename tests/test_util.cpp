/**
 * @file
 * Unit tests for the util substrate: bit operations, the
 * deterministic RNG, string helpers, and table emission.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/bitops.hh"
#include "util/random.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;

TEST(BitOps, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_TRUE(isPowerOfTwo(1ull << 63));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(1022));
}

TEST(BitOps, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(1ull << 40), 40u);
}

TEST(BitOps, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1023), 10u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitOps, Alignment)
{
    EXPECT_EQ(alignDown(0x1234, 16), 0x1230u);
    EXPECT_EQ(alignDown(0x1230, 16), 0x1230u);
    EXPECT_EQ(alignUp(0x1234, 16), 0x1240u);
    EXPECT_EQ(alignUp(0x1240, 16), 0x1240u);
    EXPECT_TRUE(isAligned(0x1240, 16));
    EXPECT_FALSE(isAligned(0x1242, 16));
}

TEST(Rng, Deterministic)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, BelowInRange)
{
    Rng rng(99);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng rng(5);
    constexpr int kBuckets = 8;
    int counts[kBuckets] = {};
    constexpr int kSamples = 80000;
    for (int i = 0; i < kSamples; ++i)
        ++counts[rng.below(kBuckets)];
    for (int bucket = 0; bucket < kBuckets; ++bucket) {
        EXPECT_NEAR(counts[bucket], kSamples / kBuckets,
                    kSamples / kBuckets / 10);
    }
}

TEST(Rng, BetweenInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.between(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, GeometricMean)
{
    Rng rng(17);
    // Continuation probability p = 0.5 -> mean run length 2.
    double sum = 0.0;
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i)
        sum += static_cast<double>(rng.geometric(0.5));
    EXPECT_NEAR(sum / kSamples, 2.0, 0.1);
}

TEST(Rng, PickCumulativeRespectsWeights)
{
    Rng rng(23);
    const double cum[3] = {1.0, 1.5, 2.0};  // weights 1.0, 0.5, 0.5
    int counts[3] = {};
    constexpr int kSamples = 40000;
    for (int i = 0; i < kSamples; ++i)
        ++counts[rng.pickCumulative(cum, 3)];
    EXPECT_NEAR(counts[0], kSamples / 2, kSamples / 20);
    EXPECT_NEAR(counts[1], kSamples / 4, kSamples / 20);
    EXPECT_NEAR(counts[2], kSamples / 4, kSamples / 20);
}

TEST(Str, Format)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 5, "ok"), "x=5 y=ok");
    EXPECT_EQ(strfmt("%.3f", 1.5), "1.500");
    EXPECT_EQ(strfmt("empty"), "empty");
}

TEST(Str, Split)
{
    const auto fields = split("a,b,,c", ',');
    ASSERT_EQ(fields.size(), 3u);
    EXPECT_EQ(fields[0], "a");
    EXPECT_EQ(fields[2], "c");

    const auto kept = split("a,b,,c", ',', true);
    ASSERT_EQ(kept.size(), 4u);
    EXPECT_EQ(kept[2], "");
}

TEST(Str, Trim)
{
    EXPECT_EQ(trim("  hi \t"), "hi");
    EXPECT_EQ(trim("hi"), "hi");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim(""), "");
}

TEST(Str, ParseU64)
{
    std::uint64_t value = 0;
    EXPECT_TRUE(parseU64("123", value));
    EXPECT_EQ(value, 123u);
    EXPECT_TRUE(parseU64("0x10", value));
    EXPECT_EQ(value, 16u);
    EXPECT_FALSE(parseU64("", value));
    EXPECT_FALSE(parseU64("12x", value));
    EXPECT_FALSE(parseU64("x", value));
}

TEST(Str, ByteCountStr)
{
    EXPECT_EQ(byteCountStr(64), "64");
    EXPECT_EQ(byteCountStr(1024), "1K");
    EXPECT_EQ(byteCountStr(16384), "16K");
    EXPECT_EQ(byteCountStr(1000), "1000");
}

TEST(Table, AlignedOutput)
{
    TableWriter table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("22"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(Table, CsvEscaping)
{
    TableWriter table({"a", "b"});
    table.addRow({"x,y", "he said \"hi\""});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
    EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""),
              std::string::npos);
}

TEST(Table, Markdown)
{
    TableWriter table({"h1", "h2"});
    table.setTitle("My Table");
    table.addRow({"a", "b"});
    std::ostringstream os;
    table.printMarkdown(os);
    EXPECT_NE(os.str().find("### My Table"), std::string::npos);
    EXPECT_NE(os.str().find("| a | b |"), std::string::npos);
}
