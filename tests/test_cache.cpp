/**
 * @file
 * Unit tests for the core sub-block cache model: access outcomes,
 * valid-bit semantics, LRU eviction, write handling, cold/warm
 * accounting, the exact traffic identity, and the paper's
 * monotonicity properties over the design grid.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "workload/synthetic.hh"

using namespace occsim;

namespace {

MemRef
read(Addr addr)
{
    return MemRef{addr, RefKind::DataRead, 2};
}

MemRef
write(Addr addr)
{
    return MemRef{addr, RefKind::DataWrite, 2};
}

} // namespace

TEST(Cache, HitMissOutcomes)
{
    // 64B cache, 16B blocks, 4B sub-blocks, fully assoc (4 blocks).
    Cache cache(makeConfig(64, 16, 4, 2));

    EXPECT_EQ(cache.access(read(0x100)), AccessOutcome::BlockMiss);
    EXPECT_EQ(cache.access(read(0x102)), AccessOutcome::Hit)
        << "same sub-block word";
    EXPECT_EQ(cache.access(read(0x104)), AccessOutcome::SubBlockMiss)
        << "same block, next sub-block";
    EXPECT_EQ(cache.access(read(0x104)), AccessOutcome::Hit);
    EXPECT_EQ(cache.access(read(0x110)), AccessOutcome::BlockMiss)
        << "next block";

    EXPECT_EQ(cache.stats().accesses(), 5u);
    EXPECT_EQ(cache.stats().misses(), 3u);
    EXPECT_EQ(cache.stats().blockMisses(), 2u);
    EXPECT_EQ(cache.stats().subBlockMisses(), 1u);
}

TEST(Cache, DemandFetchLoadsOnlyMissingSubBlock)
{
    Cache cache(makeConfig(64, 16, 4, 2));
    cache.access(read(0x104));  // sub-block 1 of block 0x10
    EXPECT_TRUE(cache.isBlockResident(0x100));
    EXPECT_TRUE(cache.isResident(0x104));
    EXPECT_FALSE(cache.isResident(0x100));
    EXPECT_FALSE(cache.isResident(0x108));
    EXPECT_FALSE(cache.isResident(0x10C));
    EXPECT_EQ(cache.validMask(0x100), 0b0010u);
}

TEST(Cache, LruEvictionInSet)
{
    // 4 blocks, fully associative: fifth distinct block evicts the
    // least recently used.
    Cache cache(makeConfig(64, 16, 16, 2));
    cache.access(read(0x000));
    cache.access(read(0x010));
    cache.access(read(0x020));
    cache.access(read(0x030));
    cache.access(read(0x000));  // protect block 0
    cache.access(read(0x040));  // evicts 0x010
    EXPECT_TRUE(cache.isResident(0x000));
    EXPECT_FALSE(cache.isBlockResident(0x010));
    EXPECT_TRUE(cache.isResident(0x020));
    EXPECT_TRUE(cache.isResident(0x040));
    EXPECT_EQ(cache.stats().evictions(), 1u);
}

TEST(Cache, SetIndexingSeparatesConflicts)
{
    // 128B, 16B blocks, 4-way -> 2 sets; blocks alternate sets.
    Cache cache(makeConfig(128, 16, 16, 2));
    // Blocks 0x00,0x20,0x40,0x60,0x80 all map to set 0.
    for (Addr addr : {0x00u, 0x20u, 0x40u, 0x60u})
        cache.access(read(addr));
    // Set 1 is untouched; a block in set 1 must not evict set 0.
    cache.access(read(0x10));
    for (Addr addr : {0x00u, 0x20u, 0x40u, 0x60u})
        EXPECT_TRUE(cache.isResident(addr)) << std::hex << addr;
    // A fifth set-0 block evicts the LRU set-0 block only.
    cache.access(read(0x80));
    EXPECT_FALSE(cache.isBlockResident(0x00));
    EXPECT_TRUE(cache.isResident(0x10));
}

TEST(Cache, WritesUpdateStateButNotHeadlineStats)
{
    Cache cache(makeConfig(64, 16, 4, 2));
    cache.access(write(0x100));
    EXPECT_EQ(cache.stats().accesses(), 0u);
    EXPECT_EQ(cache.stats().writeAccesses(), 1u);
    EXPECT_EQ(cache.stats().writeMisses(), 1u);
    EXPECT_EQ(cache.stats().wordsFetched(), 0u)
        << "write traffic out of headline";
    EXPECT_GT(cache.stats().writeWordsFetched(), 0u);

    // The write-allocated sub-block now hits for reads.
    EXPECT_EQ(cache.access(read(0x100)), AccessOutcome::Hit);
    EXPECT_EQ(cache.stats().accesses(), 1u);
    EXPECT_EQ(cache.stats().misses(), 0u);
}

TEST(Cache, NoWriteAllocateOption)
{
    CacheConfig config = makeConfig(64, 16, 4, 2);
    config.writeAllocate = false;
    Cache cache(config);
    cache.access(write(0x100));
    EXPECT_FALSE(cache.isBlockResident(0x100));
    EXPECT_EQ(cache.stats().writeMisses(), 1u);
    // A write to a resident sub-block is a write hit.
    cache.access(read(0x100));
    cache.access(write(0x100));
    EXPECT_EQ(cache.stats().writeMisses(), 1u);
    EXPECT_EQ(cache.stats().writeAccesses(), 2u);
}

TEST(Cache, TrafficIdentityDemandFetch)
{
    // With demand fetch, every counted miss moves exactly one
    // sub-block: traffic ratio == miss ratio * sub / word, exactly.
    for (const std::uint32_t sub : {2u, 4u, 8u, 16u}) {
        SyntheticParams params;
        params.seed = 31 + sub;
        SyntheticSource source(params);
        Cache cache(makeConfig(256, 16, sub, 2));
        cache.run(source, 20000);
        const double expected = cache.stats().missRatio() *
                                static_cast<double>(sub) / 2.0;
        EXPECT_NEAR(cache.stats().trafficRatio(), expected, 1e-12)
            << "sub-block " << sub;
    }
}

TEST(Cache, ColdMissesBoundedByFrames)
{
    SyntheticParams params;
    Cache cache(makeConfig(256, 16, 4, 2));
    SyntheticSource source(params);
    cache.run(source, 50000);
    const std::uint64_t frame_slots =
        cache.geometry().numBlocks() *
        cache.geometry().subBlocksPerBlock();
    EXPECT_LE(cache.stats().coldMisses(), frame_slots);
    EXPECT_LE(cache.stats().warmMissRatio(),
              cache.stats().missRatio() + 1e-12);
}

TEST(Cache, RepeatedTraceSecondPassHasNoColdMisses)
{
    // A tiny loop that fits: after the first pass everything hits.
    Cache cache(makeConfig(64, 16, 4, 2));
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr addr = 0; addr < 64; addr += 2)
            cache.access(read(addr));
    }
    // 16 sub-blocks cold-filled, then everything hits.
    EXPECT_EQ(cache.stats().misses(), 16u);
    EXPECT_EQ(cache.stats().coldMisses(), 16u);
    EXPECT_DOUBLE_EQ(cache.stats().warmMissRatio(), 0.0);
    EXPECT_DOUBLE_EQ(cache.stats().warmTrafficRatio(), 0.0);
}

TEST(Cache, ResidencyDistributionTracksTouchedSubBlocks)
{
    Cache cache(makeConfig(64, 16, 4, 2));
    // Touch 2 of 4 sub-blocks of one block, then finalize.
    cache.access(read(0x100));
    cache.access(read(0x104));
    cache.finalizeResidencies();
    EXPECT_EQ(cache.stats().evictions(), 1u);
    EXPECT_EQ(cache.stats().residencyTouched().bucket(2), 1u);
    EXPECT_DOUBLE_EQ(cache.stats().meanSubBlocksTouched(), 2.0);
    EXPECT_DOUBLE_EQ(cache.stats().neverReferencedFraction(), 0.5);
}

TEST(Cache, ResetClearsEverything)
{
    Cache cache(makeConfig(64, 16, 4, 2));
    cache.access(read(0x100));
    cache.reset();
    EXPECT_EQ(cache.stats().accesses(), 0u);
    EXPECT_FALSE(cache.isBlockResident(0x100));
    EXPECT_EQ(cache.access(read(0x100)), AccessOutcome::BlockMiss);
    EXPECT_EQ(cache.stats().coldMisses(), 1u)
        << "cold tracking restarts after reset";
}

TEST(Cache, FlushInvalidatesButKeepsStats)
{
    Cache cache(makeConfig(64, 16, 4, 2));
    cache.access(read(0x100));
    cache.access(read(0x100));
    EXPECT_EQ(cache.stats().accesses(), 2u);

    cache.flush();
    EXPECT_EQ(cache.flushes(), 1u);
    EXPECT_FALSE(cache.isBlockResident(0x100));
    EXPECT_EQ(cache.stats().accesses(), 2u) << "stats survive";

    // The re-fetch after the flush is a miss but NOT a cold miss:
    // it is the context-switch penalty.
    EXPECT_EQ(cache.access(read(0x100)), AccessOutcome::BlockMiss);
    EXPECT_EQ(cache.stats().coldMisses(), 1u)
        << "only the original first touch was cold";
}

TEST(Cache, FlushWritesBackDirtyData)
{
    CacheConfig config = makeConfig(64, 16, 4, 2);
    config.write = WritePolicy::CopyBack;
    Cache cache(config);
    cache.access(write(0x100));
    EXPECT_EQ(cache.stats().writebackWords(), 0u);
    cache.flush();
    EXPECT_EQ(cache.stats().writebackWords(), 2u);
}

TEST(Cache, FlushAccountsResidencies)
{
    Cache cache(makeConfig(64, 16, 4, 2));
    cache.access(read(0x100));
    cache.flush();
    EXPECT_EQ(cache.stats().evictions(), 1u);
}

TEST(Cache, MissRatioMonotoneInCacheSize)
{
    SyntheticParams params;
    params.seed = 99;
    const VectorTrace trace = makeSyntheticTrace(params, 60000);

    double prev = 1.1;
    for (const std::uint32_t net : {32u, 64u, 128u, 256u, 512u, 1024u}) {
        Cache cache(makeConfig(net, 16, 8, 2));
        VectorTrace copy = trace;
        cache.run(copy);
        EXPECT_LE(cache.stats().missRatio(), prev + 1e-9)
            << "net " << net;
        prev = cache.stats().missRatio();
    }
}

TEST(Cache, SmallerSubBlocksRaiseMissLowerTraffic)
{
    SyntheticParams params;
    params.seed = 123;
    const VectorTrace trace = makeSyntheticTrace(params, 60000);

    double prev_miss = -1.0;
    double prev_traffic = 1e9;
    // Sweep sub-block from block size down to one word.
    for (const std::uint32_t sub : {16u, 8u, 4u, 2u}) {
        Cache cache(makeConfig(512, 16, sub, 2));
        VectorTrace copy = trace;
        cache.run(copy);
        EXPECT_GE(cache.stats().missRatio(), prev_miss - 1e-9)
            << "sub " << sub;
        EXPECT_LE(cache.stats().trafficRatio(), prev_traffic + 1e-9)
            << "sub " << sub;
        prev_miss = cache.stats().missRatio();
        prev_traffic = cache.stats().trafficRatio();
    }
}

TEST(Cache, OneWordSubBlockTrafficNeverExceedsOne)
{
    // "Caches with a sub-block size of 1 word will always have
    // traffic ratios less than or equal to 1.0."
    SyntheticParams params;
    params.seed = 7;
    SyntheticSource source(params);
    Cache cache(makeConfig(32, 16, 2, 2));
    cache.run(source, 30000);
    EXPECT_LE(cache.stats().trafficRatio(), 1.0);
}

TEST(Cache, SubBlockEqualsBlockIsConventionalCache)
{
    // With sub == block there are no sub-block misses at all.
    SyntheticParams params;
    SyntheticSource source(params);
    Cache cache(makeConfig(256, 16, 16, 2));
    cache.run(source, 30000);
    EXPECT_EQ(cache.stats().subBlockMisses(), 0u);
}

TEST(Cache, IfetchStatsTracked)
{
    Cache cache(makeConfig(64, 16, 4, 2));
    cache.access(MemRef{0x100, RefKind::Ifetch, 2});
    cache.access(MemRef{0x100, RefKind::Ifetch, 2});
    cache.access(read(0x200));
    EXPECT_EQ(cache.stats().ifetchAccesses(), 2u);
    EXPECT_EQ(cache.stats().ifetchMisses(), 1u);
    EXPECT_DOUBLE_EQ(cache.stats().ifetchMissRatio(), 0.5);
}

TEST(Cache, RunRespectsMaxRefs)
{
    SyntheticParams params;
    SyntheticSource source(params);
    Cache cache(makeConfig(64, 16, 4, 2));
    EXPECT_EQ(cache.run(source, 1234), 1234u);
    EXPECT_EQ(cache.stats().accesses() + cache.stats().writeAccesses(),
              1234u);
}
