/**
 * @file
 * Unit tests for the thread pool behind the parallel sweep engine:
 * startup/shutdown, work distribution, exception propagation, and the
 * size-1 inline (sequential) degenerate case.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hh"

using namespace occsim;

TEST(ThreadPool, StartupAndShutdown)
{
    // Construction spawns workers and destruction joins them; doing
    // it repeatedly must neither hang nor leak tasks.
    for (int round = 0; round < 3; ++round) {
        ThreadPool pool(4);
        EXPECT_EQ(pool.size(), 4u);
    }
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 64; ++i)
            pool.submit([&ran] { ++ran; });
        // Destructor must run every queued task before joining.
    }
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, SubmitRunsOnWorkerThread)
{
    ThreadPool pool(2);
    std::thread::id worker_id;
    pool.submit([&worker_id] { worker_id = std::this_thread::get_id(); })
        .get();
    EXPECT_NE(worker_id, std::this_thread::get_id());
}

TEST(ThreadPool, SizeOnePoolRunsInline)
{
    // OCCSIM_THREADS=1 degenerate case: no worker threads at all.
    ThreadPool pool(1);
    std::thread::id task_id;
    pool.submit([&task_id] { task_id = std::this_thread::get_id(); })
        .get();
    EXPECT_EQ(task_id, std::this_thread::get_id());

    std::vector<std::size_t> order;
    pool.parallelFor(5, [&order](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallelFor(kN, [&hits](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kN; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForDistributesAcrossThreads)
{
    ThreadPool pool(4);
    std::mutex mutex;
    std::set<std::thread::id> ids;
    pool.parallelFor(256, [&](std::size_t) {
        // Enough iterations that with 3 helpers + the caller at least
        // two distinct threads must claim work.
        std::lock_guard<std::mutex> lock(mutex);
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_GE(ids.size(), 1u);
    EXPECT_LE(ids.size(), 4u);
}

TEST(ThreadPool, SubmitPropagatesExceptions)
{
    ThreadPool pool(2);
    auto future = pool.submit([] {
        throw std::runtime_error("task failed");
    });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesFirstException)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.parallelFor(100,
                         [&ran](std::size_t i) {
                             ++ran;
                             if (i == 3)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // Remaining iterations are abandoned, not required to run.
    EXPECT_GE(ran.load(), 1);
    EXPECT_LE(ran.load(), 100);
}

TEST(ThreadPool, ParallelForZeroAndOne)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&calls](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&calls](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ConfiguredThreadCountIsPositive)
{
    EXPECT_GE(configuredThreadCount(), 1u);
}

TEST(ThreadPool, NestedParallelForMakesProgress)
{
    // A parallelFor body issuing its own parallelFor must not
    // deadlock even when every worker is busy: callers participate.
    ThreadPool pool(2);
    std::atomic<int> inner{0};
    pool.parallelFor(4, [&](std::size_t) {
        pool.parallelFor(4, [&inner](std::size_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 16);
}
