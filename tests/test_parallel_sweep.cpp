/**
 * @file
 * Determinism tests for the parallel sweep engine: results must be
 * bit-identical to sequential per-config Cache simulation — same
 * per-config stats, same averageResults output — regardless of thread
 * count. Uses real VM traces (the paper's workloads), not synthetic
 * streams, so the full trace-build + simulate pipeline is covered.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "multi/parallel_sweep.hh"
#include "multi/sweep_api.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

constexpr std::uint64_t kRefs = 30000;

/** Bit-identical comparison of two SweepResults (exact doubles). */
void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.grossBytes, b.grossBytes);
    EXPECT_EQ(a.missRatio, b.missRatio);
    EXPECT_EQ(a.warmMissRatio, b.warmMissRatio);
    EXPECT_EQ(a.trafficRatio, b.trafficRatio);
    EXPECT_EQ(a.warmTrafficRatio, b.warmTrafficRatio);
    EXPECT_EQ(a.nibbleTrafficRatio, b.nibbleTrafficRatio);
    EXPECT_EQ(a.warmNibbleTrafficRatio, b.warmNibbleTrafficRatio);
}

/** Reference engine: one direct runSingle per config, sequentially. */
std::vector<SweepResult>
sequentialSweep(const std::vector<CacheConfig> &configs,
                const VectorTrace &trace, std::uint64_t max_refs = 0)
{
    std::vector<SweepResult> out;
    out.reserve(configs.size());
    for (const CacheConfig &config : configs) {
        VectorTrace copy = trace;
        out.push_back(runSingle(config, copy, max_refs));
    }
    return out;
}

} // namespace

TEST(ParallelSweep, BitIdenticalToSequentialOverPaperGrid)
{
    const Suite suite = pdp11Suite();
    const WorkloadSpec &spec = suite.traces.front();
    const auto trace = buildTraceShared(spec, kRefs);
    const auto configs = paperGrid(1024, suite.profile.wordSize);

    const auto expected = sequentialSweep(configs, *trace);

    ThreadPool pool(4);
    ParallelSweepRunner parallel(configs, &pool);
    EXPECT_EQ(parallel.run(trace), trace->size());
    const auto actual = parallel.results();

    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        expectIdentical(actual[i], expected[i]);
}

TEST(ParallelSweep, RunSweepMatchesSequentialSuitePass)
{
    const Suite suite = z8000CompilerSuite();
    const auto configs = paperGrid(256, suite.profile.wordSize);

    std::vector<std::shared_ptr<const VectorTrace>> traces;
    for (const WorkloadSpec &spec : suite.traces)
        traces.push_back(buildTraceShared(spec, kRefs));

    // Reference: direct sequential simulation, one pass per trace.
    std::vector<std::vector<SweepResult>> expected;
    for (const auto &trace : traces)
        expected.push_back(sequentialSweep(configs, *trace));

    ThreadPool pool(4);
    SweepRequest request;
    request.traces = traces;
    request.configs = configs;
    request.pool = &pool;
    const SweepReport report = runSweep(request);
    const auto &actual = report.perTrace;

    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t t = 0; t < expected.size(); ++t) {
        ASSERT_EQ(actual[t].size(), expected[t].size());
        for (std::size_t c = 0; c < expected[t].size(); ++c)
            expectIdentical(actual[t][c], expected[t][c]);
    }

    // And the paper's unweighted averages are bit-identical too.
    const auto expected_avg = averageResults(expected);
    ASSERT_EQ(report.average.size(), expected_avg.size());
    for (std::size_t c = 0; c < expected_avg.size(); ++c)
        expectIdentical(report.average[c], expected_avg[c]);
}

TEST(ParallelSweep, RespectsMaxRefs)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    const auto configs = paperGrid(64, suite.profile.wordSize);

    ThreadPool pool(2);
    ParallelSweepRunner parallel(configs, &pool);
    EXPECT_EQ(parallel.run(trace, 500), 500u);

    const auto expected = sequentialSweep(configs, *trace, 500);
    const auto actual = parallel.results();
    for (std::size_t i = 0; i < expected.size(); ++i)
        expectIdentical(actual[i], expected[i]);
}

TEST(ParallelSweep, SharedTraceIsReusedNotRebuilt)
{
    const Suite suite = z8000Suite();
    const WorkloadSpec &spec = suite.traces.front();
    const auto first = buildTraceShared(spec, 5000);
    const auto second = buildTraceShared(spec, 5000);
    // Same spec and length: the VM ran once; both handles share the
    // same immutable trace.
    EXPECT_EQ(first.get(), second.get());
    // A different length is a different cache entry.
    const auto longer = buildTraceShared(spec, 6000);
    EXPECT_NE(first.get(), longer.get());
    EXPECT_EQ(longer->size(), 6000u);
}

TEST(ParallelSweep, RunSuiteMatchesManualSequentialAveraging)
{
    const Suite suite = z8000CompilerSuite();
    const auto configs = table7Grid(64, suite.profile.wordSize);

    const SuiteRun run = runSuite(suite, configs, kRefs);

    std::vector<std::vector<SweepResult>> expected;
    for (const WorkloadSpec &spec : suite.traces) {
        const VectorTrace trace = buildTrace(spec, kRefs);
        expected.push_back(sequentialSweep(configs, trace));
    }
    const auto expected_avg = averageResults(expected);

    ASSERT_EQ(run.average.size(), expected_avg.size());
    for (std::size_t c = 0; c < expected_avg.size(); ++c)
        expectIdentical(run.average[c], expected_avg[c]);
}
