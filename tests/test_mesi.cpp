/**
 * @file
 * The MESI state machine, pinned transition by transition. The table
 * in coherence/mesi.cc is the protocol's whole truth for both the
 * coherent engine and the flat-snooping oracle, so every legal edge
 * is asserted here and every illegal one is a death test: an illegal
 * transition is a simulator bug and must panic, not limp on.
 */

#include <gtest/gtest.h>

#include "coherence/mesi.hh"

using namespace occsim;

namespace {

MesiState
step(MesiState state, MesiEvent event)
{
    // shared_line is consulted only for Invalid + LocalRead; every
    // other edge must ignore it, which the test below pins.
    return mesiNext(state, event, false);
}

} // namespace

TEST(Mesi, InvalidFillsExclusiveOrSharedByTheSharedLine)
{
    EXPECT_EQ(mesiNext(MesiState::Invalid, MesiEvent::LocalRead, false),
              MesiState::Exclusive);
    EXPECT_EQ(mesiNext(MesiState::Invalid, MesiEvent::LocalRead, true),
              MesiState::Shared);
}

TEST(Mesi, InvalidWriteFillsModified)
{
    EXPECT_EQ(mesiNext(MesiState::Invalid, MesiEvent::LocalWrite, false),
              MesiState::Modified);
    EXPECT_EQ(mesiNext(MesiState::Invalid, MesiEvent::LocalWrite, true),
              MesiState::Modified);
}

TEST(Mesi, SharedTransitions)
{
    EXPECT_EQ(step(MesiState::Shared, MesiEvent::LocalRead),
              MesiState::Shared);
    EXPECT_EQ(step(MesiState::Shared, MesiEvent::LocalWrite),
              MesiState::Modified);
    EXPECT_EQ(step(MesiState::Shared, MesiEvent::SnoopRead),
              MesiState::Shared);
    EXPECT_EQ(step(MesiState::Shared, MesiEvent::SnoopReadX),
              MesiState::Invalid);
    EXPECT_EQ(step(MesiState::Shared, MesiEvent::SnoopUpgrade),
              MesiState::Invalid);
}

TEST(Mesi, ExclusiveTransitions)
{
    EXPECT_EQ(step(MesiState::Exclusive, MesiEvent::LocalRead),
              MesiState::Exclusive);
    // The silent upgrade: no bus transaction, straight to Modified.
    EXPECT_EQ(step(MesiState::Exclusive, MesiEvent::LocalWrite),
              MesiState::Modified);
    EXPECT_EQ(step(MesiState::Exclusive, MesiEvent::SnoopRead),
              MesiState::Shared);
    EXPECT_EQ(step(MesiState::Exclusive, MesiEvent::SnoopReadX),
              MesiState::Invalid);
}

TEST(Mesi, ModifiedTransitions)
{
    EXPECT_EQ(step(MesiState::Modified, MesiEvent::LocalRead),
              MesiState::Modified);
    EXPECT_EQ(step(MesiState::Modified, MesiEvent::LocalWrite),
              MesiState::Modified);
    EXPECT_EQ(step(MesiState::Modified, MesiEvent::SnoopRead),
              MesiState::Shared);
    EXPECT_EQ(step(MesiState::Modified, MesiEvent::SnoopReadX),
              MesiState::Invalid);
}

TEST(Mesi, SharedLineOnlyMattersForTheInvalidReadFill)
{
    // Every (state, event) edge other than I + LocalRead must land
    // in the same state whatever the shared line says.
    const MesiState states[] = {MesiState::Shared, MesiState::Exclusive,
                                MesiState::Modified};
    const MesiEvent events[] = {MesiEvent::LocalRead,
                                MesiEvent::LocalWrite,
                                MesiEvent::SnoopRead,
                                MesiEvent::SnoopReadX};
    for (const MesiState state : states) {
        for (const MesiEvent event : events) {
            EXPECT_EQ(mesiNext(state, event, false),
                      mesiNext(state, event, true))
                << mesiStateName(state) << " + "
                << mesiEventName(event);
        }
    }
    EXPECT_EQ(mesiNext(MesiState::Invalid, MesiEvent::LocalWrite,
                       false),
              mesiNext(MesiState::Invalid, MesiEvent::LocalWrite,
                       true));
}

TEST(Mesi, SnoopingAnInvalidLinePanics)
{
    // The bus snoops holders only: reaching an Invalid frame means
    // the holder bookkeeping is broken.
    EXPECT_DEATH(mesiNext(MesiState::Invalid, MesiEvent::SnoopRead,
                          false),
                 "snooped in state I");
    EXPECT_DEATH(mesiNext(MesiState::Invalid, MesiEvent::SnoopReadX,
                          false),
                 "snooped in state I");
    EXPECT_DEATH(mesiNext(MesiState::Invalid, MesiEvent::SnoopUpgrade,
                          false),
                 "snooped in state I");
}

TEST(Mesi, UpgradeAgainstAnOwnerPanics)
{
    // A peer's address-only upgrade implies it held Shared; E and M
    // are exclusive by construction, so both combinations are bugs.
    EXPECT_DEATH(mesiNext(MesiState::Exclusive, MesiEvent::SnoopUpgrade,
                          false),
                 "snoop-upgrade observed in state E");
    EXPECT_DEATH(mesiNext(MesiState::Modified, MesiEvent::SnoopUpgrade,
                          false),
                 "snoop-upgrade observed in state M");
}

TEST(Mesi, NamesAreStable)
{
    EXPECT_STREQ(mesiStateName(MesiState::Invalid), "I");
    EXPECT_STREQ(mesiStateName(MesiState::Shared), "S");
    EXPECT_STREQ(mesiStateName(MesiState::Exclusive), "E");
    EXPECT_STREQ(mesiStateName(MesiState::Modified), "M");
    EXPECT_STREQ(mesiEventName(MesiEvent::LocalRead), "local-read");
    EXPECT_STREQ(mesiEventName(MesiEvent::SnoopUpgrade),
                 "snoop-upgrade");
}
