/**
 * @file
 * End-to-end integration tests: the paper's qualitative findings,
 * checked across the whole pipeline (program -> machine -> trace ->
 * cache -> metrics) at a reduced trace length, plus a file round-trip
 * through the persistence layer.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "cache/cache.hh"
#include "cache/sector_cache.hh"
#include "harness/experiment.hh"
#include "mem/bus_model.hh"
#include "trace/trace_file.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

constexpr std::uint64_t kRefs = 600000;

} // namespace

TEST(Integration, MinimumCacheCutsTrafficOn16BitSuites)
{
    // Section 2.2 / Conclusions: the 64-byte 4,2 minimum cache cuts
    // references and bus traffic by roughly one third on the 16-bit
    // suites.
    for (const Arch arch : {Arch::PDP11, Arch::Z8000}) {
        const Suite suite = suiteFor(arch);
        const SuiteRun run =
            runSuite(suite, {makeConfig(64, 4, 2, 2)}, kRefs);
        const SweepResult &result = run.average.front();
        EXPECT_LT(result.missRatio, 0.75) << suite.profile.name;
        EXPECT_LT(result.trafficRatio, 0.75) << suite.profile.name;
        EXPECT_GT(result.missRatio, 0.15) << suite.profile.name
            << ": a 64-byte cache cannot be this good";
    }
}

TEST(Integration, KilobyteCachePerformsWell16Bit)
{
    // Section 4.2: 1024-byte on-chip caches reach miss ratios below
    // 0.10 and traffic ratios below ~0.25 on the 16-bit suites
    // (paper: PDP-11 0.052/0.206, Z8000 0.023/0.092 at 16,8).
    for (const Arch arch : {Arch::PDP11, Arch::Z8000}) {
        const Suite suite = suiteFor(arch);
        const SuiteRun run =
            runSuite(suite, {makeConfig(1024, 16, 8, 2)}, kRefs);
        const SweepResult &result = run.average.front();
        EXPECT_LT(result.missRatio, 0.12) << suite.profile.name;
        EXPECT_LT(result.trafficRatio, 0.48) << suite.profile.name;
    }
}

TEST(Integration, S370ResistsSmallCaches)
{
    // Section 4.2.4: System/370 workloads defeat minimum caches and
    // still miss substantially at 1024 bytes (paper: 0.26 at 16,8).
    const Suite suite = s370Suite();
    const SuiteRun run = runSuite(
        suite,
        {makeConfig(64, 8, 8, 4), makeConfig(1024, 16, 8, 4)}, kRefs);
    EXPECT_GT(run.average[0].missRatio, 0.30)
        << "a 64-byte cache should barely help the S/370 suite";
    EXPECT_GT(run.average[1].missRatio, 0.10);
}

TEST(Integration, SubBlockTradeoffCurve)
{
    // Figure 2's b32 curve: at fixed block size, shrinking the
    // sub-block raises the miss ratio and lowers the traffic ratio,
    // monotonically along the whole curve.
    const Suite suite = pdp11Suite();
    std::vector<CacheConfig> configs;
    for (const std::uint32_t sub : {32u, 16u, 8u, 4u, 2u})
        configs.push_back(makeConfig(1024, 32, sub, 2));
    const SuiteRun run = runSuite(suite, configs, kRefs);
    for (std::size_t i = 1; i < run.average.size(); ++i) {
        EXPECT_GE(run.average[i].missRatio,
                  run.average[i - 1].missRatio - 1e-12);
        EXPECT_LE(run.average[i].trafficRatio,
                  run.average[i - 1].trafficRatio + 1e-12);
    }
}

TEST(Integration, NibbleModeDoublesOptimalSubBlock)
{
    // Section 4.3: under the 1 + (w-1)/3 burst cost, the
    // traffic-optimal sub-block size grows (roughly doubles).
    const Suite suite = pdp11Suite();
    std::vector<CacheConfig> configs;
    for (const std::uint32_t sub : {2u, 4u, 8u, 16u, 32u})
        configs.push_back(makeConfig(512, 32, sub, 2));
    const SuiteRun run = runSuite(suite, configs, kRefs);

    std::uint32_t best_linear = 0;
    std::uint32_t best_nibble = 0;
    double min_linear = 1e9;
    double min_nibble = 1e9;
    for (const SweepResult &result : run.average) {
        if (result.trafficRatio < min_linear) {
            min_linear = result.trafficRatio;
            best_linear = result.config.subBlockSize;
        }
        if (result.nibbleTrafficRatio < min_nibble) {
            min_nibble = result.nibbleTrafficRatio;
            best_nibble = result.config.subBlockSize;
        }
    }
    EXPECT_EQ(best_linear, 2u)
        << "on a linear bus the smallest sub-block minimizes traffic";
    EXPECT_GE(best_nibble, 2 * best_linear);
}

TEST(Integration, LoadForwardTable8Shape)
{
    // Table 8 on the compiler traces: relative to fetching the whole
    // block (sub == block), load-forward with 1-word sub-blocks cuts
    // traffic while costing only a little in miss ratio.
    const Suite suite = z8000CompilerSuite();
    CacheConfig whole = makeConfig(256, 16, 16, 2);
    CacheConfig lf = makeConfig(256, 16, 2, 2);
    lf.fetch = FetchPolicy::LoadForward;
    CacheConfig demand = makeConfig(256, 16, 2, 2);

    const SuiteRun run = runSuite(suite, {whole, lf, demand}, kRefs);
    const SweepResult &r_whole = run.average[0];
    const SweepResult &r_lf = run.average[1];
    const SweepResult &r_demand = run.average[2];

    EXPECT_LT(r_lf.trafficRatio, r_whole.trafficRatio)
        << "LF must reduce traffic vs whole-block fetch";
    EXPECT_LT(r_lf.missRatio, 1.35 * r_whole.missRatio)
        << "at a small cost in miss ratio";
    EXPECT_LT(r_lf.missRatio, r_demand.missRatio)
        << "LF cuts misses vs plain small sub-blocks";
    EXPECT_GT(r_lf.trafficRatio, r_demand.trafficRatio)
        << "at some cost in traffic";
}

TEST(Integration, SectorCacheThreeTimesWorse)
{
    // Table 6's headline: the 360/85 organisation misses roughly 3x
    // more than 4-way set-associative at equal size. Allow a wide
    // band (substitute workloads) but require a clear gap.
    const Suite suite = s360Model85Suite();
    double sector_sum = 0.0;
    double assoc_sum = 0.0;
    for (const WorkloadSpec &spec : suite.traces) {
        VectorTrace trace = buildTrace(spec, kRefs);
        SectorCache360Model85 sector(4);
        sector.run(trace);
        sector_sum += sector.stats().missRatio();

        trace.reset();
        CacheConfig config;
        config.netSize = 16 * 1024;
        config.blockSize = 64;
        config.subBlockSize = 64;
        config.wordSize = 4;
        Cache modern(config);
        modern.run(trace);
        assoc_sum += modern.stats().missRatio();
    }
    EXPECT_GT(sector_sum, 1.5 * assoc_sum);
}

TEST(Integration, TraceFileRoundTripPreservesMetrics)
{
    // Generating a trace, writing it, reading it back and simulating
    // must give bit-identical statistics.
    const Suite suite = z8000Suite();
    const WorkloadSpec &spec = suite.traces.front();
    VectorTrace trace = buildTrace(spec, 50000);

    Cache direct(makeConfig(256, 16, 8, 2));
    direct.run(trace);

    const std::string path =
        std::string(::testing::TempDir()) + "integration.otb";
    writeBinaryTrace(trace, path);
    VectorTrace loaded = readTrace(path);
    Cache via_file(makeConfig(256, 16, 8, 2));
    via_file.run(loaded);
    std::remove(path.c_str());

    EXPECT_EQ(direct.stats().misses(), via_file.stats().misses());
    EXPECT_EQ(direct.stats().wordsFetched(),
              via_file.stats().wordsFetched());
    EXPECT_EQ(direct.stats().writeMisses(),
              via_file.stats().writeMisses());
}

TEST(Integration, GrossSizeNeverBelowNetSize)
{
    // Sanity over the whole grid: tags and valid bits only add cost.
    for (const std::uint32_t net : {32u, 64u, 256u, 1024u}) {
        for (const CacheConfig &config : paperGrid(net, 2)) {
            const CacheGeometry geom(config);
            EXPECT_GT(geom.grossBytes(), config.netSize);
        }
    }
}
