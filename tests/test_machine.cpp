/**
 * @file
 * Unit tests for the OC-1 interpreter: instruction semantics, trace
 * emission (ifetch word streams, data reads/writes), control flow,
 * the stack, restart, and the trace-source adapter.
 */

#include <gtest/gtest.h>

#include "vm/machine.hh"

using namespace occsim;

namespace {

Machine
makeMachine(const std::string &source,
            MachineConfig config = MachineConfig::word16())
{
    return Machine(assemble(source, config));
}

VectorTrace
runToHalt(Machine &machine, std::uint64_t max_refs = 1000000)
{
    VectorTrace trace;
    machine.run(trace, max_refs);
    return trace;
}

} // namespace

TEST(Machine, AluSemantics)
{
    Machine machine = makeMachine("    movi r1, 20\n"
                                  "    movi r2, 6\n"
                                  "    add  r3, r1, r2\n"
                                  "    sub  r4, r1, r2\n"
                                  "    mul  r5, r1, r2\n"
                                  "    divs r6, r1, r2\n"
                                  "    mods r7, r1, r2\n"
                                  "    and  r8, r1, r2\n"
                                  "    or   r9, r1, r2\n"
                                  "    xor  r10, r1, r2\n"
                                  "    addi r11, r1, -3\n"
                                  "    shli r12, r2, 2\n"
                                  "    shri r13, r1, 2\n"
                                  "    halt\n");
    runToHalt(machine);
    EXPECT_TRUE(machine.halted());
    EXPECT_EQ(machine.reg(3), 26);
    EXPECT_EQ(machine.reg(4), 14);
    EXPECT_EQ(machine.reg(5), 120);
    EXPECT_EQ(machine.reg(6), 3);
    EXPECT_EQ(machine.reg(7), 2);
    EXPECT_EQ(machine.reg(8), 20 & 6);
    EXPECT_EQ(machine.reg(9), 20 | 6);
    EXPECT_EQ(machine.reg(10), 20 ^ 6);
    EXPECT_EQ(machine.reg(11), 17);
    EXPECT_EQ(machine.reg(12), 24);
    EXPECT_EQ(machine.reg(13), 5);
}

TEST(Machine, DivisionByZeroYieldsZero)
{
    Machine machine = makeMachine("    movi r1, 9\n"
                                  "    movi r2, 0\n"
                                  "    divs r3, r1, r2\n"
                                  "    mods r4, r1, r2\n"
                                  "    halt\n");
    runToHalt(machine);
    EXPECT_EQ(machine.reg(3), 0);
    EXPECT_EQ(machine.reg(4), 0);
}

TEST(Machine, LoadStoreRoundTrip)
{
    Machine machine = makeMachine("    movi r1, buf\n"
                                  "    movi r2, 1234\n"
                                  "    st   r1, r2, 0\n"
                                  "    st   r1, r2, WSIZE\n"
                                  "    ld   r3, r1, 0\n"
                                  "    ld   r4, r1, WSIZE\n"
                                  "    halt\n"
                                  ".data\n"
                                  "buf: .spacew 4\n");
    runToHalt(machine);
    EXPECT_EQ(machine.reg(3), 1234);
    EXPECT_EQ(machine.reg(4), 1234);
    EXPECT_EQ(machine.peekWord(machine.program().symbol("buf")), 1234);
}

TEST(Machine, SixteenBitWordsSignExtendOnLoad)
{
    Machine machine = makeMachine("    movi r1, buf\n"
                                  "    movi r2, -5\n"
                                  "    st   r1, r2, 0\n"
                                  "    ld   r3, r1, 0\n"
                                  "    halt\n"
                                  ".data\n"
                                  "buf: .word 0\n");
    runToHalt(machine);
    EXPECT_EQ(machine.reg(3), -5);
}

TEST(Machine, TraceEmission)
{
    const MachineConfig config = MachineConfig::word16();
    Machine machine = makeMachine("    movi r1, buf\n"  // 2 ifetches
                                  "    ld   r2, r1, 0\n" // 2 if + 1 rd
                                  "    st   r1, r2, 0\n" // 2 if + 1 wr
                                  "    halt\n"           // 1 ifetch
                                  ".data\n"
                                  "buf: .word 0\n",
                                  config);
    const VectorTrace trace = runToHalt(machine);
    ASSERT_EQ(trace.size(), 9u);
    // movi: two sequential ifetch words at codeBase.
    EXPECT_EQ(trace[0].kind, RefKind::Ifetch);
    EXPECT_EQ(trace[0].addr, config.codeBase);
    EXPECT_EQ(trace[1].addr, config.codeBase + 2);
    // ld: ifetches then the data read at buf.
    EXPECT_EQ(trace[4].kind, RefKind::DataRead);
    EXPECT_EQ(trace[4].addr, config.dataBase);
    EXPECT_EQ(trace[4].size, 2);
    // st: data write.
    EXPECT_EQ(trace[7].kind, RefKind::DataWrite);
    EXPECT_EQ(trace[7].addr, config.dataBase);
}

TEST(Machine, BranchesAndLoops)
{
    // Sum 1..5 with a loop.
    Machine machine = makeMachine("    movi r1, 0\n"   // sum
                                  "    movi r2, 1\n"   // i
                                  "    movi r3, 6\n"
                                  "loop:\n"
                                  "    bge  r2, r3, done\n"
                                  "    add  r1, r1, r2\n"
                                  "    addi r2, r2, 1\n"
                                  "    jmp  loop\n"
                                  "done:\n"
                                  "    halt\n");
    runToHalt(machine);
    EXPECT_EQ(machine.reg(1), 15);
}

TEST(Machine, ConditionalBranchVariants)
{
    Machine machine = makeMachine("    movi r1, 3\n"
                                  "    movi r2, 3\n"
                                  "    movi r10, 0\n"
                                  "    beq  r1, r2, l1\n"
                                  "    halt\n"
                                  "l1: movi r10, 1\n"
                                  "    bne  r1, r2, bad\n"
                                  "    movi r3, 2\n"
                                  "    blt  r3, r1, l2\n"
                                  "    halt\n"
                                  "l2: movi r10, 2\n"
                                  "    bge  r1, r3, l3\n"
                                  "    halt\n"
                                  "l3: movi r10, 3\n"
                                  "    halt\n"
                                  "bad:\n"
                                  "    movi r10, 99\n"
                                  "    halt\n");
    runToHalt(machine);
    EXPECT_EQ(machine.reg(10), 3);
}

TEST(Machine, CallRetAndStack)
{
    const MachineConfig config = MachineConfig::word16();
    Machine machine = makeMachine("    movi r1, 5\n"
                                  "    call double\n"
                                  "    halt\n"
                                  "double:\n"
                                  "    add r1, r1, r1\n"
                                  "    ret\n",
                                  config);
    const std::int32_t sp_before = machine.reg(kSpReg);
    runToHalt(machine);
    EXPECT_EQ(machine.reg(1), 10);
    EXPECT_EQ(machine.reg(kSpReg), sp_before) << "stack balanced";
}

TEST(Machine, PushPopLifo)
{
    Machine machine = makeMachine("    movi r1, 10\n"
                                  "    movi r2, 20\n"
                                  "    push r1\n"
                                  "    push r2\n"
                                  "    pop  r3\n"
                                  "    pop  r4\n"
                                  "    halt\n");
    runToHalt(machine);
    EXPECT_EQ(machine.reg(3), 20);
    EXPECT_EQ(machine.reg(4), 10);
}

TEST(Machine, RestartReproducesTrace)
{
    Machine machine = makeMachine("    movi r1, buf\n"
                                  "    movi r2, 3\n"
                                  "loop:\n"
                                  "    st   r1, r2, 0\n"
                                  "    addi r2, r2, -1\n"
                                  "    movi r3, 0\n"
                                  "    bne  r2, r3, loop\n"
                                  "    halt\n"
                                  ".data\n"
                                  "buf: .word 0\n");
    const VectorTrace first = runToHalt(machine);
    machine.restart();
    const VectorTrace second = runToHalt(machine);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i], second[i]) << "ref " << i;
}

TEST(Machine, DataImageLoadedAtRestart)
{
    Machine machine = makeMachine("    movi r1, vals\n"
                                  "    ld   r2, r1, 0\n"
                                  "    movi r3, 99\n"
                                  "    st   r1, r3, 0\n"
                                  "    halt\n"
                                  ".data\n"
                                  "vals: .word 42\n");
    runToHalt(machine);
    EXPECT_EQ(machine.reg(2), 42);
    machine.restart();
    EXPECT_EQ(machine.peekWord(machine.program().symbol("vals")), 42)
        << "initialized data restored";
}

TEST(Machine, Word32Configuration)
{
    const MachineConfig config = MachineConfig::word32();
    Machine machine = makeMachine("    movi r1, buf\n"
                                  "    movi r2, 100000\n"  // > 16 bits
                                  "    st   r1, r2, 0\n"
                                  "    ld   r3, r1, 0\n"
                                  "    halt\n"
                                  ".data\n"
                                  "buf: .word 0\n",
                                  config);
    const VectorTrace trace = runToHalt(machine);
    EXPECT_EQ(machine.reg(3), 100000) << "32-bit words are not trimmed";
    for (const MemRef &ref : trace.refs())
        EXPECT_EQ(ref.size, 4);
}

TEST(Machine, SixteenBitAddressWraparound)
{
    // Register arithmetic past 0xFFFF wraps into the 16-bit address
    // space on access, as a 16-bit machine's address lines do.
    Machine machine = makeMachine("    movi r1, 65534\n"
                                  "    addi r1, r1, 18\n"  // 0x10010
                                  "    movi r2, 77\n"
                                  "    st   r1, r2, 0\n"   // wraps to 0x10
                                  "    ld   r3, r1, 0\n"
                                  "    halt\n");
    VectorTrace trace;
    machine.run(trace);
    EXPECT_EQ(machine.reg(3), 77);
    // The emitted data reference carries the wrapped address.
    for (const MemRef &ref : trace.refs()) {
        if (ref.kind == RefKind::DataWrite) {
            EXPECT_EQ(ref.addr, 0x10u);
        }
    }
}

TEST(Machine, ShriIsLogicalOnNegative)
{
    Machine machine = makeMachine("    movi r1, -4\n"
                                  "    shri r2, r1, 1\n"
                                  "    halt\n");
    VectorTrace sink;
    machine.run(sink);
    // -4 = 0xFFFFFFFC; a logical shift gives 0x7FFFFFFE, not -2.
    EXPECT_EQ(machine.reg(2),
              static_cast<std::int32_t>(0xfffffffcu >> 1));
}

TEST(Machine, SignExtensionBoundary)
{
    // 0x7FFF stays positive, 0x8000 goes negative on a 16-bit
    // machine's load.
    Machine machine = makeMachine("    movi r1, buf\n"
                                  "    movi r2, 32767\n"
                                  "    st   r1, r2, 0\n"
                                  "    ld   r3, r1, 0\n"
                                  "    movi r2, 32768\n"
                                  "    st   r1, r2, 0\n"
                                  "    ld   r4, r1, 0\n"
                                  "    halt\n"
                                  ".data\n"
                                  "buf: .word 0\n");
    VectorTrace sink;
    machine.run(sink);
    EXPECT_EQ(machine.reg(3), 32767);
    EXPECT_EQ(machine.reg(4), -32768);
}

TEST(Machine, DeepNestedCalls)
{
    // 200-deep call chain, then unwind: the stack must balance and
    // every return must land correctly.
    Machine machine = makeMachine("    movi r1, 200\n"
                                  "    call down\n"
                                  "    halt\n"
                                  "down:\n"
                                  "    movi r2, 1\n"
                                  "    blt  r1, r2, up\n"
                                  "    addi r1, r1, -1\n"
                                  "    call down\n"
                                  "up:\n"
                                  "    addi r3, r3, 1\n"
                                  "    ret\n");
    const std::int32_t sp_before = machine.reg(kSpReg);
    VectorTrace sink;
    machine.run(sink);
    ASSERT_TRUE(machine.halted());
    EXPECT_EQ(machine.reg(3), 201);
    EXPECT_EQ(machine.reg(kSpReg), sp_before);
}

TEST(Machine, InstructionCountAdvancesOnlyOnStep)
{
    Machine machine = makeMachine("    nop\n    nop\n    halt\n");
    EXPECT_EQ(machine.instructionsExecuted(), 0u);
    std::vector<MemRef> refs;
    machine.step(refs);
    EXPECT_EQ(machine.instructionsExecuted(), 1u);
    machine.step(refs);
    machine.step(refs);
    EXPECT_EQ(machine.instructionsExecuted(), 3u);
    EXPECT_TRUE(machine.halted());
    EXPECT_FALSE(machine.step(refs)) << "no steps after halt";
}

TEST(VmTraceSourceTest, LoopsOnHalt)
{
    Program program = assemble("    nop\n    halt\n",
                               MachineConfig::word16());
    VmTraceSource source(std::move(program), "tiny", true);
    MemRef ref;
    // nop+halt = 2 refs per run; draw many more than one run.
    for (int i = 0; i < 100; ++i)
        ASSERT_TRUE(source.next(ref));
}

TEST(VmTraceSourceTest, StopsWithoutLoop)
{
    Program program = assemble("    nop\n    halt\n",
                               MachineConfig::word16());
    VmTraceSource source(std::move(program), "tiny", false);
    MemRef ref;
    EXPECT_TRUE(source.next(ref));
    EXPECT_TRUE(source.next(ref));
    EXPECT_FALSE(source.next(ref));

    source.reset();
    EXPECT_TRUE(source.next(ref));
}

TEST(VmTraceSourceTest, DeterministicStream)
{
    auto make = [] {
        return VmTraceSource(assemble("    movi r1, 3\n"
                                      "l:  addi r1, r1, -1\n"
                                      "    movi r2, 0\n"
                                      "    bne  r1, r2, l\n"
                                      "    halt\n",
                                      MachineConfig::word16()),
                             "det", true);
    };
    VmTraceSource a = make();
    VmTraceSource b = make();
    MemRef ra;
    MemRef rb;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        EXPECT_EQ(ra, rb);
    }
}
