/**
 * @file
 * Unit tests for the 360/85 sector cache model (Section 4.1): the
 * historical geometry, fully-associative behaviour, and the expected
 * relationship to set-associative caches of the same size.
 */

#include <gtest/gtest.h>

#include "cache/sector_cache.hh"
#include "workload/synthetic.hh"

using namespace occsim;

TEST(SectorCache, HistoricalGeometry)
{
    SectorCache360Model85 cache;
    EXPECT_EQ(cache.config().netSize, 16u * 1024u);
    EXPECT_EQ(cache.config().blockSize, 1024u);
    EXPECT_EQ(cache.config().subBlockSize, 64u);
    EXPECT_EQ(cache.geometry().numSets(), 1u);
    EXPECT_EQ(cache.geometry().assoc(), 16u);
    EXPECT_EQ(cache.geometry().subBlocksPerBlock(), 16u);
}

TEST(SectorCache, SeventeenthSectorEvicts)
{
    SectorCache360Model85 cache;
    // Touch 16 distinct sectors (1024 bytes apart).
    for (Addr sector = 0; sector < 16; ++sector)
        cache.access(MemRef{sector * 1024, RefKind::DataRead, 4});
    EXPECT_EQ(cache.stats().misses(), 16u);
    EXPECT_TRUE(cache.isResident(0));
    // Sector 17 evicts the LRU sector (sector 0).
    cache.access(MemRef{16 * 1024, RefKind::DataRead, 4});
    EXPECT_FALSE(cache.isBlockResident(0));
    EXPECT_TRUE(cache.isResident(16 * 1024));
}

TEST(SectorCache, SubBlockMissWithinResidentSector)
{
    SectorCache360Model85 cache;
    cache.access(MemRef{0, RefKind::DataRead, 4});
    // Same sector, different 64-byte sub-block: sub-block miss.
    EXPECT_EQ(cache.access(MemRef{64, RefKind::DataRead, 4}),
              AccessOutcome::SubBlockMiss);
    // Same sub-block as first access: hit.
    EXPECT_EQ(cache.access(MemRef{60, RefKind::DataRead, 4}),
              AccessOutcome::Hit);
}

TEST(SectorCache, Table6Comparators)
{
    const auto configs = table6Comparators();
    ASSERT_EQ(configs.size(), 3u);
    for (const CacheConfig &config : configs) {
        EXPECT_EQ(config.netSize, 16u * 1024u);
        EXPECT_EQ(config.blockSize, 64u);
        EXPECT_EQ(config.subBlockSize, 64u);
    }
    EXPECT_EQ(configs[0].assoc, 4u);
    EXPECT_EQ(configs[1].assoc, 8u);
    EXPECT_EQ(configs[2].assoc, 16u);
}

TEST(SectorCache, WorseThanSetAssociativeOnScatteredData)
{
    // The paper's Section 4.1 finding, as a property: with data
    // scattered over much more than 16 KB, the sector cache (only 16
    // huge blocks) misses far more than a 4-way set-associative
    // cache of the same size with 64-byte blocks.
    SyntheticParams params;
    params.wordSize = 4;
    params.seed = 3;
    params.codeBase = 0x10000;
    params.codeSize = 4 * 1024;    // code fits either cache
    params.dataBase = 0x100000;
    params.dataSize = 48 * 1024;   // 3x the cache, mostly uniform
    params.stackBase = 0x200000;
    params.ifetchFraction = 0.4;
    params.dataStackProb = 0.15;
    params.dataScanProb = 0.15;
    const VectorTrace trace = makeSyntheticTrace(params, 150000);

    SectorCache360Model85 sector;
    VectorTrace copy = trace;
    sector.run(copy);

    CacheConfig modern_config;
    modern_config.netSize = 16 * 1024;
    modern_config.blockSize = 64;
    modern_config.subBlockSize = 64;
    modern_config.assoc = 4;
    modern_config.wordSize = 4;
    Cache modern(modern_config);
    copy = trace;
    modern.run(copy);

    EXPECT_GT(sector.stats().missRatio(),
              1.3 * modern.stats().missRatio());
    // And most sub-blocks of a resident sector go unreferenced.
    EXPECT_GT(sector.stats().neverReferencedFraction(), 0.4);
}
