/**
 * @file
 * Unit tests for the sampling statistics layer: UnitEstimator against
 * closed-form Bernoulli values, the degenerate shapes a sampled sweep
 * actually produces (single observation, zero variance, empty
 * estimator), and the measurement-unit planner's edge cases (exact
 * fit, warmup larger than the trace, stratified determinism, the
 * single-tail-unit fallback).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "multi/sample_replay.hh"
#include "stats/estimate.hh"

namespace occsim {

/** SampleUnit equality for the planner determinism assertions. */
bool
operator==(const SampleUnit &a, const SampleUnit &b)
{
    return a.begin == b.begin && a.end == b.end;
}

} // namespace occsim

using namespace occsim;

namespace {

TEST(UnitEstimator, BernoulliClosedForm)
{
    // Observations {0, 1, 0, 1}: mean 1/2, sample variance
    // (4 * 1/4) / 3 = 1/3, stderr sqrt((1/3)/4).
    UnitEstimator est;
    est.add(0.0);
    est.add(1.0);
    est.add(0.0);
    est.add(1.0);
    const MetricEstimate m = est.estimate();
    EXPECT_EQ(est.count(), 4u);
    EXPECT_DOUBLE_EQ(m.mean, 0.5);
    EXPECT_DOUBLE_EQ(m.stdErr, std::sqrt((1.0 / 3.0) / 4.0));
    EXPECT_DOUBLE_EQ(m.ci95, kCi95Z * m.stdErr);
}

TEST(UnitEstimator, TwoObservations)
{
    // {0, 1}: mean 1/2, sample variance 1/2, stderr sqrt(1/4) = 1/2.
    UnitEstimator est;
    est.add(0.0);
    est.add(1.0);
    const MetricEstimate m = est.estimate();
    EXPECT_DOUBLE_EQ(m.mean, 0.5);
    EXPECT_DOUBLE_EQ(m.stdErr, 0.5);
    EXPECT_DOUBLE_EQ(m.ci95, kCi95Z * 0.5);
}

TEST(UnitEstimator, SingleObservationHasNoSpread)
{
    // One measurement unit (the short-trace fallback): the mean is
    // the observation and the spread is honestly zero, not NaN.
    UnitEstimator est;
    est.add(0.25);
    const MetricEstimate m = est.estimate();
    EXPECT_EQ(est.count(), 1u);
    EXPECT_DOUBLE_EQ(m.mean, 0.25);
    EXPECT_EQ(m.stdErr, 0.0);
    EXPECT_EQ(m.ci95, 0.0);
}

TEST(UnitEstimator, ZeroVariance)
{
    // Identical observations: stderr must be exactly zero (the
    // Welford m2 accumulator stays 0; no negative round-off sqrt).
    UnitEstimator est;
    for (int i = 0; i < 7; ++i)
        est.add(0.125);
    const MetricEstimate m = est.estimate();
    EXPECT_DOUBLE_EQ(m.mean, 0.125);
    EXPECT_EQ(m.stdErr, 0.0);
    EXPECT_EQ(m.ci95, 0.0);
}

TEST(UnitEstimator, EmptyEstimatorIsAllZero)
{
    const UnitEstimator est;
    const MetricEstimate m = est.estimate();
    EXPECT_EQ(est.count(), 0u);
    EXPECT_EQ(m.mean, 0.0);
    EXPECT_EQ(m.stdErr, 0.0);
    EXPECT_EQ(m.ci95, 0.0);
}

TEST(UnitEstimator, MeanMatchesDirectAverage)
{
    UnitEstimator est;
    double sum = 0.0;
    for (int i = 1; i <= 100; ++i) {
        const double v = 1.0 / i;
        est.add(v);
        sum += v;
    }
    const MetricEstimate m = est.estimate();
    EXPECT_NEAR(m.mean, sum / 100.0, 1e-15);
    EXPECT_GT(m.stdErr, 0.0);
}

TEST(PlanSampleUnits, SystematicPlacement)
{
    SampleSpec spec;
    spec.unitRefs = 100;
    spec.intervalUnits = 4;  // stride 400
    spec.stratified = false;
    const auto units = planSampleUnits(2000, spec);
    ASSERT_EQ(units.size(), 5u);
    for (std::size_t i = 0; i < units.size(); ++i) {
        EXPECT_EQ(units[i].begin, i * 400);
        EXPECT_EQ(units[i].end, i * 400 + 100);
    }
}

TEST(PlanSampleUnits, WarmupShiftsTheFirstInterval)
{
    SampleSpec spec;
    spec.unitRefs = 100;
    spec.intervalUnits = 4;
    spec.warmupRefs = 500;
    spec.stratified = false;
    const auto units = planSampleUnits(2000, spec);
    ASSERT_EQ(units.size(), 3u);  // intervals at 500, 900, 1300
    EXPECT_EQ(units[0].begin, 500u);
    EXPECT_EQ(units[2].begin, 1300u);
}

TEST(PlanSampleUnits, StratifiedStaysInsideItsInterval)
{
    SampleSpec spec;
    spec.unitRefs = 100;
    spec.intervalUnits = 4;
    spec.seed = 7;
    const auto units = planSampleUnits(4000, spec);
    ASSERT_EQ(units.size(), 10u);
    for (std::size_t i = 0; i < units.size(); ++i) {
        EXPECT_GE(units[i].begin, i * 400);
        EXPECT_LE(units[i].end, (i + 1) * 400);
        EXPECT_EQ(units[i].end - units[i].begin, 100u);
    }
    // Deterministic given the seed; a different seed moves units.
    EXPECT_EQ(planSampleUnits(4000, spec), planSampleUnits(4000, spec));
    SampleSpec other = spec;
    other.seed = 8;
    EXPECT_NE(planSampleUnits(4000, other), planSampleUnits(4000, spec));
}

TEST(PlanSampleUnits, ShortTraceFallsBackToOneTailUnit)
{
    SampleSpec spec;
    spec.unitRefs = 4096;
    spec.intervalUnits = 16;  // stride 65536 >> 20000
    const auto units = planSampleUnits(20000, spec);
    ASSERT_EQ(units.size(), 1u);
    EXPECT_EQ(units[0].begin, 20000u - 4096u);
    EXPECT_EQ(units[0].end, 20000u);
}

TEST(PlanSampleUnits, TraceShorterThanOneUnit)
{
    SampleSpec spec;
    spec.unitRefs = 4096;
    spec.intervalUnits = 16;
    const auto units = planSampleUnits(100, spec);
    ASSERT_EQ(units.size(), 1u);
    EXPECT_EQ(units[0].begin, 0u);
    EXPECT_EQ(units[0].end, 100u);
}

TEST(PlanSampleUnits, EmptyTraceHasNoUnits)
{
    EXPECT_TRUE(planSampleUnits(0, SampleSpec{}).empty());
}

TEST(PlanSampleUnits, ExactFitUsesEveryInterval)
{
    SampleSpec spec;
    spec.unitRefs = 100;
    spec.intervalUnits = 1;  // stride == unit: measure everything
    spec.stratified = false;
    const auto units = planSampleUnits(1000, spec);
    ASSERT_EQ(units.size(), 10u);
    std::uint64_t covered = 0;
    for (const SampleUnit &u : units)
        covered += u.end - u.begin;
    EXPECT_EQ(covered, 1000u);
}

} // namespace
