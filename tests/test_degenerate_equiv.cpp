/**
 * @file
 * Degenerate-equivalence suite: design points that must collapse to
 * the same machine must produce bit-identical statistics, every
 * counter and histogram included.
 *
 *  - sub-block == block degenerates the sector organization to a
 *    conventional cache, so the fetch policy no longer matters: with
 *    exactly one sub-block per block, load-forward (simple and
 *    optimized) fetches precisely the demand sub-block. All three
 *    policies must agree across the paper grid.
 *  - The SectorCache360Model85 wrapper is packaging, not mechanism:
 *    it must match a plain Cache built from make360Model85Config.
 *  - A 360/85 variant with 64-byte sectors and 64-byte sub-blocks
 *    (sub == block) must match the equivalent conventional
 *    16-way-associative cache under every fetch policy.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/sector_cache.hh"
#include "check/generators.hh"
#include "check/reference_cache.hh"
#include "harness/experiment.hh"

using namespace occsim;

namespace {

/** Shared adversarial traces from the fuzz generator (fixed seed). */
const VectorTrace &
sharedTrace(std::uint32_t word_size)
{
    static const std::shared_ptr<VectorTrace> w2 =
        TraceGen(0xde9e7ull).make(60000, 2);
    static const std::shared_ptr<VectorTrace> w4 =
        TraceGen(0xde9e8ull).make(60000, 4);
    return word_size == 2 ? *w2 : *w4;
}

CacheStats
runConfig(const CacheConfig &config)
{
    Cache cache(config);
    for (const MemRef &ref : sharedTrace(config.wordSize).refs())
        cache.access(ref);
    cache.finalizeResidencies();
    return cache.stats();
}

/** Expect bit-identical full statistics, reporting every field that
 *  differs. */
void
expectSameStats(const std::string &label, const CacheStats &a,
                const CacheStats &b)
{
    const auto diffs = diffCacheStats(label, a, b);
    for (const std::string &line : diffs)
        ADD_FAILURE() << line;
    EXPECT_TRUE(diffs.empty());
}

std::vector<CacheConfig>
conventionalGrid()
{
    std::vector<CacheConfig> configs;
    for (const std::uint32_t net : {64u, 256u, 1024u}) {
        for (const CacheConfig &config : paperGrid(net, 2)) {
            if (config.subBlockSize == config.blockSize)
                configs.push_back(config);
        }
    }
    return configs;
}

class DegenerateFetch : public ::testing::TestWithParam<CacheConfig>
{
};

} // namespace

TEST_P(DegenerateFetch, LoadForwardEqualsDemandWithOneSubPerBlock)
{
    CacheConfig demand = GetParam();
    demand.fetch = FetchPolicy::Demand;
    const CacheStats want = runConfig(demand);

    CacheConfig lf = demand;
    lf.fetch = FetchPolicy::LoadForward;
    expectSameStats("lf-vs-demand", runConfig(lf), want);

    CacheConfig lfo = demand;
    lfo.fetch = FetchPolicy::LoadForwardOptimized;
    expectSameStats("lfo-vs-demand", runConfig(lfo), want);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGridConventional, DegenerateFetch,
    ::testing::ValuesIn(conventionalGrid()),
    [](const ::testing::TestParamInfo<CacheConfig> &param_info) {
        const CacheConfig &config = param_info.param;
        return "net" + std::to_string(config.netSize) + "_b" +
               std::to_string(config.blockSize);
    });

TEST(DegenerateEquiv, SectorWrapperMatchesPlainCache)
{
    SectorCache360Model85 sector(4);
    Cache plain(make360Model85Config(4));
    for (const MemRef &ref : sharedTrace(4).refs()) {
        sector.access(ref);
        plain.access(ref);
    }
    sector.finalizeResidencies();
    plain.finalizeResidencies();
    expectSameStats("sector-wrapper", sector.stats(), plain.stats());
}

TEST(DegenerateEquiv, DegenerateSectorMatchesConventionalCache)
{
    // Shrink the 360/85 sectors to their sub-block size: one
    // sub-block per block. The sector machine is now a conventional
    // 16 KB 64-byte-block cache, and must behave as one under every
    // fetch policy.
    CacheConfig degenerate = make360Model85Config(4);
    degenerate.blockSize = degenerate.subBlockSize;  // 64-byte sectors
    degenerate.fetch = FetchPolicy::Demand;
    const CacheStats want = runConfig(degenerate);

    for (const FetchPolicy fetch :
         {FetchPolicy::LoadForward, FetchPolicy::LoadForwardOptimized}) {
        CacheConfig config = degenerate;
        config.fetch = fetch;
        expectSameStats("degenerate-360-85", runConfig(config), want);
    }

    // And the naive oracle agrees with the whole collapsed point.
    ReferenceCache oracle(degenerate);
    oracle.run(sharedTrace(4).refs());
    oracle.finalize();
    const auto diffs = diffStats(oracle.stats(), want);
    for (const std::string &line : diffs)
        ADD_FAILURE() << line;
    EXPECT_TRUE(diffs.empty());
}
