// This TU intentionally exercises the legacy sweep entry points.

/**
 * @file
 * Determinism tests for the fused sector-grid replay engine: every
 * member of a fused group must be bit-identical to its own direct
 * Cache simulation at the edges of the mask-plane design — the
 * sub == block degenerate (one-bit masks, where load-forward
 * collapses to demand), the full 64-sub-block mask width (the
 * span == 64 shift guard), and load-forward misses on a block's LAST
 * sub-block (the fetch stops at the block boundary; it never wraps
 * into the next block) — plus the grouping/routing layer: oversized
 * key populations split at kMaxGroupConfigs, the runner routes
 * sibling groups through the fused engine, and set-sharded fused
 * passes merge exactly.
 */

#include <numeric>

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "cache/cache_geometry.hh"
#include "harness/experiment.hh"
#include "multi/fused_replay.hh"
#include "multi/parallel_sweep.hh"
#include "multi/sweep_api.hh"
#include "trace/packed_trace.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

constexpr std::uint64_t kRefs = 30000;

/** Bit-identical comparison of two SweepResults (exact doubles). */
void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    EXPECT_EQ(a.grossBytes, b.grossBytes);
    EXPECT_EQ(a.missRatio, b.missRatio);
    EXPECT_EQ(a.warmMissRatio, b.warmMissRatio);
    EXPECT_EQ(a.trafficRatio, b.trafficRatio);
    EXPECT_EQ(a.warmTrafficRatio, b.warmTrafficRatio);
    EXPECT_EQ(a.nibbleTrafficRatio, b.nibbleTrafficRatio);
    EXPECT_EQ(a.warmNibbleTrafficRatio, b.warmNibbleTrafficRatio);
}

/** Direct Cache::access simulation of @p config over @p trace. */
SweepResult
directResult(const CacheConfig &config, const VectorTrace &trace)
{
    Cache cache(config);
    for (const MemRef &ref : trace.refs())
        cache.access(ref);
    cache.finalizeResidencies();
    return summarizeCache(cache);
}

/** Run @p configs (one fused key) through one unsharded fused pass
 *  and check every member against its direct simulation. */
void
expectFusedMatchesDirect(const std::vector<CacheConfig> &configs,
                         const VectorTrace &trace)
{
    const PackedTrace packed(trace);
    FusedReplay engine(configs);
    engine.run(packed.data(), packed.size());
    for (std::size_t c = 0; c < configs.size(); ++c) {
        SCOPED_TRACE(configs[c].fullName());
        expectIdentical(engine.result(c),
                        directResult(configs[c], trace));
    }
}

} // namespace

TEST(FusedReplay, SubEqualsBlockDegenerateCollapsesToDemand)
{
    // sub == block: one-bit masks — every miss is a block miss and a
    // load-forward fetch from sub-block 0 spans exactly one
    // sub-block, so the demand and load-forward members of the group
    // must produce identical results, and both must match direct.
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    const std::uint32_t word = suite.profile.wordSize;

    std::vector<CacheConfig> configs;
    configs.push_back(makeConfig(1024, 16, 16, word));
    {
        CacheConfig c = makeConfig(1024, 16, 16, word);
        c.fetch = FetchPolicy::LoadForward;
        configs.push_back(c);
    }
    ASSERT_EQ(CacheGeometry(configs[0]).subBlocksPerBlock(), 1u);
    ASSERT_EQ(fusedKeyOf(configs[0]), fusedKeyOf(configs[1]));

    const PackedTrace packed(*trace);
    FusedReplay engine(configs);
    engine.run(packed.data(), packed.size());
    expectIdentical(engine.result(0),
                    directResult(configs[0], *trace));
    expectIdentical(engine.result(1),
                    directResult(configs[1], *trace));
    // The degenerate collapse itself: one-sub load-forward IS demand.
    expectIdentical(engine.result(0), engine.result(1));
}

TEST(FusedReplay, FullWidth64SubBlockMasks)
{
    // 64 sub-blocks per block exercises the full mask width,
    // including the span == 64 guard in the load-forward fetch (a
    // plain (1 << 64) - 1 would be undefined).
    const std::uint32_t word = 2;
    std::vector<CacheConfig> configs;
    for (const FetchPolicy fetch :
         {FetchPolicy::Demand, FetchPolicy::LoadForward,
          FetchPolicy::LoadForwardOptimized}) {
        CacheConfig c = makeConfig(4096, 128, 2, word);
        c.fetch = fetch;
        configs.push_back(c);
    }
    ASSERT_EQ(CacheGeometry(configs[0]).subBlocksPerBlock(), 64u);

    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    expectFusedMatchesDirect(configs, *trace);
}

TEST(FusedReplay, LoadForwardStopsAtTheBlocksLastSubBlock)
{
    // Every read misses on the LAST sub-block of its block: the
    // load-forward span is exactly one sub-block and must NOT wrap
    // into the sequentially-next block (that behaviour is
    // PrefetchNextOnMiss, which is fused-ineligible). Walk enough
    // distinct blocks to force evictions and re-fetches too.
    auto trace = std::make_shared<VectorTrace>("last-sub");
    for (int pass = 0; pass < 4; ++pass) {
        for (Addr base = 0; base < 16 * 1024; base += 16) {
            trace->append(base + 8, RefKind::DataRead, 2);
            if (base % 64 == 0)
                trace->append(base + 8, RefKind::DataWrite, 2);
        }
    }

    std::vector<CacheConfig> configs;
    for (const FetchPolicy fetch :
         {FetchPolicy::Demand, FetchPolicy::LoadForward,
          FetchPolicy::LoadForwardOptimized}) {
        CacheConfig c = makeConfig(1024, 16, 8, 2);
        c.fetch = fetch;
        configs.push_back(c);
    }
    expectFusedMatchesDirect(configs, *trace);

    // Same trace through a copy-back / no-allocate variant group, so
    // the write-side mask planes see the boundary case too.
    for (CacheConfig &c : configs) {
        c.write = WritePolicy::CopyBack;
        c.writeAllocate = false;
    }
    expectFusedMatchesDirect(configs, *trace);
}

TEST(FusedReplay, GroupsSplitAtTheConfigBitmaskWidth)
{
    // The grain-validity planes address members through a 64-bit
    // bitmask, so fusedGroups must split a key with more than 64
    // members — and every split group must still price exactly.
    const std::uint32_t word = 2;
    std::vector<CacheConfig> variants;
    for (std::uint32_t sub = 2; sub <= 32; sub *= 2) {
        for (const FetchPolicy fetch :
             {FetchPolicy::Demand, FetchPolicy::LoadForward}) {
            CacheConfig c = makeConfig(1024, 32, sub, word);
            c.fetch = fetch;
            variants.push_back(c);
        }
    }
    std::vector<CacheConfig> configs;
    while (configs.size() < 70)
        configs.push_back(variants[configs.size() % variants.size()]);

    std::vector<std::size_t> all(configs.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    const auto groups = fusedGroups(configs, all);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].size(), kMaxGroupConfigs);
    EXPECT_EQ(groups[1].size(), 70u - kMaxGroupConfigs);

    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), 5000);
    const PackedTrace packed(*trace);
    for (const auto &group : groups) {
        std::vector<CacheConfig> members;
        for (const std::size_t c : group)
            members.push_back(configs[c]);
        FusedReplay engine(members);
        engine.run(packed.data(), packed.size());
        for (std::size_t k = 0; k < group.size(); ++k) {
            SCOPED_TRACE(members[k].fullName());
            expectIdentical(engine.result(k),
                            directResult(members[k], *trace));
        }
    }
}

TEST(FusedReplay, ShardedFusedPassesMergeExactly)
{
    // Fused composes with set-sharding: per-shard group passes over a
    // set-partitioned trace must merge bit-identically to direct.
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    const PackedTrace packed(*trace);
    const std::uint32_t word = suite.profile.wordSize;

    std::vector<CacheConfig> configs;
    for (const std::uint32_t sub : {8u, 16u}) {
        for (const FetchPolicy fetch :
             {FetchPolicy::Demand, FetchPolicy::LoadForward}) {
            CacheConfig c = makeConfig(8192, 32, sub, word);
            c.fetch = fetch;
            configs.push_back(c);
        }
    }

    for (const std::uint32_t shards : {2u, 4u, 8u}) {
        FusedReplay engine(configs, shards);
        const ShardedPackedTrace strace(packed, engine.blockBits(),
                                        engine.shardBits(), 0);
        for (std::uint32_t s = 0; s < shards; ++s)
            engine.runShard(s, strace);
        for (std::size_t c = 0; c < configs.size(); ++c) {
            SCOPED_TRACE(configs[c].fullName());
            expectIdentical(engine.result(c),
                            directResult(configs[c], *trace));
        }
    }
}

TEST(FusedReplay, RunnerRoutesSiblingGroupsFused)
{
    // Auto routing: a sector sibling group rides the fused engine
    // (group size >= 2), a lone sector config stays batched, a
    // Random-replacement config is ineligible — and the routed
    // results are bit-identical to DirectOnly.
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), 10000);
    const std::uint32_t word = suite.profile.wordSize;

    std::vector<CacheConfig> configs;
    configs.push_back(makeConfig(4096, 32, 8, word));  // group A
    {
        CacheConfig c = makeConfig(4096, 32, 8, word);
        c.fetch = FetchPolicy::LoadForward;  // group A sibling
        configs.push_back(c);
    }
    configs.push_back(makeConfig(4096, 64, 16, word));  // singleton
    {
        CacheConfig c = makeConfig(4096, 32, 16, word);
        c.replacement = ReplacementPolicy::Random;  // ineligible
        configs.push_back(c);
    }

    ThreadPool pool(2);
    ParallelSweepRunner reference(configs, &pool,
                                  SweepEngine::DirectOnly);
    reference.run(trace);

    ParallelSweepRunner routed(configs, &pool, SweepEngine::Auto);
    EXPECT_TRUE(routed.fused(0));
    EXPECT_TRUE(routed.fused(1));
    EXPECT_FALSE(routed.fused(2)) << "singletons stay batched";
    EXPECT_FALSE(routed.fused(3)) << "Random is fused-ineligible";
    EXPECT_EQ(routed.fusedCount(), 2u);
    routed.run(trace);

    const auto expected = reference.results();
    const auto actual = routed.results();
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        expectIdentical(actual[i], expected[i]);
}
