/**
 * @file
 * Unit tests for the trace substrate: in-memory traces, filters,
 * file round-trips in both formats, and trace profiling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "trace/filters.hh"
#include "trace/trace.hh"
#include "trace/trace_file.hh"
#include "trace/trace_stats.hh"

using namespace occsim;

namespace {

VectorTrace
sampleTrace()
{
    VectorTrace trace("sample");
    trace.append(0x100, RefKind::Ifetch, 2);
    trace.append(0x102, RefKind::Ifetch, 2);
    trace.append(0x4000, RefKind::DataRead, 2);
    trace.append(0x4002, RefKind::DataWrite, 2);
    trace.append(0x104, RefKind::Ifetch, 2);
    return trace;
}

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + name;
}

} // namespace

TEST(VectorTrace, AppendAndIterate)
{
    VectorTrace trace = sampleTrace();
    EXPECT_EQ(trace.size(), 5u);
    MemRef ref;
    int count = 0;
    while (trace.next(ref))
        ++count;
    EXPECT_EQ(count, 5);
    EXPECT_FALSE(trace.next(ref));
    trace.reset();
    EXPECT_TRUE(trace.next(ref));
    EXPECT_EQ(ref.addr, 0x100u);
}

TEST(VectorTrace, CollectRespectsLimit)
{
    VectorTrace trace = sampleTrace();
    VectorTrace copied = collect(trace, 3);
    EXPECT_EQ(copied.size(), 3u);
    EXPECT_EQ(copied[2].addr, 0x4000u);
}

TEST(RefKind, Names)
{
    EXPECT_STREQ(refKindName(RefKind::Ifetch), "ifetch");
    EXPECT_STREQ(refKindName(RefKind::DataRead), "dread");
    EXPECT_STREQ(refKindName(RefKind::DataWrite), "dwrite");
}

TEST(Filters, Truncate)
{
    VectorTrace trace = sampleTrace();
    TruncateFilter filter(trace, 2);
    MemRef ref;
    int count = 0;
    while (filter.next(ref))
        ++count;
    EXPECT_EQ(count, 2);

    filter.reset();
    count = 0;
    while (filter.next(ref))
        ++count;
    EXPECT_EQ(count, 2);
}

TEST(Filters, DropWrites)
{
    VectorTrace trace = sampleTrace();
    DropWritesFilter filter(trace);
    MemRef ref;
    int count = 0;
    while (filter.next(ref)) {
        EXPECT_FALSE(ref.isWrite());
        ++count;
    }
    EXPECT_EQ(count, 4);
}

TEST(Filters, KindSelection)
{
    VectorTrace trace = sampleTrace();
    KindFilter ifilter(trace, KindFilter::Select::InstructionsOnly);
    MemRef ref;
    int icount = 0;
    while (ifilter.next(ref)) {
        EXPECT_TRUE(ref.isInstruction());
        ++icount;
    }
    EXPECT_EQ(icount, 3);

    trace.reset();
    KindFilter dfilter(trace, KindFilter::Select::DataOnly);
    int dcount = 0;
    while (dfilter.next(ref)) {
        EXPECT_FALSE(ref.isInstruction());
        ++dcount;
    }
    EXPECT_EQ(dcount, 2);
}

TEST(Filters, Skip)
{
    VectorTrace trace = sampleTrace();
    SkipFilter filter(trace, 3);
    MemRef ref;
    ASSERT_TRUE(filter.next(ref));
    EXPECT_EQ(ref.addr, 0x4002u);
    int rest = 1;
    while (filter.next(ref))
        ++rest;
    EXPECT_EQ(rest, 2);
}

TEST(Filters, SamplingWindows)
{
    VectorTrace trace;
    for (Addr i = 0; i < 20; ++i)
        trace.append(i * 2, RefKind::DataRead, 2);
    // Window 2 of every 5: indices 0,1, 5,6, 10,11, 15,16.
    SampleFilter filter(trace, 2, 5);
    std::vector<Addr> got;
    MemRef ref;
    while (filter.next(ref))
        got.push_back(ref.addr / 2);
    const std::vector<Addr> expected = {0, 1, 5, 6, 10, 11, 15, 16};
    EXPECT_EQ(got, expected);

    filter.reset();
    int count = 0;
    while (filter.next(ref))
        ++count;
    EXPECT_EQ(count, 8);
}

TEST(Filters, SamplingFullWindowPassesEverything)
{
    VectorTrace trace = sampleTrace();
    SampleFilter filter(trace, 7, 7);
    MemRef ref;
    int count = 0;
    while (filter.next(ref))
        ++count;
    EXPECT_EQ(count, 5);
}

TEST(TraceFile, BinaryRoundTrip)
{
    const VectorTrace trace = sampleTrace();
    const std::string path = tempPath("roundtrip.otb");
    writeBinaryTrace(trace, path);
    const VectorTrace loaded = readTrace(path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(loaded[i], trace[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(TraceFile, TextRoundTrip)
{
    const VectorTrace trace = sampleTrace();
    const std::string path = tempPath("roundtrip.din");
    writeTextTrace(trace, path);
    const VectorTrace loaded = readTrace(path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(loaded[i], trace[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(TraceFile, CompressedRoundTrip)
{
    const VectorTrace trace = sampleTrace();
    const std::string path = tempPath("roundtrip.otd");
    writeCompressedTrace(trace, path);
    const VectorTrace loaded = readTrace(path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(loaded[i], trace[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(TraceFile, CompressedRoundTripLargeRealTrace)
{
    // A large trace with mixed kinds, mixed deltas (forward scans,
    // backward branches, far jumps) must survive exactly.
    VectorTrace trace("big");
    Addr pc = 0x100;
    for (int i = 0; i < 20000; ++i) {
        trace.append(pc, RefKind::Ifetch, 2);
        pc = (i % 37 == 0) ? 0x100 + (i * 7 % 4096) : pc + 2;
        if (i % 3 == 0) {
            trace.append(0x4000 + static_cast<Addr>(i * 13 % 8192),
                         i % 6 == 0 ? RefKind::DataWrite
                                    : RefKind::DataRead,
                         2);
        }
    }
    const std::string path = tempPath("big.otd");
    writeCompressedTrace(trace, path);
    const VectorTrace loaded = readTrace(path);
    ASSERT_EQ(loaded.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        ASSERT_EQ(loaded[i], trace[i]) << "record " << i;
    std::remove(path.c_str());
}

TEST(TraceFile, CompressedSmallerThanBinary)
{
    VectorTrace trace("seq");
    for (Addr addr = 0x100; addr < 0x100 + 60000; addr += 2)
        trace.append(addr, RefKind::Ifetch, 2);
    const std::string bin_path = tempPath("size.otb");
    const std::string cmp_path = tempPath("size.otd");
    writeBinaryTrace(trace, bin_path);
    writeCompressedTrace(trace, cmp_path);

    auto file_size = [](const std::string &path) {
        std::FILE *file = std::fopen(path.c_str(), "rb");
        std::fseek(file, 0, SEEK_END);
        const long size = std::ftell(file);
        std::fclose(file);
        return size;
    };
    EXPECT_LT(file_size(cmp_path), file_size(bin_path) / 2)
        << "sequential traces must compress well";
    std::remove(bin_path.c_str());
    std::remove(cmp_path.c_str());
}

TEST(TraceFile, CompressedStreamingRewind)
{
    const VectorTrace trace = sampleTrace();
    const std::string path = tempPath("rewind.otd");
    writeCompressedTrace(trace, path);
    FileTrace stream(path);
    MemRef first;
    ASSERT_TRUE(stream.next(first));
    MemRef scratch;
    while (stream.next(scratch)) {
    }
    stream.reset();
    MemRef again;
    ASSERT_TRUE(stream.next(again));
    EXPECT_EQ(first, again) << "delta state must reset";
    std::remove(path.c_str());
}

TEST(TraceFile, StreamingReaderRewinds)
{
    const VectorTrace trace = sampleTrace();
    const std::string path = tempPath("stream.otb");
    writeBinaryTrace(trace, path);

    FileTrace stream(path);
    MemRef ref;
    int first_pass = 0;
    while (stream.next(ref))
        ++first_pass;
    EXPECT_EQ(first_pass, 5);

    stream.reset();
    ASSERT_TRUE(stream.next(ref));
    EXPECT_EQ(ref.addr, 0x100u);
    std::remove(path.c_str());
}

TEST(TraceFile, TextCommentsIgnored)
{
    const std::string path = tempPath("comments.din");
    std::FILE *file = std::fopen(path.c_str(), "w");
    ASSERT_NE(file, nullptr);
    std::fprintf(file, "# a comment\n2 100 2\n\n0 4000 2\n");
    std::fclose(file);

    const VectorTrace loaded = readTrace(path);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded[0].kind, RefKind::Ifetch);
    EXPECT_EQ(loaded[0].addr, 0x100u);
    EXPECT_EQ(loaded[1].kind, RefKind::DataRead);
    std::remove(path.c_str());
}

TEST(TraceProfile, CountsAndFootprint)
{
    const TraceProfile profile = profileTrace(sampleTrace());
    EXPECT_EQ(profile.totalRefs, 5u);
    EXPECT_EQ(profile.ifetches, 3u);
    EXPECT_EQ(profile.dataReads, 1u);
    EXPECT_EQ(profile.dataWrites, 1u);
    EXPECT_EQ(profile.minAddr, 0x100u);
    EXPECT_EQ(profile.maxAddr, 0x4002u);
    // Granules: 0x100/0x4000 -> two distinct 16-byte granules.
    EXPECT_EQ(profile.uniqueGranules, 2u);
    EXPECT_DOUBLE_EQ(profile.ifetchFraction(), 0.6);
    EXPECT_DOUBLE_EQ(profile.writeFraction(), 0.2);
}

TEST(TraceProfile, SequentialityOfStraightLine)
{
    VectorTrace trace;
    for (Addr a = 0x100; a < 0x200; a += 2)
        trace.append(a, RefKind::Ifetch, 2);
    const TraceProfile profile = profileTrace(trace);
    // All fetches but the first continue the previous one.
    EXPECT_NEAR(profile.ifetchSequentiality,
                1.0 - 1.0 / static_cast<double>(profile.ifetches),
                1e-9);
}

TEST(TraceProfile, EmptyTrace)
{
    const TraceProfile profile = profileTrace(VectorTrace{});
    EXPECT_EQ(profile.totalRefs, 0u);
    EXPECT_EQ(profile.footprintBytes(), 0u);
    EXPECT_DOUBLE_EQ(profile.ifetchFraction(), 0.0);
}
