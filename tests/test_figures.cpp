/**
 * @file
 * Structured tests of the experiment drivers: run the table/figure
 * generators at a reduced trace length (set via the environment
 * before the first harness call, since the length is latched once)
 * and verify the output's structure — row counts, required labels,
 * and that every printed ratio parses and lies in a sane range.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "harness/figures.hh"
#include "harness/paper_tables.hh"
#include "util/str.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

/** Latch a small trace length before anything reads it. */
class HarnessEnv : public ::testing::Environment
{
  public:
    void
    SetUp() override
    {
        ::setenv("OCCSIM_TRACE_LEN", "20000", 1);
        ASSERT_EQ(defaultTraceLength(), 20000u);
    }
};

const auto *const kEnv =
    ::testing::AddGlobalTestEnvironment(new HarnessEnv);

/** Count lines containing @p needle. */
int
countLines(const std::string &text, const std::string &needle)
{
    int count = 0;
    for (const std::string &line : split(text, '\n')) {
        if (line.find(needle) != std::string::npos)
            ++count;
    }
    return count;
}

/** Extract all tokens parseable as ratios from table-looking lines. */
std::vector<double>
ratios(const std::string &text)
{
    std::vector<double> values;
    for (const std::string &line : split(text, '\n')) {
        for (const std::string &token : split(line, ' ')) {
            if (token.size() >= 5 && token.find('.') == 1 &&
                (token[0] == '0' || token[0] == '1' ||
                 token[0] == '2' || token[0] == '3')) {
                char *end = nullptr;
                const double value =
                    std::strtod(token.c_str(), &end);
                if (end != token.c_str() && *end == '\0')
                    values.push_back(value);
            }
        }
    }
    return values;
}

} // namespace

TEST(Harness, Table6Structure)
{
    std::ostringstream os;
    runTable6(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("360/85"), std::string::npos);
    EXPECT_NE(out.find("4-way set associative"), std::string::npos);
    EXPECT_NE(out.find("16-way set associative"), std::string::npos);
    EXPECT_NE(out.find("never referenced"), std::string::npos);
    for (const double value : ratios(out)) {
        EXPECT_GE(value, 0.0);
        EXPECT_LT(value, 4.0);
    }
}

TEST(Harness, Table7SingleArchRowCount)
{
    std::ostringstream os;
    runTable7Arch(os, 0);  // PDP-11
    const std::string out = os.str();
    // 19 grid rows per net size on a 16-bit machine, 3 net sizes.
    EXPECT_EQ(countLines(out, "64    "), 19);
    EXPECT_NE(out.find("PDP-11"), std::string::npos);
    EXPECT_NE(out.find("16,8"), std::string::npos);
}

TEST(Harness, Table8ContainsLoadForwardRows)
{
    std::ostringstream os;
    runTable8(os);
    const std::string out = os.str();
    EXPECT_EQ(countLines(out, ",LF"), 3);
    EXPECT_NE(out.find("16,16"), std::string::npos);
    EXPECT_NE(out.find("2,2"), std::string::npos);
}

TEST(Harness, Figure9MarksZ80000Point)
{
    std::ostringstream os;
    runFigure9(os);
    EXPECT_NE(os.str().find("Z80,000 design"), std::string::npos);
}

TEST(Harness, Figure1And2CoverSixNetSizes)
{
    std::ostringstream small;
    runFigure1(small);
    std::ostringstream large;
    runFigure2(large);
    for (const char *net : {"32", "128", "512"})
        EXPECT_NE(small.str().find(std::string("\n") + net),
                  std::string::npos)
            << net;
    for (const char *net : {"64", "256", "1024"})
        EXPECT_NE(large.str().find(std::string("\n") + net),
                  std::string::npos)
            << net;
}

TEST(Harness, RiscIICurveHasFourSizes)
{
    std::ostringstream os;
    runRiscII(os);
    const std::string out = os.str();
    for (const char *size : {"512", "1024", "2048", "4096"})
        EXPECT_NE(out.find(size), std::string::npos) << size;
}

TEST(Harness, NibbleFigureTrafficNeverAboveLinear)
{
    // Figures 7/8 print nibble-scaled traffic; every value must be
    // below the corresponding figure-1/2 linear value. Compare the
    // global maxima as a cheap structural check.
    std::ostringstream linear;
    runFigure2(linear);
    std::ostringstream nibble;
    runFigure8(nibble);
    double max_linear = 0.0;
    for (const double value : ratios(linear.str()))
        max_linear = std::max(max_linear, value);
    double max_nibble = 0.0;
    for (const double value : ratios(nibble.str()))
        max_nibble = std::max(max_nibble, value);
    EXPECT_LE(max_nibble, max_linear + 1e-9);
}
