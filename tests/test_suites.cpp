/**
 * @file
 * Tests for the substitute workload suites (Tables 2-5): every named
 * trace assembles, generates the requested number of references,
 * carries the right word size, and the cross-architecture locality
 * ordering the paper reports holds for a mid-size cache.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "cache/cache.hh"
#include "trace/trace_stats.hh"
#include "vm/machine.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

constexpr std::uint64_t kTestRefs = 120000;

double
suiteMissRatio(const Suite &suite, std::uint64_t refs)
{
    double total = 0.0;
    for (const WorkloadSpec &spec : suite.traces) {
        VectorTrace trace = buildTrace(spec, refs);
        Cache cache(makeConfig(1024, 16, 8, suite.profile.wordSize));
        cache.run(trace);
        total += cache.stats().missRatio();
    }
    return total / static_cast<double>(suite.traces.size());
}

} // namespace

TEST(Suites, RosterMatchesPaperTables)
{
    EXPECT_EQ(pdp11Suite().traces.size(), 6u);     // Table 2
    EXPECT_EQ(z8000Suite().traces.size(), 5u);     // Table 3 (last 5)
    EXPECT_EQ(z8000CompilerSuite().traces.size(), 3u);
    EXPECT_EQ(vax11Suite().traces.size(), 6u);     // Table 4
    EXPECT_EQ(s370Suite().traces.size(), 4u);      // Table 5

    EXPECT_EQ(pdp11Suite().traces[4].name, "ROFF");
    EXPECT_EQ(z8000CompilerSuite().traces[0].name, "CPP");
    EXPECT_EQ(vax11Suite().traces[3].name, "qsort");
    EXPECT_EQ(s370Suite().traces[0].name, "FGO1");
}

TEST(Suites, WordSizesFollowArchitectures)
{
    EXPECT_EQ(pdp11Suite().profile.wordSize, 2u);
    EXPECT_EQ(z8000Suite().profile.wordSize, 2u);
    EXPECT_EQ(vax11Suite().profile.wordSize, 4u);
    EXPECT_EQ(s370Suite().profile.wordSize, 4u);
}

TEST(Suites, EveryTraceGeneratesRequestedLength)
{
    for (const Arch arch : kAllArchs) {
        const Suite suite = suiteFor(arch);
        for (const WorkloadSpec &spec : suite.traces) {
            const VectorTrace trace = buildTrace(spec, 20000);
            ASSERT_EQ(trace.size(), 20000u)
                << suite.profile.name << "/" << spec.name;
            const TraceProfile profile = profileTrace(trace);
            EXPECT_GT(profile.ifetches, 0u) << spec.name;
            // Several programs open with a write-only fill phase, so
            // only the combined data-reference count is asserted on a
            // short prefix; reads are covered by the ordering test
            // below, which runs much longer.
            EXPECT_GT(profile.dataReads + profile.dataWrites, 0u)
                << spec.name;
            for (std::size_t i = 0; i < 100; ++i) {
                ASSERT_EQ(trace[i].size, suite.profile.wordSize)
                    << spec.name;
            }
        }
    }
}

TEST(Suites, CompilerSuiteTracesGenerate)
{
    for (const WorkloadSpec &spec : z8000CompilerSuite().traces) {
        const VectorTrace trace = buildTrace(spec, 20000);
        EXPECT_EQ(trace.size(), 20000u) << spec.name;
    }
}

TEST(Suites, TracesAreDeterministic)
{
    const Suite suite = pdp11Suite();
    const WorkloadSpec &spec = suite.traces.front();
    const VectorTrace a = buildTrace(spec, 5000);
    const VectorTrace b = buildTrace(spec, 5000);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "ref " << i;
}

TEST(Suites, ArchitectureOrderingHolds)
{
    // The paper's Table 7 ordering at a 1024-byte cache: Z8000 best,
    // then PDP-11, then VAX-11, then System/370 (by far the worst).
    const double z8000 = suiteMissRatio(z8000Suite(), kTestRefs);
    const double pdp11 = suiteMissRatio(pdp11Suite(), kTestRefs);
    const double vax11 = suiteMissRatio(vax11Suite(), kTestRefs);
    const double s370 = suiteMissRatio(s370Suite(), kTestRefs);

    EXPECT_LT(z8000, pdp11);
    EXPECT_LT(pdp11, vax11);
    EXPECT_LT(vax11, s370);
    EXPECT_GT(s370, 2.0 * pdp11)
        << "System/370 workloads must be far worse than the 16-bit "
           "suites";
}

TEST(Suites, RoutineFarmsAreFullyExercised)
{
    // The farms model many-small-routines code structure; if the
    // dispatch value lost entropy (say, a refactor made it constant)
    // the hot footprint would silently collapse. Verify every
    // handler's private static got hit on a farmed trace.
    const Suite suite = z8000CompilerSuite();  // CPP: lexer farm 8
    Program program = assemble(suite.traces[0].makeSource(),
                               suite.profile.machine);
    Machine machine(std::move(program));
    VectorTrace sink;
    machine.run(sink, 400000);
    int exercised = 0;
    for (int handler = 0; handler < 8; ++handler) {
        const Addr addr = machine.program().symbol(
            "fs_" + std::to_string(handler));
        if (machine.peekWord(addr) > 0)
            ++exercised;
    }
    EXPECT_EQ(exercised, 8) << "every farm handler must run";
}

TEST(Suites, DefaultTraceLengthIsPaper1M)
{
    // Unless overridden by the environment, runs use 1M addresses as
    // the paper did. (The env var is read once and cached; tests run
    // without it set unless the whole suite is invoked that way.)
    const char *env = std::getenv("OCCSIM_TRACE_LEN");
    if (env == nullptr)
        EXPECT_EQ(defaultTraceLength(), 1000000u);
    else
        EXPECT_GT(defaultTraceLength(), 0u);
}
