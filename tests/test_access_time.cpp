/**
 * @file
 * Unit tests for the Section 3.2 effective-access-time model and the
 * multiprocessor-bus capacity helper.
 */

#include <gtest/gtest.h>

#include "mem/access_time.hh"

using namespace occsim;

TEST(AccessTime, BoundaryCases)
{
    AccessTimeParams params;
    params.tCache = 100.0;
    params.tMemFirst = 500.0;
    params.tMemNext = 500.0;
    // Perfect cache: t_eff == t_cache.
    EXPECT_DOUBLE_EQ(effectiveAccessTime(params, 0.0, 1), 100.0);
    // No cache benefit: t_eff == t_mem.
    EXPECT_DOUBLE_EQ(effectiveAccessTime(params, 1.0, 1), 500.0);
    // Paper's formula at m = 0.1.
    EXPECT_DOUBLE_EQ(effectiveAccessTime(params, 0.1, 1),
                     100.0 * 0.9 + 500.0 * 0.1);
}

TEST(AccessTime, BurstWordsUseNextWordTime)
{
    AccessTimeParams params;
    params.tCache = 100.0;
    params.tMemFirst = 160.0;
    params.tMemNext = 55.0;  // Bursky's nibble-mode figures
    // 4-word burst: 160 + 3*55 = 325 ns on a miss.
    EXPECT_DOUBLE_EQ(effectiveAccessTime(params, 1.0, 4), 325.0);
    // The nibble-mode burst is far cheaper than 4 full accesses.
    EXPECT_LT(effectiveAccessTime(params, 1.0, 4), 4 * 160.0);
}

TEST(AccessTime, MonotoneInMissRatio)
{
    AccessTimeParams params;
    double prev = 0.0;
    for (double m = 0.0; m <= 1.0; m += 0.1) {
        const double t = effectiveAccessTime(params, m, 2);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(BusCapacity, InverseInTrafficRatio)
{
    // Halving the traffic ratio doubles the processors one bus can
    // carry — the paper's multiprocessor motivation for sub-blocks.
    const double n_full = maxBusProcessors(1.0, 200.0, 100.0);
    const double n_half = maxBusProcessors(0.5, 200.0, 100.0);
    const double n_fifth = maxBusProcessors(0.2, 200.0, 100.0);
    EXPECT_DOUBLE_EQ(n_full, 2.0);
    EXPECT_DOUBLE_EQ(n_half, 4.0);
    EXPECT_DOUBLE_EQ(n_fifth, 10.0);
}

TEST(BusCapacity, PerfectCacheUnbounded)
{
    EXPECT_GT(maxBusProcessors(0.0, 200.0, 100.0), 1e8);
}

TEST(BusWait, QueueingGrowsNonlinearly)
{
    EXPECT_DOUBLE_EQ(busWaitFactor(0.0), 1.0);
    EXPECT_DOUBLE_EQ(busWaitFactor(0.5), 2.0);
    EXPECT_DOUBLE_EQ(busWaitFactor(0.9), 10.0);
    // Convexity: the last 10% of utilization costs far more than the
    // first 50%.
    EXPECT_GT(busWaitFactor(0.9) - busWaitFactor(0.8),
              busWaitFactor(0.5) - busWaitFactor(0.0));
}

TEST(BusWaitDeath, SaturationIsFatal)
{
    EXPECT_EXIT(busWaitFactor(1.0), ::testing::ExitedWithCode(1),
                "saturates");
}
