/**
 * @file
 * Determinism tests for the batched replay engine: PackedTrace must
 * round-trip the reference stream, and BatchReplay must be
 * bit-identical to direct Cache::access simulation for every tile
 * size, chunk size, policy combination, and thread count — the
 * batching changes only the interleaving between independent caches,
 * never what any one cache observes.
 */

#include <gtest/gtest.h>

#include "harness/experiment.hh"
#include "multi/batch_replay.hh"
#include "multi/parallel_sweep.hh"
#include "multi/sweep_api.hh"
#include "trace/packed_trace.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

/** Suite sweep through the unified API; returns the per-trace grid. */
std::vector<std::vector<occsim::SweepResult>>
sweepGrid(const std::vector<std::shared_ptr<const occsim::VectorTrace>>
              &traces,
          const std::vector<occsim::CacheConfig> &configs,
          occsim::ThreadPool *pool,
          occsim::SweepEngine engine = occsim::SweepEngine::Auto)
{
    occsim::SweepRequest request;
    request.traces = traces;
    request.configs = configs;
    request.pool = pool;
    request.engine = engine;
    request.wantAverage = false;
    return occsim::runSweep(request).perTrace;
}

constexpr std::uint64_t kRefs = 30000;

/** Bit-identical comparison of two SweepResults (exact doubles). */
void
expectIdentical(const SweepResult &a, const SweepResult &b)
{
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.grossBytes, b.grossBytes);
    EXPECT_EQ(a.missRatio, b.missRatio);
    EXPECT_EQ(a.warmMissRatio, b.warmMissRatio);
    EXPECT_EQ(a.trafficRatio, b.trafficRatio);
    EXPECT_EQ(a.warmTrafficRatio, b.warmTrafficRatio);
    EXPECT_EQ(a.nibbleTrafficRatio, b.nibbleTrafficRatio);
    EXPECT_EQ(a.warmNibbleTrafficRatio, b.warmNibbleTrafficRatio);
}

/** The paper's sector/load-forward style grid: every config here is
 *  single-pass-INeligible, so Auto routes all of them to the batched
 *  engine. */
std::vector<CacheConfig>
sectorGrid(std::uint32_t word_size)
{
    std::vector<CacheConfig> configs;
    for (const std::uint32_t block : {16u, 32u}) {
        for (std::uint32_t sub = word_size; sub < block; sub *= 2) {
            for (const FetchPolicy fetch :
                 {FetchPolicy::Demand, FetchPolicy::LoadForward}) {
                CacheConfig config =
                    makeConfig(1024, block, sub, word_size);
                config.fetch = fetch;
                configs.push_back(config);
            }
        }
    }
    return configs;
}

/** Direct reference simulation of @p configs over @p trace. */
std::vector<SweepResult>
directResults(const std::vector<CacheConfig> &configs,
              const VectorTrace &trace, std::uint64_t max_refs = 0)
{
    std::vector<SweepResult> out;
    const std::uint64_t limit =
        max_refs == 0
            ? trace.size()
            : std::min<std::uint64_t>(max_refs, trace.size());
    for (const CacheConfig &config : configs) {
        Cache cache(config);
        for (std::uint64_t r = 0; r < limit; ++r)
            cache.access(trace.refs()[r]);
        cache.finalizeResidencies();
        out.push_back(summarizeCache(cache));
    }
    return out;
}

} // namespace

TEST(PackedTrace, RecordsRoundTripTheReferenceStream)
{
    VectorTrace trace("round-trip");
    trace.append(0x1234, RefKind::DataRead, 2);
    trace.append(0xFFFFFFFCu, RefKind::DataWrite, 4);
    trace.append(0x0, RefKind::Ifetch, 2);

    const PackedTrace packed(trace);
    ASSERT_EQ(packed.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const MemRef &ref = trace.refs()[i];
        EXPECT_EQ(packed[i].addr(), ref.addr);
        EXPECT_EQ(packed[i].isWrite(), ref.isWrite());
        EXPECT_EQ(packed[i].isInstruction(), ref.isInstruction());
    }
}

TEST(PackedTrace, SharedPackingIsMemoized)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), 5000);
    const auto first = packedTraceShared(trace);
    const auto second = packedTraceShared(trace);
    EXPECT_EQ(first.get(), second.get())
        << "one decode per shared trace while a handle is alive";
    EXPECT_EQ(first->size(), trace->size());

    const auto longer = buildTraceShared(suite.traces.front(), 6000);
    EXPECT_NE(packedTraceShared(longer).get(), first.get());
}

TEST(BatchReplay, BitIdenticalToDirectForAnyTiling)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    const auto configs = sectorGrid(suite.profile.wordSize);
    const auto expected = directResults(configs, *trace);
    const PackedTrace packed(*trace);

    for (const std::size_t tile : {1u, 2u, 3u, 5u, 64u}) {
        for (const std::size_t chunk : {7u, 1000u, 1u << 20}) {
            BatchReplay batch(configs, tile, chunk);
            EXPECT_EQ(batch.run(packed), trace->size());
            const auto actual = batch.results();
            ASSERT_EQ(actual.size(), expected.size());
            for (std::size_t i = 0; i < expected.size(); ++i)
                expectIdentical(actual[i], expected[i]);
        }
    }
}

TEST(BatchReplay, EveryKernelMatchesTheRuntimeDispatch)
{
    // All 16 (fetch x write x write-allocate) kernel instantiations
    // against the branch-per-reference access() path.
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    const PackedTrace packed(*trace);

    for (const FetchPolicy fetch :
         {FetchPolicy::Demand, FetchPolicy::LoadForward,
          FetchPolicy::LoadForwardOptimized,
          FetchPolicy::PrefetchNextOnMiss}) {
        for (const WritePolicy write :
             {WritePolicy::WriteThrough, WritePolicy::CopyBack}) {
            for (const bool allocate : {false, true}) {
                CacheConfig config = makeConfig(
                    512, 16, 4, suite.profile.wordSize);
                config.fetch = fetch;
                config.write = write;
                config.writeAllocate = allocate;

                BatchReplay batch({config}, 1, 257);
                batch.run(packed);
                const auto expected =
                    directResults({config}, *trace);
                expectIdentical(batch.results()[0], expected[0]);
            }
        }
    }
}

TEST(BatchReplay, ReplacementAndAssocKernelsMatchTheRuntimeDispatch)
{
    // The other two kernel dimensions: replacement policy (the LRU
    // order update is inlined into the kernels) x associativity
    // (1/2/4/8 get fully unrolled way scans, 16 exercises the
    // runtime-assoc fallback kernel).
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    const PackedTrace packed(*trace);

    for (const ReplacementPolicy repl :
         {ReplacementPolicy::LRU, ReplacementPolicy::FIFO,
          ReplacementPolicy::Random}) {
        for (const std::uint32_t assoc : {1u, 2u, 4u, 8u, 16u}) {
            CacheConfig config =
                makeConfig(512, 16, 4, suite.profile.wordSize);
            config.assoc = assoc;
            config.replacement = repl;
            config.fetch = FetchPolicy::LoadForward;

            BatchReplay batch({config}, 1, 513);
            batch.run(packed);
            const auto expected = directResults({config}, *trace);
            expectIdentical(batch.results()[0], expected[0]);
        }
    }
}

TEST(BatchReplay, RepeatedRunsAccumulateLikeDirect)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), 10000);
    const PackedTrace packed(*trace);
    CacheConfig config = makeConfig(256, 16, 4,
                                    suite.profile.wordSize);
    config.fetch = FetchPolicy::LoadForward;

    BatchReplay batch({config}, 1, 999);
    batch.run(packed);
    batch.run(packed);

    Cache direct(config);
    for (int pass = 0; pass < 2; ++pass) {
        for (const MemRef &ref : trace->refs())
            direct.access(ref);
        direct.finalizeResidencies();
    }
    expectIdentical(batch.results()[0], summarizeCache(direct));
}

TEST(BatchReplay, RespectsMaxRefs)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    const auto configs = sectorGrid(suite.profile.wordSize);
    const PackedTrace packed(*trace);

    BatchReplay batch(configs, 3, 128);
    EXPECT_EQ(batch.run(packed, 500), 500u);
    const auto expected = directResults(configs, *trace, 500);
    const auto actual = batch.results();
    for (std::size_t i = 0; i < expected.size(); ++i)
        expectIdentical(actual[i], expected[i]);
}

TEST(BatchReplay, AutoRoutingMatchesDirectOnlyForAnyThreadCount)
{
    const Suite suite = pdp11Suite();
    const auto trace = buildTraceShared(suite.traces.front(), kRefs);
    // Mixed grid: single-pass-eligible AND batched configs.
    const auto configs = paperGrid(1024, suite.profile.wordSize);

    for (const std::size_t threads : {1u, 2u, 7u}) {
        ThreadPool pool(threads);
        ParallelSweepRunner reference(configs, &pool,
                                      SweepEngine::DirectOnly);
        reference.run(trace);
        const auto expected = reference.results();

        ParallelSweepRunner routed(configs, &pool, SweepEngine::Auto);
        EXPECT_GT(routed.batchedCount(), 0u)
            << "the paper grid contains sector configs";
        routed.run(trace);
        const auto actual = routed.results();

        ASSERT_EQ(actual.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i)
            expectIdentical(actual[i], expected[i]);
    }
}

TEST(BatchReplay, RunSweepAutoMatchesDirectOnlyAcrossTraces)
{
    const Suite suite = pdp11Suite();
    const auto configs = sectorGrid(suite.profile.wordSize);
    std::vector<std::shared_ptr<const VectorTrace>> traces;
    for (const WorkloadSpec &spec : suite.traces)
        traces.push_back(buildTraceShared(spec, 10000));

    ThreadPool pool(4);
    const auto expected =
        sweepGrid(traces, configs, &pool, SweepEngine::DirectOnly);
    const auto actual =
        sweepGrid(traces, configs, &pool, SweepEngine::Auto);

    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t t = 0; t < expected.size(); ++t) {
        ASSERT_EQ(actual[t].size(), expected[t].size());
        for (std::size_t c = 0; c < expected[t].size(); ++c)
            expectIdentical(actual[t][c], expected[t][c]);
    }
}
