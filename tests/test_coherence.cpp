/**
 * @file
 * The coherent multi-cache engine and the scenario-first sweep API
 * around it.
 *
 *  - The anchor invariant: a 1-core scenario degenerates to the
 *    single-cache model bit for bit, across the paper's whole Table 6
 *    grid, both at the engine level (CoherentSystem vs Cache) and
 *    through runSweep() routing.
 *  - The three parallel workloads replay through the coherent engine
 *    and the flat-snooping oracle with every counter agreeing.
 *  - Workload generation is a pure function of its params.
 *  - validateScenario() rejects every malformed scenario shape with a
 *    human-readable reason.
 *  - The serve-layer identity key and canonical scenario JSON never
 *    alias a multicore request to a single-cache one (or to a
 *    different scenario).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "check/coherence_check.hh"
#include "check/generators.hh"
#include "coherence/coherent_system.hh"
#include "harness/experiment.hh"
#include "multi/sweep_api.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "workload/parallel.hh"

using namespace occsim;

namespace {

constexpr std::uint64_t kSeed = 0xc0045ull;

/** Clamp a grid entry onto the MESI subset the engine supports. */
CacheConfig
mesiSubset(CacheConfig config)
{
    config.write = WritePolicy::CopyBack;
    config.writeAllocate = true;
    config.fetch = FetchPolicy::Demand;
    config.partition = CachePartition::Unified;
    return config;
}

ParallelWorkloadParams
smallWorkload(std::uint32_t cores)
{
    ParallelWorkloadParams params;
    params.cores = cores;
    params.refsPerCore = 1500;
    params.wordSize = 2;
    params.seed = kSeed;
    return params;
}

} // namespace

TEST(Coherence, OneCoreScenarioMatchesThePlainCacheOnTable6)
{
    // With a single core the bus degenerates: every fill lands
    // Exclusive, upgrades are silent, and the per-core statistics
    // must be bit-identical to a plain Cache over the same trace —
    // on every Table 6 design point.
    TraceGen gen(kSeed);
    const auto trace = gen.make(12000, 2);
    ScenarioConfig one_core;
    for (const CacheConfig &point : paperGrid(1024, 2)) {
        const CacheConfig config = mesiSubset(point);

        Cache direct(config);
        for (const MemRef &ref : trace->refs())
            direct.access(ref);
        direct.finalizeResidencies();

        CoherentSystem system(one_core, config);
        for (const MemRef &ref : trace->refs())
            system.access(ref);
        system.finalize();

        const CacheStats &got = system.core(0).stats();
        const CacheStats &want = direct.stats();
        ASSERT_EQ(got.accesses(), want.accesses()) << config.fullName();
        ASSERT_EQ(got.misses(), want.misses()) << config.fullName();
        ASSERT_EQ(got.coldMisses(), want.coldMisses());
        ASSERT_EQ(got.ifetchAccesses(), want.ifetchAccesses());
        ASSERT_EQ(got.ifetchMisses(), want.ifetchMisses());
        ASSERT_EQ(got.writeAccesses(), want.writeAccesses());
        ASSERT_EQ(got.writeMisses(), want.writeMisses());
        ASSERT_EQ(got.wordsFetched(), want.wordsFetched());
        ASSERT_EQ(got.coldWordsFetched(), want.coldWordsFetched());
        ASSERT_EQ(got.writeWordsFetched(), want.writeWordsFetched());
        ASSERT_EQ(got.storeWords(), want.storeWords());
        ASSERT_EQ(got.writebackWords(), want.writebackWords());
        ASSERT_EQ(got.bursts(), want.bursts());
        ASSERT_EQ(got.evictions(), want.evictions());

        // The degenerate bus still carries the memory fills (reads
        // and read-for-ownership), but no coherency traffic: nothing
        // to invalidate, upgrade, supply or flush.
        EXPECT_EQ(system.bus().busUpgrades, 0u);
        EXPECT_EQ(system.bus().invalidations, 0u);
        EXPECT_EQ(system.bus().cacheToCacheTransfers, 0u);
        EXPECT_EQ(system.bus().c2cWords, 0u);
        EXPECT_EQ(system.bus().snoopWritebackWords, 0u);
    }
}

TEST(Coherence, OneCoreScenarioRoutesIdenticallyThroughRunSweep)
{
    // An explicit cores == 1 scenario IS the pre-redesign request:
    // runSweep must produce byte-identical headline numbers to a
    // request that never touched the scenario field.
    TraceGen gen(kSeed + 1);
    SweepRequest plain;
    plain.traces.push_back(gen.make(8000, 2));
    for (const CacheConfig &point : paperGrid(256, 2))
        plain.configs.push_back(mesiSubset(point));

    SweepRequest scenario_request = plain;
    scenario_request.scenario = ScenarioConfig{};
    scenario_request.scenario.cores = 1;

    const SweepReport a = runSweep(plain);
    const SweepReport b = runSweep(scenario_request);
    ASSERT_EQ(a.perTrace.size(), b.perTrace.size());
    for (std::size_t c = 0; c < a.perTrace[0].size(); ++c) {
        const SweepResult &ra = a.perTrace[0][c];
        const SweepResult &rb = b.perTrace[0][c];
        EXPECT_EQ(ra.grossBytes, rb.grossBytes);
        EXPECT_EQ(ra.missRatio, rb.missRatio);
        EXPECT_EQ(ra.warmMissRatio, rb.warmMissRatio);
        EXPECT_EQ(ra.trafficRatio, rb.trafficRatio);
        EXPECT_EQ(ra.warmTrafficRatio, rb.warmTrafficRatio);
        EXPECT_FALSE(ra.coherency.active);
        EXPECT_FALSE(rb.coherency.active);
    }
}

TEST(Coherence, WorkloadsMatchTheFlatSnoopingOracle)
{
    // Each parallel workload, through the coherent engine and the
    // naive oracle: every per-core counter and every bus counter
    // must agree (runCoherencyCase also cross-checks the routed
    // runSweep result).
    const CacheConfig config =
        mesiSubset(makeConfig(1024, 16, 8, 2));
    for (const ParallelWorkloadKind kind :
         {ParallelWorkloadKind::SharedQueue,
          ParallelWorkloadKind::PartitionedSum,
          ParallelWorkloadKind::ProducerConsumerRing}) {
        for (const std::uint32_t cores : {2u, 4u}) {
            const VectorTrace trace =
                makeParallelTrace(kind, smallWorkload(cores));
            ScenarioConfig scenario;
            scenario.cores = cores;
            const CoherenceCaseReport report = runCoherencyCase(
                scenario, config, trace.refs(),
                parallelWorkloadName(kind));
            for (const std::string &line : report.diffs)
                ADD_FAILURE() << parallelWorkloadName(kind) << " x"
                              << cores << ": " << line;
        }
    }
}

TEST(Coherence, MulticoreSweepGeneratesCoherencyTraffic)
{
    // The shared-queue workload is built to communicate: its 2-core
    // sweep must surface invalidations and upgrades in the routed
    // SweepResult, and its per-core miss ratios must be populated.
    const VectorTrace trace =
        makeSharedQueueTrace(smallWorkload(2));
    SweepRequest request;
    request.traces.push_back(
        std::make_shared<const VectorTrace>(trace));
    request.configs = {mesiSubset(makeConfig(1024, 16, 8, 2))};
    request.scenario.cores = 2;
    const SweepReport report = runSweep(request);
    const SweepResult &result = report.perTrace.at(0).at(0);
    ASSERT_TRUE(result.coherency.active);
    EXPECT_EQ(result.coherency.cores, 2u);
    EXPECT_GT(result.coherency.invalidations, 0u);
    EXPECT_GT(result.coherency.busUpgrades +
                  result.coherency.busReadForOwnership,
              0u);
    EXPECT_GT(result.coherency.invalidationsPerKiloRef, 0.0);
    ASSERT_EQ(result.coherency.coreMissRatios.size(), 2u);
}

TEST(Coherence, WorkloadsAreDeterministic)
{
    for (const ParallelWorkloadKind kind :
         {ParallelWorkloadKind::SharedQueue,
          ParallelWorkloadKind::PartitionedSum,
          ParallelWorkloadKind::ProducerConsumerRing}) {
        const VectorTrace a =
            makeParallelTrace(kind, smallWorkload(3));
        const VectorTrace b =
            makeParallelTrace(kind, smallWorkload(3));
        ASSERT_EQ(a.size(), b.size());
        bool any_core_above_zero = false;
        for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i].addr, b[i].addr);
            ASSERT_EQ(a[i].kind, b[i].kind);
            ASSERT_EQ(a[i].core, b[i].core);
            ASSERT_LT(a[i].core, 3u);
            any_core_above_zero = any_core_above_zero || a[i].core > 0;
        }
        EXPECT_TRUE(any_core_above_zero);

        // A different interleaving seed must actually reshuffle.
        ParallelWorkloadParams reseeded = smallWorkload(3);
        reseeded.seed = kSeed + 99;
        const VectorTrace c = makeParallelTrace(kind, reseeded);
        bool any_difference = c.size() != a.size();
        for (std::size_t i = 0; !any_difference && i < a.size(); ++i)
            any_difference = a[i].addr != c[i].addr ||
                             a[i].core != c[i].core;
        EXPECT_TRUE(any_difference) << parallelWorkloadName(kind);
    }
}

TEST(Coherence, ValidateScenarioRejectsMalformedShapes)
{
    const CacheConfig good = mesiSubset(makeConfig(1024, 16, 8, 2));
    const std::vector<CacheConfig> grid{good};

    ScenarioConfig ok;
    ok.cores = 2;
    EXPECT_EQ(validateScenario(ok, grid), "");

    ScenarioConfig zero;
    zero.cores = 0;
    EXPECT_NE(validateScenario(zero, grid), "");

    ScenarioConfig too_many;
    too_many.cores = PackedRecord::kMaxCores + 1;
    EXPECT_NE(validateScenario(too_many, grid), "");

    // Per-core configs require a multicore scenario...
    ScenarioConfig one_core_shapes;
    one_core_shapes.cores = 1;
    one_core_shapes.coreConfigs = {good};
    EXPECT_NE(validateScenario(one_core_shapes, grid), "");

    // ...must match the core count...
    ScenarioConfig wrong_count;
    wrong_count.cores = 2;
    wrong_count.coreConfigs = {good, good, good};
    EXPECT_NE(validateScenario(wrong_count, grid), "");

    // ...and collapse the sweep grid to exactly one entry.
    ScenarioConfig with_grid;
    with_grid.cores = 2;
    with_grid.coreConfigs = {good, good};
    EXPECT_NE(validateScenario(with_grid, {good, good}), "");
    EXPECT_EQ(validateScenario(with_grid, grid), "");

    // The MESI subset: no write-through, no split halves, and one
    // bus-wide block/sub-block/word geometry.
    CacheConfig write_through = good;
    write_through.write = WritePolicy::WriteThrough;
    EXPECT_NE(validateScenario(ok, {write_through}), "");

    CacheConfig split = good;
    split.partition = CachePartition::SplitID;
    EXPECT_NE(validateScenario(ok, {split}), "");

    CacheConfig other_block = good;
    other_block.blockSize = 32;
    ScenarioConfig mixed_geometry;
    mixed_geometry.cores = 2;
    mixed_geometry.coreConfigs = {good, other_block};
    EXPECT_NE(validateScenario(mixed_geometry, grid), "");
}

TEST(Coherence, ScenarioIdentityNeverAliases)
{
    const CacheConfig config = mesiSubset(makeConfig(1024, 16, 8, 2));

    // Pre-scenario keys stay byte-identical: a default scenario adds
    // no suffix, so old cache entries keep their identity.
    const std::string plain =
        serve::ResultCache::key("hash", 0, config);
    const std::string one_core = serve::ResultCache::key(
        "hash", 0, config, ScenarioConfig{});
    EXPECT_EQ(plain, one_core);

    ScenarioConfig two;
    two.cores = 2;
    const std::string multicore =
        serve::ResultCache::key("hash", 0, config, two);
    EXPECT_NE(multicore, plain);

    ScenarioConfig four = two;
    four.cores = 4;
    EXPECT_NE(serve::ResultCache::key("hash", 0, config, four),
              multicore);

    // Asymmetric shapes change the canonical scenario JSON (and so
    // the key) even at the same core count.
    ScenarioConfig asymmetric = two;
    CacheConfig small = config;
    small.netSize = 512;
    asymmetric.coreConfigs = {config, small};
    EXPECT_NE(serve::canonicalScenarioJson(asymmetric),
              serve::canonicalScenarioJson(two));
    EXPECT_NE(serve::ResultCache::key("hash", 0, config, asymmetric),
              multicore);
}
