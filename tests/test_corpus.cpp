/**
 * @file
 * The on-disk trace corpus contract (trace/corpus.hh): an ingest →
 * mmap → replay round trip must be bit-identical to in-memory packing
 * (the OCPC bytes ARE packedTraceShared's bytes); duplicate content
 * must be stored once and addressed by one hash; a corrupted or
 * truncated file must be refused with a clear error, never replayed;
 * and runSweep's packedTraces path over mapped corpus entries must be
 * bit-identical to the ordinary VectorTrace path for the same grid.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "multi/sweep_api.hh"
#include "trace/corpus.hh"
#include "trace/packed_trace.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

constexpr std::uint64_t kRefs = 30000;

/** A fresh corpus directory per test, removed on teardown. */
class CorpusTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        char pattern[] = "/tmp/occsim_corpus_XXXXXX";
        ASSERT_NE(::mkdtemp(pattern), nullptr);
        dir_ = pattern;
    }

    void TearDown() override
    {
        // Best-effort removal; the files are tiny.
        const std::string cmd = "rm -rf " + dir_;
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }

    /** Count regular files under the corpus directory. */
    std::size_t fileCount()
    {
        TraceCorpus corpus(dir_);
        return corpus.entries().size();
    }

    std::string dir_;
};

std::shared_ptr<const VectorTrace>
suiteTrace(std::size_t index)
{
    return buildTraceShared(pdp11Suite().traces.at(index), kRefs);
}

/** Flip one byte in the middle of a file's record region. */
void
corruptFile(const std::string &path, std::size_t offset)
{
    std::fstream file(path,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(static_cast<std::streamoff>(offset));
    file.write(&byte, 1);
}

} // namespace

TEST_F(CorpusTest, IngestMapRoundTripIsBitIdentical)
{
    const auto trace = suiteTrace(0);
    const auto packed = packedTraceShared(trace);

    TraceCorpus corpus(dir_);
    std::string error;
    const std::string hash = corpus.ingest(*trace, &error);
    ASSERT_FALSE(hash.empty()) << error;
    EXPECT_EQ(hash,
              contentHashHex(
                  packedContentHash(packed->data(), packed->size())));

    std::uint32_t word_size = corpus.wordSize(hash);
    EXPECT_EQ(word_size, pdp11Suite().profile.wordSize);

    const auto mapped = corpus.open(hash, &error);
    ASSERT_NE(mapped, nullptr) << error;
    ASSERT_EQ(mapped->size(), packed->size());
    EXPECT_EQ(mapped->name(), trace->name());
    // The mapped records must be byte-for-byte the in-memory packing.
    EXPECT_EQ(std::memcmp(mapped->data(), packed->data(),
                          packed->size() * sizeof(PackedRecord)),
              0);
}

TEST_F(CorpusTest, OpenIsMemoizedWhileAlive)
{
    const auto trace = suiteTrace(0);
    TraceCorpus corpus(dir_);
    const std::string hash = corpus.ingest(*trace);
    ASSERT_FALSE(hash.empty());

    const auto first = corpus.open(hash);
    const auto second = corpus.open(hash);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first.get(), second.get());
}

TEST_F(CorpusTest, DuplicateContentIsStoredOnce)
{
    const auto trace = suiteTrace(0);
    TraceCorpus corpus(dir_);
    const std::string first = corpus.ingest(*trace);
    const std::string second = corpus.ingest(*trace);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    EXPECT_EQ(fileCount(), 1u);

    // Different content gets its own entry.
    const std::string other = corpus.ingest(*suiteTrace(1));
    ASSERT_FALSE(other.empty());
    EXPECT_NE(other, first);
    EXPECT_EQ(fileCount(), 2u);
}

TEST_F(CorpusTest, CorruptedRecordsAreRefused)
{
    const auto trace = suiteTrace(0);
    TraceCorpus corpus(dir_);
    const std::string hash = corpus.ingest(*trace);
    ASSERT_FALSE(hash.empty());
    const std::string path = dir_ + "/" + hash + ".opc";

    // Flip a bit deep in the record region: the stored header hash no
    // longer matches the bytes, so open must refuse.
    corruptFile(path, 64 + 1024 * sizeof(PackedRecord) + 3);
    std::string error;
    EXPECT_EQ(corpus.open(hash, &error), nullptr);
    EXPECT_NE(error.find("hash"), std::string::npos) << error;
}

TEST_F(CorpusTest, TruncatedFileIsRefused)
{
    const auto trace = suiteTrace(0);
    TraceCorpus corpus(dir_);
    const std::string hash = corpus.ingest(*trace);
    ASSERT_FALSE(hash.empty());
    const std::string path = dir_ + "/" + hash + ".opc";

    // Cut the file off mid-records: the size-vs-count check fires.
    ASSERT_EQ(::truncate(path.c_str(), 64 + 100), 0);
    std::string error;
    EXPECT_EQ(corpus.open(hash, &error), nullptr);
    EXPECT_FALSE(error.empty());

    // And a file shorter than one header is refused too.
    ASSERT_EQ(::truncate(path.c_str(), 17), 0);
    error.clear();
    EXPECT_EQ(corpus.open(hash, &error), nullptr);
    EXPECT_FALSE(error.empty());
}

TEST_F(CorpusTest, GarbageHeaderIsRefusedAndSkippedByListing)
{
    TraceCorpus corpus(dir_);
    const std::string hash = corpus.ingest(*suiteTrace(0));
    ASSERT_FALSE(hash.empty());

    // Drop a non-OCPC file with the entry suffix next to it.
    const std::string bogus =
        dir_ + "/0123456789abcdef.opc";
    std::ofstream out(bogus, std::ios::binary);
    out << "this is not a corpus entry, it just ends in .opc";
    out.close();

    std::string error;
    EXPECT_EQ(corpus.open("0123456789abcdef", &error), nullptr);
    EXPECT_FALSE(error.empty());

    // entries() warns and skips the bad file, listing the good one.
    const auto all = corpus.entries();
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all[0].hash, hash);
}

TEST_F(CorpusTest, ResolveByHashAndNameWithAmbiguityDetection)
{
    TraceCorpus corpus(dir_);
    const auto trace = suiteTrace(0);
    const std::string hash = corpus.ingest(*trace);
    ASSERT_FALSE(hash.empty());

    std::string error;
    EXPECT_EQ(corpus.resolve(hash, &error), hash);
    EXPECT_EQ(corpus.resolve(trace->name(), &error), hash);
    EXPECT_EQ(corpus.resolve("no-such-trace", &error), "");
    EXPECT_FALSE(error.empty());

    // Same workload at a different length: same name, new content —
    // resolution by name becomes ambiguous, by hash stays exact.
    const auto longer =
        buildTraceShared(pdp11Suite().traces[0], kRefs * 2);
    const std::string other = corpus.ingest(*longer);
    ASSERT_FALSE(other.empty());
    ASSERT_NE(other, hash);
    error.clear();
    EXPECT_EQ(corpus.resolve(trace->name(), &error), "");
    EXPECT_NE(error.find("ambiguous"), std::string::npos) << error;
    EXPECT_EQ(corpus.resolve(hash, &error), hash);
    EXPECT_EQ(corpus.resolve(other, &error), other);
}

TEST_F(CorpusTest, PackedSweepPathIsBitIdenticalToVectorPath)
{
    const auto trace0 = suiteTrace(0);
    const auto trace1 = suiteTrace(1);

    TraceCorpus corpus(dir_);
    const std::string hash0 = corpus.ingest(*trace0);
    const std::string hash1 = corpus.ingest(*trace1);
    ASSERT_FALSE(hash0.empty());
    ASSERT_FALSE(hash1.empty());

    std::vector<CacheConfig> configs =
        paperGrid(1024, pdp11Suite().profile.wordSize);
    // A sector point (sub < block) so the batched engine's general
    // kernel runs too.
    CacheConfig sector =
        makeConfig(1024, 32, 8, pdp11Suite().profile.wordSize);
    sector.fetch = FetchPolicy::LoadForward;
    configs.push_back(sector);

    SweepRequest direct;
    direct.traces = {trace0, trace1};
    direct.configs = configs;
    direct.maxRefs = kRefs / 2;
    const SweepReport expected = runSweep(direct);

    SweepRequest packed;
    packed.packedTraces = {corpus.open(hash0), corpus.open(hash1)};
    ASSERT_NE(packed.packedTraces[0], nullptr);
    ASSERT_NE(packed.packedTraces[1], nullptr);
    packed.configs = configs;
    packed.maxRefs = kRefs / 2;
    const SweepReport actual = runSweep(packed);

    ASSERT_EQ(actual.perTrace.size(), expected.perTrace.size());
    for (std::size_t t = 0; t < expected.perTrace.size(); ++t) {
        ASSERT_EQ(actual.perTrace[t].size(),
                  expected.perTrace[t].size());
        for (std::size_t c = 0; c < expected.perTrace[t].size(); ++c) {
            const SweepResult &a = actual.perTrace[t][c];
            const SweepResult &b = expected.perTrace[t][c];
            EXPECT_EQ(a.grossBytes, b.grossBytes);
            EXPECT_EQ(a.missRatio, b.missRatio);
            EXPECT_EQ(a.warmMissRatio, b.warmMissRatio);
            EXPECT_EQ(a.trafficRatio, b.trafficRatio);
            EXPECT_EQ(a.warmTrafficRatio, b.warmTrafficRatio);
            EXPECT_EQ(a.nibbleTrafficRatio, b.nibbleTrafficRatio);
            EXPECT_EQ(a.warmNibbleTrafficRatio,
                      b.warmNibbleTrafficRatio);
        }
    }
}

TEST_F(CorpusTest, WriteFailureReportsAndLeavesNoPartialFile)
{
    const auto trace = suiteTrace(0);
    const auto packed = packedTraceShared(trace);
    std::string error;
    EXPECT_FALSE(writePackedTraceFile("/nonexistent-dir/x.opc",
                                      *packed, 2, &error));
    EXPECT_FALSE(error.empty());
}
