/**
 * @file
 * Unit tests for the split instruction/data cache organisation.
 */

#include <gtest/gtest.h>

#include "cache/split_cache.hh"
#include "workload/synthetic.hh"

using namespace occsim;

namespace {

MemRef
iref(Addr addr)
{
    return MemRef{addr, RefKind::Ifetch, 2};
}

MemRef
dref(Addr addr)
{
    return MemRef{addr, RefKind::DataRead, 2};
}

} // namespace

TEST(SplitCache, RoutesByKind)
{
    SplitCache split(makeConfig(64, 16, 8, 2),
                     makeConfig(64, 16, 8, 2));
    split.access(iref(0x100));
    split.access(iref(0x100));
    split.access(dref(0x100));  // same address, other side

    EXPECT_EQ(split.icache().stats().accesses(), 2u);
    EXPECT_EQ(split.dcache().stats().accesses(), 1u);
    // The data side did not see the instruction fill.
    EXPECT_EQ(split.dcache().stats().misses(), 1u);
    EXPECT_EQ(split.icache().stats().misses(), 1u);
}

TEST(SplitCache, CombinedMetrics)
{
    SplitCache split(makeConfig(64, 16, 8, 2),
                     makeConfig(64, 16, 8, 2));
    split.access(iref(0x100));  // miss, 4 words
    split.access(dref(0x200));  // miss, 4 words
    split.access(iref(0x100));  // hit
    EXPECT_EQ(split.accesses(), 3u);
    EXPECT_EQ(split.misses(), 2u);
    EXPECT_DOUBLE_EQ(split.missRatio(), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(split.trafficRatio(), 8.0 / 3.0);
    EXPECT_EQ(split.netSize(), 128u);
    EXPECT_GT(split.grossBytes(), 128u);
}

TEST(SplitCache, EvenSplitHalvesEachSide)
{
    const SplitCache split = makeEvenSplit(makeConfig(1024, 16, 8, 2));
    EXPECT_EQ(split.icache().config().netSize, 512u);
    EXPECT_EQ(split.dcache().config().netSize, 512u);
    EXPECT_EQ(split.netSize(), 1024u);
}

TEST(SplitCache, NoCrossPollution)
{
    // Data streaming cannot evict instructions in a split cache —
    // the paper's motivation for considering the split.
    SplitCache split(makeConfig(64, 16, 16, 2),
                     makeConfig(64, 16, 16, 2));
    split.access(iref(0x100));
    // A long data sweep that would wipe a mixed 128-byte cache.
    for (Addr addr = 0x1000; addr < 0x2000; addr += 16)
        split.access(dref(addr));
    EXPECT_EQ(split.access(iref(0x100)), AccessOutcome::Hit);

    // The mixed comparison does evict it.
    Cache mixed(makeConfig(128, 16, 16, 2));
    mixed.access(iref(0x100));
    for (Addr addr = 0x1000; addr < 0x2000; addr += 16)
        mixed.access(dref(addr));
    EXPECT_NE(mixed.access(iref(0x100)), AccessOutcome::Hit);
}

TEST(SplitCache, RunAndResetWork)
{
    SyntheticParams params;
    params.seed = 3;
    SyntheticSource source(params);
    SplitCache split(makeConfig(256, 16, 8, 2),
                     makeConfig(256, 16, 8, 2));
    EXPECT_EQ(split.run(source, 20000), 20000u);
    EXPECT_GT(split.accesses(), 0u);
    split.reset();
    EXPECT_EQ(split.accesses(), 0u);
    EXPECT_EQ(split.icache().stats().accesses(), 0u);
}

TEST(SplitCache, MatchesManualRouting)
{
    SyntheticParams params;
    params.seed = 29;
    const VectorTrace trace = makeSyntheticTrace(params, 30000);

    SplitCache split(makeConfig(512, 16, 8, 2),
                     makeConfig(512, 16, 8, 2));
    VectorTrace copy = trace;
    split.run(copy);

    Cache icache(makeConfig(512, 16, 8, 2));
    Cache dcache(makeConfig(512, 16, 8, 2));
    for (const MemRef &ref : trace.refs()) {
        (ref.isInstruction() ? icache : dcache).access(ref);
    }
    EXPECT_EQ(split.icache().stats().misses(),
              icache.stats().misses());
    EXPECT_EQ(split.dcache().stats().misses(),
              dcache.stats().misses());
}
