/**
 * @file
 * Unit tests for the stats package: counters, formulas, registries,
 * and the Distribution histogram.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/distribution.hh"
#include "stats/stats.hh"

using namespace occsim;

TEST(Counter, IncrementAndReset)
{
    StatSet set("test");
    Counter counter(set, "hits", "number of hits");
    ++counter;
    counter += 5;
    EXPECT_EQ(counter.value(), 6u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST(Formula, EvaluatesLazily)
{
    StatSet set;
    Counter num(set, "num", "");
    Counter den(set, "den", "");
    Formula miss(set, "ratio", "", [&] {
        return ratio(num.value(), den.value());
    });
    EXPECT_DOUBLE_EQ(miss.value(), 0.0);
    num += 1;
    den += 4;
    EXPECT_DOUBLE_EQ(miss.value(), 0.25);
}

TEST(RatioHelper, DivisionByZeroIsZero)
{
    EXPECT_DOUBLE_EQ(ratio(std::uint64_t{5}, std::uint64_t{0}), 0.0);
    EXPECT_DOUBLE_EQ(ratio(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(ratio(std::uint64_t{1}, std::uint64_t{2}), 0.5);
}

TEST(StatSet, ResetAllAndDump)
{
    StatSet set("cache0");
    Counter a(set, "a", "first");
    Counter b(set, "b", "second");
    a += 3;
    b += 7;
    set.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);

    a += 42;
    std::ostringstream os;
    set.dump(os);
    EXPECT_NE(os.str().find("cache0"), std::string::npos);
    EXPECT_NE(os.str().find("42"), std::string::npos);
    EXPECT_NE(os.str().find("first"), std::string::npos);
}

TEST(Distribution, BasicBuckets)
{
    Distribution dist("d", 4);
    dist.sample(0);
    dist.sample(1);
    dist.sample(1);
    dist.sample(3);
    EXPECT_EQ(dist.samples(), 4u);
    EXPECT_EQ(dist.bucket(0), 1u);
    EXPECT_EQ(dist.bucket(1), 2u);
    EXPECT_EQ(dist.bucket(2), 0u);
    EXPECT_EQ(dist.bucket(3), 1u);
    EXPECT_EQ(dist.overflow(), 0u);
    EXPECT_DOUBLE_EQ(dist.mean(), (0 + 1 + 1 + 3) / 4.0);
}

TEST(Distribution, OverflowBucket)
{
    Distribution dist("d", 2);
    dist.sample(5);
    dist.sample(100);
    EXPECT_EQ(dist.overflow(), 2u);
    EXPECT_EQ(dist.samples(), 2u);
    // Overflow samples count at numBuckets for the mean.
    EXPECT_DOUBLE_EQ(dist.mean(), 2.0);
}

TEST(Distribution, WeightedSamples)
{
    Distribution dist("d", 8);
    dist.sample(2, 10);
    dist.sample(4, 10);
    EXPECT_EQ(dist.samples(), 20u);
    EXPECT_DOUBLE_EQ(dist.mean(), 3.0);
}

TEST(Distribution, Cdf)
{
    Distribution dist("d", 4);
    dist.sample(0);
    dist.sample(1);
    dist.sample(2);
    dist.sample(3);
    EXPECT_DOUBLE_EQ(dist.cdfAt(0), 0.25);
    EXPECT_DOUBLE_EQ(dist.cdfAt(1), 0.5);
    EXPECT_DOUBLE_EQ(dist.cdfAt(3), 1.0);
    EXPECT_DOUBLE_EQ(dist.cdfAt(100), 1.0);
}

TEST(Distribution, VarianceAndStddev)
{
    Distribution dist("d", 16);
    // Values 2 and 6, equally weighted: mean 4, variance 4.
    dist.sample(2, 5);
    dist.sample(6, 5);
    EXPECT_DOUBLE_EQ(dist.mean(), 4.0);
    EXPECT_DOUBLE_EQ(dist.variance(), 4.0);
    EXPECT_DOUBLE_EQ(dist.stddev(), 2.0);

    Distribution constant("c", 16);
    constant.sample(7, 100);
    EXPECT_DOUBLE_EQ(constant.variance(), 0.0);
}

TEST(Distribution, Percentiles)
{
    Distribution dist("d", 16);
    for (std::uint64_t v = 1; v <= 10; ++v)
        dist.sample(v);
    EXPECT_EQ(dist.percentile(0.5), 5u);
    EXPECT_EQ(dist.percentile(0.9), 9u);
    EXPECT_EQ(dist.percentile(1.0), 10u);
    EXPECT_EQ(dist.percentile(0.0), 1u)
        << "p=0 returns the smallest populated bucket";
}

TEST(Distribution, Reset)
{
    Distribution dist("d", 4);
    dist.sample(1);
    dist.reset();
    EXPECT_EQ(dist.samples(), 0u);
    EXPECT_EQ(dist.bucket(1), 0u);
    EXPECT_DOUBLE_EQ(dist.mean(), 0.0);
}

TEST(Distribution, DumpContainsCounts)
{
    Distribution dist("touched", 4);
    dist.sample(2, 3);
    std::ostringstream os;
    dist.dump(os);
    EXPECT_NE(os.str().find("touched"), std::string::npos);
    EXPECT_NE(os.str().find("3"), std::string::npos);
}
