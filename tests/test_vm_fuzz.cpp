/**
 * @file
 * Randomized differential testing of the OC-1 interpreter: generate
 * random straight-line programs (ALU operations, loads and stores
 * with in-bounds addresses), execute them on the Machine, and compare
 * every register and touched memory word against an independent
 * C++ reference model. Catches encoding, semantics, and trace-
 * accounting drift that hand-written cases miss.
 */

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "util/random.hh"
#include "util/str.hh"
#include "vm/machine.hh"

using namespace occsim;

namespace {

/** Reference state mirroring one OC-1 program's effect. */
struct RefModel
{
    std::array<std::int32_t, kNumRegs> regs{};
    std::map<Addr, std::int32_t> memory;  // word address -> value
    std::uint32_t wordSize;

    explicit RefModel(std::uint32_t word_size) : wordSize(word_size) {}

    std::int32_t
    load(Addr addr) const
    {
        const auto it = memory.find(addr);
        if (it == memory.end())
            return 0;
        return it->second;
    }

    void
    store(Addr addr, std::int32_t value)
    {
        if (wordSize == 2) {
            value = static_cast<std::int16_t>(value & 0xffff);
        }
        memory[addr] = value;
    }
};

/** One randomly generated instruction, kept in both encodings. */
struct FuzzCase
{
    std::string assembly;
};

class VmFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

} // namespace

TEST_P(VmFuzz, StraightLineMatchesReferenceModel)
{
    Rng rng(GetParam());
    const bool wide = rng.chance(0.5);
    const MachineConfig config =
        wide ? MachineConfig::word32() : MachineConfig::word16();
    const std::uint32_t word = config.wordSize;

    // A small data arena the generated loads/stores stay inside.
    constexpr unsigned kArenaWords = 32;
    const Addr arena = config.dataBase;

    RefModel model(word);
    std::string source = ".data\narena: .spacew 32\n.code\nmain:\n";

    // Seed a couple of registers deterministically.
    for (unsigned r = 1; r <= 4; ++r) {
        const auto value =
            static_cast<std::int32_t>(rng.between(-5000, 5000));
        source += strfmt("    movi r%u, %d\n", r, value);
        model.regs[r] = value;
    }

    const int instruction_count = 120;
    for (int i = 0; i < instruction_count; ++i) {
        const unsigned rd = 1 + static_cast<unsigned>(rng.below(12));
        const unsigned rs = 1 + static_cast<unsigned>(rng.below(12));
        const unsigned rt = 1 + static_cast<unsigned>(rng.below(12));
        switch (rng.below(11)) {
          case 0: {
            const auto imm =
                static_cast<std::int32_t>(rng.between(-9000, 9000));
            source += strfmt("    movi r%u, %d\n", rd, imm);
            model.regs[rd] = imm;
            break;
          }
          case 1:
            source += strfmt("    add  r%u, r%u, r%u\n", rd, rs, rt);
            model.regs[rd] = model.regs[rs] + model.regs[rt];
            break;
          case 2:
            source += strfmt("    sub  r%u, r%u, r%u\n", rd, rs, rt);
            model.regs[rd] = model.regs[rs] - model.regs[rt];
            break;
          case 3:
            source += strfmt("    mul  r%u, r%u, r%u\n", rd, rs, rt);
            model.regs[rd] = static_cast<std::int32_t>(
                static_cast<std::int64_t>(model.regs[rs]) *
                model.regs[rt]);
            break;
          case 4:
            source += strfmt("    divs r%u, r%u, r%u\n", rd, rs, rt);
            model.regs[rd] = model.regs[rt] == 0
                                 ? 0
                                 : model.regs[rs] / model.regs[rt];
            break;
          case 5:
            source += strfmt("    and  r%u, r%u, r%u\n", rd, rs, rt);
            model.regs[rd] = model.regs[rs] & model.regs[rt];
            break;
          case 6:
            source += strfmt("    xor  r%u, r%u, r%u\n", rd, rs, rt);
            model.regs[rd] = model.regs[rs] ^ model.regs[rt];
            break;
          case 7: {
            const auto shift =
                static_cast<std::uint32_t>(rng.below(15));
            source += strfmt("    shli r%u, r%u, %u\n", rd, rs, shift);
            model.regs[rd] = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(model.regs[rs]) << shift);
            break;
          }
          case 8: {
            const auto imm =
                static_cast<std::int32_t>(rng.between(-500, 500));
            source += strfmt("    addi r%u, r%u, %d\n", rd, rs, imm);
            model.regs[rd] = model.regs[rs] + imm;
            break;
          }
          case 9: {
            // Store rt to a random arena slot via an address register.
            const auto slot =
                static_cast<std::uint32_t>(rng.below(kArenaWords));
            source += strfmt("    movi r%u, arena+%u\n", rd,
                             slot * word);
            source += strfmt("    st   r%u, r%u, 0\n", rd, rt);
            model.regs[rd] =
                static_cast<std::int32_t>(arena + slot * word);
            model.store(arena + slot * word, model.regs[rt]);
            break;
          }
          default: {
            const auto slot =
                static_cast<std::uint32_t>(rng.below(kArenaWords));
            source += strfmt("    movi r%u, arena+%u\n", rs,
                             slot * word);
            model.regs[rs] =
                static_cast<std::int32_t>(arena + slot * word);
            source += strfmt("    ld   r%u, r%u, 0\n", rd, rs);
            model.regs[rd] = model.load(arena + slot * word);
            break;
          }
        }
    }
    source += "    halt\n";

    Machine machine(assemble(source, config));
    VectorTrace sink;
    machine.run(sink);
    ASSERT_TRUE(machine.halted());

    for (unsigned r = 0; r < kNumRegs - 1; ++r) {
        EXPECT_EQ(machine.reg(r), model.regs[r])
            << "register r" << r << " (seed " << GetParam() << ")";
    }
    for (const auto &[addr, value] : model.memory) {
        EXPECT_EQ(machine.peekWord(addr), value)
            << "memory @" << std::hex << addr << " (seed "
            << std::dec << GetParam() << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));
