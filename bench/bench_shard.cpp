/**
 * @file
 * Set-sharded intra-trace replay vs the batched engine on the
 * workload the shard engine exists for: ONE long trace on ONE config,
 * where every other engine is strictly serial. The batched engine
 * replays the packed trace through the single cache on one thread;
 * the shard engine partitions the same records by set index and
 * replays the shards concurrently on an 8-worker pool, then merges
 * the per-shard counters.
 *
 * The bit-identity check is unconditional: the merged sharded
 * summary must equal the batched summary exactly (doubles compared
 * bitwise), and the process exits non-zero on any divergence — the
 * CI smoke run doubles as a determinism gate at reduced length.
 *
 * The >= 3x wall-clock gate is only meaningful with real cores to
 * shard across and a trace long enough that partitioning does not
 * dominate, so it is enforced when the machine can actually deliver
 * >= 8 hardware threads to this process (effectiveHardwareThreads():
 * the affinity mask, not the host's nominal core count — a container
 * pinned to one core must not be gated on an 8-way speedup) AND the
 * trace is >= 1M references; otherwise the run prints an explicit
 * "gate skipped" notice, the JSON records gate_enforced=false (e.g.
 * CI smoke at 20k refs, or core-starved containers) and only
 * determinism is gated.
 *
 * Prints a human-readable summary plus one machine-readable
 * "BENCH_JSON " line persisted to BENCH_shard.json.
 */

#include <chrono>
#include <cstdio>

#include "bench_reporter.hh"
#include "cache/cache_config.hh"
#include "multi/batch_replay.hh"
#include "multi/shard_replay.hh"
#include "trace/packed_trace.hh"
#include "util/str.hh"
#include "util/thread_pool.hh"
#include "workload/suites.hh"

using namespace occsim;
using bench::millisSince;

namespace {

constexpr unsigned kThreads = 8;

} // namespace

int
main()
{
    const Suite suite = pdp11Suite();
    const std::uint64_t refs = defaultTraceLength();

    // A sector config (sub < block): shard-eligible but never
    // single-pass eligible, so the batched engine is the honest
    // baseline. 16 KB / 32 B blocks / 4-way = 128 sets >= 8 shards.
    CacheConfig config =
        makeConfig(16384, 32, 8, suite.profile.wordSize);
    config.fetch = FetchPolicy::LoadForward;

    ThreadPool pool(kThreads);
    const std::uint32_t shards = planShardCount(config, pool.size());

    std::printf("set-sharded replay benchmark: 1 trace (%s) x 1 "
                "config (%s), %llu refs, %u shards on %u threads\n",
                suite.traces[0].name.c_str(),
                config.fullName().c_str(),
                static_cast<unsigned long long>(refs), shards,
                pool.size());

    // Trace construction and packing are untimed (shared by both
    // engines); the set-index partition is timed as part of the
    // sharded run since the unsharded baseline never needs it.
    const auto trace = buildTraceShared(suite.traces[0], refs);
    const auto packed = packedTraceShared(trace);

    // Baseline: the batched engine, single thread, single config.
    const auto batch_start = std::chrono::steady_clock::now();
    BatchReplay batch({config});
    batch.run(*packed);
    const SweepResult batch_result = batch.results()[0];
    const double batch_ms = millisSince(batch_start);

    // Sharded: partition + concurrent shard replay + merge.
    const auto shard_start = std::chrono::steady_clock::now();
    ShardReplay engine(config, shards);
    const auto strace = shardedTraceShared(
        packed, engine.blockBits(), engine.shardBits(), 0);
    pool.parallelFor(shards, [&](std::size_t s) {
        engine.runShard(s, *strace);
    });
    const SweepResult shard_result = engine.result();
    const double shard_ms = millisSince(shard_start);

    const bool bit_identical =
        bench::identicalResults(batch_result, shard_result);
    const double speedup =
        shard_ms > 0.0 ? batch_ms / shard_ms : 0.0;

    std::uint64_t min_refs = engine.shardRefs(0);
    std::uint64_t max_refs = min_refs;
    for (std::uint32_t s = 1; s < shards; ++s) {
        min_refs = std::min(min_refs, engine.shardRefs(s));
        max_refs = std::max(max_refs, engine.shardRefs(s));
    }

    const unsigned hw = effectiveHardwareThreads();
    const bool gate_enforced = hw >= kThreads && refs >= 1000000;
    const bool gate_pass = !gate_enforced || speedup >= 3.0;

    std::printf("batched:  %.1f ms\nsharded:  %.1f ms\n"
                "speedup:  %.2fx (gate %s)\n"
                "shard refs: min %llu / max %llu\n"
                "bit-identical results: %s\n",
                batch_ms, shard_ms, speedup,
                gate_enforced
                    ? (gate_pass ? ">=3x pass" : ">=3x FAIL")
                    : "not enforced",
                static_cast<unsigned long long>(min_refs),
                static_cast<unsigned long long>(max_refs),
                bit_identical ? "yes" : "NO");
    if (!gate_enforced) {
        std::printf("gate skipped: %u effective hw thread%s, %llu "
                    "refs (needs >=%u threads and >=1M refs)\n",
                    hw, hw == 1 ? "" : "s",
                    static_cast<unsigned long long>(refs), kThreads);
    }

    return bench::finishBench(
        "shard",
        strfmt("{\"bench\":\"shard_replay\",\"trace\":\"%s\","
               "\"config\":\"%s\",\"refs\":%llu,\"shards\":%u,"
               "\"threads\":%u,"
               "\"batch_ms\":%.3f,\"shard_ms\":%.3f,"
               "\"speedup\":%.3f,\"min_shard_refs\":%llu,"
               "\"max_shard_refs\":%llu,\"bit_identical\":%s}",
               suite.traces[0].name.c_str(),
               config.fullName().c_str(),
               static_cast<unsigned long long>(refs), shards,
               pool.size(), batch_ms, shard_ms, speedup,
               static_cast<unsigned long long>(min_refs),
               static_cast<unsigned long long>(max_refs),
               bit_identical ? "true" : "false"),
        gate_enforced, bit_identical && gate_pass);
}
