/**
 * @file
 * Statistical sampling vs exact batched replay on the workload the
 * sampling engine exists for: a long trace priced over a whole
 * size x associativity grid, where every exact engine must touch all
 * N references per config. The sampling engine prices ~1/k of the
 * trace inside measurement units, functionally warms the rest at
 * Record=false kernel speed, and amortizes even that warming across
 * the grid through per-set LRU checkpoints (one warming pass per
 * block size, see multi/sample_replay.hh).
 *
 * Both engines run strictly serially — one thread, no pool — so the
 * headline number isolates the sampling change from thread-level
 * parallelism, and the bench is honest on single-core CI runners.
 *
 * Gates (full length only, refs >= 10M; the CI smoke run at 20k refs
 * checks the harness, not the physics):
 *   - wall-clock speedup over the batched engine >= 5x, and
 *   - suite-average relative miss-ratio error <= 1% per grid mean.
 * The CI-coverage gate (>= 90% of random cases inside the sampled
 * 95% interval, check/sample_check.hh) is enforced at EVERY length,
 * so the smoke run still gates the statistics, not just the
 * plumbing.
 *
 * Prints a human-readable summary plus one machine-readable
 * "BENCH_JSON " line persisted to BENCH_sample.json.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_reporter.hh"
#include "cache/cache_config.hh"
#include "check/sample_check.hh"
#include "multi/batch_replay.hh"
#include "multi/sample_replay.hh"
#include "trace/packed_trace.hh"
#include "util/str.hh"
#include "workload/suites.hh"

using namespace occsim;
using bench::millisSince;

namespace {

/**
 * Constant-set-count diagonals of the paper's size x associativity
 * plane at 16-byte blocks (sizes 128B-4KB), all LRU + demand +
 * write-allocate: every point is checkpoint-eligible AND every four
 * configs share one set count, so the twelve-config grid rides THREE
 * warm-row groups per trace — the live-point amortization at its
 * best-case geometry.
 *
 * The size range is deliberately capped where the suite still
 * produces healthy miss counts: an 8+ KB cache absorbs these
 * workloads almost entirely (a few hundred misses in 10M
 * references), and no sampling scheme can estimate a count that
 * small to 1% relative without pricing most of the trace — the error
 * gate would be measuring shot noise, not the engine.
 */
std::vector<CacheConfig>
setCountDiagonalGrid(std::uint32_t word_size)
{
    constexpr std::uint32_t kBlock = 16;
    std::vector<CacheConfig> configs;
    for (const std::uint32_t sets : {8u, 16u, 32u}) {
        for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
            CacheConfig config = makeConfig(sets * kBlock * assoc,
                                            kBlock, kBlock,
                                            word_size);
            config.assoc = assoc;
            configs.push_back(config);
        }
    }
    return configs;
}

} // namespace

int
main()
{
    const Suite suite = pdp11Suite();
    const auto configs = setCountDiagonalGrid(suite.profile.wordSize);
    const std::uint64_t refs = defaultTraceLength();

    // Units half the production default: same 1/16 measured
    // fraction, twice the observations, so bursty miss phases are
    // sampled finely enough for the 1% error gate.
    SampleSpec spec;
    spec.unitRefs = 2048;
    spec.intervalUnits = 16;
    spec.seed = 0x5a3bull;

    std::printf("sampling engine benchmark: %s suite, %zu traces x "
                "%zu configs (size x assoc diagonals, 16-byte "
                "blocks), %llu refs/trace, serial\n"
                "spec: unit %llu refs, interval %llu units, "
                "stratified\n",
                suite.profile.name.c_str(), suite.traces.size(),
                configs.size(),
                static_cast<unsigned long long>(refs),
                static_cast<unsigned long long>(spec.unitRefs),
                static_cast<unsigned long long>(spec.intervalUnits));

    // Per-config suite sums of the headline miss ratio, exact and
    // sampled, for the error gate. Traces are built, packed, run,
    // and released one at a time so peak memory is one trace.
    std::vector<double> exact_sum(configs.size(), 0.0);
    std::vector<double> sample_sum(configs.size(), 0.0);
    double batch_ms = 0.0;
    double sample_ms = 0.0;
    std::uint64_t units = 0;
    std::uint64_t measured_refs = 0;

    for (const WorkloadSpec &trace_spec : suite.traces) {
        const auto trace = buildTraceShared(trace_spec, refs);
        const auto packed = packedTraceShared(trace);

        // Exact baseline: the batched engine (packed trace +
        // specialized kernels), one thread.
        const auto batch_start = std::chrono::steady_clock::now();
        BatchReplay batch(configs);
        batch.run(*packed);
        const auto exact = batch.results();
        batch_ms += millisSince(batch_start);

        // Sampled: one warming pass per block family (here: one),
        // checkpoint-seeded unit replay per config.
        const auto sample_start = std::chrono::steady_clock::now();
        SampleReplay replay(configs, spec);
        replay.prepare(*packed, 0);
        for (std::size_t f = 0; f < replay.numWarmTasks(); ++f)
            replay.runWarmTask(f, *packed);
        for (std::size_t c = 0; c < replay.numMeasureTasks(); ++c)
            replay.runMeasureTask(c, *packed);
        const auto sampled = replay.results();
        sample_ms += millisSince(sample_start);

        units += replay.units().size();
        measured_refs += replay.measuredRefs();
        for (std::size_t c = 0; c < configs.size(); ++c) {
            exact_sum[c] += exact[c].missRatio;
            sample_sum[c] += sampled[c].sampled.missRatio.mean;
        }

        // Keep peak memory at one resident trace (the cache would
        // otherwise hold every suite trace at ~16 B/reference).
        clearTraceCache();
    }

    // Error gate: relative error of the suite-average miss ratio,
    // per config, averaged (and maxed) over the grid.
    double rel_sum = 0.0;
    double rel_max = 0.0;
    std::printf("%-24s %12s %12s %8s\n", "config", "exact",
                "sampled", "rel err");
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const double exact = exact_sum[c] / suite.traces.size();
        const double estimate = sample_sum[c] / suite.traces.size();
        const double rel =
            exact > 0.0 ? std::abs(estimate - exact) / exact : 0.0;
        rel_sum += rel;
        rel_max = std::max(rel_max, rel);
        std::printf("%-24s %12.6f %12.6f %7.3f%%\n",
                    configs[c].fullName().c_str(), exact, estimate,
                    rel * 100.0);
    }
    const double rel_mean = rel_sum / configs.size();

    const double speedup =
        sample_ms > 0.0 ? batch_ms / sample_ms : 0.0;
    const bool gate_enforced = refs >= 10000000;
    const bool speed_pass = !gate_enforced || speedup >= 5.0;
    const bool error_pass = !gate_enforced || rel_mean <= 0.01;

    // CI-coverage gate: always enforced — the statistics must hold
    // at every length, and the coverage harness sizes its own traces.
    SampleCoverageOptions coverage_options;
    coverage_options.cases = 25;
    coverage_options.out = &std::cout;
    const SampleCoverageSummary coverage =
        runSampleCoverage(coverage_options);
    const bool coverage_pass = coverage.passed();

    std::printf("batched (exact): %.1f ms\nsampled:         %.1f ms\n"
                "speedup:         %.2fx (gate %s)\n"
                "miss-ratio rel err: mean %.4f%% / max %.4f%% "
                "(gate %s)\n"
                "units measured:  %llu (%llu refs priced)\n"
                "CI coverage:     %.0f%% (gate %s)\n",
                batch_ms, sample_ms, speedup,
                gate_enforced
                    ? (speed_pass ? ">=5x pass" : ">=5x FAIL")
                    : "not enforced",
                rel_mean * 100.0, rel_max * 100.0,
                gate_enforced
                    ? (error_pass ? "<=1% pass" : "<=1% FAIL")
                    : "not enforced",
                static_cast<unsigned long long>(units),
                static_cast<unsigned long long>(measured_refs),
                coverage.coverage() * 100.0,
                coverage_pass ? ">=90% pass" : ">=90% FAIL");
    if (!gate_enforced) {
        std::printf("gate skipped: %llu refs/trace (speed and error "
                    "gates need >=10M)\n",
                    static_cast<unsigned long long>(refs));
    }

    const bool pass = speed_pass && error_pass && coverage_pass;
    return bench::finishBench(
        "sample",
        strfmt("{\"bench\":\"sample_replay\",\"suite\":\"%s\","
               "\"traces\":%zu,\"configs\":%zu,"
               "\"refs_per_trace\":%llu,\"threads\":1,"
               "\"unit_refs\":%llu,\"interval_units\":%llu,"
               "\"units\":%llu,\"measured_refs\":%llu,"
               "\"batch_ms\":%.3f,\"sample_ms\":%.3f,"
               "\"speedup\":%.3f,\"rel_err_mean\":%.6f,"
               "\"rel_err_max\":%.6f,\"coverage\":%.3f}",
               suite.profile.name.c_str(), suite.traces.size(),
               configs.size(),
               static_cast<unsigned long long>(refs),
               static_cast<unsigned long long>(spec.unitRefs),
               static_cast<unsigned long long>(spec.intervalUnits),
               static_cast<unsigned long long>(units),
               static_cast<unsigned long long>(measured_refs),
               batch_ms, sample_ms, speedup, rel_mean, rel_max,
               coverage.coverage()),
        gate_enforced, pass);
}
