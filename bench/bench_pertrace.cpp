/**
 * @file
 * Per-trace detail behind Table 7's unweighted averages: the paper
 * reports suite means; this bench prints the individual runs so the
 * spread (and which programs drive each mean) is visible — the same
 * role the per-trace rows of the authors' master's-report data
 * played.
 */

#include <iostream>

#include "harness/experiment.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;

namespace {

void
perTrace(std::ostream &os, Arch arch)
{
    const Suite suite = suiteFor(arch);
    const std::uint32_t word = suite.profile.wordSize;
    os << "---- " << suite.profile.name << " ----\n";

    // The paper's three headline design points.
    const std::vector<CacheConfig> configs = {
        makeConfig(64, 8, 8, word),
        makeConfig(256, 16, 8, word),
        makeConfig(1024, 16, 8, word),
    };
    const SuiteRun run = runSuite(suite, configs);

    TableWriter table({"trace", "64B 8,8", "256B 16,8", "1024B 16,8"});
    for (std::size_t t = 0; t < run.traceNames.size(); ++t) {
        table.addRow({run.traceNames[t],
                      strfmt("%.4f", run.perTrace[t][0].missRatio),
                      strfmt("%.4f", run.perTrace[t][1].missRatio),
                      strfmt("%.4f", run.perTrace[t][2].missRatio)});
    }
    table.addRow({"(average)",
                  strfmt("%.4f", run.average[0].missRatio),
                  strfmt("%.4f", run.average[1].missRatio),
                  strfmt("%.4f", run.average[2].missRatio)});
    table.print(os);

    // Spread: min/max across traces at 1024B.
    double lo = 1e9;
    double hi = -1e9;
    for (const auto &per : run.perTrace) {
        lo = std::min(lo, per[2].missRatio);
        hi = std::max(hi, per[2].missRatio);
    }
    os << strfmt("1024B spread: %.4f .. %.4f\n\n", lo, hi);
}

} // namespace

int
main()
{
    printBanner(std::cout, "Per-trace miss ratios behind the Table 7 "
                           "averages");
    for (const Arch arch : kAllArchs)
        perTrace(std::cout, arch);
    return 0;
}
