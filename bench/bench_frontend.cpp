/**
 * @file
 * Front-end experiments from Sections 2.2 and 2.3 of the paper:
 * instruction buffers (plain sequential vs branch-target-recognizing)
 * vs the minimum cache, and the RISC II remote program counter.
 */

#include <iostream>

#include "cache/cache.hh"
#include "cache/instr_buffer.hh"
#include "cache/remote_pc.hh"
#include "harness/experiment.hh"
#include "trace/filters.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;

namespace {

void
bufferComparison(std::ostream &os)
{
    printBanner(os, "Section 2.2: instruction buffers vs the minimum "
                    "cache (PDP-11 suite, instruction stream)");

    const Suite suite = pdp11Suite();

    double vax_hit = 0.0;
    double vax_traffic = 0.0;
    double cray_miss = 0.0;
    double cray_traffic = 0.0;
    double min_miss = 0.0;
    double min_traffic = 0.0;

    for (const WorkloadSpec &spec : suite.traces) {
        VectorTrace trace = buildTrace(spec);

        // VAX-11/780-style 8-byte sequential buffer.
        SequentialInstrBuffer vax(8, 2);
        trace.reset();
        vax.run(trace);
        vax_hit += vax.hitRatio();
        vax_traffic += vax.trafficRatio();

        // CRAY-1-style: 4 buffers x 128 bytes, recognizes targets.
        Cache cray(makeCrayStyleBuffer(4, 128, 2));
        trace.reset();
        KindFilter cray_stream(trace,
                               KindFilter::Select::InstructionsOnly);
        cray.run(cray_stream);
        cray_miss += cray.stats().missRatio();
        cray_traffic += cray.stats().trafficRatio();

        // The paper's 64-byte minimum cache (4,2).
        Cache minimum(makeConfig(64, 4, 2, 2));
        trace.reset();
        KindFilter min_stream(trace,
                              KindFilter::Select::InstructionsOnly);
        minimum.run(min_stream);
        min_miss += minimum.stats().missRatio();
        min_traffic += minimum.stats().trafficRatio();
    }
    const double n = static_cast<double>(suite.traces.size());

    TableWriter table({"front end", "size", "latency miss",
                       "traffic ratio"});
    table.addRow({"sequential buffer (VAX-11/780 style)", "8 B",
                  strfmt("%.4f", 1.0 - vax_hit / n),
                  strfmt("%.4f", vax_traffic / n)});
    table.addRow({"branch-target buffers (CRAY-1 style)", "512 B",
                  strfmt("%.4f", cray_miss / n),
                  strfmt("%.4f", cray_traffic / n)});
    table.addRow({"minimum cache 4,2 (this paper)", "64 B net",
                  strfmt("%.4f", min_miss / n),
                  strfmt("%.4f", min_traffic / n)});
    table.print(os);
    os << "(the tradeoff the paper describes: the plain buffer hides "
          "latency on straight-line runs but cannot reduce memory "
          "bytes — traffic >= 1 — while the tiny minimum cache cuts "
          "bus traffic in half; the CRAY-style target-recognizing "
          "buffers win both, at 8x the minimum cache's storage)\n\n";
}

void
remotePcStudy(std::ostream &os)
{
    printBanner(os, "Section 2.3: remote program counter "
                    "(next-instruction-address prediction)");

    const Suite suite = vax11Suite();
    TableWriter table({"predictor", "accuracy",
                       "relative access time"});

    double seq_acc = 0.0;
    double table_acc = 0.0;
    double table_time = 0.0;
    for (const WorkloadSpec &spec : suite.traces) {
        VectorTrace trace = buildTrace(spec);

        RemotePc sequential(0, 4);
        trace.reset();
        sequential.run(trace);
        seq_acc += sequential.accuracy();

        RemotePc predictor(256, 4);
        trace.reset();
        predictor.run(trace);
        table_acc += predictor.accuracy();
        table_time += predictor.relativeAccessTime();
    }
    const double n = static_cast<double>(suite.traces.size());
    table.addRow({"sequential only", strfmt("%.4f", seq_acc / n),
                  "-"});
    table.addRow({"with 256-entry target table",
                  strfmt("%.4f", table_acc / n),
                  strfmt("%.4f", table_time / n)});
    table.print(os);
    os << "(RISC II: 0.899 accuracy, 0.578 relative access time)\n\n";
}

} // namespace

int
main()
{
    bufferComparison(std::cout);
    remotePcStudy(std::cout);
    return 0;
}
