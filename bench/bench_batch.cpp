/**
 * @file
 * Direct-vs-batched wall-clock comparison on the paper's sector and
 * load-forward grid — exactly the configurations the single-pass
 * engine cannot take (sub-block < block, load-forward fetch), which
 * before the batched engine all fell back to per-reference
 * Cache::access simulation.
 *
 * Both engines run single-threaded on a private one-worker pool so
 * the headline number isolates the engine change (packed trace +
 * specialized kernels + config tiling) from PR 1's thread-level
 * parallelism. A bit-identity check between the two result sets makes
 * the CI smoke run double as a correctness gate: exit status is
 * non-zero if any result disagrees.
 *
 * Prints a human-readable summary plus one machine-readable JSON
 * line (prefix "BENCH_JSON ", persisted to BENCH_batch.json). Trace
 * generation is excluded from both timings; OCCSIM_TRACE_LEN applies
 * as usual.
 */

#include <chrono>
#include <cstdio>

#include "bench_reporter.hh"
#include "harness/experiment.hh"
#include "multi/parallel_sweep.hh"
#include "util/str.hh"
#include "workload/suites.hh"

using namespace occsim;
using bench::millisSince;

namespace {

/**
 * The sector/load-forward design points behind Figures 4-9: every
 * (block, sub-block) pair with sub < block at the paper's standard
 * 1024-byte net size, crossed with demand and load-forward fetch.
 * None are single-pass eligible, so Auto routes the whole grid to
 * the batched replay engine.
 */
std::vector<CacheConfig>
sectorLoadForwardGrid(std::uint32_t word_size)
{
    std::vector<CacheConfig> configs;
    for (const std::uint32_t block : {8u, 16u, 32u, 64u}) {
        for (std::uint32_t sub = std::max(2u, word_size); sub < block;
             sub *= 2) {
            for (const FetchPolicy fetch :
                 {FetchPolicy::Demand, FetchPolicy::LoadForward}) {
                CacheConfig config =
                    makeConfig(1024, block, sub, word_size);
                config.fetch = fetch;
                configs.push_back(config);
            }
        }
    }
    return configs;
}

} // namespace

int
main()
{
    const Suite suite = pdp11Suite();
    const auto configs = sectorLoadForwardGrid(suite.profile.wordSize);

    std::printf("batched replay engine benchmark: %s suite, "
                "%zu traces x %zu configs (sector/load-forward grid, "
                "net 1024), %llu refs/trace, single-threaded\n",
                suite.profile.name.c_str(), suite.traces.size(),
                configs.size(),
                static_cast<unsigned long long>(defaultTraceLength()));

    // Build every trace up front (untimed; shared read-only by both
    // engines). One worker: the comparison isolates the engine, not
    // the pool.
    const auto traces = buildSuiteTraces(suite);
    ThreadPool pool(1);

    // Reference: per-config direct Cache::access simulation.
    const auto direct_start = std::chrono::steady_clock::now();
    const auto direct_results = bench::sweepGrid(
        traces, configs, &pool, SweepEngine::DirectOnly);
    const double direct_ms = millisSince(direct_start);

    // Batched: packed trace decoded once per trace, specialized
    // kernels, config-tiled streaming (trace packing is inside the
    // timed region — it is part of the engine's real cost).
    const auto batch_start = std::chrono::steady_clock::now();
    const auto batch_results =
        bench::sweepGrid(traces, configs, &pool, SweepEngine::Auto);
    const double batch_ms = millisSince(batch_start);

    const bool bit_identical =
        bench::diffResultSets(direct_results, batch_results) == 0;

    const double speedup =
        batch_ms > 0.0 ? direct_ms / batch_ms : 0.0;
    std::printf("direct (per-config): %.1f ms\n"
                "batched:             %.1f ms\n"
                "speedup:             %.2fx\n"
                "bit-identical results: %s\n",
                direct_ms, batch_ms, speedup,
                bit_identical ? "yes" : "NO");

    return bench::finishBench(
        "batch",
        strfmt("{\"bench\":\"batch\",\"suite\":\"%s\","
               "\"traces\":%zu,\"configs\":%zu,"
               "\"refs_per_trace\":%llu,\"threads\":1,"
               "\"direct_ms\":%.3f,\"batch_ms\":%.3f,"
               "\"speedup\":%.3f,\"bit_identical\":%s}",
               suite.profile.name.c_str(), suite.traces.size(),
               configs.size(),
               static_cast<unsigned long long>(defaultTraceLength()),
               direct_ms, batch_ms, speedup,
               bit_identical ? "true" : "false"),
        /*gate_enforced=*/true, bit_identical);
}
