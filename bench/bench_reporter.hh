/**
 * @file
 * Shared plumbing of the timing benchmarks: wall-clock measurement,
 * the eight-field bitwise SweepResult comparison every bench gates
 * on, the nested result-set diff (with per-mismatch MISMATCH lines),
 * and the finishing move — emit the BENCH_JSON line (bench_json.hh)
 * and turn the gate verdict into the process exit status.
 *
 * Before this header each bench carried its own copy of millisSince
 * and the identical() comparison; six copies of a correctness
 * predicate is how one bench silently drifts when SweepResult grows
 * a field. The comparison lives here once, next to a static reminder
 * to extend it alongside the struct.
 */

#ifndef OCCSIM_BENCH_BENCH_REPORTER_HH
#define OCCSIM_BENCH_BENCH_REPORTER_HH

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hh"
#include "multi/sweep_api.hh"
#include "multi/sweep_runner.hh"
#include "util/thread_pool.hh"

namespace occsim::bench {

/** Milliseconds elapsed since @p start (steady clock). */
inline double
millisSince(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
}

/**
 * Suite sweep through the unified API; returns the per-trace result
 * grid (averaging skipped — benches diff and gate the raw grid).
 */
inline std::vector<std::vector<SweepResult>>
sweepGrid(const std::vector<std::shared_ptr<const VectorTrace>> &traces,
          const std::vector<CacheConfig> &configs,
          ThreadPool *pool = nullptr,
          SweepEngine engine = SweepEngine::Auto)
{
    SweepRequest request;
    request.traces = traces;
    request.configs = configs;
    request.pool = pool;
    request.engine = engine;
    request.wantAverage = false;
    return runSweep(request).perTrace;
}

/**
 * Bitwise equality of the exact-engine result fields (doubles
 * compared with ==, deliberately: the engines promise bit-identical
 * arithmetic, so any difference however small is a routing or kernel
 * bug). Sampling estimates are intentionally NOT compared — sampled
 * results are statistical and are gated on error bounds, not
 * identity.
 */
inline bool
identicalResults(const SweepResult &a, const SweepResult &b)
{
    return a.config == b.config && a.grossBytes == b.grossBytes &&
           a.missRatio == b.missRatio &&
           a.warmMissRatio == b.warmMissRatio &&
           a.trafficRatio == b.trafficRatio &&
           a.warmTrafficRatio == b.warmTrafficRatio &&
           a.nibbleTrafficRatio == b.nibbleTrafficRatio &&
           a.warmNibbleTrafficRatio == b.warmNibbleTrafficRatio;
}

/**
 * Diff two per-trace result sets, printing one MISMATCH line per
 * divergent (trace, config) cell. A shape difference (trace or
 * config count) is itself one mismatch.
 * @return total mismatches (0 = bit-identical).
 */
inline std::size_t
diffResultSets(const std::vector<std::vector<SweepResult>> &want,
               const std::vector<std::vector<SweepResult>> &got)
{
    if (want.size() != got.size()) {
        std::printf("MISMATCH: %zu vs %zu traces\n", want.size(),
                    got.size());
        return 1;
    }
    std::size_t mismatches = 0;
    for (std::size_t t = 0; t < want.size(); ++t) {
        if (want[t].size() != got[t].size()) {
            std::printf("MISMATCH trace %zu: %zu vs %zu configs\n", t,
                        want[t].size(), got[t].size());
            ++mismatches;
            continue;
        }
        for (std::size_t c = 0; c < want[t].size(); ++c) {
            if (!identicalResults(want[t][c], got[t][c])) {
                ++mismatches;
                std::printf("MISMATCH trace %zu config %s\n", t,
                            want[t][c].config.fullName().c_str());
            }
        }
    }
    return mismatches;
}

/**
 * Emit the bench's JSON line (stdout + BENCH_<name>.json) and
 * convert the gate verdict to the conventional exit status.
 *
 * Every bench's JSON gets a uniform metadata trailer appended here —
 * `hw_threads` (effectiveHardwareThreads(): the affinity mask, not
 * the host's nominal core count), `gate_enforced`, and `gate_pass` —
 * so tooling reading BENCH_*.json (occsim-report's bench table) never
 * has to special-case which bench recorded which field. Benches pass
 * their body WITHOUT those three keys.
 *
 * @param gate_enforced whether the bench's performance gate was
 *        armed on this run (false for reduced-length smoke runs or
 *        core-starved machines; correctness gates are always armed).
 * @param gate_pass the overall verdict — correctness AND any armed
 *        performance gates. This is the exit status: 0 when true.
 * @return 0 when @p gate_pass, 1 otherwise — `return
 *         finishBench(...)` is the last line of every bench's main().
 */
inline int
finishBench(const std::string &name, const std::string &json,
            bool gate_enforced, bool gate_pass)
{
    std::string line = json;
    if (!line.empty() && line.back() == '}') {
        char trailer[96];
        std::snprintf(trailer, sizeof trailer,
                      ",\"hw_threads\":%u,\"gate_enforced\":%s,"
                      "\"gate_pass\":%s}",
                      effectiveHardwareThreads(),
                      gate_enforced ? "true" : "false",
                      gate_pass ? "true" : "false");
        line.pop_back();
        line += trailer;
    }
    writeBenchJson(name, line);
    return gate_pass ? 0 : 1;
}

} // namespace occsim::bench

#endif // OCCSIM_BENCH_BENCH_REPORTER_HH
