/**
 * @file
 * Shared plumbing of the timing benchmarks: wall-clock measurement,
 * the eight-field bitwise SweepResult comparison every bench gates
 * on, the nested result-set diff (with per-mismatch MISMATCH lines),
 * and the finishing move — emit the BENCH_JSON line (bench_json.hh)
 * and turn the gate verdict into the process exit status.
 *
 * Before this header each bench carried its own copy of millisSince
 * and the identical() comparison; six copies of a correctness
 * predicate is how one bench silently drifts when SweepResult grows
 * a field. The comparison lives here once, next to a static reminder
 * to extend it alongside the struct.
 */

#ifndef OCCSIM_BENCH_BENCH_REPORTER_HH
#define OCCSIM_BENCH_BENCH_REPORTER_HH

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hh"
#include "multi/sweep_runner.hh"

namespace occsim::bench {

/** Milliseconds elapsed since @p start (steady clock). */
inline double
millisSince(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
}

/**
 * Bitwise equality of the exact-engine result fields (doubles
 * compared with ==, deliberately: the engines promise bit-identical
 * arithmetic, so any difference however small is a routing or kernel
 * bug). Sampling estimates are intentionally NOT compared — sampled
 * results are statistical and are gated on error bounds, not
 * identity.
 */
inline bool
identicalResults(const SweepResult &a, const SweepResult &b)
{
    return a.config == b.config && a.grossBytes == b.grossBytes &&
           a.missRatio == b.missRatio &&
           a.warmMissRatio == b.warmMissRatio &&
           a.trafficRatio == b.trafficRatio &&
           a.warmTrafficRatio == b.warmTrafficRatio &&
           a.nibbleTrafficRatio == b.nibbleTrafficRatio &&
           a.warmNibbleTrafficRatio == b.warmNibbleTrafficRatio;
}

/**
 * Diff two per-trace result sets, printing one MISMATCH line per
 * divergent (trace, config) cell. A shape difference (trace or
 * config count) is itself one mismatch.
 * @return total mismatches (0 = bit-identical).
 */
inline std::size_t
diffResultSets(const std::vector<std::vector<SweepResult>> &want,
               const std::vector<std::vector<SweepResult>> &got)
{
    if (want.size() != got.size()) {
        std::printf("MISMATCH: %zu vs %zu traces\n", want.size(),
                    got.size());
        return 1;
    }
    std::size_t mismatches = 0;
    for (std::size_t t = 0; t < want.size(); ++t) {
        if (want[t].size() != got[t].size()) {
            std::printf("MISMATCH trace %zu: %zu vs %zu configs\n", t,
                        want[t].size(), got[t].size());
            ++mismatches;
            continue;
        }
        for (std::size_t c = 0; c < want[t].size(); ++c) {
            if (!identicalResults(want[t][c], got[t][c])) {
                ++mismatches;
                std::printf("MISMATCH trace %zu config %s\n", t,
                            want[t][c].config.fullName().c_str());
            }
        }
    }
    return mismatches;
}

/**
 * Emit the bench's JSON line (stdout + BENCH_<name>.json) and
 * convert the gate verdict to the conventional exit status.
 * @return 0 when @p pass, 1 otherwise — `return finishBench(...)`
 * is the last line of every bench's main().
 */
inline int
finishBench(const std::string &name, const std::string &json,
            bool pass)
{
    writeBenchJson(name, json);
    return pass ? 0 : 1;
}

} // namespace occsim::bench

#endif // OCCSIM_BENCH_BENCH_REPORTER_HH
