/**
 * @file
 * Regenerates the RISC II instruction-cache size curve quoted in
 * Section 2.3 of the paper (512 -> 4096 bytes, direct-mapped,
 * 8-byte blocks, instruction stream only).
 */

#include <iostream>

#include "harness/figures.hh"

int
main()
{
    occsim::runRiscII(std::cout);
    return 0;
}
