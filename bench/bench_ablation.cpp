/**
 * @file
 * Ablation study for the design choices the paper fixes by fiat
 * (Section 3.1), regenerated on our substitute workloads:
 *
 *  1. Replacement policy: LRU vs FIFO vs Random (Strecker's
 *     observation that they perform comparably; the paper cites this
 *     as the justification for simulating only LRU).
 *  2. Associativity: 1/2/4/8-way (Strecker: gains flatten above 4).
 *  3. Load-forward variant: the paper's simple redundant-load scheme
 *     vs the optimized scheme that skips resident sub-blocks (the
 *     paper argued the difference is too small to justify the
 *     complexity — we measure it).
 *  4. Mixed vs split instruction/data caches (flagged as further
 *     study in the paper).
 *  5. Cold-start vs warm-start accounting.
 *  6. Miss classification (compulsory/capacity/conflict) across
 *     associativities — the mechanism behind ablation 2.
 *  7. Split I/D partition ratios at a fixed total budget.
 */

#include <iostream>

#include "cache/split_cache.hh"
#include "harness/experiment.hh"
#include "multi/miss_classifier.hh"
#include "trace/filters.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;

namespace {

void
replacementAblation(std::ostream &os)
{
    printBanner(os, "Ablation 1: replacement policy (PDP-11 suite, "
                    "1024B, 16,8, 4-way)");
    TableWriter table({"policy", "miss", "traffic"});
    for (const ReplacementPolicy policy :
         {ReplacementPolicy::LRU, ReplacementPolicy::FIFO,
          ReplacementPolicy::Random}) {
        CacheConfig config = makeConfig(1024, 16, 8, 2);
        config.replacement = policy;
        const SuiteRun run = runSuite(pdp11Suite(), {config});
        table.addRow({replacementPolicyName(policy),
                      fmtRatio(run.average[0].missRatio),
                      fmtRatio(run.average[0].trafficRatio)});
    }
    table.print(os);
    os << '\n';
}

void
associativityAblation(std::ostream &os)
{
    printBanner(os, "Ablation 2: associativity (PDP-11 suite, 1024B, "
                    "4-byte blocks, LRU)");
    std::vector<CacheConfig> configs;
    for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        CacheConfig config = makeConfig(1024, 4, 4, 2);
        config.assoc = assoc;
        configs.push_back(config);
    }
    const SuiteRun run = runSuite(pdp11Suite(), configs);
    TableWriter table({"assoc", "miss", "improvement"});
    double prev = 0.0;
    for (const SweepResult &result : run.average) {
        table.addRow({strfmt("%u-way", result.config.assoc),
                      fmtRatio(result.missRatio),
                      prev > 0.0
                          ? strfmt("%.1f%%", 100.0 * (1.0 -
                                                      result.missRatio /
                                                          prev))
                          : std::string("-")});
        prev = result.missRatio;
    }
    table.print(os);
    os << '\n';
}

void
loadForwardAblation(std::ostream &os)
{
    printBanner(os, "Ablation 3: redundant vs optimized load-forward "
                    "(Z8000 compiler traces, 256B)");
    std::vector<CacheConfig> configs;
    for (const FetchPolicy fetch :
         {FetchPolicy::Demand, FetchPolicy::LoadForward,
          FetchPolicy::LoadForwardOptimized}) {
        CacheConfig config = makeConfig(256, 16, 2, 2);
        config.fetch = fetch;
        configs.push_back(config);
    }
    const SuiteRun run = runSuite(z8000CompilerSuite(), configs);
    TableWriter table({"fetch policy", "miss", "traffic"});
    for (const SweepResult &result : run.average) {
        table.addRow({fetchPolicyName(result.config.fetch),
                      fmtRatio(result.missRatio),
                      fmtRatio(result.trafficRatio)});
    }
    table.print(os);
    os << '\n';
}

void
splitCacheAblation(std::ostream &os)
{
    printBanner(os, "Ablation 4: mixed vs split I/D caches "
                    "(PDP-11 suite, 1024B total, 16,8)");

    const Suite suite = pdp11Suite();
    const CacheConfig mixed = makeConfig(1024, 16, 8, 2);
    const CacheConfig half = makeConfig(512, 16, 8, 2);

    double mixed_miss = 0.0;
    double split_miss = 0.0;
    for (const WorkloadSpec &spec : suite.traces) {
        VectorTrace trace = buildTrace(spec);

        Cache mixed_cache(mixed);
        mixed_cache.run(trace);
        mixed_miss += mixed_cache.stats().missRatio();

        // Split: two half-size caches fed the partitioned stream;
        // the combined miss ratio weights each side by its share of
        // the references.
        trace.reset();
        KindFilter icache_stream(trace,
                                 KindFilter::Select::InstructionsOnly);
        Cache icache(half);
        icache.run(icache_stream);

        trace.reset();
        KindFilter dcache_stream(trace, KindFilter::Select::DataOnly);
        Cache dcache(half);
        dcache.run(dcache_stream);

        const double total =
            static_cast<double>(icache.stats().accesses() +
                                dcache.stats().accesses());
        split_miss += (static_cast<double>(icache.stats().misses()) +
                       static_cast<double>(dcache.stats().misses())) /
                      total;
    }
    const double n = static_cast<double>(suite.traces.size());

    TableWriter table({"organisation", "miss"});
    table.addRow({"mixed 1024B", fmtRatio(mixed_miss / n)});
    table.addRow({"split 512B I + 512B D", fmtRatio(split_miss / n)});
    table.print(os);
    os << '\n';
}

void
warmStartAblation(std::ostream &os)
{
    printBanner(os, "Ablation 5: cold- vs warm-start accounting "
                    "(Z8000 suite, 1024B, 16,8)");
    const CacheConfig config = makeConfig(1024, 16, 8, 2);
    const SuiteRun run = runSuite(z8000Suite(), {config});
    TableWriter table({"accounting", "miss", "traffic"});
    table.addRow({"cold start", fmtRatio(run.average[0].missRatio),
                  fmtRatio(run.average[0].trafficRatio)});
    table.addRow({"warm start", fmtRatio(run.average[0].warmMissRatio),
                  fmtRatio(run.average[0].warmTrafficRatio)});
    table.print(os);
    os << "(at 1M references the difference is tiny; the paper notes "
          "warm-start figures are slightly optimistic)\n\n";
}

void
missClassificationAblation(std::ostream &os)
{
    printBanner(os, "Ablation 6: miss classification vs associativity "
                    "(PDP-11 suite, 1024B, 16-byte blocks)");
    const Suite suite = pdp11Suite();
    TableWriter table({"assoc", "miss", "compulsory", "capacity",
                       "conflict", "conflict share"});
    for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        MissBreakdown total;
        for (const WorkloadSpec &spec : suite.traces) {
            VectorTrace trace = buildTrace(spec);
            CacheConfig config = makeConfig(1024, 16, 16, 2);
            config.assoc = assoc;
            MissClassifier classifier(config);
            classifier.processTrace(trace);
            const MissBreakdown &b = classifier.breakdown();
            total.refs += b.refs;
            total.misses += b.misses;
            total.compulsory += b.compulsory;
            total.capacity += b.capacity;
            total.conflict += b.conflict;
        }
        table.addRow({strfmt("%u-way", assoc),
                      strfmt("%.4f", total.missRatio()),
                      strfmt("%llu", (unsigned long long)total.compulsory),
                      strfmt("%llu", (unsigned long long)total.capacity),
                      strfmt("%llu", (unsigned long long)total.conflict),
                      strfmt("%.1f%%", 100.0 * total.conflictShare())});
    }
    table.print(os);
    os << "(conflict misses vanish by 4-way: why the paper fixed "
          "associativity at 4)\n\n";
}

void
splitRatioAblation(std::ostream &os)
{
    printBanner(os, "Ablation 7: mixed vs even I/D split across "
                    "budgets (PDP-11 suite, 16,8)");
    const Suite suite = pdp11Suite();
    TableWriter table({"budget", "organisation", "miss", "traffic"});

    for (const std::uint32_t total : {512u, 1024u, 2048u}) {
        const SuiteRun mixed_run =
            runSuite(suite, {makeConfig(total, 16, 8, 2)});
        table.addRow({strfmt("%uB", total), "mixed",
                      fmtRatio(mixed_run.average[0].missRatio),
                      fmtRatio(mixed_run.average[0].trafficRatio)});

        double miss = 0.0;
        double traffic = 0.0;
        for (const WorkloadSpec &spec : suite.traces) {
            VectorTrace trace = buildTrace(spec);
            SplitCache split(makeConfig(total / 2, 16, 8, 2),
                             makeConfig(total / 2, 16, 8, 2));
            split.run(trace);
            miss += split.missRatio();
            traffic += split.trafficRatio();
        }
        const double n = static_cast<double>(suite.traces.size());
        table.addRow({strfmt("%uB", total), "split I/D",
                      strfmt("%.4f", miss / n),
                      strfmt("%.4f", traffic / n)});
    }
    table.print(os);
    os << "(mixed wins at these sizes: dynamic sharing beats a "
          "static partition when the total is tiny - consistent with "
          "the paper deferring the split)\n\n";
}

} // namespace

int
main()
{
    replacementAblation(std::cout);
    associativityAblation(std::cout);
    loadForwardAblation(std::cout);
    splitCacheAblation(std::cout);
    warmStartAblation(std::cout);
    missClassificationAblation(std::cout);
    splitRatioAblation(std::cout);
    return 0;
}
