/**
 * @file
 * Telemetry overhead benchmark: quantifies the cost of the obs layer
 * hooks (see src/obs/telemetry.hh and DESIGN.md §11) in its three
 * regimes on bench_batch's sector/load-forward grid:
 *
 *   plain     — the same simulation loop with no hooks at all. This
 *               is what an OCCSIM_NO_TELEMETRY build of the engines
 *               would execute, measured without needing a second
 *               library build.
 *   disabled  — hooks compiled in, telemetry disabled (the default
 *               state of every occsim binary). Each stage hook is one
 *               relaxed atomic load.
 *   enabled   — hooks compiled in and recording (the OCCSIM_MANIFEST
 *               state).
 *
 * Hooks are placed at the same granularity the engines use: one stage
 * span plus two counter bumps per simulated chunk, never per
 * reference. The chunk size here (4096 refs) is deliberately SMALLER
 * than the engines' real spans (a whole tile / level / trace pass),
 * so the measured relative overhead is an upper bound on what the
 * engines see.
 *
 * Gate (exercised by the bench-smoke ctest tier): compiled-in-but-
 * disabled overhead must stay under 2% of the plain loop, with an
 * absolute-delta noise floor so sub-millisecond jitter on short smoke
 * runs cannot fail CI. Non-zero exit on violation.
 *
 * The same TU is also built with OCCSIM_NO_TELEMETRY (target
 * bench_obs_notelem) to prove the macros really compile out: there
 * the instrumented loop IS the plain loop.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_reporter.hh"
#include "cache/cache.hh"
#include "harness/experiment.hh"
#include "obs/telemetry.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

#if defined(OCCSIM_NO_TELEMETRY)
constexpr const char *kBenchName = "obs_notelem";
#else
constexpr const char *kBenchName = "obs";
#endif

/** Refs per instrumented span — finer than any real engine stage. */
constexpr std::size_t kChunk = 4096;

/** Timed repetitions per regime; best-of keeps scheduler noise out. */
constexpr int kReps = 3;

double
millisSince(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
}

/** bench_batch's grid: every sub < block sector point at net 1024,
 *  demand and load-forward — the direct-simulation workload. */
std::vector<CacheConfig>
sectorLoadForwardGrid(std::uint32_t word_size)
{
    std::vector<CacheConfig> configs;
    for (const std::uint32_t block : {8u, 16u, 32u, 64u}) {
        for (std::uint32_t sub = std::max(2u, word_size); sub < block;
             sub *= 2) {
            for (const FetchPolicy fetch :
                 {FetchPolicy::Demand, FetchPolicy::LoadForward}) {
                CacheConfig config =
                    makeConfig(1024, block, sub, word_size);
                config.fetch = fetch;
                configs.push_back(config);
            }
        }
    }
    return configs;
}

/** The un-instrumented reference loop. */
std::uint64_t
runGridPlain(const std::vector<std::shared_ptr<const VectorTrace>> &traces,
             const std::vector<CacheConfig> &configs)
{
    std::uint64_t accesses = 0;
    for (const auto &trace : traces) {
        const std::vector<MemRef> &refs = trace->refs();
        for (const CacheConfig &config : configs) {
            Cache cache(config);
            for (std::size_t base = 0; base < refs.size();
                 base += kChunk) {
                const std::size_t end =
                    std::min(refs.size(), base + kChunk);
                for (std::size_t i = base; i < end; ++i)
                    cache.access(refs[i]);
                accesses += end - base;
            }
        }
    }
    return accesses;
}

/** Identical loop with the engines' hook pattern per chunk. Under
 *  OCCSIM_NO_TELEMETRY the macros vanish and this compiles to
 *  runGridPlain. */
std::uint64_t
runGridInstrumented(
    const std::vector<std::shared_ptr<const VectorTrace>> &traces,
    const std::vector<CacheConfig> &configs)
{
    std::uint64_t accesses = 0;
    for (const auto &trace : traces) {
        const std::vector<MemRef> &refs = trace->refs();
        for (const CacheConfig &config : configs) {
            Cache cache(config);
            for (std::size_t base = 0; base < refs.size();
                 base += kChunk) {
                const std::size_t end =
                    std::min(refs.size(), base + kChunk);
                OCCSIM_TELEM_STAGE("bench.chunk");
                for (std::size_t i = base; i < end; ++i)
                    cache.access(refs[i]);
                OCCSIM_TELEM_COUNT("bench.chunk.refs", end - base);
                OCCSIM_TELEM_COUNT("bench.chunk.bytes",
                                   (end - base) * sizeof(MemRef));
                accesses += end - base;
            }
        }
    }
    return accesses;
}

template <typename Fn>
double
timeOnce(Fn &&fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return millisSince(start);
}

void
keepMin(double &best, double ms, int rep)
{
    if (rep == 0 || ms < best)
        best = ms;
}

} // namespace

int
main()
{
    const Suite suite = pdp11Suite();
    const auto configs = sectorLoadForwardGrid(suite.profile.wordSize);
    const auto traces = buildSuiteTraces(suite);

    std::uint64_t accesses = 0;
    for (const auto &trace : traces)
        accesses += trace->size() * configs.size();
    std::printf("telemetry overhead benchmark (%s): %zu traces x "
                "%zu configs, %llu cache accesses per pass, "
                "%zu-ref spans, best of %d\n",
                kBenchName, traces.size(), configs.size(),
                static_cast<unsigned long long>(accesses),
                kChunk, kReps);

    // Warm-up pass so page faults and first-touch allocation are not
    // charged to whichever regime runs first.
    runGridPlain(traces, configs);

    obs::Telemetry &telem = obs::telemetry();
    const bool was_enabled = telem.enabled();

    // The regimes are interleaved within each repetition (plain,
    // disabled, enabled, plain, ...) rather than timed in three
    // back-to-back phases: a slow period on the host — scheduler
    // preemption, a cgroup CPU-quota throttle window — then inflates
    // some repetition of EVERY regime instead of landing wholly on
    // one of them, and the per-regime minimum discards it. With
    // phase-at-a-time timing a single throttle window spanning one
    // phase reads as tens of percent of systematic "overhead".
    double plain_ms = 0.0, disabled_ms = 0.0, enabled_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        telem.setEnabled(false);
        keepMin(plain_ms,
                timeOnce([&] { runGridPlain(traces, configs); }), rep);
        keepMin(disabled_ms,
                timeOnce([&] { runGridInstrumented(traces, configs); }),
                rep);
        telem.setEnabled(true);
        keepMin(enabled_ms,
                timeOnce([&] { runGridInstrumented(traces, configs); }),
                rep);
    }
    telem.setEnabled(was_enabled);

    const double disabled_pct =
        plain_ms > 0.0 ? (disabled_ms - plain_ms) / plain_ms * 100.0
                       : 0.0;
    const double enabled_pct =
        plain_ms > 0.0 ? (enabled_ms - plain_ms) / plain_ms * 100.0
                       : 0.0;

    // Gate: disabled hooks under 2%, OR an absolute delta inside the
    // noise floor (short smoke runs finish in tens of ms, where a
    // single scheduler hiccup exceeds any realistic percentage).
    const double kGatePct = 2.0;
    const double kNoiseFloorMs = 5.0;
    const bool gate_ok = disabled_pct < kGatePct ||
                         (disabled_ms - plain_ms) < kNoiseFloorMs;

    std::printf("plain (no hooks):        %8.2f ms\n"
                "compiled-in, disabled:   %8.2f ms  (%+.2f%%)\n"
                "compiled-in, enabled:    %8.2f ms  (%+.2f%%)\n"
                "disabled-overhead gate (<%.0f%% or <%.0f ms): %s\n",
                plain_ms, disabled_ms, disabled_pct, enabled_ms,
                enabled_pct, kGatePct, kNoiseFloorMs,
                gate_ok ? "PASS" : "FAIL");

    obs::JsonWriter json;
    json.beginObject()
        .kv("bench", kBenchName)
        .kv("suite", suite.profile.name)
        .kv("traces", std::uint64_t{traces.size()})
        .kv("configs", std::uint64_t{configs.size()})
        .kv("accesses_per_pass", accesses)
        .kv("chunk_refs", std::uint64_t{kChunk})
        .kv("plain_ms", plain_ms)
        .kv("disabled_ms", disabled_ms)
        .kv("enabled_ms", enabled_ms)
        .kv("disabled_overhead_pct", disabled_pct)
        .kv("enabled_overhead_pct", enabled_pct)
        .endObject();
    return bench::finishBench(kBenchName, json.str(),
                              /*gate_enforced=*/true, gate_ok);
}
