/**
 * @file
 * Fused group replay vs the batched engine on the exact workload the
 * fused engine exists for: the paper's 28-config sector/load-forward
 * grid (every (block, sub-block) pair with sub < block at net 1024
 * bytes, crossed with demand and load-forward fetch). All 28 configs
 * share four FusedKeys — one per block size — so the fused engine
 * prices the whole grid in four trace passes where the batched engine
 * replays the packed trace 28 times.
 *
 * Both engines run single-threaded so the headline number isolates
 * the fusion itself (shared tag/replacement simulation + per-config
 * mask planes) from thread-level and shard-level parallelism, which
 * compose with it orthogonally.
 *
 * The bit-identity check is unconditional and gates the exit status
 * at every trace length: every fused result must equal the direct
 * per-config Cache simulation exactly (doubles compared bitwise), so
 * the CI smoke run doubles as a determinism gate. The >= 3x
 * wall-clock gate over the batched engine needs a trace long enough
 * that per-pass setup does not dominate, so it is enforced at >= 1M
 * references (no core requirement: both sides are single-threaded);
 * shorter runs record gate_enforced=false and gate identity alone.
 *
 * Prints a human-readable summary plus one machine-readable
 * "BENCH_JSON " line persisted to BENCH_fused.json.
 */

#include <chrono>
#include <cstdio>
#include <numeric>

#include "bench_reporter.hh"
#include "harness/experiment.hh"
#include "multi/batch_replay.hh"
#include "multi/fused_replay.hh"
#include "multi/parallel_sweep.hh"
#include "trace/packed_trace.hh"
#include "util/str.hh"
#include "util/thread_pool.hh"
#include "workload/suites.hh"

using namespace occsim;
using bench::millisSince;

namespace {

/** The sector/load-forward design points behind Figures 4-9 (same
 *  grid as bench_batch): sub < block at net size 1024, demand and
 *  load-forward fetch. Four block sizes -> four fused groups. */
std::vector<CacheConfig>
sectorLoadForwardGrid(std::uint32_t word_size)
{
    std::vector<CacheConfig> configs;
    for (const std::uint32_t block : {8u, 16u, 32u, 64u}) {
        for (std::uint32_t sub = std::max(2u, word_size); sub < block;
             sub *= 2) {
            for (const FetchPolicy fetch :
                 {FetchPolicy::Demand, FetchPolicy::LoadForward}) {
                CacheConfig config =
                    makeConfig(1024, block, sub, word_size);
                config.fetch = fetch;
                configs.push_back(config);
            }
        }
    }
    return configs;
}

} // namespace

int
main()
{
    const Suite suite = pdp11Suite();
    const auto configs = sectorLoadForwardGrid(suite.profile.wordSize);
    const std::uint64_t refs = defaultTraceLength();

    std::vector<std::size_t> all(configs.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    const auto groups = fusedGroups(configs, all);

    std::printf("fused replay benchmark: 1 trace (%s) x %zu configs "
                "(sector/load-forward grid, net 1024) in %zu fused "
                "groups, %llu refs, single-threaded\n",
                suite.traces[0].name.c_str(), configs.size(),
                groups.size(),
                static_cast<unsigned long long>(refs));

    // Trace construction and packing are untimed (shared read-only
    // by all three engines).
    const auto trace = buildTraceShared(suite.traces[0], refs);
    const auto packed = packedTraceShared(trace);
    const std::vector traces{trace};

    // Reference: per-config direct Cache::access simulation — the
    // ground truth the unconditional identity gate compares against.
    // One repetition: direct_ms is reported but not gated, and this
    // is by far the slowest engine.
    ThreadPool pool(1);
    const auto direct_start = std::chrono::steady_clock::now();
    const auto direct_results = bench::sweepGrid(
        traces, configs, &pool, SweepEngine::DirectOnly);
    const double direct_ms = millisSince(direct_start);

    // The two gated timings run best-of-kReps: both engines are
    // deterministic (every repetition reproduces the same results),
    // so the minimum measures the engine and the extra repetitions
    // absorb scheduler noise that would otherwise flip the ratio
    // gate either way.
    constexpr int kReps = 3;

    // Baseline: the batched engine, single thread — one decode of
    // the packed trace per config tile, 28 block-level simulations.
    double batch_ms = 0.0;
    std::vector<SweepResult> batch_results;
    for (int rep = 0; rep < kReps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        BatchReplay batch(configs);
        batch.run(*packed);
        batch_results = batch.results();
        const double ms = millisSince(start);
        if (rep == 0 || ms < batch_ms)
            batch_ms = ms;
    }

    // Fused: one block-level simulation per group; every member
    // rides the same pass behind its own valid-mask plane.
    double fused_ms = 0.0;
    std::vector<SweepResult> fused_results(configs.size());
    for (int rep = 0; rep < kReps; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        for (const auto &group : groups) {
            std::vector<CacheConfig> members;
            members.reserve(group.size());
            for (const std::size_t c : group)
                members.push_back(configs[c]);
            FusedReplay engine(members);
            engine.run(packed->data(), packed->size());
            for (std::size_t k = 0; k < group.size(); ++k)
                fused_results[group[k]] = engine.result(k);
        }
        const double ms = millisSince(start);
        if (rep == 0 || ms < fused_ms)
            fused_ms = ms;
    }

    std::size_t mismatches = 0;
    for (std::size_t c = 0; c < configs.size(); ++c) {
        if (!bench::identicalResults(direct_results[0][c],
                                     fused_results[c])) {
            ++mismatches;
            std::printf("MISMATCH fused config %s\n",
                        configs[c].fullName().c_str());
        }
        if (!bench::identicalResults(direct_results[0][c],
                                     batch_results[c])) {
            ++mismatches;
            std::printf("MISMATCH batch config %s\n",
                        configs[c].fullName().c_str());
        }
    }
    const bool bit_identical = mismatches == 0;

    const double speedup =
        fused_ms > 0.0 ? batch_ms / fused_ms : 0.0;
    const bool gate_enforced = refs >= 1000000;
    const bool gate_pass = !gate_enforced || speedup >= 3.0;

    std::printf("direct (per-config): %.1f ms\n"
                "batched:             %.1f ms\n"
                "fused (%zu passes):   %.1f ms\n"
                "speedup vs batched:  %.2fx (gate %s)\n"
                "bit-identical results: %s\n",
                direct_ms, batch_ms, groups.size(), fused_ms, speedup,
                gate_enforced
                    ? (gate_pass ? ">=3x pass" : ">=3x FAIL")
                    : "not enforced",
                bit_identical ? "yes" : "NO");
    if (!gate_enforced) {
        std::printf("gate skipped: %llu refs (speedup gate needs "
                    ">=1M)\n",
                    static_cast<unsigned long long>(refs));
    }

    return bench::finishBench(
        "fused",
        strfmt("{\"bench\":\"fused_replay\",\"trace\":\"%s\","
               "\"configs\":%zu,\"groups\":%zu,\"refs\":%llu,"
               "\"threads\":1,\"direct_ms\":%.3f,\"batch_ms\":%.3f,"
               "\"fused_ms\":%.3f,\"speedup\":%.3f,"
               "\"bit_identical\":%s}",
               suite.traces[0].name.c_str(), configs.size(),
               groups.size(),
               static_cast<unsigned long long>(refs), direct_ms,
               batch_ms, fused_ms, speedup,
               bit_identical ? "true" : "false"),
        gate_enforced, bit_identical && gate_pass);
}
