/**
 * @file
 * Direct-vs-single-pass wall-clock comparison for a full Table 1
 * size x associativity sweep: every power-of-two net size from 64 B
 * to 8 KB crossed with associativities 1/2/4/8 at the paper's
 * standard 8-byte block (sub-block == block), over every trace of
 * the PDP-11 suite.
 *
 * Both engines run on the same thread pool (OCCSIM_THREADS): the
 * direct engine as one task per (trace, config) — PR 1's
 * parallelism — and the fast path as one SinglePassEngine per trace
 * with one task per set-count level, pricing the whole grid in one
 * trace pass per level. A bit-identity check between the two result
 * sets makes the CI smoke run double as a correctness gate: exit
 * status is non-zero if any result disagrees.
 *
 * Prints a human-readable summary plus one machine-readable JSON
 * line (prefix "BENCH_JSON "). Trace generation is excluded from
 * both timings; OCCSIM_TRACE_LEN and OCCSIM_THREADS apply as usual.
 */

#include <chrono>
#include <cstdio>

#include "bench_reporter.hh"
#include "harness/experiment.hh"
#include "multi/parallel_sweep.hh"
#include "util/str.hh"
#include "workload/suites.hh"

using namespace occsim;
using bench::millisSince;

namespace {

std::vector<CacheConfig>
sizeAssocGrid(std::uint32_t word_size)
{
    constexpr std::uint32_t kBlock = 8;
    std::vector<CacheConfig> configs;
    for (std::uint32_t net = 64; net <= 8192; net *= 2) {
        for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
            CacheConfig config =
                makeConfig(net, kBlock, kBlock, word_size);
            config.assoc = assoc;
            configs.push_back(config);
        }
    }
    return configs;
}

} // namespace

int
main()
{
    const Suite suite = pdp11Suite();
    const auto configs = sizeAssocGrid(suite.profile.wordSize);
    const unsigned threads = globalThreadPool().size();

    std::printf("single-pass sweep engine benchmark: %s suite, "
                "%zu traces x %zu configs (Table 1 size x assoc "
                "grid, 8-byte blocks), %llu refs/trace, %u threads\n",
                suite.profile.name.c_str(), suite.traces.size(),
                configs.size(),
                static_cast<unsigned long long>(defaultTraceLength()),
                threads);

    // Build every trace up front (untimed; shared read-only by both
    // engines).
    const auto traces = buildSuiteTraces(suite);

    // Reference: the per-config direct engine (PR 1's parallel
    // grid), forced for every config.
    const auto direct_start = std::chrono::steady_clock::now();
    const auto direct_results = bench::sweepGrid(
        traces, configs, nullptr, SweepEngine::DirectOnly);
    const double direct_ms = millisSince(direct_start);

    // Fast path: every config here is single-pass eligible, so Auto
    // routes the whole grid to one engine per trace, one task per
    // set-count level.
    const auto fast_start = std::chrono::steady_clock::now();
    const auto fast_results = bench::sweepGrid(traces, configs);
    const double fast_ms = millisSince(fast_start);

    const bool bit_identical =
        bench::diffResultSets(direct_results, fast_results) == 0;

    const double speedup = fast_ms > 0.0 ? direct_ms / fast_ms : 0.0;
    std::printf("direct (per-config): %.1f ms\n"
                "single-pass:         %.1f ms\n"
                "speedup:             %.2fx\n"
                "bit-identical results: %s\n",
                direct_ms, fast_ms, speedup,
                bit_identical ? "yes" : "NO");

    return bench::finishBench(
        "single_pass",
        strfmt("{\"bench\":\"single_pass\","
               "\"suite\":\"%s\",\"traces\":%zu,\"configs\":%zu,"
               "\"refs_per_trace\":%llu,\"threads\":%u,"
               "\"direct_ms\":%.3f,\"fast_ms\":%.3f,"
               "\"speedup\":%.3f,\"bit_identical\":%s}",
               suite.profile.name.c_str(), suite.traces.size(),
               configs.size(),
               static_cast<unsigned long long>(defaultTraceLength()),
               threads, direct_ms, fast_ms, speedup,
               bit_identical ? "true" : "false"),
        /*gate_enforced=*/true, bit_identical);
}
