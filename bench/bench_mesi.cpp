/**
 * @file
 * Coherency-traffic sweep of the MESI engine: the three parallel
 * sharing workloads priced on 1-, 2- and 4-core scenarios of the
 * same 1 KB private cache, through the one public runSweep() entry
 * point.
 *
 * This bench is not a speedup race — a multicore scenario simulates
 * a different machine — so the headline numbers are the coherency
 * counters themselves (invalidations, upgrades, cache-to-cache
 * words, snoop flushes) as the core count scales, plus wall-clock
 * throughput per scenario. Its gates are correctness, enforced at
 * every length:
 *
 *   - the 1-core scenario must be bit-identical to the plain direct
 *     Cache over every trace (the anchor invariant of the scenario
 *     redesign), and
 *   - a bounded prefix of every (workload, cores) cell must agree
 *     counter-for-counter with the flat-snooping oracle
 *     (check/coherence_check.hh), and
 *   - the multicore cells must actually generate coherency traffic
 *     (a silent bus would mean the scenario routing quietly fell
 *     back to independent caches).
 *
 * Prints a human-readable table plus one machine-readable
 * "BENCH_JSON " line persisted to BENCH_mesi.json.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_reporter.hh"
#include "cache/cache.hh"
#include "check/coherence_check.hh"
#include "multi/sweep_api.hh"
#include "util/str.hh"
#include "workload/parallel.hh"
#include "workload/suites.hh"

using namespace occsim;
using bench::millisSince;

namespace {

constexpr std::uint32_t kTraceCores = 4;  ///< stamped core ids 0..3
constexpr std::uint64_t kOracleRefs = 30000;  ///< prefix per cell

/** Per-scenario aggregate over the workload suite. */
struct ScenarioRow
{
    double ms = 0.0;
    std::uint64_t refs = 0;
    double missSum = 0.0;
    CoherencySummary traffic;  ///< counters summed across traces
};

} // namespace

int
main()
{
    // One trace per sharing pattern, stamped with 4 core ids; the
    // engine reduces ids modulo the scenario's core count, so the
    // same bytes replay on every scenario (1/2/4 cores).
    ParallelWorkloadParams params;
    params.cores = kTraceCores;
    params.refsPerCore =
        std::max<std::uint64_t>(defaultTraceLength() / kTraceCores,
                                1000);
    params.wordSize = 2;
    params.seed = 0xbe5c0ull;

    std::vector<std::shared_ptr<const VectorTrace>> traces;
    std::vector<ParallelWorkloadKind> kinds = {
        ParallelWorkloadKind::SharedQueue,
        ParallelWorkloadKind::PartitionedSum,
        ParallelWorkloadKind::ProducerConsumerRing,
    };
    for (const ParallelWorkloadKind kind : kinds) {
        traces.push_back(std::make_shared<const VectorTrace>(
            makeParallelTrace(kind, params)));
    }

    CacheConfig config = makeConfig(1024, 16, 8, 2);
    config.write = WritePolicy::CopyBack;  // the MESI subset

    bool identical = true;

    // Anchor baseline: the plain direct Cache per trace.
    std::vector<SweepResult> direct_results;
    for (const auto &trace : traces) {
        Cache cache(config);
        for (const MemRef &ref : trace->refs())
            cache.access(ref);
        cache.finalizeResidencies();
        direct_results.push_back(summarizeCache(cache));
    }

    const std::uint32_t core_counts[] = {1, 2, 4};
    std::vector<ScenarioRow> rows;
    for (const std::uint32_t cores : core_counts) {
        SweepRequest request;
        request.traces = traces;
        request.configs = {config};
        request.scenario.cores = cores;
        request.wantAverage = false;
        request.label = strfmt("bench-mesi-%uc", cores);

        const auto start = std::chrono::steady_clock::now();
        const SweepReport report = runSweep(request);
        ScenarioRow row;
        row.ms = millisSince(start);
        row.refs = report.refs;
        for (std::size_t t = 0; t < traces.size(); ++t) {
            const SweepResult &result = report.perTrace[t][0];
            row.missSum += result.missRatio;
            if (cores == 1) {
                // The 1-core scenario IS the single-cache model.
                if (!bench::identicalResults(result,
                                             direct_results[t])) {
                    std::printf("MISMATCH: 1-core scenario vs direct "
                                "cache on %s\n",
                                traces[t]->name().c_str());
                    identical = false;
                }
            } else {
                row.traffic.busReads += result.coherency.busReads;
                row.traffic.busReadForOwnership +=
                    result.coherency.busReadForOwnership;
                row.traffic.busUpgrades +=
                    result.coherency.busUpgrades;
                row.traffic.invalidations +=
                    result.coherency.invalidations;
                row.traffic.cacheToCacheTransfers +=
                    result.coherency.cacheToCacheTransfers;
                row.traffic.c2cWords += result.coherency.c2cWords;
                row.traffic.snoopWritebackWords +=
                    result.coherency.snoopWritebackWords;
            }
        }
        rows.push_back(row);
    }

    // Multicore cells must communicate: dead counters would mean the
    // scenario silently degenerated to independent caches.
    for (std::size_t r = 1; r < rows.size(); ++r) {
        if (rows[r].traffic.invalidations == 0 ||
            rows[r].traffic.busUpgrades +
                    rows[r].traffic.busReadForOwnership ==
                0) {
            std::printf("MISMATCH: %u-core sweep produced no "
                        "coherency traffic\n",
                        core_counts[r]);
            identical = false;
        }
    }

    // Oracle gate: a bounded prefix of every (workload, cores) cell
    // through the coherent engine AND the flat-snooping oracle.
    for (std::size_t t = 0; t < traces.size(); ++t) {
        const std::vector<MemRef> &refs = traces[t]->refs();
        const std::vector<MemRef> prefix(
            refs.begin(),
            refs.begin() +
                std::min<std::size_t>(refs.size(), kOracleRefs));
        for (const std::uint32_t cores : {2u, 4u}) {
            ScenarioConfig scenario;
            scenario.cores = cores;
            const CoherenceCaseReport oracle = runCoherencyCase(
                scenario, config, prefix,
                parallelWorkloadName(kinds[t]));
            for (const std::string &line : oracle.diffs) {
                std::printf("MISMATCH %s x%u: %s\n",
                            parallelWorkloadName(kinds[t]), cores,
                            line.c_str());
                identical = false;
            }
        }
    }

    std::printf("%-8s %10s %10s %10s %10s %10s %12s %10s\n", "cores",
                "ms", "refs/ms", "miss", "inval", "upgrades",
                "c2c words", "flushes");
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const ScenarioRow &row = rows[r];
        std::printf("%-8u %10.1f %10.0f %10.4f %10llu %10llu %12llu "
                    "%10llu\n",
                    core_counts[r], row.ms,
                    row.ms > 0.0 ? row.refs / row.ms : 0.0,
                    row.missSum / traces.size(),
                    static_cast<unsigned long long>(
                        row.traffic.invalidations),
                    static_cast<unsigned long long>(
                        row.traffic.busUpgrades),
                    static_cast<unsigned long long>(
                        row.traffic.c2cWords),
                    static_cast<unsigned long long>(
                        row.traffic.snoopWritebackWords));
    }
    std::printf("\n%s\n", identical
                              ? "1-core anchor bit-identical; "
                                "oracle agrees on every cell"
                              : "COHERENCY GATE FAILED");

    return bench::finishBench(
        "mesi",
        strfmt("{\"bench\":\"mesi\",\"traces\":%zu,\"refs\":%llu,"
               "\"ms_1core\":%.3f,\"ms_2core\":%.3f,"
               "\"ms_4core\":%.3f,"
               "\"inval_2core\":%llu,\"inval_4core\":%llu,"
               "\"upgrades_4core\":%llu,\"c2c_words_4core\":%llu,"
               "\"snoop_wb_words_4core\":%llu,"
               "\"bit_identical\":%s}",
               traces.size(),
               static_cast<unsigned long long>(rows[0].refs),
               rows[0].ms, rows[1].ms, rows[2].ms,
               static_cast<unsigned long long>(
                   rows[1].traffic.invalidations),
               static_cast<unsigned long long>(
                   rows[2].traffic.invalidations),
               static_cast<unsigned long long>(
                   rows[2].traffic.busUpgrades),
               static_cast<unsigned long long>(
                   rows[2].traffic.c2cWords),
               static_cast<unsigned long long>(
                   rows[2].traffic.snoopWritebackWords),
               identical ? "true" : "false"),
        /*gate_enforced=*/true, identical);
}
