/**
 * @file
 * Regenerates the paper's Table 6. See DESIGN.md experiment
 * index and EXPERIMENTS.md for the paper-vs-measured comparison.
 */

#include <iostream>

#include "harness/paper_tables.hh"

int
main()
{
    occsim::runTable6(std::cout);
    return 0;
}
