/**
 * @file
 * Regenerates the series behind the paper's Figure 2. See DESIGN.md
 * experiment index and EXPERIMENTS.md for the comparison.
 */

#include <iostream>

#include "harness/figures.hh"

int
main()
{
    occsim::runFigure2(std::cout);
    return 0;
}
