/**
 * @file
 * Cost of the CrossCheck runtime verification mode: the Table 1
 * size x associativity sweep over the PDP-11 suite run with
 * SweepEngine::Auto (fast path only) and again with
 * SweepEngine::CrossCheck (fast path plus shadow direct simulation
 * of a sampled subset of the routed configs, verified bitwise after
 * every run). The run doubles as a correctness gate: a cross-check
 * divergence aborts the process, and this driver additionally
 * requires both modes to produce bit-identical result sets.
 *
 * Prints a human-readable summary plus one machine-readable JSON
 * line (prefix "BENCH_JSON "). Trace generation is excluded from
 * both timings; OCCSIM_TRACE_LEN and OCCSIM_THREADS apply as usual.
 */

#include <chrono>
#include <cstdio>

#include "bench_reporter.hh"
#include "harness/experiment.hh"
#include "multi/parallel_sweep.hh"
#include "util/str.hh"
#include "workload/suites.hh"

using namespace occsim;
using bench::millisSince;

namespace {

std::vector<CacheConfig>
sizeAssocGrid(std::uint32_t word_size)
{
    constexpr std::uint32_t kBlock = 8;
    std::vector<CacheConfig> configs;
    for (std::uint32_t net = 64; net <= 8192; net *= 2) {
        for (const std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
            CacheConfig config =
                makeConfig(net, kBlock, kBlock, word_size);
            config.assoc = assoc;
            configs.push_back(config);
        }
    }
    return configs;
}

} // namespace

int
main()
{
    const Suite suite = pdp11Suite();
    const auto configs = sizeAssocGrid(suite.profile.wordSize);
    const unsigned threads = globalThreadPool().size();

    std::printf("cross-check mode benchmark: %s suite, %zu traces x "
                "%zu configs, %llu refs/trace, %u threads\n",
                suite.profile.name.c_str(), suite.traces.size(),
                configs.size(),
                static_cast<unsigned long long>(defaultTraceLength()),
                threads);

    const auto traces = buildSuiteTraces(suite);

    const auto auto_start = std::chrono::steady_clock::now();
    const auto auto_results = bench::sweepGrid(traces, configs);
    const double auto_ms = millisSince(auto_start);

    // CrossCheck aborts the process on any divergence; surviving the
    // call is already a pass. Shadow count is reported per trace.
    ParallelSweepRunner probe(configs, nullptr,
                              SweepEngine::CrossCheck);
    const std::size_t shadows = probe.crossCheckCount();

    const auto checked_start = std::chrono::steady_clock::now();
    const auto checked_results = bench::sweepGrid(
        traces, configs, nullptr, SweepEngine::CrossCheck);
    const double checked_ms = millisSince(checked_start);

    const bool bit_identical =
        bench::diffResultSets(auto_results, checked_results) == 0;

    const double overhead =
        auto_ms > 0.0 ? checked_ms / auto_ms : 0.0;
    std::printf("auto:        %.1f ms\n"
                "cross-check: %.1f ms (%zu shadow configs/trace)\n"
                "overhead:    %.2fx\n"
                "bit-identical results: %s\n",
                auto_ms, checked_ms, shadows, overhead,
                bit_identical ? "yes" : "NO");

    return bench::finishBench(
        "crosscheck",
        strfmt("{\"bench\":\"crosscheck\","
               "\"suite\":\"%s\",\"traces\":%zu,\"configs\":%zu,"
               "\"refs_per_trace\":%llu,\"threads\":%u,"
               "\"shadows_per_trace\":%zu,"
               "\"auto_ms\":%.3f,\"checked_ms\":%.3f,"
               "\"overhead\":%.3f,\"bit_identical\":%s}",
               suite.profile.name.c_str(), suite.traces.size(),
               configs.size(),
               static_cast<unsigned long long>(defaultTraceLength()),
               threads, shadows, auto_ms, checked_ms, overhead,
               bit_identical ? "true" : "false"),
        /*gate_enforced=*/true, bit_identical);
}
