/**
 * @file
 * google-benchmark microbenchmarks for the simulator itself (an
 * engineering benchmark, not a paper experiment): cache access
 * throughput across geometries and policies, sweep-runner scaling,
 * VM trace-generation speed, and the Mattson stack analyzer.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "cache/cache.hh"
#include "multi/miss_classifier.hh"
#include "multi/stack_analyzer.hh"
#include "multi/sweep_runner.hh"
#include "trace/packed_trace.hh"
#include "trace/trace_file.hh"
#include "vm/machine.hh"
#include "vm/program_library.hh"
#include "workload/synthetic.hh"

using namespace occsim;

namespace {

/** A shared medium-locality trace for the cache benchmarks. */
const VectorTrace &
benchTrace()
{
    static const VectorTrace trace = [] {
        SyntheticParams params;
        params.seed = 7;
        return makeSyntheticTrace(params, 200000, "bench");
    }();
    return trace;
}

void
BM_CacheAccess(benchmark::State &state)
{
    const auto block = static_cast<std::uint32_t>(state.range(0));
    const auto sub = static_cast<std::uint32_t>(state.range(1));
    const VectorTrace &trace = benchTrace();
    for (auto _ : state) {
        Cache cache(makeConfig(1024, block, sub, 2));
        for (const MemRef &ref : trace.refs())
            benchmark::DoNotOptimize(cache.access(ref));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

/** The historical sweep inner loop: one virtual TraceSource::next()
 *  call plus one runtime-dispatched access() per reference. */
void
BM_CacheAccessVirtual(benchmark::State &state)
{
    const auto block = static_cast<std::uint32_t>(state.range(0));
    const auto sub = static_cast<std::uint32_t>(state.range(1));
    VectorTrace trace = benchTrace();
    for (auto _ : state) {
        Cache cache(makeConfig(1024, block, sub, 2));
        trace.reset();
        TraceSource &source = trace;
        MemRef ref;
        while (source.next(ref))
            benchmark::DoNotOptimize(cache.access(ref));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

/** The batched-engine inner loop: a flat packed span through the
 *  specialized kernel — same work as BM_CacheAccess minus the
 *  per-reference policy dispatch (and minus the virtual next() of
 *  BM_CacheAccessVirtual). Packing is done once, outside the timed
 *  region, as in a real sweep. */
void
BM_CacheReplayPacked(benchmark::State &state)
{
    const auto block = static_cast<std::uint32_t>(state.range(0));
    const auto sub = static_cast<std::uint32_t>(state.range(1));
    const PackedTrace packed(benchTrace());
    for (auto _ : state) {
        Cache cache(makeConfig(1024, block, sub, 2));
        cache.replayPacked(packed.data(), packed.size());
        benchmark::DoNotOptimize(cache.stats().misses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(packed.size()));
}

void
BM_CacheAccessLoadForward(benchmark::State &state)
{
    const VectorTrace &trace = benchTrace();
    for (auto _ : state) {
        CacheConfig config = makeConfig(1024, 16, 2, 2);
        config.fetch = FetchPolicy::LoadForward;
        Cache cache(config);
        for (const MemRef &ref : trace.refs())
            benchmark::DoNotOptimize(cache.access(ref));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_CacheReplayPackedLoadForward(benchmark::State &state)
{
    const PackedTrace packed(benchTrace());
    for (auto _ : state) {
        CacheConfig config = makeConfig(1024, 16, 2, 2);
        config.fetch = FetchPolicy::LoadForward;
        Cache cache(config);
        cache.replayPacked(packed.data(), packed.size());
        benchmark::DoNotOptimize(cache.stats().misses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(packed.size()));
}

void
BM_SequentialSweep(benchmark::State &state)
{
    const auto num_configs = static_cast<std::size_t>(state.range(0));
    std::vector<CacheConfig> configs;
    for (std::size_t i = 0; i < num_configs; ++i) {
        configs.push_back(makeConfig(64u << (i % 5), 16, 8, 2));
    }
    const VectorTrace &trace = benchTrace();
    for (auto _ : state) {
        std::uint64_t misses = 0;
        for (const CacheConfig &config : configs) {
            VectorTrace copy = trace;
            Cache cache(config);
            cache.run(copy);
            cache.finalizeResidencies();
            misses += cache.stats().misses();
        }
        benchmark::DoNotOptimize(misses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size() * num_configs));
}

void
BM_VmTraceGeneration(benchmark::State &state)
{
    Program program =
        assemble(progQuickSort(1024), MachineConfig::word16());
    for (auto _ : state) {
        VmTraceSource source(program, "qsort", true);
        VectorTrace trace = collect(source, 100000);
        benchmark::DoNotOptimize(trace.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 100000);
}

void
BM_StackAnalyzer(benchmark::State &state)
{
    const VectorTrace &trace = benchTrace();
    for (auto _ : state) {
        StackAnalyzer analyzer(16);
        analyzer.processTrace(trace);
        benchmark::DoNotOptimize(analyzer.missRatioForCapacity(64));
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

void
BM_CompressedTraceWrite(benchmark::State &state)
{
    const VectorTrace &trace = benchTrace();
    const std::string path = "/tmp/occsim_bench.otd";
    for (auto _ : state) {
        writeCompressedTrace(trace, path);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
    std::remove(path.c_str());
}

void
BM_CompressedTraceRead(benchmark::State &state)
{
    const VectorTrace &trace = benchTrace();
    const std::string path = "/tmp/occsim_bench_r.otd";
    writeCompressedTrace(trace, path);
    for (auto _ : state) {
        VectorTrace loaded = readTrace(path);
        benchmark::DoNotOptimize(loaded.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
    std::remove(path.c_str());
}

void
BM_MissClassifier(benchmark::State &state)
{
    const VectorTrace &trace = benchTrace();
    for (auto _ : state) {
        MissClassifier classifier(makeConfig(1024, 16, 16, 2));
        classifier.processTrace(trace);
        benchmark::DoNotOptimize(classifier.breakdown().misses);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(trace.size()));
}

BENCHMARK(BM_CacheAccess)
    ->Args({16, 16})
    ->Args({16, 8})
    ->Args({16, 2})
    ->Args({64, 8});
BENCHMARK(BM_CacheAccessVirtual)
    ->Args({16, 16})
    ->Args({16, 8})
    ->Args({16, 2})
    ->Args({64, 8});
BENCHMARK(BM_CacheReplayPacked)
    ->Args({16, 16})
    ->Args({16, 8})
    ->Args({16, 2})
    ->Args({64, 8});
BENCHMARK(BM_CacheAccessLoadForward);
BENCHMARK(BM_CacheReplayPackedLoadForward);
BENCHMARK(BM_SequentialSweep)->Arg(1)->Arg(8)->Arg(32);
BENCHMARK(BM_VmTraceGeneration);
BENCHMARK(BM_StackAnalyzer);
BENCHMARK(BM_CompressedTraceWrite);
BENCHMARK(BM_CompressedTraceRead);
BENCHMARK(BM_MissClassifier);

} // namespace

BENCHMARK_MAIN();
