// This TU intentionally exercises the legacy sweep entry points.
#define OCCSIM_ALLOW_DEPRECATED 1

/**
 * @file
 * Sequential-vs-parallel wall-clock comparison for a full Table 1
 * suite sweep: the paper's 1024-byte design grid over every trace of
 * the PDP-11 suite, run once on the historical single-threaded
 * SweepRunner and once on the parallel engine, with a bit-identity
 * check between the two result sets.
 *
 * Prints a human-readable summary plus one machine-readable JSON line
 * (prefix "BENCH_JSON ") for the benchmark trajectory. Exit status is
 * non-zero if the engines disagree, so the CI smoke run doubles as a
 * determinism gate.
 *
 * Trace generation is excluded from both timings (traces are built
 * once, shared, before the clocks start); OCCSIM_TRACE_LEN and
 * OCCSIM_THREADS apply as usual.
 */

#include <chrono>
#include <cstdio>

#include "bench_json.hh"
#include "harness/experiment.hh"
#include "multi/parallel_sweep.hh"
#include "util/str.hh"
#include "workload/suites.hh"

using namespace occsim;

namespace {

double
millisSince(std::chrono::steady_clock::time_point start)
{
    const auto elapsed = std::chrono::steady_clock::now() - start;
    return std::chrono::duration<double, std::milli>(elapsed).count();
}

bool
identical(const SweepResult &a, const SweepResult &b)
{
    return a.config == b.config && a.grossBytes == b.grossBytes &&
           a.missRatio == b.missRatio &&
           a.warmMissRatio == b.warmMissRatio &&
           a.trafficRatio == b.trafficRatio &&
           a.warmTrafficRatio == b.warmTrafficRatio &&
           a.nibbleTrafficRatio == b.nibbleTrafficRatio &&
           a.warmNibbleTrafficRatio == b.warmNibbleTrafficRatio;
}

} // namespace

int
main()
{
    const Suite suite = pdp11Suite();
    const auto configs = paperGrid(1024, suite.profile.wordSize);
    const unsigned threads = globalThreadPool().size();

    std::printf("parallel sweep engine benchmark: %s suite, "
                "%zu traces x %zu configs (Table 1 grid, net 1024), "
                "%llu refs/trace, %u threads\n",
                suite.profile.name.c_str(), suite.traces.size(),
                configs.size(),
                static_cast<unsigned long long>(defaultTraceLength()),
                threads);

    // Build every trace up front (untimed; shared read-only by both
    // engines). Mutable copies for the sequential engine are also
    // made outside the timed regions.
    const auto traces = buildSuiteTraces(suite);
    std::vector<VectorTrace> seq_copies;
    seq_copies.reserve(traces.size());
    for (const auto &trace : traces)
        seq_copies.push_back(*trace);

    // Sequential engine: one single-threaded SweepRunner per trace.
    const auto seq_start = std::chrono::steady_clock::now();
    std::vector<std::vector<SweepResult>> seq_results;
    for (VectorTrace &copy : seq_copies) {
        copy.reset();
        SweepRunner runner(configs);
        runner.run(copy);
        seq_results.push_back(runner.results());
    }
    const double seq_ms = millisSince(seq_start);

    // Parallel engine: the full (trace, config) grid on the pool.
    const auto par_start = std::chrono::steady_clock::now();
    const auto par_results = runSweeps(traces, configs);
    const double par_ms = millisSince(par_start);

    bool bit_identical = seq_results.size() == par_results.size();
    for (std::size_t t = 0; bit_identical && t < seq_results.size();
         ++t) {
        bit_identical = seq_results[t].size() == par_results[t].size();
        for (std::size_t c = 0;
             bit_identical && c < seq_results[t].size(); ++c) {
            bit_identical = identical(seq_results[t][c],
                                      par_results[t][c]);
        }
    }

    const double speedup = par_ms > 0.0 ? seq_ms / par_ms : 0.0;
    std::printf("sequential: %.1f ms\nparallel:   %.1f ms\n"
                "speedup:    %.2fx\nbit-identical results: %s\n",
                seq_ms, par_ms, speedup,
                bit_identical ? "yes" : "NO");

    bench::writeBenchJson(
        "parallel",
        strfmt("{\"bench\":\"parallel_sweep\","
               "\"suite\":\"%s\",\"traces\":%zu,\"configs\":%zu,"
               "\"refs_per_trace\":%llu,\"threads\":%u,"
               "\"seq_ms\":%.3f,\"par_ms\":%.3f,\"speedup\":%.3f,"
               "\"bit_identical\":%s}",
               suite.profile.name.c_str(), suite.traces.size(),
               configs.size(),
               static_cast<unsigned long long>(defaultTraceLength()),
               threads, seq_ms, par_ms, speedup,
               bit_identical ? "true" : "false"));

    return bit_identical ? 0 : 1;
}
