/**
 * @file
 * Sequential-vs-parallel wall-clock comparison for a full Table 1
 * suite sweep: the paper's 1024-byte design grid over every trace of
 * the PDP-11 suite, run once on the historical single-threaded
 * sequential direct engine and once on the parallel engine, with a
 * bit-identity
 * check between the two result sets.
 *
 * The suite sweep is short enough that per-run setup (trace reset,
 * runner construction) is a visible fraction of the sequential time,
 * which understates thread scaling; a second LARGE-TRACE variant —
 * the same grid over one trace four times the configured length —
 * therefore measures steady-state replay, and both variants report
 * per-thread efficiency (speedup / threads) in the JSON.
 *
 * Prints a human-readable summary plus one machine-readable JSON line
 * (prefix "BENCH_JSON ") for the benchmark trajectory. Exit status is
 * non-zero if the engines disagree, so the CI smoke run doubles as a
 * determinism gate.
 *
 * Trace generation is excluded from both timings (traces are built
 * once, shared, before the clocks start); OCCSIM_TRACE_LEN and
 * OCCSIM_THREADS apply as usual.
 */

#include <chrono>
#include <cstdio>

#include "bench_reporter.hh"
#include "harness/experiment.hh"
#include "multi/parallel_sweep.hh"
#include "util/str.hh"
#include "workload/suites.hh"

using namespace occsim;
using bench::millisSince;

namespace {

/** One sequential-vs-parallel timing of @p configs over @p traces. */
struct Comparison
{
    double seqMs = 0.0;
    double parMs = 0.0;
    double speedup = 0.0;
    double efficiency = 0.0;  ///< speedup / threads
    bool bitIdentical = false;
};

Comparison
compareEngines(
    const std::vector<std::shared_ptr<const VectorTrace>> &traces,
    const std::vector<CacheConfig> &configs, unsigned threads)
{
    // Mutable copies for the sequential engine are made outside the
    // timed regions.
    std::vector<VectorTrace> seq_copies;
    seq_copies.reserve(traces.size());
    for (const auto &trace : traces)
        seq_copies.push_back(*trace);

    // Sequential engine: one direct runSingle per config per trace.
    const auto seq_start = std::chrono::steady_clock::now();
    std::vector<std::vector<SweepResult>> seq_results;
    for (VectorTrace &copy : seq_copies) {
        std::vector<SweepResult> results;
        results.reserve(configs.size());
        for (const CacheConfig &config : configs) {
            copy.reset();
            results.push_back(runSingle(config, copy));
        }
        seq_results.push_back(std::move(results));
    }
    Comparison cmp;
    cmp.seqMs = millisSince(seq_start);

    // Parallel engine: the full (trace, config) grid on the pool.
    const auto par_start = std::chrono::steady_clock::now();
    const auto par_results = bench::sweepGrid(traces, configs);
    cmp.parMs = millisSince(par_start);

    cmp.bitIdentical =
        bench::diffResultSets(seq_results, par_results) == 0;
    cmp.speedup = cmp.parMs > 0.0 ? cmp.seqMs / cmp.parMs : 0.0;
    cmp.efficiency = threads > 0 ? cmp.speedup / threads : 0.0;
    return cmp;
}

} // namespace

int
main()
{
    const Suite suite = pdp11Suite();
    const auto configs = paperGrid(1024, suite.profile.wordSize);
    const unsigned threads = globalThreadPool().size();

    std::printf("parallel sweep engine benchmark: %s suite, "
                "%zu traces x %zu configs (Table 1 grid, net 1024), "
                "%llu refs/trace, %u threads\n",
                suite.profile.name.c_str(), suite.traces.size(),
                configs.size(),
                static_cast<unsigned long long>(defaultTraceLength()),
                threads);

    // Build every trace up front (untimed; shared read-only by both
    // engines).
    const auto traces = buildSuiteTraces(suite);
    const Comparison sweep = compareEngines(traces, configs, threads);

    std::printf("suite sweep:\n"
                "  sequential: %.1f ms\n  parallel:   %.1f ms\n"
                "  speedup:    %.2fx (%.0f%% per-thread efficiency)\n"
                "  bit-identical results: %s\n",
                sweep.seqMs, sweep.parMs, sweep.speedup,
                sweep.efficiency * 100.0,
                sweep.bitIdentical ? "yes" : "NO");

    // Large-trace variant: one trace at 4x the configured length, so
    // steady-state replay dominates setup and the scaling number is
    // honest.
    const std::uint64_t large_refs = 4 * defaultTraceLength();
    const std::vector<std::shared_ptr<const VectorTrace>>
        large_traces = {buildTraceShared(suite.traces[0], large_refs)};
    const Comparison large =
        compareEngines(large_traces, configs, threads);

    std::printf("large trace (%s, %llu refs):\n"
                "  sequential: %.1f ms\n  parallel:   %.1f ms\n"
                "  speedup:    %.2fx (%.0f%% per-thread efficiency)\n"
                "  bit-identical results: %s\n",
                suite.traces[0].name.c_str(),
                static_cast<unsigned long long>(large_refs),
                large.seqMs, large.parMs, large.speedup,
                large.efficiency * 100.0,
                large.bitIdentical ? "yes" : "NO");

    const bool bit_identical =
        sweep.bitIdentical && large.bitIdentical;
    return bench::finishBench(
        "parallel",
        strfmt("{\"bench\":\"parallel_sweep\","
               "\"suite\":\"%s\",\"traces\":%zu,\"configs\":%zu,"
               "\"refs_per_trace\":%llu,\"threads\":%u,"
               "\"seq_ms\":%.3f,\"par_ms\":%.3f,\"speedup\":%.3f,"
               "\"efficiency\":%.3f,"
               "\"large_refs\":%llu,\"large_seq_ms\":%.3f,"
               "\"large_par_ms\":%.3f,\"large_speedup\":%.3f,"
               "\"large_efficiency\":%.3f,"
               "\"bit_identical\":%s}",
               suite.profile.name.c_str(), suite.traces.size(),
               configs.size(),
               static_cast<unsigned long long>(defaultTraceLength()),
               threads, sweep.seqMs, sweep.parMs, sweep.speedup,
               sweep.efficiency,
               static_cast<unsigned long long>(large_refs),
               large.seqMs, large.parMs, large.speedup,
               large.efficiency,
               bit_identical ? "true" : "false"),
        /*gate_enforced=*/true, bit_identical);
}
