/**
 * @file
 * Extension experiments — the studies the paper explicitly deferred
 * ("further studies should look at partitioning instruction and data
 * caches, prefetching, and write through vs copy back factors",
 * Section 3.1; task-switch effects, Section 3.3; transactional
 * busses, Section 4.3) — run on the same substitute workloads.
 */

#include <iostream>

#include "cache/cache.hh"
#include "harness/experiment.hh"
#include "mem/bus_model.hh"
#include "trace/filters.hh"
#include "trace/interleave.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;

namespace {

void
writePolicyStudy(std::ostream &os)
{
    printBanner(os, "Extension 1: write-through vs copy-back "
                    "(write-inclusive bus traffic)");

    TableWriter table({"arch", "config", "policy", "miss",
                       "bus traffic incl. writes"});
    for (const Arch arch : {Arch::PDP11, Arch::S370}) {
        const Suite suite = suiteFor(arch);
        const std::uint32_t word = suite.profile.wordSize;
        for (const WritePolicy policy :
             {WritePolicy::WriteThrough, WritePolicy::CopyBack}) {
            // One representative mid-size cache per architecture.
            CacheConfig config = makeConfig(1024, 16, 8, word);
            config.write = policy;

            double miss = 0.0;
            double total_traffic = 0.0;
            for (const WorkloadSpec &spec : suite.traces) {
                VectorTrace trace = buildTrace(spec);
                Cache cache(config);
                cache.run(trace);
                miss += cache.stats().missRatio();
                total_traffic += cache.stats().totalTrafficRatio();
            }
            const double n =
                static_cast<double>(suite.traces.size());
            table.addRow({suite.profile.name, config.shortName(),
                          writePolicyName(policy),
                          strfmt("%.4f", miss / n),
                          strfmt("%.4f", total_traffic / n)});
        }
    }
    table.print(os);
    os << "(copy-back coalesces re-writes; write-through pays per "
          "store but never writes back whole sub-blocks)\n\n";
}

void
prefetchStudy(std::ostream &os)
{
    printBanner(os, "Extension 2: sequential prefetch (Smith 1978, "
                    "the paper's ref [11]) vs demand and "
                    "load-forward");

    const Suite suite = z8000CompilerSuite();
    const std::uint32_t word = suite.profile.wordSize;

    std::vector<CacheConfig> configs;
    for (const FetchPolicy fetch :
         {FetchPolicy::Demand, FetchPolicy::PrefetchNextOnMiss,
          FetchPolicy::LoadForward}) {
        CacheConfig config = makeConfig(256, 16, 2, word);
        config.fetch = fetch;
        configs.push_back(config);
    }
    const SuiteRun run = runSuite(suite, configs);

    TableWriter table({"fetch policy", "miss", "traffic"});
    for (const SweepResult &result : run.average) {
        table.addRow({fetchPolicyName(result.config.fetch),
                      fmtRatio(result.missRatio),
                      fmtRatio(result.trafficRatio)});
    }
    table.print(os);
    os << "(prefetch crosses block boundaries, load-forward stops at "
          "them; both trade traffic for misses as Section 2.2 "
          "predicts)\n\n";
}

void
transactionalBusStudy(std::ostream &os)
{
    printBanner(os, "Extension 3: transactional bus a + b*w "
                    "(Section 4.3's general form): traffic-optimal "
                    "sub-block vs overhead a");

    const Suite suite = pdp11Suite();
    std::vector<CacheConfig> configs;
    for (const std::uint32_t sub : {2u, 4u, 8u, 16u, 32u})
        configs.push_back(makeConfig(512, 32, sub, 2));
    const SuiteRun run = runSuite(suite, configs);

    // Re-price the same runs under increasing per-transaction
    // overhead. (SweepResult keeps linear + nibble; for arbitrary a
    // we recompute from traffic = miss * w and burst size w.)
    TableWriter table({"overhead a", "best sub-block", "scaled traffic"});
    for (const double a : {0.0, 0.5, 1.0, 2.0, 4.0}) {
        const TransactionalBus bus(a, 1.0);
        double best_cost = 1e18;
        std::uint32_t best_sub = 0;
        for (const SweepResult &result : run.average) {
            const std::uint64_t words =
                result.config.subBlockSize / result.config.wordSize;
            const double cost =
                result.missRatio * bus.burstCost(words);
            if (cost < best_cost) {
                best_cost = cost;
                best_sub = result.config.subBlockSize;
            }
        }
        table.addRow({strfmt("%.1f", a), strfmt("%u", best_sub),
                      strfmt("%.4f", best_cost)});
    }
    table.print(os);
    os << "(as per-transaction overhead grows, bigger sub-blocks "
          "win — the generalisation of the nibble-mode result)\n\n";
}

void
taskSwitchStudy(std::ostream &os)
{
    printBanner(os, "Extension 4: task-switch effects (Section 3.3's "
                    "acknowledged optimism), PDP-11 suite pairs");

    const Suite suite = pdp11Suite();
    // Interleave consecutive trace pairs at several quanta.
    TableWriter table({"quantum (refs)", "miss (1024B 16,8)",
                       "vs solo average"});

    VectorTrace a = buildTrace(suite.traces[0]);
    VectorTrace b = buildTrace(suite.traces[3]);

    Cache solo_a(makeConfig(1024, 16, 8, 2));
    solo_a.run(a);
    Cache solo_b(makeConfig(1024, 16, 8, 2));
    solo_b.run(b);
    const double solo = (solo_a.stats().missRatio() +
                         solo_b.stats().missRatio()) / 2.0;

    for (const std::uint64_t quantum :
         {1000ull, 10000ull, 100000ull, 1000000ull}) {
        a.reset();
        b.reset();
        InterleaveSource mix({&a, &b}, quantum);
        Cache cache(makeConfig(1024, 16, 8, 2));
        cache.run(mix);

        // Era caches without address-space tags flush on every
        // switch: simulate by flushing at each quantum boundary.
        a.reset();
        b.reset();
        InterleaveSource flushed_mix({&a, &b}, quantum);
        Cache flushed(makeConfig(1024, 16, 8, 2));
        MemRef ref;
        std::uint64_t since_switch = 0;
        while (flushed_mix.next(ref)) {
            if (since_switch++ == quantum) {
                flushed.flush();
                since_switch = 1;
            }
            flushed.access(ref);
        }
        flushed.finalizeResidencies();

        table.addRow({strfmt("%llu", (unsigned long long)quantum),
                      strfmt("%.4f", cache.stats().missRatio()),
                      strfmt("%+.4f",
                             cache.stats().missRatio() - solo)});
        table.addRow({strfmt("%llu +flush",
                             (unsigned long long)quantum),
                      strfmt("%.4f", flushed.stats().missRatio()),
                      strfmt("%+.4f",
                             flushed.stats().missRatio() - solo)});
    }
    table.print(os);
    os << strfmt("(solo average %.4f; the paper argued the bias is "
                 "minor for small caches — measured here)\n\n",
                 solo);
}

void
compactionStudy(std::ostream &os)
{
    printBanner(os, "Extension 5: code compaction (Section 2.3: "
                    "RISC II half-word instructions cut code ~20%, "
                    "miss ratio ~27%)");

    const Suite suite = vax11Suite();
    TableWriter table({"code size", "I-miss ratio (512B direct, 8B "
                       "blocks)", "improvement"});

    double baseline = 0.0;
    for (const int pass : {0, 1}) {
        double miss = 0.0;
        for (const WorkloadSpec &spec : suite.traces) {
            VectorTrace trace = buildTrace(spec);
            trace.reset();
            KindFilter istream(trace,
                               KindFilter::Select::InstructionsOnly);
            CacheConfig config = makeConfig(512, 8, 8, 4);
            config.assoc = 1;
            Cache cache(config);
            if (pass == 0) {
                cache.run(istream);
            } else {
                CodeCompactionFilter compact(
                    istream, spec.profile.machine.codeBase, 4, 5);
                cache.run(compact);
            }
            miss += cache.stats().missRatio();
        }
        miss /= static_cast<double>(suite.traces.size());
        if (pass == 0) {
            baseline = miss;
            table.addRow({"standard", strfmt("%.4f", miss), "-"});
        } else {
            table.addRow({"compacted (4/5)", strfmt("%.4f", miss),
                          strfmt("%.1f%%",
                                 100.0 * (1.0 - miss / baseline))});
        }
    }
    table.print(os);
    os << '\n';
}

} // namespace

int
main()
{
    writePolicyStudy(std::cout);
    prefetchStudy(std::cout);
    transactionalBusStudy(std::cout);
    taskSwitchStudy(std::cout);
    compactionStudy(std::cout);
    return 0;
}
