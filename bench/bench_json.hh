/**
 * @file
 * BENCH_JSON emission shared by the timing benchmarks.
 *
 * Every timing bench reports one machine-readable JSON line. This
 * helper both prints it to stdout with the "BENCH_JSON " prefix (the
 * historical contract, greppable from smoke logs) and persists it to
 * BENCH_<name>.json at the repo root so the perf trajectory is
 * tracked across PRs by plain files under version control.
 *
 * Serialization and file IO ride on the shared observability JSON
 * layer (src/obs/json.hh): benches can build their line with
 * obs::JsonWriter instead of hand-concatenated strings, and the
 * persisted bytes go through the same obs::writeTextFile used by run
 * manifests.
 */

#ifndef OCCSIM_BENCH_BENCH_JSON_HH
#define OCCSIM_BENCH_BENCH_JSON_HH

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json.hh"

namespace occsim::bench {

/** Print @p json with the BENCH_JSON prefix and write it (plus a
 *  trailing newline) to BENCH_<name>.json at the repo root —
 *  or under $OCCSIM_BENCH_DIR when set, which the smoke tests use so
 *  reduced-length CI runs never clobber the committed full-length
 *  numbers. */
inline void
writeBenchJson(const std::string &name, const std::string &json)
{
    std::printf("BENCH_JSON %s\n", json.c_str());
#ifdef OCCSIM_REPO_ROOT
    const char *dir = std::getenv("OCCSIM_BENCH_DIR");
    const std::string path = std::string(dir != nullptr
                                             ? dir
                                             : OCCSIM_REPO_ROOT) +
                             "/BENCH_" + name + ".json";
    if (!obs::writeTextFile(path, json + "\n")) {
        std::fprintf(stderr, "warning: cannot write %s\n",
                     path.c_str());
    }
#endif
}

/** Overload for a finished obs::JsonWriter document. */
inline void
writeBenchJson(const std::string &name, const obs::JsonWriter &writer)
{
    writeBenchJson(name, writer.str());
}

} // namespace occsim::bench

#endif // OCCSIM_BENCH_BENCH_JSON_HH
