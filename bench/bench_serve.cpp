/**
 * @file
 * Sweep-server service bench: 1000 simulated concurrent clients
 * against one in-process SweepServer over a warm on-disk corpus.
 *
 * The clients are multiplexed over a worker-thread pool (each worker
 * plays its slice of clients back to back), which is how a real
 * daemon sees 1000 outstanding requests: far more clients than
 * threads. Eight distinct request shapes (two corpus traces x four
 * config grids) keep the result cache honest — every shape is warmed
 * once, so the measured phase is the server's steady state: cache
 * lookups, scheduling, serialization and streaming, not engine time.
 *
 * Three gates:
 *  - bit-identity (always enforced): every result frame of every
 *    client must equal the direct runSweep of the same cell exactly,
 *    and no request may fail or observe a malformed stream;
 *  - throughput: served cells/sec must beat the direct-runSweep
 *    aggregate for the same unique cells — a result cache that is
 *    slower than recomputation would be a bug;
 *  - p99 latency: the 99th-percentile request latency must stay
 *    under 50 ms — one slow client must not hide behind the mean.
 *
 * The throughput and latency gates are enforced only with >= 4
 * effective hardware threads and a full-length trace (like
 * bench_shard's speedup gate): CI smoke runs at 20k refs record the
 * numbers (gate_enforced=false) and gate bit-identity alone.
 *
 * Prints a human-readable summary plus one machine-readable
 * "BENCH_JSON " line persisted to BENCH_serve.json.
 */

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_reporter.hh"
#include "multi/sweep_api.hh"
#include "obs/json.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "util/thread_pool.hh"
#include "workload/suites.hh"

using namespace occsim;
using namespace occsim::serve;
using bench::millisSince;

namespace {

constexpr std::size_t kClients = 1000;
constexpr std::size_t kShapes = 8;
constexpr std::size_t kConfigsPerShape = 4;

/** Parse one result frame and compare it to the expected cell. */
bool
frameMatches(const std::string &frame,
             const std::vector<SweepResult> &expected)
{
    obs::JsonValue value;
    if (!obs::parseJson(frame, value))
        return false;
    const obs::JsonValue *index = value.find("config_index");
    const obs::JsonValue *result = value.find("result");
    if (index == nullptr || result == nullptr)
        return false;
    const std::size_t c = static_cast<std::size_t>(index->asU64());
    if (c >= expected.size())
        return false;
    SweepResult got;
    if (!parseResultJson(*result, got))
        return false;
    const SweepResult &want = expected[c];
    return got.grossBytes == want.grossBytes &&
           got.missRatio == want.missRatio &&
           got.warmMissRatio == want.warmMissRatio &&
           got.trafficRatio == want.trafficRatio &&
           got.warmTrafficRatio == want.warmTrafficRatio &&
           got.nibbleTrafficRatio == want.nibbleTrafficRatio &&
           got.warmNibbleTrafficRatio == want.warmNibbleTrafficRatio;
}

} // namespace

int
main()
{
    const Suite suite = pdp11Suite();
    const std::uint64_t refs = defaultTraceLength();
    const unsigned hw = effectiveHardwareThreads();

    // --- Corpus: two suite traces ingested into a throwaway dir. ---
    char pattern[] = "/tmp/occsim_bench_serve_XXXXXX";
    if (::mkdtemp(pattern) == nullptr)
        fatal("mkdtemp failed");
    const std::string dir = pattern;

    const auto trace0 = buildTraceShared(suite.traces[0], refs);
    const auto trace1 = buildTraceShared(suite.traces[1], refs);

    ServeOptions options;
    options.corpusDir = dir;
    options.dispatchers = std::max(2u, hw / 2);
    SweepServer server(options);
    const std::string hash0 = server.corpus().ingest(*trace0);
    const std::string hash1 = server.corpus().ingest(*trace1);
    if (hash0.empty() || hash1.empty())
        fatal("corpus ingest failed");

    // --- Request shapes: 2 traces x 4 config grids. ---
    std::vector<WireRequest> shapes(kShapes);
    std::vector<std::vector<SweepResult>> expected(kShapes);
    for (std::size_t s = 0; s < kShapes; ++s) {
        WireRequest &shape = shapes[s];
        shape.op = "sweep";
        shape.traces = {s % 2 == 0 ? hash0 : hash1};
        for (std::size_t c = 0; c < kConfigsPerShape; ++c) {
            shape.configs.push_back(
                makeConfig(256u << (s / 2 + c), 16, 16,
                           suite.profile.wordSize));
        }
        shape.label = strfmt("bench_serve:%zu", s);
    }

    std::printf("sweep-server bench: %zu clients x %zu shapes "
                "(%zu configs each), %llu refs/trace, %u dispatchers, "
                "%u hw threads\n",
                kClients, kShapes, kConfigsPerShape,
                static_cast<unsigned long long>(refs),
                options.dispatchers, hw);

    // --- Baseline: direct runSweep of every shape's cells. ---
    const auto direct_start = std::chrono::steady_clock::now();
    for (std::size_t s = 0; s < kShapes; ++s) {
        SweepRequest direct;
        direct.traces = {s % 2 == 0 ? trace0 : trace1};
        direct.configs = shapes[s].configs;
        direct.wantAverage = false;
        expected[s] = runSweep(direct).perTrace[0];
    }
    const double direct_ms = millisSince(direct_start);

    // --- Warm phase: one pass over every shape fills the cache. ---
    for (const WireRequest &shape : shapes) {
        if (!server.execute(shape,
                            [](const std::string &) { return true; }))
            fatal("warm request rejected");
    }

    // --- Measured phase: kClients requests over a worker pool. ---
    const unsigned workers = std::min(16u, std::max(4u, hw));
    std::vector<double> latency(kClients, 0.0);
    std::vector<std::uint8_t> client_ok(kClients, 0);
    std::atomic<std::size_t> next{0};

    const auto serve_start = std::chrono::steady_clock::now();
    {
        std::vector<std::thread> threads;
        for (unsigned w = 0; w < workers; ++w) {
            threads.emplace_back([&] {
                for (;;) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= kClients)
                        return;
                    const WireRequest &shape = shapes[i % kShapes];
                    const auto start =
                        std::chrono::steady_clock::now();
                    std::size_t results = 0;
                    bool clean = true;
                    const bool accepted = server.execute(
                        shape, [&](const std::string &frame) {
                            if (frame.find("\"type\":\"result\"") !=
                                std::string::npos) {
                                ++results;
                                clean = clean &&
                                        frameMatches(
                                            frame,
                                            expected[i % kShapes]);
                            }
                            return true;
                        });
                    latency[i] = millisSince(start);
                    client_ok[i] = accepted && clean &&
                                   results == kConfigsPerShape;
                }
            });
        }
        for (std::thread &thread : threads)
            thread.join();
    }
    const double serve_ms = millisSince(serve_start);

    // --- Verdicts. ---
    std::size_t failures = 0;
    for (std::size_t i = 0; i < kClients; ++i)
        failures += client_ok[i] == 0;

    std::vector<double> sorted = latency;
    std::sort(sorted.begin(), sorted.end());
    const double p50 = sorted[kClients / 2];
    const double p99 = sorted[(kClients * 99) / 100];

    const double served_cells =
        static_cast<double>(kClients * kConfigsPerShape);
    const double baseline_cells =
        static_cast<double>(kShapes * kConfigsPerShape);
    const double served_rate =
        serve_ms > 0.0 ? served_cells / (serve_ms / 1000.0) : 0.0;
    const double direct_rate =
        direct_ms > 0.0 ? baseline_cells / (direct_ms / 1000.0) : 0.0;

    const ServeStats stats = server.stats();
    const bool gate_enforced = hw >= 4 && refs >= 1000000;
    const bool throughput_pass =
        !gate_enforced || served_rate >= direct_rate;
    const bool latency_pass = !gate_enforced || p99 <= 50.0;
    const bool identical = failures == 0;

    std::printf(
        "direct:   %.1f ms for %zu baseline cells (%.0f cells/s)\n"
        "served:   %.1f ms for %zu requests (%.0f cells/s)\n"
        "latency:  p50 %.3f ms, p99 %.3f ms (gate %s)\n"
        "cache:    %llu hits / %llu misses, %zu entries\n"
        "identity: %zu/%zu clients bit-identical\n",
        direct_ms, kShapes * kConfigsPerShape, direct_rate, serve_ms,
        kClients, served_rate, p50, p99,
        gate_enforced ? (latency_pass && throughput_pass ? "pass"
                                                         : "FAIL")
                      : "not enforced",
        static_cast<unsigned long long>(stats.cacheHits),
        static_cast<unsigned long long>(stats.cacheMisses),
        stats.cacheEntries, kClients - failures, kClients);
    if (!gate_enforced) {
        std::printf("gates skipped: %u effective hw thread%s, %llu "
                    "refs (needs >=4 threads and >=1M refs)\n",
                    hw, hw == 1 ? "" : "s",
                    static_cast<unsigned long long>(refs));
    }

    server.stop();
    const std::string cleanup = "rm -rf " + dir;
    [[maybe_unused]] const int rc = std::system(cleanup.c_str());

    return bench::finishBench(
        "serve",
        strfmt("{\"bench\":\"serve\",\"clients\":%zu,\"shapes\":%zu,"
               "\"configs_per_shape\":%zu,\"refs\":%llu,"
               "\"workers\":%u,\"dispatchers\":%u,"
               "\"direct_ms\":%.3f,\"serve_ms\":%.3f,"
               "\"served_cells_per_sec\":%.1f,"
               "\"direct_cells_per_sec\":%.1f,"
               "\"p50_ms\":%.4f,\"p99_ms\":%.4f,"
               "\"cache_hits\":%llu,\"cache_misses\":%llu,"
               "\"failures\":%zu,\"bit_identical\":%s}",
               kClients, kShapes, kConfigsPerShape,
               static_cast<unsigned long long>(refs), workers,
               options.dispatchers, direct_ms, serve_ms, served_rate,
               direct_rate, p50, p99,
               static_cast<unsigned long long>(stats.cacheHits),
               static_cast<unsigned long long>(stats.cacheMisses),
               failures, identical ? "true" : "false"),
        gate_enforced,
        identical && throughput_pass && latency_pass);
}
