/**
 * @file
 * Methodology check: how quickly the miss and traffic ratios
 * converge with trace length. The paper fixed 1,000,000 addresses
 * per trace (Section 3.3); this bench shows the measured ratios at
 * geometric prefixes of each suite's traces, so the adequacy of that
 * choice (and of any OCCSIM_TRACE_LEN override) is visible.
 */

#include <iostream>

#include "cache/cache.hh"
#include "harness/experiment.hh"
#include "trace/filters.hh"
#include "util/str.hh"
#include "util/table.hh"

using namespace occsim;

namespace {

void
convergence(std::ostream &os, Arch arch)
{
    const Suite suite = suiteFor(arch);
    const std::uint32_t word = suite.profile.wordSize;
    os << "---- " << suite.profile.name << " (1024B 16,8) ----\n";

    TableWriter table({"refs", "miss", "traffic", "warm miss"});
    for (const std::uint64_t refs :
         {31250ull, 62500ull, 125000ull, 250000ull, 500000ull,
          1000000ull}) {
        double miss = 0.0;
        double traffic = 0.0;
        double warm = 0.0;
        for (const WorkloadSpec &spec : suite.traces) {
            VectorTrace trace = buildTrace(spec, refs);
            Cache cache(makeConfig(1024, 16, 8, word));
            cache.run(trace);
            miss += cache.stats().missRatio();
            traffic += cache.stats().trafficRatio();
            warm += cache.stats().warmMissRatio();
        }
        const double n = static_cast<double>(suite.traces.size());
        table.addRow({strfmt("%llu", (unsigned long long)refs),
                      strfmt("%.4f", miss / n),
                      strfmt("%.4f", traffic / n),
                      strfmt("%.4f", warm / n)});
    }
    table.print(os);
    os << '\n';
}

void
samplingError(std::ostream &os)
{
    os << "---- trace sampling error (PDP-11 suite, 1024B 16,8) "
          "----\n";
    const Suite suite = pdp11Suite();

    TableWriter table({"sampling", "refs simulated", "miss",
                       "error vs full"});
    double full_miss = 0.0;
    for (const double fraction : {1.0, 0.5, 0.25, 0.1}) {
        double miss = 0.0;
        std::uint64_t simulated = 0;
        for (const WorkloadSpec &spec : suite.traces) {
            VectorTrace trace = buildTrace(spec);
            Cache cache(makeConfig(1024, 16, 8, 2));
            if (fraction >= 1.0) {
                simulated += cache.run(trace);
            } else {
                // Windows of 10k refs spread through the trace.
                const std::uint64_t period = static_cast<std::uint64_t>(
                    10000.0 / fraction);
                SampleFilter sampled(trace, 10000, period);
                simulated += cache.run(sampled);
            }
            miss += cache.stats().missRatio();
        }
        miss /= static_cast<double>(suite.traces.size());
        if (fraction >= 1.0)
            full_miss = miss;
        table.addRow({strfmt("%.0f%%", 100.0 * fraction),
                      strfmt("%llu", (unsigned long long)simulated),
                      strfmt("%.4f", miss),
                      strfmt("%+.4f", miss - full_miss)});
    }
    table.print(os);
    os << "(10k-reference windows; sampling keeps small-cache miss "
          "ratios accurate at a fraction of the simulation cost, the "
          "classic trace-tape economy)\n\n";
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Convergence of the metrics with trace length "
                "(why 1M addresses suffice)");
    for (const Arch arch : kAllArchs)
        convergence(std::cout, arch);
    samplingError(std::cout);
    std::cout << "(ratios drift as programs move through phases; the "
                 "paper's 1M-address window captures the steady mix. "
                 "Warm-start converges to cold-start, showing fill "
                 "effects vanish.)\n";
    return 0;
}
