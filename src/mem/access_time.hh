/**
 * @file
 * The effective-access-time model of Section 3.2:
 *
 *     t_eff = t_cache * (1 - m) + t_mem * m
 *
 * where m is the miss ratio. The paper stresses that t_cache and
 * t_mem are implementation quantities the architectural study cannot
 * produce — so occsim keeps them as explicit parameters and provides
 * this model for system-level what-if analysis on top of simulated
 * miss ratios (see the system_designer example), including the
 * paper's observation that the relative importance of miss and
 * traffic ratio depends on the ratio of cache and memory access
 * times.
 */

#ifndef OCCSIM_MEM_ACCESS_TIME_HH
#define OCCSIM_MEM_ACCESS_TIME_HH

#include <cstdint>

#include "mem/bus_model.hh"

namespace occsim {

/** Technology parameters for the access-time model. */
struct AccessTimeParams
{
    double tCache = 100.0;     ///< cache hit time (ns)
    double tMemFirst = 500.0;  ///< first word from memory (ns)
    double tMemNext = 500.0;   ///< each subsequent burst word (ns);
                               ///  equal to tMemFirst for a plain bus,
                               ///  smaller for nibble/page mode
};

/** Effective access time for miss ratio @p m and a @p burst_words
 *  transfer per miss. */
double effectiveAccessTime(const AccessTimeParams &params, double m,
                           std::uint32_t burst_words);

/**
 * M/M/1-style bus waiting factor: the mean time a request spends in
 * the bus system relative to its service time, 1 / (1 - utilization).
 * The paper points at "the contention between the processor, which
 * wants to use the cache, and the bus which is loading and unloading
 * it"; this is the standard first-order model of that contention.
 * Calls fatal() (user error) for utilization >= 1.
 */
double busWaitFactor(double utilization);

/**
 * Highest number of processors a shared bus can support before the
 * bus saturates, for a given traffic ratio: each processor issues one
 * reference per processor cycle of @p t_processor ns, each moved word
 * occupies the bus for @p t_bus_word ns, and a cache cuts the words
 * per reference to the traffic ratio. The paper motivates the traffic
 * ratio with exactly this multiprocessor-bus scenario.
 */
double maxBusProcessors(double traffic_ratio, double t_processor,
                        double t_bus_word);

} // namespace occsim

#endif // OCCSIM_MEM_ACCESS_TIME_HH
