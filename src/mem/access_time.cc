#include "mem/access_time.hh"

#include "util/logging.hh"

namespace occsim {

double
effectiveAccessTime(const AccessTimeParams &params, double m,
                    std::uint32_t burst_words)
{
    occsim_assert(m >= 0.0 && m <= 1.0, "miss ratio out of range");
    occsim_assert(burst_words > 0, "empty burst");
    const double t_mem =
        params.tMemFirst +
        params.tMemNext * static_cast<double>(burst_words - 1);
    return params.tCache * (1.0 - m) + t_mem * m;
}

double
busWaitFactor(double utilization)
{
    occsim_assert(utilization >= 0.0, "negative utilization");
    if (utilization >= 1.0)
        fatal("bus utilization %.3f saturates the bus", utilization);
    return 1.0 / (1.0 - utilization);
}

double
maxBusProcessors(double traffic_ratio, double t_processor,
                 double t_bus_word)
{
    occsim_assert(t_processor > 0.0 && t_bus_word > 0.0,
                  "times must be positive");
    if (traffic_ratio <= 0.0)
        return 1e9;  // a perfect cache never uses the bus
    // Bus occupancy per processor per ns:
    //   (traffic_ratio words/ref) * (1 ref / t_processor ns)
    //   * (t_bus_word ns/word)
    const double occupancy = traffic_ratio * t_bus_word / t_processor;
    return 1.0 / occupancy;
}

} // namespace occsim
