/**
 * @file
 * Memory-bus cost models (Section 4.3 of the paper).
 *
 * The simulator counts raw bus bytes; a BusModel converts "fetch w
 * sequential words" into a cost so that traffic ratios can be scaled
 * for memory systems whose transfer time is not linear in transfer
 * size:
 *
 *  - LinearBus: cost(w) = w. Classic microprocessor bus; the standard
 *    traffic ratio.
 *  - NibbleModeBus: cost(w) = 1 + (w-1)/r where r is the ratio of the
 *    first-word access time to subsequent-word time. The paper uses
 *    Bursky's figures (160 ns / 55 ns ~= 3:1), giving
 *    cost(w) = 1 + (w-1)/3 and the "scaled traffic ratio".
 *  - TransactionalBus: cost(w) = a + b*w. A shared multiprocessor bus
 *    with per-transaction overhead a.
 *
 * Costs are expressed in units of one single-word transfer, so a
 * scaled traffic ratio is directly comparable to the standard one.
 */

#ifndef OCCSIM_MEM_BUS_MODEL_HH
#define OCCSIM_MEM_BUS_MODEL_HH

#include <cstdint>
#include <memory>
#include <string>

namespace occsim {

/** Abstract bus cost model. */
class BusModel
{
  public:
    virtual ~BusModel() = default;

    /**
     * Cost of one burst transferring @p words sequential words, in
     * units of a single-word transfer on a linear bus.
     */
    virtual double burstCost(std::uint64_t words) const = 0;

    /** Per-word average cost of a @p words burst. */
    double perWordCost(std::uint64_t words) const;

    /**
     * Multiplier applied to the standard traffic ratio when every
     * fetch is a burst of @p words words (the paper's scaling factor
     * (1/w)(1 + (w-1)/3) for nibble mode).
     */
    double scaleFactor(std::uint64_t words) const;

    virtual std::string name() const = 0;
};

/** cost(w) = w. */
class LinearBus : public BusModel
{
  public:
    double burstCost(std::uint64_t words) const override;
    std::string name() const override { return "linear"; }
};

/** cost(w) = 1 + (w-1)/ratio. */
class NibbleModeBus : public BusModel
{
  public:
    /**
     * @param ratio first-word to subsequent-word access-time ratio;
     *        the paper approximates 160 ns / 55 ns as 3.
     */
    explicit NibbleModeBus(double ratio = 3.0);

    double burstCost(std::uint64_t words) const override;
    std::string name() const override;

    double ratio() const { return ratio_; }

  private:
    double ratio_;
};

/** cost(w) = a + b*w. */
class TransactionalBus : public BusModel
{
  public:
    TransactionalBus(double a, double b);

    double burstCost(std::uint64_t words) const override;
    std::string name() const override;

    double overhead() const { return a_; }
    double perWord() const { return b_; }

  private:
    double a_;
    double b_;
};

/**
 * Accumulates bus traffic for a simulation run, in both raw words and
 * modelled cost units, so one run can report standard and scaled
 * traffic ratios simultaneously.
 */
class TrafficAccount
{
  public:
    explicit TrafficAccount(const BusModel &model);

    /** Record one burst of @p words sequential words. */
    void addBurst(std::uint64_t words);

    /** Raw words moved. */
    std::uint64_t words() const { return words_; }

    /** Cost-model units consumed. */
    double cost() const { return cost_; }

    /** Number of bursts (memory transactions). */
    std::uint64_t bursts() const { return bursts_; }

    void reset();

  private:
    const BusModel &model_;
    std::uint64_t words_ = 0;
    std::uint64_t bursts_ = 0;
    double cost_ = 0.0;
};

} // namespace occsim

#endif // OCCSIM_MEM_BUS_MODEL_HH
