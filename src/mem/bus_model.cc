#include "mem/bus_model.hh"

#include "util/logging.hh"
#include "util/str.hh"

namespace occsim {

double
BusModel::perWordCost(std::uint64_t words) const
{
    occsim_assert(words > 0, "burst of zero words");
    return burstCost(words) / static_cast<double>(words);
}

double
BusModel::scaleFactor(std::uint64_t words) const
{
    return perWordCost(words);
}

double
LinearBus::burstCost(std::uint64_t words) const
{
    return static_cast<double>(words);
}

NibbleModeBus::NibbleModeBus(double ratio)
    : ratio_(ratio)
{
    occsim_assert(ratio_ >= 1.0,
                  "nibble-mode ratio must be >= 1 (got %f)", ratio_);
}

double
NibbleModeBus::burstCost(std::uint64_t words) const
{
    occsim_assert(words > 0, "burst of zero words");
    return 1.0 + static_cast<double>(words - 1) / ratio_;
}

std::string
NibbleModeBus::name() const
{
    return strfmt("nibble(r=%.1f)", ratio_);
}

TransactionalBus::TransactionalBus(double a, double b)
    : a_(a), b_(b)
{
    occsim_assert(a_ >= 0.0 && b_ > 0.0,
                  "transactional bus needs a >= 0, b > 0");
}

double
TransactionalBus::burstCost(std::uint64_t words) const
{
    return a_ + b_ * static_cast<double>(words);
}

std::string
TransactionalBus::name() const
{
    return strfmt("transactional(a=%.2f,b=%.2f)", a_, b_);
}

TrafficAccount::TrafficAccount(const BusModel &model)
    : model_(model)
{
}

void
TrafficAccount::addBurst(std::uint64_t words)
{
    words_ += words;
    cost_ += model_.burstCost(words);
    ++bursts_;
}

void
TrafficAccount::reset()
{
    words_ = 0;
    bursts_ = 0;
    cost_ = 0.0;
}

} // namespace occsim
