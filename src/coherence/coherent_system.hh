/**
 * @file
 * The coherent multi-cache engine: N private CoherentCaches on one
 * snooping bus, driven by an interleaved per-core reference stream.
 *
 * Model. Every core owns a private sub-block cache; block-granular
 * MESI state keeps them coherent over an atomic snooping bus (one
 * transaction completes before the next begins — the trace-driven
 * analog of the paper's single shared memory bus). Data moves in
 * sub-blocks, so the paper's traffic-ratio methodology extends
 * directly: the bus sees the same demand-fetch bursts a single cache
 * would produce, plus the coherency traffic this engine exists to
 * measure — read-for-ownership fills, address-only upgrades,
 * invalidations, snoop-forced write-back flushes, and cache-to-cache
 * supply of dirty data.
 *
 * Accounting contract (CoherencyStats):
 *  - busReads: block or sub-block fills serviced for reads, plus
 *    write fills that needed no ownership change (E/M holders).
 *  - busReadForOwnership: write fills that invalidated peers (BusRdX).
 *  - busUpgrades: address-only S->M upgrades (no data words).
 *  - invalidations: peer copies killed by BusRdX or an upgrade.
 *  - cacheToCacheTransfers / c2cWords: a Modified peer supplied the
 *    requested sub-block directly.
 *  - snoopWritebackWords: dirty words flushed to memory by a snoop
 *    (these also appear in the owning core's CacheStats
 *    writebackWords, so per-core copy-back totals stay complete).
 *
 * The anchor invariant: with one core the bus degenerates — no peer
 * ever holds a block, every fill lands Exclusive, E->M upgrades are
 * silent — and the per-core CacheStats is bit-identical to a plain
 * Cache over the same trace (test_coherence pins this across the
 * paper's grid). A naive flat-snooping oracle
 * (check/coherence_check.hh) re-derives every counter above for the
 * multicore cases.
 */

#ifndef OCCSIM_COHERENCE_COHERENT_SYSTEM_HH
#define OCCSIM_COHERENCE_COHERENT_SYSTEM_HH

#include <cstdint>
#include <vector>

#include "coherence/coherent_cache.hh"
#include "coherence/scenario.hh"
#include "trace/packed_trace.hh"
#include "trace/trace.hh"

namespace occsim {

/** Snooping-bus traffic counters for one coherent run. */
struct CoherencyStats
{
    std::uint64_t busReads = 0;
    std::uint64_t busReadForOwnership = 0;
    std::uint64_t busUpgrades = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t cacheToCacheTransfers = 0;
    std::uint64_t c2cWords = 0;
    std::uint64_t snoopWritebackWords = 0;

    /** All bus transactions (data-carrying and address-only). */
    std::uint64_t busTransactions() const
    {
        return busReads + busReadForOwnership + busUpgrades;
    }

    bool operator==(const CoherencyStats &other) const = default;
};

/** N private caches + one snooping bus. */
class CoherentSystem
{
  public:
    /**
     * Build the scenario's caches. @p grid_config is the sweep-grid
     * entry being priced; each core's shape comes from
     * scenarioCoreConfig(). The scenario must already have passed
     * validateScenario() (the constructor re-asserts the subset).
     */
    CoherentSystem(const ScenarioConfig &scenario,
                   const CacheConfig &grid_config);

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(caches_.size());
    }
    const CoherentCache &core(std::uint32_t i) const
    {
        return caches_[i];
    }
    const CoherencyStats &bus() const { return bus_; }

    /** Simulate one reference on the core named by @p ref.core
     *  (reduced modulo the core count, so any trace is replayable on
     *  any scenario). */
    void access(const MemRef &ref);

    /** Replay a packed span (same core routing via the packed core
     *  bits). Does NOT finalize; callers finalize after the last
     *  span. */
    void replayPacked(const PackedRecord *refs, std::size_t n);

    /** Drain @p source (up to @p max_refs, 0 = all) and finalize.
     *  @return references simulated. */
    std::uint64_t run(TraceSource &source, std::uint64_t max_refs = 0);

    /** End-of-run residency accounting on every core. */
    void finalize();

  private:
    void accessImpl(std::uint32_t core, Addr addr, bool is_write,
                    bool is_ifetch);

    /** Snoop every peer of @p requester holding @p block_addr for a
     *  read fill. @return whether any peer held it (the shared
     *  line). */
    bool snoopRead(std::uint32_t requester, Addr block_addr);

    /** Snoop + invalidate every peer copy of @p block_addr
     *  (@p upgrade selects the address-only upgrade event vs
     *  BusRdX). */
    void snoopInvalidate(std::uint32_t requester, Addr block_addr,
                         bool upgrade);

    std::vector<CoherentCache> caches_;
    CoherencyStats bus_;
};

} // namespace occsim

#endif // OCCSIM_COHERENCE_COHERENT_SYSTEM_HH
