/**
 * @file
 * The MESI state machine, as a pure transition table.
 *
 * Every cached block of a coherent scenario is in exactly one of the
 * four MESI states per core: Modified (this core's copy is the only
 * one and is dirty), Exclusive (only copy, clean), Shared (one of
 * possibly several clean copies), Invalid (not cached). The table
 * here is the protocol's whole truth — the coherent engine
 * (coherent_system.cc) and its naive flat-snooping oracle
 * (check/coherence_check.cc) both drive their per-frame states
 * through mesiNext(), so a protocol disagreement between them can
 * only come from *when* they raise events, never from what an event
 * does.
 *
 * Illegal transitions panic instead of returning: an Invalid line
 * being snooped means the bus filter is broken (only holders are
 * snooped), and a Modified or Exclusive line observing a peer's
 * upgrade means two cores thought they owned the block — both are
 * simulator bugs, not workload behaviors, and the state-machine unit
 * tests pin each one as a death test.
 */

#ifndef OCCSIM_COHERENCE_MESI_HH
#define OCCSIM_COHERENCE_MESI_HH

#include <cstdint>

namespace occsim {

/** Per-core state of one cached block. */
enum class MesiState : std::uint8_t {
    Invalid = 0,
    Shared = 1,
    Exclusive = 2,
    Modified = 3,
};

const char *mesiStateName(MesiState state);

/** Inputs to the per-block state machine. Local* events come from
 *  this core's own references; Snoop* events are observed on the bus
 *  from a peer's transaction. */
enum class MesiEvent : std::uint8_t {
    LocalRead = 0,    ///< this core reads the block
    LocalWrite = 1,   ///< this core writes the block
    SnoopRead = 2,    ///< a peer's BusRd was observed
    SnoopReadX = 3,   ///< a peer's read-for-ownership was observed
    SnoopUpgrade = 4, ///< a peer's address-only upgrade was observed
};

const char *mesiEventName(MesiEvent event);

/**
 * The next state after @p event in @p state. @p shared_line is the
 * bus's shared signal, consulted only for Invalid + LocalRead (the
 * fill lands Shared when any peer holds the block, Exclusive when
 * none does). Panics on the illegal combinations described in the
 * file comment.
 */
MesiState mesiNext(MesiState state, MesiEvent event, bool shared_line);

} // namespace occsim

#endif // OCCSIM_COHERENCE_MESI_HH
