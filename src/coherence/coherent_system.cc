#include "coherence/coherent_system.hh"

#include "util/logging.hh"

namespace occsim {

CoherentSystem::CoherentSystem(const ScenarioConfig &scenario,
                               const CacheConfig &grid_config)
{
    occsim_assert(scenario.cores >= 1 &&
                      scenario.cores <= PackedRecord::kMaxCores,
                  "scenario core count %u out of range",
                  scenario.cores);
    caches_.reserve(scenario.cores);
    for (std::uint32_t c = 0; c < scenario.cores; ++c) {
        caches_.emplace_back(
            scenarioCoreConfig(scenario, grid_config, c));
    }
}

bool
CoherentSystem::snoopRead(std::uint32_t requester, Addr block_addr)
{
    bool shared = false;
    for (std::uint32_t p = 0; p < numCores(); ++p) {
        if (p == requester)
            continue;
        CoherentCache &peer = caches_[p];
        const std::uint32_t set = static_cast<std::uint32_t>(
            peer.geom_.setIndex(block_addr << peer.geom_.blockBits()));
        const int way = peer.findWay(set, block_addr);
        if (way < 0)
            continue;
        shared = true;
        const std::size_t frame =
            static_cast<std::size_t>(set) * peer.assoc_ +
            static_cast<std::uint32_t>(way);
        const MesiState state = peer.mesi_[frame];
        if (state == MesiState::Modified) {
            // The owner flushes its dirty words to memory and
            // supplies the requested data cache-to-cache.
            const std::uint32_t words = peer.writebackDirty(frame);
            bus_.snoopWritebackWords += words;
            ++bus_.cacheToCacheTransfers;
            bus_.c2cWords += peer.wordsPerSub_;
        }
        peer.mesi_[frame] =
            mesiNext(state, MesiEvent::SnoopRead, false);
    }
    return shared;
}

void
CoherentSystem::snoopInvalidate(std::uint32_t requester,
                                Addr block_addr, bool upgrade)
{
    for (std::uint32_t p = 0; p < numCores(); ++p) {
        if (p == requester)
            continue;
        CoherentCache &peer = caches_[p];
        const std::uint32_t set = static_cast<std::uint32_t>(
            peer.geom_.setIndex(block_addr << peer.geom_.blockBits()));
        const int way = peer.findWay(set, block_addr);
        if (way < 0)
            continue;
        const std::size_t frame =
            static_cast<std::size_t>(set) * peer.assoc_ +
            static_cast<std::uint32_t>(way);
        const MesiState state = peer.mesi_[frame];
        // Drive the transition table first: it panics on the
        // protocol-violating combinations (e.g. an upgrade observed
        // by an owner), which is exactly the check we want here.
        const MesiState next = mesiNext(
            state,
            upgrade ? MesiEvent::SnoopUpgrade : MesiEvent::SnoopReadX,
            false);
        occsim_assert(next == MesiState::Invalid,
                      "snoop invalidation left state %s",
                      mesiStateName(next));
        if (state == MesiState::Modified) {
            const std::uint32_t words = peer.writebackDirty(frame);
            bus_.snoopWritebackWords += words;
            ++bus_.cacheToCacheTransfers;
            bus_.c2cWords += peer.wordsPerSub_;
        }
        peer.invalidateFrame(frame);
        ++bus_.invalidations;
    }
}

void
CoherentSystem::accessImpl(std::uint32_t core, Addr addr,
                           bool is_write, bool is_ifetch)
{
    CoherentCache &cache = caches_[core];
    const std::uint32_t set =
        static_cast<std::uint32_t>(cache.geom_.setIndex(addr));
    const Addr block_addr = cache.geom_.blockAddr(addr);
    const std::uint32_t sub_index = cache.geom_.subBlockIndex(addr);
    const std::uint64_t sub_bit = std::uint64_t{1} << sub_index;
    const bool counted = !is_write;

    const int way = cache.findWay(set, block_addr);

    if (way >= 0) {
        const std::size_t frame =
            static_cast<std::size_t>(set) * cache.assoc_ +
            static_cast<std::uint32_t>(way);
        CoherentCache::FrameMeta &meta = cache.meta_[frame];
        cache.repl_.onAccess(set, static_cast<std::uint32_t>(way));
        meta.touched |= sub_bit;
        const MesiState state = cache.mesi_[frame];
        if (meta.valid & sub_bit) {
            if (counted) {
                cache.stats_.recordHit(is_ifetch);
                cache.mesi_[frame] =
                    mesiNext(state, MesiEvent::LocalRead, false);
                return;
            }
            cache.stats_.recordWrite(true);
            if (state == MesiState::Shared) {
                // Address-only upgrade: peers drop their copies, no
                // data moves.
                ++bus_.busUpgrades;
                snoopInvalidate(core, block_addr, /*upgrade=*/true);
            }
            cache.mesi_[frame] =
                mesiNext(state, MesiEvent::LocalWrite, false);
            meta.dirty |= sub_bit;
            return;
        }
        // Sub-block miss on a held tag: the block's coherency state
        // is already settled (no peer can hold it Modified while we
        // hold the tag), so the fill is a plain bus read — plus an
        // ownership change when a write finds the block Shared.
        const bool cold = (cache.everFilled_[frame] & sub_bit) == 0;
        if (counted) {
            cache.stats_.recordMiss(is_ifetch, false, cold);
            ++bus_.busReads;
            cache.mesi_[frame] =
                mesiNext(state, MesiEvent::LocalRead, false);
        } else {
            cache.stats_.recordWrite(false);
            if (state == MesiState::Shared) {
                ++bus_.busReadForOwnership;
                snoopInvalidate(core, block_addr, /*upgrade=*/false);
            } else {
                ++bus_.busReads;
            }
            cache.mesi_[frame] =
                mesiNext(state, MesiEvent::LocalWrite, false);
        }
        cache.fillSub(frame, sub_bit, counted, cold);
        if (is_write)
            meta.dirty |= sub_bit;
        return;
    }

    // Block miss: allocate a frame (write-allocate is part of the
    // MESI subset, so writes always allocate).
    const std::uint32_t victim_way = cache.claimVictim(set);
    const std::size_t frame =
        static_cast<std::size_t>(set) * cache.assoc_ + victim_way;
    const bool cold = (cache.everFilled_[frame] & sub_bit) == 0;
    if (counted)
        cache.stats_.recordMiss(is_ifetch, true, cold);
    else
        cache.stats_.recordWrite(false);

    cache.tags_[frame] = block_addr;
    CoherentCache::FrameMeta &meta = cache.meta_[frame];
    meta.valid = 0;
    meta.touched = sub_bit;
    meta.dirty = 0;
    cache.repl_.onFill(set, victim_way);

    if (counted) {
        ++bus_.busReads;
        const bool shared = snoopRead(core, block_addr);
        cache.mesi_[frame] = mesiNext(MesiState::Invalid,
                                      MesiEvent::LocalRead, shared);
    } else {
        ++bus_.busReadForOwnership;
        snoopInvalidate(core, block_addr, /*upgrade=*/false);
        cache.mesi_[frame] = mesiNext(MesiState::Invalid,
                                      MesiEvent::LocalWrite, false);
    }
    cache.fillSub(frame, sub_bit, counted, cold);
    if (is_write)
        meta.dirty |= sub_bit;
}

void
CoherentSystem::access(const MemRef &ref)
{
    accessImpl(ref.core % numCores(), ref.addr, ref.isWrite(),
               ref.isInstruction());
}

void
CoherentSystem::replayPacked(const PackedRecord *refs, std::size_t n)
{
    const std::uint32_t cores = numCores();
    for (std::size_t i = 0; i < n; ++i) {
        const PackedRecord &rec = refs[i];
        accessImpl(rec.core() % cores, rec.addr(), rec.isWrite(),
                   rec.isInstruction());
    }
}

std::uint64_t
CoherentSystem::run(TraceSource &source, std::uint64_t max_refs)
{
    MemRef ref;
    std::uint64_t count = 0;
    while ((max_refs == 0 || count < max_refs) && source.next(ref)) {
        access(ref);
        ++count;
    }
    finalize();
    return count;
}

void
CoherentSystem::finalize()
{
    for (CoherentCache &cache : caches_)
        cache.finalizeResidencies();
}

} // namespace occsim
