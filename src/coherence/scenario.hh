/**
 * @file
 * ScenarioConfig: the multicore half of a sweep request.
 *
 * The original SweepRequest was single-cache-shaped — a grid of
 * CacheConfigs, each priced independently against each trace. A
 * coherency study needs one more axis: how many private caches share
 * the bus, and what each of them looks like. ScenarioConfig carries
 * exactly that, with the crucial default that a 1-core scenario IS
 * the old request: runSweep() routes cores == 1 through the existing
 * single-cache engines untouched, so every pre-redesign caller gets
 * bit-identical results without changes.
 *
 * Multicore scenarios (cores >= 2) route to the coherent MESI engine
 * (coherence/coherent_system.hh), which supports the protocol's
 * natural subset: copy-back, write-allocate, demand fetch, unified
 * caches. validateScenario() enforces that subset up front with a
 * human-readable error, shared by runSweep() and the sweep server so
 * the wire protocol can never smuggle an unsupported scenario past
 * the API.
 */

#ifndef OCCSIM_COHERENCE_SCENARIO_HH
#define OCCSIM_COHERENCE_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_config.hh"

namespace occsim {

/** Core count + per-core cache shapes of one coherent scenario. */
struct ScenarioConfig
{
    /** Number of private caches on the snooping bus. 1 (the default)
     *  means "no scenario": the request behaves exactly as before
     *  the redesign. Capped at PackedRecord::kMaxCores (8). */
    std::uint32_t cores = 1;

    /**
     * Optional per-core cache configurations (asymmetric scenarios).
     * Empty means every core clones the grid config being swept;
     * non-empty requires size() == cores and collapses the sweep
     * grid to a single config (the per-core shapes replace it).
     */
    std::vector<CacheConfig> coreConfigs;

    bool multicore() const { return cores > 1; }

    bool operator==(const ScenarioConfig &other) const = default;
};

/**
 * Validate @p scenario against the sweep grid @p configs.
 * @return "" when valid, else one human-readable reason. A 1-core
 * scenario with no per-core configs is always valid (it is the
 * pre-redesign request shape).
 */
std::string validateScenario(const ScenarioConfig &scenario,
                             const std::vector<CacheConfig> &configs);

/** The effective configuration of @p core under @p scenario when the
 *  sweep grid entry is @p grid_config. */
const CacheConfig &scenarioCoreConfig(const ScenarioConfig &scenario,
                                      const CacheConfig &grid_config,
                                      std::uint32_t core);

/** Short label for reports: "2x16,8" style (cores x grid short
 *  name), or "1x..." for the degenerate case. */
std::string scenarioName(const ScenarioConfig &scenario,
                         const CacheConfig &grid_config);

} // namespace occsim

#endif // OCCSIM_COHERENCE_SCENARIO_HH
