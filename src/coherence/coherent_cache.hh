/**
 * @file
 * One core's private cache in a coherent multi-cache scenario.
 *
 * CoherentCache is the Cache model (cache/cache.hh) restricted to the
 * MESI engine's subset — copy-back, write-allocate, demand fetch,
 * unified — with one addition: a MESI state per frame. Everything
 * else is deliberately the same machinery (CacheGeometry address
 * arithmetic, CacheStats accounting, ReplacementState order lists,
 * kNoTag empty frames, everFilled cold tracking), evolved in the same
 * order as Cache::access(), so a 1-core CoherentSystem produces
 * CacheStats bit-identical to a plain Cache over the same trace —
 * the redesign's anchor invariant, enforced by test_coherence.
 *
 * The bus-side protocol logic lives in CoherentSystem, which drives
 * this class through a friend interface: local hits/misses, snoop
 * flushes, and invalidations all mutate the same frame arrays the
 * local path uses.
 */

#ifndef OCCSIM_COHERENCE_COHERENT_CACHE_HH
#define OCCSIM_COHERENCE_COHERENT_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "cache/cache_geometry.hh"
#include "cache/cache_stats.hh"
#include "cache/replacement.hh"
#include "coherence/mesi.hh"
#include "util/bitops.hh"

namespace occsim {

class CoherentSystem;

/** One private cache with per-frame MESI state. */
class CoherentCache
{
  public:
    explicit CoherentCache(const CacheConfig &config);

    const CacheConfig &config() const { return geom_.config(); }
    const CacheGeometry &geometry() const { return geom_; }
    const CacheStats &stats() const { return stats_; }

    /** MESI state of the block containing @p addr (Invalid when the
     *  tag is absent). Probe for tests. */
    MesiState stateOf(Addr addr) const;

    /** @return true if the sub-block containing @p addr is resident. */
    bool isResident(Addr addr) const;

    /** Account still-resident blocks into the residency histogram and
     *  flush remaining dirty sub-blocks, exactly as
     *  Cache::finalizeResidencies(). */
    void finalizeResidencies();

  private:
    friend class CoherentSystem;

    /** Per-frame sub-block masks (same layout as Cache::FrameMeta). */
    struct FrameMeta
    {
        std::uint64_t valid = 0;
        std::uint64_t touched = 0;
        std::uint64_t dirty = 0;
    };

    static constexpr Addr kNoTag = ~Addr(0);

    bool framePresent(std::size_t frame) const
    {
        return tags_[frame] != kNoTag;
    }

    /** Way holding @p block_addr in @p set, or -1. */
    int findWay(std::uint32_t set, Addr block_addr) const;

    /** Claim the way a new block fill will occupy — the first invalid
     *  way, else the replacement victim — retiring the previous
     *  residency (touched histogram + dirty write-back), exactly as
     *  Cache::claimVictimSpec. */
    std::uint32_t claimVictim(std::uint32_t set);

    /** Fill @p sub_bit of @p frame from the bus: valid + ever-filled
     *  bits plus one recorded burst (counted read traffic vs
     *  write-miss traffic), exactly as the demand fetchIntoSpec. */
    void fillSub(std::size_t frame, std::uint64_t sub_bit, bool counted,
                 bool cold);

    /** Copy-back write-back of @p frame's dirty sub-blocks.
     *  @return words written back (0 when clean). */
    std::uint32_t writebackDirty(std::size_t frame);

    /** Snoop-forced invalidation: retire the residency, write back
     *  dirty data, drop the tag and state. everFilled_ survives (a
     *  re-fetch after an invalidation is coherency traffic, not a
     *  cold miss). @return words written back by the flush. */
    std::uint32_t invalidateFrame(std::size_t frame);

    CacheGeometry geom_;
    std::uint32_t assoc_;
    std::uint32_t wordsPerSub_;
    ReplacementState repl_;
    CacheStats stats_;
    std::vector<Addr> tags_;           ///< set * assoc + way
    std::vector<FrameMeta> meta_;      ///< parallel to tags_
    std::vector<std::uint64_t> everFilled_;
    std::vector<MesiState> mesi_;      ///< parallel to tags_
};

} // namespace occsim

#endif // OCCSIM_COHERENCE_COHERENT_CACHE_HH
