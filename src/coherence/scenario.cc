#include "coherence/scenario.hh"

#include "trace/packed_trace.hh"
#include "util/str.hh"

namespace occsim {

namespace {

/** The coherent engine's supported subset for one core's cache. */
std::string
validateCoreConfig(const CacheConfig &config, std::uint32_t core)
{
    if (config.write != WritePolicy::CopyBack) {
        return strfmt("core %u: MESI is a write-back protocol; the "
                      "scenario requires copy-back caches",
                      core);
    }
    if (!config.writeAllocate)
        return strfmt("core %u: scenarios require write-allocate",
                      core);
    if (config.fetch != FetchPolicy::Demand) {
        return strfmt("core %u: scenarios require demand fetch (got "
                      "%s)",
                      core, fetchPolicyName(config.fetch));
    }
    if (config.partition != CachePartition::Unified) {
        return strfmt("core %u: scenarios require unified caches",
                      core);
    }
    return "";
}

} // namespace

std::string
validateScenario(const ScenarioConfig &scenario,
                 const std::vector<CacheConfig> &configs)
{
    if (scenario.cores == 0)
        return "scenario needs at least one core";
    if (!scenario.multicore()) {
        if (!scenario.coreConfigs.empty()) {
            return "per-core configs require a multicore scenario "
                   "(cores >= 2)";
        }
        return "";
    }
    if (scenario.cores > PackedRecord::kMaxCores) {
        return strfmt("scenario asks for %u cores; the packed trace "
                      "format caps core ids at %u",
                      scenario.cores, PackedRecord::kMaxCores);
    }
    if (!scenario.coreConfigs.empty()) {
        if (scenario.coreConfigs.size() != scenario.cores) {
            return strfmt("scenario has %zu per-core configs for %u "
                          "cores",
                          scenario.coreConfigs.size(), scenario.cores);
        }
        if (configs.size() != 1) {
            return "per-core configs replace the sweep grid; the "
                   "request must carry exactly one grid config";
        }
    }
    if (configs.empty())
        return "scenario sweep needs at least one config";
    for (const CacheConfig &grid : configs) {
        const CacheConfig &first =
            scenarioCoreConfig(scenario, grid, 0);
        for (std::uint32_t core = 0; core < scenario.cores; ++core) {
            const CacheConfig &config =
                scenarioCoreConfig(scenario, grid, core);
            const std::string error = validateCoreConfig(config, core);
            if (!error.empty())
                return error;
            // The bus transfers sub-blocks and snoops block
            // addresses: those granularities must agree across the
            // cores or the traffic accounting is meaningless.
            if (config.blockSize != first.blockSize ||
                config.subBlockSize != first.subBlockSize ||
                config.wordSize != first.wordSize) {
                return strfmt("core %u: all cores must share block, "
                              "sub-block and word sizes",
                              core);
            }
        }
    }
    return "";
}

const CacheConfig &
scenarioCoreConfig(const ScenarioConfig &scenario,
                   const CacheConfig &grid_config, std::uint32_t core)
{
    if (!scenario.coreConfigs.empty())
        return scenario.coreConfigs[core];
    return grid_config;
}

std::string
scenarioName(const ScenarioConfig &scenario,
             const CacheConfig &grid_config)
{
    return strfmt("%ux%s", scenario.cores,
                  grid_config.shortName().c_str());
}

} // namespace occsim
