#include "coherence/mesi.hh"

#include "util/logging.hh"

namespace occsim {

const char *
mesiStateName(MesiState state)
{
    switch (state) {
      case MesiState::Invalid:
        return "I";
      case MesiState::Shared:
        return "S";
      case MesiState::Exclusive:
        return "E";
      case MesiState::Modified:
        return "M";
    }
    return "?";
}

const char *
mesiEventName(MesiEvent event)
{
    switch (event) {
      case MesiEvent::LocalRead:
        return "local-read";
      case MesiEvent::LocalWrite:
        return "local-write";
      case MesiEvent::SnoopRead:
        return "snoop-read";
      case MesiEvent::SnoopReadX:
        return "snoop-readx";
      case MesiEvent::SnoopUpgrade:
        return "snoop-upgrade";
    }
    return "?";
}

MesiState
mesiNext(MesiState state, MesiEvent event, bool shared_line)
{
    switch (state) {
      case MesiState::Invalid:
        switch (event) {
          case MesiEvent::LocalRead:
            return shared_line ? MesiState::Shared
                               : MesiState::Exclusive;
          case MesiEvent::LocalWrite:
            return MesiState::Modified;
          case MesiEvent::SnoopRead:
          case MesiEvent::SnoopReadX:
          case MesiEvent::SnoopUpgrade:
            // The bus snoops holders only; snooping an Invalid line
            // means the holder bookkeeping is broken.
            panic("MESI: %s snooped in state I",
                  mesiEventName(event));
        }
        break;
      case MesiState::Shared:
        switch (event) {
          case MesiEvent::LocalRead:
            return MesiState::Shared;
          case MesiEvent::LocalWrite:
            // Address-only BusUpgr; peers leave via SnoopUpgrade.
            return MesiState::Modified;
          case MesiEvent::SnoopRead:
            return MesiState::Shared;
          case MesiEvent::SnoopReadX:
          case MesiEvent::SnoopUpgrade:
            return MesiState::Invalid;
        }
        break;
      case MesiState::Exclusive:
        switch (event) {
          case MesiEvent::LocalRead:
            return MesiState::Exclusive;
          case MesiEvent::LocalWrite:
            // The silent E->M upgrade: no bus transaction at all.
            return MesiState::Modified;
          case MesiEvent::SnoopRead:
            return MesiState::Shared;
          case MesiEvent::SnoopReadX:
            return MesiState::Invalid;
          case MesiEvent::SnoopUpgrade:
            // An upgrade implies the peer held Shared while we held
            // the only copy — mutually exclusive by construction.
            panic("MESI: snoop-upgrade observed in state E");
        }
        break;
      case MesiState::Modified:
        switch (event) {
          case MesiEvent::LocalRead:
          case MesiEvent::LocalWrite:
            return MesiState::Modified;
          case MesiEvent::SnoopRead:
            // Flush accounting happens at the bus; the state simply
            // demotes to Shared.
            return MesiState::Shared;
          case MesiEvent::SnoopReadX:
            return MesiState::Invalid;
          case MesiEvent::SnoopUpgrade:
            panic("MESI: snoop-upgrade observed in state M");
        }
        break;
    }
    panic("MESI: bad state %d / event %d", static_cast<int>(state),
          static_cast<int>(event));
}

} // namespace occsim
