#include "coherence/coherent_cache.hh"

#include <bit>

#include "util/logging.hh"

namespace occsim {

CoherentCache::CoherentCache(const CacheConfig &config)
    : geom_(config),
      assoc_(geom_.assoc()),
      wordsPerSub_(geom_.wordsPerSubBlock()),
      repl_(config.replacement, geom_.numSets(), geom_.assoc(),
            config.randomSeed),
      stats_(geom_.subBlocksPerBlock(),
             geom_.subBlocksPerBlock() * geom_.wordsPerSubBlock()),
      tags_(geom_.numBlocks(), kNoTag),
      meta_(geom_.numBlocks()),
      everFilled_(geom_.numBlocks(), 0),
      mesi_(geom_.numBlocks(), MesiState::Invalid)
{
    if (geom_.blockBits() == 0)
        fatal("block size 1 is unsupported (%s)",
              config.fullName().c_str());
    occsim_assert(config.write == WritePolicy::CopyBack &&
                      config.writeAllocate &&
                      config.fetch == FetchPolicy::Demand &&
                      config.partition == CachePartition::Unified,
                  "coherent cache outside the MESI subset (%s); "
                  "validateScenario should have rejected this",
                  config.fullName().c_str());
}

int
CoherentCache::findWay(std::uint32_t set, Addr block_addr) const
{
    const Addr *tags =
        tags_.data() + static_cast<std::size_t>(set) * assoc_;
    for (std::uint32_t way = 0; way < assoc_; ++way) {
        if (tags[way] == block_addr)
            return static_cast<int>(way);
    }
    return -1;
}

std::uint32_t
CoherentCache::claimVictim(std::uint32_t set)
{
    const std::size_t base = static_cast<std::size_t>(set) * assoc_;
    const Addr *tags = tags_.data() + base;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        if (tags[w] == kNoTag)
            return w;
    }
    const std::uint32_t victim = repl_.victim(set);
    FrameMeta &meta = meta_[base + victim];
    stats_.recordResidency(
        static_cast<std::uint32_t>(std::popcount(meta.touched)));
    writebackDirty(base + victim);
    return victim;
}

void
CoherentCache::fillSub(std::size_t frame, std::uint64_t sub_bit,
                       bool counted, bool cold)
{
    meta_[frame].valid |= sub_bit;
    everFilled_[frame] |= sub_bit;
    if (counted)
        stats_.recordBurst(wordsPerSub_, cold, 0);
    else
        stats_.recordWriteBurst(wordsPerSub_);
}

std::uint32_t
CoherentCache::writebackDirty(std::size_t frame)
{
    FrameMeta &meta = meta_[frame];
    if (meta.dirty == 0)
        return 0;
    const std::uint32_t words =
        static_cast<std::uint32_t>(std::popcount(meta.dirty)) *
        wordsPerSub_;
    stats_.recordWriteback(words);
    meta.dirty = 0;
    return words;
}

std::uint32_t
CoherentCache::invalidateFrame(std::size_t frame)
{
    occsim_assert(framePresent(frame),
                  "invalidating an empty frame %zu", frame);
    FrameMeta &meta = meta_[frame];
    if (meta.touched != 0) {
        stats_.recordResidency(
            static_cast<std::uint32_t>(std::popcount(meta.touched)));
    }
    const std::uint32_t words = writebackDirty(frame);
    tags_[frame] = kNoTag;
    meta = FrameMeta{};
    mesi_[frame] = MesiState::Invalid;
    return words;
}

MesiState
CoherentCache::stateOf(Addr addr) const
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(geom_.setIndex(addr));
    const int way = findWay(set, geom_.blockAddr(addr));
    if (way < 0)
        return MesiState::Invalid;
    return mesi_[static_cast<std::size_t>(set) * assoc_ +
                 static_cast<std::uint32_t>(way)];
}

bool
CoherentCache::isResident(Addr addr) const
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(geom_.setIndex(addr));
    const int way = findWay(set, geom_.blockAddr(addr));
    if (way < 0)
        return false;
    const std::size_t frame = static_cast<std::size_t>(set) * assoc_ +
                              static_cast<std::uint32_t>(way);
    return (meta_[frame].valid &
            (std::uint64_t{1} << geom_.subBlockIndex(addr))) != 0;
}

void
CoherentCache::finalizeResidencies()
{
    for (std::size_t f = 0; f < tags_.size(); ++f) {
        FrameMeta &meta = meta_[f];
        if (framePresent(f) && meta.touched != 0) {
            stats_.recordResidency(static_cast<std::uint32_t>(
                std::popcount(meta.touched)));
            meta.touched = 0;
        }
        writebackDirty(f);
    }
}

} // namespace occsim
