/**
 * @file
 * Shared machinery for the experiment drivers that regenerate the
 * paper's tables and figures: the standard Table 1 design grid, suite
 * execution with unweighted averaging across traces, and consistent
 * row formatting.
 */

#ifndef OCCSIM_HARNESS_EXPERIMENT_HH
#define OCCSIM_HARNESS_EXPERIMENT_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_config.hh"
#include "multi/parallel_sweep.hh"
#include "multi/sweep_runner.hh"
#include "workload/suites.hh"

namespace occsim {

/**
 * The paper's Table 1 design grid for one net size: 4-way LRU demand
 * caches with block sizes 2..64 and sub-block sizes 2..32, subject to
 * wordSize <= subBlock <= block <= netSize.
 */
std::vector<CacheConfig> paperGrid(std::uint32_t net_size,
                                   std::uint32_t word_size);

/**
 * Like paperGrid restricted to the sizes that appear in Table 7
 * (sub-block <= 32, and for blocks of 64 only sub-blocks <= 16).
 */
std::vector<CacheConfig> table7Grid(std::uint32_t net_size,
                                    std::uint32_t word_size);

/**
 * Result of running one suite over one config list: per-trace results
 * plus the unweighted average the paper reports.
 */
struct SuiteRun
{
    std::vector<std::string> traceNames;
    std::vector<std::vector<SweepResult>> perTrace;
    std::vector<SweepResult> average;
};

/**
 * Build every trace of @p suite (at @p trace_len references, 0 =
 * defaultTraceLength()) in parallel through the buildTraceShared
 * cache. Each workload executes the VM exactly once; the returned
 * traces are immutable and shared.
 */
std::vector<std::shared_ptr<const VectorTrace>>
buildSuiteTraces(const Suite &suite, std::uint64_t trace_len = 0);

/**
 * Build each trace of @p suite (at @p trace_len references, 0 =
 * defaultTraceLength()) and run every config of @p configs over it.
 *
 * Runs on the parallel sweep engine: traces are built concurrently
 * (one VM execution per workload, shared read-only) and the (trace,
 * config) simulation grid is partitioned across the global thread
 * pool. Results are bit-identical to the sequential engine;
 * OCCSIM_THREADS=1 restores fully sequential execution.
 */
SuiteRun runSuite(const Suite &suite,
                  const std::vector<CacheConfig> &configs,
                  std::uint64_t trace_len = 0);

/** Format a ratio in the paper's 3/4-decimal style. */
std::string fmtRatio(double value);

/** Print a standard experiment banner (name + trace length). */
void printBanner(std::ostream &os, const std::string &title);

} // namespace occsim

#endif // OCCSIM_HARNESS_EXPERIMENT_HH
