#include "harness/paper_tables.hh"

#include <ostream>

#include "cache/sector_cache.hh"
#include "harness/experiment.hh"
#include "multi/sweep_api.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "util/table.hh"

namespace occsim {

void
runTable6(std::ostream &os)
{
    printBanner(os, "Table 6: 360/85 sector cache vs set-associative "
                    "(16 KB, 64-byte blocks, LRU)");

    // The paper drove the 360/85 with a System/360 job mix (1
    // Fortran Go, 1 Fortran compile, 2 Cobol, 2 PL/I).
    const Suite suite = s360Model85Suite();

    std::vector<CacheConfig> configs;
    configs.push_back(make360Model85Config(suite.profile.wordSize));
    for (const CacheConfig &config :
         table6Comparators(suite.profile.wordSize)) {
        configs.push_back(config);
    }

    // A probe forces runner-per-trace execution so the 360/85's
    // residency distribution can be read off its finished Cache
    // (config 0 is sector-organized, hence batched — it keeps one);
    // each per-trace sweep still runs its configs in parallel over
    // the shared trace.
    double never_ref_sum = 0.0;
    double mean_touched_sum = 0.0;
    SweepRequest request;
    request.traces = buildSuiteTraces(suite);
    request.configs = configs;
    request.label = "table6";
    request.probe = [&](std::size_t,
                        const ParallelSweepRunner &runner) {
        never_ref_sum +=
            runner.cache(0).stats().neverReferencedFraction();
        mean_touched_sum +=
            runner.cache(0).stats().meanSubBlocksTouched();
    };
    const auto averaged = runSweep(request).average;
    const double base_miss = averaged[0].missRatio;

    TableWriter table({"organisation", "miss ratio", "relative to 360/85"});
    const char *names[] = {"360/85 (16 x 1024B sectors, 64B sub-blocks)",
                           "4-way set associative", "8-way set associative",
                           "16-way set associative"};
    for (std::size_t i = 0; i < averaged.size(); ++i) {
        table.addRow({names[i], fmtRatio(averaged[i].missRatio),
                      fmtRatio(averaged[i].missRatio / base_miss)});
    }
    table.print(os);

    const double n = static_cast<double>(suite.traces.size());
    os << strfmt("\n360/85 sub-blocks referenced per 1024-byte block "
                 "residency: %.2f of 16 (%.1f%% never referenced; "
                 "paper: 11.52 of 16 never referenced = 72%%)\n\n",
                 mean_touched_sum / n, 100.0 * never_ref_sum / n);
}

namespace {

void
table7ForSuite(std::ostream &os, const Suite &suite)
{
    os << "---- " << suite.profile.name << " (word size "
       << suite.profile.wordSize << " bytes, "
       << suite.traces.size() << " traces, unweighted average) ----\n";

    // One combined sweep so each trace is generated exactly once.
    std::vector<CacheConfig> configs;
    for (std::uint32_t net : {64u, 256u, 1024u}) {
        const auto grid = table7Grid(net, suite.profile.wordSize);
        configs.insert(configs.end(), grid.begin(), grid.end());
    }
    const SuiteRun run = runSuite(suite, configs);

    TableWriter table({"net", "gross", "block,sub", "miss", "traffic",
                       "traffic(nibble)"});
    for (const SweepResult &result : run.average) {
        table.addRow({strfmt("%u", result.config.netSize),
                      strfmt("%llu", static_cast<unsigned long long>(
                                         result.grossBytes)),
                      result.config.shortName(),
                      fmtRatio(result.missRatio),
                      fmtRatio(result.trafficRatio),
                      fmtRatio(result.nibbleTrafficRatio)});
    }
    table.print(os);
    os << '\n';
}

} // namespace

void
runTable7Arch(std::ostream &os, int arch_index)
{
    occsim_assert(arch_index >= 0 && arch_index < 4,
                  "arch index out of range");
    table7ForSuite(os, suiteFor(static_cast<Arch>(arch_index)));
}

void
runTable7(std::ostream &os)
{
    printBanner(os, "Table 7: miss/traffic/nibble ratios, net 64/256/"
                    "1024 bytes, all architectures");
    for (const Arch arch : kAllArchs)
        table7ForSuite(os, suiteFor(arch));
}

void
runTable8(std::ostream &os)
{
    printBanner(os, "Table 8: load-forward on Z8000 compiler traces "
                    "(CPP, C1, C2)");

    const Suite suite = z8000CompilerSuite();
    const std::uint32_t word = suite.profile.wordSize;

    struct Entry
    {
        std::uint32_t net, block, sub;
        FetchPolicy fetch;
    };
    const Entry entries[] = {
        {64, 8, 8, FetchPolicy::Demand},
        {64, 8, 2, FetchPolicy::LoadForward},
        {64, 8, 2, FetchPolicy::Demand},
        {64, 2, 2, FetchPolicy::Demand},
        {256, 16, 16, FetchPolicy::Demand},
        {256, 16, 2, FetchPolicy::LoadForward},
        {256, 16, 2, FetchPolicy::Demand},
        {256, 8, 8, FetchPolicy::Demand},
        {256, 8, 2, FetchPolicy::LoadForward},
        {256, 8, 2, FetchPolicy::Demand},
        {256, 2, 2, FetchPolicy::Demand},
    };

    std::vector<CacheConfig> configs;
    for (const Entry &entry : entries) {
        CacheConfig config =
            makeConfig(entry.net, entry.block, entry.sub, word);
        config.fetch = entry.fetch;
        configs.push_back(config);
    }

    const SuiteRun run = runSuite(suite, configs);

    TableWriter table({"net", "gross", "block,sub", "miss", "traffic",
                       "traffic(nibble)"});
    for (const SweepResult &result : run.average) {
        table.addRow({strfmt("%u", result.config.netSize),
                      strfmt("%llu", static_cast<unsigned long long>(
                                         result.grossBytes)),
                      result.config.shortName(),
                      fmtRatio(result.missRatio),
                      fmtRatio(result.trafficRatio),
                      fmtRatio(result.nibbleTrafficRatio)});
    }
    table.print(os);
    os << '\n';
}

} // namespace occsim
