#include "harness/experiment.hh"

#include <ostream>

#include "multi/sweep_api.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace occsim {

namespace {

std::vector<CacheConfig>
gridImpl(std::uint32_t net_size, std::uint32_t word_size,
         bool table7_rules)
{
    std::vector<CacheConfig> configs;
    for (std::uint32_t block = 2; block <= 64; block *= 2) {
        if (block > net_size)
            break;
        for (std::uint32_t sub = word_size; sub <= block && sub <= 32;
             sub *= 2) {
            if (sub < 2)
                continue;
            if (table7_rules && block == 64 && sub > 16)
                continue;
            configs.push_back(
                makeConfig(net_size, block, sub, word_size));
        }
    }
    return configs;
}

} // namespace

std::vector<CacheConfig>
paperGrid(std::uint32_t net_size, std::uint32_t word_size)
{
    return gridImpl(net_size, word_size, false);
}

std::vector<CacheConfig>
table7Grid(std::uint32_t net_size, std::uint32_t word_size)
{
    return gridImpl(net_size, word_size, true);
}

std::vector<std::shared_ptr<const VectorTrace>>
buildSuiteTraces(const Suite &suite, std::uint64_t trace_len)
{
    occsim_assert(!suite.traces.empty(), "empty suite");
    std::vector<std::shared_ptr<const VectorTrace>> traces(
        suite.traces.size());
    globalThreadPool().parallelFor(
        suite.traces.size(), [&](std::size_t i) {
            traces[i] = buildTraceShared(suite.traces[i], trace_len);
        });
    return traces;
}

SuiteRun
runSuite(const Suite &suite, const std::vector<CacheConfig> &configs,
         std::uint64_t trace_len)
{
    SuiteRun run;
    SweepRequest request;
    request.traces = buildSuiteTraces(suite, trace_len);
    request.configs = configs;
    request.label = "suite:" + suite.profile.name;
    for (const WorkloadSpec &spec : suite.traces)
        run.traceNames.push_back(spec.name);
    SweepReport report = runSweep(request);
    run.perTrace = std::move(report.perTrace);
    run.average = std::move(report.average);
    return run;
}

std::string
fmtRatio(double value)
{
    return strfmt("%.4f", value);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "==== " << title << " ====\n";
    os << "trace length: " << defaultTraceLength()
       << " references per trace (set OCCSIM_TRACE_LEN to change), "
       << globalThreadPool().size()
       << " worker threads (set OCCSIM_THREADS to change)\n\n";
}

} // namespace occsim
