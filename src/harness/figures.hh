/**
 * @file
 * Drivers that regenerate the paper's figures. Each figure is a
 * miss-ratio versus traffic-ratio scatter with curves of constant
 * block size (varying sub-block) and constant sub-block size (varying
 * block); the drivers print the underlying series as rows
 * (net, block, sub, miss, traffic) grouped by curve, ready to plot.
 *
 *  - Figures 1/2:  PDP-11, net 32/128/512 and 64/256/1024 bytes.
 *  - Figures 3/4:  Z8000, same nets.
 *  - Figure 5:     VAX-11, net 64/256/1024 bytes.
 *  - Figure 6:     System/370, net 64/256/1024 bytes.
 *  - Figures 7/8:  PDP-11 with nibble-mode scaled traffic
 *                  (cost 1 + (w-1)/3 for w sequential words).
 *  - Figure 9:     load-forward, Z8000 compiler traces, net 64/256
 *                  bytes, including the Z80,000 design point
 *                  (16-byte blocks, 2-byte sub-blocks, LF).
 *  - RISC II (Section 2.3): instruction-only direct-mapped cache,
 *    512..4096 bytes, 8-byte blocks.
 */

#ifndef OCCSIM_HARNESS_FIGURES_HH
#define OCCSIM_HARNESS_FIGURES_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace occsim {

/**
 * Generic figure driver: run @p arch_index's suite over the paper
 * grid at @p net_sizes and print (net, block, sub, miss, traffic)
 * rows; when @p nibble is true the traffic column is the nibble-mode
 * scaled traffic ratio.
 */
void runMissTrafficFigure(std::ostream &os, int arch_index,
                          const std::vector<std::uint32_t> &net_sizes,
                          bool nibble);

void runFigure1(std::ostream &os);  ///< PDP-11, 32/128/512
void runFigure2(std::ostream &os);  ///< PDP-11, 64/256/1024
void runFigure3(std::ostream &os);  ///< Z8000, 32/128/512
void runFigure4(std::ostream &os);  ///< Z8000, 64/256/1024
void runFigure5(std::ostream &os);  ///< VAX-11, 64/256/1024
void runFigure6(std::ostream &os);  ///< System/370, 64/256/1024
void runFigure7(std::ostream &os);  ///< PDP-11 nibble, 32/128/512
void runFigure8(std::ostream &os);  ///< PDP-11 nibble, 64/256/1024
void runFigure9(std::ostream &os);  ///< load-forward, 64/256

/** Section 2.3: RISC II-style instruction cache size curve. */
void runRiscII(std::ostream &os);

} // namespace occsim

#endif // OCCSIM_HARNESS_FIGURES_HH
