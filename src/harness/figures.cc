#include "harness/figures.hh"

#include <ostream>

#include "cache/cache.hh"
#include "harness/experiment.hh"
#include "multi/sweep_api.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "util/table.hh"
#include "vm/machine.hh"
#include "vm/program_library.hh"

namespace occsim {

void
runMissTrafficFigure(std::ostream &os, int arch_index,
                     const std::vector<std::uint32_t> &net_sizes,
                     bool nibble)
{
    occsim_assert(arch_index >= 0 && arch_index < 4,
                  "arch index out of range");
    const Suite suite = suiteFor(static_cast<Arch>(arch_index));

    std::string title =
        strfmt("%s miss ratio vs %straffic ratio, net sizes",
               suite.profile.name.c_str(),
               nibble ? "nibble-mode scaled " : "");
    for (std::uint32_t net : net_sizes)
        title += strfmt(" %u", net);
    printBanner(os, title);

    std::vector<CacheConfig> configs;
    for (std::uint32_t net : net_sizes) {
        const auto grid = paperGrid(net, suite.profile.wordSize);
        configs.insert(configs.end(), grid.begin(), grid.end());
    }
    const SuiteRun run = runSuite(suite, configs);

    TableWriter table({"net", "block", "sub", "miss",
                       nibble ? "traffic(nibble)" : "traffic"});
    for (const SweepResult &result : run.average) {
        table.addRow({strfmt("%u", result.config.netSize),
                      strfmt("%u", result.config.blockSize),
                      strfmt("%u", result.config.subBlockSize),
                      fmtRatio(result.missRatio),
                      fmtRatio(nibble ? result.nibbleTrafficRatio
                                      : result.trafficRatio)});
    }
    table.print(os);
    os << '\n';
}

void
runFigure1(std::ostream &os)
{
    runMissTrafficFigure(os, 0, {32, 128, 512}, false);
}

void
runFigure2(std::ostream &os)
{
    runMissTrafficFigure(os, 0, {64, 256, 1024}, false);
}

void
runFigure3(std::ostream &os)
{
    runMissTrafficFigure(os, 1, {32, 128, 512}, false);
}

void
runFigure4(std::ostream &os)
{
    runMissTrafficFigure(os, 1, {64, 256, 1024}, false);
}

void
runFigure5(std::ostream &os)
{
    runMissTrafficFigure(os, 2, {64, 256, 1024}, false);
}

void
runFigure6(std::ostream &os)
{
    runMissTrafficFigure(os, 3, {64, 256, 1024}, false);
}

void
runFigure7(std::ostream &os)
{
    runMissTrafficFigure(os, 0, {32, 128, 512}, true);
}

void
runFigure8(std::ostream &os)
{
    runMissTrafficFigure(os, 0, {64, 256, 1024}, true);
}

void
runFigure9(std::ostream &os)
{
    printBanner(os, "Figure 9: load-forward, Z8000 compiler traces, "
                    "net 64 and 256 bytes");

    const Suite suite = z8000CompilerSuite();
    const std::uint32_t word = suite.profile.wordSize;

    // All block/sub combinations at both nets, demand and
    // load-forward where sub-block < block. The 16,2,LF 256-byte
    // point is the Z80,000 on-chip cache design.
    std::vector<CacheConfig> configs;
    for (std::uint32_t net : {64u, 256u}) {
        for (const CacheConfig &base : paperGrid(net, word)) {
            configs.push_back(base);
            if (base.subBlockSize < base.blockSize) {
                CacheConfig lf = base;
                lf.fetch = FetchPolicy::LoadForward;
                configs.push_back(lf);
            }
        }
    }
    const SuiteRun run = runSuite(suite, configs);

    TableWriter table({"net", "gross", "config", "miss", "traffic"});
    for (const SweepResult &result : run.average) {
        std::string label = result.config.shortName();
        if (result.config.netSize == 256 &&
            result.config.blockSize == 16 &&
            result.config.subBlockSize == 2 &&
            result.config.fetch == FetchPolicy::LoadForward) {
            label += " (Z80,000 design)";
        }
        table.addRow({strfmt("%u", result.config.netSize),
                      strfmt("%llu", static_cast<unsigned long long>(
                                         result.grossBytes)),
                      label, fmtRatio(result.missRatio),
                      fmtRatio(result.trafficRatio)});
    }
    table.print(os);
    os << '\n';
}

void
runRiscII(std::ostream &os)
{
    printBanner(os, "Section 2.3: RISC II-style instruction cache "
                    "(direct-mapped, 8-byte blocks, I-stream only)");

    // RISC II is a 32-bit machine; feed it the instruction stream of
    // the VAX-11 suite (our 32-bit family).
    const Suite suite = vax11Suite();

    std::vector<CacheConfig> configs;
    for (std::uint32_t net : {512u, 1024u, 2048u, 4096u}) {
        CacheConfig config = makeConfig(net, 8, 8, 4);
        config.assoc = 1;  // direct mapped
        configs.push_back(config);
    }

    // Reduce each shared trace to its instruction stream once, then
    // sweep the (trace, config) grid on the parallel engine.
    const auto full_traces = buildSuiteTraces(suite);
    std::vector<std::shared_ptr<const VectorTrace>> istreams(
        full_traces.size());
    globalThreadPool().parallelFor(
        full_traces.size(), [&](std::size_t i) {
            auto istream = std::make_shared<VectorTrace>(
                full_traces[i]->name() + ".ifetch");
            for (const MemRef &ref : full_traces[i]->refs()) {
                if (ref.isInstruction())
                    istream->append(ref);
            }
            istreams[i] = std::move(istream);
        });
    SweepRequest request;
    request.traces = std::move(istreams);
    request.configs = configs;
    request.label = "risc2:ifetch";
    const auto averaged = runSweep(request).average;

    TableWriter table({"size", "miss ratio", "vs previous size"});
    double prev = 0.0;
    for (const SweepResult &result : averaged) {
        table.addRow({strfmt("%u", result.config.netSize),
                      fmtRatio(result.missRatio),
                      prev > 0.0 ? fmtRatio(result.missRatio / prev)
                                 : std::string("-")});
        prev = result.missRatio;
    }
    table.print(os);
    os << "(paper: 0.148 / 0.125 / 0.098 / 0.078 — each doubling "
          "cuts the miss ratio by roughly 20%)\n\n";
}

} // namespace occsim
