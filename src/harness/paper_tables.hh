/**
 * @file
 * Drivers that regenerate the paper's numbered tables.
 *
 *  - Table 6: the IBM System/360 Model 85 sector cache versus 4-,
 *    8- and 16-way set-associative 16 KB caches with 64-byte blocks,
 *    plus the "sub-blocks never referenced per residency" figure.
 *  - Table 7: miss / traffic / nibble-mode traffic ratios for net
 *    sizes 64, 256 and 1024 bytes over the block/sub-block grid, for
 *    all four architectures (unweighted average over each suite).
 *  - Table 8: load-forward on the Z8000 compiler traces at 64 and
 *    256 bytes net.
 *
 * Each driver prints an aligned table whose rows correspond one to
 * one with the paper's (see EXPERIMENTS.md for the comparison).
 */

#ifndef OCCSIM_HARNESS_PAPER_TABLES_HH
#define OCCSIM_HARNESS_PAPER_TABLES_HH

#include <iosfwd>

namespace occsim {

/** Regenerate Table 6 (360/85 sector cache vs set-associative). */
void runTable6(std::ostream &os);

/** Regenerate Table 7 for one architecture (all of the paper's net
 *  sizes 64/256/1024 and block/sub-block combinations). */
void runTable7Arch(std::ostream &os, int arch_index);

/** Regenerate the full Table 7 (all four architectures). */
void runTable7(std::ostream &os);

/** Regenerate Table 8 (load-forward, Z8000 compiler traces). */
void runTable8(std::ostream &os);

} // namespace occsim

#endif // OCCSIM_HARNESS_PAPER_TABLES_HH
