#include "vm/isa.hh"

#include <unordered_map>

namespace occsim {

namespace {

struct OpInfo
{
    const char *name;
    unsigned lenWords;
};

const OpInfo kOpInfo[] = {
    {"nop", 1},   // NOP
    {"halt", 1},  // HALT
    {"movi", 2},  // MOVI
    {"mov", 1},   // MOV
    {"add", 1},   // ADD
    {"sub", 1},   // SUB
    {"mul", 1},   // MUL
    {"divs", 1},  // DIVS
    {"mods", 1},  // MODS
    {"and", 1},   // AND
    {"or", 1},    // OR
    {"xor", 1},   // XOR
    {"addi", 2},  // ADDI
    {"shli", 2},  // SHLI
    {"shri", 2},  // SHRI
    {"ld", 2},    // LD
    {"st", 2},    // ST
    {"push", 1},  // PUSH
    {"pop", 1},   // POP
    {"beq", 2},   // BEQ
    {"bne", 2},   // BNE
    {"blt", 2},   // BLT
    {"bge", 2},   // BGE
    {"jmp", 2},   // JMP
    {"call", 2},  // CALL
    {"ret", 1},   // RET
};

static_assert(sizeof(kOpInfo) / sizeof(kOpInfo[0]) ==
                  static_cast<std::size_t>(Opcode::NumOpcodes),
              "opcode table out of sync");

} // namespace

const char *
opcodeName(Opcode op)
{
    const auto index = static_cast<std::size_t>(op);
    if (index >= static_cast<std::size_t>(Opcode::NumOpcodes))
        return "bad";
    return kOpInfo[index].name;
}

Opcode
opcodeFromName(const std::string &mnemonic)
{
    static const std::unordered_map<std::string, Opcode> table = [] {
        std::unordered_map<std::string, Opcode> map;
        for (std::size_t i = 0;
             i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
            map.emplace(kOpInfo[i].name, static_cast<Opcode>(i));
        }
        return map;
    }();
    const auto it = table.find(mnemonic);
    return it == table.end() ? Opcode::NumOpcodes : it->second;
}

unsigned
opcodeLengthWords(Opcode op)
{
    const auto index = static_cast<std::size_t>(op);
    if (index >= static_cast<std::size_t>(Opcode::NumOpcodes))
        return 1;
    return kOpInfo[index].lenWords;
}

} // namespace occsim
