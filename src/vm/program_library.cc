#include "vm/program_library.hh"

#include <vector>

#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace occsim {

namespace {

/**
 * Emit a call to the shared pseudo-random subroutine: r1 = (r1 *
 * 25173 + 13849) & 0x3fff, the classic 16-bit LCG, masked positive so
 * comparisons behave identically on 16- and 32-bit machines. The
 * routine body (randSubroutine()) must be appended once per program.
 *
 * Real programs of the paper's era obtained characters, random
 * numbers, and comparisons through subroutine calls; routing the LCG
 * through CALL/RET both exercises the stack and spreads the hot
 * instruction footprint over separated code regions, which is what
 * makes sub-kilobyte caches work for it (or not).
 */
std::string
callRand()
{
    return "    call rand\n";
}

/** The rand subroutine body: r1 in/out, r0 scratch. */
std::string
randSubroutine()
{
    return "rand:\n"
           "    movi r0, 25173\n"
           "    mul  r1, r1, r0\n"
           "    addi r1, r1, 13849\n"
           "    movi r0, 16383\n"
           "    and  r1, r1, r0\n"
           "    ret\n";
}

/**
 * The getch subroutine: r5 = word at r4[r2] (r4 base, r2 index), r0
 * scratch. Scanner-style programs fetch their input through it, as C
 * programs of the era fetched characters through getc().
 */
std::string
getchSubroutine()
{
    return "getch:\n"
           "    shli r0, r2, WSHIFT\n"
           "    add  r0, r0, r4\n"
           "    ld   r5, r0, 0\n"
           "    ret\n";
}

/**
 * Emit a call to a routine farm's dispatcher on the value in r5.
 * Clobbers r0 and r5 only (the dispatcher saves r6/r7).
 */
std::string
callFarm()
{
    return "    call dispf\n";
}

/**
 * Generate a "routine farm": @p count small handler routines plus a
 * dispatcher that selects one by the value in r5 (masked to the farm
 * size) through a branch tree, the way era compilers lowered switch
 * statements.
 *
 * Programs of the paper's period were not single tight loops: an
 * editor, a formatter, or a compiler pass spreads its time over many
 * distinct small routines (nroff request handlers, per-construct
 * code generators, record comparators), so the hot instruction
 * footprint is far larger than any one loop. The farm reproduces that
 * structure with @p count handlers of roughly (10 + @p body_instrs)
 * instructions, each also updating its own static counter in memory.
 * Farm size is the per-architecture knob for code working-set scale
 * (compact Z8000 utilities up to large System/370 jobs).
 *
 * Callers: set r5 to any value and `call dispf` (see callFarm());
 * r0 and r5 are clobbered, r6/r7 are preserved via the stack.
 * farmData() must be placed in .data and farmCode() after the main
 * code. @p count must be a power of two.
 */
std::string
farmCode(unsigned count, unsigned body_instrs)
{
    occsim_assert(isPowerOfTwo(count), "farm size must be 2^k");
    std::string text;

    // Dispatcher: save work registers, mask the selector, walk a
    // binary compare tree to the handler. Handlers return directly
    // to the farm caller (restoring r6/r7 first).
    text += "dispf:\n"
            "    push r6\n"
            "    push r7\n";
    text += strfmt("    movi r0, %u\n", count - 1);
    text += "    and  r5, r5, r0\n";

    // Iterative emission of the branch tree (preorder, right branch
    // inline, left branch deferred behind a label).
    struct Range { unsigned lo, hi; bool labelled; };
    std::vector<Range> work{{0, count - 1, false}};
    while (!work.empty()) {
        Range range = work.back();
        work.pop_back();
        if (range.labelled)
            text += strfmt("df_%u_%u:\n", range.lo, range.hi);
        while (range.lo != range.hi) {
            const unsigned mid = (range.lo + range.hi + 1) / 2;
            text += strfmt("    movi r0, %u\n", mid);
            text += strfmt("    blt  r5, r0, df_%u_%u\n", range.lo,
                           mid - 1);
            work.push_back({range.lo, mid - 1, true});
            range.lo = mid;
        }
        text += strfmt("    jmp  fh_%u\n", range.lo);
    }

    // Handlers: bump a private static, do some distinctive work,
    // restore and return.
    for (unsigned i = 0; i < count; ++i) {
        text += strfmt("fh_%u:\n", i);
        text += strfmt("    movi r6, fs_%u\n", i);
        text += "    ld   r7, r6, 0\n"
                "    addi r7, r7, 1\n"
                "    st   r6, r7, 0\n";
        for (unsigned k = 0; k < body_instrs; ++k) {
            switch (k % 4) {
              case 0:
                text += strfmt("    movi r0, %u\n", 257 + i * 7 + k);
                break;
              case 1:
                text += "    add  r7, r7, r0\n";
                break;
              case 2:
                text += strfmt("    movi r0, %u\n", 63 + i * 3 + k);
                break;
              default:
                text += "    xor  r7, r7, r0\n";
                break;
            }
        }
        text += "    pop  r7\n"
                "    pop  r6\n"
                "    ret\n";
    }
    return text;
}

/** Per-handler static counters for farmCode(); place in .data. */
std::string
farmData(unsigned count)
{
    std::string text;
    for (unsigned i = 0; i < count; ++i)
        text += strfmt("fs_%u: .word 0\n", i);
    return text;
}

/**
 * Emit a loop filling @p label[0..count) with LCG values reduced
 * modulo @p modulus (modulus 0 = raw masked values). Uses r1 as the
 * running seed (seeded with @p seed), r2/r3/r4/r5/r6/r7 as scratch.
 * Control continues at @p next when done.
 */
std::string
fillLoop(const char *label, const char *count_expr, unsigned seed,
         unsigned modulus, const char *loop_tag, const char *next)
{
    std::string text;
    text += strfmt("    movi r1, %u\n", seed);
    text += "    movi r2, 0\n";
    text += strfmt("    movi r3, %s\n", count_expr);
    text += strfmt("    movi r4, %s\n", label);
    text += strfmt("%s:\n", loop_tag);
    text += strfmt("    bge  r2, r3, %s\n", next);
    text += callRand();
    if (modulus != 0) {
        text += strfmt("    movi r5, %u\n", modulus);
        text += "    mods r6, r1, r5\n";
    } else {
        text += "    mov  r6, r1\n";
    }
    text += "    shli r7, r2, WSHIFT\n"
            "    add  r7, r7, r4\n"
            "    st   r7, r6, 0\n"
            "    addi r2, r2, 1\n";
    text += strfmt("    jmp  %s\n", loop_tag);
    return text;
}

} // namespace

std::string
progBubbleSort(unsigned n)
{
    std::string text = strfmt(".equ N, %u\n"
                              ".data\n"
                              "arr: .spacew N\n"
                              ".code\n"
                              "main:\n",
                              n);
    text += fillLoop("arr", "N", 9177, 0, "init", "sort");
    text += "sort:\n"
            "    movi r2, 0\n"         // pass index i
            "outer:\n"
            "    movi r8, N-1\n"
            "    bge  r2, r8, done\n"
            "    movi r5, 0\n"         // j
            "    sub  r9, r8, r2\n"    // limit = N-1-i
            "inner:\n"
            "    bge  r5, r9, iend\n"
            "    call cmpsw\n"
            "    addi r5, r5, 1\n"
            "    jmp  inner\n"
            "iend:\n"
            "    addi r2, r2, 1\n"
            "    jmp  outer\n"
            "done:\n"
            "    halt\n"
            // compare-and-swap of arr[j], arr[j+1] (j = r5, base r4)
            "cmpsw:\n"
            "    shli r6, r5, WSHIFT\n"
            "    add  r6, r6, r4\n"
            "    ld   r10, r6, 0\n"
            "    ld   r11, r6, WSIZE\n"
            "    bge  r11, r10, cmpret\n"
            "    st   r6, r11, 0\n"
            "    st   r6, r10, WSIZE\n"
            "cmpret:\n"
            "    ret\n";
    text += randSubroutine();
    return text;
}

std::string
progQuickSort(unsigned n, unsigned farm)
{
    std::string text = strfmt(".equ N, %u\n"
                              ".data\n"
                              "arr: .spacew N\n",
                              n);
    if (farm != 0)
        text += farmData(farm);
    text += ".code\n"
            "main:\n";
    text += fillLoop("arr", "N", 12345, 0, "init", "sortgo");
    text += "sortgo:\n"
            "    movi r1, 0\n"        // lo
            "    movi r2, N-1\n"      // hi
            "    call qsort\n"
            "    halt\n"
            // qsort(lo = r1, hi = r2); r4 = arr base throughout
            "qsort:\n"
            "    bge  r1, r2, qdone\n"
            "    push r1\n"
            "    push r2\n"
            // Lomuto partition with pivot = arr[hi]
            "    shli r5, r2, WSHIFT\n"
            "    add  r5, r5, r4\n"
            "    ld   r6, r5, 0\n"    // pivot
            "    mov  r7, r1\n"       // i
            "    mov  r8, r1\n"       // j
            "ploop:\n"
            "    bge  r8, r2, pdone\n"
            "    shli r5, r8, WSHIFT\n"
            "    add  r5, r5, r4\n"
            "    ld   r9, r5, 0\n"    // arr[j]
            "    bge  r9, r6, pskip\n"
            "    shli r10, r7, WSHIFT\n"
            "    add  r10, r10, r4\n"
            "    ld   r11, r10, 0\n"  // arr[i]
            "    st   r10, r9, 0\n"   // arr[i] = arr[j]
            "    st   r5, r11, 0\n"   // arr[j] = old arr[i]
            "    addi r7, r7, 1\n"
            "pskip:\n";
    if (farm != 0) {
        // sort(1)-style per-record bookkeeping routines
        text += "    mov  r5, r9\n";
        text += callFarm();
    }
    text += "    addi r8, r8, 1\n"
            "    jmp  ploop\n"
            "pdone:\n"
            // swap arr[i] and arr[hi]
            "    shli r10, r7, WSHIFT\n"
            "    add  r10, r10, r4\n"
            "    ld   r11, r10, 0\n"
            "    st   r10, r6, 0\n"
            "    shli r5, r2, WSHIFT\n"
            "    add  r5, r5, r4\n"
            "    st   r5, r11, 0\n"
            // recurse on both halves around p = r7
            "    pop  r2\n"
            "    pop  r1\n"
            "    push r1\n"
            "    push r2\n"
            "    push r7\n"
            "    addi r2, r7, -1\n"
            "    call qsort\n"
            "    pop  r7\n"
            "    pop  r2\n"
            "    pop  r1\n"
            "    addi r1, r7, 1\n"
            "    call qsort\n"
            "qdone:\n"
            "    ret\n";
    text += randSubroutine();
    if (farm != 0)
        text += farmCode(farm, 12);
    return text;
}

std::string
progStringSearch(unsigned text_words, unsigned pat_len,
                 unsigned passes)
{
    occsim_assert(pat_len >= 1 && pat_len < text_words / 2,
                  "pattern must fit the text");
    std::string text = strfmt(".equ TN, %u\n"
                              ".equ PN, %u\n"
                              ".equ PASSES, %u\n"
                              ".data\n"
                              "text: .spacew TN\n"
                              "pat:  .spacew PN\n"
                              "nmatch: .word 0\n"
                              "passv: .word 0\n"
                              ".code\n"
                              "main:\n",
                              text_words, pat_len, passes);
    text += fillLoop("text", "TN", 777, 26, "tinit", "pcopy");
    text += "pcopy:\n"
            // pattern = text[TN/2 .. TN/2+PN-1], so >= 1 match exists
            "    movi r8, TN\n"
            "    shri r8, r8, 1\n"
            "    shli r8, r8, WSHIFT\n"
            "    add  r8, r8, r4\n"   // &text[TN/2]
            "    movi r9, pat\n"
            "    movi r2, 0\n"
            "    movi r3, PN\n"
            "pcl:\n"
            "    bge  r2, r3, search\n"
            "    shli r5, r2, WSHIFT\n"
            "    add  r6, r8, r5\n"
            "    ld   r7, r6, 0\n"
            "    add  r6, r9, r5\n"
            "    st   r6, r7, 0\n"
            "    addi r2, r2, 1\n"
            "    jmp  pcl\n"
            "search:\n"
            "    movi r12, 0\n"       // match count
            "    movi r2, 0\n"        // i
            "    movi r3, TN-PN+1\n"
            "iloop:\n"
            "    bge  r2, r3, sdone\n"
            "    call cmpat\n"
            "    movi r6, 0\n"
            "    beq  r5, r6, snext\n"
            "    addi r12, r12, 1\n"
            "snext:\n"
            "    addi r2, r2, 1\n"
            "    jmp  iloop\n"
            "sdone:\n"
            "    movi r5, nmatch\n"
            "    st   r5, r12, 0\n"
            "    movi r5, passv\n"   // search again, as over more files
            "    ld   r6, r5, 0\n"
            "    addi r6, r6, 1\n"
            "    st   r5, r6, 0\n"
            "    movi r7, PASSES\n"
            "    blt  r6, r7, search\n"
            "    halt\n"
            // r5 = 1 iff text[i .. i+PN) matches pat (i = r2)
            "cmpat:\n"
            "    movi r5, 0\n"        // j
            "    movi r6, PN\n"
            "cploop:\n"
            "    bge  r5, r6, cpyes\n"
            "    add  r7, r2, r5\n"
            "    shli r7, r7, WSHIFT\n"
            "    add  r7, r7, r4\n"
            "    ld   r8, r7, 0\n"    // text[i+j]
            "    shli r9, r5, WSHIFT\n"
            "    movi r10, pat\n"
            "    add  r9, r9, r10\n"
            "    ld   r10, r9, 0\n"   // pat[j]
            "    bne  r8, r10, cpno\n"
            "    addi r5, r5, 1\n"
            "    jmp  cploop\n"
            "cpyes:\n"
            "    movi r5, 1\n"
            "    ret\n"
            "cpno:\n"
            "    movi r5, 0\n"
            "    ret\n";
    text += randSubroutine();
    return text;
}

std::string
progWordCount(unsigned text_words, unsigned passes, unsigned farm)
{
    std::string text = strfmt(".equ TN, %u\n"
                              ".equ PASSES, %u\n"
                              ".data\n"
                              "text: .spacew TN\n"
                              "wcount: .word 0\n"
                              "passv: .word 0\n",
                              text_words, passes);
    if (farm != 0)
        text += farmData(farm);
    text += ".code\n"
            "main:\n";
    text += fillLoop("text", "TN", 4242, 8, "init", "scan");
    text += "scan:\n"
            "    movi r2, 0\n"
            "    movi r8, 0\n"        // in-word flag
            "    movi r9, 0\n"        // word count
            "    movi r10, 0\n"       // zero constant
            "sloop:\n"
            "    bge  r2, r3, sdone\n"
            "    call getch\n"
            "    beq  r5, r10, sep\n"
            "    bne  r8, r10, cont\n"
            "    addi r9, r9, 1\n"
            "    movi r8, 1\n"
            "    jmp  cont\n"
            "sep:\n"
            "    movi r8, 0\n"
            "cont:\n";
    if (farm != 0) {
        // per-character output-conversion routines, as od(1) has
        text += "    add  r5, r5, r2\n";
        text += callFarm();
    }
    text += "    addi r2, r2, 1\n"
            "    jmp  sloop\n"
            "sdone:\n"
            "    movi r7, wcount\n"
            "    st   r7, r9, 0\n"
            "    movi r7, passv\n"   // rescan, as on multiple files
            "    ld   r5, r7, 0\n"
            "    addi r5, r5, 1\n"
            "    st   r7, r5, 0\n"
            "    movi r6, PASSES\n"
            "    blt  r5, r6, scan\n"
            "    halt\n";
    text += getchSubroutine();
    text += randSubroutine();
    if (farm != 0)
        text += farmCode(farm, 12);
    return text;
}

std::string
progMatMul(unsigned dim)
{
    const unsigned cells = dim * dim;
    std::string text = strfmt(".equ D, %u\n"
                              ".equ CELLS, %u\n"
                              ".data\n"
                              "ma: .spacew CELLS\n"
                              "mb: .spacew CELLS\n"
                              "mc: .spacew CELLS\n"
                              ".code\n"
                              "main:\n",
                              dim, cells);
    text += fillLoop("ma", "CELLS", 31415, 10, "inita", "initbs");
    text += "initbs:\n";
    text += fillLoop("mb", "CELLS", 27182, 10, "initb", "mmul");
    text += "mmul:\n"
            "    movi r1, 0\n"        // i
            "    movi r2, D\n"
            "mi:\n"
            "    bge  r1, r2, done\n"
            "    movi r3, 0\n"        // j
            "mj:\n"
            "    bge  r3, r2, mie\n"
            "    movi r4, 0\n"        // k
            "    movi r5, 0\n"        // acc
            "    mul  r6, r1, r2\n"   // i*D
            "mk:\n"
            "    bge  r4, r2, mke\n"
            "    call dotstep\n"
            "    addi r4, r4, 1\n"
            "    jmp  mk\n"
            "mke:\n"
            "    add  r7, r6, r3\n"
            "    shli r7, r7, WSHIFT\n"
            "    movi r8, mc\n"
            "    add  r7, r7, r8\n"
            "    st   r7, r5, 0\n"
            "    addi r3, r3, 1\n"
            "    jmp  mj\n"
            "mie:\n"
            "    addi r1, r1, 1\n"
            "    jmp  mi\n"
            "done:\n"
            "    halt\n"
            // acc r5 += a[i*D + k] * b[k*D + j]  (i*D = r6, k = r4,
            // j = r3, D = r2)
            "dotstep:\n"
            "    add  r7, r6, r4\n"
            "    shli r7, r7, WSHIFT\n"
            "    movi r8, ma\n"
            "    add  r7, r7, r8\n"
            "    ld   r9, r7, 0\n"    // a[i][k]
            "    mul  r10, r4, r2\n"
            "    add  r10, r10, r3\n"
            "    shli r10, r10, WSHIFT\n"
            "    movi r8, mb\n"
            "    add  r10, r10, r8\n"
            "    ld   r11, r10, 0\n"  // b[k][j]
            "    mul  r9, r9, r11\n"
            "    add  r5, r5, r9\n"
            "    ret\n";
    text += randSubroutine();
    return text;
}

std::string
progLinkedList(unsigned nodes, unsigned traversals, unsigned farm)
{
    occsim_assert(isPowerOfTwo(nodes),
                  "node count must be a power of two (scatter mask)");
    std::string text = strfmt(".equ NN, %u\n"
                              ".equ TRAV, %u\n"
                              ".equ POOLW, %u\n"
                              ".data\n"
                              "pool: .spacew POOLW\n"
                              "sum:  .word 0\n"
                              "head: .word 0\n",
                              nodes, traversals, nodes * 2);
    if (farm != 0)
        text += farmData(farm);
    text += ".code\n"
            "main:\n";
    // Build the list with nodes scattered through the pool: node i
    // lives at slot (i * 509) mod NN, so successive links jump around
    // memory the way a heap-allocated list does.
    text += "    movi r1, 0\n"        // i
            "    movi r2, NN\n"
            "    movi r3, 0\n"        // prev (null)
            "    movi r4, pool\n"
            "    movi r10, NN-1\n"    // mask
            "build:\n"
            "    bge  r1, r2, built\n"
            "    movi r5, 509\n"
            "    mul  r5, r5, r1\n"
            "    and  r5, r5, r10\n"  // slot
            "    shli r5, r5, WSHIFT\n"
            "    shli r5, r5, 1\n"    // two words per node
            "    add  r5, r5, r4\n"
            "    movi r6, 1023\n"
            "    and  r7, r1, r6\n"
            "    st   r5, r7, 0\n"    // value
            "    st   r5, r3, WSIZE\n" // next = prev
            "    mov  r3, r5\n"
            "    addi r1, r1, 1\n"
            "    jmp  build\n"
            "built:\n"
            "    movi r6, head\n"
            "    st   r6, r3, 0\n"
            "    movi r8, 0\n"        // traversal counter
            "    movi r9, TRAV\n"
            "    movi r12, 0\n"       // sum
            "tloop:\n"
            "    bge  r8, r9, tdone\n"
            "    movi r6, head\n"
            "    ld   r5, r6, 0\n"
            "    movi r11, 0\n"
            "walk:\n"
            "    beq  r5, r11, wend\n"
            "    call visit\n";
    if (farm != 0) {
        // per-task service routines, as a scheduler dispatches
        text += "    mov  r10, r5\n"   // save the cursor
                "    mov  r5, r12\n";
        text += callFarm();
        text += "    mov  r5, r10\n";
    }
    text += "    jmp  walk\n"
            "wend:\n"
            "    addi r8, r8, 1\n"
            "    jmp  tloop\n"
            "tdone:\n"
            "    movi r6, sum\n"
            "    st   r6, r12, 0\n"
            "    halt\n"
            // visit node r5: accumulate its value, advance to next
            "visit:\n"
            "    ld   r7, r5, 0\n"
            "    add  r12, r12, r7\n"
            "    ld   r5, r5, WSIZE\n"
            "    ret\n";
    if (farm != 0)
        text += farmCode(farm, 12);
    return text;
}

std::string
progPointerChase(unsigned nodes, unsigned hops)
{
    occsim_assert(isPowerOfTwo(nodes),
                  "node count must be a power of two (scatter mask)");
    occsim_assert(hops % 8 == 0,
                  "hop count must be a multiple of eight");
    std::string text = strfmt(".equ NN, %u\n"
                              ".equ HOPS, %u\n"
                              ".data\n"
                              "pool: .spacew NN\n"
                              "last: .word 0\n"
                              ".code\n"
                              "main:\n",
                              nodes, hops);
    // Build a scattered ring: one word per node holding the address
    // of the previous node built; close the ring through slot 0
    // (where node i = 0 lands, since 0 * 509 mod NN = 0).
    text += "    movi r1, 0\n"        // i
            "    movi r2, NN\n"
            "    movi r3, 0\n"        // prev
            "    movi r4, pool\n"
            "    movi r10, NN-1\n"
            "build:\n"
            "    bge  r1, r2, built\n"
            "    movi r5, 509\n"
            "    mul  r5, r5, r1\n"
            "    and  r5, r5, r10\n"
            "    shli r5, r5, WSHIFT\n"
            "    add  r5, r5, r4\n"
            "    st   r5, r3, 0\n"
            "    mov  r3, r5\n"
            "    addi r1, r1, 1\n"
            "    jmp  build\n"
            "built:\n"
            "    st   r4, r3, 0\n"    // pool[0] -> last: ring closed
            "    movi r6, last\n"
            "    st   r6, r3, 0\n"
            // Chase the ring HOPS times, eight loads per check (the
            // dependent-load pattern of PL/I heap structures).
            "    mov  r5, r3\n"
            "    movi r9, 0\n"
            "    movi r8, HOPS\n"
            "chase:\n"
            "    bge  r9, r8, done\n"
            "    ld   r5, r5, 0\n"
            "    ld   r5, r5, 0\n"
            "    ld   r5, r5, 0\n"
            "    ld   r5, r5, 0\n"
            "    ld   r5, r5, 0\n"
            "    ld   r5, r5, 0\n"
            "    ld   r5, r5, 0\n"
            "    ld   r5, r5, 0\n"
            "    addi r9, r9, 8\n"
            "    jmp  chase\n"
            "done:\n"
            "    halt\n";
    return text;
}

std::string
progHashTable(unsigned buckets_log2, unsigned items, unsigned lookups,
              unsigned farm)
{
    const unsigned buckets = 1u << buckets_log2;
    std::string text = strfmt(".equ BMASK, %u\n"
                              ".equ ITEMS, %u\n"
                              ".equ LOOKUPS, %u\n"
                              ".data\n"
                              "table: .spacew %u\n"
                              "pool:  .spacew %u\n"
                              "found: .word 0\n",
                              buckets - 1, items, lookups, buckets,
                              items * 2);
    if (farm != 0)
        text += farmData(farm);
    text += ".code\n"
            "main:\n";
    text += "    movi r1, 123\n"      // seed
            "    movi r2, 0\n"        // i
            "    movi r3, ITEMS\n"
            "    movi r4, pool\n"
            "ins:\n"
            "    bge  r2, r3, lkpst\n";
    text += callRand();
    text += "    movi r6, BMASK\n"
            "    and  r7, r1, r6\n"
            "    shli r7, r7, WSHIFT\n"
            "    movi r8, table\n"
            "    add  r7, r7, r8\n"   // &table[b]
            "    shli r9, r2, WSHIFT\n"
            "    shli r9, r9, 1\n"
            "    add  r9, r9, r4\n"   // node
            "    st   r9, r1, 0\n"    // key
            "    ld   r10, r7, 0\n"
            "    st   r9, r10, WSIZE\n" // next = old head
            "    st   r7, r9, 0\n";   // table[b] = node
    if (farm != 0) {
        // per-symbol semantic actions, as a compiler pass applies
        text += "    mov  r5, r1\n";
        text += callFarm();
    }
    text += "    addi r2, r2, 1\n"
            "    jmp  ins\n"
            "lkpst:\n"
            "    movi r1, 123\n"      // same seed: lookups all hit
            "    movi r2, 0\n"
            "    movi r3, LOOKUPS\n"
            "    movi r12, 0\n"
            "lloop:\n"
            "    bge  r2, r3, ldone\n";
    text += callRand();
    text += "    movi r6, BMASK\n"
            "    and  r7, r1, r6\n"
            "    shli r7, r7, WSHIFT\n"
            "    movi r8, table\n"
            "    add  r7, r7, r8\n"
            "    ld   r9, r7, 0\n"    // cur
            "    movi r11, 0\n"
            "walk:\n"
            "    beq  r9, r11, lnext\n"
            "    ld   r10, r9, 0\n"
            "    beq  r10, r1, lhit\n"
            "    ld   r9, r9, WSIZE\n"
            "    jmp  walk\n"
            "lhit:\n"
            "    addi r12, r12, 1\n"
            "lnext:\n";
    if (farm != 0) {
        text += "    mov  r5, r1\n";
        text += callFarm();
    }
    text += "    addi r2, r2, 1\n"
            "    jmp  lloop\n"
            "ldone:\n"
            "    movi r7, found\n"
            "    st   r7, r12, 0\n"
            "    halt\n";
    text += randSubroutine();
    if (farm != 0)
        text += farmCode(farm, 12);
    return text;
}

std::string
progLexer(unsigned text_words, unsigned passes, unsigned farm)
{
    std::string text = strfmt(".equ TN, %u\n"
                              ".equ PASSES, %u\n"
                              ".data\n"
                              "text: .spacew TN\n"
                              "toks: .spacew TN\n"
                              "ntok: .word 0\n"
                              "passv: .word 0\n",
                              text_words, passes);
    if (farm != 0)
        text += farmData(farm);
    text += ".code\n"
            "main:\n";
    text += fillLoop("text", "TN", 2468, 64, "init", "lex");
    // Character classes: <8 whitespace, <40 letter, <52 digit,
    // otherwise punctuation.
    text += "lex:\n"
            "    movi r2, 0\n"        // pos
            "    movi r9, 0\n"        // token count
            "    movi r10, toks\n"
            "loop:\n"
            "    bge  r2, r3, done\n"
            "    call getch\n"
            "    movi r6, 8\n"
            "    blt  r5, r6, skipws\n"
            "    movi r6, 40\n"
            "    blt  r5, r6, ident\n"
            "    movi r6, 52\n"
            "    blt  r5, r6, number\n"
            "    movi r8, 3\n"        // punctuation token
            "    addi r2, r2, 1\n"
            "    jmp  emit\n"
            "skipws:\n"
            "    addi r2, r2, 1\n"
            "    jmp  loop\n"
            "ident:\n"                // letters then letters/digits
            "    addi r2, r2, 1\n"
            "idl:\n"
            "    bge  r2, r3, idend\n"
            "    call getch\n"
            "    movi r6, 8\n"
            "    blt  r5, r6, idend\n"
            "    movi r6, 52\n"
            "    bge  r5, r6, idend\n"
            "    addi r2, r2, 1\n"
            "    jmp  idl\n"
            "idend:\n"
            "    movi r8, 1\n"
            "    jmp  emit\n"
            "number:\n"
            "    addi r2, r2, 1\n"
            "nl:\n"
            "    bge  r2, r3, nend\n"
            "    call getch\n"
            "    movi r6, 40\n"
            "    blt  r5, r6, nend\n"
            "    movi r6, 52\n"
            "    bge  r5, r6, nend\n"
            "    addi r2, r2, 1\n"
            "    jmp  nl\n"
            "nend:\n"
            "    movi r8, 2\n"
            "emit:\n"
            "    shli r7, r9, WSHIFT\n"
            "    add  r7, r7, r10\n"
            "    st   r7, r8, 0\n"
            "    addi r9, r9, 1\n";
    if (farm != 0) {
        // per-token actions, as a compiler front end performs
        // (r5 still holds the last character read)
        text += callFarm();
    }
    text += "    jmp  loop\n"
            "done:\n"
            "    movi r7, ntok\n"
            "    st   r7, r9, 0\n"
            "    movi r7, passv\n"   // multi-pass, as a compiler is
            "    ld   r5, r7, 0\n"
            "    addi r5, r5, 1\n"
            "    st   r7, r5, 0\n"
            "    movi r6, PASSES\n"
            "    blt  r5, r6, lex\n"
            "    halt\n";
    text += getchSubroutine();
    text += randSubroutine();
    if (farm != 0)
        text += farmCode(farm, 12);
    return text;
}

std::string
progTextFormat(unsigned text_words, unsigned line_width,
               unsigned passes, unsigned farm)
{
    std::string text = strfmt(".equ TN, %u\n"
                              ".equ LW, %u\n"
                              ".equ PASSES, %u\n"
                              ".data\n"
                              "inbuf: .spacew TN\n"
                              "outbuf: .spacew %u\n"
                              "nlines: .word 0\n"
                              "passv: .word 0\n",
                              text_words, line_width, passes,
                              text_words * 2);
    if (farm != 0)
        text += farmData(farm);
    text += ".code\n"
            "main:\n";
    // inbuf[i] = word length 1..12
    text += "    movi r1, 1357\n"
            "    movi r2, 0\n"
            "    movi r3, TN\n"
            "    movi r4, inbuf\n"
            "init:\n"
            "    bge  r2, r3, fmt\n";
    text += callRand();
    text += "    movi r5, 12\n"
            "    mods r6, r1, r5\n"
            "    addi r6, r6, 1\n"
            "    shli r7, r2, WSHIFT\n"
            "    add  r7, r7, r4\n"
            "    st   r7, r6, 0\n"
            "    addi r2, r2, 1\n"
            "    jmp  init\n"
            "fmt:\n"
            "    movi r2, 0\n"        // in position
            "    movi r8, 0\n"        // out position
            "    movi r9, 0\n"        // column
            "    movi r10, outbuf\n"
            "    movi r11, LW\n"
            "    movi r12, 0\n"       // line count
            "floop:\n"
            "    bge  r2, r3, fdone\n"
            "    call getch\n"        // r5 = word length
            "    add  r6, r9, r5\n"
            "    blt  r6, r11, fit\n"
            "    movi r6, -1\n"       // newline marker
            "    shli r7, r8, WSHIFT\n"
            "    add  r7, r7, r10\n"
            "    st   r7, r6, 0\n"
            "    addi r8, r8, 1\n"
            "    addi r12, r12, 1\n"
            "    movi r9, 0\n"
            "fit:\n"
            "    shli r7, r8, WSHIFT\n"
            "    add  r7, r7, r10\n"
            "    st   r7, r5, 0\n"
            "    addi r8, r8, 1\n"
            "    add  r9, r9, r5\n"
            "    addi r9, r9, 1\n";   // trailing space
    if (farm != 0) {
        // per-word request handlers, as nroff dispatches
        text += "    add  r5, r5, r2\n";
        text += callFarm();
    }
    text += "    addi r2, r2, 1\n"
            "    jmp  floop\n"
            "fdone:\n"
            "    movi r7, nlines\n"
            "    st   r7, r12, 0\n"
            "    movi r7, passv\n"   // reformat, as on more input
            "    ld   r5, r7, 0\n"
            "    addi r5, r5, 1\n"
            "    st   r7, r5, 0\n"
            "    movi r6, PASSES\n"
            "    blt  r5, r6, fmt\n"
            "    halt\n";
    text += getchSubroutine();
    text += randSubroutine();
    if (farm != 0)
        text += farmCode(farm, 12);
    return text;
}

std::string
progBst(unsigned items, unsigned lookups, unsigned farm)
{
    std::string text = strfmt(".equ ITEMS, %u\n"
                              ".equ LOOKUPS, %u\n"
                              ".data\n"
                              "pool: .spacew %u\n"
                              "root: .word 0\n"
                              "found: .word 0\n",
                              items, lookups, items * 3);
    if (farm != 0)
        text += farmData(farm);
    text += ".code\n"
            "main:\n";
    text += "    movi r1, 555\n"      // seed
            "    movi r2, 0\n"        // i
            "    movi r3, ITEMS\n"
            "insert:\n"
            "    bge  r2, r3, lkpst\n";
    text += callRand();
    // allocate node i: pool + i*3 words; layout [key, left, right]
    text += "    movi r4, 3\n"
            "    mul  r4, r4, r2\n"
            "    shli r4, r4, WSHIFT\n"
            "    movi r5, pool\n"
            "    add  r4, r4, r5\n"
            "    st   r4, r1, 0\n"
            "    movi r5, 0\n"
            "    st   r4, r5, WSIZE\n"
            "    st   r4, r5, WSIZE+WSIZE\n"
            "    movi r6, root\n"
            "    ld   r7, r6, 0\n"
            "    movi r11, 0\n"
            "    beq  r7, r11, setroot\n"
            "walk:\n"
            "    ld   r8, r7, 0\n"
            "    blt  r1, r8, goleft\n"
            "    ld   r9, r7, WSIZE+WSIZE\n"
            "    beq  r9, r11, attachr\n"
            "    mov  r7, r9\n"
            "    jmp  walk\n"
            "goleft:\n"
            "    ld   r9, r7, WSIZE\n"
            "    beq  r9, r11, attachl\n"
            "    mov  r7, r9\n"
            "    jmp  walk\n"
            "attachl:\n"
            "    st   r7, r4, WSIZE\n"
            "    jmp  inext\n"
            "attachr:\n"
            "    st   r7, r4, WSIZE+WSIZE\n"
            "    jmp  inext\n"
            "setroot:\n"
            "    st   r6, r4, 0\n"
            "inext:\n";
    if (farm != 0) {
        // per-production actions, as a parser generator runs
        text += "    mov  r5, r1\n";
        text += callFarm();
    }
    text += "    addi r2, r2, 1\n"
            "    jmp  insert\n"
            "lkpst:\n"
            "    movi r1, 555\n"      // same stream: all hits
            "    movi r2, 0\n"
            "    movi r3, LOOKUPS\n"
            "    movi r12, 0\n"
            "lloop:\n"
            "    bge  r2, r3, ldone\n";
    text += callRand();
    text += "    movi r6, root\n"
            "    ld   r7, r6, 0\n"
            "    movi r11, 0\n"
            "lwalk:\n"
            "    beq  r7, r11, lnext\n"
            "    ld   r8, r7, 0\n"
            "    beq  r8, r1, lhit\n"
            "    blt  r1, r8, lleft\n"
            "    ld   r7, r7, WSIZE+WSIZE\n"
            "    jmp  lwalk\n"
            "lleft:\n"
            "    ld   r7, r7, WSIZE\n"
            "    jmp  lwalk\n"
            "lhit:\n"
            "    addi r12, r12, 1\n"
            "lnext:\n";
    if (farm != 0) {
        text += "    mov  r5, r1\n";
        text += callFarm();
    }
    text += "    addi r2, r2, 1\n"
            "    jmp  lloop\n"
            "ldone:\n"
            "    movi r7, found\n"
            "    st   r7, r12, 0\n"
            "    halt\n";
    text += randSubroutine();
    if (farm != 0)
        text += farmCode(farm, 12);
    return text;
}

std::string
progSieve(unsigned limit)
{
    std::string text = strfmt(".equ LIMIT, %u\n"
                              ".data\n"
                              "flags: .spacew LIMIT\n"
                              "nprimes: .word 0\n"
                              ".code\n"
                              "main:\n",
                              limit);
    text += "    movi r2, 2\n"        // p
            "    movi r3, LIMIT\n"
            "    movi r4, flags\n"
            "    movi r9, 0\n"        // prime count
            "ploop:\n"
            "    bge  r2, r3, done\n"
            "    shli r5, r2, WSHIFT\n"
            "    add  r5, r5, r4\n"
            "    ld   r6, r5, 0\n"
            "    movi r7, 0\n"
            "    bne  r6, r7, pnext\n"
            "    addi r9, r9, 1\n"
            "    mul  r8, r2, r2\n"   // first multiple: p*p
            "mark:\n"
            "    bge  r8, r3, pnext\n"
            "    shli r5, r8, WSHIFT\n"
            "    add  r5, r5, r4\n"
            "    movi r6, 1\n"
            "    st   r5, r6, 0\n"
            "    add  r8, r8, r2\n"
            "    jmp  mark\n"
            "pnext:\n"
            "    addi r2, r2, 1\n"
            "    jmp  ploop\n"
            "done:\n"
            "    movi r5, nprimes\n"
            "    st   r5, r9, 0\n"
            "    halt\n";
    return text;
}

std::string
progQueueSim(unsigned events, unsigned wheel_size, unsigned farm)
{
    occsim_assert(isPowerOfTwo(wheel_size),
                  "event wheel must be a power of two");
    std::string text = strfmt(".equ EV, %u\n"
                              ".equ WMASK, %u\n"
                              ".data\n"
                              "wheel: .spacew %u\n"
                              "stats: .spacew 64\n"
                              "donecnt: .word 0\n",
                              events, wheel_size - 1, wheel_size);
    if (farm != 0)
        text += farmData(farm);
    text += ".code\n"
            "main:\n";
    text += "    movi r1, 8888\n"     // seed
            "    movi r2, 0\n"        // processed events
            "    movi r3, EV\n"
            "    movi r4, wheel\n"
            "    movi r10, stats\n"
            "    movi r6, 0\n"        // simulated time
            "    movi r5, 1\n"
            "    st   r4, r5, 0\n"    // seed one event at slot 0
            "loop:\n"
            "    bge  r2, r3, done\n"
            "    movi r7, WMASK\n"
            "    and  r7, r6, r7\n"
            "    shli r7, r7, WSHIFT\n"
            "    add  r7, r7, r4\n"   // &wheel[t mod W]
            "    ld   r8, r7, 0\n"
            "    movi r9, 0\n"
            "    beq  r8, r9, tick\n"
            "    addi r8, r8, -1\n"   // consume one event
            "    st   r7, r8, 0\n";
    text += callRand();
    text += "    movi r5, 16\n"
            "    mods r11, r1, r5\n"  // service time s
            "    shli r12, r11, WSHIFT\n"
            "    add  r12, r12, r10\n"
            "    ld   r5, r12, 0\n"   // stats[s]++
            "    addi r5, r5, 1\n"
            "    st   r12, r5, 0\n"
            "    add  r12, r6, r11\n" // completion at t+s+1
            "    addi r12, r12, 1\n"
            "    movi r5, WMASK\n"
            "    and  r12, r12, r5\n"
            "    shli r12, r12, WSHIFT\n"
            "    add  r12, r12, r4\n"
            "    ld   r5, r12, 0\n"
            "    addi r5, r5, 1\n"
            "    st   r12, r5, 0\n";
    if (farm != 0) {
        // per-event-type service routines, as a simulator dispatches
        text += "    add  r5, r11, r2\n";
        text += callFarm();
    }
    text += "    addi r2, r2, 1\n"
            "    jmp  loop\n"
            "tick:\n"
            "    addi r6, r6, 1\n"
            "    jmp  loop\n"
            "done:\n"
            "    movi r7, donecnt\n"
            "    st   r7, r2, 0\n"
            "    halt\n";
    text += randSubroutine();
    if (farm != 0)
        text += farmCode(farm, 12);
    return text;
}

std::string
progEditor(unsigned buf_words, unsigned ops, unsigned farm)
{
    std::string text = strfmt(".equ B, %u\n"
                              ".equ OPS, %u\n"
                              ".data\n"
                              "buf: .spacew B\n"
                              "gsv: .word 0\n"
                              "gev: .word B\n",
                              buf_words, ops);
    if (farm != 0)
        text += farmData(farm);
    text += ".code\n"
            "main:\n";
    text += "    movi r1, 97531\n"    // seed
            "    movi r2, 0\n"        // op counter
            "    movi r3, OPS\n"
            "oloop:\n"
            "    bge  r2, r3, done\n";
    text += callRand();
    text += "    movi r5, gsv\n"
            "    ld   r6, r5, 0\n"    // gap start
            "    movi r5, gev\n"
            "    ld   r7, r5, 0\n"    // gap end
            "    movi r8, B\n"
            "    sub  r9, r7, r6\n"
            "    sub  r8, r8, r9\n"   // text length
            "    addi r9, r8, 1\n"
            "    mods r10, r1, r9\n"  // target position
            "    bge  r10, r6, movefwd\n"
            "movleft:\n"              // shift gap left one word
            "    bge  r10, r6, moved\n"
            "    addi r6, r6, -1\n"
            "    addi r7, r7, -1\n"
            "    shli r9, r6, WSHIFT\n"
            "    movi r11, buf\n"
            "    add  r9, r9, r11\n"
            "    ld   r12, r9, 0\n"
            "    shli r9, r7, WSHIFT\n"
            "    add  r9, r9, r11\n"
            "    st   r9, r12, 0\n"
            "    jmp  movleft\n"
            "movefwd:\n"              // shift gap right one word
            "    bge  r6, r10, moved\n"
            "    shli r9, r7, WSHIFT\n"
            "    movi r11, buf\n"
            "    add  r9, r9, r11\n"
            "    ld   r12, r9, 0\n"
            "    shli r9, r6, WSHIFT\n"
            "    add  r9, r9, r11\n"
            "    st   r9, r12, 0\n"
            "    addi r6, r6, 1\n"
            "    addi r7, r7, 1\n"
            "    jmp  movefwd\n"
            "moved:\n";
    text += callRand();
    text += "    movi r5, 4\n"
            "    mods r9, r1, r5\n"
            "    movi r5, 2\n"
            "    blt  r9, r5, insertw\n"
            "    movi r5, 3\n"
            "    blt  r9, r5, deletew\n"
            "    jmp  store\n"        // op 3: cursor motion only
            "insertw:\n"
            "    bge  r6, r7, store\n" // gap full
            "    shli r9, r6, WSHIFT\n"
            "    movi r11, buf\n"
            "    add  r9, r9, r11\n"
            "    st   r9, r1, 0\n"
            "    addi r6, r6, 1\n"
            "    jmp  store\n"
            "deletew:\n"
            "    movi r5, 0\n"
            "    bge  r5, r6, store\n" // nothing before the gap
            "    addi r6, r6, -1\n"
            "store:\n";
    if (farm != 0) {
        // per-command handlers, as ed dispatches commands
        text += "    mov  r5, r10\n";
        text += callFarm();
    }
    text += "    movi r5, gsv\n"
            "    st   r5, r6, 0\n"
            "    movi r5, gev\n"
            "    st   r5, r7, 0\n"
            "    addi r2, r2, 1\n"
            "    jmp  oloop\n"
            "done:\n"
            "    halt\n";
    text += randSubroutine();
    if (farm != 0)
        text += farmCode(farm, 12);
    return text;
}

std::string
progFib(unsigned n)
{
    return strfmt(".equ FN, %u\n"
                  ".data\n"
                  "result: .word 0\n"
                  ".code\n"
                  "main:\n"
                  "    movi r1, FN\n"
                  "    call fib\n"
                  "    movi r5, result\n"
                  "    st   r5, r1, 0\n"
                  "    halt\n"
                  "fib:\n"
                  "    movi r5, 2\n"
                  "    blt  r1, r5, base\n"
                  "    push r1\n"
                  "    addi r1, r1, -1\n"
                  "    call fib\n"
                  "    pop  r2\n"
                  "    push r1\n"
                  "    addi r1, r2, -2\n"
                  "    call fib\n"
                  "    pop  r2\n"
                  "    add  r1, r1, r2\n"
                  "base:\n"
                  "    ret\n",
                  n);
}

std::string
progTowers(unsigned disks)
{
    occsim_assert(disks >= 1 && disks <= 20, "1..20 disks");
    // moves(n) = 2^n - 1 log entries of [from, to] pairs.
    const unsigned moves = (1u << disks) - 1;
    std::string text = strfmt(".equ DISKS, %u\n"
                              ".data\n"
                              "movelog: .spacew %u\n"
                              "nmoves: .word 0\n"
                              ".code\n"
                              "main:\n",
                              disks, moves * 2);
    // hanoi(n = r1, from = r2, to = r3, via = r4)
    text += "    movi r1, DISKS\n"
            "    movi r2, 1\n"       // peg ids 1..3
            "    movi r3, 3\n"
            "    movi r4, 2\n"
            "    movi r9, 0\n"        // move count
            "    movi r10, movelog\n" // log cursor
            "    call hanoi\n"
            "    movi r5, nmoves\n"
            "    st   r5, r9, 0\n"
            "    halt\n"
            "hanoi:\n"
            "    movi r5, 1\n"
            "    blt  r1, r5, hret\n" // n < 1: nothing
            // hanoi(n-1, from, via, to)
            "    push r1\n"
            "    push r3\n"
            "    push r4\n"
            "    addi r1, r1, -1\n"
            "    mov  r5, r3\n"       // swap to/via
            "    mov  r3, r4\n"
            "    mov  r4, r5\n"
            "    call hanoi\n"
            "    pop  r4\n"
            "    pop  r3\n"
            "    pop  r1\n"
            // record move from -> to
            "    st   r10, r2, 0\n"
            "    st   r10, r3, WSIZE\n"
            "    addi r10, r10, WSIZE+WSIZE\n"
            "    addi r9, r9, 1\n"
            // hanoi(n-1, via, to, from)
            "    push r1\n"
            "    push r2\n"
            "    addi r1, r1, -1\n"
            "    mov  r5, r2\n"       // from <- via, via <- from
            "    mov  r2, r4\n"
            "    mov  r4, r5\n"
            "    call hanoi\n"
            "    pop  r2\n"
            "    pop  r1\n"
            "hret:\n"
            "    ret\n";
    return text;
}

std::string
progMergeSort(unsigned n)
{
    occsim_assert(n >= 2, "need at least two elements");
    std::string text = strfmt(".equ N, %u\n"
                              ".data\n"
                              "bufa: .spacew N\n"
                              "bufb: .spacew N\n"
                              "srcv: .word 0\n"
                              ".code\n"
                              "main:\n",
                              n);
    text += fillLoop("bufa", "N", 60221, 0, "init", "msort");
    text += "msort:\n"
            "    movi r8, bufa\n"     // src
            "    movi r9, bufb\n"     // dst
            "    movi r10, 1\n"       // run width
            "wloop:\n"
            "    movi r2, N\n"
            "    bge  r10, r2, done\n"
            "    movi r11, 0\n"       // i: start of run pair
            "passloop:\n"
            "    movi r2, N\n"
            "    bge  r11, r2, passend\n"
            // l = i; m = min(i+w, N); r = min(i+2w, N); o = i; j = m
            "    mov  r1, r11\n"
            "    add  r2, r11, r10\n"
            "    movi r3, N\n"
            "    blt  r2, r3, mok\n"
            "    mov  r2, r3\n"
            "mok:\n"
            "    add  r3, r11, r10\n"
            "    add  r3, r3, r10\n"
            "    movi r0, N\n"
            "    blt  r3, r0, rok\n"
            "    mov  r3, r0\n"
            "rok:\n"
            "    mov  r4, r11\n"      // o
            "    mov  r5, r2\n"       // j
            "mloop:\n"
            "    bge  r1, r2, rightonly\n"
            "    bge  r5, r3, takeleft\n"
            "    shli r6, r1, WSHIFT\n"
            "    add  r6, r6, r8\n"
            "    ld   r6, r6, 0\n"    // src[l]
            "    shli r7, r5, WSHIFT\n"
            "    add  r7, r7, r8\n"
            "    ld   r7, r7, 0\n"    // src[j]
            "    blt  r7, r6, pickright\n"
            "takeleft:\n"
            "    shli r6, r1, WSHIFT\n"
            "    add  r6, r6, r8\n"
            "    ld   r6, r6, 0\n"
            "    shli r7, r4, WSHIFT\n"
            "    add  r7, r7, r9\n"
            "    st   r7, r6, 0\n"
            "    addi r1, r1, 1\n"
            "    jmp  mnext\n"
            "pickright:\n"
            "    shli r6, r5, WSHIFT\n"
            "    add  r6, r6, r8\n"
            "    ld   r6, r6, 0\n"
            "    shli r7, r4, WSHIFT\n"
            "    add  r7, r7, r9\n"
            "    st   r7, r6, 0\n"
            "    addi r5, r5, 1\n"
            "    jmp  mnext\n"
            "rightonly:\n"
            "    bge  r5, r3, runend\n"
            "    jmp  pickright\n"
            "mnext:\n"
            "    addi r4, r4, 1\n"
            "    bge  r4, r3, runend\n"
            "    jmp  mloop\n"
            "runend:\n"
            "    add  r11, r11, r10\n"
            "    add  r11, r11, r10\n"
            "    jmp  passloop\n"
            "passend:\n"
            "    mov  r0, r8\n"       // swap buffers
            "    mov  r8, r9\n"
            "    mov  r9, r0\n"
            "    shli r10, r10, 1\n"
            "    jmp  wloop\n"
            "done:\n"
            "    movi r0, srcv\n"
            "    st   r0, r8, 0\n"    // where the sorted data lives
            "    halt\n";
    text += randSubroutine();
    return text;
}

std::string
progStringSort(unsigned n, unsigned rec_words)
{
    occsim_assert(n >= 2 && rec_words >= 1, "need records to sort");
    std::string text = strfmt(".equ N, %u\n"
                              ".equ RW, %u\n"
                              ".data\n"
                              "recs: .spacew %u\n"
                              "idx:  .spacew N\n"
                              ".code\n"
                              "main:\n",
                              n, rec_words, n * rec_words);
    // Fill the records with pseudo-random "characters".
    text += fillLoop("recs", "N+0", 3141, 26, "rinit", "fixcnt");
    // fillLoop filled only N entries; extend to all N*RW words.
    text += "fixcnt:\n"
            "    movi r3, %TOTAL%\n"
            "rloop:\n"
            "    bge  r2, r3, iinit\n";
    text += callRand();
    text += "    movi r5, 26\n"
            "    mods r6, r1, r5\n"
            "    shli r7, r2, WSHIFT\n"
            "    add  r7, r7, r4\n"
            "    st   r7, r6, 0\n"
            "    addi r2, r2, 1\n"
            "    jmp  rloop\n"
            // idx[i] = address of record i
            "iinit:\n"
            "    movi r2, 0\n"
            "    movi r3, N\n"
            "    movi r8, idx\n"
            "    movi r9, recs\n"
            "il:\n"
            "    bge  r2, r3, sort\n"
            "    movi r5, RW\n"
            "    mul  r5, r5, r2\n"
            "    shli r5, r5, WSHIFT\n"
            "    add  r5, r5, r9\n"   // &recs[i*RW]
            "    shli r6, r2, WSHIFT\n"
            "    add  r6, r6, r8\n"
            "    st   r6, r5, 0\n"    // idx[i] = pointer
            "    addi r2, r2, 1\n"
            "    jmp  il\n"
            // selection sort of idx by record contents
            "sort:\n"
            "    movi r2, 0\n"        // i
            "    movi r3, N-1\n"
            "so:\n"
            "    bge  r2, r3, done\n"
            "    mov  r11, r2\n"      // min position
            "    addi r12, r2, 1\n"   // j
            "    movi r3, N\n"
            "si:\n"
            "    bge  r12, r3, swap\n"
            "    mov  r5, r12\n"      // candidate j
            "    mov  r6, r11\n"      // current min
            "    call reccmp\n"       // r5 = 1 if idx[r5] < idx[r6]
            "    movi r6, 0\n"
            "    beq  r5, r6, snext\n"
            "    mov  r11, r12\n"
            "snext:\n"
            "    addi r12, r12, 1\n"
            "    jmp  si\n"
            "swap:\n"
            "    shli r5, r2, WSHIFT\n"
            "    add  r5, r5, r8\n"
            "    shli r6, r11, WSHIFT\n"
            "    add  r6, r6, r8\n"
            "    ld   r7, r5, 0\n"
            "    ld   r9, r6, 0\n"
            "    st   r5, r9, 0\n"
            "    st   r6, r7, 0\n"
            "    movi r9, recs\n"     // restore recs base
            "    addi r2, r2, 1\n"
            "    movi r3, N-1\n"
            "    jmp  so\n"
            "done:\n"
            "    halt\n"
            // reccmp: lexicographic compare of records idx[r5], idx[r6]
            // -> r5 = 1 if first is smaller; clobbers r0, r6, r7, r10
            "reccmp:\n"
            "    shli r0, r5, WSHIFT\n"
            "    add  r0, r0, r8\n"
            "    ld   r7, r0, 0\n"    // pa
            "    shli r0, r6, WSHIFT\n"
            "    add  r0, r0, r8\n"
            "    ld   r10, r0, 0\n"   // pb
            "    movi r6, 0\n"        // k
            "cmpl:\n"
            "    movi r0, RW\n"
            "    bge  r6, r0, cmpeq\n"
            "    ld   r0, r7, 0\n"    // *pa
            "    push r1\n"
            "    ld   r1, r10, 0\n"   // *pb
            "    blt  r0, r1, cmplt1\n"
            "    blt  r1, r0, cmpgt1\n"
            "    pop  r1\n"
            "    addi r7, r7, WSIZE\n"
            "    addi r10, r10, WSIZE\n"
            "    addi r6, r6, 1\n"
            "    jmp  cmpl\n"
            "cmplt1:\n"
            "    pop  r1\n"
            "    movi r5, 1\n"
            "    ret\n"
            "cmpgt1:\n"
            "    pop  r1\n"
            "    movi r5, 0\n"
            "    ret\n"
            "cmpeq:\n"
            "    movi r5, 0\n"        // equal: not smaller
            "    ret\n";
    const std::string placeholder = "%TOTAL%";
    const std::size_t pos = text.find(placeholder);
    occsim_assert(pos != std::string::npos, "placeholder missing");
    text.replace(pos, placeholder.size(), strfmt("%u", n * rec_words));
    text += randSubroutine();
    return text;
}

std::vector<std::string>
programNames()
{
    return {"bubblesort", "quicksort", "mergesort", "stringsearch",
            "wordcount",  "matmul",     "linkedlist", "pchase",
            "hashtable",  "lexer",      "textformat", "bst",
            "sieve",      "queuesim",   "editor",     "fib",
            "towers",     "stringsort"};
}

std::string
programByName(const std::string &name)
{
    if (name == "bubblesort")
        return progBubbleSort(256);
    if (name == "quicksort")
        return progQuickSort(1024);
    if (name == "stringsearch")
        return progStringSearch(2048, 8, 2);
    if (name == "wordcount")
        return progWordCount(4096, 2);
    if (name == "matmul")
        return progMatMul(24);
    if (name == "linkedlist")
        return progLinkedList(512, 64);
    if (name == "pchase")
        return progPointerChase(1024, 8192);
    if (name == "hashtable")
        return progHashTable(7, 768, 2048);
    if (name == "lexer")
        return progLexer(4096, 2);
    if (name == "textformat")
        return progTextFormat(4096, 60, 2);
    if (name == "bst")
        return progBst(768, 2048);
    if (name == "sieve")
        return progSieve(4096);
    if (name == "queuesim")
        return progQueueSim(4096, 256);
    if (name == "editor")
        return progEditor(2048, 512);
    if (name == "fib")
        return progFib(18);
    if (name == "towers")
        return progTowers(12);
    if (name == "mergesort")
        return progMergeSort(1024);
    if (name == "stringsort")
        return progStringSort(96, 8);
    fatal("unknown program '%s'", name.c_str());
}

} // namespace occsim
