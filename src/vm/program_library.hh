/**
 * @file
 * A library of real OC-1 programs used to generate the substitute
 * workload traces (the paper's Tables 2-5 suites). Each factory
 * returns parameterized assembly text; the parameters size the data
 * structures so each architecture suite can run the same program at
 * its characteristic working-set scale (compact Z8000 utilities up to
 * large System/370 jobs).
 *
 * The programs compute real results (tests verify them), so their
 * address streams carry genuine control-flow and data-structure
 * locality: sequential instruction runs broken by loops and calls,
 * stack activity, forward-biased scans, pointer chasing, and
 * scattered table updates.
 */

#ifndef OCCSIM_VM_PROGRAM_LIBRARY_HH
#define OCCSIM_VM_PROGRAM_LIBRARY_HH

#include <string>
#include <vector>

namespace occsim {

/*
 * Several factories take a `farm` parameter (0 = off): the size of a
 * generated "routine farm" of data-dispatched handler routines with
 * private statics, modelling the many small functions (request
 * handlers, semantic actions, comparators) real era programs spread
 * their time over. Farm size is the per-architecture knob for hot
 * code footprint; it must be a power of two.
 */

/** Bubble sort of @p n pseudo-random words (quadratic, tiny code). */
std::string progBubbleSort(unsigned n);

/** Recursive quicksort of @p n pseudo-random words. */
std::string progQuickSort(unsigned n, unsigned farm = 0);

/** Naive substring search: pattern of @p pat_len words over a text of
 *  @p text_words words; the pattern is lifted from the text so at
 *  least one match exists. */
std::string progStringSearch(unsigned text_words, unsigned pat_len,
                              unsigned passes = 1);

/** Word count over @p text_words words (0 acts as the separator). */
std::string progWordCount(unsigned text_words, unsigned passes = 1,
                           unsigned farm = 0);

/** Integer matrix multiply C = A x B with @p dim x @p dim matrices. */
std::string progMatMul(unsigned dim);

/** Build a scattered singly-linked list of @p nodes nodes and walk it
 *  @p traversals times, summing values. */
std::string progLinkedList(unsigned nodes, unsigned traversals,
                            unsigned farm = 0);

/** Scattered pointer ring: one-word nodes spread through a pool of
 *  @p nodes nodes, chased for @p hops dependent loads (unrolled x8).
 *  The most memory-bound workload in the library. */
std::string progPointerChase(unsigned nodes, unsigned hops);

/** Chained hash table: 2^@p buckets_log2 buckets, @p items inserts,
 *  then @p lookups lookups. */
std::string progHashTable(unsigned buckets_log2, unsigned items,
                          unsigned lookups, unsigned farm = 0);

/** Lexical scanner over @p text_words pseudo-characters, emitting a
 *  token-code stream. */
std::string progLexer(unsigned text_words, unsigned passes = 1,
                      unsigned farm = 0);

/** roff-style formatter: reflow @p text_words words into lines of
 *  @p line_width words in an output buffer. */
std::string progTextFormat(unsigned text_words, unsigned line_width,
                            unsigned passes = 1, unsigned farm = 0);

/** Binary search tree: @p items inserts then @p lookups lookups. */
std::string progBst(unsigned items, unsigned lookups,
                    unsigned farm = 0);

/** Sieve of Eratosthenes up to @p limit (one word per candidate). */
std::string progSieve(unsigned limit);

/** Event-wheel queueing simulation: @p events events over a circular
 *  wheel of @p wheel_size slots with a statistics table. */
std::string progQueueSim(unsigned events, unsigned wheel_size,
                         unsigned farm = 0);

/** Gap-buffer text editor: @p ops scripted insert/delete/move
 *  operations on a buffer of @p buf_words words. */
std::string progEditor(unsigned buf_words, unsigned ops,
                       unsigned farm = 0);

/** Deeply recursive Fibonacci of @p n (call-stack-heavy workload). */
std::string progFib(unsigned n);

/** Towers of Hanoi with @p disks disks, recording each move into a
 *  log buffer (deep recursion + sequential output stream). */
std::string progTowers(unsigned disks);

/** Bottom-up merge sort of @p n words between two buffers — the
 *  streaming two-tape merge locality of external sorts. The sorted
 *  buffer's base address is left in the `srcv` word. */
std::string progMergeSort(unsigned n);

/** Indirect sort: selection-sorts an index array by comparing
 *  fixed-length string records (@p n records of @p rec_words words)
 *  through the indices — the two-level access pattern of sort(1) on
 *  text lines. */
std::string progStringSort(unsigned n, unsigned rec_words);

/** Names of all programs (for tooling and tests). */
std::vector<std::string> programNames();

/**
 * Build a program by name with default (small) parameters; used by
 * the tracegen tool and smoke tests. Calls fatal() for unknown names.
 */
std::string programByName(const std::string &name);

} // namespace occsim

#endif // OCCSIM_VM_PROGRAM_LIBRARY_HH
