#include "vm/assembler.hh"

#include <cctype>

#include "util/logging.hh"
#include "util/str.hh"

namespace occsim {

MachineConfig
MachineConfig::word16()
{
    MachineConfig config;
    config.wordSize = 2;
    config.addressBits = 16;
    config.codeBase = 0x0100;
    config.dataBase = 0x4000;
    config.memBytes = 1u << 16;
    return config;
}

MachineConfig
MachineConfig::word32(std::uint32_t mem_bytes)
{
    MachineConfig config;
    config.wordSize = 4;
    config.addressBits = 24;
    config.codeBase = 0x00001000;
    config.dataBase = 0x00020000;
    config.memBytes = mem_bytes;
    return config;
}

std::uint32_t
Program::codeBytes() const
{
    return static_cast<std::uint32_t>(pcMap.size()) * config.wordSize;
}

Addr
Program::symbol(const std::string &name) const
{
    const auto it = symbols.find(name);
    if (it == symbols.end())
        fatal("unknown symbol '%s'", name.c_str());
    return it->second;
}

namespace {

/** Working state for one assembly run. */
class Assembler
{
  public:
    Assembler(const std::string &source, const MachineConfig &config)
        : source_(source), config_(config)
    {
    }

    Program run();

  private:
    struct Statement
    {
        int lineNo;
        std::string label;      ///< empty if none
        std::string mnemonic;   ///< instruction or directive ('.'-led)
        std::vector<std::string> operands;
    };

    [[noreturn]] void err(int line_no, const std::string &message) const
    {
        fatal("asm line %d: %s", line_no, message.c_str());
    }

    std::vector<Statement> parse() const;
    void firstPass(const std::vector<Statement> &statements);
    void secondPass(const std::vector<Statement> &statements);

    bool isRegister(const std::string &token, unsigned &reg) const;
    unsigned parseRegister(const Statement &st,
                           const std::string &token) const;
    std::int64_t evalExpr(const Statement &st,
                          const std::string &expr) const;
    void emitWord(std::int64_t value);

    const std::string &source_;
    MachineConfig config_;
    Program program_;
    std::map<std::string, std::int64_t> equs_;
    bool inData_ = false;
    std::uint32_t codeWords_ = 0;  ///< first pass location counter
    std::uint32_t dataBytes_ = 0;  ///< first pass location counter
};

std::vector<Assembler::Statement>
Assembler::parse() const
{
    std::vector<Statement> statements;
    int line_no = 0;
    for (std::string &raw : split(source_, '\n', true)) {
        ++line_no;
        const std::size_t comment = raw.find(';');
        if (comment != std::string::npos)
            raw.erase(comment);
        std::string line = trim(raw);
        if (line.empty())
            continue;

        Statement st;
        st.lineNo = line_no;

        // Optional leading label ("name:").
        const std::size_t colon = line.find(':');
        if (colon != std::string::npos &&
            line.find_first_of(" \t,") > colon) {
            st.label = trim(line.substr(0, colon));
            if (st.label.empty())
                err(line_no, "empty label");
            line = trim(line.substr(colon + 1));
        }

        if (!line.empty()) {
            std::size_t space = line.find_first_of(" \t");
            if (space == std::string::npos) {
                st.mnemonic = line;
            } else {
                st.mnemonic = line.substr(0, space);
                const std::string rest = trim(line.substr(space));
                for (const std::string &field : split(rest, ',')) {
                    const std::string operand = trim(field);
                    if (operand.empty())
                        err(line_no, "empty operand");
                    st.operands.push_back(operand);
                }
            }
        }
        statements.push_back(std::move(st));
    }
    return statements;
}

bool
Assembler::isRegister(const std::string &token, unsigned &reg) const
{
    if (token == "sp") {
        reg = kSpReg;
        return true;
    }
    if (token.size() < 2 || token.size() > 3 || token[0] != 'r')
        return false;
    unsigned value = 0;
    for (std::size_t i = 1; i < token.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(token[i])))
            return false;
        value = value * 10 + static_cast<unsigned>(token[i] - '0');
    }
    if (value >= kNumRegs)
        return false;
    reg = value;
    return true;
}

unsigned
Assembler::parseRegister(const Statement &st,
                         const std::string &token) const
{
    unsigned reg = 0;
    if (!isRegister(token, reg))
        err(st.lineNo, "expected register, got '" + token + "'");
    return reg;
}

std::int64_t
Assembler::evalExpr(const Statement &st, const std::string &expr) const
{
    // Grammar: term (('+'|'-') term)*, term = number | symbol.
    // A leading '-' negates the first term.
    std::int64_t total = 0;
    int sign = 1;
    std::size_t pos = 0;
    bool expect_term = true;
    const std::string text = expr;

    auto read_term = [&]() -> std::int64_t {
        std::size_t start = pos;
        while (pos < text.size() && text[pos] != '+' &&
               text[pos] != '-') {
            ++pos;
        }
        const std::string token = trim(text.substr(start, pos - start));
        if (token.empty())
            err(st.lineNo, "malformed expression '" + expr + "'");
        if (std::isdigit(static_cast<unsigned char>(token[0]))) {
            std::uint64_t value = 0;
            if (!parseU64(token, value))
                err(st.lineNo, "bad number '" + token + "'");
            return static_cast<std::int64_t>(value);
        }
        if (const auto it = equs_.find(token); it != equs_.end())
            return it->second;
        if (const auto it = program_.symbols.find(token);
            it != program_.symbols.end()) {
            return static_cast<std::int64_t>(it->second);
        }
        err(st.lineNo, "undefined symbol '" + token + "'");
    };

    while (pos < text.size()) {
        if (expect_term) {
            if (text[pos] == '-') {
                sign = -sign;
                ++pos;
                continue;
            }
            total += sign * read_term();
            sign = 1;
            expect_term = false;
        } else {
            if (text[pos] == '+') {
                sign = 1;
            } else if (text[pos] == '-') {
                sign = -1;
            } else {
                err(st.lineNo, "malformed expression '" + expr + "'");
            }
            ++pos;
            expect_term = true;
        }
    }
    if (expect_term)
        err(st.lineNo, "malformed expression '" + expr + "'");
    return total;
}

void
Assembler::emitWord(std::int64_t value)
{
    for (std::uint32_t b = 0; b < config_.wordSize; ++b) {
        program_.data.push_back(
            static_cast<std::uint8_t>(value >> (8 * b)));
    }
}

void
Assembler::firstPass(const std::vector<Statement> &statements)
{
    inData_ = false;
    codeWords_ = 0;
    dataBytes_ = 0;
    for (const Statement &st : statements) {
        if (!st.label.empty()) {
            const Addr addr =
                inData_ ? config_.dataBase + dataBytes_
                        : config_.codeBase +
                              codeWords_ * config_.wordSize;
            if (!program_.symbols.emplace(st.label, addr).second)
                err(st.lineNo, "duplicate label '" + st.label + "'");
        }
        if (st.mnemonic.empty())
            continue;
        if (st.mnemonic[0] == '.') {
            if (st.mnemonic == ".code") {
                inData_ = false;
            } else if (st.mnemonic == ".data") {
                inData_ = true;
            } else if (st.mnemonic == ".equ") {
                if (st.operands.size() != 2)
                    err(st.lineNo, ".equ needs name, value");
                // Defer evaluation to the second pass only for
                // ordering simplicity: evaluate now with what we have
                // (numbers and earlier equs), which covers all uses.
                equs_[st.operands[0]] = evalExpr(st, st.operands[1]);
            } else if (st.mnemonic == ".word") {
                if (!inData_)
                    err(st.lineNo, ".word outside .data");
                dataBytes_ += static_cast<std::uint32_t>(
                                  st.operands.size()) *
                              config_.wordSize;
            } else if (st.mnemonic == ".space") {
                if (!inData_)
                    err(st.lineNo, ".space outside .data");
                if (st.operands.size() != 1)
                    err(st.lineNo, ".space needs a byte count");
                dataBytes_ += static_cast<std::uint32_t>(
                    evalExpr(st, st.operands[0]));
            } else if (st.mnemonic == ".spacew") {
                if (!inData_)
                    err(st.lineNo, ".spacew outside .data");
                if (st.operands.size() != 1)
                    err(st.lineNo, ".spacew needs a word count");
                dataBytes_ += static_cast<std::uint32_t>(
                                  evalExpr(st, st.operands[0])) *
                              config_.wordSize;
            } else {
                err(st.lineNo,
                    "unknown directive '" + st.mnemonic + "'");
            }
            continue;
        }
        if (inData_)
            err(st.lineNo, "instruction inside .data");
        const Opcode op = opcodeFromName(st.mnemonic);
        if (op == Opcode::NumOpcodes)
            err(st.lineNo, "unknown mnemonic '" + st.mnemonic + "'");
        codeWords_ += opcodeLengthWords(op);
    }
}

void
Assembler::secondPass(const std::vector<Statement> &statements)
{
    inData_ = false;
    program_.pcMap.assign(codeWords_, -1);
    std::uint32_t word = 0;

    for (const Statement &st : statements) {
        if (st.mnemonic.empty())
            continue;
        if (st.mnemonic[0] == '.') {
            if (st.mnemonic == ".code") {
                inData_ = false;
            } else if (st.mnemonic == ".data") {
                inData_ = true;
            } else if (st.mnemonic == ".word") {
                for (const std::string &operand : st.operands)
                    emitWord(evalExpr(st, operand));
            } else if (st.mnemonic == ".space") {
                const auto bytes = static_cast<std::uint32_t>(
                    evalExpr(st, st.operands[0]));
                program_.data.insert(program_.data.end(), bytes, 0);
            } else if (st.mnemonic == ".spacew") {
                const auto bytes = static_cast<std::uint32_t>(
                                       evalExpr(st, st.operands[0])) *
                                   config_.wordSize;
                program_.data.insert(program_.data.end(), bytes, 0);
            }
            continue;
        }

        const Opcode op = opcodeFromName(st.mnemonic);
        Instruction instr;
        instr.op = op;
        const auto &ops = st.operands;
        auto need = [&](std::size_t n) {
            if (ops.size() != n) {
                err(st.lineNo,
                    strfmt("'%s' needs %zu operands, got %zu",
                           st.mnemonic.c_str(), n, ops.size()));
            }
        };

        switch (op) {
          case Opcode::NOP:
          case Opcode::HALT:
          case Opcode::RET:
            need(0);
            break;
          case Opcode::MOVI:
            need(2);
            instr.rd = parseRegister(st, ops[0]);
            instr.imm = static_cast<std::int32_t>(evalExpr(st, ops[1]));
            break;
          case Opcode::MOV:
            need(2);
            instr.rd = parseRegister(st, ops[0]);
            instr.rs = parseRegister(st, ops[1]);
            break;
          case Opcode::ADD:
          case Opcode::SUB:
          case Opcode::MUL:
          case Opcode::DIVS:
          case Opcode::MODS:
          case Opcode::AND:
          case Opcode::OR:
          case Opcode::XOR:
            need(3);
            instr.rd = parseRegister(st, ops[0]);
            instr.rs = parseRegister(st, ops[1]);
            instr.rt = parseRegister(st, ops[2]);
            break;
          case Opcode::ADDI:
          case Opcode::SHLI:
          case Opcode::SHRI:
            need(3);
            instr.rd = parseRegister(st, ops[0]);
            instr.rs = parseRegister(st, ops[1]);
            instr.imm = static_cast<std::int32_t>(evalExpr(st, ops[2]));
            break;
          case Opcode::LD:
            need(3);
            instr.rd = parseRegister(st, ops[0]);
            instr.rs = parseRegister(st, ops[1]);
            instr.imm = static_cast<std::int32_t>(evalExpr(st, ops[2]));
            break;
          case Opcode::ST:
            need(3);
            instr.rs = parseRegister(st, ops[0]);
            instr.rt = parseRegister(st, ops[1]);
            instr.imm = static_cast<std::int32_t>(evalExpr(st, ops[2]));
            break;
          case Opcode::PUSH:
            need(1);
            instr.rs = parseRegister(st, ops[0]);
            break;
          case Opcode::POP:
            need(1);
            instr.rd = parseRegister(st, ops[0]);
            break;
          case Opcode::BEQ:
          case Opcode::BNE:
          case Opcode::BLT:
          case Opcode::BGE:
            need(3);
            instr.rs = parseRegister(st, ops[0]);
            instr.rt = parseRegister(st, ops[1]);
            instr.imm = static_cast<std::int32_t>(evalExpr(st, ops[2]));
            break;
          case Opcode::JMP:
          case Opcode::CALL:
            need(1);
            instr.imm = static_cast<std::int32_t>(evalExpr(st, ops[0]));
            break;
          case Opcode::NumOpcodes:
            err(st.lineNo, "internal: bad opcode");
        }

        program_.pcMap[word] =
            static_cast<std::int32_t>(program_.instrs.size());
        program_.instrAddr.push_back(config_.codeBase +
                                     word * config_.wordSize);
        program_.instrs.push_back(instr);
        word += opcodeLengthWords(op);
    }
}

Program
Assembler::run()
{
    program_.config = config_;
    equs_["WSIZE"] = config_.wordSize;
    equs_["WSHIFT"] = floorLog2(config_.wordSize);
    const std::vector<Statement> statements = parse();
    firstPass(statements);
    secondPass(statements);

    const std::uint32_t code_end =
        config_.codeBase + codeWords_ * config_.wordSize;
    if (code_end > config_.dataBase)
        fatal("code section (%u bytes) overruns data base 0x%x",
              codeWords_ * config_.wordSize, config_.dataBase);
    if (config_.dataBase + program_.data.size() > config_.memBytes)
        fatal("data section (%zu bytes) overruns memory (%u bytes)",
              program_.data.size(), config_.memBytes);
    return std::move(program_);
}

} // namespace

Program
assemble(const std::string &source, const MachineConfig &config)
{
    Assembler assembler(source, config);
    return assembler.run();
}

} // namespace occsim
