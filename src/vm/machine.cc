#include "vm/machine.hh"

#include <cstring>

#include "util/logging.hh"

namespace occsim {

Machine::Machine(Program program)
    : program_(std::move(program)),
      wordSize_(program_.config.wordSize)
{
    const MachineConfig &config = program_.config;
    occsim_assert(config.wordSize == 2 || config.wordSize == 4,
                  "word size must be 2 or 4");
    addrMask_ = config.addressBits >= 32
                    ? ~Addr{0}
                    : ((Addr{1} << config.addressBits) - 1);
    memory_.resize(config.memBytes, 0);
    restart();
}

void
Machine::restart()
{
    std::memset(memory_.data(), 0, memory_.size());
    if (!program_.data.empty()) {
        std::memcpy(memory_.data() + program_.config.dataBase,
                    program_.data.data(), program_.data.size());
    }
    for (auto &reg : regs_)
        reg = 0;
    regs_[kSpReg] =
        static_cast<std::int32_t>(program_.config.initialSp());
    instrIndex_ = 0;
    halted_ = program_.instrs.empty();
}

void
Machine::trap(const char *why, Addr addr) const
{
    panic("vm trap: %s at address 0x%x (instr #%llu)", why, addr,
          static_cast<unsigned long long>(instrCount_));
}

std::int32_t
Machine::peekWord(Addr addr) const
{
    addr &= addrMask_;
    if (addr + wordSize_ > memory_.size())
        trap("load outside memory", addr);
    std::uint32_t value = 0;
    for (std::uint32_t b = 0; b < wordSize_; ++b)
        value |= static_cast<std::uint32_t>(memory_[addr + b]) << (8 * b);
    if (wordSize_ == 2) {
        // Sign-extend 16-bit memory words into 32-bit registers.
        return static_cast<std::int32_t>(
            static_cast<std::int16_t>(value));
    }
    return static_cast<std::int32_t>(value);
}

void
Machine::pokeWord(Addr addr, std::int32_t value)
{
    addr &= addrMask_;
    if (addr + wordSize_ > memory_.size())
        trap("store outside memory", addr);
    for (std::uint32_t b = 0; b < wordSize_; ++b) {
        memory_[addr + b] =
            static_cast<std::uint8_t>(
                static_cast<std::uint32_t>(value) >> (8 * b));
    }
}

std::int32_t
Machine::loadWord(Addr addr, std::vector<MemRef> &refs)
{
    addr &= addrMask_;
    refs.push_back(MemRef{addr, RefKind::DataRead,
                          static_cast<std::uint8_t>(wordSize_)});
    return peekWord(addr);
}

void
Machine::storeWord(Addr addr, std::int32_t value,
                   std::vector<MemRef> &refs)
{
    addr &= addrMask_;
    refs.push_back(MemRef{addr, RefKind::DataWrite,
                          static_cast<std::uint8_t>(wordSize_)});
    pokeWord(addr, value);
}

void
Machine::jumpTo(Addr target)
{
    target &= addrMask_;
    const MachineConfig &config = program_.config;
    if (target < config.codeBase ||
        (target - config.codeBase) % wordSize_ != 0) {
        trap("jump to non-instruction address", target);
    }
    const std::size_t word = (target - config.codeBase) / wordSize_;
    if (word >= program_.pcMap.size() || program_.pcMap[word] < 0)
        trap("jump to non-instruction address", target);
    instrIndex_ = static_cast<std::size_t>(program_.pcMap[word]);
}

std::int32_t
Machine::reg(unsigned index) const
{
    occsim_assert(index < kNumRegs, "register index %u", index);
    return regs_[index];
}

void
Machine::setReg(unsigned index, std::int32_t value)
{
    occsim_assert(index < kNumRegs, "register index %u", index);
    regs_[index] = value;
}

bool
Machine::step(std::vector<MemRef> &refs)
{
    if (halted_)
        return false;
    occsim_assert(instrIndex_ < program_.instrs.size(),
                  "pc fell off the end of the program");

    const Instruction &instr = program_.instrs[instrIndex_];
    const Addr pc = program_.instrAddr[instrIndex_];
    const unsigned len = opcodeLengthWords(instr.op);

    // Instruction fetch, one reference per occupied word.
    for (unsigned w = 0; w < len; ++w) {
        refs.push_back(MemRef{(pc + w * wordSize_) & addrMask_,
                              RefKind::Ifetch,
                              static_cast<std::uint8_t>(wordSize_)});
    }

    ++instrCount_;
    std::size_t next = instrIndex_ + 1;
    auto &r = regs_;

    switch (instr.op) {
      case Opcode::NOP:
        break;
      case Opcode::HALT:
        halted_ = true;
        return true;
      case Opcode::MOVI:
        r[instr.rd] = instr.imm;
        break;
      case Opcode::MOV:
        r[instr.rd] = r[instr.rs];
        break;
      case Opcode::ADD:
        r[instr.rd] = r[instr.rs] + r[instr.rt];
        break;
      case Opcode::SUB:
        r[instr.rd] = r[instr.rs] - r[instr.rt];
        break;
      case Opcode::MUL:
        r[instr.rd] = static_cast<std::int32_t>(
            static_cast<std::int64_t>(r[instr.rs]) * r[instr.rt]);
        break;
      case Opcode::DIVS:
        r[instr.rd] = r[instr.rt] == 0 ? 0 : r[instr.rs] / r[instr.rt];
        break;
      case Opcode::MODS:
        r[instr.rd] = r[instr.rt] == 0 ? 0 : r[instr.rs] % r[instr.rt];
        break;
      case Opcode::AND:
        r[instr.rd] = r[instr.rs] & r[instr.rt];
        break;
      case Opcode::OR:
        r[instr.rd] = r[instr.rs] | r[instr.rt];
        break;
      case Opcode::XOR:
        r[instr.rd] = r[instr.rs] ^ r[instr.rt];
        break;
      case Opcode::ADDI:
        r[instr.rd] = r[instr.rs] + instr.imm;
        break;
      case Opcode::SHLI:
        r[instr.rd] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(r[instr.rs])
            << (instr.imm & 31));
        break;
      case Opcode::SHRI:
        r[instr.rd] = static_cast<std::int32_t>(
            static_cast<std::uint32_t>(r[instr.rs]) >>
            (instr.imm & 31));
        break;
      case Opcode::LD:
        r[instr.rd] = loadWord(
            static_cast<Addr>(r[instr.rs] + instr.imm), refs);
        break;
      case Opcode::ST:
        storeWord(static_cast<Addr>(r[instr.rs] + instr.imm),
                  r[instr.rt], refs);
        break;
      case Opcode::PUSH:
        r[kSpReg] -= static_cast<std::int32_t>(wordSize_);
        storeWord(static_cast<Addr>(r[kSpReg]), r[instr.rs], refs);
        break;
      case Opcode::POP:
        r[instr.rd] = loadWord(static_cast<Addr>(r[kSpReg]), refs);
        r[kSpReg] += static_cast<std::int32_t>(wordSize_);
        break;
      case Opcode::BEQ:
        if (r[instr.rs] == r[instr.rt]) {
            jumpTo(static_cast<Addr>(instr.imm));
            next = instrIndex_;
        }
        break;
      case Opcode::BNE:
        if (r[instr.rs] != r[instr.rt]) {
            jumpTo(static_cast<Addr>(instr.imm));
            next = instrIndex_;
        }
        break;
      case Opcode::BLT:
        if (r[instr.rs] < r[instr.rt]) {
            jumpTo(static_cast<Addr>(instr.imm));
            next = instrIndex_;
        }
        break;
      case Opcode::BGE:
        if (r[instr.rs] >= r[instr.rt]) {
            jumpTo(static_cast<Addr>(instr.imm));
            next = instrIndex_;
        }
        break;
      case Opcode::JMP:
        jumpTo(static_cast<Addr>(instr.imm));
        next = instrIndex_;
        break;
      case Opcode::CALL: {
        const Addr ret_addr = pc + len * wordSize_;
        r[kSpReg] -= static_cast<std::int32_t>(wordSize_);
        storeWord(static_cast<Addr>(r[kSpReg]),
                  static_cast<std::int32_t>(ret_addr), refs);
        jumpTo(static_cast<Addr>(instr.imm));
        next = instrIndex_;
        break;
      }
      case Opcode::RET: {
        const std::int32_t ret_addr =
            loadWord(static_cast<Addr>(r[kSpReg]), refs);
        r[kSpReg] += static_cast<std::int32_t>(wordSize_);
        jumpTo(static_cast<Addr>(ret_addr));
        next = instrIndex_;
        break;
      }
      case Opcode::NumOpcodes:
        trap("bad opcode", pc);
    }

    instrIndex_ = next;
    return true;
}

std::uint64_t
Machine::run(VectorTrace &sink, std::uint64_t max_refs)
{
    std::vector<MemRef> refs;
    std::uint64_t emitted = 0;
    while (!halted_ && (max_refs == 0 || emitted < max_refs)) {
        refs.clear();
        if (!step(refs))
            break;
        for (const MemRef &ref : refs) {
            sink.append(ref);
            ++emitted;
        }
    }
    return emitted;
}

VmTraceSource::VmTraceSource(Program program, std::string name,
                             bool loop_on_halt)
    : machine_(std::move(program)), name_(std::move(name)),
      loopOnHalt_(loop_on_halt)
{
    pending_.reserve(8);
}

bool
VmTraceSource::next(MemRef &ref)
{
    while (pendingPos_ >= pending_.size()) {
        pending_.clear();
        pendingPos_ = 0;
        if (machine_.halted()) {
            if (!loopOnHalt_)
                return false;
            machine_.restart();
            if (machine_.halted())
                return false;  // empty program
        }
        if (!machine_.step(pending_) && pending_.empty() &&
            !loopOnHalt_) {
            return false;
        }
    }
    ref = pending_[pendingPos_++];
    return true;
}

void
VmTraceSource::reset()
{
    machine_.restart();
    pending_.clear();
    pendingPos_ = 0;
}

} // namespace occsim
