#include "vm/disasm.hh"

#include "util/logging.hh"
#include "util/str.hh"

namespace occsim {

namespace {

std::string
reg(unsigned index)
{
    return strfmt("r%u", index);
}

} // namespace

std::string
disassembleInstruction(const Instruction &instr)
{
    const char *name = opcodeName(instr.op);
    switch (instr.op) {
      case Opcode::NOP:
      case Opcode::HALT:
      case Opcode::RET:
        return name;
      case Opcode::MOVI:
        return strfmt("%-4s %s, %d", name, reg(instr.rd).c_str(),
                      instr.imm);
      case Opcode::MOV:
        return strfmt("%-4s %s, %s", name, reg(instr.rd).c_str(),
                      reg(instr.rs).c_str());
      case Opcode::ADD:
      case Opcode::SUB:
      case Opcode::MUL:
      case Opcode::DIVS:
      case Opcode::MODS:
      case Opcode::AND:
      case Opcode::OR:
      case Opcode::XOR:
        return strfmt("%-4s %s, %s, %s", name, reg(instr.rd).c_str(),
                      reg(instr.rs).c_str(), reg(instr.rt).c_str());
      case Opcode::ADDI:
      case Opcode::SHLI:
      case Opcode::SHRI:
      case Opcode::LD:
        return strfmt("%-4s %s, %s, %d", name, reg(instr.rd).c_str(),
                      reg(instr.rs).c_str(), instr.imm);
      case Opcode::ST:
        return strfmt("%-4s %s, %s, %d", name, reg(instr.rs).c_str(),
                      reg(instr.rt).c_str(), instr.imm);
      case Opcode::PUSH:
        return strfmt("%-4s %s", name, reg(instr.rs).c_str());
      case Opcode::POP:
        return strfmt("%-4s %s", name, reg(instr.rd).c_str());
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
        return strfmt("%-4s %s, %s, %d", name, reg(instr.rs).c_str(),
                      reg(instr.rt).c_str(), instr.imm);
      case Opcode::JMP:
      case Opcode::CALL:
        return strfmt("%-4s %d", name, instr.imm);
      case Opcode::NumOpcodes:
        break;
    }
    panic("disassembling invalid opcode %d",
          static_cast<int>(instr.op));
}

std::string
disassemble(const Program &program)
{
    const MachineConfig &config = program.config;
    std::string text;
    text += strfmt("; OC-1 disassembly: %zu instructions, %zu data "
                   "bytes, word %u\n",
                   program.instrs.size(), program.data.size(),
                   config.wordSize);
    text += ".code\n";
    for (std::size_t i = 0; i < program.instrs.size(); ++i) {
        text += strfmt("    %-28s ; @0x%04x\n",
                       disassembleInstruction(program.instrs[i])
                           .c_str(),
                       program.instrAddr[i]);
    }

    if (!program.data.empty()) {
        text += ".data\n";
        const std::uint32_t word = config.wordSize;
        const std::size_t words = program.data.size() / word;
        for (std::size_t w = 0; w < words; ++w) {
            std::uint32_t value = 0;
            for (std::uint32_t b = 0; b < word; ++b) {
                value |= static_cast<std::uint32_t>(
                             program.data[w * word + b])
                         << (8 * b);
            }
            if (w % 8 == 0)
                text += w == 0 ? ".word " : "\n.word ";
            else
                text += ", ";
            text += strfmt("%u", value);
        }
        text += "\n";
        // Any trailing sub-word bytes (possible only with .space of
        // odd length) are preserved as .space.
        const std::size_t tail = program.data.size() % word;
        if (tail != 0) {
            warn("disassembly drops %zu trailing data bytes", tail);
        }
    }
    return text;
}

} // namespace occsim
