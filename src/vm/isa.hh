/**
 * @file
 * The OC-1 instruction set: a small load/store register architecture
 * used to *generate* address traces for the cache studies.
 *
 * The paper's traces came from real programs on four machines; those
 * traces are lost, so occsim executes real programs (sorts, searches,
 * scanners, formatters, numeric kernels) on this machine and records
 * every instruction fetch and data reference. What matters for cache
 * behaviour is the address stream's locality structure, which comes
 * from genuine control flow and data structures, not from the
 * particular opcode encoding.
 *
 * Encoding model (not bit-level; trace generation only):
 *  - the machine word is 2 bytes (16-bit configurations: PDP-11,
 *    Z8000) or 4 bytes (32-bit configurations: VAX-11, System/370);
 *  - register-register instructions occupy one word;
 *  - instructions carrying an immediate or address operand occupy two
 *    words (opcode word + operand word), as on the PDP-11;
 *  - each occupied word is fetched separately, producing the
 *    sequential multi-word instruction-fetch patterns small machines
 *    exhibit.
 *
 * 16 general registers r0..r15; r15 doubles as the stack pointer
 * (alias "sp"). CALL pushes the return address; RET pops it.
 */

#ifndef OCCSIM_VM_ISA_HH
#define OCCSIM_VM_ISA_HH

#include <cstdint>
#include <string>

namespace occsim {

/** OC-1 opcodes. */
enum class Opcode : std::uint8_t {
    NOP = 0,
    HALT,

    // moves / ALU (register-register unless noted)
    MOVI,   ///< rd = imm                      (2 words)
    MOV,    ///< rd = rs                       (1 word)
    ADD,    ///< rd = rs + rt                  (1 word)
    SUB,    ///< rd = rs - rt                  (1 word)
    MUL,    ///< rd = rs * rt                  (1 word)
    DIVS,   ///< rd = rs / rt (signed; 0 -> 0) (1 word)
    MODS,   ///< rd = rs % rt (signed; 0 -> 0) (1 word)
    AND,    ///< rd = rs & rt                  (1 word)
    OR,     ///< rd = rs | rt                  (1 word)
    XOR,    ///< rd = rs ^ rt                  (1 word)
    ADDI,   ///< rd = rs + imm                 (2 words)
    SHLI,   ///< rd = rs << imm                (2 words)
    SHRI,   ///< rd = rs >> imm (logical)      (2 words)

    // memory
    LD,     ///< rd = mem[rs + imm]            (2 words)
    ST,     ///< mem[rs + imm] = rt            (2 words)
    PUSH,   ///< sp -= W; mem[sp] = rs         (1 word)
    POP,    ///< rd = mem[sp]; sp += W         (1 word)

    // control
    BEQ,    ///< if (rs == rt) pc = imm        (2 words)
    BNE,    ///< if (rs != rt) pc = imm        (2 words)
    BLT,    ///< if (rs <  rt) pc = imm        (2 words)
    BGE,    ///< if (rs >= rt) pc = imm        (2 words)
    JMP,    ///< pc = imm                      (2 words)
    CALL,   ///< push return addr; pc = imm    (2 words)
    RET,    ///< pop pc                        (1 word)

    NumOpcodes
};

/** @return the mnemonic for @p op (lower case). */
const char *opcodeName(Opcode op);

/** @return the opcode for @p mnemonic, or NumOpcodes if unknown. */
Opcode opcodeFromName(const std::string &mnemonic);

/** @return instruction length in machine words (1 or 2). */
unsigned opcodeLengthWords(Opcode op);

/** A decoded OC-1 instruction (assembler output). */
struct Instruction
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0;
    std::uint8_t rs = 0;
    std::uint8_t rt = 0;
    std::int32_t imm = 0;  ///< immediate or resolved address
};

/** Stack-pointer register index. */
constexpr unsigned kSpReg = 15;

/** Number of general registers. */
constexpr unsigned kNumRegs = 16;

} // namespace occsim

#endif // OCCSIM_VM_ISA_HH
