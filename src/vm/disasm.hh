/**
 * @file
 * OC-1 disassembler: renders an assembled Program back to assembly
 * text. Used for program-library debugging, the asmview tool, and —
 * through the assemble/disassemble/assemble round-trip property in
 * the tests — as an independent check that the assembler's encoding
 * and the disassembler's decoding agree exactly.
 */

#ifndef OCCSIM_VM_DISASM_HH
#define OCCSIM_VM_DISASM_HH

#include <string>

#include "vm/assembler.hh"

namespace occsim {

/** Render one instruction as assembly (no label, no address). */
std::string disassembleInstruction(const Instruction &instr);

/**
 * Render the whole program: one line per instruction with its byte
 * address, synthetic labels (`L_<addr>`) at every branch/call target,
 * and the data section as `.spacew`/`.word` directives.
 *
 * The output re-assembles (under the same MachineConfig) to a program
 * with identical instructions, addresses and data image.
 */
std::string disassemble(const Program &program);

} // namespace occsim

#endif // OCCSIM_VM_DISASM_HH
