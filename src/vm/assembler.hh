/**
 * @file
 * Two-pass assembler for OC-1 assembly text.
 *
 * Syntax (one statement per line; ';' starts a comment):
 *
 *   .code                ; switch to the code section (the default)
 *   .data                ; switch to the data section
 *   .equ NAME, expr      ; define a constant
 *   .word e1, e2, ...    ; emit initialized machine words (data)
 *   .space N             ; reserve N bytes (data)
 *   .spacew N            ; reserve N machine words (data)
 *   label:               ; define a label at the current location
 *       movi r1, 100
 *       ld   r2, r1, 4   ; r2 = mem[r1 + 4]
 *       st   r1, r2, 0   ; mem[r1 + 0] = r2
 *       beq  r1, r2, done
 *
 * Operands: registers r0..r15 (alias sp = r15); immediates are
 * expressions of the form  term (('+'|'-') term)*  where a term is a
 * decimal/0x number, a label, or an .equ constant. The assembler
 * predefines WSIZE (machine word bytes) and WSHIFT (log2 of WSIZE) so
 * programs can be written once and traced on 16- and 32-bit machines.
 *
 * Code labels resolve to byte addresses starting at codeBase; data
 * labels to byte addresses starting at dataBase.
 */

#ifndef OCCSIM_VM_ASSEMBLER_HH
#define OCCSIM_VM_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bitops.hh"
#include "vm/isa.hh"

namespace occsim {

/** Memory layout and word width for one machine instance. */
struct MachineConfig
{
    std::uint32_t wordSize = 2;      ///< 2 (16-bit) or 4 (32-bit)
    std::uint32_t addressBits = 16;  ///< size of the address space
    Addr codeBase = 0x0100;          ///< first instruction byte address
    Addr dataBase = 0x4000;          ///< first data byte address
    Addr stackTop = 0;               ///< initial sp; 0 = top of memory
    std::uint32_t memBytes = 1u << 16;

    /** 16-bit profile: 64 KB space, word = 2. */
    static MachineConfig word16();
    /** 32-bit profile: 16 MB modelled space, word = 4. */
    static MachineConfig word32(std::uint32_t mem_bytes = 1u << 24);

    /** Initial stack pointer after defaulting. */
    Addr initialSp() const
    {
        return stackTop != 0 ? stackTop : memBytes;
    }
};

/** Assembled program image. */
struct Program
{
    std::vector<Instruction> instrs;   ///< in code order
    std::vector<Addr> instrAddr;       ///< byte address of each instr
    std::vector<std::int32_t> pcMap;   ///< word offset -> instr index
                                       ///  (-1 = interior operand word)
    std::vector<std::uint8_t> data;    ///< data section image
    std::map<std::string, Addr> symbols;
    MachineConfig config;

    /** Byte size of the code section. */
    std::uint32_t codeBytes() const;

    /** Look up a symbol; calls fatal() if missing. */
    Addr symbol(const std::string &name) const;
};

/**
 * Assemble @p source for @p config.
 * Calls fatal() with a line diagnostic on any syntax error (assembly
 * text is user input).
 */
Program assemble(const std::string &source, const MachineConfig &config);

} // namespace occsim

#endif // OCCSIM_VM_ASSEMBLER_HH
