/**
 * @file
 * The OC-1 machine: executes an assembled Program and emits the
 * address trace of the execution (instruction fetches word by word,
 * data reads and writes) through a TraceSource interface.
 *
 * Execution is exact — programs really compute (sort, search, hash,
 * format) and the test suite checks their results — so the emitted
 * reference stream carries genuine control-flow and data-structure
 * locality rather than a statistical imitation of it.
 */

#ifndef OCCSIM_VM_MACHINE_HH
#define OCCSIM_VM_MACHINE_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"
#include "vm/assembler.hh"
#include "vm/isa.hh"

namespace occsim {

/** Interpreter for one assembled OC-1 program. */
class Machine
{
  public:
    explicit Machine(Program program);

    /** Restore the initial memory image, registers, and pc. */
    void restart();

    /**
     * Execute one instruction, appending its references to @p refs.
     * @return false when the machine has halted (no refs emitted).
     */
    bool step(std::vector<MemRef> &refs);

    /**
     * Run until halt or until at least @p max_refs references have
     * been emitted, appending to @p sink.
     * @return number of references emitted.
     */
    std::uint64_t run(VectorTrace &sink, std::uint64_t max_refs = 0);

    bool halted() const { return halted_; }
    std::uint64_t instructionsExecuted() const { return instrCount_; }

    // ---- state access for tests and program setup ----
    std::int32_t reg(unsigned index) const;
    void setReg(unsigned index, std::int32_t value);
    /** Read one machine word from memory without emitting a trace. */
    std::int32_t peekWord(Addr addr) const;
    /** Write one machine word to memory without emitting a trace. */
    void pokeWord(Addr addr, std::int32_t value);

    const Program &program() const { return program_; }
    const MachineConfig &config() const { return program_.config; }

  private:
    std::int32_t loadWord(Addr addr, std::vector<MemRef> &refs);
    void storeWord(Addr addr, std::int32_t value,
                   std::vector<MemRef> &refs);
    void jumpTo(Addr target);
    [[noreturn]] void trap(const char *why, Addr addr) const;

    Program program_;
    std::vector<std::uint8_t> memory_;
    std::int32_t regs_[kNumRegs] = {};
    std::size_t instrIndex_ = 0;
    bool halted_ = false;
    std::uint64_t instrCount_ = 0;
    std::uint32_t wordSize_;
    Addr addrMask_;
};

/**
 * A TraceSource that lazily executes a program, optionally restarting
 * it when it halts (so arbitrarily long traces can be drawn from a
 * finite program, modelling repeated runs).
 */
class VmTraceSource : public TraceSource
{
  public:
    /**
     * @param program assembled program (copied into the machine).
     * @param name trace name for reports.
     * @param loop_on_halt restart the program when it halts.
     */
    VmTraceSource(Program program, std::string name,
                  bool loop_on_halt = true);

    bool next(MemRef &ref) override;
    bool rewindable() const override { return true; }
    void reset() override;
    std::string name() const override { return name_; }

    Machine &machine() { return machine_; }

  private:
    Machine machine_;
    std::string name_;
    bool loopOnHalt_;
    std::vector<MemRef> pending_;
    std::size_t pendingPos_ = 0;
};

} // namespace occsim

#endif // OCCSIM_VM_MACHINE_HH
