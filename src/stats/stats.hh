/**
 * @file
 * A small statistics package in the spirit of gem5's Stats, scaled to
 * this simulator's needs. Stats register themselves with a StatSet so
 * a model can dump every counter it owns with one call, and ratios are
 * expressed as formulas over counters so they are always consistent
 * with the raw counts they derive from.
 */

#ifndef OCCSIM_STATS_STATS_HH
#define OCCSIM_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace occsim {

class StatSet;

/** A named 64-bit event counter. */
class Counter
{
  public:
    /** Construct unregistered; attach via StatSet::add or registerWith. */
    Counter() = default;
    Counter(StatSet &set, std::string name, std::string desc);

    void registerWith(StatSet &set, std::string name, std::string desc);

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    std::uint64_t value_ = 0;
};

/**
 * A derived statistic: an arbitrary formula evaluated at dump time.
 * Typically a ratio of two Counters (miss ratio, traffic ratio).
 */
class Formula
{
  public:
    using Fn = std::function<double()>;

    Formula() = default;
    Formula(StatSet &set, std::string name, std::string desc, Fn fn);

    void registerWith(StatSet &set, std::string name, std::string desc,
                      Fn fn);

    double value() const { return fn_ ? fn_() : 0.0; }

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

  private:
    std::string name_;
    std::string desc_;
    Fn fn_;
};

/** Safe division helper: returns 0 when the denominator is 0. */
double ratio(std::uint64_t num, std::uint64_t den);
double ratio(double num, double den);

/**
 * A registry of counters and formulas owned by one model instance.
 * Dumping prints "name value  # description" lines like gem5's
 * stats.txt.
 */
class StatSet
{
  public:
    explicit StatSet(std::string owner = "");

    void add(Counter *counter);
    void add(Formula *formula);

    /** Reset every registered counter to zero. */
    void resetAll();

    /** Print all stats, counters first, then formulas. */
    void dump(std::ostream &os) const;

    const std::string &owner() const { return owner_; }

    const std::vector<Counter *> &counters() const { return counters_; }
    const std::vector<Formula *> &formulas() const { return formulas_; }

  private:
    std::string owner_;
    std::vector<Counter *> counters_;
    std::vector<Formula *> formulas_;
};

} // namespace occsim

#endif // OCCSIM_STATS_STATS_HH
