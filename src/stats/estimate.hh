/**
 * @file
 * Point estimates with sampling uncertainty.
 *
 * The sampling engine (multi/sample_replay.hh) prices only a
 * systematic subset of a trace's measurement units, so every metric
 * it reports is an estimate of the full-trace value. Following the
 * SMARTS methodology, each metric is summarized by the mean over the
 * measured units together with the standard error of that mean and
 * the derived normal-approximation 95% confidence interval; the
 * honest-reporting contract of the engine is that the uncertainty
 * travels with the number everywhere it goes (SweepResult, manifest,
 * occsim-report).
 */

#ifndef OCCSIM_STATS_ESTIMATE_HH
#define OCCSIM_STATS_ESTIMATE_HH

#include <cstdint>

namespace occsim {

/** Two-sided 95% normal quantile (z such that P(|Z| <= z) = 0.95). */
inline constexpr double kCi95Z = 1.959963984540054;

/**
 * A sampled metric: point estimate plus uncertainty. mean is the
 * unweighted average over measurement units; stdErr the standard
 * error of that mean (s / sqrt(n), zero when fewer than two units
 * were measured — no variance information exists, not certainty);
 * ci95 the half-width of the normal-approximation 95% confidence
 * interval (kCi95Z * stdErr). Named stdErr rather than the natural
 * "stderr" because <cstdio> reserves that spelling as a macro.
 */
struct MetricEstimate
{
    double mean = 0.0;
    double stdErr = 0.0;
    double ci95 = 0.0;
};

/**
 * Streaming mean/variance accumulator over measurement units
 * (Welford's algorithm: numerically stable for long unit streams
 * where the naive sum-of-squares cancels).
 */
class UnitEstimator
{
  public:
    /** Record one measurement unit's metric value. */
    void add(double value)
    {
        ++n_;
        const double delta = value - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (value - mean_);
    }

    /** Number of units recorded so far. */
    std::uint64_t count() const { return n_; }

    /** Current estimate; stdErr/ci95 are zero below two units. */
    MetricEstimate estimate() const
    {
        MetricEstimate est;
        est.mean = mean_;
        if (n_ >= 2) {
            const double n = static_cast<double>(n_);
            const double variance = m2_ / (n - 1.0);
            // variance can round to a tiny negative on
            // zero-variance streams; clamp before the sqrt.
            est.stdErr = variance > 0.0
                             ? sqrtPositive(variance / n)
                             : 0.0;
            est.ci95 = kCi95Z * est.stdErr;
        }
        return est;
    }

  private:
    static double sqrtPositive(double v);

    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

} // namespace occsim

#endif // OCCSIM_STATS_ESTIMATE_HH
