/**
 * @file
 * A fixed-bucket histogram used for distributional measurements such
 * as the number of sub-blocks touched per block residency (the paper's
 * "72 percent of the sub-blocks in a block are never referenced"
 * observation) and LRU stack-distance profiles.
 */

#ifndef OCCSIM_STATS_DISTRIBUTION_HH
#define OCCSIM_STATS_DISTRIBUTION_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/logging.hh"

namespace occsim {

/**
 * Histogram over the integer domain [0, numBuckets); samples at or
 * above numBuckets accumulate in an overflow bucket.
 */
class Distribution
{
  public:
    Distribution() = default;
    Distribution(std::string name, std::size_t num_buckets);

    void init(std::string name, std::size_t num_buckets);

    /** Record one observation of @p value (weight 1). */
    void sample(std::uint64_t value) { sample(value, 1); }

    /** Record @p weight observations of @p value. Inline: the cache
     *  miss path samples the burst histogram per miss, and an
     *  out-of-line call would force the replay kernels to spill loop
     *  state around it. */
    void sample(std::uint64_t value, std::uint64_t weight)
    {
        occsim_assert(!buckets_.empty(),
                      "distribution not initialized");
        if (value < buckets_.size()) {
            buckets_[value] += weight;
            weightedSum_ += value * weight;
        } else {
            overflow_ += weight;
            weightedSum_ += buckets_.size() * weight;
        }
        samples_ += weight;
    }

    void reset();

    /**
     * Add another histogram's counts into this one, bucket by bucket.
     * Both must have the same bucket count. Integer sums only, so
     * merging per-shard histograms is exact: the merged distribution
     * equals the one an unsharded run would have recorded.
     */
    void mergeFrom(const Distribution &other);

    std::uint64_t samples() const { return samples_; }
    std::uint64_t bucket(std::size_t i) const;
    std::uint64_t overflow() const { return overflow_; }
    std::size_t numBuckets() const { return buckets_.size(); }

    /** Mean of the recorded values (overflow counted at numBuckets). */
    double mean() const;

    /** Population variance (overflow counted at numBuckets). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /**
     * Smallest value v with cdfAt(v) >= @p p (p in [0,1]); returns
     * numBuckets when only the overflow bucket satisfies it.
     */
    std::uint64_t percentile(double p) const;

    /** Fraction of samples with value <= @p v. */
    double cdfAt(std::uint64_t v) const;

    const std::string &name() const { return name_; }

    /** Print "value count fraction" lines for non-empty buckets. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t samples_ = 0;
    std::uint64_t weightedSum_ = 0;
};

} // namespace occsim

#endif // OCCSIM_STATS_DISTRIBUTION_HH
