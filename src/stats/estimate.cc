#include "stats/estimate.hh"

#include <cmath>

namespace occsim {

// Out of line so the header does not pull <cmath> into every
// estimator user (estimate() itself stays inline and branch-free on
// the accumulation path).
double
UnitEstimator::sqrtPositive(double v)
{
    return std::sqrt(v);
}

} // namespace occsim
