#include "stats/stats.hh"

#include <ostream>

#include "util/logging.hh"
#include "util/str.hh"

namespace occsim {

Counter::Counter(StatSet &set, std::string name, std::string desc)
{
    registerWith(set, std::move(name), std::move(desc));
}

void
Counter::registerWith(StatSet &set, std::string name, std::string desc)
{
    name_ = std::move(name);
    desc_ = std::move(desc);
    set.add(this);
}

Formula::Formula(StatSet &set, std::string name, std::string desc, Fn fn)
{
    registerWith(set, std::move(name), std::move(desc), std::move(fn));
}

void
Formula::registerWith(StatSet &set, std::string name, std::string desc,
                      Fn fn)
{
    name_ = std::move(name);
    desc_ = std::move(desc);
    fn_ = std::move(fn);
    set.add(this);
}

double
ratio(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0 : static_cast<double>(num) /
                                static_cast<double>(den);
}

double
ratio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

StatSet::StatSet(std::string owner)
    : owner_(std::move(owner))
{
}

void
StatSet::add(Counter *counter)
{
    occsim_assert(counter != nullptr, "null counter registration");
    counters_.push_back(counter);
}

void
StatSet::add(Formula *formula)
{
    occsim_assert(formula != nullptr, "null formula registration");
    formulas_.push_back(formula);
}

void
StatSet::resetAll()
{
    for (Counter *counter : counters_)
        counter->reset();
}

void
StatSet::dump(std::ostream &os) const
{
    if (!owner_.empty())
        os << "---------- " << owner_ << " ----------\n";
    for (const Counter *counter : counters_) {
        os << strfmt("%-40s %14llu  # %s\n", counter->name().c_str(),
                     static_cast<unsigned long long>(counter->value()),
                     counter->desc().c_str());
    }
    for (const Formula *formula : formulas_) {
        os << strfmt("%-40s %14.6f  # %s\n", formula->name().c_str(),
                     formula->value(), formula->desc().c_str());
    }
}

} // namespace occsim
