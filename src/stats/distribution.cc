#include "stats/distribution.hh"

#include <cmath>
#include <ostream>

#include "util/logging.hh"
#include "util/str.hh"

namespace occsim {

Distribution::Distribution(std::string name, std::size_t num_buckets)
{
    init(std::move(name), num_buckets);
}

void
Distribution::init(std::string name, std::size_t num_buckets)
{
    occsim_assert(num_buckets > 0, "distribution needs >= 1 bucket");
    name_ = std::move(name);
    buckets_.assign(num_buckets, 0);
    overflow_ = 0;
    samples_ = 0;
    weightedSum_ = 0;
}

void
Distribution::reset()
{
    for (auto &bucket : buckets_)
        bucket = 0;
    overflow_ = 0;
    samples_ = 0;
    weightedSum_ = 0;
}

void
Distribution::mergeFrom(const Distribution &other)
{
    occsim_assert(buckets_.size() == other.buckets_.size(),
                  "merging distributions of different shape (%zu vs "
                  "%zu buckets)",
                  buckets_.size(), other.buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    overflow_ += other.overflow_;
    samples_ += other.samples_;
    weightedSum_ += other.weightedSum_;
}

std::uint64_t
Distribution::bucket(std::size_t i) const
{
    occsim_assert(i < buckets_.size(), "bucket index %zu out of range",
                  i);
    return buckets_[i];
}

double
Distribution::mean() const
{
    return samples_ == 0 ? 0.0 : static_cast<double>(weightedSum_) /
                                     static_cast<double>(samples_);
}

double
Distribution::variance() const
{
    if (samples_ == 0)
        return 0.0;
    const double mu = mean();
    double sum = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double d = static_cast<double>(i) - mu;
        sum += d * d * static_cast<double>(buckets_[i]);
    }
    const double d_over = static_cast<double>(buckets_.size()) - mu;
    sum += d_over * d_over * static_cast<double>(overflow_);
    return sum / static_cast<double>(samples_);
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

std::uint64_t
Distribution::percentile(double p) const
{
    occsim_assert(p >= 0.0 && p <= 1.0, "percentile needs p in [0,1]");
    if (samples_ == 0)
        return 0;
    std::uint64_t cumulative = 0;
    const auto target = static_cast<std::uint64_t>(
        p * static_cast<double>(samples_));
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        cumulative += buckets_[i];
        if (cumulative >= target && cumulative > 0)
            return i;
    }
    return buckets_.size();
}

double
Distribution::cdfAt(std::uint64_t v) const
{
    if (samples_ == 0)
        return 0.0;
    std::uint64_t below = 0;
    for (std::size_t i = 0; i < buckets_.size() && i <= v; ++i)
        below += buckets_[i];
    if (v >= buckets_.size())
        below += overflow_;
    return static_cast<double>(below) / static_cast<double>(samples_);
}

void
Distribution::dump(std::ostream &os) const
{
    os << name_ << " (" << samples_ << " samples, mean "
       << strfmt("%.4f", mean()) << ")\n";
    auto fraction = [this](std::uint64_t count) {
        return samples_ == 0 ? 0.0 : static_cast<double>(count) /
                                         static_cast<double>(samples_);
    };
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        os << strfmt("  %6zu  %12llu  %8.4f\n", i,
                     static_cast<unsigned long long>(buckets_[i]),
                     fraction(buckets_[i]));
    }
    if (overflow_ != 0) {
        os << strfmt("  >=%4zu  %12llu  %8.4f\n", buckets_.size(),
                     static_cast<unsigned long long>(overflow_),
                     fraction(overflow_));
    }
}

} // namespace occsim
