#include "cache/split_cache.hh"

#include "stats/stats.hh"
#include "util/logging.hh"

namespace occsim {

SplitCache::SplitCache(const CacheConfig &icache_config,
                       const CacheConfig &dcache_config)
    : icache_(icache_config), dcache_(dcache_config)
{
    occsim_assert(icache_config.wordSize == dcache_config.wordSize,
                  "split halves must agree on word size");
}

AccessOutcome
SplitCache::access(const MemRef &ref)
{
    return ref.isInstruction() ? icache_.access(ref)
                               : dcache_.access(ref);
}

void
SplitCache::replayPacked(const PackedRecord *refs, std::size_t n)
{
    // Forward maximal same-kind runs so each side still replays
    // through its batched kernel; per-side reference order (the only
    // order that matters to either side) is preserved exactly.
    std::size_t i = 0;
    while (i < n) {
        const bool ifetch = refs[i].isInstruction();
        std::size_t j = i + 1;
        while (j < n && refs[j].isInstruction() == ifetch)
            ++j;
        (ifetch ? icache_ : dcache_).replayPacked(refs + i, j - i);
        i = j;
    }
}

std::uint64_t
SplitCache::run(TraceSource &source, std::uint64_t max_refs)
{
    MemRef ref;
    std::uint64_t count = 0;
    while ((max_refs == 0 || count < max_refs) && source.next(ref)) {
        access(ref);
        ++count;
    }
    finalizeResidencies();
    return count;
}

void
SplitCache::finalizeResidencies()
{
    icache_.finalizeResidencies();
    dcache_.finalizeResidencies();
}

void
SplitCache::reset()
{
    icache_.reset();
    dcache_.reset();
}

std::uint32_t
SplitCache::netSize() const
{
    return icache_.config().netSize + dcache_.config().netSize;
}

std::uint64_t
SplitCache::grossBytes() const
{
    return icache_.geometry().grossBytes() +
           dcache_.geometry().grossBytes();
}

std::uint64_t
SplitCache::accesses() const
{
    return icache_.stats().accesses() + dcache_.stats().accesses();
}

std::uint64_t
SplitCache::misses() const
{
    return icache_.stats().misses() + dcache_.stats().misses();
}

double
SplitCache::missRatio() const
{
    return ratio(misses(), accesses());
}

double
SplitCache::trafficRatio() const
{
    return ratio(icache_.stats().wordsFetched() +
                     dcache_.stats().wordsFetched(),
                 accesses());
}

CacheConfig
evenSplitHalf(const CacheConfig &mixed_config)
{
    occsim_assert(mixed_config.netSize >= 2 * mixed_config.blockSize,
                  "mixed cache too small to split");
    CacheConfig half = mixed_config;
    half.netSize = mixed_config.netSize / 2;
    half.partition = CachePartition::Unified;
    return half;
}

SplitCache
makeEvenSplit(const CacheConfig &mixed_config)
{
    const CacheConfig half = evenSplitHalf(mixed_config);
    return SplitCache(half, half);
}

} // namespace occsim
