#include "cache/split_cache.hh"

#include "stats/stats.hh"
#include "util/logging.hh"

namespace occsim {

SplitCache::SplitCache(const CacheConfig &icache_config,
                       const CacheConfig &dcache_config)
    : icache_(icache_config), dcache_(dcache_config)
{
    occsim_assert(icache_config.wordSize == dcache_config.wordSize,
                  "split halves must agree on word size");
}

AccessOutcome
SplitCache::access(const MemRef &ref)
{
    return ref.isInstruction() ? icache_.access(ref)
                               : dcache_.access(ref);
}

std::uint64_t
SplitCache::run(TraceSource &source, std::uint64_t max_refs)
{
    MemRef ref;
    std::uint64_t count = 0;
    while ((max_refs == 0 || count < max_refs) && source.next(ref)) {
        access(ref);
        ++count;
    }
    finalizeResidencies();
    return count;
}

void
SplitCache::finalizeResidencies()
{
    icache_.finalizeResidencies();
    dcache_.finalizeResidencies();
}

void
SplitCache::reset()
{
    icache_.reset();
    dcache_.reset();
}

std::uint32_t
SplitCache::netSize() const
{
    return icache_.config().netSize + dcache_.config().netSize;
}

std::uint64_t
SplitCache::grossBytes() const
{
    return icache_.geometry().grossBytes() +
           dcache_.geometry().grossBytes();
}

std::uint64_t
SplitCache::accesses() const
{
    return icache_.stats().accesses() + dcache_.stats().accesses();
}

std::uint64_t
SplitCache::misses() const
{
    return icache_.stats().misses() + dcache_.stats().misses();
}

double
SplitCache::missRatio() const
{
    return ratio(misses(), accesses());
}

double
SplitCache::trafficRatio() const
{
    return ratio(icache_.stats().wordsFetched() +
                     dcache_.stats().wordsFetched(),
                 accesses());
}

SplitCache
makeEvenSplit(const CacheConfig &mixed_config)
{
    occsim_assert(mixed_config.netSize >= 2 * mixed_config.blockSize,
                  "mixed cache too small to split");
    CacheConfig half = mixed_config;
    half.netSize = mixed_config.netSize / 2;
    return SplitCache(half, half);
}

} // namespace occsim
