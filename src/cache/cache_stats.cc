#include "cache/cache_stats.hh"

#include <ostream>

#include "stats/stats.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace occsim {

CacheStats::CacheStats(std::uint32_t sub_blocks_per_block,
                       std::uint32_t max_burst_words)
    : subBlocksPerBlock_(sub_blocks_per_block),
      residencyTouched_("sub-blocks touched per residency",
                        sub_blocks_per_block + 1),
      burstWords_("burst size (words)", max_burst_words + 1),
      coldBurstWords_("cold burst size (words)", max_burst_words + 1)
{
}

double
CacheStats::prefetchAccuracy() const
{
    return ratio(usefulPrefetches_, prefetches_);
}

void
CacheStats::loadDemandRun(std::uint64_t accesses,
                          std::uint64_t ifetch_accesses,
                          std::uint64_t misses,
                          std::uint64_t ifetch_misses,
                          std::uint64_t cold_misses,
                          std::uint64_t write_accesses,
                          std::uint64_t write_misses,
                          bool write_through,
                          std::uint32_t words_per_block)
{
    occsim_assert(accesses_ == 0 && writeAccesses_ == 0,
                  "loadDemandRun on a non-empty CacheStats");
    accesses_ = accesses;
    misses_ = misses;
    blockMisses_ = misses;  // sub-block == block: every miss is one
    coldMisses_ = cold_misses;
    ifetchAccesses_ = ifetch_accesses;
    ifetchMisses_ = ifetch_misses;
    writeAccesses_ = write_accesses;
    writeMisses_ = write_misses;
    wordsFetched_ = misses * words_per_block;
    coldWords_ = cold_misses * words_per_block;
    bursts_ = misses;
    writeWords_ = write_misses * words_per_block;
    if (write_through)
        storeWords_ = write_accesses;
    if (misses != 0)
        burstWords_.sample(words_per_block, misses);
    if (cold_misses != 0)
        coldBurstWords_.sample(words_per_block, cold_misses);
}

void
CacheStats::mergeFrom(const CacheStats &other)
{
    occsim_assert(subBlocksPerBlock_ == other.subBlocksPerBlock_,
                  "merging stats of different geometries");
    accesses_ += other.accesses_;
    misses_ += other.misses_;
    blockMisses_ += other.blockMisses_;
    coldMisses_ += other.coldMisses_;
    ifetchAccesses_ += other.ifetchAccesses_;
    ifetchMisses_ += other.ifetchMisses_;
    writeAccesses_ += other.writeAccesses_;
    writeMisses_ += other.writeMisses_;
    wordsFetched_ += other.wordsFetched_;
    coldWords_ += other.coldWords_;
    redundantWords_ += other.redundantWords_;
    writeWords_ += other.writeWords_;
    storeWords_ += other.storeWords_;
    writebackWords_ += other.writebackWords_;
    prefetchWords_ += other.prefetchWords_;
    prefetches_ += other.prefetches_;
    usefulPrefetches_ += other.usefulPrefetches_;
    bursts_ += other.bursts_;
    evictions_ += other.evictions_;
    residencyTouched_.mergeFrom(other.residencyTouched_);
    burstWords_.mergeFrom(other.burstWords_);
    coldBurstWords_.mergeFrom(other.coldBurstWords_);
}

void
CacheStats::reset()
{
    *this = CacheStats(subBlocksPerBlock_,
                       static_cast<std::uint32_t>(
                           burstWords_.numBuckets() - 1));
}

double
CacheStats::missRatio() const
{
    return ratio(misses_, accesses_);
}

double
CacheStats::warmMissRatio() const
{
    return ratio(misses_ - coldMisses_, accesses_ - coldMisses_);
}

double
CacheStats::trafficRatio() const
{
    return ratio(wordsFetched_, accesses_);
}

double
CacheStats::warmTrafficRatio() const
{
    return ratio(wordsFetched_ - coldWords_, accesses_ - coldMisses_);
}

namespace {

double
priceBursts(const Distribution &hist, const BusModel &bus)
{
    double cost = 0.0;
    for (std::size_t w = 1; w < hist.numBuckets(); ++w) {
        const std::uint64_t count = hist.bucket(w);
        if (count != 0)
            cost += static_cast<double>(count) * bus.burstCost(w);
    }
    return cost;
}

} // namespace

double
CacheStats::scaledTrafficRatio(const BusModel &bus) const
{
    return ratio(priceBursts(burstWords_, bus),
                 static_cast<double>(accesses_));
}

double
CacheStats::warmScaledTrafficRatio(const BusModel &bus) const
{
    return ratio(priceBursts(burstWords_, bus) -
                     priceBursts(coldBurstWords_, bus),
                 static_cast<double>(accesses_ - coldMisses_));
}

double
CacheStats::ifetchMissRatio() const
{
    return ratio(ifetchMisses_, ifetchAccesses_);
}

double
CacheStats::totalTrafficRatio() const
{
    return ratio(wordsFetched_ + writeWords_ + storeWords_ +
                     writebackWords_,
                 accesses_ + writeAccesses_);
}

double
CacheStats::redundantLoadFraction() const
{
    return ratio(redundantWords_, wordsFetched_);
}

double
CacheStats::meanSubBlocksTouched() const
{
    return residencyTouched_.mean();
}

double
CacheStats::neverReferencedFraction() const
{
    if (subBlocksPerBlock_ == 0)
        return 0.0;
    return 1.0 - meanSubBlocksTouched() /
                     static_cast<double>(subBlocksPerBlock_);
}

void
CacheStats::dump(std::ostream &os) const
{
    os << strfmt("accesses            %12llu\n",
                 static_cast<unsigned long long>(accesses_));
    os << strfmt("misses              %12llu  (block %llu, sub-block "
                 "%llu, cold %llu)\n",
                 static_cast<unsigned long long>(misses_),
                 static_cast<unsigned long long>(blockMisses_),
                 static_cast<unsigned long long>(subBlockMisses()),
                 static_cast<unsigned long long>(coldMisses_));
    os << strfmt("ifetch accesses     %12llu  (misses %llu)\n",
                 static_cast<unsigned long long>(ifetchAccesses_),
                 static_cast<unsigned long long>(ifetchMisses_));
    os << strfmt("write accesses      %12llu  (misses %llu, words "
                 "%llu; excluded from metrics)\n",
                 static_cast<unsigned long long>(writeAccesses_),
                 static_cast<unsigned long long>(writeMisses_),
                 static_cast<unsigned long long>(writeWords_));
    os << strfmt("words fetched       %12llu  in %llu bursts "
                 "(redundant %llu)\n",
                 static_cast<unsigned long long>(wordsFetched_),
                 static_cast<unsigned long long>(bursts_),
                 static_cast<unsigned long long>(redundantWords_));
    os << strfmt("store/writeback     %12llu / %llu words (bus "
                 "traffic incl. writes: %.6f)\n",
                 static_cast<unsigned long long>(storeWords_),
                 static_cast<unsigned long long>(writebackWords_),
                 totalTrafficRatio());
    os << strfmt("evictions           %12llu\n",
                 static_cast<unsigned long long>(evictions_));
    os << strfmt("miss ratio          %12.6f  (warm %.6f)\n",
                 missRatio(), warmMissRatio());
    os << strfmt("traffic ratio       %12.6f  (warm %.6f)\n",
                 trafficRatio(), warmTrafficRatio());
    const NibbleModeBus nibble;
    os << strfmt("nibble traffic      %12.6f\n",
                 scaledTrafficRatio(nibble));
    os << strfmt("mean sub-blocks touched per residency  %.4f "
                 "(never referenced %.1f%%)\n",
                 meanSubBlocksTouched(),
                 100.0 * neverReferencedFraction());
}

} // namespace occsim
