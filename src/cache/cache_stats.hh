/**
 * @file
 * Measurement collected by a cache simulation run.
 *
 * Following the paper's methodology (Section 3.2):
 *
 *  - Headline metrics (miss ratio, traffic ratio) are computed over
 *    data reads and instruction fetches only; writes are simulated
 *    (they disturb cache state) but tallied separately so write-back
 *    policy questions stay out of the results.
 *  - The traffic ratio is bus traffic with the cache divided by bus
 *    traffic without it; without a cache every reference moves exactly
 *    one data-path word, so the denominator is the counted access
 *    count and the numerator is total words fetched.
 *  - Warm-start figures discount cold-start misses: a miss whose
 *    target sub-block frame slot had never been filled since the start
 *    of simulation is a cold miss, and its traffic is discounted with
 *    it.
 *  - The burst-size histogram lets any BusModel (linear, nibble-mode,
 *    transactional) price the same run after the fact, producing the
 *    paper's "scaled traffic ratio" without re-simulation.
 *  - The residency histogram counts how many sub-blocks of a block
 *    were referenced during one residency (the paper's "72 percent of
 *    sub-blocks never referenced" measurement for the 360/85).
 */

#ifndef OCCSIM_CACHE_CACHE_STATS_HH
#define OCCSIM_CACHE_CACHE_STATS_HH

#include <cstdint>
#include <iosfwd>

#include "mem/bus_model.hh"
#include "stats/distribution.hh"

namespace occsim {

/** Statistics for one cache simulation run. */
class CacheStats
{
  public:
    /**
     * @param sub_blocks_per_block sizes the residency histogram.
     * @param max_burst_words sizes the burst histogram.
     */
    CacheStats(std::uint32_t sub_blocks_per_block,
               std::uint32_t max_burst_words);

    // ---- recording interface (used by Cache) ----
    // The counter-only recorders are defined inline: they run once
    // per reference (hit path included), and an out-of-line call here
    // would both cost the call and force the replay kernels to spill
    // and reload their loop state around an opaque function.
    void recordHit(bool is_ifetch)
    {
        ++accesses_;
        if (is_ifetch)
            ++ifetchAccesses_;
    }
    void recordMiss(bool is_ifetch, bool block_miss, bool cold)
    {
        ++accesses_;
        ++misses_;
        if (block_miss)
            ++blockMisses_;
        if (cold)
            ++coldMisses_;
        if (is_ifetch) {
            ++ifetchAccesses_;
            ++ifetchMisses_;
        }
    }
    void recordWrite(bool hit)
    {
        ++writeAccesses_;
        if (!hit)
            ++writeMisses_;
    }
    /**
     * Bulk-add the counters that are the same for every reference of
     * a replayed span regardless of hit or miss: each counted read
     * adds one access (recordHit and recordMiss both do), each
     * instruction fetch one ifetch access, each write one write
     * access. The fused engine tallies these once per pass instead of
     * per (reference, config) — integer sums, so the totals are
     * bit-identical to per-reference recording.
     */
    void addUniformAccesses(std::uint64_t counted_reads,
                            std::uint64_t ifetch_reads,
                            std::uint64_t writes,
                            std::uint64_t write_misses,
                            std::uint64_t store_words)
    {
        accesses_ += counted_reads;
        ifetchAccesses_ += ifetch_reads;
        writeAccesses_ += writes;
        writeMisses_ += write_misses;
        storeWords_ += store_words;
    }
    /** The miss-side counters of recordMiss, for callers that account
     *  the access-side counters via addUniformAccesses. */
    void recordMissCounters(bool is_ifetch, bool block_miss, bool cold)
    {
        ++misses_;
        if (block_miss)
            ++blockMisses_;
        if (cold)
            ++coldMisses_;
        if (is_ifetch)
            ++ifetchMisses_;
    }
    /** The miss side of recordWrite(false), same split. */
    void recordWriteMissCounter() { ++writeMisses_; }
    /** A counted burst of @p words words; @p cold when triggered by a
     *  cold miss; @p redundant_words of them re-fetched valid data. */
    void recordBurst(std::uint32_t words, bool cold,
                     std::uint32_t redundant_words)
    {
        wordsFetched_ += words;
        redundantWords_ += redundant_words;
        ++bursts_;
        burstWords_.sample(words);
        if (cold) {
            coldWords_ += words;
            coldBurstWords_.sample(words);
        }
    }
    /** Bus traffic caused by write misses (kept out of headline). */
    void recordWriteBurst(std::uint32_t words) { writeWords_ += words; }
    /** Store traffic: words sent to memory by write-through stores
     *  (or by non-allocated write misses). */
    void recordStoreTraffic(std::uint32_t words)
    {
        storeWords_ += words;
    }
    /** Copy-back traffic: dirty sub-block words written at eviction. */
    void recordWriteback(std::uint32_t words)
    {
        writebackWords_ += words;
    }
    /** A prefetch moved @p words words (counts into traffic). */
    void recordPrefetch(std::uint32_t words)
    {
        // Prefetch traffic is real bus traffic: it belongs in the
        // headline traffic ratio (the cost side of prefetching).
        wordsFetched_ += words;
        ++bursts_;
        burstWords_.sample(words);
        prefetchWords_ += words;
        ++prefetches_;
    }
    /** A previously prefetched, never-referenced sub-block was hit. */
    void recordUsefulPrefetch() { ++usefulPrefetches_; }
    /** A block residency ended having touched @p touched sub-blocks. */
    void recordResidency(std::uint32_t touched)
    {
        ++evictions_;
        residencyTouched_.sample(touched);
    }

    /**
     * Bulk-load the totals of a conventional (sub-block == block)
     * LRU demand-fetch write-allocate run, as produced by the
     * single-pass sweep engine. Every derived metric is then computed
     * by exactly the same code as after a direct simulation, so the
     * resulting doubles are bit-identical to the per-reference
     * recording path: each counted miss is one burst of
     * @p words_per_block words, each write miss one write burst, and
     * (for write-through) each write one store word. Must be called
     * on a freshly constructed (or reset) CacheStats.
     *
     * Not loaded (out of the single-pass model): residency
     * histograms, evictions, and copy-back write-back traffic.
     */
    void loadDemandRun(std::uint64_t accesses,
                       std::uint64_t ifetch_accesses,
                       std::uint64_t misses,
                       std::uint64_t ifetch_misses,
                       std::uint64_t cold_misses,
                       std::uint64_t write_accesses,
                       std::uint64_t write_misses, bool write_through,
                       std::uint32_t words_per_block);

    void reset();

    /**
     * Accumulate another run's counters into this one. Every field of
     * CacheStats is an integer sum over the references that produced
     * it (the histograms included), so merging the per-shard stats of
     * a set-sharded replay is exact: derived ratios computed from the
     * merged totals are bit-identical to an unsharded run. Both sides
     * must describe the same cache geometry.
     */
    void mergeFrom(const CacheStats &other);

    // ---- raw counters ----
    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t hits() const { return accesses_ - misses_; }
    std::uint64_t blockMisses() const { return blockMisses_; }
    std::uint64_t subBlockMisses() const
    {
        return misses_ - blockMisses_;
    }
    std::uint64_t coldMisses() const { return coldMisses_; }
    std::uint64_t ifetchAccesses() const { return ifetchAccesses_; }
    std::uint64_t ifetchMisses() const { return ifetchMisses_; }
    std::uint64_t writeAccesses() const { return writeAccesses_; }
    std::uint64_t writeMisses() const { return writeMisses_; }
    std::uint64_t wordsFetched() const { return wordsFetched_; }
    std::uint64_t coldWordsFetched() const { return coldWords_; }
    std::uint64_t redundantWordsFetched() const
    {
        return redundantWords_;
    }
    std::uint64_t writeWordsFetched() const { return writeWords_; }
    std::uint64_t storeWords() const { return storeWords_; }
    std::uint64_t writebackWords() const { return writebackWords_; }
    std::uint64_t prefetchWords() const { return prefetchWords_; }
    std::uint64_t prefetches() const { return prefetches_; }
    std::uint64_t usefulPrefetches() const { return usefulPrefetches_; }
    /** Fraction of prefetched sub-blocks later referenced. */
    double prefetchAccuracy() const;
    std::uint64_t bursts() const { return bursts_; }
    std::uint64_t evictions() const { return evictions_; }

    // ---- derived metrics ----
    /** Cold-start miss ratio (counted refs). */
    double missRatio() const;
    /** Warm-start miss ratio: cold misses discounted. */
    double warmMissRatio() const;
    /** Traffic ratio on a linear bus. */
    double trafficRatio() const;
    /** Warm-start traffic ratio. */
    double warmTrafficRatio() const;
    /** Traffic ratio priced by an arbitrary bus model. */
    double scaledTrafficRatio(const BusModel &bus) const;
    /** Warm-start scaled traffic ratio. */
    double warmScaledTrafficRatio(const BusModel &bus) const;
    /** Instruction-fetch miss ratio. */
    double ifetchMissRatio() const;
    /** Fraction of fetched words that re-fetched resident data. */
    double redundantLoadFraction() const;
    /**
     * Write-inclusive traffic ratio: all bus words (read fetches,
     * write-miss fetches, stores, write-backs) over all references
     * including writes. The paper's headline traffic ratio excludes
     * writes; this is the figure a write-through vs copy-back study
     * needs.
     */
    double totalTrafficRatio() const;
    /** Mean sub-blocks referenced per block residency. */
    double meanSubBlocksTouched() const;
    /** Fraction of sub-block frames never referenced per residency. */
    double neverReferencedFraction() const;

    const Distribution &residencyTouched() const
    {
        return residencyTouched_;
    }
    const Distribution &burstWords() const { return burstWords_; }
    /** Burst histogram restricted to cold-miss bursts (the warm
     *  scaled-traffic discount; exposed for the differential
     *  oracle's full-stats comparison). */
    const Distribution &coldBurstWords() const
    {
        return coldBurstWords_;
    }

    /** Human-readable dump of counters and derived metrics. */
    void dump(std::ostream &os) const;

  private:
    std::uint32_t subBlocksPerBlock_;

    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t blockMisses_ = 0;
    std::uint64_t coldMisses_ = 0;
    std::uint64_t ifetchAccesses_ = 0;
    std::uint64_t ifetchMisses_ = 0;
    std::uint64_t writeAccesses_ = 0;
    std::uint64_t writeMisses_ = 0;
    std::uint64_t wordsFetched_ = 0;
    std::uint64_t coldWords_ = 0;
    std::uint64_t redundantWords_ = 0;
    std::uint64_t writeWords_ = 0;
    std::uint64_t storeWords_ = 0;
    std::uint64_t writebackWords_ = 0;
    std::uint64_t prefetchWords_ = 0;
    std::uint64_t prefetches_ = 0;
    std::uint64_t usefulPrefetches_ = 0;
    std::uint64_t bursts_ = 0;
    std::uint64_t evictions_ = 0;

    Distribution residencyTouched_;
    Distribution burstWords_;
    Distribution coldBurstWords_;
};

} // namespace occsim

#endif // OCCSIM_CACHE_CACHE_STATS_HH
