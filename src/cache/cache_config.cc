#include "cache/cache_config.hh"

#include "util/str.hh"

namespace occsim {

const char *
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::LRU:
        return "LRU";
      case ReplacementPolicy::FIFO:
        return "FIFO";
      case ReplacementPolicy::Random:
        return "Random";
    }
    return "unknown";
}

const char *
fetchPolicyName(FetchPolicy policy)
{
    switch (policy) {
      case FetchPolicy::Demand:
        return "demand";
      case FetchPolicy::LoadForward:
        return "load-forward";
      case FetchPolicy::LoadForwardOptimized:
        return "load-forward-opt";
      case FetchPolicy::PrefetchNextOnMiss:
        return "prefetch-next";
    }
    return "unknown";
}

const char *
writePolicyName(WritePolicy policy)
{
    switch (policy) {
      case WritePolicy::WriteThrough:
        return "write-through";
      case WritePolicy::CopyBack:
        return "copy-back";
    }
    return "unknown";
}

const char *
cachePartitionName(CachePartition partition)
{
    switch (partition) {
      case CachePartition::Unified:
        return "unified";
      case CachePartition::SplitID:
        return "split-id";
    }
    return "unknown";
}

std::string
CacheConfig::shortName() const
{
    std::string name = strfmt("%u,%u", blockSize, subBlockSize);
    if (fetch == FetchPolicy::LoadForward)
        name += ",LF";
    else if (fetch == FetchPolicy::LoadForwardOptimized)
        name += ",LFO";
    else if (fetch == FetchPolicy::PrefetchNextOnMiss)
        name += ",PF";
    if (partition == CachePartition::SplitID)
        name += ",I/D";
    return name;
}

std::string
CacheConfig::fullName() const
{
    return strfmt("%uB %s %u-way %s %s", netSize, shortName().c_str(),
                  assoc, replacementPolicyName(replacement),
                  fetchPolicyName(fetch));
}

CacheConfig
makeConfig(std::uint32_t net_size, std::uint32_t block_size,
           std::uint32_t sub_block_size, std::uint32_t word_size)
{
    CacheConfig config;
    config.netSize = net_size;
    config.blockSize = block_size;
    config.subBlockSize = sub_block_size;
    config.wordSize = word_size;
    return config;
}

CacheConfig
make360Model85Config(std::uint32_t word_size)
{
    CacheConfig config;
    config.netSize = 16 * 1024;
    config.blockSize = 1024;
    config.subBlockSize = 64;
    config.assoc = 16;  // 16 blocks total -> fully associative
    config.wordSize = word_size;
    return config;
}

} // namespace occsim
