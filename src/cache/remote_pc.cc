#include "cache/remote_pc.hh"

#include "stats/stats.hh"
#include "util/logging.hh"

namespace occsim {

RemotePc::RemotePc(std::uint32_t table_entries, std::uint32_t word_size)
    : wordSize_(word_size)
{
    occsim_assert(word_size == 2 || word_size == 4,
                  "word size must be 2 or 4");
    occsim_assert(table_entries == 0 || isPowerOfTwo(table_entries),
                  "table size must be zero or a power of two");
    table_.resize(table_entries);
    mask_ = table_entries == 0 ? 0 : table_entries - 1;
}

RemotePc::Entry &
RemotePc::entryFor(Addr addr)
{
    return table_[(addr / wordSize_) & mask_];
}

void
RemotePc::fetch(Addr addr)
{
    if (havePrev_) {
        ++predictions_;
        if (addr == predicted_) {
            ++correct_;
        } else if (!table_.empty()) {
            // Learn: remember that prevAddr_ transferred control to
            // addr, so the next visit predicts this target.
            Entry &entry = entryFor(prevAddr_);
            entry.tag = prevAddr_;
            entry.target = addr;
            entry.valid = true;
        }
    }

    // Form the next prediction: the remembered target if this address
    // is a known control transfer, else sequential.
    Addr next = addr + wordSize_;
    if (!table_.empty()) {
        const Entry &entry = entryFor(addr);
        if (entry.valid && entry.tag == addr)
            next = entry.target;
    }
    predicted_ = next;
    prevAddr_ = addr;
    havePrev_ = true;
}

void
RemotePc::run(TraceSource &source, std::uint64_t max_refs)
{
    MemRef ref;
    std::uint64_t count = 0;
    while ((max_refs == 0 || count < max_refs) && source.next(ref)) {
        ++count;
        if (ref.isInstruction())
            fetch(ref.addr);
    }
}

double
RemotePc::accuracy() const
{
    return ratio(correct_, predictions_);
}

double
RemotePc::relativeAccessTime(double overlapped_fraction) const
{
    const double acc = accuracy();
    return acc * overlapped_fraction + (1.0 - acc) * 1.0;
}

} // namespace occsim
