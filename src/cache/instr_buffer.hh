/**
 * @file
 * Instruction-buffer models from Section 2.2 of the paper.
 *
 * An instruction buffer holds one or more blocks of the instruction
 * address space and feeds the fetch stage. The paper contrasts:
 *
 *  - buffers that do NOT recognize branch targets (DEC VAX-11/780 and
 *    /750 style, eight contiguous bytes): they reduce latency for
 *    consecutive fetches but "do not reduce the number of bytes
 *    required from the memory system" — any control transfer flushes;
 *  - buffers that DO recognize branch targets (CRAY-1 style, four
 *    buffers of 64 consecutive 16-bit parcels each): these can hold
 *    entire loops, and behave exactly like a small fully-associative
 *    instruction cache with block == sub-block == buffer size;
 *  - the paper's own "minimum cache", which both recognizes targets
 *    and transfers only one word per miss.
 *
 * SequentialInstrBuffer models the first kind; for the second kind
 * use makeCrayStyleBuffer() which returns the equivalent Cache
 * configuration, making the comparison explicit in code.
 */

#ifndef OCCSIM_CACHE_INSTR_BUFFER_HH
#define OCCSIM_CACHE_INSTR_BUFFER_HH

#include <cstdint>

#include "cache/cache_config.hh"
#include "trace/trace.hh"

namespace occsim {

/**
 * A sequential-only instruction buffer: services fetches that
 * continue the current straight-line run; any non-sequential fetch
 * (taken branch, call, return) flushes and refills. The buffer
 * prefetches ahead of the consumed address, so every byte of every
 * run is transferred from memory whether executed or not.
 */
class SequentialInstrBuffer
{
  public:
    /**
     * @param size_bytes buffer capacity (e.g. 8 for the VAX-11/780).
     * @param word_size machine word (transfer granule).
     */
    SequentialInstrBuffer(std::uint32_t size_bytes,
                          std::uint32_t word_size);

    /** Feed one instruction fetch. @return true if served from the
     *  buffer (latency hit). */
    bool fetch(Addr addr);

    /** Feed a whole trace, considering only its instruction refs. */
    void run(TraceSource &source, std::uint64_t max_refs = 0);

    std::uint64_t fetches() const { return fetches_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t flushes() const { return flushes_; }
    /** Fraction of fetches served from the buffer. */
    double hitRatio() const;
    /** Words moved from memory (runs are fetched in full). */
    std::uint64_t wordsFetched() const { return wordsFetched_; }
    /**
     * Traffic ratio vs no buffer. Always >= 1: the buffer prefetches
     * to its end, so words beyond the last consumed one are wasted
     * whenever a run ends (the paper's point that plain buffers do
     * not reduce memory bytes).
     */
    double trafficRatio() const;

    std::uint32_t sizeBytes() const { return sizeBytes_; }

  private:
    std::uint32_t sizeBytes_;
    std::uint32_t wordSize_;
    bool validRun_ = false;
    Addr expected_ = 0;      ///< next sequential fetch address
    Addr windowEnd_ = 0;     ///< exclusive end of prefetched window
    std::uint64_t fetches_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t flushes_ = 0;
    std::uint64_t wordsFetched_ = 0;
};

/**
 * The CRAY-1-style buffer set as its equivalent cache: @p num_buffers
 * fully-associative buffers of @p buffer_bytes, LRU-replaced, filled
 * whole (block == sub-block == buffer). Run it on an
 * instruction-only stream (KindFilter) to compare against
 * SequentialInstrBuffer and the minimum cache.
 */
CacheConfig makeCrayStyleBuffer(std::uint32_t num_buffers,
                                std::uint32_t buffer_bytes,
                                std::uint32_t word_size);

} // namespace occsim

#endif // OCCSIM_CACHE_INSTR_BUFFER_HH
