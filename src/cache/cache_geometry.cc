#include "cache/cache_geometry.hh"

#include <algorithm>

#include "util/logging.hh"

namespace occsim {

CacheGeometry::CacheGeometry(const CacheConfig &config)
    : config_(config)
{
    const auto &c = config_;
    if (!isPowerOfTwo(c.netSize) || !isPowerOfTwo(c.blockSize) ||
        !isPowerOfTwo(c.subBlockSize) || !isPowerOfTwo(c.assoc) ||
        !isPowerOfTwo(c.wordSize)) {
        fatal("cache dimensions must be powers of two (%s)",
              c.fullName().c_str());
    }
    if (c.subBlockSize > c.blockSize)
        fatal("sub-block size %u exceeds block size %u", c.subBlockSize,
              c.blockSize);
    if (c.blockSize > c.netSize)
        fatal("block size %u exceeds net cache size %u", c.blockSize,
              c.netSize);
    if (c.wordSize > c.subBlockSize)
        fatal("word size %u exceeds sub-block size %u", c.wordSize,
              c.subBlockSize);
    if (c.addressBits == 0 || c.addressBits > 32)
        fatal("address bits must be in [1, 32] (got %u)", c.addressBits);

    numBlocks_ = c.netSize / c.blockSize;
    // Clamp associativity for caches too small to hold a full set.
    assoc_ = std::min(c.assoc, numBlocks_);
    occsim_assert(assoc_ >= 1, "no ways after clamping");
    numSets_ = numBlocks_ / assoc_;
    subBlocksPerBlock_ = c.blockSize / c.subBlockSize;
    wordsPerSubBlock_ = c.subBlockSize / c.wordSize;
    blockBits_ = floorLog2(c.blockSize);
    subBlockBits_ = floorLog2(c.subBlockSize);
    blockMask_ = c.blockSize - 1;
    setMask_ = numSets_ - 1;

    const std::uint32_t offset_bits = blockBits_;
    if (c.addressBits <= offset_bits)
        fatal("address space smaller than one block");
    tagBits_ = c.addressBits - offset_bits;

    if (subBlocksPerBlock_ > 64) {
        fatal("more than 64 sub-blocks per block (%u) is unsupported",
              subBlocksPerBlock_);
    }
}

std::uint64_t
CacheGeometry::grossBits() const
{
    // Per block: full tag + one valid bit per sub-block + data bits.
    const std::uint64_t per_block =
        tagBits_ + subBlocksPerBlock_ +
        8ull * config_.blockSize;
    return per_block * numBlocks_;
}

std::uint64_t
CacheGeometry::grossBytes() const
{
    return (grossBits() + 7) / 8;
}

std::uint32_t
CacheGeometry::trueTagBitsPerBlock() const
{
    const std::uint32_t index_bits = floorLog2(numSets_);
    const std::uint32_t offset_bits = blockBits_;
    if (config_.addressBits <= offset_bits + index_bits)
        return 0;
    return config_.addressBits - offset_bits - index_bits;
}

} // namespace occsim
