/**
 * @file
 * The RISC II "remote program counter" (Section 2.3): special-purpose
 * logic that guesses the next instruction address so the cache can
 * begin its array access before the processor presents the real
 * address. A correct guess hides the cache access time; a wrong one
 * pays the full time.
 *
 * The original used limited instruction decode plus static
 * jump-likely hints and predicted 89.9% of next-instruction
 * addresses, cutting the access time seen by the processor by 42.2%.
 * We model it as: predict sequential (pc + word) unless a small
 * direct-mapped target table remembers that this address last
 * transferred control elsewhere — the dynamic analogue of the static
 * hints.
 */

#ifndef OCCSIM_CACHE_REMOTE_PC_HH
#define OCCSIM_CACHE_REMOTE_PC_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace occsim {

/** Next-instruction-address predictor. */
class RemotePc
{
  public:
    /**
     * @param table_entries branch-target table size (power of two;
     *        0 = pure sequential prediction).
     * @param word_size instruction word bytes.
     */
    RemotePc(std::uint32_t table_entries, std::uint32_t word_size);

    /**
     * Feed one instruction fetch address; the predictor checks its
     * previous guess and forms the next one.
     */
    void fetch(Addr addr);

    /** Feed a trace (instruction references only). */
    void run(TraceSource &source, std::uint64_t max_refs = 0);

    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t correct() const { return correct_; }
    /** Fraction of next-instruction addresses guessed right
     *  (paper: 0.899). */
    double accuracy() const;

    /**
     * Effective cache access time with prediction, relative to the
     * unpredicted access time: correct guesses cost
     * @p overlapped_fraction of the access (the part that cannot be
     * hidden), wrong guesses cost the full access. The default
     * fraction is chosen so that the RISC II's published numbers are
     * self-consistent: 89.9% accuracy reducing access time by 42.2%
     * implies ~0.53 of the access is unhidden on a correct guess.
     */
    double relativeAccessTime(double overlapped_fraction = 0.53) const;

  private:
    struct Entry
    {
        Addr tag = 0;
        Addr target = 0;
        bool valid = false;
    };

    Entry &entryFor(Addr addr);

    std::uint32_t wordSize_;
    std::uint32_t mask_;
    std::vector<Entry> table_;
    bool havePrev_ = false;
    Addr prevAddr_ = 0;
    Addr predicted_ = 0;
    std::uint64_t predictions_ = 0;
    std::uint64_t correct_ = 0;
};

} // namespace occsim

#endif // OCCSIM_CACHE_REMOTE_PC_HH
