/**
 * @file
 * The sub-block (sector) set-associative cache simulator — the core
 * model of this library.
 *
 * Address tags are associated with blocks; each block holds
 * blockSize/subBlockSize sub-blocks with individual valid bits, and
 * sub-blocks are the unit of memory transfer. With subBlockSize ==
 * blockSize this degenerates to a conventional cache; with one set it
 * is fully associative (the System/360 Model 85 sector cache is the
 * 16-way, 1024/64 instance).
 *
 * Semantics per reference:
 *  - Block hit + valid sub-block: hit.
 *  - Block hit + invalid sub-block: sub-block miss; fetch per policy.
 *  - Block miss: allocate a frame (invalid way first, else the
 *    replacement victim), clear all valid bits, fetch per policy.
 *
 * Fetch policies: demand (target sub-block only), load-forward
 * (target and all subsequent sub-blocks of the block, redundantly
 * re-fetching resident ones — the paper's simple scheme), and
 * optimized load-forward (skips resident sub-blocks; the paper's
 * "more complex" variant, provided for ablation).
 *
 * Writes are simulated for their effect on cache state but excluded
 * from the headline metrics, matching the paper's read-only
 * accounting. Both main-memory update policies are modelled:
 * write-through sends every store word to the bus; copy-back dirties
 * the sub-block and writes dirty sub-blocks back at eviction (see
 * CacheStats::totalTrafficRatio for the write-inclusive figure).
 */

#ifndef OCCSIM_CACHE_CACHE_HH
#define OCCSIM_CACHE_CACHE_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "cache/cache_geometry.hh"
#include "cache/cache_stats.hh"
#include "cache/replacement.hh"
#include "trace/packed_trace.hh"
#include "trace/trace.hh"

namespace occsim {

/** Outcome of one cache access (for tests and instrumentation). */
enum class AccessOutcome : std::uint8_t {
    Hit = 0,
    SubBlockMiss = 1,  ///< tag present, sub-block invalid
    BlockMiss = 2,     ///< tag absent
};

/** Trace-driven sub-block cache simulator. */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return geom_.config(); }
    const CacheGeometry &geometry() const { return geom_; }
    const CacheStats &stats() const { return stats_; }

    /** Simulate one reference. */
    AccessOutcome access(const MemRef &ref);

    /**
     * Replay a span of packed records through the specialized kernel
     * selected for this configuration at construction (one
     * instantiation per fetch-policy x write-policy x write-allocate
     * x replacement-policy combination, so the per-reference policy
     * branches of access() — including the LRU order update — are
     * resolved at compile time). Statistics, replacement state,
     * and frame contents evolve exactly as if access() had been
     * called on every record in order — the batched engines rely on
     * that bit-for-bit, and the differential fuzzer enforces it.
     * Does NOT finalize residencies; callers finalize after the last
     * span of a pass, exactly as with access().
     */
    void replayPacked(const PackedRecord *refs, std::size_t n);

    /**
     * Replay a span of packed records through the Record=false twin
     * of the replay kernel: tags, valid/dirty bits, cold-start
     * tracking, replacement order and RNG draws evolve EXACTLY as
     * replayPacked would evolve them, but no statistic is recorded.
     * This is the functional-warming primitive of the sampling
     * engine (SampleReplay): state moves forward at batched-kernel
     * speed between measurement units while the counters stand still.
     */
    void warmPacked(const PackedRecord *refs, std::size_t n);

    /** Zero the statistics without touching any cache state — the
     *  sampling engine brackets each measurement unit with this so
     *  stats() holds exactly that unit's counts. */
    void resetStats() { stats_.reset(); }

    /**
     * Replace the entire frame state with a warm snapshot (the
     * sampling engine's "live-point" checkpoint restore). @p mru
     * holds numSets rows of @p src_stride block addresses each, most
     * recently used first, padded with unfilled-slot sentinels
     * (~Addr(0)); rows must be dense (no sentinel before a real
     * address). Row s seeds set s: entry j becomes way j with every
     * sub-block valid, clean, untouched, and marked ever-filled, and
     * the replacement order is seeded to match the row's recency
     * (meaningful for LRU — checkpoints exist only for LRU configs).
     * Extra row entries beyond this cache's associativity are
     * ignored, so one maxAssoc-deep snapshot serves every
     * associativity below it (LRU stack inclusion). Statistics are
     * not touched.
     */
    void seedWarmState(const Addr *mru, std::uint32_t src_stride);

    /**
     * Drain @p source (up to @p max_refs references, 0 = all) and then
     * finalize residency statistics.
     * @return number of references simulated.
     */
    std::uint64_t run(TraceSource &source, std::uint64_t max_refs = 0);

    /**
     * Account still-resident blocks into the residency histogram and
     * flush remaining dirty sub-blocks (copy-back write-back traffic).
     * Called automatically by run(); call manually after a sequence of
     * access() calls if residency statistics are wanted.
     */
    void finalizeResidencies();

    /**
     * Invalidate every block, writing back dirty data first, and
     * account the residencies — the effect of a context switch on an
     * on-chip cache without address-space tags (caches of the paper's
     * era flushed on every switch). Statistics and cold-start
     * tracking survive: post-flush misses are *not* cold misses, they
     * are the task-switching cost.
     */
    void flush();

    /** Number of flush() calls since construction/reset. */
    std::uint64_t flushes() const { return flushes_; }

    /** Empty the cache and zero the statistics. */
    void reset();

    // ---- probes (tests and instrumentation) ----
    /** @return true if the sub-block containing @p addr is resident. */
    bool isResident(Addr addr) const;
    /** @return true if the block containing @p addr has a tag match. */
    bool isBlockResident(Addr addr) const;
    /** Valid-bit mask of the block containing @p addr (0 if absent). */
    std::uint64_t validMask(Addr addr) const;

  private:
    /**
     * Frame state is stored structure-of-arrays: the tag array holds
     * only the block addresses (with kNoTag marking an empty frame),
     * so the way scan — the one operation every single reference
     * performs — touches a dense array of 4-byte tags instead of
     * striding over 24-byte frame structs, and the per-sub-block
     * masks live in a parallel metadata array only read on the
     * hit/miss outcome paths.
     */
    struct FrameMeta
    {
        std::uint64_t valid = 0;    ///< per-sub-block valid bits
        std::uint64_t touched = 0;  ///< referenced during residency
        std::uint64_t dirty = 0;    ///< written since fill (copy-back)
        std::uint64_t prefetched = 0;  ///< filled by prefetch, unused
    };

    /** Tag value of an empty frame. Block addresses are 32-bit
     *  addresses shifted right by blockBits >= 1, so the all-ones
     *  value can never name a real block (the constructor rejects
     *  blockSize 1). */
    static constexpr Addr kNoTag = ~Addr(0);

    bool framePresent(std::size_t frame_index) const
    {
        return tags_[frame_index] != kNoTag;
    }

    /** Find the way holding @p block_addr in @p set, or -1. @p A
     *  fixes the associativity at compile time when nonzero (0 =
     *  runtime value), unrolling the scan in the replay kernels. */
    template <std::uint32_t A = 0>
    int findWay(std::uint32_t set, Addr block_addr) const;

    /**
     * Perform the fetch for a miss on @p sub_index of the frame at
     * @p frame_index.
     * @param counted false for write-miss traffic.
     * @param cold whether the triggering miss was cold.
     */
    void fetchInto(std::uint32_t frame_index, std::uint32_t sub_index,
                   bool counted, bool cold);

    /** fetchInto with the fetch policy resolved at compile time (the
     *  runtime fetchInto dispatches here, so both paths share one
     *  implementation per policy). @p Record false elides every
     *  statistics update while leaving the state evolution
     *  (valid/ever-filled bits) untouched — the functional-warming
     *  twin used by warmPacked(). */
    template <FetchPolicy F, bool Record = true>
    void fetchIntoSpec(std::uint32_t frame_index,
                       std::uint32_t sub_index, bool counted,
                       bool cold);

    /** Emit one burst into the stats. */
    void emitBurst(std::uint32_t sub_blocks, bool counted, bool cold,
                   std::uint32_t redundant_sub_blocks);

    /** Account the copy-back write-back of @p meta's dirty bits. */
    void writebackDirty(FrameMeta &meta);

    /**
     * Claim the way of @p set that a new block fill will occupy —
     * the first invalid way, else the replacement victim — and retire
     * the previous residency (touched histogram + dirty write-back).
     * Shared (via the runtime-dispatching claimVictim) by access(),
     * prefetchSequential(), and the replay kernels so the
     * victim-selection sequence exists exactly once.
     * @return the claimed way.
     */
    template <ReplacementPolicy R, std::uint32_t A = 0,
              bool Record = true>
    std::uint32_t claimVictimSpec(std::uint32_t set);

    /** claimVictimSpec with the policy dispatched at run time. */
    template <bool Record = true>
    std::uint32_t claimVictim(std::uint32_t set);

    /** Sequentially prefetch the sub-block following the one that
     *  holds @p miss_addr (PrefetchNextOnMiss policy). A target past
     *  the top of the 32-bit address space has no sequential
     *  successor: the prefetch is suppressed instead of wrapping to
     *  address 0. */
    template <bool Record = true>
    void prefetchSequential(Addr miss_addr);

    /** One access with every policy branch resolved at compile time;
     *  bit-identical in effect to access(). @p A fixes the
     *  associativity at compile time when nonzero (0 = runtime),
     *  fully unrolling the way scan, the victim scan, and the LRU
     *  order update for the common 1/2/4/8-way geometries.
     *  @p Record false strips every statistics update at compile time
     *  while evolving tags, valid/dirty bits, cold tracking, and
     *  replacement state (including RNG draws) bit-identically —
     *  warming a cache through the Record=false twin and then
     *  measuring must land it in exactly the state the recording
     *  kernel would have produced. */
    template <FetchPolicy F, bool CopyBack, bool WriteAllocate,
              ReplacementPolicy R, std::uint32_t A, bool Record>
    void accessSpec(Addr addr, bool is_write, bool is_ifetch);

    /** Kernel: replay a packed span through accessSpec. */
    template <FetchPolicy F, bool CopyBack, bool WriteAllocate,
              ReplacementPolicy R, std::uint32_t A, bool Record>
    void replayLoop(const PackedRecord *refs, std::size_t n);

    using ReplayKernel = void (Cache::*)(const PackedRecord *,
                                         std::size_t);

    /** Dispatch-table lookup: the replayLoop instantiation for one
     *  policy combination (chosen once, at construction); @p record
     *  false selects the non-recording functional-warming twin. */
    static ReplayKernel selectKernel(FetchPolicy fetch, bool copy_back,
                                     bool write_allocate,
                                     ReplacementPolicy repl,
                                     std::uint32_t assoc, bool record);

    CacheGeometry geom_;
    // Hot-path copies of config/geometry fields, hoisted out of the
    // per-reference loop (access/findWay run once per trace record;
    // going through geom_.config() each time costs an extra
    // indirection per field).
    std::uint32_t assoc_;
    std::uint32_t numSubs_;
    std::uint32_t wordsPerSub_;
    std::uint32_t subBlockSize_;
    FetchPolicy fetch_;
    bool copyBack_;
    bool writeAllocate_;
    bool prefetchOnMiss_;
    ReplayKernel kernel_;
    ReplayKernel kernelWarm_;  ///< Record=false twin of kernel_
    ReplacementState repl_;
    CacheStats stats_;
    /** Block address per frame (kNoTag = empty); indexed
     *  set * assoc + way. */
    std::vector<Addr> tags_;
    /** Per-frame sub-block masks, parallel to tags_. */
    std::vector<FrameMeta> meta_;
    /** Per frame, per sub-block slot: ever filled since reset
     *  (cold-miss tracking). */
    std::vector<std::uint64_t> everFilled_;
    std::uint64_t flushes_ = 0;
};

} // namespace occsim

#endif // OCCSIM_CACHE_CACHE_HH
