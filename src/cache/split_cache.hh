/**
 * @file
 * Split instruction/data cache organisation — the first item on the
 * paper's further-studies list ("partitioning instruction and data
 * caches"). Routes instruction fetches to one Cache and data
 * references to another and reports combined metrics directly
 * comparable to a mixed cache of the same total size.
 */

#ifndef OCCSIM_CACHE_SPLIT_CACHE_HH
#define OCCSIM_CACHE_SPLIT_CACHE_HH

#include "cache/cache.hh"

namespace occsim {

/** A pair of caches partitioned by reference kind. */
class SplitCache
{
  public:
    /**
     * @param icache_config configuration of the instruction side.
     * @param dcache_config configuration of the data side.
     */
    SplitCache(const CacheConfig &icache_config,
               const CacheConfig &dcache_config);

    /** Route one reference to the appropriate side. */
    AccessOutcome access(const MemRef &ref);

    /** Replay a packed span, routing each record by kind (spans of
     *  the same kind forward to the sides' batched kernels). Does NOT
     *  finalize; callers finalize after the last span. */
    void replayPacked(const PackedRecord *refs, std::size_t n);

    /** Drain @p source and finalize both sides. */
    std::uint64_t run(TraceSource &source, std::uint64_t max_refs = 0);

    void finalizeResidencies();
    void reset();

    const Cache &icache() const { return icache_; }
    const Cache &dcache() const { return dcache_; }

    /** Total net size (both sides). */
    std::uint32_t netSize() const;
    /** Total gross size (both sides). */
    std::uint64_t grossBytes() const;

    // ---- combined metrics (counted references: reads + ifetches) --
    std::uint64_t accesses() const;
    std::uint64_t misses() const;
    double missRatio() const;
    double trafficRatio() const;

  private:
    Cache icache_;
    Cache dcache_;
};

/**
 * One side of an even split of @p mixed_config: half the net size,
 * same geometry otherwise, partition tag cleared (each side is an
 * ordinary unified cache — the SplitID tag belongs to the pair).
 */
CacheConfig evenSplitHalf(const CacheConfig &mixed_config);

/**
 * Convenience: split a mixed configuration into two half-size caches
 * of the same geometry (the natural comparison point).
 */
SplitCache makeEvenSplit(const CacheConfig &mixed_config);

} // namespace occsim

#endif // OCCSIM_CACHE_SPLIT_CACHE_HH
