/**
 * @file
 * Derived cache geometry: validated dimensions, address decomposition,
 * and the paper's gross-size (tag + valid + data) cost model.
 *
 * The paper charges each block a full tag of (addressBits -
 * log2(blockSize)) bits regardless of how many bits the set index
 * could remove; footnote 3 explicitly neglects that lower-order
 * effect, and the published gross sizes (Table 7, e.g. 79 bytes for a
 * 64-byte 16,8 cache) follow this model exactly. We reproduce it and
 * also expose the "true" tag size for comparison.
 */

#ifndef OCCSIM_CACHE_CACHE_GEOMETRY_HH
#define OCCSIM_CACHE_CACHE_GEOMETRY_HH

#include <cstdint>

#include "cache/cache_config.hh"
#include "util/bitops.hh"

namespace occsim {

/** Validated, derived dimensions for one CacheConfig. */
class CacheGeometry
{
  public:
    /**
     * Validate @p config and derive all dimensions. Calls fatal() on
     * invalid configurations (all sizes must be powers of two,
     * subBlockSize <= blockSize <= netSize, wordSize <= subBlockSize).
     */
    explicit CacheGeometry(const CacheConfig &config);

    const CacheConfig &config() const { return config_; }

    std::uint32_t numBlocks() const { return numBlocks_; }
    std::uint32_t numSets() const { return numSets_; }
    /** Effective associativity after clamping to numBlocks. */
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t subBlocksPerBlock() const { return subBlocksPerBlock_; }
    std::uint32_t wordsPerSubBlock() const { return wordsPerSubBlock_; }

    /** Address decomposition. */
    Addr blockAddr(Addr addr) const { return addr >> blockBits_; }
    Addr setIndex(Addr addr) const
    {
        return (addr >> blockBits_) & setMask_;
    }
    Addr tag(Addr addr) const { return addr >> blockBits_; }
    std::uint32_t subBlockIndex(Addr addr) const
    {
        return (addr & blockMask_) >> subBlockBits_;
    }

    /** Gross-size model (paper's accounting; see file comment). */
    std::uint32_t tagBitsPerBlock() const { return tagBits_; }
    std::uint32_t validBitsPerBlock() const { return subBlocksPerBlock_; }
    std::uint64_t grossBits() const;
    /** Gross size in bytes, rounded up. */
    std::uint64_t grossBytes() const;

    /** Tag bits if the set index were deducted (footnote-3 effect). */
    std::uint32_t trueTagBitsPerBlock() const;

    std::uint32_t blockBits() const { return blockBits_; }
    std::uint32_t subBlockBits() const { return subBlockBits_; }

  private:
    CacheConfig config_;
    std::uint32_t numBlocks_ = 0;
    std::uint32_t numSets_ = 0;
    std::uint32_t assoc_ = 0;
    std::uint32_t subBlocksPerBlock_ = 0;
    std::uint32_t wordsPerSubBlock_ = 0;
    std::uint32_t blockBits_ = 0;
    std::uint32_t subBlockBits_ = 0;
    std::uint32_t tagBits_ = 0;
    Addr blockMask_ = 0;
    Addr setMask_ = 0;
};

} // namespace occsim

#endif // OCCSIM_CACHE_CACHE_GEOMETRY_HH
