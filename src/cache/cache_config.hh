/**
 * @file
 * User-facing cache configuration (Table 1 of the paper).
 *
 * A configuration names the design point: net (data) size, block size
 * (bytes per address tag), sub-block size (bytes per memory transfer
 * and per valid bit), associativity, replacement policy, and fetch
 * policy. Validation and all derived address arithmetic live in
 * CacheGeometry.
 */

#ifndef OCCSIM_CACHE_CACHE_CONFIG_HH
#define OCCSIM_CACHE_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

namespace occsim {

/** Replacement policy for a set. */
enum class ReplacementPolicy : std::uint8_t {
    LRU = 0,     ///< least recently used (the paper's choice)
    FIFO = 1,    ///< first in, first out
    Random = 2,  ///< uniform random victim
};

const char *replacementPolicyName(ReplacementPolicy policy);

/** Fetch policy on a miss. */
enum class FetchPolicy : std::uint8_t {
    /** Fetch only the missing sub-block (the paper's default). */
    Demand = 0,
    /**
     * Fetch the missing sub-block and all subsequent sub-blocks of the
     * block, re-fetching any that are already resident (the paper's
     * simple "redundant-load" scheme, as in the Zilog Z80,000).
     */
    LoadForward = 1,
    /**
     * Load-forward that remembers resident sub-blocks and fetches only
     * the invalid ones (the paper's "optimized" variant, mentioned but
     * not adopted; we implement it for the ablation study).
     */
    LoadForwardOptimized = 2,
    /**
     * Demand fetch plus one-sub-block-lookahead sequential prefetch
     * on miss (Smith 1978, the paper's reference [11]; prefetch
     * studies were declared beyond the paper's scope — provided as
     * an extension). The prefetch may cross into the sequentially
     * next block, allocating it. A miss on the last sub-block of the
     * address space has no sequential successor; the prefetch is
     * suppressed rather than wrapping around to address 0.
     */
    PrefetchNextOnMiss = 3,
};

const char *fetchPolicyName(FetchPolicy policy);

/**
 * Main-memory update policy (Section 3.2 lists "methods of updating
 * main memory" among the performance-relevant design choices; the
 * paper filters writes out of its metrics and flags write-through vs
 * copy-back as further study — occsim models both).
 */
enum class WritePolicy : std::uint8_t {
    /** Every store is sent to memory immediately (one word). */
    WriteThrough = 0,
    /** Stores dirty the sub-block; dirty sub-blocks are written back
     *  at eviction. */
    CopyBack = 1,
};

const char *writePolicyName(WritePolicy policy);

/**
 * Cache organization: one unified cache serving both streams, or a
 * split pair (instruction cache + data cache, each of half the net
 * size) routed by MemRef::isInstruction(). Section 3.2 lists the
 * split-vs-unified question among the design choices; the split case
 * is simulated by SplitCache as two independent halves.
 */
enum class CachePartition : std::uint8_t {
    Unified = 0,
    SplitID = 1,  ///< even I/D split (netSize/2 each)
};

const char *cachePartitionName(CachePartition partition);

/** Full description of one cache design point. */
struct CacheConfig
{
    /** Net cache size: data bytes only (the paper's "cache size"). */
    std::uint32_t netSize = 1024;

    /** Block (line/sector) size: bytes per address tag. */
    std::uint32_t blockSize = 16;

    /** Sub-block size: bytes per transfer and per valid bit. */
    std::uint32_t subBlockSize = 8;

    /**
     * Requested associativity. The effective associativity is clamped
     * to the number of blocks when the cache is too small for a full
     * set (e.g. a 32-byte cache with 16-byte blocks is 2-way).
     */
    std::uint32_t assoc = 4;

    /** Data-path width in bytes: 2 (PDP-11, Z8000) or 4 (VAX, S/370). */
    std::uint32_t wordSize = 2;

    /** Address bits used for tag-cost accounting (paper assumes 32). */
    std::uint32_t addressBits = 32;

    ReplacementPolicy replacement = ReplacementPolicy::LRU;
    FetchPolicy fetch = FetchPolicy::Demand;
    WritePolicy write = WritePolicy::WriteThrough;

    /** Allocate and fetch on write misses (write-allocate). */
    bool writeAllocate = true;

    /** Unified vs split I/D organization. SplitID halves netSize per
     *  side, so it requires netSize >= 2 * blockSize. */
    CachePartition partition = CachePartition::Unified;

    /** Seed for the Random replacement policy. */
    std::uint64_t randomSeed = 1;

    /** Short label in the paper's style, e.g. "16,8" or "16,2,LF". */
    std::string shortName() const;

    /** Longer label including net size, e.g. "1024B 16,8 4-way LRU". */
    std::string fullName() const;

    bool operator==(const CacheConfig &other) const = default;
};

/**
 * Convenience builder for the paper's standard sweep entries:
 * 4-way LRU demand-fetch with the given sizes.
 */
CacheConfig makeConfig(std::uint32_t net_size, std::uint32_t block_size,
                       std::uint32_t sub_block_size,
                       std::uint32_t word_size);

/** The IBM System/360 Model 85 sector cache: 16 fully-associative
 *  1024-byte blocks with 64-byte sub-blocks (16 KB net). */
CacheConfig make360Model85Config(std::uint32_t word_size = 4);

} // namespace occsim

#endif // OCCSIM_CACHE_CACHE_CONFIG_HH
