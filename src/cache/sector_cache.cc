#include "cache/sector_cache.hh"

namespace occsim {

std::vector<CacheConfig>
table6Comparators(std::uint32_t word_size)
{
    std::vector<CacheConfig> configs;
    for (std::uint32_t assoc : {4u, 8u, 16u}) {
        CacheConfig config;
        config.netSize = 16 * 1024;
        config.blockSize = 64;
        config.subBlockSize = 64;
        config.assoc = assoc;
        config.wordSize = word_size;
        configs.push_back(config);
    }
    return configs;
}

} // namespace occsim
