/**
 * @file
 * Replacement policies for set-associative caches.
 *
 * The paper runs everything with LRU (citing Mattson et al.'s
 * efficient-simulation argument and Strecker's observation that LRU,
 * FIFO and RANDOM perform comparably); FIFO and Random are provided so
 * that observation can be reproduced as an ablation.
 *
 * One ReplacementState instance manages every set of one cache. Ways
 * within a set are tracked in an eviction-order list: position 0 is
 * the next victim, the last position the most protected.
 */

#ifndef OCCSIM_CACHE_REPLACEMENT_HH
#define OCCSIM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "util/random.hh"

namespace occsim {

/** Per-cache replacement bookkeeping. */
class ReplacementState
{
  public:
    ReplacementState(ReplacementPolicy policy, std::uint32_t num_sets,
                     std::uint32_t assoc, std::uint64_t seed = 1);

    /** A resident way was referenced (hit or sub-block miss). */
    void onAccess(std::uint32_t set, std::uint32_t way);

    /** A way was (re)filled with a new block. */
    void onFill(std::uint32_t set, std::uint32_t way);

    /** @return the way to evict from @p set. */
    std::uint32_t victim(std::uint32_t set);

    /**
     * @return the ways of @p set ordered from next-victim to most
     * protected (meaningful for LRU/FIFO; arbitrary for Random).
     */
    std::vector<std::uint32_t> evictionOrder(std::uint32_t set) const;

    ReplacementPolicy policy() const { return policy_; }

  private:
    std::uint8_t *setOrder(std::uint32_t set);
    const std::uint8_t *setOrder(std::uint32_t set) const;
    void moveToBack(std::uint32_t set, std::uint32_t way);

    ReplacementPolicy policy_;
    std::uint32_t numSets_;
    std::uint32_t assoc_;
    /** numSets * assoc way ids, each set a contiguous slice. */
    std::vector<std::uint8_t> order_;
    Rng rng_;
};

} // namespace occsim

#endif // OCCSIM_CACHE_REPLACEMENT_HH
