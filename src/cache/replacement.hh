/**
 * @file
 * Replacement policies for set-associative caches.
 *
 * The paper runs everything with LRU (citing Mattson et al.'s
 * efficient-simulation argument and Strecker's observation that LRU,
 * FIFO and RANDOM perform comparably); FIFO and Random are provided so
 * that observation can be reproduced as an ablation.
 *
 * One ReplacementState instance manages every set of one cache. Ways
 * within a set are tracked in an eviction-order list: position 0 is
 * the next victim, the last position the most protected.
 */

#ifndef OCCSIM_CACHE_REPLACEMENT_HH
#define OCCSIM_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <vector>

#include "cache/cache_config.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace occsim {

/** Per-cache replacement bookkeeping. */
class ReplacementState
{
  public:
    ReplacementState(ReplacementPolicy policy, std::uint32_t num_sets,
                     std::uint32_t assoc, std::uint64_t seed = 1);

    /** A resident way was referenced (hit or sub-block miss). */
    void onAccess(std::uint32_t set, std::uint32_t way);

    /** A way was (re)filled with a new block. */
    void onFill(std::uint32_t set, std::uint32_t way);

    /** @return the way to evict from @p set. */
    std::uint32_t victim(std::uint32_t set);

    // ---- policy-specialized fast paths (replay kernels) ----
    // Identical state evolution to the runtime methods above, with
    // the policy branch resolved at compile time so the LRU
    // move-to-back inlines into the kernel's per-reference loop
    // (onAccess runs on every hit; an out-of-line call here was the
    // dominant per-reference cost of the batched engine). The @p A
    // parameter optionally fixes the associativity at compile time
    // (0 = use the runtime value), fully unrolling the order-list
    // scan for the common 1/2/4/8-way geometries.

    /** onAccess with @p P (and optionally assoc) resolved at compile
     *  time. */
    template <ReplacementPolicy P, std::uint32_t A = 0>
    void onAccessSpec(std::uint32_t set, std::uint32_t way)
    {
        if constexpr (P == ReplacementPolicy::LRU)
            moveToBack<A>(set, way);
    }

    /** onFill with @p P (and optionally assoc) resolved at compile
     *  time. */
    template <ReplacementPolicy P, std::uint32_t A = 0>
    void onFillSpec(std::uint32_t set, std::uint32_t way)
    {
        if constexpr (P == ReplacementPolicy::LRU ||
                      P == ReplacementPolicy::FIFO) {
            moveToBack<A>(set, way);
        }
    }

    /** The most-protected way of @p set — the back of the eviction
     *  order. moveToBack is a no-op for that way, so a caller holding
     *  a hit on it may skip onAccessSpec: one load and compare in
     *  place of the scan-and-shift. Meaningful for LRU and FIFO. */
    template <std::uint32_t A = 0>
    std::uint32_t mostProtected(std::uint32_t set) const
    {
        const std::uint32_t assoc = A != 0 ? A : assoc_;
        return setOrder(set)[assoc - 1];
    }

    /** victim with @p P (and optionally assoc) resolved at compile
     *  time. */
    template <ReplacementPolicy P, std::uint32_t A = 0>
    std::uint32_t victimSpec(std::uint32_t set)
    {
        if constexpr (P == ReplacementPolicy::Random) {
            return static_cast<std::uint32_t>(
                rng_.below(A != 0 ? A : assoc_));
        } else {
            return setOrder(set)[0];
        }
    }

    /**
     * @return the ways of @p set ordered from next-victim to most
     * protected (meaningful for LRU/FIFO; arbitrary for Random).
     */
    std::vector<std::uint32_t> evictionOrder(std::uint32_t set) const;

    /**
     * Seed @p set's eviction order for a warm-checkpoint restore
     * where ways 0..@p filled-1 hold blocks in most-recently-used
     * order (way 0 = MRU) and ways @p filled..assoc-1 are empty:
     * the empty ways come first (arbitrary — victim selection never
     * reaches them while an invalid way exists), then the occupied
     * ways LRU-first, so the next victim among occupied ways is way
     * filled-1 and the most protected is way 0.
     */
    void seedMruOrder(std::uint32_t set, std::uint32_t filled)
    {
        occsim_assert(filled <= assoc_,
                      "seeding %u filled ways into %u-way set",
                      filled, assoc_);
        std::uint8_t *slice = setOrder(set);
        std::uint32_t pos = 0;
        for (std::uint32_t way = filled; way < assoc_; ++way)
            slice[pos++] = static_cast<std::uint8_t>(way);
        for (std::uint32_t way = filled; way > 0; --way)
            slice[pos++] = static_cast<std::uint8_t>(way - 1);
    }

    ReplacementPolicy policy() const { return policy_; }

  private:
    // Defined inline (rather than in replacement.cc) so the
    // policy-specialized fast paths above fold into their callers.
    std::uint8_t *setOrder(std::uint32_t set)
    {
        return order_.data() +
               static_cast<std::size_t>(set) * assoc_;
    }
    const std::uint8_t *setOrder(std::uint32_t set) const
    {
        return order_.data() +
               static_cast<std::size_t>(set) * assoc_;
    }

    /** Promote @p way to the most-protected slot of @p set. @p A as
     *  in the Spec methods above (0 = runtime associativity). */
    template <std::uint32_t A = 0>
    void moveToBack(std::uint32_t set, std::uint32_t way)
    {
        const std::uint32_t assoc = A != 0 ? A : assoc_;
        std::uint8_t *slice = setOrder(set);
        std::uint32_t pos = 0;
        while (pos < assoc && slice[pos] != way)
            ++pos;
        occsim_assert(pos < assoc,
                      "way %u not present in set %u order", way, set);
        for (; pos + 1 < assoc; ++pos)
            slice[pos] = slice[pos + 1];
        slice[assoc - 1] = static_cast<std::uint8_t>(way);
    }

    ReplacementPolicy policy_;
    std::uint32_t numSets_;
    std::uint32_t assoc_;
    /** numSets * assoc way ids, each set a contiguous slice. */
    std::vector<std::uint8_t> order_;
    Rng rng_;
};

} // namespace occsim

#endif // OCCSIM_CACHE_REPLACEMENT_HH
