/**
 * @file
 * The IBM System/360 Model 85 sector cache (Liptay 1968), the first
 * cache memory, and the paper's Table 6 comparison against modern
 * set-associative organizations.
 *
 * The Model 85 organization: 16 KB of data in 16 fully-associative
 * 1024-byte blocks ("sectors"), transferred in 64-byte sub-blocks,
 * LRU replacement, demand fetch of the missing sub-block. In occsim
 * this is exactly a Cache with that geometry; this wrapper packages
 * the historical configuration and the comparison set.
 */

#ifndef OCCSIM_CACHE_SECTOR_CACHE_HH
#define OCCSIM_CACHE_SECTOR_CACHE_HH

#include <vector>

#include "cache/cache.hh"

namespace occsim {

/** Convenience wrapper: a 360/85-configured Cache. */
class SectorCache360Model85 : public Cache
{
  public:
    explicit SectorCache360Model85(std::uint32_t word_size = 4)
        : Cache(make360Model85Config(word_size))
    {
    }
};

/**
 * Table 6's comparison set: 16 KB caches with 64-byte blocks
 * (sub-block == block) at 4-, 8- and 16-way associativity, LRU.
 */
std::vector<CacheConfig>
table6Comparators(std::uint32_t word_size = 4);

} // namespace occsim

#endif // OCCSIM_CACHE_SECTOR_CACHE_HH
