#include "cache/cache.hh"

#include <bit>

#include "util/logging.hh"

namespace occsim {

Cache::Cache(const CacheConfig &config)
    : geom_(config),
      assoc_(geom_.assoc()),
      numSubs_(geom_.subBlocksPerBlock()),
      wordsPerSub_(geom_.wordsPerSubBlock()),
      subBlockSize_(config.subBlockSize),
      fetch_(config.fetch),
      copyBack_(config.write == WritePolicy::CopyBack),
      writeAllocate_(config.writeAllocate),
      prefetchOnMiss_(config.fetch == FetchPolicy::PrefetchNextOnMiss),
      kernel_(selectKernel(fetch_, copyBack_, writeAllocate_,
                           config.replacement, assoc_,
                           /*record=*/true)),
      kernelWarm_(selectKernel(fetch_, copyBack_, writeAllocate_,
                               config.replacement, assoc_,
                               /*record=*/false)),
      repl_(config.replacement, geom_.numSets(), geom_.assoc(),
            config.randomSeed),
      stats_(geom_.subBlocksPerBlock(),
             geom_.subBlocksPerBlock() * geom_.wordsPerSubBlock()),
      tags_(geom_.numBlocks(), kNoTag),
      meta_(geom_.numBlocks()),
      everFilled_(geom_.numBlocks(), 0)
{
    // The empty-frame sentinel must be unreachable as a block address:
    // with blockBits >= 1 the largest block address is 2^31 - 1.
    if (geom_.blockBits() == 0)
        fatal("block size 1 is unsupported (%s)",
              config.fullName().c_str());
}

template <std::uint32_t A>
int
Cache::findWay(std::uint32_t set, Addr block_addr) const
{
    const std::uint32_t assoc = A != 0 ? A : assoc_;
    const Addr *tags =
        tags_.data() + static_cast<std::size_t>(set) * assoc;
    for (std::uint32_t way = 0; way < assoc; ++way) {
        if (tags[way] == block_addr)
            return static_cast<int>(way);
    }
    return -1;
}

void
Cache::emitBurst(std::uint32_t sub_blocks, bool counted, bool cold,
                 std::uint32_t redundant_sub_blocks)
{
    const std::uint32_t words = sub_blocks * wordsPerSub_;
    if (counted) {
        stats_.recordBurst(words, cold,
                           redundant_sub_blocks * wordsPerSub_);
    } else {
        stats_.recordWriteBurst(words);
    }
}

template <FetchPolicy F, bool Record>
void
Cache::fetchIntoSpec(std::uint32_t frame_index,
                     std::uint32_t sub_index, bool counted, bool cold)
{
    const std::uint32_t num_subs = numSubs_;
    std::uint64_t &valid = meta_[frame_index].valid;
    std::uint64_t &ever = everFilled_[frame_index];

    if constexpr (F == FetchPolicy::Demand ||
                  F == FetchPolicy::PrefetchNextOnMiss) {
        valid |= (std::uint64_t{1} << sub_index);
        ever |= (std::uint64_t{1} << sub_index);
        if constexpr (Record)
            emitBurst(1, counted, cold, 0);
    } else if constexpr (F == FetchPolicy::LoadForward) {
        // One burst covering the target and every subsequent
        // sub-block, re-fetching resident ones (redundant loads).
        const std::uint32_t span = num_subs - sub_index;
        const std::uint64_t span_mask =
            (span == 64 ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << span) - 1))
            << sub_index;
        if constexpr (Record) {
            const std::uint32_t redundant =
                static_cast<std::uint32_t>(
                    std::popcount(valid & span_mask));
            emitBurst(span, counted, cold, redundant);
        }
        valid |= span_mask;
        ever |= span_mask;
    } else {
        // Fetch only the invalid sub-blocks at or after the target,
        // as one burst per contiguous invalid run.
        std::uint32_t run = 0;
        for (std::uint32_t i = sub_index; i < num_subs; ++i) {
            const std::uint64_t bit = std::uint64_t{1} << i;
            if (valid & bit) {
                if (run != 0) {
                    if constexpr (Record)
                        emitBurst(run, counted, cold, 0);
                    run = 0;
                }
            } else {
                valid |= bit;
                ever |= bit;
                ++run;
            }
        }
        if (run != 0) {
            if constexpr (Record)
                emitBurst(run, counted, cold, 0);
        }
    }
}

void
Cache::fetchInto(std::uint32_t frame_index, std::uint32_t sub_index,
                 bool counted, bool cold)
{
    switch (fetch_) {
      case FetchPolicy::Demand:
        fetchIntoSpec<FetchPolicy::Demand>(frame_index, sub_index,
                                           counted, cold);
        break;
      case FetchPolicy::PrefetchNextOnMiss:
        fetchIntoSpec<FetchPolicy::PrefetchNextOnMiss>(
            frame_index, sub_index, counted, cold);
        break;
      case FetchPolicy::LoadForward:
        fetchIntoSpec<FetchPolicy::LoadForward>(frame_index, sub_index,
                                                counted, cold);
        break;
      case FetchPolicy::LoadForwardOptimized:
        fetchIntoSpec<FetchPolicy::LoadForwardOptimized>(
            frame_index, sub_index, counted, cold);
        break;
    }
}

void
Cache::writebackDirty(FrameMeta &meta)
{
    if (meta.dirty != 0) {
        stats_.recordWriteback(
            static_cast<std::uint32_t>(std::popcount(meta.dirty)) *
            wordsPerSub_);
        meta.dirty = 0;
    }
}

template <ReplacementPolicy R, std::uint32_t A, bool Record>
std::uint32_t
Cache::claimVictimSpec(std::uint32_t set)
{
    const std::uint32_t assoc = A != 0 ? A : assoc_;
    const std::size_t base = static_cast<std::size_t>(set) * assoc;
    const Addr *tags = tags_.data() + base;
    for (std::uint32_t w = 0; w < assoc; ++w) {
        if (tags[w] == kNoTag)
            return w;
    }
    const std::uint32_t victim = repl_.victimSpec<R, A>(set);
    FrameMeta &meta = meta_[base + victim];
    if constexpr (Record) {
        stats_.recordResidency(
            static_cast<std::uint32_t>(std::popcount(meta.touched)));
        writebackDirty(meta);
    } else {
        // Same end state without the residency/write-back stats.
        meta.dirty = 0;
    }
    return victim;
}

template <bool Record>
std::uint32_t
Cache::claimVictim(std::uint32_t set)
{
    switch (repl_.policy()) {
      case ReplacementPolicy::LRU:
        return claimVictimSpec<ReplacementPolicy::LRU, 0, Record>(set);
      case ReplacementPolicy::FIFO:
        return claimVictimSpec<ReplacementPolicy::FIFO, 0, Record>(
            set);
      case ReplacementPolicy::Random:
        return claimVictimSpec<ReplacementPolicy::Random, 0, Record>(
            set);
    }
    panic("bad replacement policy %d",
          static_cast<int>(repl_.policy()));
}

AccessOutcome
Cache::access(const MemRef &ref)
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(geom_.setIndex(ref.addr));
    const Addr block_addr = geom_.blockAddr(ref.addr);
    const std::uint32_t sub_index = geom_.subBlockIndex(ref.addr);
    const std::uint64_t sub_bit = std::uint64_t{1} << sub_index;
    const bool is_write = ref.isWrite();
    const bool counted = !is_write;
    const bool is_ifetch = ref.isInstruction();

    const int way = findWay(set, block_addr);

    if (way >= 0) {
        const std::uint32_t frame_index =
            set * assoc_ + static_cast<std::uint32_t>(way);
        FrameMeta &meta = meta_[frame_index];
        repl_.onAccess(set, static_cast<std::uint32_t>(way));
        meta.touched |= sub_bit;
        if (meta.valid & sub_bit) {
            if (meta.prefetched & sub_bit) {
                stats_.recordUsefulPrefetch();
                meta.prefetched &= ~sub_bit;
            }
            if (counted) {
                stats_.recordHit(is_ifetch);
            } else {
                stats_.recordWrite(true);
                if (copyBack_)
                    meta.dirty |= sub_bit;
                else
                    stats_.recordStoreTraffic(1);
            }
            return AccessOutcome::Hit;
        }
        // Sub-block miss: tag matches but the word is not resident.
        const bool cold = (everFilled_[frame_index] & sub_bit) == 0;
        if (counted)
            stats_.recordMiss(is_ifetch, false, cold);
        else
            stats_.recordWrite(false);
        fetchInto(frame_index, sub_index, counted, cold);
        meta.prefetched &= ~sub_bit;
        if (is_write) {
            if (copyBack_)
                meta.dirty |= sub_bit;
            else
                stats_.recordStoreTraffic(1);
        }
        if (prefetchOnMiss_)
            prefetchSequential(ref.addr);
        return AccessOutcome::SubBlockMiss;
    }

    // Block miss: allocate a frame.
    if (is_write && !writeAllocate_) {
        stats_.recordWrite(false);
        stats_.recordStoreTraffic(1);
        return AccessOutcome::BlockMiss;
    }

    const std::uint32_t victim_way = claimVictim(set);

    const std::uint32_t frame_index = set * assoc_ + victim_way;
    const bool cold = (everFilled_[frame_index] & sub_bit) == 0;
    if (counted)
        stats_.recordMiss(is_ifetch, true, cold);
    else
        stats_.recordWrite(false);

    tags_[frame_index] = block_addr;
    FrameMeta &meta = meta_[frame_index];
    meta.valid = 0;
    meta.touched = sub_bit;
    meta.dirty = 0;
    meta.prefetched = 0;
    repl_.onFill(set, victim_way);
    fetchInto(frame_index, sub_index, counted, cold);
    if (is_write) {
        if (copyBack_)
            meta.dirty |= sub_bit;
        else
            stats_.recordStoreTraffic(1);
    }
    if (prefetchOnMiss_)
        prefetchSequential(ref.addr);
    return AccessOutcome::BlockMiss;
}

template <FetchPolicy F, bool CopyBack, bool WriteAllocate,
          ReplacementPolicy R, std::uint32_t A, bool Record>
void
Cache::accessSpec(Addr addr, bool is_write, bool is_ifetch)
{
    const std::uint32_t assoc = A != 0 ? A : assoc_;
    const std::uint32_t set =
        static_cast<std::uint32_t>(geom_.setIndex(addr));
    const Addr block_addr = geom_.blockAddr(addr);
    const std::uint32_t sub_index = geom_.subBlockIndex(addr);
    const std::uint64_t sub_bit = std::uint64_t{1} << sub_index;
    const bool counted = !is_write;

    const int way = findWay<A>(set, block_addr);

    if (way >= 0) {
        const std::uint32_t frame_index =
            set * assoc + static_cast<std::uint32_t>(way);
        FrameMeta &meta = meta_[frame_index];
        repl_.onAccessSpec<R, A>(set,
                                 static_cast<std::uint32_t>(way));
        meta.touched |= sub_bit;
        if (meta.valid & sub_bit) {
            if (meta.prefetched & sub_bit) {
                if constexpr (Record)
                    stats_.recordUsefulPrefetch();
                meta.prefetched &= ~sub_bit;
            }
            if (counted) {
                if constexpr (Record)
                    stats_.recordHit(is_ifetch);
            } else {
                if constexpr (Record)
                    stats_.recordWrite(true);
                if constexpr (CopyBack)
                    meta.dirty |= sub_bit;
                else if constexpr (Record)
                    stats_.recordStoreTraffic(1);
            }
            return;
        }
        // Sub-block miss: tag matches but the word is not resident.
        const bool cold = (everFilled_[frame_index] & sub_bit) == 0;
        if constexpr (Record) {
            if (counted)
                stats_.recordMiss(is_ifetch, false, cold);
            else
                stats_.recordWrite(false);
        }
        fetchIntoSpec<F, Record>(frame_index, sub_index, counted,
                                 cold);
        meta.prefetched &= ~sub_bit;
        if (is_write) {
            if constexpr (CopyBack)
                meta.dirty |= sub_bit;
            else if constexpr (Record)
                stats_.recordStoreTraffic(1);
        }
        if constexpr (F == FetchPolicy::PrefetchNextOnMiss)
            prefetchSequential<Record>(addr);
        return;
    }

    // Block miss: allocate a frame.
    if constexpr (!WriteAllocate) {
        if (is_write) {
            if constexpr (Record) {
                stats_.recordWrite(false);
                stats_.recordStoreTraffic(1);
            }
            return;
        }
    }

    const std::uint32_t victim_way =
        claimVictimSpec<R, A, Record>(set);

    const std::uint32_t frame_index = set * assoc + victim_way;
    const bool cold = (everFilled_[frame_index] & sub_bit) == 0;
    if constexpr (Record) {
        if (counted)
            stats_.recordMiss(is_ifetch, true, cold);
        else
            stats_.recordWrite(false);
    }

    tags_[frame_index] = block_addr;
    FrameMeta &meta = meta_[frame_index];
    meta.valid = 0;
    meta.touched = sub_bit;
    meta.dirty = 0;
    meta.prefetched = 0;
    repl_.onFillSpec<R, A>(set, victim_way);
    fetchIntoSpec<F, Record>(frame_index, sub_index, counted, cold);
    if (is_write) {
        if constexpr (CopyBack)
            meta.dirty |= sub_bit;
        else if constexpr (Record)
            stats_.recordStoreTraffic(1);
    }
    if constexpr (F == FetchPolicy::PrefetchNextOnMiss)
        prefetchSequential<Record>(addr);
}

template <FetchPolicy F, bool CopyBack, bool WriteAllocate,
          ReplacementPolicy R, std::uint32_t A, bool Record>
void
Cache::replayLoop(const PackedRecord *refs, std::size_t n)
{
    // Pull the set metadata of a record a few iterations ahead toward
    // the core while the current record is priced: on large set
    // counts the tag read is the dominant cache-missing load of the
    // loop. Distance 8 covers the typical hit-path latency without
    // running past the chunk.
    constexpr std::size_t kPrefetchDistance = 8;
    const std::uint32_t assoc = A != 0 ? A : assoc_;
    for (std::size_t i = 0; i < n; ++i) {
        if (i + kPrefetchDistance < n) {
            const Addr ahead = refs[i + kPrefetchDistance].addr();
            const std::size_t frame =
                static_cast<std::size_t>(geom_.setIndex(ahead)) *
                assoc;
            OCCSIM_PREFETCH_READ(tags_.data() + frame);
            OCCSIM_PREFETCH_READ(meta_.data() + frame);
        }
        const PackedRecord rec = refs[i];
        accessSpec<F, CopyBack, WriteAllocate, R, A, Record>(
            rec.addr(), rec.isWrite(), rec.isInstruction());
    }
}

Cache::ReplayKernel
Cache::selectKernel(FetchPolicy fetch, bool copy_back,
                    bool write_allocate, ReplacementPolicy repl,
                    std::uint32_t assoc, bool record)
{
    const auto pick_write =
        [copy_back, write_allocate,
         record]<FetchPolicy F, ReplacementPolicy R,
                 std::uint32_t A>() {
            const auto pick_record = [record]<bool CB, bool WA>() {
                return record
                           ? &Cache::replayLoop<F, CB, WA, R, A, true>
                           : &Cache::replayLoop<F, CB, WA, R, A,
                                                false>;
            };
            if (copy_back) {
                return write_allocate
                           ? pick_record
                                 .template operator()<true, true>()
                           : pick_record
                                 .template operator()<true, false>();
            }
            return write_allocate
                       ? pick_record.template operator()<false, true>()
                       : pick_record
                             .template operator()<false, false>();
        };
    // Associativities 1/2/4/8 (the paper's grid) get fully unrolled
    // way scans; anything else falls back to the runtime-assoc
    // kernel (A = 0).
    const auto pick_assoc =
        [&pick_write, assoc]<FetchPolicy F, ReplacementPolicy R>() {
            switch (assoc) {
              case 1:
                return pick_write.operator()<F, R, 1u>();
              case 2:
                return pick_write.operator()<F, R, 2u>();
              case 4:
                return pick_write.operator()<F, R, 4u>();
              case 8:
                return pick_write.operator()<F, R, 8u>();
              default:
                return pick_write.operator()<F, R, 0u>();
            }
        };
    const auto pick = [&pick_assoc, repl]<FetchPolicy F>() {
        switch (repl) {
          case ReplacementPolicy::LRU:
            return pick_assoc
                .operator()<F, ReplacementPolicy::LRU>();
          case ReplacementPolicy::FIFO:
            return pick_assoc
                .operator()<F, ReplacementPolicy::FIFO>();
          case ReplacementPolicy::Random:
            return pick_assoc
                .operator()<F, ReplacementPolicy::Random>();
        }
        panic("bad replacement policy %d", static_cast<int>(repl));
    };
    switch (fetch) {
      case FetchPolicy::Demand:
        return pick.operator()<FetchPolicy::Demand>();
      case FetchPolicy::LoadForward:
        return pick.operator()<FetchPolicy::LoadForward>();
      case FetchPolicy::LoadForwardOptimized:
        return pick.operator()<FetchPolicy::LoadForwardOptimized>();
      case FetchPolicy::PrefetchNextOnMiss:
        return pick.operator()<FetchPolicy::PrefetchNextOnMiss>();
    }
    panic("bad fetch policy %d", static_cast<int>(fetch));
}

void
Cache::replayPacked(const PackedRecord *refs, std::size_t n)
{
    (this->*kernel_)(refs, n);
}

void
Cache::warmPacked(const PackedRecord *refs, std::size_t n)
{
    (this->*kernelWarm_)(refs, n);
}

void
Cache::seedWarmState(const Addr *mru, std::uint32_t src_stride)
{
    const std::uint32_t num_sets = geom_.numSets();
    const std::uint32_t assoc = assoc_;
    const std::uint64_t all_subs =
        numSubs_ == 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << numSubs_) - 1;
    occsim_assert(src_stride >= assoc,
                  "checkpoint rows shallower (%u) than assoc %u",
                  src_stride, assoc);
    for (std::uint32_t set = 0; set < num_sets; ++set) {
        const Addr *row =
            mru + static_cast<std::size_t>(set) * src_stride;
        const std::size_t base =
            static_cast<std::size_t>(set) * assoc;
        std::uint32_t filled = 0;
        for (std::uint32_t way = 0; way < assoc; ++way) {
            const Addr blk = row[way];
            tags_[base + way] = blk;
            if (blk != kNoTag) {
                meta_[base + way] =
                    FrameMeta{all_subs, 0, 0, 0};
                everFilled_[base + way] = all_subs;
                ++filled;
            } else {
                meta_[base + way] = FrameMeta{};
                everFilled_[base + way] = 0;
            }
        }
        repl_.seedMruOrder(set, filled);
    }
}

template <bool Record>
void
Cache::prefetchSequential(Addr miss_addr)
{
    const Addr target = miss_addr + subBlockSize_;
    if (target < miss_addr) {
        // The missed sub-block is the last one of the address space:
        // there is no sequential successor, so nothing is prefetched
        // (rather than wrapping around to address 0 and polluting
        // set 0 with a bogus block).
        return;
    }
    const std::uint32_t set =
        static_cast<std::uint32_t>(geom_.setIndex(target));
    const Addr block_addr = geom_.blockAddr(target);
    const std::uint32_t sub_index = geom_.subBlockIndex(target);
    const std::uint64_t sub_bit = std::uint64_t{1} << sub_index;
    const std::uint32_t words = wordsPerSub_;

    const int way = findWay(set, block_addr);
    if (way >= 0) {
        const std::uint32_t frame_index =
            set * assoc_ + static_cast<std::uint32_t>(way);
        FrameMeta &meta = meta_[frame_index];
        if (meta.valid & sub_bit)
            return;  // already resident, nothing to move
        meta.valid |= sub_bit;
        meta.prefetched |= sub_bit;
        everFilled_[frame_index] |= sub_bit;
        stats_.recordPrefetch(words);
        return;
    }

    // Allocate a frame for the prefetched block (Smith's sequential
    // prefetch allocates; this is where pollution can occur).
    const std::uint32_t victim_way = claimVictim(set);
    const std::uint32_t frame_index = set * assoc_ + victim_way;
    tags_[frame_index] = block_addr;
    FrameMeta &meta = meta_[frame_index];
    meta.valid = sub_bit;
    meta.touched = 0;
    meta.dirty = 0;
    meta.prefetched = sub_bit;
    everFilled_[frame_index] |= sub_bit;
    repl_.onFill(set, victim_way);
    stats_.recordPrefetch(words);
}

std::uint64_t
Cache::run(TraceSource &source, std::uint64_t max_refs)
{
    MemRef ref;
    std::uint64_t count = 0;
    while ((max_refs == 0 || count < max_refs) && source.next(ref)) {
        access(ref);
        ++count;
    }
    finalizeResidencies();
    return count;
}

void
Cache::finalizeResidencies()
{
    for (std::size_t f = 0; f < tags_.size(); ++f) {
        FrameMeta &meta = meta_[f];
        if (framePresent(f) && meta.touched != 0) {
            stats_.recordResidency(static_cast<std::uint32_t>(
                std::popcount(meta.touched)));
            // Avoid double counting if called repeatedly.
            meta.touched = 0;
        }
        writebackDirty(meta);
    }
}

void
Cache::flush()
{
    ++flushes_;
    for (std::size_t f = 0; f < tags_.size(); ++f) {
        FrameMeta &meta = meta_[f];
        if (framePresent(f) && meta.touched != 0) {
            stats_.recordResidency(static_cast<std::uint32_t>(
                std::popcount(meta.touched)));
        }
        writebackDirty(meta);
        tags_[f] = kNoTag;
        meta = FrameMeta{};
    }
    // Replacement state restarts too; everFilled_ is kept so that
    // re-fetches after the flush are charged as ordinary (warm)
    // misses, not cold-start ones.
    repl_ = ReplacementState(config().replacement, geom_.numSets(),
                             geom_.assoc(), config().randomSeed);
}

void
Cache::reset()
{
    for (std::size_t f = 0; f < tags_.size(); ++f) {
        tags_[f] = kNoTag;
        meta_[f] = FrameMeta{};
    }
    for (auto &mask : everFilled_)
        mask = 0;
    flushes_ = 0;
    stats_.reset();
    repl_ = ReplacementState(config().replacement, geom_.numSets(),
                             geom_.assoc(), config().randomSeed);
}

bool
Cache::isResident(Addr addr) const
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(geom_.setIndex(addr));
    const int way = findWay(set, geom_.blockAddr(addr));
    if (way < 0)
        return false;
    return (meta_[set * assoc_ + static_cast<std::uint32_t>(way)]
                .valid &
            (std::uint64_t{1} << geom_.subBlockIndex(addr))) != 0;
}

bool
Cache::isBlockResident(Addr addr) const
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(geom_.setIndex(addr));
    return findWay(set, geom_.blockAddr(addr)) >= 0;
}

std::uint64_t
Cache::validMask(Addr addr) const
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(geom_.setIndex(addr));
    const int way = findWay(set, geom_.blockAddr(addr));
    return way < 0
               ? 0
               : meta_[set * assoc_ + static_cast<std::uint32_t>(way)]
                     .valid;
}

} // namespace occsim
