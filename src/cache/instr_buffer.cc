#include "cache/instr_buffer.hh"

#include "stats/stats.hh"
#include "util/logging.hh"

namespace occsim {

SequentialInstrBuffer::SequentialInstrBuffer(std::uint32_t size_bytes,
                                             std::uint32_t word_size)
    : sizeBytes_(size_bytes), wordSize_(word_size)
{
    occsim_assert(isPowerOfTwo(size_bytes) && size_bytes >= word_size,
                  "buffer size must be a power of two >= one word");
    occsim_assert(word_size == 2 || word_size == 4,
                  "word size must be 2 or 4");
}

bool
SequentialInstrBuffer::fetch(Addr addr)
{
    ++fetches_;
    if (validRun_ && addr == expected_) {
        // Continuing the run. The buffer has prefetched up to
        // windowEnd_; extend the window if the consumer caught up.
        if (addr + wordSize_ > windowEnd_) {
            wordsFetched_ += (addr + wordSize_ - windowEnd_) / wordSize_;
            windowEnd_ = addr + wordSize_;
        }
        expected_ = addr + wordSize_;
        ++hits_;
        return true;
    }

    // Non-sequential fetch: flush and start a new run, prefetching a
    // full buffer ahead. The unconsumed tail of the previous run was
    // already counted when it was prefetched — that is exactly the
    // wasted traffic a plain buffer incurs.
    ++flushes_;
    validRun_ = true;
    expected_ = addr + wordSize_;
    windowEnd_ = addr + sizeBytes_;
    wordsFetched_ += sizeBytes_ / wordSize_;
    return false;
}

void
SequentialInstrBuffer::run(TraceSource &source, std::uint64_t max_refs)
{
    MemRef ref;
    std::uint64_t count = 0;
    while ((max_refs == 0 || count < max_refs) && source.next(ref)) {
        ++count;
        if (ref.isInstruction())
            fetch(ref.addr);
    }
}

double
SequentialInstrBuffer::hitRatio() const
{
    return ratio(hits_, fetches_);
}

double
SequentialInstrBuffer::trafficRatio() const
{
    return ratio(wordsFetched_, fetches_);
}

CacheConfig
makeCrayStyleBuffer(std::uint32_t num_buffers,
                    std::uint32_t buffer_bytes, std::uint32_t word_size)
{
    CacheConfig config;
    config.netSize = num_buffers * buffer_bytes;
    config.blockSize = buffer_bytes;
    config.subBlockSize = buffer_bytes;
    config.assoc = num_buffers;  // fully associative
    config.wordSize = word_size;
    return config;
}

} // namespace occsim
