#include "cache/replacement.hh"

#include "util/logging.hh"

namespace occsim {

ReplacementState::ReplacementState(ReplacementPolicy policy,
                                   std::uint32_t num_sets,
                                   std::uint32_t assoc,
                                   std::uint64_t seed)
    : policy_(policy), numSets_(num_sets), assoc_(assoc), rng_(seed)
{
    occsim_assert(num_sets > 0 && assoc > 0,
                  "replacement needs sets and ways");
    occsim_assert(assoc <= 255, "associativity > 255 unsupported");
    order_.resize(static_cast<std::size_t>(num_sets) * assoc);
    for (std::uint32_t set = 0; set < num_sets; ++set) {
        std::uint8_t *slice = setOrder(set);
        for (std::uint32_t way = 0; way < assoc; ++way)
            slice[way] = static_cast<std::uint8_t>(way);
    }
}

void
ReplacementState::onAccess(std::uint32_t set, std::uint32_t way)
{
    // Only LRU promotes on reference; FIFO order is fixed at fill
    // time and Random keeps no state.
    if (policy_ == ReplacementPolicy::LRU)
        moveToBack(set, way);
}

void
ReplacementState::onFill(std::uint32_t set, std::uint32_t way)
{
    if (policy_ == ReplacementPolicy::LRU ||
        policy_ == ReplacementPolicy::FIFO) {
        moveToBack(set, way);
    }
}

std::uint32_t
ReplacementState::victim(std::uint32_t set)
{
    if (policy_ == ReplacementPolicy::Random)
        return static_cast<std::uint32_t>(rng_.below(assoc_));
    return setOrder(set)[0];
}

std::vector<std::uint32_t>
ReplacementState::evictionOrder(std::uint32_t set) const
{
    const std::uint8_t *slice = setOrder(set);
    std::vector<std::uint32_t> order(assoc_);
    for (std::uint32_t i = 0; i < assoc_; ++i)
        order[i] = slice[i];
    return order;
}

} // namespace occsim
