#include "trace/interleave.hh"

#include "util/logging.hh"

namespace occsim {

InterleaveSource::InterleaveSource(std::vector<TraceSource *> sources,
                                   std::uint64_t quantum)
    : sources_(std::move(sources)),
      exhausted_(sources_.size(), false), quantum_(quantum)
{
    occsim_assert(!sources_.empty(), "interleave needs >= 1 source");
    occsim_assert(quantum_ > 0, "quantum must be positive");
    for (const TraceSource *source : sources_)
        occsim_assert(source != nullptr, "null interleave source");
}

bool
InterleaveSource::advanceTask()
{
    // Move to the next non-exhausted task (round robin).
    for (std::size_t step = 1; step <= sources_.size(); ++step) {
        const std::size_t candidate =
            (current_ + step) % sources_.size();
        if (!exhausted_[candidate]) {
            if (candidate != current_)
                ++switches_;
            current_ = candidate;
            usedInQuantum_ = 0;
            return true;
        }
    }
    return !exhausted_[current_];
}

bool
InterleaveSource::next(MemRef &ref)
{
    for (;;) {
        if (exhausted_[current_]) {
            if (!advanceTask())
                return false;
        }
        if (usedInQuantum_ >= quantum_) {
            if (!advanceTask())
                return false;
        }
        if (sources_[current_]->next(ref)) {
            ++usedInQuantum_;
            return true;
        }
        exhausted_[current_] = true;
        bool all_done = true;
        for (const bool done : exhausted_)
            all_done = all_done && done;
        if (all_done)
            return false;
    }
}

bool
InterleaveSource::rewindable() const
{
    for (const TraceSource *source : sources_) {
        if (!source->rewindable())
            return false;
    }
    return true;
}

void
InterleaveSource::reset()
{
    for (TraceSource *source : sources_)
        source->reset();
    exhausted_.assign(sources_.size(), false);
    current_ = 0;
    usedInQuantum_ = 0;
    switches_ = 0;
}

std::string
InterleaveSource::name() const
{
    std::string name = "interleave(";
    for (std::size_t i = 0; i < sources_.size(); ++i) {
        if (i != 0)
            name += ',';
        name += sources_[i]->name();
    }
    name += ')';
    return name;
}

} // namespace occsim
