#include "trace/corpus.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "obs/telemetry.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace occsim {

namespace {

constexpr char kMagic[4] = {'O', 'C', 'P', 'C'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kHeaderBytes = 64;
constexpr const char *kEntrySuffix = ".opc";
/** Refuse absurd name fields before allocating for them. */
constexpr std::uint32_t kMaxNameLen = 4096;

/** Fixed-layout file header; all fields little-endian. */
struct FileHeader
{
    char magic[4];
    std::uint32_t version;
    std::uint64_t recordCount;
    std::uint64_t contentHash;
    std::uint32_t wordSize;
    std::uint32_t dataOffset;
    std::uint32_t nameLen;
    char pad[kHeaderBytes - 36];
};

static_assert(sizeof(FileHeader) == kHeaderBytes,
              "OCPC header must be exactly 64 bytes");

void setError(std::string *error, std::string message)
{
    if (error)
        *error = std::move(message);
}

std::uint32_t alignUp64(std::uint32_t n)
{
    return (n + 63u) & ~63u;
}

/**
 * Validate @p header against the file's byte size. Returns "" when
 * the header is coherent, else a one-line reason.
 */
std::string checkHeader(const FileHeader &header, std::uint64_t file_size)
{
    if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0)
        return "bad magic (not an OCPC corpus file)";
    if (header.version != kVersion)
        return strfmt("unsupported OCPC version %u (want %u)",
                      header.version, kVersion);
    if (header.nameLen > kMaxNameLen)
        return strfmt("implausible name length %u", header.nameLen);
    if (header.dataOffset < kHeaderBytes + header.nameLen ||
        header.dataOffset % alignof(PackedRecord) != 0)
        return strfmt("bad data offset %u", header.dataOffset);
    const std::uint64_t need =
        header.dataOffset + header.recordCount * sizeof(PackedRecord);
    if (file_size < need)
        return strfmt("truncated: %llu bytes on disk, header promises "
                      "%llu",
                      static_cast<unsigned long long>(file_size),
                      static_cast<unsigned long long>(need));
    return "";
}

/** Read @p header from @p path. Returns "" or a reason. */
std::string readHeader(const std::string &path, FileHeader *header,
                       std::uint64_t *file_size)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return strfmt("open failed: %s", std::strerror(errno));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        const int err = errno;
        ::close(fd);
        return strfmt("fstat failed: %s", std::strerror(err));
    }
    if (static_cast<std::uint64_t>(st.st_size) < kHeaderBytes) {
        ::close(fd);
        return strfmt("file too small for a header (%lld bytes)",
                      static_cast<long long>(st.st_size));
    }
    const ssize_t got = ::pread(fd, header, sizeof(*header), 0);
    ::close(fd);
    if (got != static_cast<ssize_t>(sizeof(*header)))
        return "short header read";
    *file_size = static_cast<std::uint64_t>(st.st_size);
    return checkHeader(*header, *file_size);
}

/** Holds one read-only file mapping; unmapped on destruction. */
struct Mapping
{
    void *base = MAP_FAILED;
    std::size_t bytes = 0;

    ~Mapping()
    {
        if (base != MAP_FAILED)
            ::munmap(base, bytes);
    }
};

bool writeAll(int fd, const void *data, std::size_t bytes)
{
    const char *p = static_cast<const char *>(data);
    while (bytes > 0) {
        const ssize_t put = ::write(fd, p, bytes);
        if (put < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += put;
        bytes -= static_cast<std::size_t>(put);
    }
    return true;
}

} // namespace

std::uint64_t
packedContentHash(const PackedRecord *records, std::size_t count)
{
    // FNV-1a 64 over the raw record bytes. Not cryptographic — the
    // corpus defends against corruption and accidental collision, not
    // adversarial traces.
    std::uint64_t hash = 1469598103934665603ull;
    const unsigned char *bytes =
        reinterpret_cast<const unsigned char *>(records);
    const std::size_t total = count * sizeof(PackedRecord);
    for (std::size_t i = 0; i < total; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

std::string contentHashHex(std::uint64_t hash)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(hash));
    return buf;
}

bool
writePackedTraceFile(const std::string &path, const PackedTrace &trace,
                     std::uint32_t word_size, std::string *error)
{
    FileHeader header;
    std::memset(&header, 0, sizeof(header));
    std::memcpy(header.magic, kMagic, sizeof(kMagic));
    header.version = kVersion;
    header.recordCount = trace.size();
    header.contentHash = packedContentHash(trace.data(), trace.size());
    header.wordSize = word_size;
    header.nameLen = static_cast<std::uint32_t>(
        std::min<std::size_t>(trace.name().size(), kMaxNameLen));
    header.dataOffset = alignUp64(kHeaderBytes + header.nameLen);

    // Write through a temp name and rename into place: a crash mid
    // write can strand a .tmp file but never a half-written entry
    // under the final name.
    const std::string tmp = path + ".tmp";
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        setError(error, strfmt("cannot create %s: %s", tmp.c_str(),
                               std::strerror(errno)));
        return false;
    }

    const std::vector<char> gap(header.dataOffset - kHeaderBytes -
                                    header.nameLen,
                                '\0');
    bool ok = writeAll(fd, &header, sizeof(header)) &&
              writeAll(fd, trace.name().data(), header.nameLen) &&
              (gap.empty() || writeAll(fd, gap.data(), gap.size())) &&
              (trace.empty() ||
               writeAll(fd, trace.data(),
                        trace.size() * sizeof(PackedRecord)));
    if (ok && ::fsync(fd) != 0)
        ok = false;
    const int write_err = errno;
    ::close(fd);

    if (!ok) {
        ::unlink(tmp.c_str());
        setError(error, strfmt("write to %s failed: %s", tmp.c_str(),
                               std::strerror(write_err)));
        return false;
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        const int err = errno;
        ::unlink(tmp.c_str());
        setError(error, strfmt("rename to %s failed: %s", path.c_str(),
                               std::strerror(err)));
        return false;
    }
    return true;
}

std::shared_ptr<const PackedTrace>
mapPackedTraceFile(const std::string &path, std::uint32_t *word_size,
                   std::string *error)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        setError(error, strfmt("cannot open %s: %s", path.c_str(),
                               std::strerror(errno)));
        return nullptr;
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
        setError(error, strfmt("fstat %s failed: %s", path.c_str(),
                               std::strerror(errno)));
        ::close(fd);
        return nullptr;
    }
    const std::uint64_t file_size =
        static_cast<std::uint64_t>(st.st_size);
    if (file_size < kHeaderBytes) {
        setError(error,
                 strfmt("%s: file too small for a header (%llu bytes)",
                        path.c_str(),
                        static_cast<unsigned long long>(file_size)));
        ::close(fd);
        return nullptr;
    }

    auto mapping = std::make_shared<Mapping>();
    mapping->bytes = static_cast<std::size_t>(file_size);
    mapping->base = ::mmap(nullptr, mapping->bytes, PROT_READ,
                           MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps the file referenced
    if (mapping->base == MAP_FAILED) {
        setError(error, strfmt("mmap %s failed: %s", path.c_str(),
                               std::strerror(errno)));
        return nullptr;
    }

    FileHeader header;
    std::memcpy(&header, mapping->base, sizeof(header));
    std::string reason = checkHeader(header, file_size);
    if (reason.empty()) {
        const auto *records = reinterpret_cast<const PackedRecord *>(
            static_cast<const char *>(mapping->base) +
            header.dataOffset);
        // Recompute the content hash over the mapped bytes: flipped
        // record bits are refused here, not discovered as a silently
        // wrong miss ratio later.
        const std::uint64_t hash = packedContentHash(
            records, static_cast<std::size_t>(header.recordCount));
        if (hash != header.contentHash) {
            reason = strfmt("content hash mismatch (stored %s, "
                            "computed %s) — corrupted records",
                            contentHashHex(header.contentHash).c_str(),
                            contentHashHex(hash).c_str());
        } else {
            std::string name(
                static_cast<const char *>(mapping->base) + kHeaderBytes,
                header.nameLen);
            if (word_size)
                *word_size = header.wordSize;
            OCCSIM_TELEM_COUNT("corpus.map.refs", header.recordCount);
            return std::make_shared<const PackedTrace>(
                std::move(name), records,
                static_cast<std::size_t>(header.recordCount),
                std::move(mapping));
        }
    }
    setError(error,
             strfmt("%s: %s", path.c_str(), reason.c_str()));
    return nullptr;
}

TraceCorpus::TraceCorpus(std::string dir) : dir_(std::move(dir))
{
    occsim_assert(!dir_.empty(), "empty corpus directory");
    if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST)
        fatal("cannot create corpus directory %s: %s", dir_.c_str(),
              std::strerror(errno));
}

std::string
TraceCorpus::entryPath(const std::string &hash) const
{
    return dir_ + "/" + hash + kEntrySuffix;
}

std::string
TraceCorpus::ingest(const VectorTrace &trace, std::string *error)
{
    const PackedTrace packed(trace);
    // Every reference in a trace moves one data-path word, so the
    // first record's size field is the trace's word size.
    const std::uint32_t word_size = trace.empty() ? 0 : trace[0].size;
    return ingestPacked(packed, word_size, error);
}

std::string
TraceCorpus::ingestPacked(const PackedTrace &packed,
                          std::uint32_t word_size, std::string *error)
{
    const std::uint64_t hash =
        packedContentHash(packed.data(), packed.size());
    const std::string hex = contentHashHex(hash);
    const std::string path = entryPath(hex);

    std::lock_guard<std::mutex> lock(mutex_);

    // Dedup: if a valid entry with this content hash already exists,
    // the bytes are already on disk — skip the write entirely.
    FileHeader header;
    std::uint64_t file_size = 0;
    if (readHeader(path, &header, &file_size).empty() &&
        header.contentHash == hash &&
        header.recordCount == packed.size()) {
        OCCSIM_TELEM_COUNT("corpus.ingest.dedup", 1);
        wordSize_[hex] = header.wordSize;
        return hex;
    }

    OCCSIM_TELEM_STAGE("corpus.ingest");
    if (!writePackedTraceFile(path, packed, word_size, error))
        return "";
    OCCSIM_TELEM_COUNT("corpus.ingest.refs", packed.size());
    wordSize_[hex] = word_size;
    return hex;
}

std::shared_ptr<const PackedTrace>
TraceCorpus::open(const std::string &hash, std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);

    const auto it = mapped_.find(hash);
    if (it != mapped_.end()) {
        if (auto trace = it->second.lock())
            return trace;
    }

    std::uint32_t word_size = 0;
    auto trace = mapPackedTraceFile(entryPath(hash), &word_size, error);
    if (!trace)
        return nullptr;
    mapped_[hash] = trace;
    wordSize_[hash] = word_size;

    // Sweep dead mappings so a long-lived server's map stays bounded
    // by the live set, not by history.
    if (mapped_.size() >= 64) {
        for (auto e = mapped_.begin(); e != mapped_.end();) {
            if (e->second.expired())
                e = mapped_.erase(e);
            else
                ++e;
        }
    }
    return trace;
}

std::uint32_t
TraceCorpus::wordSize(const std::string &hash)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = wordSize_.find(hash);
    return it == wordSize_.end() ? 0 : it->second;
}

std::vector<CorpusEntry>
TraceCorpus::entries(std::string *error)
{
    std::vector<CorpusEntry> result;
    DIR *dir = ::opendir(dir_.c_str());
    if (!dir) {
        setError(error, strfmt("cannot list %s: %s", dir_.c_str(),
                               std::strerror(errno)));
        return result;
    }
    while (const struct dirent *ent = ::readdir(dir)) {
        const std::string file = ent->d_name;
        const std::size_t suffix_len = std::strlen(kEntrySuffix);
        if (file.size() <= suffix_len ||
            file.compare(file.size() - suffix_len, suffix_len,
                         kEntrySuffix) != 0)
            continue;

        const std::string path = dir_ + "/" + file;
        FileHeader header;
        std::uint64_t file_size = 0;
        const std::string reason =
            readHeader(path, &header, &file_size);
        if (!reason.empty()) {
            warn("corpus: skipping %s: %s", path.c_str(),
                 reason.c_str());
            continue;
        }

        CorpusEntry entry;
        entry.hash = contentHashHex(header.contentHash);
        entry.refs = header.recordCount;
        entry.wordSize = header.wordSize;
        if (header.nameLen > 0) {
            entry.name.resize(header.nameLen);
            const int fd = ::open(path.c_str(), O_RDONLY);
            if (fd >= 0) {
                const ssize_t got =
                    ::pread(fd, entry.name.data(), header.nameLen,
                            kHeaderBytes);
                ::close(fd);
                if (got != static_cast<ssize_t>(header.nameLen))
                    entry.name.clear();
            }
        }
        result.push_back(std::move(entry));
    }
    ::closedir(dir);

    std::sort(result.begin(), result.end(),
              [](const CorpusEntry &a, const CorpusEntry &b) {
                  return a.hash < b.hash;
              });
    std::lock_guard<std::mutex> lock(mutex_);
    for (const CorpusEntry &entry : result)
        wordSize_[entry.hash] = entry.wordSize;
    return result;
}

std::string
TraceCorpus::resolve(const std::string &ref, std::string *error)
{
    // A canonical hash resolves directly when the entry exists.
    if (ref.size() == 16 &&
        ref.find_first_not_of("0123456789abcdef") == std::string::npos) {
        struct stat st;
        if (::stat(entryPath(ref).c_str(), &st) == 0)
            return ref;
    }

    std::string list_error;
    const std::vector<CorpusEntry> all = entries(&list_error);
    if (!list_error.empty()) {
        setError(error, list_error);
        return "";
    }

    std::string match;
    for (const CorpusEntry &entry : all) {
        if (entry.name != ref)
            continue;
        if (!match.empty()) {
            setError(error,
                     strfmt("trace name '%s' is ambiguous (%s and %s "
                            "both match); use the hash",
                            ref.c_str(), match.c_str(),
                            entry.hash.c_str()));
            return "";
        }
        match = entry.hash;
    }
    if (match.empty())
        setError(error, strfmt("no corpus entry named '%s' in %s",
                               ref.c_str(), dir_.c_str()));
    return match;
}

} // namespace occsim
