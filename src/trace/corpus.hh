/**
 * @file
 * On-disk trace corpus: persistent, mmap-able PackedTrace storage
 * with content-hash deduplication.
 *
 * The batch/sample/shard engines already share one in-process packed
 * decode per trace (packedTraceShared); the corpus extends that
 * amortization across processes and across time. A trace is ingested
 * ONCE — packed, hashed, written to `<hash>.opc` under the corpus
 * directory — and every later request (from any process) maps the
 * file read-only and replays the records in place: no re-decode, no
 * copy, and the page cache shares the bytes between concurrent
 * servers.
 *
 * File format (occsim packed corpus, "OCPC", little-endian):
 *
 *   offset  0  char[4]  magic "OCPC"
 *   offset  4  u32      version (1)
 *   offset  8  u64      record count
 *   offset 16  u64      FNV-1a 64 content hash of the record bytes
 *   offset 24  u32      trace word size (bytes)
 *   offset 28  u32      data offset (first record; 64-aligned)
 *   offset 32  u32      trace name length
 *   offset 36  ...      zero padding to 64
 *   offset 64  char[]   trace name (not NUL-terminated)
 *   data offset         count x 8-byte PackedRecord
 *
 * The stored record bytes are exactly the bytes packedTraceShared
 * produces in memory, so an ingest -> mmap -> replay round trip is
 * bit-identical to in-memory packing by construction; the content
 * hash doubles as the dedup key and as corruption detection
 * (validated on every open, alongside the size-vs-count truncation
 * check). Ingest writes through a temp file + rename, so a crashed
 * ingest never leaves a half-written entry under its final name.
 */

#ifndef OCCSIM_TRACE_CORPUS_HH
#define OCCSIM_TRACE_CORPUS_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/packed_trace.hh"

namespace occsim {

/** FNV-1a 64-bit hash over the raw bytes of @p count records. */
std::uint64_t packedContentHash(const PackedRecord *records,
                                std::size_t count);

/** Render @p hash as the canonical 16-digit lowercase hex id. */
std::string contentHashHex(std::uint64_t hash);

/**
 * Write @p trace to @p path in OCPC format.
 * @return true on success; on failure @p error (when non-null)
 * receives a one-line description and any partial file is removed.
 */
bool writePackedTraceFile(const std::string &path,
                          const PackedTrace &trace,
                          std::uint32_t word_size,
                          std::string *error = nullptr);

/**
 * Map an OCPC file read-only and wrap it as a PackedTrace view. The
 * header is validated (magic, version, size vs record count) and the
 * content hash is recomputed over the mapped records — a truncated or
 * corrupted file is refused, never replayed.
 * @param word_size when non-null receives the stored word size.
 * @return the mapped trace, or nullptr with @p error set.
 */
std::shared_ptr<const PackedTrace>
mapPackedTraceFile(const std::string &path,
                   std::uint32_t *word_size = nullptr,
                   std::string *error = nullptr);

/** One corpus entry as listed from the directory. */
struct CorpusEntry
{
    std::string hash;        ///< canonical hex content hash
    std::string name;        ///< trace name recorded at ingest
    std::uint64_t refs = 0;  ///< record count
    std::uint32_t wordSize = 0;
};

/**
 * A directory of OCPC files addressed by content hash. Thread-safe;
 * open() memoizes mappings per hash, so however many concurrent
 * requests replay one trace, it is mapped (and hash-validated) once
 * per process while any handle is alive.
 */
class TraceCorpus
{
  public:
    /** @param dir corpus directory; created if missing (one level). */
    explicit TraceCorpus(std::string dir);

    const std::string &dir() const { return dir_; }

    /**
     * Ingest @p trace: pack, hash, and store under `<hash>.opc`. If
     * an entry with this content already exists it is left untouched
     * (dedup) — the returned hash is the same either way.
     * @return the canonical hex hash, or "" with @p error set.
     */
    std::string ingest(const VectorTrace &trace,
                       std::string *error = nullptr);

    /** Ingest an already packed trace (same contract as above). */
    std::string ingestPacked(const PackedTrace &packed,
                             std::uint32_t word_size,
                             std::string *error = nullptr);

    /**
     * Map the entry named by @p hash (canonical hex). Memoized while
     * any returned handle is alive; validation runs once per mapping.
     * @return the trace, or nullptr with @p error set.
     */
    std::shared_ptr<const PackedTrace>
    open(const std::string &hash, std::string *error = nullptr);

    /** Word size stored for @p hash (0 when unknown/not yet opened
     *  or listed). */
    std::uint32_t wordSize(const std::string &hash);

    /**
     * Scan the directory and list every entry (headers only; records
     * are not validated here — open() does that).
     */
    std::vector<CorpusEntry> entries(std::string *error = nullptr);

    /**
     * Resolve @p ref — a canonical hex hash or a trace name — to a
     * hash. Name resolution scans the directory; an ambiguous name
     * (two entries, e.g. the same workload at two lengths) or an
     * unknown ref returns "" with @p error set.
     */
    std::string resolve(const std::string &ref,
                        std::string *error = nullptr);

  private:
    std::string entryPath(const std::string &hash) const;

    std::string dir_;
    std::mutex mutex_;
    /** hash -> live mapping (weak: reclaimed when unused). */
    std::unordered_map<std::string, std::weak_ptr<const PackedTrace>>
        mapped_;
    /** hash -> word size, filled by open()/entries(). */
    std::unordered_map<std::string, std::uint32_t> wordSize_;
};

} // namespace occsim

#endif // OCCSIM_TRACE_CORPUS_HH
