/**
 * @file
 * Multiprogramming interleave: round-robin task switching between
 * several traces.
 *
 * The paper notes its single-program runs are optimistic because "the
 * omission of task switching effects will bias our estimated
 * performance upward" (Section 3.3). InterleaveSource reproduces the
 * effect: it rotates among N programs with a quantum of Q references,
 * exactly the model used in classic multiprogramming cache studies.
 * With small caches the bias is small (the paper's argument); the
 * task-switch ablation bench measures it.
 */

#ifndef OCCSIM_TRACE_INTERLEAVE_HH
#define OCCSIM_TRACE_INTERLEAVE_HH

#include <cstdint>
#include <vector>

#include "trace/trace.hh"

namespace occsim {

/** Round-robin interleave of several traces with a fixed quantum. */
class InterleaveSource : public TraceSource
{
  public:
    /**
     * @param sources the programs to multiprogram (not owned; must
     *        outlive this object).
     * @param quantum references per scheduling quantum (> 0).
     */
    InterleaveSource(std::vector<TraceSource *> sources,
                     std::uint64_t quantum);

    bool next(MemRef &ref) override;
    bool rewindable() const override;
    void reset() override;
    std::string name() const override;

    /** Number of task switches performed so far. */
    std::uint64_t switches() const { return switches_; }

  private:
    bool advanceTask();

    std::vector<TraceSource *> sources_;
    std::vector<bool> exhausted_;
    std::uint64_t quantum_;
    std::size_t current_ = 0;
    std::uint64_t usedInQuantum_ = 0;
    std::uint64_t switches_ = 0;
};

} // namespace occsim

#endif // OCCSIM_TRACE_INTERLEAVE_HH
