#include "trace/trace_file.hh"

#include <cstdlib>
#include <cstring>

#include "util/logging.hh"
#include "util/str.hh"

namespace occsim {

namespace {

constexpr char kMagic[4] = {'O', 'C', 'T', 'B'};
constexpr char kMagicDelta[4] = {'O', 'C', 'T', 'D'};
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kRecordSize = 6;

/** Zigzag encoding maps small signed deltas to small unsigned ints. */
std::uint32_t
zigzag(std::int32_t v)
{
    return (static_cast<std::uint32_t>(v) << 1) ^
           static_cast<std::uint32_t>(v >> 31);
}

std::int32_t
unzigzag(std::uint32_t v)
{
    return static_cast<std::int32_t>((v >> 1) ^ (~(v & 1) + 1));
}

/** Map the dineroIII numeric label to a RefKind. */
bool
labelToKind(unsigned label, RefKind &kind)
{
    switch (label) {
      case 0:
        kind = RefKind::DataRead;
        return true;
      case 1:
        kind = RefKind::DataWrite;
        return true;
      case 2:
        kind = RefKind::Ifetch;
        return true;
      default:
        return false;
    }
}

unsigned
kindToLabel(RefKind kind)
{
    switch (kind) {
      case RefKind::DataRead:
        return 0;
      case RefKind::DataWrite:
        return 1;
      case RefKind::Ifetch:
        return 2;
    }
    return 0;
}

void
putU32(std::uint8_t *out, std::uint32_t v)
{
    out[0] = static_cast<std::uint8_t>(v);
    out[1] = static_cast<std::uint8_t>(v >> 8);
    out[2] = static_cast<std::uint8_t>(v >> 16);
    out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t
getU32(const std::uint8_t *in)
{
    return static_cast<std::uint32_t>(in[0]) |
           (static_cast<std::uint32_t>(in[1]) << 8) |
           (static_cast<std::uint32_t>(in[2]) << 16) |
           (static_cast<std::uint32_t>(in[3]) << 24);
}

std::FILE *
openOrDie(const std::string &path, const char *mode)
{
    std::FILE *file = std::fopen(path.c_str(), mode);
    if (!file)
        fatal("cannot open trace file '%s'", path.c_str());
    return file;
}

} // namespace

void
writeTextTrace(const VectorTrace &trace, const std::string &path)
{
    std::FILE *file = openOrDie(path, "w");
    std::fprintf(file, "# occsim text trace: %s (%zu refs)\n",
                 trace.name().c_str(), trace.size());
    for (const MemRef &ref : trace.refs()) {
        std::fprintf(file, "%u %x %u\n", kindToLabel(ref.kind),
                     ref.addr, static_cast<unsigned>(ref.size));
    }
    std::fclose(file);
}

namespace {

void
writeHeader(std::FILE *file, const char *magic,
            const VectorTrace &trace)
{
    std::uint8_t header[16] = {};
    std::memcpy(header, magic, 4);
    header[4] = static_cast<std::uint8_t>(kVersion);
    header[5] = trace.empty() ? 0 : trace.refs().front().size;
    const std::uint64_t count = trace.size();
    for (int i = 0; i < 8; ++i)
        header[8 + i] = static_cast<std::uint8_t>(count >> (8 * i));
    std::fwrite(header, 1, sizeof(header), file);
}

} // namespace

void
writeCompressedTrace(const VectorTrace &trace, const std::string &path)
{
    std::FILE *file = openOrDie(path, "wb");
    writeHeader(file, kMagicDelta, trace);

    Addr prev_addr[3] = {0, 0, 0};
    std::uint8_t prev_size = 2;
    for (const MemRef &ref : trace.refs()) {
        const auto kind = static_cast<std::uint8_t>(ref.kind);
        const std::int32_t delta = static_cast<std::int32_t>(
            ref.addr - prev_addr[kind]);
        prev_addr[kind] = ref.addr;

        // Flag byte: bits 0-1 kind, bit 2 size-change.
        std::uint8_t flags = kind;
        if (ref.size != prev_size)
            flags |= 0x04;
        std::fputc(flags, file);
        if (ref.size != prev_size) {
            std::fputc(ref.size, file);
            prev_size = ref.size;
        }
        // Varint of the zigzagged delta, 7 bits per byte, LSB first.
        std::uint32_t v = zigzag(delta);
        do {
            std::uint8_t byte = v & 0x7f;
            v >>= 7;
            if (v != 0)
                byte |= 0x80;
            std::fputc(byte, file);
        } while (v != 0);
    }
    std::fclose(file);
}

void
writeBinaryTrace(const VectorTrace &trace, const std::string &path)
{
    std::FILE *file = openOrDie(path, "wb");
    std::uint8_t header[16] = {};
    std::memcpy(header, kMagic, 4);
    header[4] = static_cast<std::uint8_t>(kVersion);
    header[5] = trace.empty() ? 0 : trace.refs().front().size;
    std::uint8_t count_bytes[8];
    const std::uint64_t count = trace.size();
    for (int i = 0; i < 8; ++i)
        count_bytes[i] = static_cast<std::uint8_t>(count >> (8 * i));
    std::memcpy(header + 8, count_bytes, 8);
    std::fwrite(header, 1, sizeof(header), file);

    std::uint8_t record[kRecordSize];
    for (const MemRef &ref : trace.refs()) {
        putU32(record, ref.addr);
        record[4] = static_cast<std::uint8_t>(ref.kind);
        record[5] = ref.size;
        std::fwrite(record, 1, kRecordSize, file);
    }
    std::fclose(file);
}

VectorTrace
readTextTrace(const std::string &path)
{
    FileTrace stream(path);
    return collect(stream);
}

VectorTrace
readBinaryTrace(const std::string &path)
{
    FileTrace stream(path);
    return collect(stream);
}

VectorTrace
readTrace(const std::string &path)
{
    FileTrace stream(path);
    return collect(stream);
}

FileTrace::FileTrace(const std::string &path)
    : path_(path)
{
    file_ = openOrDie(path, "rb");
    std::uint8_t magic[4] = {};
    const std::size_t got = std::fread(magic, 1, 4, file_);
    if (got == 4 && std::memcmp(magic, kMagic, 4) == 0)
        format_ = Format::Binary;
    else if (got == 4 && std::memcmp(magic, kMagicDelta, 4) == 0)
        format_ = Format::Compressed;
    else
        format_ = Format::Text;
    if (format_ != Format::Text) {
        std::uint8_t rest[12];
        if (std::fread(rest, 1, sizeof(rest), file_) != sizeof(rest))
            fatal("truncated binary trace header in '%s'", path.c_str());
        if (rest[0] != kVersion) {
            fatal("unsupported trace version %u in '%s'",
                  static_cast<unsigned>(rest[0]), path.c_str());
        }
        std::uint64_t count = 0;
        for (int i = 0; i < 8; ++i)
            count |= static_cast<std::uint64_t>(rest[4 + i]) << (8 * i);
        total_ = remaining_ = count;
        dataStart_ = std::ftell(file_);
    } else {
        std::rewind(file_);
        dataStart_ = 0;
    }
}

FileTrace::~FileTrace()
{
    if (file_)
        std::fclose(file_);
}

void
FileTrace::reset()
{
    std::fseek(file_, dataStart_, SEEK_SET);
    remaining_ = total_;
    prevAddr_[0] = prevAddr_[1] = prevAddr_[2] = 0;
    prevSize_ = 2;
}

bool
FileTrace::next(MemRef &ref)
{
    switch (format_) {
      case Format::Binary:
        return nextBinary(ref);
      case Format::Compressed:
        return nextCompressed(ref);
      case Format::Text:
        break;
    }
    return nextText(ref);
}

bool
FileTrace::nextCompressed(MemRef &ref)
{
    if (remaining_ == 0)
        return false;
    const int flags = std::fgetc(file_);
    if (flags == EOF)
        fatal("truncated compressed trace body in '%s'",
              path_.c_str());
    const unsigned kind = static_cast<unsigned>(flags) & 0x03;
    if (kind > 2)
        fatal("bad record kind %u in '%s'", kind, path_.c_str());
    if (flags & 0x04) {
        const int size = std::fgetc(file_);
        if (size == EOF)
            fatal("truncated compressed trace body in '%s'",
                  path_.c_str());
        prevSize_ = static_cast<std::uint8_t>(size);
    }
    std::uint32_t v = 0;
    int shift = 0;
    for (;;) {
        const int byte = std::fgetc(file_);
        if (byte == EOF)
            fatal("truncated compressed trace body in '%s'",
                  path_.c_str());
        v |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            break;
        shift += 7;
        if (shift > 31)
            fatal("overlong varint in '%s'", path_.c_str());
    }
    prevAddr_[kind] += static_cast<Addr>(unzigzag(v));
    ref.addr = prevAddr_[kind];
    ref.kind = static_cast<RefKind>(kind);
    ref.size = prevSize_;
    --remaining_;
    return true;
}

bool
FileTrace::nextBinary(MemRef &ref)
{
    if (remaining_ == 0)
        return false;
    std::uint8_t record[kRecordSize];
    if (std::fread(record, 1, kRecordSize, file_) != kRecordSize)
        fatal("truncated binary trace body in '%s'", path_.c_str());
    ref.addr = getU32(record);
    if (record[4] > 2)
        fatal("bad record kind %u in '%s'",
              static_cast<unsigned>(record[4]), path_.c_str());
    ref.kind = static_cast<RefKind>(record[4]);
    ref.size = record[5];
    --remaining_;
    return true;
}

bool
FileTrace::nextText(MemRef &ref)
{
    char line[256];
    while (std::fgets(line, sizeof(line), file_)) {
        const std::string text = trim(line);
        if (text.empty() || text[0] == '#')
            continue;
        const auto fields = split(text, ' ');
        if (fields.size() < 2)
            fatal("malformed trace line '%s' in '%s'", text.c_str(),
                  path_.c_str());
        std::uint64_t label = 0;
        if (!parseU64(fields[0], label))
            fatal("bad label '%s' in '%s'", fields[0].c_str(),
                  path_.c_str());
        if (!labelToKind(static_cast<unsigned>(label), ref.kind))
            fatal("bad label %llu in '%s'",
                  static_cast<unsigned long long>(label), path_.c_str());
        char *end = nullptr;
        ref.addr = static_cast<Addr>(
            std::strtoul(fields[1].c_str(), &end, 16));
        if (end == fields[1].c_str() || *end != '\0')
            fatal("bad address '%s' in '%s'", fields[1].c_str(),
                  path_.c_str());
        std::uint64_t size = 2;
        if (fields.size() >= 3 && !parseU64(fields[2], size))
            fatal("bad size '%s' in '%s'", fields[2].c_str(),
                  path_.c_str());
        ref.size = static_cast<std::uint8_t>(size);
        return true;
    }
    return false;
}

} // namespace occsim
