#include "trace/trace_stats.hh"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <unordered_set>

#include "stats/stats.hh"
#include "util/str.hh"

namespace occsim {

double
TraceProfile::ifetchFraction() const
{
    return ratio(ifetches, totalRefs);
}

double
TraceProfile::writeFraction() const
{
    return ratio(dataWrites, totalRefs);
}

TraceProfile
profileTrace(const VectorTrace &trace)
{
    TraceProfile profile;
    std::unordered_set<Addr> granules;
    granules.reserve(1 << 14);

    bool have_prev_ifetch = false;
    Addr prev_ifetch_end = 0;
    std::uint64_t sequential_ifetches = 0;

    bool have_prev_data = false;
    Addr prev_data = 0;
    std::uint64_t clustered_data = 0;
    std::uint64_t data_refs = 0;

    for (const MemRef &ref : trace.refs()) {
        ++profile.totalRefs;
        switch (ref.kind) {
          case RefKind::Ifetch:
            ++profile.ifetches;
            if (have_prev_ifetch && ref.addr == prev_ifetch_end)
                ++sequential_ifetches;
            prev_ifetch_end = ref.addr + ref.size;
            have_prev_ifetch = true;
            break;
          case RefKind::DataRead:
            ++profile.dataReads;
            break;
          case RefKind::DataWrite:
            ++profile.dataWrites;
            break;
        }
        if (ref.kind != RefKind::Ifetch) {
            ++data_refs;
            if (have_prev_data) {
                const long delta = static_cast<long>(ref.addr) -
                                   static_cast<long>(prev_data);
                if (std::labs(delta) <= 64)
                    ++clustered_data;
            }
            prev_data = ref.addr;
            have_prev_data = true;
        }
        profile.minAddr = std::min(profile.minAddr, ref.addr);
        profile.maxAddr = std::max(profile.maxAddr, ref.addr);
        granules.insert(ref.addr >> 4);
    }

    profile.uniqueGranules = granules.size();
    profile.ifetchSequentiality = ratio(sequential_ifetches,
                                        profile.ifetches);
    profile.dataClustering = ratio(clustered_data, data_refs);
    if (profile.totalRefs == 0)
        profile.minAddr = 0;
    return profile;
}

void
printProfile(std::ostream &os, const std::string &name,
             const TraceProfile &profile)
{
    os << strfmt("%-16s refs=%8llu  I=%5.1f%%  W=%5.1f%%  "
                 "footprint=%8llu B  seqI=%5.3f  clustD=%5.3f\n",
                 name.c_str(),
                 static_cast<unsigned long long>(profile.totalRefs),
                 100.0 * profile.ifetchFraction(),
                 100.0 * profile.writeFraction(),
                 static_cast<unsigned long long>(
                     profile.footprintBytes()),
                 profile.ifetchSequentiality, profile.dataClustering);
}

} // namespace occsim
