/**
 * @file
 * Composable trace filters. Each filter wraps another TraceSource and
 * transforms or restricts the stream. The paper's methodology maps to
 * these directly: runs are truncated to 1 million addresses, write
 * references are excluded from the performance metrics, and split
 * instruction/data studies select by reference kind.
 */

#ifndef OCCSIM_TRACE_FILTERS_HH
#define OCCSIM_TRACE_FILTERS_HH

#include <cstdint>

#include "trace/trace.hh"

namespace occsim {

/** Pass through at most the first N references. */
class TruncateFilter : public TraceSource
{
  public:
    TruncateFilter(TraceSource &inner, std::uint64_t limit);

    bool next(MemRef &ref) override;
    bool rewindable() const override { return inner_.rewindable(); }
    void reset() override;
    std::string name() const override;

  private:
    TraceSource &inner_;
    std::uint64_t limit_;
    std::uint64_t passed_ = 0;
};

/** Drop data writes (the paper computes metrics over reads and
 *  instruction fetches only). */
class DropWritesFilter : public TraceSource
{
  public:
    explicit DropWritesFilter(TraceSource &inner);

    bool next(MemRef &ref) override;
    bool rewindable() const override { return inner_.rewindable(); }
    void reset() override { inner_.reset(); }
    std::string name() const override;

  private:
    TraceSource &inner_;
};

/** Selects only instruction fetches or only data references. */
class KindFilter : public TraceSource
{
  public:
    enum class Select { InstructionsOnly, DataOnly };

    KindFilter(TraceSource &inner, Select select);

    bool next(MemRef &ref) override;
    bool rewindable() const override { return inner_.rewindable(); }
    void reset() override { inner_.reset(); }
    std::string name() const override;

  private:
    TraceSource &inner_;
    Select select_;
};

/**
 * Code-compaction model (Section 2.3: the RISC II cache expands
 * selected half-word instructions, shrinking code by ~20% and
 * improving miss ratios ~27% "without impacting the processor").
 * This filter rescales instruction-fetch offsets above @p code_base
 * by num/den (e.g. 4/5 for a 20% size reduction), compressing the
 * instruction footprint the way compaction does; data references
 * pass through untouched.
 */
class CodeCompactionFilter : public TraceSource
{
  public:
    CodeCompactionFilter(TraceSource &inner, Addr code_base,
                         std::uint32_t num, std::uint32_t den);

    bool next(MemRef &ref) override;
    bool rewindable() const override { return inner_.rewindable(); }
    void reset() override { inner_.reset(); }
    std::string name() const override;

  private:
    TraceSource &inner_;
    Addr codeBase_;
    std::uint32_t num_;
    std::uint32_t den_;
};

/**
 * Periodic trace sampling: pass through windows of @p window
 * references every @p period references (window <= period). Sampling
 * was the standard way to stretch scarce trace tape over long
 * executions; the convergence bench quantifies the error it
 * introduces for small caches.
 */
class SampleFilter : public TraceSource
{
  public:
    SampleFilter(TraceSource &inner, std::uint64_t window,
                 std::uint64_t period);

    bool next(MemRef &ref) override;
    bool rewindable() const override { return inner_.rewindable(); }
    void reset() override;
    std::string name() const override;

  private:
    TraceSource &inner_;
    std::uint64_t window_;
    std::uint64_t period_;
    std::uint64_t position_ = 0;  ///< index within the current period
};

/** Skip the first N references (e.g. to discard a warmup prefix). */
class SkipFilter : public TraceSource
{
  public:
    SkipFilter(TraceSource &inner, std::uint64_t skip);

    bool next(MemRef &ref) override;
    bool rewindable() const override { return inner_.rewindable(); }
    void reset() override;
    std::string name() const override;

  private:
    TraceSource &inner_;
    std::uint64_t skip_;
    bool skipped_ = false;
};

} // namespace occsim

#endif // OCCSIM_TRACE_FILTERS_HH
