/**
 * @file
 * Trace characterization: per-kind reference counts, memory footprint,
 * and a sequentiality profile. Used to sanity-check that substitute
 * workloads exhibit the locality structure the paper's traces had
 * (small compact Z8000 utilities through large System/370 jobs).
 */

#ifndef OCCSIM_TRACE_TRACE_STATS_HH
#define OCCSIM_TRACE_TRACE_STATS_HH

#include <cstdint>
#include <iosfwd>

#include "trace/trace.hh"

namespace occsim {

/** Summary statistics over one trace. */
struct TraceProfile
{
    std::uint64_t totalRefs = 0;
    std::uint64_t ifetches = 0;
    std::uint64_t dataReads = 0;
    std::uint64_t dataWrites = 0;

    Addr minAddr = ~Addr{0};
    Addr maxAddr = 0;

    /** Unique 16-byte granules touched; footprint = granules * 16. */
    std::uint64_t uniqueGranules = 0;

    /** Fraction of instruction fetches at addr(prev)+size (straight-
     *  line execution). */
    double ifetchSequentiality = 0.0;

    /** Fraction of data references within +/- 64 bytes of the previous
     *  data reference (spatial clustering). */
    double dataClustering = 0.0;

    /** Footprint in bytes (unique granules * granule size). */
    std::uint64_t footprintBytes() const { return uniqueGranules * 16; }

    double ifetchFraction() const;
    double writeFraction() const;
};

/** Compute the profile of @p trace (single pass). */
TraceProfile profileTrace(const VectorTrace &trace);

/** Pretty-print a profile. */
void printProfile(std::ostream &os, const std::string &name,
                  const TraceProfile &profile);

} // namespace occsim

#endif // OCCSIM_TRACE_TRACE_STATS_HH
