#include "trace/packed_trace.hh"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace occsim {

PackedTrace::PackedTrace(const VectorTrace &trace) : name_(trace.name())
{
    records_.reserve(trace.size());
    for (const MemRef &ref : trace.refs())
        records_.push_back(PackedRecord::pack(ref));
    data_ = records_.data();
    size_ = records_.size();
}

PackedTrace::PackedTrace(std::string name, const PackedRecord *records,
                         std::size_t count,
                         std::shared_ptr<const void> backing)
    : name_(std::move(name)), backing_(std::move(backing)),
      data_(records), size_(count)
{
    occsim_assert(records != nullptr || count == 0,
                  "null record span of %zu records", count);
}

namespace {

/**
 * Memo cache keyed by the source trace's address. The source weak_ptr
 * is the validity token: a dead (or recycled-address) trace never
 * matches, so a stale entry can only miss, not alias. Packed traces
 * are held weakly too — memory is reclaimed as soon as the last sweep
 * drops its handle.
 */
struct PackedEntry
{
    std::weak_ptr<const VectorTrace> source;
    std::weak_ptr<const PackedTrace> packed;
};

std::mutex packed_mutex;
std::unordered_map<const VectorTrace *, PackedEntry> packed_cache;

} // namespace

std::shared_ptr<const PackedTrace>
packedTraceShared(const std::shared_ptr<const VectorTrace> &trace)
{
    occsim_assert(trace != nullptr, "null trace");
    std::lock_guard<std::mutex> lock(packed_mutex);

    const auto it = packed_cache.find(trace.get());
    if (it != packed_cache.end() &&
        it->second.source.lock() == trace) {
        if (auto packed = it->second.packed.lock())
            return packed;
    }

    // Keep the map from accumulating tombstones across many
    // short-lived traces.
    if (packed_cache.size() >= 64) {
        for (auto e = packed_cache.begin(); e != packed_cache.end();) {
            if (e->second.packed.expired())
                e = packed_cache.erase(e);
            else
                ++e;
        }
    }

    OCCSIM_TELEM_STAGE("trace.pack");
    auto packed = std::make_shared<const PackedTrace>(*trace);
    packed_cache[trace.get()] = PackedEntry{trace, packed};
    OCCSIM_TELEM_COUNT("trace.pack.refs", packed->size());
    return packed;
}

ShardedPackedTrace::ShardedPackedTrace(const PackedTrace &trace,
                                       std::uint32_t block_bits,
                                       std::uint32_t shard_bits,
                                       std::uint64_t limit)
    : blockBits_(block_bits), shardBits_(shard_bits)
{
    occsim_assert(shard_bits < 32, "bad shard count 2^%u", shard_bits);
    const std::uint32_t shards = 1u << shard_bits;
    const std::uint32_t mask = shards - 1;
    const std::size_t n =
        limit == 0 ? trace.size()
                   : static_cast<std::size_t>(std::min<std::uint64_t>(
                         limit, trace.size()));
    const PackedRecord *refs = trace.data();

    // Counting sort on the shard index: one pass to size the spans,
    // one to place the records; order within a shard is trace order.
    std::vector<std::size_t> counts(shards, 0);
    for (std::size_t i = 0; i < n; ++i)
        ++counts[(refs[i].addr() >> block_bits) & mask];

    offsets_.resize(shards + 1);
    offsets_[0] = 0;
    for (std::uint32_t s = 0; s < shards; ++s)
        offsets_[s + 1] = offsets_[s] + counts[s];

    records_.resize(n);
    std::vector<std::size_t> fill(offsets_.begin(),
                                  offsets_.end() - 1);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t s = (refs[i].addr() >> block_bits) & mask;
        records_[fill[s]++] = refs[i];
    }
}

namespace {

/** Memo key for one sharding of one packed trace. */
struct ShardKey
{
    const PackedTrace *trace;
    std::uint32_t blockBits;
    std::uint32_t shardBits;
    std::uint64_t limit;

    bool operator==(const ShardKey &o) const
    {
        return trace == o.trace && blockBits == o.blockBits &&
               shardBits == o.shardBits && limit == o.limit;
    }
};

struct ShardKeyHash
{
    std::size_t operator()(const ShardKey &k) const
    {
        std::size_t h = std::hash<const void *>()(k.trace);
        h ^= std::hash<std::uint64_t>()(
                 (static_cast<std::uint64_t>(k.blockBits) << 40) ^
                 (static_cast<std::uint64_t>(k.shardBits) << 32) ^
                 k.limit) +
             0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        return h;
    }
};

struct ShardEntry
{
    std::weak_ptr<const PackedTrace> source;
    std::weak_ptr<const ShardedPackedTrace> sharded;
};

std::mutex shard_mutex;
std::unordered_map<ShardKey, ShardEntry, ShardKeyHash> shard_cache;

} // namespace

std::shared_ptr<const ShardedPackedTrace>
shardedTraceShared(const std::shared_ptr<const PackedTrace> &trace,
                   std::uint32_t block_bits, std::uint32_t shard_bits,
                   std::uint64_t limit)
{
    occsim_assert(trace != nullptr, "null trace");
    // Normalize the limit so "everything" has one canonical key.
    if (limit >= trace->size())
        limit = 0;
    const ShardKey key{trace.get(), block_bits, shard_bits, limit};
    std::lock_guard<std::mutex> lock(shard_mutex);

    const auto it = shard_cache.find(key);
    if (it != shard_cache.end() &&
        it->second.source.lock() == trace) {
        if (auto sharded = it->second.sharded.lock())
            return sharded;
    }

    // Keep the map from accumulating tombstones across many
    // short-lived traces.
    if (shard_cache.size() >= 64) {
        for (auto e = shard_cache.begin(); e != shard_cache.end();) {
            if (e->second.sharded.expired())
                e = shard_cache.erase(e);
            else
                ++e;
        }
    }

    OCCSIM_TELEM_STAGE("trace.shard");
    auto sharded = std::make_shared<const ShardedPackedTrace>(
        *trace, block_bits, shard_bits, limit);
    shard_cache[key] = ShardEntry{trace, sharded};
    OCCSIM_TELEM_COUNT("trace.shard.refs", sharded->totalRecords());
    return sharded;
}

} // namespace occsim
