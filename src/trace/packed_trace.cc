#include "trace/packed_trace.hh"

#include <mutex>
#include <unordered_map>

#include "obs/telemetry.hh"
#include "util/logging.hh"

namespace occsim {

PackedTrace::PackedTrace(const VectorTrace &trace) : name_(trace.name())
{
    records_.reserve(trace.size());
    for (const MemRef &ref : trace.refs())
        records_.push_back(PackedRecord::pack(ref));
}

namespace {

/**
 * Memo cache keyed by the source trace's address. The source weak_ptr
 * is the validity token: a dead (or recycled-address) trace never
 * matches, so a stale entry can only miss, not alias. Packed traces
 * are held weakly too — memory is reclaimed as soon as the last sweep
 * drops its handle.
 */
struct PackedEntry
{
    std::weak_ptr<const VectorTrace> source;
    std::weak_ptr<const PackedTrace> packed;
};

std::mutex packed_mutex;
std::unordered_map<const VectorTrace *, PackedEntry> packed_cache;

} // namespace

std::shared_ptr<const PackedTrace>
packedTraceShared(const std::shared_ptr<const VectorTrace> &trace)
{
    occsim_assert(trace != nullptr, "null trace");
    std::lock_guard<std::mutex> lock(packed_mutex);

    const auto it = packed_cache.find(trace.get());
    if (it != packed_cache.end() &&
        it->second.source.lock() == trace) {
        if (auto packed = it->second.packed.lock())
            return packed;
    }

    // Keep the map from accumulating tombstones across many
    // short-lived traces.
    if (packed_cache.size() >= 64) {
        for (auto e = packed_cache.begin(); e != packed_cache.end();) {
            if (e->second.packed.expired())
                e = packed_cache.erase(e);
            else
                ++e;
        }
    }

    OCCSIM_TELEM_STAGE("trace.pack");
    auto packed = std::make_shared<const PackedTrace>(*trace);
    packed_cache[trace.get()] = PackedEntry{trace, packed};
    OCCSIM_TELEM_COUNT("trace.pack.refs", packed->size());
    return packed;
}

} // namespace occsim
