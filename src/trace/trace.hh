/**
 * @file
 * Core address-trace types: the memory-reference record and the
 * abstract trace source consumed by every simulator in occsim.
 *
 * A trace is an ordered stream of MemRef records, one per processor
 * memory reference. Following the paper's methodology, each reference
 * moves exactly one data-path word (2 bytes on the 16-bit PDP-11 and
 * Z8000 traces, 4 bytes on the 32-bit VAX-11 and System/370 traces);
 * the record's size field carries that width so a trace is
 * self-describing.
 */

#ifndef OCCSIM_TRACE_TRACE_HH
#define OCCSIM_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitops.hh"

namespace occsim {

/** Classification of a memory reference. */
enum class RefKind : std::uint8_t {
    Ifetch = 0,     ///< instruction fetch
    DataRead = 1,   ///< data load
    DataWrite = 2,  ///< data store
};

/** @return a short stable name ("ifetch", "dread", "dwrite"). */
const char *refKindName(RefKind kind);

/** One memory reference. */
struct MemRef
{
    Addr addr = 0;              ///< byte address of the referenced word
    RefKind kind = RefKind::Ifetch;
    std::uint8_t size = 2;      ///< bytes moved (data-path width)
    /** Issuing core for multicore coherency scenarios. Single-cache
     *  traces leave it 0, so every pre-existing trace is a valid
     *  1-core scenario unchanged. */
    std::uint8_t core = 0;

    bool isWrite() const { return kind == RefKind::DataWrite; }
    bool isInstruction() const { return kind == RefKind::Ifetch; }

    bool operator==(const MemRef &other) const = default;
};

/**
 * Abstract producer of memory references. Sources are single-pass by
 * default; rewindable sources additionally implement reset().
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Produce the next reference.
     * @param ref output record, valid only when true is returned.
     * @return false when the trace is exhausted.
     */
    virtual bool next(MemRef &ref) = 0;

    /** @return true if reset() is supported. */
    virtual bool rewindable() const { return false; }

    /** Restart the stream from the beginning (rewindable sources). */
    virtual void reset();

    /** Human-readable identification for reports. */
    virtual std::string name() const { return "trace"; }
};

/**
 * An in-memory trace. Rewindable; also usable as a sink while a
 * workload generator or VM run is being recorded.
 */
class VectorTrace : public TraceSource
{
  public:
    VectorTrace() = default;
    explicit VectorTrace(std::string name);
    VectorTrace(std::string name, std::vector<MemRef> refs);

    void append(const MemRef &ref) { refs_.push_back(ref); }
    void append(Addr addr, RefKind kind, std::uint8_t size);

    /** Pre-size the backing vector for @p n references (used by
     *  collect() with the VM's reference budget, so recording a
     *  trace does not reallocate). */
    void reserve(std::size_t n) { refs_.reserve(n); }

    bool next(MemRef &ref) override;
    bool rewindable() const override { return true; }
    void reset() override { cursor_ = 0; }
    std::string name() const override { return name_; }

    std::size_t size() const { return refs_.size(); }
    bool empty() const { return refs_.empty(); }
    const MemRef &operator[](std::size_t i) const { return refs_[i]; }
    const std::vector<MemRef> &refs() const { return refs_; }

    void setName(std::string name) { name_ = std::move(name); }

  private:
    std::string name_ = "trace";
    std::vector<MemRef> refs_;
    std::size_t cursor_ = 0;
};

/**
 * Drain an entire source into a VectorTrace, up to @p max_refs
 * references (0 means unlimited).
 */
VectorTrace collect(TraceSource &source, std::size_t max_refs = 0);

} // namespace occsim

#endif // OCCSIM_TRACE_TRACE_HH
