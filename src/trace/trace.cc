#include "trace/trace.hh"

#include "util/logging.hh"

namespace occsim {

const char *
refKindName(RefKind kind)
{
    switch (kind) {
      case RefKind::Ifetch:
        return "ifetch";
      case RefKind::DataRead:
        return "dread";
      case RefKind::DataWrite:
        return "dwrite";
    }
    return "unknown";
}

void
TraceSource::reset()
{
    panic("reset() called on non-rewindable trace source '%s'",
          name().c_str());
}

VectorTrace::VectorTrace(std::string name)
    : name_(std::move(name))
{
}

VectorTrace::VectorTrace(std::string name, std::vector<MemRef> refs)
    : name_(std::move(name)), refs_(std::move(refs))
{
}

void
VectorTrace::append(Addr addr, RefKind kind, std::uint8_t size)
{
    refs_.push_back(MemRef{addr, kind, size});
}

bool
VectorTrace::next(MemRef &ref)
{
    if (cursor_ >= refs_.size())
        return false;
    ref = refs_[cursor_++];
    return true;
}

VectorTrace
collect(TraceSource &source, std::size_t max_refs)
{
    VectorTrace out(source.name());
    if (max_refs != 0)
        out.reserve(max_refs);
    MemRef ref;
    while ((max_refs == 0 || out.size() < max_refs) && source.next(ref))
        out.append(ref);
    return out;
}

} // namespace occsim
