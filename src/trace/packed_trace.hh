/**
 * @file
 * Packed, pre-decoded trace representation for batched replay.
 *
 * A VectorTrace stores MemRef structs and is consumed either through
 * the virtual TraceSource::next() interface or as a flat MemRef span.
 * The batched replay engine wants neither: it replays the same trace
 * through many cache configurations and kernels, so the trace is
 * decoded ONCE into a contiguous array of 8-byte records — byte
 * address in the low 32 bits, pre-computed classification flags
 * (write / instruction-fetch) in the bits above — and every kernel
 * loop is a branch-light walk over that span. The record deliberately
 * drops MemRef::size: no cache model reads it (the data-path width
 * comes from the config), and keeping records at 8 bytes means a
 * 1 M-reference trace is an 8 MB stream that tiles nicely in L2.
 *
 * packedTraceShared() memoizes the packing per shared immutable
 * VectorTrace, mirroring buildTraceShared: however many sweeps replay
 * one trace, it is decoded exactly once while any handle is alive.
 */

#ifndef OCCSIM_TRACE_PACKED_TRACE_HH
#define OCCSIM_TRACE_PACKED_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace occsim {

/** One pre-decoded reference: address + classification flags. */
struct PackedRecord
{
    /** Bit positions of the flag field (above the 32 address bits). */
    static constexpr std::uint64_t kWriteBit = 1ull << 32;
    static constexpr std::uint64_t kIfetchBit = 1ull << 33;
    /** Issuing core (coherency scenarios): 3 bits above the flags,
     *  capping scenarios at kMaxCores caches on one bus. Single-cache
     *  traces pack core 0, so every pre-existing corpus file decodes
     *  unchanged. */
    static constexpr std::uint32_t kCoreShift = 34;
    static constexpr std::uint64_t kCoreMask = 0x7ull << kCoreShift;
    static constexpr std::uint32_t kMaxCores = 8;

    std::uint64_t bits = 0;

    Addr addr() const { return static_cast<Addr>(bits); }
    bool isWrite() const { return (bits & kWriteBit) != 0; }
    bool isInstruction() const { return (bits & kIfetchBit) != 0; }
    std::uint32_t core() const
    {
        return static_cast<std::uint32_t>((bits & kCoreMask) >>
                                          kCoreShift);
    }

    static PackedRecord pack(const MemRef &ref)
    {
        PackedRecord rec;
        rec.bits = static_cast<std::uint64_t>(ref.addr);
        if (ref.isWrite())
            rec.bits |= kWriteBit;
        else if (ref.isInstruction())
            rec.bits |= kIfetchBit;
        rec.bits |= (static_cast<std::uint64_t>(ref.core) &
                     (kMaxCores - 1))
                    << kCoreShift;
        return rec;
    }
};

static_assert(sizeof(PackedRecord) == 8,
              "packed records must stay 8 bytes (one cache line holds "
              "eight of them)");

/**
 * An immutable packed trace: one contiguous span of records. The
 * records are either owned (decoded from a VectorTrace) or a view
 * over externally held memory — an mmapped corpus file
 * (trace/corpus.hh) replays through exactly the same span interface
 * with zero copies.
 */
class PackedTrace
{
  public:
    PackedTrace() = default;
    explicit PackedTrace(const VectorTrace &trace);

    /**
     * View over @p count externally owned records; @p backing keeps
     * the storage (e.g. a file mapping) alive for the trace's
     * lifetime. The records are NOT copied.
     */
    PackedTrace(std::string name, const PackedRecord *records,
                std::size_t count, std::shared_ptr<const void> backing);

    // The span pointer would dangle across a copy of the owned case;
    // packed traces are shared by shared_ptr, never copied.
    PackedTrace(const PackedTrace &) = delete;
    PackedTrace &operator=(const PackedTrace &) = delete;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const PackedRecord *data() const { return data_; }
    const PackedRecord &operator[](std::size_t i) const
    {
        return data_[i];
    }
    const std::string &name() const { return name_; }

  private:
    std::string name_ = "trace";
    std::vector<PackedRecord> records_;  ///< owned storage (or empty)
    std::shared_ptr<const void> backing_;  ///< view keep-alive
    const PackedRecord *data_ = nullptr;
    std::size_t size_ = 0;
};

/**
 * Memoized packing of a shared immutable trace: the first call for a
 * given VectorTrace decodes it, later calls return the same
 * PackedTrace as long as any previous handle (or the source trace)
 * is still alive. Thread-safe.
 */
std::shared_ptr<const PackedTrace>
packedTraceShared(const std::shared_ptr<const VectorTrace> &trace);

/**
 * A packed trace partitioned into 2^shardBits sub-traces by the low
 * bits of the block address: record r lands in shard
 * (r.addr() >> blockBits) & (2^shardBits - 1).
 *
 * For any set-associative geometry with the same block size and
 * numSets >= 2^shardBits, the set index is (addr >> blockBits) mod
 * numSets, so every record of one shard maps to a set congruent to
 * that shard's index — sets are partitioned across shards and one
 * partition serves every such config. Within a shard, records keep
 * their trace order, which is all a set-local engine observes.
 *
 * Records are stored grouped in one flat array (shard s is the
 * half-open span [offsets_[s], offsets_[s+1])), so a whole shard is
 * one contiguous walk just like the unsharded trace.
 */
class ShardedPackedTrace
{
  public:
    /** Partition the first @p limit records of @p trace
     *  (0 = all records). */
    ShardedPackedTrace(const PackedTrace &trace,
                       std::uint32_t block_bits,
                       std::uint32_t shard_bits, std::uint64_t limit);

    std::uint32_t blockBits() const { return blockBits_; }
    std::uint32_t shardBits() const { return shardBits_; }
    std::uint32_t numShards() const { return 1u << shardBits_; }
    /** Number of records partitioned (min(limit, trace size)). */
    std::uint64_t totalRecords() const { return records_.size(); }

    const PackedRecord *shardData(std::size_t shard) const
    {
        return records_.data() + offsets_[shard];
    }
    std::size_t shardSize(std::size_t shard) const
    {
        return offsets_[shard + 1] - offsets_[shard];
    }

  private:
    std::uint32_t blockBits_;
    std::uint32_t shardBits_;
    std::vector<PackedRecord> records_;
    std::vector<std::size_t> offsets_;  ///< numShards + 1 entries
};

/**
 * Memoized sharding of a shared packed trace, mirroring
 * packedTraceShared: one partition per distinct (trace, blockBits,
 * shardBits, limit) while any handle is alive. Thread-safe.
 */
std::shared_ptr<const ShardedPackedTrace>
shardedTraceShared(const std::shared_ptr<const PackedTrace> &trace,
                   std::uint32_t block_bits, std::uint32_t shard_bits,
                   std::uint64_t limit);

} // namespace occsim

#endif // OCCSIM_TRACE_PACKED_TRACE_HH
