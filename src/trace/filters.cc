#include "trace/filters.hh"

#include "util/logging.hh"

namespace occsim {

TruncateFilter::TruncateFilter(TraceSource &inner, std::uint64_t limit)
    : inner_(inner), limit_(limit)
{
}

bool
TruncateFilter::next(MemRef &ref)
{
    if (passed_ >= limit_)
        return false;
    if (!inner_.next(ref))
        return false;
    ++passed_;
    return true;
}

void
TruncateFilter::reset()
{
    inner_.reset();
    passed_ = 0;
}

std::string
TruncateFilter::name() const
{
    return inner_.name() + "[trunc]";
}

DropWritesFilter::DropWritesFilter(TraceSource &inner)
    : inner_(inner)
{
}

bool
DropWritesFilter::next(MemRef &ref)
{
    while (inner_.next(ref)) {
        if (!ref.isWrite())
            return true;
    }
    return false;
}

std::string
DropWritesFilter::name() const
{
    return inner_.name() + "[ro]";
}

KindFilter::KindFilter(TraceSource &inner, Select select)
    : inner_(inner), select_(select)
{
}

bool
KindFilter::next(MemRef &ref)
{
    while (inner_.next(ref)) {
        const bool is_inst = ref.isInstruction();
        if (select_ == Select::InstructionsOnly ? is_inst : !is_inst)
            return true;
    }
    return false;
}

std::string
KindFilter::name() const
{
    return inner_.name() +
           (select_ == Select::InstructionsOnly ? "[i]" : "[d]");
}

CodeCompactionFilter::CodeCompactionFilter(TraceSource &inner,
                                           Addr code_base,
                                           std::uint32_t num,
                                           std::uint32_t den)
    : inner_(inner), codeBase_(code_base), num_(num), den_(den)
{
}

bool
CodeCompactionFilter::next(MemRef &ref)
{
    if (!inner_.next(ref))
        return false;
    if (ref.isInstruction() && ref.addr >= codeBase_) {
        const Addr offset = ref.addr - codeBase_;
        // Rescale and keep word alignment.
        const Addr scaled = static_cast<Addr>(
            static_cast<std::uint64_t>(offset) * num_ / den_);
        ref.addr = codeBase_ + (scaled & ~(Addr{ref.size} - 1));
    }
    return true;
}

std::string
CodeCompactionFilter::name() const
{
    return inner_.name() + "[compact]";
}

SampleFilter::SampleFilter(TraceSource &inner, std::uint64_t window,
                           std::uint64_t period)
    : inner_(inner), window_(window), period_(period)
{
    occsim_assert(window > 0 && window <= period,
                  "need 0 < window <= period");
}

bool
SampleFilter::next(MemRef &ref)
{
    for (;;) {
        if (!inner_.next(ref))
            return false;
        const std::uint64_t slot = position_ % period_;
        ++position_;
        if (slot < window_)
            return true;
    }
}

void
SampleFilter::reset()
{
    inner_.reset();
    position_ = 0;
}

std::string
SampleFilter::name() const
{
    return inner_.name() + "[sampled]";
}

SkipFilter::SkipFilter(TraceSource &inner, std::uint64_t skip)
    : inner_(inner), skip_(skip)
{
}

bool
SkipFilter::next(MemRef &ref)
{
    if (!skipped_) {
        for (std::uint64_t i = 0; i < skip_; ++i) {
            if (!inner_.next(ref))
                return false;
        }
        skipped_ = true;
    }
    return inner_.next(ref);
}

void
SkipFilter::reset()
{
    inner_.reset();
    skipped_ = false;
}

std::string
SkipFilter::name() const
{
    return inner_.name() + "[skip]";
}

} // namespace occsim
