/**
 * @file
 * Trace file persistence.
 *
 * Two interchangeable formats:
 *
 *  - Text ("din"): one reference per line, `<label> <hex-addr> <size>`,
 *    with labels 2 = ifetch, 0 = data read, 1 = data write — the
 *    classic dineroIII label assignment, so traces written by occsim
 *    can be inspected with standard tools and vice versa. Lines
 *    beginning with '#' are comments.
 *
 *  - Binary ("otb", occsim trace binary): a 16-byte header
 *    (magic "OCTB", version, word size, record count) followed by
 *    fixed 6-byte records (u32 LE address, u8 kind, u8 size). Compact
 *    enough that a 1M-reference trace is 6 MB.
 *
 *  - Compressed ("otd", occsim trace delta): same header with magic
 *    "OCTD"; each record is one flag byte (2-bit kind + size-change
 *    flag) followed by the zigzag-varint delta from the previous
 *    address of the same kind. Locality makes most deltas tiny, so
 *    typical traces compress to ~2-3 bytes per reference.
 */

#ifndef OCCSIM_TRACE_TRACE_FILE_HH
#define OCCSIM_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>

#include "trace/trace.hh"

namespace occsim {

/** Write @p trace to @p path in text (din) format. */
void writeTextTrace(const VectorTrace &trace, const std::string &path);

/** Write @p trace to @p path in binary (otb) format. */
void writeBinaryTrace(const VectorTrace &trace, const std::string &path);

/** Write @p trace to @p path in compressed (otd) format. */
void writeCompressedTrace(const VectorTrace &trace,
                          const std::string &path);

/**
 * Read a trace file, auto-detecting binary vs text by the magic bytes.
 * Calls fatal() on malformed input (user error).
 */
VectorTrace readTrace(const std::string &path);

/** Read a text (din) format trace. */
VectorTrace readTextTrace(const std::string &path);

/** Read a binary (otb) format trace. */
VectorTrace readBinaryTrace(const std::string &path);

/**
 * Streaming reader over a trace file; avoids materializing very large
 * traces. Detects the format from the magic bytes on open.
 */
class FileTrace : public TraceSource
{
  public:
    explicit FileTrace(const std::string &path);
    ~FileTrace() override;

    FileTrace(const FileTrace &) = delete;
    FileTrace &operator=(const FileTrace &) = delete;

    bool next(MemRef &ref) override;
    bool rewindable() const override { return true; }
    void reset() override;
    std::string name() const override { return path_; }

  private:
    enum class Format { Text, Binary, Compressed };

    bool nextText(MemRef &ref);
    bool nextBinary(MemRef &ref);
    bool nextCompressed(MemRef &ref);

    std::string path_;
    std::FILE *file_ = nullptr;
    Format format_ = Format::Text;
    long dataStart_ = 0;
    std::uint64_t remaining_ = 0;  ///< records left (binary formats)
    std::uint64_t total_ = 0;      ///< record count from header
    Addr prevAddr_[3] = {0, 0, 0}; ///< per-kind last address (otd)
    std::uint8_t prevSize_ = 2;    ///< last record size (otd)
};

} // namespace occsim

#endif // OCCSIM_TRACE_TRACE_FILE_HH
