/**
 * @file
 * Umbrella header: the supported public surface of the occsim
 * library in one include.
 *
 *   #include "occsim.hh"
 *
 * pulls in cache configuration and simulation, trace generation and
 * filtering, the unified sweep API (SweepRequest -> runSweep ->
 * SweepReport), the paper harnesses, and the observability subsystem
 * (telemetry, run manifests). Internal headers — sweep_detail.hh,
 * the engine internals, the VM — are deliberately not included;
 * embedders that reach for them are off the supported surface.
 *
 * examples/quickstart.cpp builds against this header alone.
 */

#ifndef OCCSIM_OCCSIM_HH
#define OCCSIM_OCCSIM_HH

// Cache model: configuration, geometry, statistics, simulation.
#include "cache/cache.hh"
#include "cache/cache_config.hh"
#include "cache/cache_geometry.hh"
#include "cache/cache_stats.hh"
#include "cache/sector_cache.hh"
#include "cache/split_cache.hh"

// Traces: representation, generation, filtering, persistence, and
// the on-disk packed corpus.
#include "trace/corpus.hh"
#include "trace/filters.hh"
#include "trace/trace.hh"
#include "trace/trace_file.hh"
#include "trace/trace_stats.hh"

// Workloads: the paper's suites, trace builders, and the parallel
// (multicore) sharing-pattern generators.
#include "workload/parallel.hh"
#include "workload/profiles.hh"
#include "workload/suites.hh"
#include "workload/synthetic.hh"

// Sweeps: the unified request/report API — the one supported entry
// point; scenario routing included (multi/sweep_api.hh pulls in
// coherence/scenario.hh).
#include "multi/parallel_sweep.hh"
#include "multi/sweep_api.hh"
#include "multi/sweep_runner.hh"

// Analysis helpers.
#include "multi/miss_classifier.hh"
#include "multi/stack_analyzer.hh"
#include "multi/working_set.hh"

// Paper harnesses (tables and figures).
#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "harness/paper_tables.hh"

// Observability: telemetry counters/spans and run manifests.
#include "obs/json.hh"
#include "obs/manifest.hh"
#include "obs/telemetry.hh"

// The sweep server: wire protocol, result cache, daemon.
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/server.hh"

// Execution resources.
#include "util/thread_pool.hh"

#endif // OCCSIM_OCCSIM_HH
