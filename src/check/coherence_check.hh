/**
 * @file
 * The coherency oracle: a deliberately naive flat-snooping multi-cache
 * simulator, plus the differential case runner and fuzz loop that
 * compare it against the coherent MESI engine.
 *
 * FlatSnoopOracle is to CoherentSystem what ReferenceCache is to
 * Cache: every per-core structure is a plain std::vector<bool> frame,
 * every address split is longhand division/modulo, every statistic is
 * a plain integer re-derived from first principles, and the bus is a
 * literal loop over every peer cache on every transaction. The only
 * shared code is deliberate: the xoshiro Rng (Random replacement is
 * *defined* by its victim stream) and the mesiNext() transition table
 * (the protocol's single source of truth — a disagreement between
 * engine and oracle can then only come from *when* events are raised,
 * never from what a transition does).
 *
 * runCoherencyCase() runs one (scenario, config, trace) triple through
 * both simulators and reports every differing counter: per-core
 * ReferenceStats vs CacheStats via diffStats(), bus CoherencyStats
 * field by field, and the summarizeCoherent() SweepResult against a
 * full runSweep() with the scenario attached (so the routing layer is
 * covered, not just the engine). runCoherenceFuzz() drives it from a
 * master seed over randomized MESI-subset geometries, 2..4 cores,
 * symmetric and asymmetric scenarios, and traces alternating between
 * the scripted parallel workloads and adversarial single-cache
 * patterns with randomly stamped core ids.
 */

#ifndef OCCSIM_CHECK_COHERENCE_CHECK_HH
#define OCCSIM_CHECK_COHERENCE_CHECK_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "check/reference_cache.hh"
#include "coherence/coherent_system.hh"
#include "coherence/scenario.hh"
#include "trace/trace.hh"
#include "util/random.hh"

namespace occsim {

/**
 * The naive coherent-system oracle: N ReferenceCache-style frame
 * tables (one per core) joined by a flat snooping loop, re-deriving
 * every per-core counter and every CoherencyStats bus counter.
 * Restricted, like the engine, to the MESI subset: copy-back,
 * write-allocate, demand fetch, unified.
 */
class FlatSnoopOracle
{
  public:
    FlatSnoopOracle(const ScenarioConfig &scenario,
                    const CacheConfig &grid_config);

    /** Simulate one reference on core ref.core % numCores(). */
    void access(const MemRef &ref);

    /** Drain @p refs and finalize (one-shot convenience). */
    void run(const std::vector<MemRef> &refs);

    /** End-of-run residency accounting and dirty write-back, every
     *  core. */
    void finalize();

    std::uint32_t numCores() const
    {
        return static_cast<std::uint32_t>(cores_.size());
    }
    const ReferenceStats &coreStats(std::uint32_t core) const
    {
        return cores_[core].stats;
    }
    const CoherencyStats &bus() const { return bus_; }

  private:
    /** One frame of one core's cache; per-sub-block facts are bool
     *  vectors, MESI state rides along explicitly. */
    struct Frame
    {
        bool present = false;
        Addr tag = 0;
        MesiState state = MesiState::Invalid;
        std::vector<bool> valid;
        std::vector<bool> touched;
        std::vector<bool> dirty;
    };

    /** One core's private cache, longhand. */
    struct Core
    {
        CacheConfig config;
        std::uint32_t numSets = 0;
        std::uint32_t assoc = 0;
        /** frames[set][way]. */
        std::vector<std::vector<Frame>> frames;
        /** everFilled[set][way][sub]: survives invalidations (a
         *  re-fetch after an invalidation is coherency traffic, not a
         *  cold miss). */
        std::vector<std::vector<std::vector<bool>>> everFilled;
        /** order[set]: way ids, front = next victim. */
        std::vector<std::vector<std::uint32_t>> order;
        Rng randomVictims;
        ReferenceStats stats;

        explicit Core(const CacheConfig &cfg);
    };

    // ---- longhand address arithmetic (block geometry is shared
    //      across cores; validateScenario enforces that) ----
    Addr blockAddrOf(Addr addr) const { return addr / blockSize_; }
    std::uint32_t subIndexOf(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr % blockSize_) /
                                          subBlockSize_);
    }

    int findWay(const Core &core, std::uint32_t set,
                Addr block_addr) const;
    std::uint32_t chooseVictim(Core &core, std::uint32_t set);
    void noteAccess(Core &core, std::uint32_t set, std::uint32_t way);
    void noteFill(Core &core, std::uint32_t set, std::uint32_t way);

    /** Fill one sub-block from the bus: valid + ever-filled bits plus
     *  one counted burst (read traffic) or write-miss burst. */
    void fillSub(Core &core, std::uint32_t set, std::uint32_t way,
                 std::uint32_t sub, bool counted, bool cold);

    /** Copy-back write-back of a frame's dirty sub-blocks.
     *  @return words written back (0 when clean). */
    std::uint64_t writebackDirty(Core &core, Frame &frame);

    /** End a residency: touched histogram + dirty write-back. */
    void endResidency(Core &core, Frame &frame);

    /** Snoop every peer of @p requester for a read fill.
     *  @return whether any peer held the block (the shared line). */
    bool snoopRead(std::uint32_t requester, Addr block_addr);

    /** Snoop + invalidate every peer copy (@p upgrade selects the
     *  address-only upgrade event vs BusRdX). */
    void snoopInvalidate(std::uint32_t requester, Addr block_addr,
                         bool upgrade);

    std::uint32_t blockSize_ = 0;
    std::uint32_t subBlockSize_ = 0;
    std::uint32_t numSubs_ = 0;
    std::uint32_t wordsPerSub_ = 0;

    std::vector<Core> cores_;
    CoherencyStats bus_;
};

/** Outcome of one differential coherency case. */
struct CoherenceCaseReport
{
    /** One human-readable line per mismatching counter; empty when
     *  the engine and the oracle agree completely. */
    std::vector<std::string> diffs;

    bool mismatch() const { return !diffs.empty(); }
};

/**
 * Run one (scenario, grid config, trace) triple through the coherent
 * engine and the oracle and diff every counter: per-core stats, bus
 * counters, and the runSweep()-routed SweepResult against
 * summarizeCoherent() on the directly driven system.
 */
CoherenceCaseReport
runCoherencyCase(const ScenarioConfig &scenario,
                 const CacheConfig &grid_config,
                 const std::vector<MemRef> &refs,
                 const std::string &trace_name = "coherence-case");

/** Coherency-fuzz knobs (same seeding scheme as check/fuzz.hh: one
 *  case seed per case, each fully determining its scenario, config
 *  and trace). */
struct CoherenceFuzzOptions
{
    std::uint64_t cases = 200;
    std::uint64_t seed = 0x0cc51Full;
    /** Total references per generated trace (split across cores). */
    std::size_t refsPerCase = 2048;
    /** Progress/failure output; nullptr silences everything. */
    std::ostream *out = nullptr;
    bool verbose = false;
};

/** One generated coherency case, fully determined by its case seed. */
struct CoherenceFuzzCase
{
    std::uint64_t caseSeed = 0;
    ScenarioConfig scenario;
    CacheConfig config;
    VectorTrace trace;
};

/** Outcome of a coherency-fuzz run. */
struct CoherenceFuzzSummary
{
    std::uint64_t casesRun = 0;
    std::uint64_t mismatches = 0;
    std::uint64_t failingCaseSeed = 0;
    std::vector<std::string> diffs;

    bool passed() const { return mismatches == 0; }
};

/** Materialize the case determined by @p case_seed. */
CoherenceFuzzCase makeCoherenceFuzzCase(std::uint64_t case_seed,
                                        std::size_t refs_per_case);

/** Run the coherency-fuzz loop; stops at the first mismatch. */
CoherenceFuzzSummary
runCoherenceFuzz(const CoherenceFuzzOptions &options);

} // namespace occsim

#endif // OCCSIM_CHECK_COHERENCE_CHECK_HH
