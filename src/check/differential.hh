/**
 * @file
 * The differential driver: run every engine occsim owns over one
 * (config, trace) pair and diff the results.
 *
 * Engines compared per case:
 *
 *  1. ReferenceCache (the naive oracle) vs the direct Cache engine:
 *     every counter, histogram bucket, and derived metric.
 *  2. ParallelSweepRunner with SweepEngine::DirectOnly vs the direct
 *     Cache's SweepResult (the routing layer must be a no-op).
 *  3. ParallelSweepRunner with SweepEngine::Auto vs the same (this
 *     exercises the SinglePassEngine fast path whenever the config
 *     is eligible, and the batched replay engine otherwise).
 *  4. A standalone BatchReplay run with a deliberately awkward
 *     tiling (1-config tiles, 7-record chunks): full statistics vs
 *     the oracle and the summarized SweepResult vs the direct
 *     engine's, so the specialized kernels and the chunk-boundary
 *     logic are diffed on every case.
 *  5. For single-pass-eligible configs, a standalone SinglePassEngine
 *     run: raw Counts vs the oracle's counters and the summarized
 *     SweepResult vs the direct engine's.
 *
 * All comparisons are exact — the engines promise bit-identical
 * numbers, so any difference, however small, is a bug in one of
 * them (or in the oracle, which is the point of keeping the oracle
 * naive enough to audit by eye).
 *
 * A DiffOptions::perturbReference hook lets the test suite inject a
 * deliberate fault into the oracle's totals post-hoc, proving the
 * harness detects and shrinks real divergence (and guarding against
 * the classic fuzzer failure mode of comparing nothing).
 */

#ifndef OCCSIM_CHECK_DIFFERENTIAL_HH
#define OCCSIM_CHECK_DIFFERENTIAL_HH

#include <functional>
#include <string>
#include <vector>

#include "check/reference_cache.hh"

namespace occsim {

/** Knobs for one differential comparison. */
struct DiffOptions
{
    /** Fault-injection hook applied to the oracle's totals before
     *  diffing (tests only; empty in production fuzzing). */
    std::function<void(ReferenceStats &)> perturbReference;
};

/** Outcome of one differential case. */
struct CaseReport
{
    /** One line per mismatching field, across all engine pairs. */
    std::vector<std::string> diffs;

    bool mismatch() const { return !diffs.empty(); }
};

/**
 * Run every engine over (@p config, @p refs) and diff the results.
 * Self-contained and deterministic; safe to call repeatedly (the
 * shrinker calls it thousands of times).
 */
CaseReport runDifferentialCase(const CacheConfig &config,
                               const std::vector<MemRef> &refs,
                               const DiffOptions &options = {});

} // namespace occsim

#endif // OCCSIM_CHECK_DIFFERENTIAL_HH
