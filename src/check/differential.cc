// The differential oracle deliberately drives the raw engine entry
// points against each other.

#include "check/differential.hh"

#include <algorithm>
#include <sstream>

#include "cache/cache.hh"
#include "cache/cache_geometry.hh"
#include "cache/split_cache.hh"
#include "multi/batch_replay.hh"
#include "multi/fused_replay.hh"
#include "multi/parallel_sweep.hh"
#include "multi/shard_replay.hh"
#include "multi/single_pass.hh"
#include "multi/sweep_runner.hh"
#include "trace/packed_trace.hh"

namespace occsim {

namespace {

/** Exact comparison of two SweepResults (@p label names the pair). */
void
diffSweepResult(const std::string &label, const SweepResult &got,
                const SweepResult &want, std::vector<std::string> &out)
{
    const auto field = [&](const char *name, auto got_v, auto want_v) {
        if (got_v != want_v) {
            std::ostringstream os;
            os.precision(17);
            os << label << "." << name << ": " << got_v
               << " != " << want_v;
            out.push_back(os.str());
        }
    };
    field("grossBytes", got.grossBytes, want.grossBytes);
    field("missRatio", got.missRatio, want.missRatio);
    field("warmMissRatio", got.warmMissRatio, want.warmMissRatio);
    field("trafficRatio", got.trafficRatio, want.trafficRatio);
    field("warmTrafficRatio", got.warmTrafficRatio,
          want.warmTrafficRatio);
    field("nibbleTrafficRatio", got.nibbleTrafficRatio,
          want.nibbleTrafficRatio);
    field("warmNibbleTrafficRatio", got.warmNibbleTrafficRatio,
          want.warmNibbleTrafficRatio);
}

/** Exact comparison of single-pass raw totals vs the oracle's. */
void
diffCounts(const SinglePassEngine::Counts &got,
           const ReferenceStats &want, std::vector<std::string> &out)
{
    const auto field = [&](const char *name, std::uint64_t got_v,
                           std::uint64_t want_v) {
        if (got_v != want_v) {
            std::ostringstream os;
            os << "single-pass." << name << ": " << got_v
               << " != " << want_v;
            out.push_back(os.str());
        }
    };
    field("accesses", got.accesses, want.accesses);
    field("misses", got.misses, want.misses);
    field("coldMisses", got.coldMisses, want.coldMisses);
    field("ifetchAccesses", got.ifetchAccesses, want.ifetchAccesses);
    field("ifetchMisses", got.ifetchMisses, want.ifetchMisses);
    field("writeAccesses", got.writeAccesses, want.writeAccesses);
    field("writeMisses", got.writeMisses, want.writeMisses);
}

/** Copy a raw reference vector into a shareable VectorTrace. */
std::shared_ptr<const VectorTrace>
packTrace(const std::vector<MemRef> &refs)
{
    auto t = std::make_shared<VectorTrace>("diff");
    t->reserve(refs.size());
    for (const MemRef &ref : refs)
        t->append(ref.addr, ref.kind, ref.size);
    return t;
}

} // namespace

CaseReport
runDifferentialCase(const CacheConfig &config,
                    const std::vector<MemRef> &refs,
                    const DiffOptions &options)
{
    CaseReport report;

    // Split I/D points take their own engine stack: the oracle is a
    // pair of naive ReferenceCache halves partitioned by reference
    // kind, diffed per side against the SplitCache pair, and the
    // parallel routing layer must reproduce the combined summary bit
    // for bit under both engine modes. The batch, single-pass, shard
    // and fused engines are unified-only, so the main path below
    // keeps covering them.
    if (config.partition == CachePartition::SplitID) {
        const CacheConfig half = evenSplitHalf(config);
        ReferenceCache i_oracle(half);
        ReferenceCache d_oracle(half);
        for (const MemRef &ref : refs)
            (ref.isInstruction() ? i_oracle : d_oracle).access(ref);
        i_oracle.finalize();
        d_oracle.finalize();
        ReferenceStats i_want = i_oracle.stats();
        const ReferenceStats d_want = d_oracle.stats();
        if (options.perturbReference)
            options.perturbReference(i_want);

        SplitCache split = makeEvenSplit(config);
        for (const MemRef &ref : refs)
            split.access(ref);
        split.finalizeResidencies();
        for (const std::string &line :
             diffStats(i_want, split.icache().stats()))
            report.diffs.push_back("split-i." + line);
        for (const std::string &line :
             diffStats(d_want, split.dcache().stats()))
            report.diffs.push_back("split-d." + line);

        const SweepResult direct_summary =
            summarizeSplit(config, split);
        const auto trace = packTrace(refs);
        const std::vector<CacheConfig> configs{config};

        ParallelSweepRunner direct_only(configs, nullptr,
                                        SweepEngine::DirectOnly);
        direct_only.run(trace);
        diffSweepResult("split-sweep-direct",
                        direct_only.results()[0], direct_summary,
                        report.diffs);

        ParallelSweepRunner routed(configs, nullptr,
                                   SweepEngine::Auto);
        routed.run(trace);
        diffSweepResult("split-sweep-auto", routed.results()[0],
                        direct_summary, report.diffs);
        return report;
    }

    // Oracle: the naive reference model.
    ReferenceCache oracle(config);
    oracle.run(refs);
    oracle.finalize();
    ReferenceStats want = oracle.stats();
    if (options.perturbReference)
        options.perturbReference(want);

    // Engine 1: the direct Cache.
    Cache direct(config);
    for (const MemRef &ref : refs)
        direct.access(ref);
    direct.finalizeResidencies();
    for (const std::string &line : diffStats(want, direct.stats()))
        report.diffs.push_back("direct." + line);

    const SweepResult direct_summary = summarizeCache(direct);

    // Engines 2 and 3: the parallel routing layer, with and without
    // the single-pass fast path. Both must reproduce the direct
    // engine's summary bit for bit.
    const auto trace = packTrace(refs);
    const std::vector<CacheConfig> configs{config};

    ParallelSweepRunner direct_only(configs, nullptr,
                                    SweepEngine::DirectOnly);
    direct_only.run(trace);
    diffSweepResult("sweep-direct", direct_only.results()[0],
                    direct_summary, report.diffs);

    ParallelSweepRunner routed(configs, nullptr, SweepEngine::Auto);
    routed.run(trace);
    diffSweepResult("sweep-auto", routed.results()[0], direct_summary,
                    report.diffs);

    // Engine 4: the batched replay kernels standalone, driven with a
    // deliberately awkward tiling (tile of 1 config, 7-record chunks)
    // so chunk-boundary handling is exercised on every case — full
    // statistics against the oracle, summary against the direct run.
    {
        BatchReplay batch(configs, 1, 7);
        batch.run(PackedTrace(*trace));
        for (const std::string &line :
             diffStats(want, batch.cache(0).stats()))
            report.diffs.push_back("batch." + line);
        diffSweepResult("batch", batch.results()[0], direct_summary,
                        report.diffs);
    }

    // Engine 5: the single-pass engine standalone, when eligible —
    // raw totals against the oracle, summary against the direct run.
    if (singlePassEligible(config)) {
        SinglePassEngine engine(configs);
        engine.processTrace(*trace);
        diffCounts(engine.countsFor(0), want, report.diffs);
        diffSweepResult("single-pass", engine.results()[0],
                        direct_summary, report.diffs);
    }

    // Engine 6: the set-sharded replay engine, when eligible — the
    // per-shard sub-traces must merge bit-identically to the direct
    // run at awkward shard counts (the smallest, the largest legal
    // one, and a mid-size split when the geometry allows it).
    if (shardEligible(config)) {
        const CacheGeometry geom(config);
        const std::uint32_t max_shards =
            std::min<std::uint32_t>(geom.numSets(), kMaxShards);
        if (max_shards >= 2) {
            std::vector<std::uint32_t> counts{2};
            if (max_shards >= 8)
                counts.push_back(max_shards / 2);
            if (max_shards > 2)
                counts.push_back(max_shards);
            const PackedTrace packed(*trace);
            for (const std::uint32_t num_shards : counts) {
                ShardReplay engine(config, num_shards);
                const ShardedPackedTrace strace(
                    packed, engine.blockBits(), engine.shardBits(),
                    0);
                for (std::uint32_t s = 0; s < num_shards; ++s)
                    engine.runShard(s, strace);
                diffSweepResult(
                    "shard" + std::to_string(num_shards),
                    engine.result(), direct_summary, report.diffs);
            }
        }
    }

    // Engine 7: the fused group engine, when eligible — the config
    // rides one group pass alongside deliberately awkward companion
    // siblings (same FusedKey, different sub-block size and fetch
    // policy), so the per-config mask planes are exercised against
    // each other; every member must match its own direct run bit for
    // bit, unsharded and at awkward shard counts.
    if (fusedEligible(config)) {
        std::vector<CacheConfig> group{config};
        const auto add_sibling = [&](std::uint32_t sub,
                                     FetchPolicy fetch) {
            CacheConfig sibling = config;
            sibling.subBlockSize = sub;
            sibling.fetch = fetch;
            for (const CacheConfig &member : group) {
                if (member.subBlockSize == sibling.subBlockSize &&
                    member.fetch == sibling.fetch)
                    return;
            }
            group.push_back(sibling);
        };
        // The extremes of the sub-block range under both fetch
        // families, plus the config's own geometry with the other
        // fetch — an intentionally lopsided group (mask widths 1 bit
        // and full-width in one pass). The fine end respects the
        // 64-sub-blocks-per-block engine limit.
        const std::uint32_t finest_sub =
            std::max(config.wordSize, config.blockSize / 64);
        add_sibling(finest_sub, FetchPolicy::Demand);
        add_sibling(finest_sub, FetchPolicy::LoadForward);
        add_sibling(config.blockSize,
                    FetchPolicy::LoadForwardOptimized);
        add_sibling(config.subBlockSize,
                    config.fetch == FetchPolicy::Demand
                        ? FetchPolicy::LoadForward
                        : FetchPolicy::Demand);

        std::vector<SweepResult> member_summaries;
        member_summaries.reserve(group.size());
        member_summaries.push_back(direct_summary);
        for (std::size_t m = 1; m < group.size(); ++m) {
            Cache member(group[m]);
            for (const MemRef &ref : refs)
                member.access(ref);
            member.finalizeResidencies();
            member_summaries.push_back(summarizeCache(member));
        }

        const PackedTrace packed(*trace);
        {
            FusedReplay fused(group);
            fused.run(packed.data(), packed.size());
            for (std::size_t m = 0; m < group.size(); ++m) {
                diffSweepResult("fused.m" + std::to_string(m),
                                fused.result(m), member_summaries[m],
                                report.diffs);
            }
        }

        const CacheGeometry geom(config);
        const std::uint32_t max_shards =
            std::min<std::uint32_t>(geom.numSets(), kMaxShards);
        if (max_shards >= 2) {
            std::vector<std::uint32_t> counts{2};
            if (max_shards > 2)
                counts.push_back(max_shards);
            for (const std::uint32_t num_shards : counts) {
                FusedReplay fused(group, num_shards);
                const ShardedPackedTrace strace(
                    packed, fused.blockBits(), fused.shardBits(), 0);
                for (std::uint32_t s = 0; s < num_shards; ++s)
                    fused.runShard(s, strace);
                for (std::size_t m = 0; m < group.size(); ++m) {
                    diffSweepResult(
                        "fused-shard" + std::to_string(num_shards) +
                            ".m" + std::to_string(m),
                        fused.result(m), member_summaries[m],
                        report.diffs);
                }
            }
        }
    }

    return report;
}

} // namespace occsim
