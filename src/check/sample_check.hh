/**
 * @file
 * Empirical confidence-interval coverage check for the sampling
 * engine (multi/sample_replay.hh).
 *
 * The sampling engine's whole contract is its error bars: a reported
 * 95% interval must actually contain the exact answer about 95% of
 * the time, or the uncertainty numbers are decorative. This check
 * tests that promise the only way it can be tested — empirically.
 * Each case draws a seeded random (config, adversarial trace) pair
 * from the fuzz generators, computes the EXACT full-trace miss ratio
 * with the direct engine, runs the sampling engine over the same
 * packed trace, and asks whether the exact value falls inside the
 * sampled mean's 95% interval (widened by a small absolute floor,
 * since zero-variance and single-unit cases legitimately report a
 * zero-width interval, and systematic sampling of a nonstationary
 * process is only approximately normal at modest unit counts).
 *
 * The pass criterion is aggregate, not per-case: a 95% interval is
 * SUPPOSED to miss one case in twenty, so individual misses are
 * expected and only a coverage rate below the threshold (default
 * 90%, leaving slack for nonstationarity) is a failure. Wired into
 * the fuzz driver as `occsim-fuzz --sample-coverage`.
 */

#ifndef OCCSIM_CHECK_SAMPLE_CHECK_HH
#define OCCSIM_CHECK_SAMPLE_CHECK_HH

#include <cstdint>
#include <iosfwd>

#include "multi/sample_replay.hh"

namespace occsim {

/** Knobs for one coverage run. */
struct SampleCoverageOptions
{
    /** (config, trace) cases to draw. */
    std::uint64_t cases = 50;

    /** Master seed (same scheme as the fuzz loop: one case seed per
     *  case, each fully determining its config and trace). */
    std::uint64_t seed = 0x5a4b1edull;

    /** References per generated trace. Long enough for several
     *  measurement units per case, short enough that the exact
     *  reference run stays cheap. */
    std::size_t refs = 16384;

    /** Sampling spec under test. Defaults shrink the production unit
     *  size so a 16K-reference trace still yields a dozen-plus
     *  observations per case. */
    SampleSpec spec{.unitRefs = 256, .intervalUnits = 4};

    /** Absolute slack added to every interval (see file comment). */
    double tolerance = 0.02;

    /** Required fraction of cases whose interval covers the exact
     *  value. */
    double minCoverage = 0.90;

    /** Progress/failure output; nullptr silences everything. */
    std::ostream *out = nullptr;

    /** Per-case result lines (needs @ref out). */
    bool verbose = false;
};

/** Outcome of a coverage run. */
struct SampleCoverageSummary
{
    std::uint64_t cases = 0;
    std::uint64_t covered = 0;      ///< cases with exact inside CI
    double worstAbsError = 0.0;     ///< max |exact - sampled mean|
    std::uint64_t worstCaseSeed = 0;
    double minCoverage = 0.0;       ///< threshold the run was held to

    double coverage() const
    {
        return cases == 0
                   ? 0.0
                   : static_cast<double>(covered) /
                         static_cast<double>(cases);
    }

    bool passed() const { return coverage() >= minCoverage; }
};

/** Run the coverage loop; never throws on miss — the verdict is the
 *  aggregate rate in the summary. */
SampleCoverageSummary
runSampleCoverage(const SampleCoverageOptions &options);

} // namespace occsim

#endif // OCCSIM_CHECK_SAMPLE_CHECK_HH
