#include "check/sample_check.hh"

#include <cmath>
#include <ostream>

#include "check/fuzz.hh"
#include "multi/sweep_runner.hh"
#include "trace/packed_trace.hh"
#include "util/random.hh"

namespace occsim {

namespace {

/** One case: exact vs sampled miss ratio for the pair determined by
 *  @p case_seed. @return the sampled result and exact value via
 *  out-params; cases reuse the fuzz-loop case scheme so any outlier
 *  is replayable from its seed alone. */
bool
runCoverageCase(std::uint64_t case_seed,
                const SampleCoverageOptions &options, double &exact,
                SampleEstimates &sampled, CacheConfig &config)
{
    const FuzzCase fuzz_case = makeFuzzCase(case_seed, options.refs);
    config = fuzz_case.config;
    const PackedTrace packed(*fuzz_case.trace);

    Cache cache(config);
    cache.replayPacked(packed.data(), packed.size());
    exact = summarizeCache(cache).missRatio;

    SampleReplay replay({config}, options.spec);
    replay.prepare(packed, 0);
    for (std::size_t f = 0; f < replay.numWarmTasks(); ++f)
        replay.runWarmTask(f, packed);
    replay.runMeasureTask(0, packed);
    sampled = replay.results().front().sampled;

    const double half = sampled.missRatio.ci95 + options.tolerance;
    return std::abs(exact - sampled.missRatio.mean) <= half;
}

} // namespace

SampleCoverageSummary
runSampleCoverage(const SampleCoverageOptions &options)
{
    SampleCoverageSummary summary;
    summary.minCoverage = options.minCoverage;
    Rng master(options.seed);
    for (std::uint64_t i = 0; i < options.cases; ++i) {
        const std::uint64_t case_seed = master.next();
        double exact = 0.0;
        SampleEstimates sampled;
        CacheConfig config;
        const bool covered =
            runCoverageCase(case_seed, options, exact, sampled, config);
        ++summary.cases;
        if (covered)
            ++summary.covered;
        const double abs_error =
            std::abs(exact - sampled.missRatio.mean);
        if (abs_error > summary.worstAbsError) {
            summary.worstAbsError = abs_error;
            summary.worstCaseSeed = case_seed;
        }
        if (options.verbose && options.out) {
            *options.out << "case " << i << " seed " << case_seed
                         << ": " << config.fullName() << " exact "
                         << exact << " sampled "
                         << sampled.missRatio.mean << " +- "
                         << sampled.missRatio.ci95 << " ("
                         << sampled.units << " units) "
                         << (covered ? "covered" : "MISSED") << "\n";
        }
    }
    if (options.out) {
        *options.out << "occsim-fuzz sample-coverage: "
                     << summary.covered << "/" << summary.cases
                     << " cases covered ("
                     << summary.coverage() * 100.0
                     << "%, threshold "
                     << options.minCoverage * 100.0
                     << "%), worst |error| " << summary.worstAbsError
                     << " at seed " << summary.worstCaseSeed << "\n";
    }
    return summary;
}

} // namespace occsim
