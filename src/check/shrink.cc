#include "check/shrink.hh"

#include <algorithm>
#include <sstream>

namespace occsim {

namespace {

/** One shrink session: owns the probe counter. */
class Shrinker
{
  public:
    explicit Shrinker(const DiffOptions &options) : options_(options) {}

    std::size_t probes() const { return probes_; }

    bool fails(const CacheConfig &config,
               const std::vector<MemRef> &refs)
    {
        ++probes_;
        return runDifferentialCase(config, refs, options_).mismatch();
    }

    /** One ddmin pass over the trace. @return true on any progress. */
    bool shrinkTrace(const CacheConfig &config,
                     std::vector<MemRef> &refs)
    {
        bool progress = false;
        std::size_t chunks = 2;
        while (refs.size() >= 2) {
            chunks = std::min(chunks, refs.size());
            const std::size_t chunk_len =
                (refs.size() + chunks - 1) / chunks;
            bool removed = false;
            for (std::size_t start = 0; start < refs.size();
                 start += chunk_len) {
                const std::size_t end =
                    std::min(start + chunk_len, refs.size());
                std::vector<MemRef> candidate;
                candidate.reserve(refs.size() - (end - start));
                candidate.insert(candidate.end(), refs.begin(),
                                 refs.begin() +
                                     static_cast<std::ptrdiff_t>(start));
                candidate.insert(candidate.end(),
                                 refs.begin() +
                                     static_cast<std::ptrdiff_t>(end),
                                 refs.end());
                if (fails(config, candidate)) {
                    refs = std::move(candidate);
                    progress = true;
                    removed = true;
                    chunks = std::max<std::size_t>(2, chunks - 1);
                    break;
                }
            }
            if (!removed) {
                if (chunks >= refs.size())
                    break;
                chunks = std::min(chunks * 2, refs.size());
            }
        }
        return progress;
    }

    /** One config-simplification pass. @return true on progress. */
    bool shrinkConfig(CacheConfig &config,
                      const std::vector<MemRef> &refs)
    {
        bool progress = false;
        const auto attempt = [&](CacheConfig candidate) {
            if (candidate == config)
                return;
            if (fails(candidate, refs)) {
                config = candidate;
                progress = true;
            }
        };

        {
            CacheConfig c = config;
            c.partition = CachePartition::Unified;
            attempt(c);
        }
        {
            CacheConfig c = config;
            c.replacement = ReplacementPolicy::LRU;
            attempt(c);
        }
        {
            CacheConfig c = config;
            c.fetch = FetchPolicy::Demand;
            attempt(c);
        }
        {
            CacheConfig c = config;
            c.write = WritePolicy::WriteThrough;
            attempt(c);
        }
        {
            CacheConfig c = config;
            c.writeAllocate = true;
            attempt(c);
        }
        while (config.assoc > 1) {
            CacheConfig c = config;
            c.assoc /= 2;
            if (!fails(c, refs))
                break;
            config = c;
            progress = true;
        }
        // A split pair needs at least one block per side, so its net
        // size bottoms out one doubling higher than a unified cache.
        const std::uint32_t min_net =
            config.partition == CachePartition::SplitID
                ? 2 * config.blockSize
                : config.blockSize;
        while (config.netSize > min_net) {
            CacheConfig c = config;
            c.netSize /= 2;
            if (!fails(c, refs))
                break;
            config = c;
            progress = true;
        }
        {
            CacheConfig c = config;
            c.subBlockSize = c.blockSize;
            attempt(c);
        }
        while (config.blockSize > config.subBlockSize &&
               config.blockSize > config.wordSize) {
            CacheConfig c = config;
            c.blockSize /= 2;
            c.netSize = std::max(c.netSize, c.blockSize);
            if (c.blockSize < c.subBlockSize || !fails(c, refs))
                break;
            config = c;
            progress = true;
        }
        return progress;
    }

  private:
    DiffOptions options_;
    std::size_t probes_ = 0;
};

const char *
replacementEnumName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::LRU:
        return "ReplacementPolicy::LRU";
      case ReplacementPolicy::FIFO:
        return "ReplacementPolicy::FIFO";
      case ReplacementPolicy::Random:
        return "ReplacementPolicy::Random";
    }
    return "ReplacementPolicy::LRU";
}

const char *
fetchEnumName(FetchPolicy policy)
{
    switch (policy) {
      case FetchPolicy::Demand:
        return "FetchPolicy::Demand";
      case FetchPolicy::LoadForward:
        return "FetchPolicy::LoadForward";
      case FetchPolicy::LoadForwardOptimized:
        return "FetchPolicy::LoadForwardOptimized";
      case FetchPolicy::PrefetchNextOnMiss:
        return "FetchPolicy::PrefetchNextOnMiss";
    }
    return "FetchPolicy::Demand";
}

const char *
writeEnumName(WritePolicy policy)
{
    switch (policy) {
      case WritePolicy::WriteThrough:
        return "WritePolicy::WriteThrough";
      case WritePolicy::CopyBack:
        return "WritePolicy::CopyBack";
    }
    return "WritePolicy::WriteThrough";
}

const char *
kindEnumName(RefKind kind)
{
    switch (kind) {
      case RefKind::Ifetch:
        return "RefKind::Ifetch";
      case RefKind::DataRead:
        return "RefKind::DataRead";
      case RefKind::DataWrite:
        return "RefKind::DataWrite";
    }
    return "RefKind::DataRead";
}

} // namespace

ShrinkResult
shrinkCase(const CacheConfig &config, const std::vector<MemRef> &refs,
           const DiffOptions &options)
{
    ShrinkResult result;
    result.config = config;
    result.refs = refs;

    Shrinker shrinker(options);
    // Alternate passes until a full round makes no progress. Config
    // simplification can unlock further trace shrinking (a simpler
    // cache needs fewer references to misbehave) and vice versa.
    for (;;) {
        const bool trace_progress =
            shrinker.shrinkTrace(result.config, result.refs);
        const bool config_progress =
            shrinker.shrinkConfig(result.config, result.refs);
        if (!trace_progress && !config_progress)
            break;
    }
    result.probes = shrinker.probes();
    return result;
}

std::string
reproToString(const CacheConfig &config, const std::vector<MemRef> &refs)
{
    std::ostringstream os;
    os << "// occsim-fuzz minimal repro (" << refs.size()
       << " refs) -- paste into a test:\n";
    os << "CacheConfig config;\n";
    os << "config.netSize = " << config.netSize << ";\n";
    os << "config.blockSize = " << config.blockSize << ";\n";
    os << "config.subBlockSize = " << config.subBlockSize << ";\n";
    os << "config.assoc = " << config.assoc << ";\n";
    os << "config.wordSize = " << config.wordSize << ";\n";
    os << "config.replacement = "
       << replacementEnumName(config.replacement) << ";\n";
    os << "config.fetch = " << fetchEnumName(config.fetch) << ";\n";
    os << "config.write = " << writeEnumName(config.write) << ";\n";
    os << "config.writeAllocate = "
       << (config.writeAllocate ? "true" : "false") << ";\n";
    os << "config.randomSeed = " << config.randomSeed << "ull;\n";
    if (config.partition == CachePartition::SplitID)
        os << "config.partition = CachePartition::SplitID;\n";
    os << "const std::vector<MemRef> refs = {\n";
    for (const MemRef &ref : refs) {
        os << "    {0x" << std::hex << ref.addr << std::dec << ", "
           << kindEnumName(ref.kind) << ", "
           << static_cast<unsigned>(ref.size) << "},\n";
    }
    os << "};\n";
    os << "EXPECT_FALSE(runDifferentialCase(config, refs)"
          ".mismatch());\n";
    return os.str();
}

} // namespace occsim
