/**
 * @file
 * Seeded property-based generators for the differential fuzz
 * harness: randomized cache geometries spanning the full paper grid
 * (and beyond it: FIFO/Random replacement, prefetch, no-allocate
 * writes) and adversarial reference traces built from patterns known
 * to stress cache simulators — aliasing hot sets, thrash loops one
 * block beyond the associativity, sequential scans, stack churn, and
 * prefixes of real VM-program traces.
 *
 * Everything is a pure function of the seed: the same seed always
 * yields the same configuration and the same trace, on every
 * platform, so a failing fuzz case is replayable from two integers
 * (seed, case index).
 */

#ifndef OCCSIM_CHECK_GENERATORS_HH
#define OCCSIM_CHECK_GENERATORS_HH

#include <cstdint>
#include <memory>

#include "cache/cache_config.hh"
#include "trace/trace.hh"
#include "util/random.hh"

namespace occsim {

/**
 * Random cache-design points. The distribution covers the paper's
 * whole Table 1 grid — every (word, sub-block, block, net) chain of
 * powers of two with sub <= block <= net and at most 64 sub-blocks
 * per block — plus the ablation dimensions: associativity 1..16,
 * LRU/FIFO/Random, all four fetch policies, both write policies, and
 * no-allocate writes. A quarter of all points are forced onto the
 * single-pass fast path (LRU + demand + sub==block + write-allocate)
 * so the SinglePassEngine is cross-checked by a healthy fraction of
 * cases, not the ~3% unbiased sampling would yield.
 */
class ConfigGen
{
  public:
    explicit ConfigGen(std::uint64_t seed) : rng_(seed) {}

    /** Produce the next random design point. */
    CacheConfig next();

  private:
    Rng rng_;
};

/**
 * Random adversarial traces. A trace is a concatenation of segments,
 * each drawn from one pattern generator:
 *
 *  - uniform:   word-aligned references over a small pool.
 *  - hot sets:  round-robin over addresses a power-of-two stride
 *               apart, so they collide into one set at every set
 *               count up to stride/block.
 *  - thrash:    a loop over k blocks of one set with k chosen near
 *               typical associativities, the classic LRU worst case.
 *  - scan:      sequential walk (the load-forward stress).
 *  - stack:     push/pop bursts around a moving stack pointer.
 *  - vm prefix: a window of a real VM-program trace (genuine
 *               control-flow locality, ifetch/data interleaving).
 *
 * Reference kinds mix instruction fetches, reads and writes; every
 * address is aligned to the word size.
 */
class TraceGen
{
  public:
    explicit TraceGen(std::uint64_t seed) : rng_(seed) {}

    /**
     * Generate a trace of exactly @p len references for @p word_size
     * byte words.
     */
    std::shared_ptr<VectorTrace> make(std::size_t len,
                                      std::uint32_t word_size);

  private:
    Rng rng_;
};

} // namespace occsim

#endif // OCCSIM_CHECK_GENERATORS_HH
