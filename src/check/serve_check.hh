/**
 * @file
 * Protocol-robustness harness for the sweep server (src/serve).
 *
 * A long-lived daemon's parser sits on the other side of a socket
 * from software it does not control; "handles hostile bytes without
 * crashing or leaking the connection slot" is a testable contract,
 * and this harness tests it the same way the differential fuzzer
 * tests the engines — seeded, replayable, aggregate-verdict.
 *
 * Each case derives a scenario from its case seed and plays it
 * against a live in-process SweepServer over a socketpair: random
 * garbage, truncated frame headers, oversized length prefixes,
 * payloads cut off mid-frame, malformed JSON, schema-valid JSON with
 * the wrong shapes, unknown ops, unknown traces, invalid cache
 * configs, abrupt disconnects mid-response, and (as the control)
 * fully valid requests. After every case the harness asserts the
 * server is still serviceable — a fresh connection's ping must
 * answer — and that the connection slot was released. A crash is by
 * construction impossible to miss: the harness and server share a
 * process.
 *
 * Wired into the fuzz driver as `occsim-fuzz --serve-proto`.
 */

#ifndef OCCSIM_CHECK_SERVE_CHECK_HH
#define OCCSIM_CHECK_SERVE_CHECK_HH

#include <cstdint>
#include <iosfwd>
#include <string>

namespace occsim {

/** Knobs for one protocol-robustness run. */
struct ServeCheckOptions
{
    /** Adversarial connections to play. */
    std::uint64_t cases = 200;

    /** Master seed (one derived seed per case; a case seed fully
     *  determines its scenario and bytes). */
    std::uint64_t seed = 0x5e7ec4eull;

    /** Directory for the throwaway corpus (a small trace is ingested
     *  so valid-sweep control cases exercise the full path). Empty
     *  picks a unique path under /tmp. */
    std::string corpusDir;

    /** Progress/failure output; nullptr silences everything. */
    std::ostream *out = nullptr;

    /** Per-case scenario lines (needs @ref out). */
    bool verbose = false;
};

/** Outcome of a robustness run. */
struct ServeCheckSummary
{
    std::uint64_t cases = 0;
    std::uint64_t rejected = 0;   ///< cases answered with an error
    std::uint64_t completed = 0;  ///< control cases served fully
    std::uint64_t failures = 0;   ///< contract violations observed
    std::uint64_t firstFailureSeed = 0;

    bool passed() const { return failures == 0; }
};

/** Run the robustness loop. Contract violations (server unservable
 *  after a case, leaked connection slot, wrong response shape) are
 *  counted, never thrown. */
ServeCheckSummary runServeCheck(const ServeCheckOptions &options);

} // namespace occsim

#endif // OCCSIM_CHECK_SERVE_CHECK_HH
