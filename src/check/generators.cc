#include "check/generators.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "vm/assembler.hh"
#include "vm/machine.hh"
#include "vm/program_library.hh"

namespace occsim {

// ---------------------------------------------------------------- //
// ConfigGen
// ---------------------------------------------------------------- //

CacheConfig
ConfigGen::next()
{
    CacheConfig config;
    config.wordSize = rng_.chance(0.5) ? 2 : 4;

    // Size chain: word <= sub <= block <= net, powers of two, at
    // most 64 sub-blocks per block (the engine limit), net capped so
    // a case stays small enough to fuzz by the hundreds.
    config.subBlockSize = config.wordSize
                          << rng_.below(4);               // up to 8x word
    const std::uint64_t max_block_shift =
        std::min<std::uint64_t>(6, floorLog2(64u));       // <= 64 subs
    config.blockSize = config.subBlockSize
                       << rng_.below(max_block_shift + 1);
    config.blockSize = std::min(config.blockSize, 1024u);
    config.netSize = config.blockSize << rng_.below(7);   // up to 64 blocks
    config.netSize = std::min(config.netSize, 16u * 1024u);

    config.assoc = 1u << rng_.below(5);                   // 1..16

    // A quarter of all points are forced onto the single-pass fast
    // path (LRU + demand + sub == block + write-allocate): unbiased
    // sampling would hit that conjunction only ~3% of the time,
    // starving the engine the fuzzer most needs to cross-check.
    if (rng_.chance(0.25)) {
        config.subBlockSize = config.blockSize;
        config.replacement = ReplacementPolicy::LRU;
        config.fetch = FetchPolicy::Demand;
        config.write = rng_.chance(0.5) ? WritePolicy::WriteThrough
                                        : WritePolicy::CopyBack;
        config.writeAllocate = true;
        config.randomSeed = rng_.next();
        return config;
    }

    const std::uint64_t repl = rng_.below(4);
    config.replacement = repl <= 1 ? ReplacementPolicy::LRU
                         : repl == 2 ? ReplacementPolicy::FIFO
                                     : ReplacementPolicy::Random;

    const std::uint64_t fetch = rng_.below(6);
    config.fetch = fetch <= 2   ? FetchPolicy::Demand
                   : fetch == 3 ? FetchPolicy::LoadForward
                   : fetch == 4 ? FetchPolicy::LoadForwardOptimized
                                : FetchPolicy::PrefetchNextOnMiss;

    config.write = rng_.chance(0.5) ? WritePolicy::WriteThrough
                                    : WritePolicy::CopyBack;
    config.writeAllocate = rng_.chance(0.75);
    config.randomSeed = rng_.next();

    // A slice of the general points run split I/D instead of unified,
    // so the split routing path (two half-size sides partitioned by
    // reference kind) is cross-checked alongside everything else. The
    // net-size guard keeps each evenSplitHalf side at least one block.
    if (config.netSize >= 2 * config.blockSize && rng_.chance(0.125))
        config.partition = CachePartition::SplitID;
    return config;
}

// ---------------------------------------------------------------- //
// TraceGen
// ---------------------------------------------------------------- //

namespace {

/** Shared VM-program traces, built once and windowed by the
 *  generator (per word size, so ref sizes match the config). */
const std::vector<MemRef> &
vmTrace16()
{
    static const std::vector<MemRef> refs = [] {
        Program program =
            assemble(progBubbleSort(48), MachineConfig::word16());
        VmTraceSource source(std::move(program), "fuzz-vm16", true);
        return collect(source, 20000).refs();
    }();
    return refs;
}

const std::vector<MemRef> &
vmTrace32()
{
    static const std::vector<MemRef> refs = [] {
        Program program =
            assemble(progFib(12), MachineConfig::word32());
        VmTraceSource source(std::move(program), "fuzz-vm32", true);
        return collect(source, 20000).refs();
    }();
    return refs;
}

/** Random reference kind: mostly reads/ifetches, some writes. */
RefKind
pickKind(Rng &rng)
{
    const std::uint64_t k = rng.below(10);
    if (k < 4)
        return RefKind::Ifetch;
    if (k < 7)
        return RefKind::DataRead;
    return RefKind::DataWrite;
}

} // namespace

std::shared_ptr<VectorTrace>
TraceGen::make(std::size_t len, std::uint32_t word_size)
{
    auto trace = std::make_shared<VectorTrace>("fuzz");
    trace->reserve(len);
    const Addr word = word_size;
    const Addr space = 1u << 22;  // 4 MB address space

    const auto emit = [&](Addr addr, RefKind kind) {
        trace->append(alignDown(addr % space, word), kind,
                      static_cast<std::uint8_t>(word_size));
    };

    while (trace->size() < len) {
        const std::size_t budget = len - trace->size();
        const std::size_t seg_len = std::min<std::size_t>(
            budget, 8 + rng_.below(120));
        const std::uint64_t pattern = rng_.below(7);
        const Addr base =
            alignDown(static_cast<Addr>(rng_.below(space)), word);

        switch (pattern) {
          case 0: {  // uniform over a small pool
            const Addr pool =
                word * static_cast<Addr>(1 + rng_.below(512));
            for (std::size_t i = 0; i < seg_len; ++i) {
                emit(base + word * static_cast<Addr>(
                                       rng_.below(pool / word)),
                     pickKind(rng_));
            }
            break;
          }
          case 1: {  // aliasing hot set: power-of-two stride
            const Addr stride = 1u << (6 + rng_.below(9));
            const std::uint64_t k = 2 + rng_.below(20);
            for (std::size_t i = 0; i < seg_len; ++i) {
                emit(base + stride * static_cast<Addr>(i % k),
                     pickKind(rng_));
            }
            break;
          }
          case 2: {  // thrash loop around typical associativities
            const Addr stride = 1u << (7 + rng_.below(7));
            const std::uint64_t ways = 1ull << rng_.below(5);
            const std::uint64_t k = ways + 1 + rng_.below(3);
            for (std::size_t i = 0; i < seg_len; ++i) {
                emit(base + stride * static_cast<Addr>(i % k),
                     pickKind(rng_));
            }
            break;
          }
          case 3: {  // sequential scan
            const bool writes = rng_.chance(0.3);
            for (std::size_t i = 0; i < seg_len; ++i) {
                emit(base + word * static_cast<Addr>(i),
                     writes && rng_.chance(0.5) ? RefKind::DataWrite
                                                : RefKind::DataRead);
            }
            break;
          }
          case 4: {  // stack churn: push/pop around a hot top
            Addr sp = base;
            for (std::size_t i = 0; i < seg_len; ++i) {
                if (rng_.chance(0.5))
                    sp += word;
                else if (sp >= word)
                    sp -= word;
                emit(sp, rng_.chance(0.4) ? RefKind::DataWrite
                                          : RefKind::DataRead);
            }
            break;
          }
          case 5: {  // scan into the very top of the address space
            // Deliberately not folded into `space`: references next
            // to 0xFFFFFFFF make PrefetchNextOnMiss targets wrap
            // past the top of Addr, pinning the suppressed-prefetch
            // semantics across every engine.
            const Addr top_start =
                alignDown(~Addr{0}, word) -
                word * static_cast<Addr>(seg_len - 1);
            const bool writes = rng_.chance(0.3);
            for (std::size_t i = 0; i < seg_len; ++i) {
                trace->append(
                    top_start + word * static_cast<Addr>(i),
                    writes && rng_.chance(0.5) ? RefKind::DataWrite
                                               : RefKind::DataRead,
                    static_cast<std::uint8_t>(word_size));
            }
            break;
          }
          default: {  // window of a real VM-program trace
            const std::vector<MemRef> &vm =
                word_size == 2 ? vmTrace16() : vmTrace32();
            const std::size_t off = rng_.below(vm.size());
            for (std::size_t i = 0; i < seg_len; ++i) {
                const MemRef &ref = vm[(off + i) % vm.size()];
                emit(ref.addr, ref.kind);
            }
            break;
          }
        }
    }
    return trace;
}

} // namespace occsim
