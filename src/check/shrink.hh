/**
 * @file
 * Mismatch shrinking: reduce a failing differential case to a
 * minimal repro.
 *
 * A fuzz mismatch on an 800-reference trace with a 5-field config is
 * nearly useless for debugging; the same mismatch on 6 references
 * and a direct-mapped demand-fetch cache is a unit test. The shrinker
 * alternates two greedy passes until neither makes progress:
 *
 *  - Trace bisection (ddmin): partition the trace into n chunks and
 *    try deleting each; if the mismatch survives, keep the smaller
 *    trace and coarsen, otherwise refine (n *= 2) down to single
 *    references.
 *  - Config simplification: try each mutation toward the simplest
 *    design point — replacement to LRU, fetch to demand, write to
 *    write-through, write-allocate on, associativity and net size
 *    halved, sub-block widened to the block size — keeping any
 *    mutation under which the mismatch survives. The word size is
 *    never changed (the trace's addresses and sizes depend on it).
 *
 * Every candidate is re-validated by running the full differential
 * case, so a shrunk repro fails for the same reason the original
 * did: there is no way to "shrink away" the bug.
 */

#ifndef OCCSIM_CHECK_SHRINK_HH
#define OCCSIM_CHECK_SHRINK_HH

#include <string>
#include <vector>

#include "check/differential.hh"

namespace occsim {

/** A minimized failing case. */
struct ShrinkResult
{
    CacheConfig config;
    std::vector<MemRef> refs;
    /** Differential-case evaluations spent shrinking. */
    std::size_t probes = 0;
};

/**
 * Shrink a failing case. (@p config, @p refs) must already mismatch
 * under @p options; the result is guaranteed to still mismatch.
 */
ShrinkResult shrinkCase(const CacheConfig &config,
                        const std::vector<MemRef> &refs,
                        const DiffOptions &options = {});

/**
 * Render (@p config, @p refs) as a standalone, replayable C++ test
 * body: config field assignments plus a reference initializer list,
 * ending in a runDifferentialCase call. Paste-ready for a regression
 * test.
 */
std::string reproToString(const CacheConfig &config,
                          const std::vector<MemRef> &refs);

} // namespace occsim

#endif // OCCSIM_CHECK_SHRINK_HH
