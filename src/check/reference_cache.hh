/**
 * @file
 * The differential-testing oracle: a deliberately naive sub-block
 * cache simulator written for auditability, not speed.
 *
 * occsim has three independent ways to price one cache configuration
 * — the direct Cache/SectorCache engines, the ParallelSweepRunner
 * routing layer, and the Fenwick-tree SinglePassEngine — all
 * promising bit-identical results. This file supplies the fourth,
 * trusted leg of the comparison: every structure is a plain
 * std::vector<bool> or an explicit list, every policy is written out
 * longhand from the semantics in cache/cache.hh and the paper's
 * Section 3.2 definitions, and every statistic is a plain integer
 * counter re-derived from first principles. There are no bitmasks,
 * no popcounts, no Fenwick trees, and no shared hot-path code; a
 * reader should be able to check each member function against the
 * paper in isolation.
 *
 * The one piece of deliberately shared code is the xoshiro Rng: the
 * Random replacement policy is *defined* by the victim sequence that
 * generator produces for config.randomSeed, so the oracle must
 * consume the identical stream (one below(assoc) call per victim
 * selection) to be comparable at all.
 */

#ifndef OCCSIM_CHECK_REFERENCE_CACHE_HH
#define OCCSIM_CHECK_REFERENCE_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache_config.hh"
#include "cache/cache_stats.hh"
#include "trace/trace.hh"
#include "util/random.hh"

namespace occsim {

/**
 * Every counter a cache run produces, as plain public integers, plus
 * the derived metrics computed longhand from the paper's definitions.
 * Histograms are plain vectors indexed by value (word count or
 * touched-sub-block count).
 */
struct ReferenceStats
{
    std::uint64_t accesses = 0;        ///< counted (read) references
    std::uint64_t misses = 0;          ///< counted misses
    std::uint64_t blockMisses = 0;     ///< counted misses with tag absent
    std::uint64_t coldMisses = 0;      ///< counted never-filled-slot misses
    std::uint64_t ifetchAccesses = 0;
    std::uint64_t ifetchMisses = 0;
    std::uint64_t writeAccesses = 0;
    std::uint64_t writeMisses = 0;
    std::uint64_t wordsFetched = 0;    ///< counted fetch traffic (words)
    std::uint64_t coldWords = 0;       ///< part of wordsFetched from cold misses
    std::uint64_t redundantWords = 0;  ///< re-fetched resident words
    std::uint64_t writeWords = 0;      ///< write-miss fetch traffic
    std::uint64_t storeWords = 0;      ///< write-through store traffic
    std::uint64_t writebackWords = 0;  ///< copy-back eviction traffic
    std::uint64_t prefetchWords = 0;
    std::uint64_t prefetches = 0;
    std::uint64_t usefulPrefetches = 0;
    std::uint64_t bursts = 0;
    std::uint64_t evictions = 0;       ///< residencies ended

    /** burstWords[w] = counted bursts of exactly w words. */
    std::vector<std::uint64_t> burstWords;
    /** coldBurstWords[w] = cold-miss bursts of exactly w words. */
    std::vector<std::uint64_t> coldBurstWords;
    /** residencyTouched[k] = residencies that touched k sub-blocks. */
    std::vector<std::uint64_t> residencyTouched;

    // ---- derived metrics, straight from the paper's definitions ----
    /** misses / counted references. */
    double missRatio() const;
    /** Cold misses discounted from both numerator and denominator. */
    double warmMissRatio() const;
    /** Words fetched / counted references (each reference would move
     *  exactly one word without a cache). */
    double trafficRatio() const;
    double warmTrafficRatio() const;
    /** Nibble-mode pricing: a w-word burst costs 1 + (w-1)/ratio. */
    double nibbleTrafficRatio(double ratio = 3.0) const;
    double warmNibbleTrafficRatio(double ratio = 3.0) const;
    double ifetchMissRatio() const;
    double redundantLoadFraction() const;
    /** All bus words over all references including writes. */
    double totalTrafficRatio() const;
    double meanSubBlocksTouched() const;
    double neverReferencedFraction(std::uint32_t subs_per_block) const;
};

/**
 * Compare the oracle's totals against an engine's CacheStats,
 * counter by counter, histogram bucket by histogram bucket, and
 * derived double by derived double (the derived comparisons are
 * exact: both sides divide the same integers in the same order).
 * @return one human-readable line per mismatching field; empty when
 *         the run matches completely.
 */
std::vector<std::string> diffStats(const ReferenceStats &ref,
                                   const CacheStats &got);

/**
 * Compare two engine CacheStats for exact equality on every field an
 * engine-vs-engine equivalence promise covers (all counters, the
 * burst and residency histograms, and the derived metrics).
 * @return one line per mismatching field, prefixed with @p label.
 */
std::vector<std::string> diffCacheStats(const std::string &label,
                                        const CacheStats &a,
                                        const CacheStats &b);

/**
 * The oracle simulator. Feature-complete against Cache: sub-block
 * placement, all four fetch policies, write-through and copy-back,
 * write-allocate and no-allocate, LRU/FIFO/Random replacement, cold
 * tracking and residency accounting.
 */
class ReferenceCache
{
  public:
    explicit ReferenceCache(const CacheConfig &config);

    /** Simulate one reference. */
    void access(const MemRef &ref);

    /** Drain @p refs and finalize (one-shot convenience). */
    void run(const std::vector<MemRef> &refs);

    /** End-of-run residency accounting and dirty write-back. */
    void finalize();

    const ReferenceStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t assoc() const { return assoc_; }
    std::uint32_t subBlocksPerBlock() const { return numSubs_; }
    std::uint32_t wordsPerSubBlock() const { return wordsPerSub_; }

  private:
    /** One cache frame; every per-sub-block fact is a bool vector. */
    struct Frame
    {
        bool present = false;
        Addr tag = 0;
        std::vector<bool> valid;
        std::vector<bool> touched;
        std::vector<bool> dirty;
        std::vector<bool> prefetched;
    };

    // ---- address arithmetic, written out longhand ----
    Addr blockAddrOf(Addr addr) const { return addr / blockSize_; }
    std::uint32_t setOf(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr / blockSize_) %
                                          numSets_);
    }
    std::uint32_t subIndexOf(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr % blockSize_) /
                                          subBlockSize_);
    }

    /** Way holding @p block_addr in @p set, or -1. */
    int findWay(std::uint32_t set, Addr block_addr) const;

    /** Choose the frame a new block lands in (first empty way, else
     *  the policy victim). May consume the Random stream. */
    std::uint32_t chooseVictim(std::uint32_t set);

    /** LRU promotes on every access; FIFO and Random do not. */
    void noteAccess(std::uint32_t set, std::uint32_t way);
    /** LRU and FIFO move a filled way to most-protected. */
    void noteFill(std::uint32_t set, std::uint32_t way);

    /** Record one counted or write burst of @p sub_blocks sub-blocks. */
    void recordBurst(std::uint32_t sub_blocks, bool counted, bool cold,
                     std::uint32_t redundant_sub_blocks);

    /** Fetch policy applied to a missing @p sub_index of @p frame. */
    void fetchInto(Frame &frame, std::uint32_t set, std::uint32_t way,
                   std::uint32_t sub_index, bool counted, bool cold);

    /** End @p frame's residency: histogram + dirty write-back. */
    void endResidency(Frame &frame);

    /** Write back dirty sub-blocks of @p frame (copy-back). */
    void writebackDirty(Frame &frame);

    /** Smith-style one-sub-block-lookahead prefetch of the sub-block
     *  after the one holding @p miss_addr; suppressed when the target
     *  would wrap past the top of the address space. */
    void prefetchSequential(Addr miss_addr);

    CacheConfig config_;
    std::uint32_t blockSize_;
    std::uint32_t subBlockSize_;
    std::uint32_t numSets_;
    std::uint32_t assoc_;
    std::uint32_t numSubs_;
    std::uint32_t wordsPerSub_;

    /** frames_[set][way]. */
    std::vector<std::vector<Frame>> frames_;
    /** everFilled_[set][way][sub]: slot filled since construction. */
    std::vector<std::vector<std::vector<bool>>> everFilled_;
    /** order_[set]: way ids, front = next victim, back = protected. */
    std::vector<std::vector<std::uint32_t>> order_;
    Rng randomVictims_;

    ReferenceStats stats_;
};

} // namespace occsim

#endif // OCCSIM_CHECK_REFERENCE_CACHE_HH
