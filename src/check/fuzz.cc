#include "check/fuzz.hh"

#include <ostream>

#include "check/generators.hh"
#include "util/random.hh"

namespace occsim {

namespace {

/** Run one case; on mismatch, record + shrink it into @p summary.
 *  @return true if the case matched. */
bool
runOneCase(const FuzzCase &fuzz_case, const FuzzOptions &options,
           FuzzSummary &summary)
{
    const std::vector<MemRef> &refs = fuzz_case.trace->refs();
    const CaseReport report =
        runDifferentialCase(fuzz_case.config, refs, options.diff);
    ++summary.casesRun;
    if (!report.mismatch())
        return true;

    ++summary.mismatches;
    summary.failingCaseSeed = fuzz_case.caseSeed;
    summary.diffs = report.diffs;
    if (options.out) {
        *options.out << "MISMATCH: case seed " << fuzz_case.caseSeed
                     << " (" << fuzz_case.config.fullName() << ", "
                     << refs.size() << " refs)\n";
        for (const std::string &line : report.diffs)
            *options.out << "  " << line << "\n";
        *options.out << "shrinking...\n";
    }
    summary.shrunk =
        shrinkCase(fuzz_case.config, refs, options.diff);
    summary.repro =
        reproToString(summary.shrunk.config, summary.shrunk.refs);
    if (options.out) {
        *options.out << "shrunk to " << summary.shrunk.refs.size()
                     << " refs in " << summary.shrunk.probes
                     << " probes; replay with --case-seed "
                     << fuzz_case.caseSeed << "\n"
                     << summary.repro;
    }
    return false;
}

} // namespace

FuzzCase
makeFuzzCase(std::uint64_t case_seed, std::size_t refs_per_case)
{
    FuzzCase fuzz_case;
    fuzz_case.caseSeed = case_seed;
    Rng case_rng(case_seed);
    ConfigGen config_gen(case_rng.next());
    TraceGen trace_gen(case_rng.next());
    fuzz_case.config = config_gen.next();
    fuzz_case.trace =
        trace_gen.make(refs_per_case, fuzz_case.config.wordSize);
    return fuzz_case;
}

FuzzSummary
runFuzz(const FuzzOptions &options)
{
    FuzzSummary summary;
    Rng master(options.seed);
    for (std::uint64_t i = 0; i < options.cases; ++i) {
        const FuzzCase fuzz_case =
            makeFuzzCase(master.next(), options.refsPerCase);
        if (options.verbose && options.out) {
            *options.out << "case " << i << " seed "
                         << fuzz_case.caseSeed << ": "
                         << fuzz_case.config.fullName() << "\n";
        }
        if (!runOneCase(fuzz_case, options, summary))
            break;  // first mismatch ends the run (it is shrunk)
    }
    if (options.out) {
        *options.out << "occsim-fuzz: " << summary.casesRun
                     << " cases, " << summary.mismatches
                     << " mismatches (seed " << options.seed << ")\n";
    }
    return summary;
}

FuzzSummary
replayFuzzCase(std::uint64_t case_seed, const FuzzOptions &options)
{
    FuzzSummary summary;
    const FuzzCase fuzz_case =
        makeFuzzCase(case_seed, options.refsPerCase);
    if (options.out) {
        *options.out << "replaying case seed " << case_seed << ": "
                     << fuzz_case.config.fullName() << "\n";
    }
    runOneCase(fuzz_case, options, summary);
    if (options.out) {
        *options.out << "occsim-fuzz: replay "
                     << (summary.passed() ? "matched" : "MISMATCHED")
                     << "\n";
    }
    return summary;
}

} // namespace occsim
