#include "check/coherence_check.hh"

#include <algorithm>
#include <memory>
#include <ostream>

#include "check/generators.hh"
#include "multi/sweep_api.hh"
#include "multi/sweep_runner.hh"
#include "util/logging.hh"
#include "util/str.hh"
#include "workload/parallel.hh"

namespace occsim {

// ---------------------------------------------------------------- //
// FlatSnoopOracle
// ---------------------------------------------------------------- //

FlatSnoopOracle::Core::Core(const CacheConfig &cfg)
    : config(cfg), randomVictims(cfg.randomSeed)
{
    const std::uint32_t num_blocks = cfg.netSize / cfg.blockSize;
    assoc = std::min(cfg.assoc, num_blocks);
    numSets = num_blocks / assoc;
}

FlatSnoopOracle::FlatSnoopOracle(const ScenarioConfig &scenario,
                                 const CacheConfig &grid_config)
{
    occsim_assert(scenario.cores >= 1,
                  "oracle scenario needs at least one core");
    const CacheConfig &first =
        scenarioCoreConfig(scenario, grid_config, 0);
    blockSize_ = first.blockSize;
    subBlockSize_ = first.subBlockSize;
    numSubs_ = blockSize_ / subBlockSize_;
    wordsPerSub_ = subBlockSize_ / first.wordSize;

    cores_.reserve(scenario.cores);
    for (std::uint32_t c = 0; c < scenario.cores; ++c) {
        const CacheConfig &config =
            scenarioCoreConfig(scenario, grid_config, c);
        occsim_assert(config.blockSize == blockSize_ &&
                          config.subBlockSize == subBlockSize_ &&
                          config.wordSize == first.wordSize,
                      "oracle cores must share block geometry");
        occsim_assert(config.write == WritePolicy::CopyBack &&
                          config.writeAllocate &&
                          config.fetch == FetchPolicy::Demand &&
                          config.partition == CachePartition::Unified,
                      "oracle config outside the MESI subset (%s)",
                      config.fullName().c_str());
        cores_.emplace_back(config);
        Core &core = cores_.back();

        Frame empty;
        empty.valid.assign(numSubs_, false);
        empty.touched.assign(numSubs_, false);
        empty.dirty.assign(numSubs_, false);
        core.frames.assign(core.numSets,
                           std::vector<Frame>(core.assoc, empty));
        core.everFilled.assign(
            core.numSets,
            std::vector<std::vector<bool>>(
                core.assoc, std::vector<bool>(numSubs_, false)));
        core.order.resize(core.numSets);
        for (std::uint32_t set = 0; set < core.numSets; ++set) {
            for (std::uint32_t way = 0; way < core.assoc; ++way)
                core.order[set].push_back(way);
        }
        core.stats.burstWords.assign(
            static_cast<std::size_t>(numSubs_) * wordsPerSub_ + 1, 0);
        core.stats.coldBurstWords = core.stats.burstWords;
        core.stats.residencyTouched.assign(numSubs_ + 1, 0);
    }
}

int
FlatSnoopOracle::findWay(const Core &core, std::uint32_t set,
                         Addr block_addr) const
{
    for (std::uint32_t way = 0; way < core.assoc; ++way) {
        if (core.frames[set][way].present &&
            core.frames[set][way].tag == block_addr) {
            return static_cast<int>(way);
        }
    }
    return -1;
}

std::uint32_t
FlatSnoopOracle::chooseVictim(Core &core, std::uint32_t set)
{
    for (std::uint32_t way = 0; way < core.assoc; ++way) {
        if (!core.frames[set][way].present)
            return way;
    }
    if (core.config.replacement == ReplacementPolicy::Random) {
        return static_cast<std::uint32_t>(
            core.randomVictims.below(core.assoc));
    }
    return core.order[set].front();
}

void
FlatSnoopOracle::noteAccess(Core &core, std::uint32_t set,
                            std::uint32_t way)
{
    if (core.config.replacement != ReplacementPolicy::LRU)
        return;
    std::vector<std::uint32_t> &order = core.order[set];
    order.erase(std::find(order.begin(), order.end(), way));
    order.push_back(way);
}

void
FlatSnoopOracle::noteFill(Core &core, std::uint32_t set,
                          std::uint32_t way)
{
    if (core.config.replacement == ReplacementPolicy::Random)
        return;
    std::vector<std::uint32_t> &order = core.order[set];
    order.erase(std::find(order.begin(), order.end(), way));
    order.push_back(way);
}

void
FlatSnoopOracle::fillSub(Core &core, std::uint32_t set,
                         std::uint32_t way, std::uint32_t sub,
                         bool counted, bool cold)
{
    core.frames[set][way].valid[sub] = true;
    core.everFilled[set][way][sub] = true;
    const std::uint64_t words = wordsPerSub_;
    if (!counted) {
        core.stats.writeWords += words;
        return;
    }
    core.stats.wordsFetched += words;
    ++core.stats.bursts;
    ++core.stats.burstWords[words];
    if (cold) {
        core.stats.coldWords += words;
        ++core.stats.coldBurstWords[words];
    }
}

std::uint64_t
FlatSnoopOracle::writebackDirty(Core &core, Frame &frame)
{
    std::uint64_t dirty_subs = 0;
    for (std::uint32_t sub = 0; sub < numSubs_; ++sub) {
        if (frame.dirty[sub]) {
            ++dirty_subs;
            frame.dirty[sub] = false;
        }
    }
    if (dirty_subs == 0)
        return 0;
    const std::uint64_t words = dirty_subs * wordsPerSub_;
    core.stats.writebackWords += words;
    return words;
}

void
FlatSnoopOracle::endResidency(Core &core, Frame &frame)
{
    std::uint32_t touched = 0;
    for (std::uint32_t sub = 0; sub < numSubs_; ++sub) {
        if (frame.touched[sub])
            ++touched;
    }
    ++core.stats.evictions;
    ++core.stats.residencyTouched[touched];
    writebackDirty(core, frame);
}

bool
FlatSnoopOracle::snoopRead(std::uint32_t requester, Addr block_addr)
{
    bool shared = false;
    for (std::uint32_t p = 0; p < numCores(); ++p) {
        if (p == requester)
            continue;
        Core &peer = cores_[p];
        const std::uint32_t set =
            static_cast<std::uint32_t>(block_addr % peer.numSets);
        const int way = findWay(peer, set, block_addr);
        if (way < 0)
            continue;
        shared = true;
        Frame &frame =
            peer.frames[set][static_cast<std::uint32_t>(way)];
        if (frame.state == MesiState::Modified) {
            // The owner flushes dirty words to memory and supplies
            // the requested sub-block cache-to-cache.
            bus_.snoopWritebackWords += writebackDirty(peer, frame);
            ++bus_.cacheToCacheTransfers;
            bus_.c2cWords += wordsPerSub_;
        }
        frame.state =
            mesiNext(frame.state, MesiEvent::SnoopRead, false);
    }
    return shared;
}

void
FlatSnoopOracle::snoopInvalidate(std::uint32_t requester,
                                 Addr block_addr, bool upgrade)
{
    for (std::uint32_t p = 0; p < numCores(); ++p) {
        if (p == requester)
            continue;
        Core &peer = cores_[p];
        const std::uint32_t set =
            static_cast<std::uint32_t>(block_addr % peer.numSets);
        const int way = findWay(peer, set, block_addr);
        if (way < 0)
            continue;
        Frame &frame =
            peer.frames[set][static_cast<std::uint32_t>(way)];
        const MesiState next = mesiNext(
            frame.state,
            upgrade ? MesiEvent::SnoopUpgrade : MesiEvent::SnoopReadX,
            false);
        occsim_assert(next == MesiState::Invalid,
                      "oracle snoop invalidation left state %s",
                      mesiStateName(next));
        if (frame.state == MesiState::Modified) {
            bus_.snoopWritebackWords += writebackDirty(peer, frame);
            ++bus_.cacheToCacheTransfers;
            bus_.c2cWords += wordsPerSub_;
        }
        // Retire the residency the invalidation ends.
        std::uint32_t touched = 0;
        for (std::uint32_t sub = 0; sub < numSubs_; ++sub) {
            if (frame.touched[sub])
                ++touched;
        }
        if (touched != 0) {
            ++peer.stats.evictions;
            ++peer.stats.residencyTouched[touched];
        }
        frame.present = false;
        frame.tag = 0;
        frame.state = MesiState::Invalid;
        frame.valid.assign(numSubs_, false);
        frame.touched.assign(numSubs_, false);
        frame.dirty.assign(numSubs_, false);
        ++bus_.invalidations;
    }
}

void
FlatSnoopOracle::access(const MemRef &ref)
{
    Core &core = cores_[ref.core % numCores()];
    const bool is_write = ref.isWrite();
    const bool is_ifetch = ref.isInstruction();
    const bool counted = !is_write;
    const Addr block_addr = blockAddrOf(ref.addr);
    const std::uint32_t set =
        static_cast<std::uint32_t>(block_addr % core.numSets);
    const std::uint32_t sub = subIndexOf(ref.addr);
    const std::uint32_t requester = static_cast<std::uint32_t>(
        &core - cores_.data());

    const int way = findWay(core, set, block_addr);
    if (way >= 0) {
        Frame &frame =
            core.frames[set][static_cast<std::uint32_t>(way)];
        noteAccess(core, set, static_cast<std::uint32_t>(way));
        frame.touched[sub] = true;
        if (frame.valid[sub]) {
            if (counted) {
                ++core.stats.accesses;
                if (is_ifetch)
                    ++core.stats.ifetchAccesses;
                frame.state = mesiNext(frame.state,
                                       MesiEvent::LocalRead, false);
                return;
            }
            ++core.stats.writeAccesses;
            if (frame.state == MesiState::Shared) {
                // Address-only upgrade: peers drop their copies.
                ++bus_.busUpgrades;
                snoopInvalidate(requester, block_addr,
                                /*upgrade=*/true);
            }
            frame.state =
                mesiNext(frame.state, MesiEvent::LocalWrite, false);
            frame.dirty[sub] = true;
            return;
        }
        // Sub-block miss on a held tag: plain bus read, plus an
        // ownership change when a write finds the block Shared.
        const bool cold =
            !core.everFilled[set][static_cast<std::uint32_t>(way)][sub];
        if (counted) {
            ++core.stats.accesses;
            ++core.stats.misses;
            if (cold)
                ++core.stats.coldMisses;
            if (is_ifetch) {
                ++core.stats.ifetchAccesses;
                ++core.stats.ifetchMisses;
            }
            ++bus_.busReads;
            frame.state =
                mesiNext(frame.state, MesiEvent::LocalRead, false);
        } else {
            ++core.stats.writeAccesses;
            ++core.stats.writeMisses;
            if (frame.state == MesiState::Shared) {
                ++bus_.busReadForOwnership;
                snoopInvalidate(requester, block_addr,
                                /*upgrade=*/false);
            } else {
                ++bus_.busReads;
            }
            frame.state =
                mesiNext(frame.state, MesiEvent::LocalWrite, false);
        }
        fillSub(core, set, static_cast<std::uint32_t>(way), sub,
                counted, cold);
        if (is_write)
            frame.dirty[sub] = true;
        return;
    }

    // Block miss: allocate a frame (write-allocate throughout the
    // MESI subset, so writes allocate too).
    const std::uint32_t victim = chooseVictim(core, set);
    Frame &frame = core.frames[set][victim];
    if (frame.present)
        endResidency(core, frame);
    const bool cold = !core.everFilled[set][victim][sub];
    if (counted) {
        ++core.stats.accesses;
        ++core.stats.misses;
        ++core.stats.blockMisses;
        if (cold)
            ++core.stats.coldMisses;
        if (is_ifetch) {
            ++core.stats.ifetchAccesses;
            ++core.stats.ifetchMisses;
        }
    } else {
        ++core.stats.writeAccesses;
        ++core.stats.writeMisses;
    }

    frame.present = true;
    frame.tag = block_addr;
    frame.valid.assign(numSubs_, false);
    frame.touched.assign(numSubs_, false);
    frame.dirty.assign(numSubs_, false);
    frame.touched[sub] = true;
    noteFill(core, set, victim);

    if (counted) {
        ++bus_.busReads;
        const bool shared = snoopRead(requester, block_addr);
        frame.state = mesiNext(MesiState::Invalid,
                               MesiEvent::LocalRead, shared);
    } else {
        ++bus_.busReadForOwnership;
        snoopInvalidate(requester, block_addr, /*upgrade=*/false);
        frame.state = mesiNext(MesiState::Invalid,
                               MesiEvent::LocalWrite, false);
    }
    fillSub(core, set, victim, sub, counted, cold);
    if (is_write)
        frame.dirty[sub] = true;
}

void
FlatSnoopOracle::run(const std::vector<MemRef> &refs)
{
    for (const MemRef &ref : refs)
        access(ref);
    finalize();
}

void
FlatSnoopOracle::finalize()
{
    for (Core &core : cores_) {
        for (std::uint32_t set = 0; set < core.numSets; ++set) {
            for (std::uint32_t way = 0; way < core.assoc; ++way) {
                Frame &frame = core.frames[set][way];
                std::uint32_t touched = 0;
                for (std::uint32_t sub = 0; sub < numSubs_; ++sub) {
                    if (frame.touched[sub])
                        ++touched;
                }
                if (frame.present && touched != 0) {
                    ++core.stats.evictions;
                    ++core.stats.residencyTouched[touched];
                    frame.touched.assign(numSubs_, false);
                }
                writebackDirty(core, frame);
            }
        }
    }
}

// ---------------------------------------------------------------- //
// The differential case
// ---------------------------------------------------------------- //

namespace {

void
diffBusCounter(std::vector<std::string> &out, const char *field,
               std::uint64_t expected, std::uint64_t actual)
{
    if (expected != actual) {
        out.push_back(strfmt(
            "bus.%s: oracle=%llu engine=%llu", field,
            static_cast<unsigned long long>(expected),
            static_cast<unsigned long long>(actual)));
    }
}

void
diffBus(std::vector<std::string> &out, const CoherencyStats &expected,
        const CoherencyStats &actual)
{
    diffBusCounter(out, "busReads", expected.busReads,
                   actual.busReads);
    diffBusCounter(out, "busReadForOwnership",
                   expected.busReadForOwnership,
                   actual.busReadForOwnership);
    diffBusCounter(out, "busUpgrades", expected.busUpgrades,
                   actual.busUpgrades);
    diffBusCounter(out, "invalidations", expected.invalidations,
                   actual.invalidations);
    diffBusCounter(out, "cacheToCacheTransfers",
                   expected.cacheToCacheTransfers,
                   actual.cacheToCacheTransfers);
    diffBusCounter(out, "c2cWords", expected.c2cWords,
                   actual.c2cWords);
    diffBusCounter(out, "snoopWritebackWords",
                   expected.snoopWritebackWords,
                   actual.snoopWritebackWords);
}

void
diffResultDouble(std::vector<std::string> &out, const char *field,
                 double expected, double actual)
{
    // Exact: both sides run the same arithmetic over the same
    // integers (summarizeStats).
    if (expected != actual) {
        out.push_back(strfmt("sweep.%s: direct=%.17g routed=%.17g",
                             field, expected, actual));
    }
}

/** Compare the directly summarized system against the runSweep-routed
 *  result: the engine behind both is the same, so every field must be
 *  bit-identical. */
void
diffRoutedResult(std::vector<std::string> &out,
                 const SweepResult &direct, const SweepResult &routed,
                 bool multicore)
{
    if (direct.grossBytes != routed.grossBytes) {
        out.push_back(strfmt(
            "sweep.grossBytes: direct=%llu routed=%llu",
            static_cast<unsigned long long>(direct.grossBytes),
            static_cast<unsigned long long>(routed.grossBytes)));
    }
    diffResultDouble(out, "missRatio", direct.missRatio,
                     routed.missRatio);
    diffResultDouble(out, "warmMissRatio", direct.warmMissRatio,
                     routed.warmMissRatio);
    diffResultDouble(out, "trafficRatio", direct.trafficRatio,
                     routed.trafficRatio);
    diffResultDouble(out, "warmTrafficRatio", direct.warmTrafficRatio,
                     routed.warmTrafficRatio);
    diffResultDouble(out, "nibbleTrafficRatio",
                     direct.nibbleTrafficRatio,
                     routed.nibbleTrafficRatio);
    diffResultDouble(out, "warmNibbleTrafficRatio",
                     direct.warmNibbleTrafficRatio,
                     routed.warmNibbleTrafficRatio);
    if (!multicore)
        return;
    const CoherencySummary &a = direct.coherency;
    const CoherencySummary &b = routed.coherency;
    if (a.active != b.active || a.cores != b.cores ||
        a.busReads != b.busReads ||
        a.busReadForOwnership != b.busReadForOwnership ||
        a.busUpgrades != b.busUpgrades ||
        a.invalidations != b.invalidations ||
        a.cacheToCacheTransfers != b.cacheToCacheTransfers ||
        a.c2cWords != b.c2cWords ||
        a.snoopWritebackWords != b.snoopWritebackWords ||
        a.invalidationsPerKiloRef != b.invalidationsPerKiloRef ||
        a.coherenceTrafficRatio != b.coherenceTrafficRatio ||
        a.coreMissRatios != b.coreMissRatios) {
        out.push_back("sweep.coherency: direct and routed summaries "
                      "disagree");
    }
}

} // namespace

CoherenceCaseReport
runCoherencyCase(const ScenarioConfig &scenario,
                 const CacheConfig &grid_config,
                 const std::vector<MemRef> &refs,
                 const std::string &trace_name)
{
    CoherenceCaseReport report;

    CoherentSystem system(scenario, grid_config);
    for (const MemRef &ref : refs)
        system.access(ref);
    system.finalize();

    FlatSnoopOracle oracle(scenario, grid_config);
    oracle.run(refs);

    for (std::uint32_t c = 0; c < system.numCores(); ++c) {
        for (const std::string &diff :
             diffStats(oracle.coreStats(c), system.core(c).stats())) {
            report.diffs.push_back(strfmt("core%u %s", c,
                                          diff.c_str()));
        }
    }
    diffBus(report.diffs, oracle.bus(), system.bus());

    // Route the same triple through the public API: runSweep must
    // reach the same engine and summarize identically.
    SweepRequest request;
    request.traces.push_back(std::make_shared<const VectorTrace>(
        trace_name, refs));
    request.configs = {grid_config};
    request.scenario = scenario;
    request.wantAverage = false;
    const SweepReport routed = runSweep(request);
    diffRoutedResult(report.diffs,
                     summarizeCoherent(grid_config, system),
                     routed.perTrace.at(0).at(0),
                     scenario.multicore());

    return report;
}

// ---------------------------------------------------------------- //
// The fuzz loop
// ---------------------------------------------------------------- //

CoherenceFuzzCase
makeCoherenceFuzzCase(std::uint64_t case_seed,
                      std::size_t refs_per_case)
{
    CoherenceFuzzCase out;
    out.caseSeed = case_seed;
    Rng rng(case_seed);

    const std::uint32_t cores =
        2 + static_cast<std::uint32_t>(rng.below(3));
    const std::uint32_t word =
        1u << static_cast<std::uint32_t>(rng.below(3));
    const std::uint32_t sub =
        word << static_cast<std::uint32_t>(rng.below(3));
    // The engines reject one-byte blocks (no block bits to index
    // by), so the smallest drawn block is two bytes.
    const std::uint32_t block = std::max(
        2u, sub << static_cast<std::uint32_t>(rng.below(3)));

    // One MESI-subset design point; block geometry is fixed per case
    // (the bus requires it), capacity/associativity/replacement vary.
    const auto drawCore = [&rng, word, sub, block]() {
        CacheConfig config = makeConfig(
            block << (2 + static_cast<std::uint32_t>(rng.below(4))),
            block, sub, word);
        config.assoc = 1u << static_cast<std::uint32_t>(rng.below(3));
        config.write = WritePolicy::CopyBack;
        config.writeAllocate = true;
        config.fetch = FetchPolicy::Demand;
        static constexpr ReplacementPolicy kPolicies[] = {
            ReplacementPolicy::LRU, ReplacementPolicy::FIFO,
            ReplacementPolicy::Random};
        config.replacement = kPolicies[rng.below(3)];
        config.randomSeed = rng.next();
        return config;
    };

    out.config = drawCore();
    out.scenario.cores = cores;
    if (rng.below(4) == 0) {
        // Asymmetric scenario: per-core shapes replace the grid.
        for (std::uint32_t c = 0; c < cores; ++c)
            out.scenario.coreConfigs.push_back(drawCore());
        out.config = out.scenario.coreConfigs.front();
    }

    if (rng.below(2) == 0) {
        // A scripted parallel workload (real sharing patterns).
        const auto kind =
            static_cast<ParallelWorkloadKind>(rng.below(3));
        ParallelWorkloadParams params;
        params.cores = cores;
        params.refsPerCore = std::max<std::uint64_t>(
            1, refs_per_case / cores);
        params.wordSize = word;
        params.seed = rng.next();
        out.trace = makeParallelTrace(kind, params);
    } else {
        // An adversarial single-cache trace with random core stamps:
        // heavy aliasing across cores, the protocol's stress test.
        TraceGen gen(rng.next());
        std::vector<MemRef> stamped =
            gen.make(refs_per_case, word)->refs();
        for (MemRef &ref : stamped)
            ref.core = static_cast<std::uint8_t>(rng.below(cores));
        out.trace = VectorTrace(strfmt("coherence-fuzz-%llx",
                                       static_cast<unsigned long long>(
                                           case_seed)),
                                std::move(stamped));
    }
    return out;
}

CoherenceFuzzSummary
runCoherenceFuzz(const CoherenceFuzzOptions &options)
{
    CoherenceFuzzSummary summary;
    Rng master(options.seed);
    for (std::uint64_t i = 0; i < options.cases; ++i) {
        const std::uint64_t case_seed = master.next();
        const CoherenceFuzzCase fuzz_case =
            makeCoherenceFuzzCase(case_seed, options.refsPerCase);
        const CoherenceCaseReport report = runCoherencyCase(
            fuzz_case.scenario, fuzz_case.config,
            fuzz_case.trace.refs(), fuzz_case.trace.name());
        ++summary.casesRun;
        if (options.out && options.verbose) {
            *options.out << strfmt(
                "case %llu seed=%llx %ux%s trace=%s refs=%zu: %s\n",
                static_cast<unsigned long long>(i),
                static_cast<unsigned long long>(case_seed),
                fuzz_case.scenario.cores,
                fuzz_case.config.shortName().c_str(),
                fuzz_case.trace.name().c_str(),
                fuzz_case.trace.size(),
                report.mismatch() ? "MISMATCH" : "ok");
        }
        if (report.mismatch()) {
            ++summary.mismatches;
            summary.failingCaseSeed = case_seed;
            summary.diffs = report.diffs;
            if (options.out) {
                *options.out << strfmt(
                    "coherence fuzz MISMATCH: case seed %llx "
                    "(%u cores, %s, %zu refs)\n",
                    static_cast<unsigned long long>(case_seed),
                    fuzz_case.scenario.cores,
                    fuzz_case.config.fullName().c_str(),
                    fuzz_case.trace.size());
                for (const std::string &diff : report.diffs)
                    *options.out << "  " << diff << "\n";
            }
            break;
        }
    }
    return summary;
}

} // namespace occsim
