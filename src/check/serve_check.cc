#include "check/serve_check.hh"

#include <cerrno>
#include <cstring>
#include <iterator>
#include <ostream>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.hh"
#include "serve/server.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/str.hh"
#include "workload/suites.hh"

namespace occsim {

namespace {

using serve::FrameStatus;
using serve::SweepServer;
using serve::WireRequest;

/** The adversarial shapes the generator draws from. */
enum class Scenario : std::uint8_t {
    Garbage = 0,          ///< random bytes, no frame structure
    TruncatedHeader,      ///< 1-3 bytes of a length prefix, then close
    OversizedLength,      ///< length prefix beyond kMaxFramePayload
    TruncatedPayload,     ///< valid header, payload cut short
    MalformedJson,        ///< framed, but the payload is not JSON
    WrongSchema,          ///< valid JSON with the wrong request shape
    UnknownOp,            ///< well-formed request, unrecognized op
    UnknownTrace,         ///< sweep naming a trace the corpus lacks
    InvalidConfig,        ///< sweep with a config CacheGeometry rejects
    InvalidScenario,      ///< multicore scenario the validator rejects
    ScenarioSweep,        ///< multicore + 1-core sweeps must not alias
    AbruptDisconnect,     ///< valid sweep, close after one response
    ValidPing,            ///< control: must answer pong
    ValidSweep,           ///< control: must stream results + done
    kCount,
};

const char *
scenarioName(Scenario scenario)
{
    switch (scenario) {
    case Scenario::Garbage:
        return "garbage";
    case Scenario::TruncatedHeader:
        return "truncated-header";
    case Scenario::OversizedLength:
        return "oversized-length";
    case Scenario::TruncatedPayload:
        return "truncated-payload";
    case Scenario::MalformedJson:
        return "malformed-json";
    case Scenario::WrongSchema:
        return "wrong-schema";
    case Scenario::UnknownOp:
        return "unknown-op";
    case Scenario::UnknownTrace:
        return "unknown-trace";
    case Scenario::InvalidConfig:
        return "invalid-config";
    case Scenario::InvalidScenario:
        return "invalid-scenario";
    case Scenario::ScenarioSweep:
        return "scenario-sweep";
    case Scenario::AbruptDisconnect:
        return "abrupt-disconnect";
    case Scenario::ValidPing:
        return "valid-ping";
    case Scenario::ValidSweep:
        return "valid-sweep";
    case Scenario::kCount:
        break;
    }
    return "unknown";
}

/** One client connection to an in-process server: a socketpair with
 *  the server end driven by a handleConnection thread. */
class Connection
{
  public:
    explicit Connection(SweepServer &server)
    {
        int fds[2] = {-1, -1};
        occsim_assert(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0,
                      "socketpair failed: %s", std::strerror(errno));
        fd_ = fds[0];
        server_ = std::thread(
            [&server, server_fd = fds[1]] {
                server.handleConnection(server_fd);
            });
    }

    ~Connection()
    {
        closeClient();
        server_.join();
    }

    int fd() const { return fd_; }

    void closeClient()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    bool sendRaw(const void *data, std::size_t bytes)
    {
        const char *p = static_cast<const char *>(data);
        while (bytes > 0) {
            const ssize_t put = ::send(fd_, p, bytes, MSG_NOSIGNAL);
            if (put < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            p += put;
            bytes -= static_cast<std::size_t>(put);
        }
        return true;
    }

  private:
    int fd_ = -1;
    std::thread server_;
};

/** Read response frames until "done"/"error"/EOF. @return the type
 *  of the final frame ("" on framing trouble). Captures every raw
 *  payload into @p payloads when given. */
std::string
drainResponses(int fd, std::size_t *frames = nullptr,
               std::vector<std::string> *payloads = nullptr)
{
    std::string last_type;
    std::string payload;
    for (;;) {
        const FrameStatus status = serve::readFrame(fd, payload);
        if (status != FrameStatus::Ok)
            return last_type;
        if (frames)
            ++*frames;
        if (payloads)
            payloads->push_back(payload);
        obs::JsonValue root;
        if (!obs::parseJson(payload, root))
            return "";
        const obs::JsonValue *type = root.find("type");
        last_type = type && type->isString() ? type->text : "";
        if (last_type == "done" || last_type == "error" ||
            last_type == "pong" || last_type == "ok" ||
            last_type == "stats" || last_type == "list")
            return last_type;
    }
}

/** A tiny valid sweep request against @p trace_ref. */
WireRequest
sweepRequest(const std::string &trace_ref)
{
    WireRequest request;
    request.op = "sweep";
    request.traces = {trace_ref};
    request.configs = {makeConfig(256, 16, 8, 2),
                       makeConfig(512, 32, 8, 2)};
    request.maxRefs = 2048;
    request.label = "serve-check";
    return request;
}

/** A valid 2-core coherency sweep against @p trace_ref: one
 *  MESI-subset config (copy-back, write-allocate, demand, unified). */
WireRequest
scenarioSweepRequest(const std::string &trace_ref)
{
    WireRequest request;
    request.op = "sweep";
    request.traces = {trace_ref};
    CacheConfig config = makeConfig(256, 16, 8, 2);
    config.write = WritePolicy::CopyBack;
    request.configs = {config};
    request.scenario.cores = 2;
    request.maxRefs = 2048;
    request.label = "serve-check-scenario";
    return request;
}

} // namespace

ServeCheckSummary
runServeCheck(const ServeCheckOptions &options)
{
    ServeCheckSummary summary;
    std::ostream *out = options.out;

    std::string corpus_dir = options.corpusDir;
    if (corpus_dir.empty()) {
        corpus_dir = strfmt("/tmp/occsim-serve-check-%d-%llx",
                            static_cast<int>(::getpid()),
                            static_cast<unsigned long long>(
                                options.seed));
    }

    serve::ServeOptions serve_options;
    serve_options.corpusDir = corpus_dir;
    serve_options.dispatchers = 1;
    SweepServer server(serve_options);

    // Ingest one small trace so the valid-sweep control cases run the
    // full corpus -> engine -> cache path.
    const auto trace =
        buildTraceShared(pdp11Suite().traces.front(), 4096);
    std::string error;
    const std::string trace_hash = server.corpus().ingest(*trace, &error);
    occsim_assert(!trace_hash.empty(), "serve-check ingest failed: %s",
                  error.c_str());

    Rng master(options.seed);
    const auto fail = [&](std::uint64_t case_seed,
                          const char *scenario, const char *why) {
        ++summary.failures;
        if (summary.failures == 1)
            summary.firstFailureSeed = case_seed;
        if (out) {
            *out << "serve-check FAIL seed=0x" << std::hex << case_seed
                 << std::dec << " scenario=" << scenario << ": " << why
                 << "\n";
        }
    };

    for (std::uint64_t i = 0; i < options.cases; ++i) {
        const std::uint64_t case_seed = master.next();
        Rng rng(case_seed);
        const auto scenario = static_cast<Scenario>(rng.below(
            static_cast<std::uint64_t>(Scenario::kCount)));
        ++summary.cases;
        if (out && options.verbose) {
            *out << "serve-check case " << i << " seed=0x" << std::hex
                 << case_seed << std::dec << " "
                 << scenarioName(scenario) << "\n";
        }

        {
            Connection conn(server);
            switch (scenario) {
            case Scenario::Garbage: {
                // Random bytes. Statistically the leading u32 is huge
                // (rejected as oversized) or promises a payload that
                // never arrives (rejected at close) — either way the
                // server must answer an error and drop the connection.
                const std::size_t n = 5 + rng.below(64);
                std::vector<unsigned char> bytes(n);
                for (auto &b : bytes)
                    b = static_cast<unsigned char>(rng.below(256));
                conn.sendRaw(bytes.data(), bytes.size());
                conn.closeClient();
                ++summary.rejected;
                break;
            }
            case Scenario::TruncatedHeader: {
                const std::size_t n = 1 + rng.below(3);
                std::vector<unsigned char> bytes(n);
                for (auto &b : bytes)
                    b = static_cast<unsigned char>(rng.below(256));
                conn.sendRaw(bytes.data(), bytes.size());
                conn.closeClient();
                ++summary.rejected;
                break;
            }
            case Scenario::OversizedLength: {
                const std::uint32_t length =
                    serve::kMaxFramePayload + 1 +
                    static_cast<std::uint32_t>(rng.below(1u << 20));
                const std::uint8_t header[4] = {
                    static_cast<std::uint8_t>(length),
                    static_cast<std::uint8_t>(length >> 8),
                    static_cast<std::uint8_t>(length >> 16),
                    static_cast<std::uint8_t>(length >> 24),
                };
                conn.sendRaw(header, sizeof(header));
                const std::string last = drainResponses(conn.fd());
                if (last != "error") {
                    fail(case_seed, "oversized-length",
                         "expected an error response");
                }
                ++summary.rejected;
                break;
            }
            case Scenario::TruncatedPayload: {
                const std::string payload = "{\"op\":\"ping\"}";
                const std::uint32_t length =
                    static_cast<std::uint32_t>(payload.size());
                const std::uint8_t header[4] = {
                    static_cast<std::uint8_t>(length),
                    static_cast<std::uint8_t>(length >> 8),
                    static_cast<std::uint8_t>(length >> 16),
                    static_cast<std::uint8_t>(length >> 24),
                };
                conn.sendRaw(header, sizeof(header));
                // Deliver only part of the promised payload.
                conn.sendRaw(payload.data(),
                             rng.below(payload.size()));
                conn.closeClient();
                ++summary.rejected;
                break;
            }
            case Scenario::MalformedJson: {
                static const char *broken[] = {
                    "{\"op\":", "not json at all", "{]",
                    "{\"op\":\"ping\"", "\x00\x01\x02",
                };
                serve::writeFrame(
                    conn.fd(),
                    broken[rng.below(std::size(broken))]);
                const std::string last = drainResponses(conn.fd());
                if (last != "error") {
                    fail(case_seed, "malformed-json",
                         "expected an error response");
                }
                ++summary.rejected;
                break;
            }
            case Scenario::WrongSchema: {
                static const char *shapes[] = {
                    "[1,2,3]",
                    "{\"no_op\":true}",
                    "{\"op\":42}",
                    "{\"op\":\"sweep\",\"traces\":\"x\"}",
                    "{\"op\":\"sweep\",\"traces\":[1]}",
                    "{\"op\":\"sweep\",\"traces\":[\"x\"],"
                    "\"configs\":[{\"net\":\"big\"}]}",
                    "{\"op\":\"sweep\",\"traces\":[\"x\"],"
                    "\"configs\":{}}",
                    "{\"op\":\"sweep\",\"max_refs\":\"lots\"}",
                };
                serve::writeFrame(conn.fd(),
                                  shapes[rng.below(std::size(shapes))]);
                const std::string last = drainResponses(conn.fd());
                if (last != "error") {
                    fail(case_seed, "wrong-schema",
                         "expected an error response");
                }
                ++summary.rejected;
                break;
            }
            case Scenario::UnknownOp: {
                WireRequest request;
                request.op = "ingest";  // deliberately not a wire op
                serve::writeFrame(conn.fd(),
                                  serve::wireRequestJson(request));
                const std::string last = drainResponses(conn.fd());
                if (last != "error") {
                    fail(case_seed, "unknown-op",
                         "expected an error response");
                }
                ++summary.rejected;
                break;
            }
            case Scenario::UnknownTrace: {
                WireRequest request = sweepRequest(
                    strfmt("%016llx",
                           static_cast<unsigned long long>(
                               rng.next())));
                serve::writeFrame(conn.fd(),
                                  serve::wireRequestJson(request));
                const std::string last = drainResponses(conn.fd());
                if (last != "error") {
                    fail(case_seed, "unknown-trace",
                         "expected an error response");
                }
                ++summary.rejected;
                break;
            }
            case Scenario::InvalidConfig: {
                WireRequest request = sweepRequest(trace_hash);
                CacheConfig &config = request.configs[0];
                switch (rng.below(4)) {
                case 0:
                    config.netSize = 1000;  // not a power of two
                    break;
                case 1:
                    config.subBlockSize = 2 * config.blockSize;
                    break;
                case 2:
                    config.blockSize = 2 * config.netSize;
                    break;
                default:
                    config.addressBits = 40;
                    break;
                }
                serve::writeFrame(conn.fd(),
                                  serve::wireRequestJson(request));
                const std::string last = drainResponses(conn.fd());
                if (last != "error") {
                    fail(case_seed, "invalid-config",
                         "expected an error response");
                }
                ++summary.rejected;
                break;
            }
            case Scenario::InvalidScenario: {
                // Scenarios the parser or validator must reject: an
                // out-of-range core count, an unsupported (non-MESI)
                // config, mismatched per-core shapes, or per-core
                // shapes alongside a multi-config grid.
                switch (rng.below(5)) {
                case 0: {
                    // Default makeConfig is write-through: outside
                    // the MESI subset.
                    WireRequest request = sweepRequest(trace_hash);
                    request.scenario.cores = 2;
                    serve::writeFrame(
                        conn.fd(), serve::wireRequestJson(request));
                    break;
                }
                case 1:
                    serve::writeFrame(
                        conn.fd(),
                        "{\"op\":\"sweep\",\"scenario\":"
                        "{\"cores\":0}}");
                    break;
                case 2:
                    serve::writeFrame(
                        conn.fd(),
                        "{\"op\":\"sweep\",\"scenario\":"
                        "{\"cores\":99}}");
                    break;
                case 3: {
                    // Three per-core shapes for two cores.
                    WireRequest request =
                        scenarioSweepRequest(trace_hash);
                    request.scenario.coreConfigs.assign(
                        3, request.configs.front());
                    serve::writeFrame(
                        conn.fd(), serve::wireRequestJson(request));
                    break;
                }
                default: {
                    // Per-core shapes must collapse the grid to one
                    // config; send two.
                    WireRequest request =
                        scenarioSweepRequest(trace_hash);
                    request.scenario.coreConfigs.assign(
                        2, request.configs.front());
                    request.configs.push_back(
                        request.configs.front());
                    serve::writeFrame(
                        conn.fd(), serve::wireRequestJson(request));
                    break;
                }
                }
                const std::string last = drainResponses(conn.fd());
                if (last != "error") {
                    fail(case_seed, "invalid-scenario",
                         "expected an error response");
                }
                ++summary.rejected;
                break;
            }
            case Scenario::ScenarioSweep: {
                // The aliasing check: a 2-core sweep and the
                // identical 1-core sweep must produce distinct cache
                // entries — the multicore result carries coherency
                // columns, the single-cache one must not, even when
                // both are served from the result cache.
                const WireRequest multi =
                    scenarioSweepRequest(trace_hash);
                WireRequest single = multi;
                single.scenario = ScenarioConfig{};

                bool ok = true;
                const auto sweepOnce = [&](const WireRequest &request,
                                           bool want_coherency,
                                           const char *why) {
                    Connection sweep_conn(server);
                    serve::writeFrame(
                        sweep_conn.fd(),
                        serve::wireRequestJson(request));
                    std::size_t frames = 0;
                    std::vector<std::string> payloads;
                    const std::string last = drainResponses(
                        sweep_conn.fd(), &frames, &payloads);
                    const bool has_coherency =
                        !payloads.empty() &&
                        payloads.front().find("\"coherency\"") !=
                            std::string::npos;
                    if (last != "done" || frames != 2 ||
                        has_coherency != want_coherency) {
                        fail(case_seed, "scenario-sweep", why);
                        ok = false;
                    }
                };
                sweepOnce(multi, true,
                          "multicore sweep missing coherency columns");
                sweepOnce(single, false,
                          "1-core result aliased to the multicore "
                          "cache entry");
                // Cache-hit replay of the multicore entry.
                sweepOnce(multi, true,
                          "cached multicore result lost its coherency "
                          "columns");
                if (ok)
                    ++summary.completed;
                break;
            }
            case Scenario::AbruptDisconnect: {
                serve::writeFrame(
                    conn.fd(),
                    serve::wireRequestJson(sweepRequest(trace_hash)));
                // Read at most one response frame, then vanish
                // mid-stream.
                std::string payload;
                if (rng.chance(0.5))
                    serve::readFrame(conn.fd(), payload);
                conn.closeClient();
                ++summary.rejected;
                break;
            }
            case Scenario::ValidPing: {
                WireRequest request;
                request.op = "ping";
                serve::writeFrame(conn.fd(),
                                  serve::wireRequestJson(request));
                const std::string last = drainResponses(conn.fd());
                if (last != "pong") {
                    fail(case_seed, "valid-ping",
                         "expected a pong response");
                } else {
                    ++summary.completed;
                }
                break;
            }
            case Scenario::ValidSweep: {
                serve::writeFrame(
                    conn.fd(),
                    serve::wireRequestJson(sweepRequest(trace_hash)));
                std::size_t frames = 0;
                const std::string last =
                    drainResponses(conn.fd(), &frames);
                // 2 configs -> 2 result frames + done.
                if (last != "done" || frames != 3) {
                    fail(case_seed, "valid-sweep",
                         "expected 2 results and done");
                } else {
                    ++summary.completed;
                }
                break;
            }
            case Scenario::kCount:
                break;
            }
        }
        // The Connection destructor joined the handler: its slot must
        // be back.
        if (server.activeConnections() != 0) {
            fail(case_seed, scenarioName(scenario),
                 "connection slot leaked");
        }

        // Liveness probe: whatever the case did, a fresh connection
        // must still be served.
        {
            Connection probe(server);
            WireRequest request;
            request.op = "ping";
            serve::writeFrame(probe.fd(),
                              serve::wireRequestJson(request));
            if (drainResponses(probe.fd()) != "pong") {
                fail(case_seed, scenarioName(scenario),
                     "server unservable after case");
            }
        }
    }

    server.stop();
    if (out) {
        *out << "serve-check: " << summary.cases << " cases, "
             << summary.rejected << " rejected, " << summary.completed
             << " completed, " << summary.failures << " failures\n";
    }
    return summary;
}

} // namespace occsim
